// Quickstart: simulate one flash-crowd swarm under T-Chain and print the
// headline metrics, then compare all six incentive mechanisms on the same
// scenario.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// One run: 200 peers arrive within 10 seconds and exchange a 32 MB
	// file (128 pieces x 256 KB) seeded by a single origin server.
	res, err := core.Simulate(core.TChain, core.WithSeed(42))
	if err != nil {
		return err
	}
	fmt.Println("--- single run: T-Chain, 200 peers, 32 MB ---")
	fmt.Printf("mean download time: %.1f s\n", res.MeanDownloadTime())
	fmt.Printf("mean bootstrap:     %.1f s\n", res.MeanBootstrapTime())
	fmt.Printf("fairness (d/u):     %.3f\n", res.FinalFairness())
	fmt.Println()

	// The paper's comparison: same scenario, all six mechanisms.
	// Cap the horizon at 600 simulated seconds: pure reciprocity can then
	// only progress at the seeder's trickle and visibly stalls, as in the
	// paper (given unbounded time the seeder alone would finish everyone).
	results, err := core.CompareAll(core.WithSeed(42), core.WithScale(120, 64), core.WithHorizon(600))
	if err != nil {
		return err
	}
	fmt.Println("--- all six mechanisms, 120 peers, 16 MB ---")
	fmt.Printf("%-12s %10s %10s %10s\n", "algorithm", "done", "meanDL(s)", "boot(s)")
	for _, a := range core.Algorithms() {
		r := results[a]
		dl := fmt.Sprintf("%.1f", r.MeanDownloadTime())
		if r.CompletionFraction() == 0 {
			dl = "never"
		}
		fmt.Printf("%-12s %9.0f%% %10s %10.1f\n",
			a, 100*r.CompletionFraction(), dl, r.MeanBootstrapTime())
	}
	fmt.Println("\nExpected shape (paper Fig. 4): altruism fastest, reciprocity stalls,")
	fmt.Println("T-Chain/BitTorrent/FairTorrent comparable, bootstrap slowest for reciprocity.")
	return nil
}
