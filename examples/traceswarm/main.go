// Trace swarm: run an in-process swarm with causal tracing on, then
// explain where the slowest pieces spent their time. Every sampled push
// is followed across the wire — request.queued → outbox.wait → wire.send
// on the uploader, wire.recv → store.verify → attest.sign → ledger.credit
// on the receiver, continuing hop by hop as the piece is re-uploaded — so
// the k slowest traces print as cross-node span trees, and the full span
// set lands in a Chrome trace-event file for chrome://tracing or
// ui.perfetto.dev.
//
//	go run ./examples/traceswarm
//	go run ./examples/traceswarm -nodes 32 -k 3 -out trace.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/algo"
	"repro/internal/node"
	"repro/internal/piece"
	"repro/internal/tracing"
	"repro/internal/transport"
)

func main() {
	nodes := flag.Int("nodes", 32, "swarm size including the seed")
	pieces := flag.Int("pieces", 48, "file pieces of 8 KB each")
	sample := flag.Int("sample", 1, "trace one push in N (1 = trace everything)")
	k := flag.Int("k", 3, "print the k slowest piece traces")
	out := flag.String("out", "trace.json", "Chrome trace-event output file (empty = skip)")
	flag.Parse()

	if err := run(*nodes, *pieces, *sample, *k, *out); err != nil {
		fmt.Fprintf(os.Stderr, "traceswarm: %v\n", err)
		os.Exit(1)
	}
}

func run(nodes, numPieces, sample, k int, out string) error {
	if nodes < 2 {
		return fmt.Errorf("need at least 2 nodes, got %d", nodes)
	}
	const pieceSize = 8 << 10
	manifest, err := piece.SyntheticManifest(numPieces, pieceSize)
	if err != nil {
		return err
	}
	content := make([]byte, 0, manifest.FileSize)
	for i := 0; i < numPieces; i++ {
		content = append(content, piece.SyntheticPiece(i, pieceSize)...)
	}

	fmt.Printf("swarm: %d nodes, %d pieces, tracing 1 in %d pushes\n", nodes, numPieces, sample)
	start := time.Now()
	c, err := node.StartCluster(manifest, content,
		node.WithAlgorithm(algo.Altruism),
		node.WithTransport(transport.NewMem()),
		node.WithLeechers(nodes-1),
		node.WithDecisionInterval(time.Millisecond),
		node.WithTracing(tracing.Config{SampleEvery: sample, Capacity: 1 << 17}),
	)
	if err != nil {
		return err
	}
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := c.WaitAllCompleteContext(ctx); err != nil {
		return err
	}
	fmt.Printf("download complete in %v\n\n", time.Since(start).Round(time.Millisecond))

	spans, dropped := c.Tracer.Snapshot()
	traces := tracing.Traces(spans)
	fmt.Printf("collected %d spans in %d traces (%d dropped)\n", len(spans), len(traces), dropped)
	if dropped > 0 {
		fmt.Println("note: the ring overflowed; the slowest traces may be incomplete")
	}

	fmt.Printf("\n%d slowest piece traces:\n\n", min(k, len(traces)))
	for i, t := range traces {
		if i >= k {
			break
		}
		if err := tracing.RenderTree(os.Stdout, t); err != nil {
			return err
		}
		fmt.Println()
	}

	if out == "" {
		return nil
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := tracing.WriteChromeTrace(f, spans); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s — load it in chrome://tracing or ui.perfetto.dev\n", out)
	return nil
}
