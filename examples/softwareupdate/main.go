// Software-update dissemination: the paper's motivating scenario of a
// cloud server distributing a large update to a device fleet. We ask the
// operator's question — which incentive mechanism ships the update to the
// whole fleet fastest, and what does that choice cost in fairness and
// free-riding exposure when some devices are selfish?
//
//	go run ./examples/softwareupdate
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
)

const (
	fleetSize    = 300
	updatePieces = 96 // 24 MB update in 256 KB pieces
	selfishShare = 0.15
	runSeed      = 7
	horizonSecs  = 6000
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "softwareupdate: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Printf("fleet: %d devices, update: %d MB, %0.f%% selfish devices\n\n",
		fleetSize, updatePieces/4, selfishShare*100)

	type outcome struct {
		algo     core.Algorithm
		clean    *core.Result
		attacked *core.Result
	}
	outcomes := make([]outcome, 0, 6)
	for _, a := range core.Algorithms() {
		clean, err := core.Simulate(a, baseOptions()...)
		if err != nil {
			return err
		}
		attacked, err := core.Simulate(a, append(baseOptions(),
			core.WithFreeRiders(selfishShare, core.MostEffectiveAttack(a)))...)
		if err != nil {
			return err
		}
		outcomes = append(outcomes, outcome{a, clean, attacked})
	}

	fmt.Printf("%-12s | %-22s | %-30s\n", "", "all devices compliant", fmt.Sprintf("%.0f%% selfish devices", selfishShare*100))
	fmt.Printf("%-12s | %10s %10s | %10s %10s %8s\n",
		"mechanism", "fleet done", "p90 (s)", "fleet done", "p90 (s)", "leaked")
	fmt.Println(pad("-", 84))
	for _, o := range outcomes {
		fmt.Printf("%-12s | %9.0f%% %10s | %9.0f%% %10s %7.1f%%\n",
			o.algo,
			100*o.clean.CompletionFraction(), p90(o.clean),
			100*o.attacked.CompletionFraction(), p90(o.attacked),
			100*o.attacked.Susceptibility())
	}

	fmt.Println("\nReading the table: 'fleet done' is the fraction of compliant devices")
	fmt.Println("that finished within the horizon, 'p90' the 90th-percentile update")
	fmt.Println("latency, 'leaked' the share of device upload bandwidth captured by the")
	fmt.Println("selfish devices. Altruism ships fastest but leaks the most; T-Chain")
	fmt.Println("leaks almost nothing at comparable latency (paper Figs. 4-5).")
	return nil
}

func baseOptions() []core.Option {
	return []core.Option{
		core.WithScale(fleetSize, updatePieces),
		core.WithSeed(runSeed),
		core.WithHorizon(horizonSecs),
		core.WithSeeder(2 << 20), // a well-provisioned origin: 2 MB/s
	}
}

func p90(r *core.Result) string {
	s := r.DownloadTimeSummary()
	if s.N == 0 {
		return "never"
	}
	return fmt.Sprintf("%.0f", s.P90)
}

func pad(s string, n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = s[0]
	}
	return string(out)
}
