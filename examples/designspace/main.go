// Design-space guide: the paper's stated purpose is "a guide that operators
// can use to choose the incentive mechanisms that achieve their desired
// performance tradeoffs." This example uses the analytical API
// (core.Equilibrium) to map the fairness–efficiency frontier as the
// operator's population changes — no simulation, just Section IV's closed
// forms — then cross-checks one point against the simulator.
//
//	go run ./examples/designspace
package main

import (
	"fmt"
	"math"
	"os"

	"repro/internal/bandwidth"
	"repro/internal/core"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "designspace: %v\n", err)
		os.Exit(1)
	}
}

// spreadDistribution mirrors population's tiers as a bandwidth mix with a
// 64 KB/s base rate.
func spreadDistribution(spread float64) bandwidth.Distribution {
	const base = 64 << 10
	return bandwidth.Distribution{Classes: []bandwidth.Class{
		{Name: "t1", Rate: base, Weight: 1},
		{Name: "t2", Rate: base * (1 + (spread-1)/3), Weight: 1},
		{Name: "t3", Rate: base * (1 + 2*(spread-1)/3), Weight: 1},
		{Name: "t4", Rate: base * spread, Weight: 1},
	}}
}

// population builds an N-user capacity vector whose heterogeneity is
// controlled by spread: capacity tiers 1x..spread·x in four equal groups.
func population(n int, spread float64) []float64 {
	tiers := []float64{1, 1 + (spread-1)/3, 1 + 2*(spread-1)/3, spread}
	caps := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		caps = append(caps, tiers[i%len(tiers)])
	}
	return caps
}

func run() error {
	fmt.Println("How heterogeneity moves the fairness-efficiency frontier (Section IV-A)")
	fmt.Println("E = expected average download time (lower = more efficient), relative to Lemma 1's optimum")
	fmt.Println("F = mean |log(d/u)| (0 = perfectly fair)")
	fmt.Println()

	spreads := []float64{1, 2, 8, 32}
	fmt.Printf("%-12s", "mechanism")
	for _, spread := range spreads {
		fmt.Printf("  %18s", fmt.Sprintf("spread %gx", spread))
	}
	fmt.Println("   (E/E*, F)")
	for _, a := range core.Algorithms() {
		fmt.Printf("%-12s", a)
		for _, spread := range spreads {
			eq, err := core.NewEquilibrium(population(40, spread), 1)
			if err != nil {
				return err
			}
			e, f := eq.Evaluate(a)
			cell := "stalls"
			if !math.IsInf(e, 1) {
				fStr := fmt.Sprintf("%.2f", f)
				if math.IsNaN(f) {
					fStr = "n/a"
				}
				cell = fmt.Sprintf("%.2f, %s", e/eq.OptimalEfficiency(), fStr)
			}
			fmt.Printf("  %18s", cell)
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("Reading the table: with homogeneous users (1x) every exchanging mechanism")
	fmt.Println("sits at the optimum and is perfectly fair — the tradeoff only appears with")
	fmt.Println("heterogeneity, where altruism buys efficiency by subsidizing slow users")
	fmt.Println("(F grows) while T-Chain/FairTorrent hold F = 0 at an efficiency cost.")

	// Cross-check the 8x point against the simulator.
	fmt.Println()
	fmt.Println("Simulator cross-check at spread 8x (120 peers, 16 MB, seed 3):")
	for _, a := range []core.Algorithm{core.TChain, core.Altruism} {
		res, err := core.Simulate(a,
			core.WithScale(120, 64),
			core.WithSeed(3),
			core.WithHorizon(4000),
			core.WithBandwidth(spreadDistribution(8)),
		)
		if err != nil {
			return err
		}
		fmt.Printf("  %-12s meanDL %6.0fs   F(Eq.3) %.2f\n", a, res.MeanDownloadTime(), res.LogFairness())
	}
	fmt.Println("The simulated ordering matches the closed forms: altruism faster, T-Chain fairer.")
	return nil
}
