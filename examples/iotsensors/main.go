// IoT sensor-data exchange: the paper's second motivating scenario —
// sensors exchanging measurement chunks with each other. Sensor uplinks
// are slow and nearly uniform, energy makes contribution costly (so
// free-riding is tempting), and the deployment wants every node to end up
// with the full measurement set.
//
// The example sweeps the free-rider fraction and shows how each mechanism's
// dissemination latency and fairness degrade — the operator's guide to how
// much selfishness each incentive design tolerates.
//
//	go run ./examples/iotsensors
package main

import (
	"fmt"
	"os"

	"repro/internal/bandwidth"
	"repro/internal/core"
)

const (
	sensors     = 150
	chunks      = 48 // 12 MB of measurements in 256 KB chunks
	seed        = 11
	horizonSecs = 30000
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "iotsensors: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// Sensor radios: one slow uniform class (64 kbit/s up).
	uplink := bandwidth.UniformDistribution(64 * 1000 / 8)

	fmt.Printf("%d sensors, %d MB measurement set, uniform 64 kbit/s uplinks\n\n", sensors, chunks/4)
	fmt.Printf("%-12s", "mechanism")
	fractions := []float64{0, 0.1, 0.3}
	for _, f := range fractions {
		fmt.Printf("  %14s", fmt.Sprintf("%.0f%% selfish", f*100))
	}
	fmt.Println("   (mean dissemination time, s)")

	for _, a := range core.Algorithms() {
		fmt.Printf("%-12s", a)
		for _, f := range fractions {
			opts := []core.Option{
				core.WithScale(sensors, chunks),
				core.WithSeed(seed),
				core.WithHorizon(horizonSecs),
				core.WithBandwidth(uplink),
				core.WithSeeder(512 << 10), // the gateway node
			}
			if f > 0 {
				opts = append(opts, core.WithFreeRiders(f, core.MostEffectiveAttack(a)))
			}
			res, err := core.Simulate(a, opts...)
			if err != nil {
				return err
			}
			cell := "never"
			if res.CompletionFraction() > 0.999 {
				cell = fmt.Sprintf("%.0f", res.MeanDownloadTime())
			} else if res.CompletionFraction() > 0 {
				cell = fmt.Sprintf("%.0f (%.0f%%)", res.MeanDownloadTime(), 100*res.CompletionFraction())
			}
			fmt.Printf("  %14s", cell)
		}
		fmt.Println()
	}

	fmt.Println("\nWith uniform uplinks every mechanism is fair by construction, so the")
	fmt.Println("choice is purely about dissemination speed vs attack tolerance: altruism")
	fmt.Println("degrades steadily as selfish sensors multiply, while T-Chain (and, less")
	fmt.Println("so, BitTorrent) hold their latency because selfish sensors get nothing.")
	return nil
}
