// Live cluster: distribute a real file between actual peers over TCP on
// localhost, using the live node (internal/node) rather than the
// simulator. One seed plus N leechers run T-Chain with real AES-sealed
// pieces and escrowed keys; one optional free-rider demonstrates that it
// ends up with ciphertext it cannot read.
//
//	go run ./examples/livecluster
//	go run ./examples/livecluster -algo altruism -leechers 8 -freerider=false
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/algo"
	"repro/internal/node"
	"repro/internal/piece"
	"repro/internal/transport"
)

func main() {
	algoName := flag.String("algo", "tchain", "incentive mechanism for the cluster")
	leechers := flag.Int("leechers", 5, "number of downloading peers")
	freeRider := flag.Bool("freerider", true, "add one free-riding peer")
	pieces := flag.Int("pieces", 64, "file pieces of 64 KB each")
	flag.Parse()

	if err := run(*algoName, *leechers, *freeRider, *pieces); err != nil {
		fmt.Fprintf(os.Stderr, "livecluster: %v\n", err)
		os.Exit(1)
	}
}

func run(algoName string, leechers int, withFreeRider bool, numPieces int) error {
	mechanism, err := algo.Parse(algoName)
	if err != nil {
		return err
	}
	const pieceSize = 64 << 10
	manifest, err := piece.SyntheticManifest(numPieces, pieceSize)
	if err != nil {
		return err
	}
	content := make([]byte, 0, manifest.FileSize)
	for i := 0; i < numPieces; i++ {
		content = append(content, piece.SyntheticPiece(i, pieceSize)...)
	}

	total := leechers
	freeRiders := map[int]bool{}
	if withFreeRider {
		total++
		freeRiders[total] = true
	}
	fmt.Printf("distributing %d KB over TCP, mechanism %v, %d leechers",
		manifest.FileSize/1024, mechanism, leechers)
	if withFreeRider {
		fmt.Print(", 1 free-rider")
	}
	fmt.Println()

	start := time.Now()
	cluster, err := node.StartCluster(manifest, content,
		node.WithAlgorithm(mechanism),
		node.WithTransport(transport.NewTCP()),
		node.WithListenAddr(func(int) string { return "127.0.0.1:0" }),
		node.WithLeechers(total),
		node.WithFreeRiders(freeRiders),
		node.WithUploadRate(8<<20), // 8 MB/s per peer keeps the demo quick
	)
	if err != nil {
		return err
	}
	defer cluster.Stop()

	for _, n := range cluster.Nodes {
		role := "leecher"
		switch {
		case n.ID() == 0:
			role = "seed"
		case freeRiders[n.ID()]:
			role = "free-rider"
		}
		fmt.Printf("  node %d (%s) listening on %s\n", n.ID(), role, n.Addr())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := cluster.WaitAllCompleteContext(ctx); err != nil {
		return fmt.Errorf("compliant leechers did not complete in time: %w", err)
	}
	fmt.Printf("\nall %d compliant leechers completed in %v\n", leechers, time.Since(start).Round(time.Millisecond))

	// Verify a leecher's assembled bytes match the original content.
	assembled, err := cluster.Nodes[1].StoreHandle().Assemble()
	if err != nil {
		return err
	}
	if !bytes.Equal(assembled, content) {
		return fmt.Errorf("assembled content does not match the original")
	}
	fmt.Println("leecher 1's assembled file verified byte-for-byte")

	fmt.Println("\nfinal node stats:")
	for _, n := range cluster.Nodes {
		s := n.Stats()
		fmt.Printf("  node %d: pieces %d/%d, uploaded %d KB, verified-downloaded %d KB, sealed-pending %d\n",
			s.ID, s.Pieces, numPieces, int(s.UploadedBytes)/1024, int(s.CreditedBytes)/1024, s.SealedPending)
	}
	if withFreeRider {
		fr := cluster.Nodes[len(cluster.Nodes)-1].Stats()
		if mechanism == algo.TChain && fr.Pieces == 0 {
			fmt.Println("\nthe free-rider holds only undecryptable ciphertext — T-Chain's key")
			fmt.Println("escrow means reneging on reciprocation earns nothing (paper Table III).")
		}
	}
	return nil
}
