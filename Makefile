# Developer entry points. `make check` is the CI gate; `make bench`
# records the parallel-runner trajectory numbers to BENCH_parallel.json.

.PHONY: check test bench bench-observability bench-scale bench-node bench-metrics bench-discovery bench-attest bench-trace trace-slowest

check:
	./scripts/check.sh

test:
	go build ./... && go test ./...

bench:
	./scripts/bench.sh

bench-observability:
	./scripts/bench.sh observability

bench-scale:
	./scripts/bench.sh scale

bench-node:
	./scripts/bench.sh node

bench-metrics:
	./scripts/bench.sh metrics

bench-discovery:
	./scripts/bench.sh discovery

bench-attest:
	./scripts/bench.sh attest

bench-trace:
	./scripts/bench.sh trace

trace-slowest:
	./scripts/trace_slowest.sh
