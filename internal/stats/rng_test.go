package stats

import (
	"testing"
	"testing/quick"
)

func TestNewRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestWeightedChoiceDegenerate(t *testing.T) {
	rng := NewRNG(1)
	if got := WeightedChoice(rng, nil); got != -1 {
		t.Errorf("empty = %d, want -1", got)
	}
	if got := WeightedChoice(rng, []float64{0, 0}); got != -1 {
		t.Errorf("all zero = %d, want -1", got)
	}
	if got := WeightedChoice(rng, []float64{0, 5, 0}); got != 1 {
		t.Errorf("single positive = %d, want 1", got)
	}
	if got := WeightedChoice(rng, []float64{-1, 2}); got != 1 {
		t.Errorf("negative treated as zero: got %d, want 1", got)
	}
}

func TestWeightedChoiceDistribution(t *testing.T) {
	rng := NewRNG(7)
	weights := []float64{1, 3, 6}
	counts := make([]int, 3)
	const trials = 60000
	for i := 0; i < trials; i++ {
		counts[WeightedChoice(rng, weights)]++
	}
	for i, w := range weights {
		got := float64(counts[i]) / trials
		want := w / 10
		if got < want-0.02 || got > want+0.02 {
			t.Errorf("index %d frequency %.3f, want ~%.3f", i, got, want)
		}
	}
}

func TestWeightedChoiceAlwaysValidProperty(t *testing.T) {
	rng := NewRNG(99)
	f := func(raw []uint8) bool {
		weights := make([]float64, len(raw))
		anyPos := false
		for i, r := range raw {
			weights[i] = float64(r)
			if r > 0 {
				anyPos = true
			}
		}
		idx := WeightedChoice(rng, weights)
		if !anyPos {
			return idx == -1
		}
		return idx >= 0 && idx < len(weights) && weights[idx] > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	rng := NewRNG(3)
	got := SampleWithoutReplacement(rng, 10, 4)
	if len(got) != 4 {
		t.Fatalf("len = %d, want 4", len(got))
	}
	seen := make(map[int]bool, len(got))
	for _, idx := range got {
		if idx < 0 || idx >= 10 {
			t.Errorf("index %d out of range", idx)
		}
		if seen[idx] {
			t.Errorf("duplicate index %d", idx)
		}
		seen[idx] = true
	}
	if got := SampleWithoutReplacement(rng, 3, 10); len(got) != 3 {
		t.Errorf("k>n returned %d items, want 3", len(got))
	}
	if got := SampleWithoutReplacement(rng, 0, 5); got != nil {
		t.Errorf("n=0 returned %v", got)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	rng := NewRNG(5)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	Shuffle(rng, xs)
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Errorf("shuffle changed contents: sum %d != %d", got, sum)
	}
}

func TestExponentialMean(t *testing.T) {
	rng := NewRNG(11)
	var sum float64
	const trials = 100000
	for i := 0; i < trials; i++ {
		sum += Exponential(rng, 2.5)
	}
	mean := sum / trials
	if mean < 2.4 || mean > 2.6 {
		t.Errorf("empirical mean %.3f, want ~2.5", mean)
	}
}
