package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 {
		t.Fatalf("N = %d, want 5", s.N)
	}
	if !almostEqual(s.Mean, 3, 1e-12) {
		t.Errorf("Mean = %g, want 3", s.Mean)
	}
	if !almostEqual(s.Median, 3, 1e-12) {
		t.Errorf("Median = %g, want 3", s.Median)
	}
	if s.Min != 1 || s.Max != 5 {
		t.Errorf("Min,Max = %g,%g want 1,5", s.Min, s.Max)
	}
	if !almostEqual(s.Stddev, math.Sqrt(2), 1e-12) {
		t.Errorf("Stddev = %g, want sqrt(2)", s.Stddev)
	}
	if !almostEqual(s.Stderr, math.Sqrt(2)/math.Sqrt(5), 1e-12) {
		t.Errorf("Stderr = %g, want sqrt(2)/sqrt(5)", s.Stderr)
	}
}

func TestSummarizeStderrSingleSample(t *testing.T) {
	// One sample: no spread, zero standard error.
	s := Summarize([]float64{42})
	if s.Stderr != 0 || s.Stddev != 0 {
		t.Errorf("single-sample Stderr,Stddev = %g,%g want 0,0", s.Stderr, s.Stddev)
	}
}

func TestSummarizeEmptyAndNaN(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty N = %d", s.N)
	}
	s := Summarize([]float64{math.NaN(), 7, math.NaN()})
	if s.N != 1 || s.Mean != 7 {
		t.Errorf("NaN-skipping summary = %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := Quantile(xs, 0); got != 10 {
		t.Errorf("q0 = %g", got)
	}
	if got := Quantile(xs, 1); got != 40 {
		t.Errorf("q1 = %g", got)
	}
	if got := Quantile(xs, 0.5); !almostEqual(got, 25, 1e-12) {
		t.Errorf("q0.5 = %g, want 25", got)
	}
	if got := Quantile(nil, 0.5); !math.IsNaN(got) {
		t.Errorf("empty quantile = %g, want NaN", got)
	}
	if got := Quantile(xs, 1.5); !math.IsNaN(got) {
		t.Errorf("out-of-range q = %g, want NaN", got)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q1 := float64(a%101) / 100
		q2 := float64(b%101) / 100
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		return Quantile(xs, q1) <= Quantile(xs, q2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJainIndexBounds(t *testing.T) {
	if got := JainIndex([]float64{5, 5, 5, 5}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("equal allocations = %g, want 1", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); !almostEqual(got, 0.25, 1e-12) {
		t.Errorf("single winner = %g, want 0.25", got)
	}
	if got := JainIndex(nil); !math.IsNaN(got) {
		t.Errorf("empty = %g, want NaN", got)
	}
	if got := JainIndex([]float64{0, 0}); !math.IsNaN(got) {
		t.Errorf("all zero = %g, want NaN", got)
	}
}

func TestJainIndexRangeProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		anyPos := false
		for i, r := range raw {
			xs[i] = float64(r)
			if r > 0 {
				anyPos = true
			}
		}
		if !anyPos {
			return true
		}
		j := JainIndex(xs)
		lo := 1/float64(len(xs)) - 1e-12
		return j >= lo && j <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogFairness(t *testing.T) {
	// Perfectly fair: d == u.
	if got := LogFairness([]float64{2, 3}, []float64{2, 3}); got != 0 {
		t.Errorf("fair F = %g, want 0", got)
	}
	// d = 2u everywhere -> F = ln 2.
	got := LogFairness([]float64{2, 4}, []float64{1, 2})
	if !almostEqual(got, math.Log(2), 1e-12) {
		t.Errorf("F = %g, want ln2", got)
	}
	// Zero rates are excluded.
	got = LogFairness([]float64{0, 4}, []float64{1, 2})
	if !almostEqual(got, math.Log(2), 1e-12) {
		t.Errorf("F with zero d = %g, want ln2", got)
	}
	if got := LogFairness([]float64{0}, []float64{0}); !math.IsNaN(got) {
		t.Errorf("all-zero F = %g, want NaN", got)
	}
}

func TestRatioFairness(t *testing.T) {
	// u == d -> 1.
	if got := RatioFairness([]float64{3, 5}, []float64{3, 5}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("fair ratio = %g, want 1", got)
	}
	// u = 0 (free-rider) -> 0 contribution to the mean.
	got := RatioFairness([]float64{0, 4}, []float64{2, 4})
	if !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("ratio = %g, want 0.5", got)
	}
}

func TestMeanSum(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %g", got)
	}
	if got := Mean(nil); !math.IsNaN(got) {
		t.Errorf("Mean(nil) = %g, want NaN", got)
	}
	if got := Sum([]float64{1.5, 2.5}); got != 4 {
		t.Errorf("Sum = %g", got)
	}
}
