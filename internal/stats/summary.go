package stats

import (
	"math"
	"sort"
)

// Summary holds descriptive statistics for a sample. Stderr is the
// standard error of the mean (Stddev/√N), the spread the replication
// runner reports as "mean ± stderr" across repeated seeded runs.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Stderr float64
	Min    float64
	Max    float64
	Median float64
	P10    float64
	P90    float64
}

// Summarize computes descriptive statistics over xs. NaN entries are skipped.
// An empty (or all-NaN) input yields a zero-valued Summary with N == 0.
func Summarize(xs []float64) Summary {
	clean := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			clean = append(clean, x)
		}
	}
	if len(clean) == 0 {
		return Summary{}
	}
	sort.Float64s(clean)

	var sum, sumSq float64
	for _, x := range clean {
		sum += x
		sumSq += x * x
	}
	n := float64(len(clean))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0 // guard against catastrophic cancellation
	}
	return Summary{
		N:      len(clean),
		Mean:   mean,
		Stddev: math.Sqrt(variance),
		Stderr: math.Sqrt(variance / n),
		Min:    clean[0],
		Max:    clean[len(clean)-1],
		Median: quantileSorted(clean, 0.5),
		P10:    quantileSorted(clean, 0.1),
		P90:    quantileSorted(clean, 0.9),
	}
}

// Quantile returns the q-quantile (q in [0,1]) of xs using linear
// interpolation between closest ranks. It copies and sorts its input.
// It returns NaN for empty input or q outside [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}

// JainIndex returns Jain's fairness index (Σx)² / (n·Σx²) for nonnegative
// allocations xs. It is 1 when all allocations are equal and 1/n when one
// user receives everything. Returns NaN for empty input or an all-zero
// vector.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return math.NaN()
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// LogFairness computes the paper's fairness statistic F (Eq. 3):
// the mean of |log(dᵢ/uᵢ)| over users with positive uᵢ and dᵢ.
// Users with a zero rate on either side are excluded (their ratio is
// undefined); if no user qualifies the result is NaN.
func LogFairness(download, upload []float64) float64 {
	n := min(len(download), len(upload))
	var sum float64
	var count int
	for i := 0; i < n; i++ {
		if download[i] <= 0 || upload[i] <= 0 {
			continue
		}
		sum += math.Abs(math.Log(download[i] / upload[i]))
		count++
	}
	if count == 0 {
		return math.NaN()
	}
	return sum / float64(count)
}

// RatioFairness computes the experimental fairness metric the paper uses in
// Section V: the mean of uᵢ/dᵢ over users with positive dᵢ. Perfectly fair
// systems score 1; values below 1 mean users download more than they upload
// on average.
func RatioFairness(upload, download []float64) float64 {
	n := min(len(download), len(upload))
	var sum float64
	var count int
	for i := 0; i < n; i++ {
		if download[i] <= 0 {
			continue
		}
		sum += upload[i] / download[i]
		count++
	}
	if count == 0 {
		return math.NaN()
	}
	return sum / float64(count)
}
