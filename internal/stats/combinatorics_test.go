package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

func TestLogFactorialSmallValues(t *testing.T) {
	want := []float64{1, 1, 2, 6, 24, 120, 720, 5040}
	for n, w := range want {
		got := math.Exp(LogFactorial(n))
		if !almostEqual(got, w, 1e-9) {
			t.Errorf("exp(LogFactorial(%d)) = %g, want %g", n, got, w)
		}
	}
}

func TestLogFactorialPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LogFactorial(-1) did not panic")
		}
	}()
	LogFactorial(-1)
}

func TestBinomialKnownValues(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120},
		{52, 5, 2598960}, {100, 50, 1.0089134454556417e29},
		{5, 6, 0}, {5, -1, 0},
	}
	for _, c := range cases {
		got := Binomial(c.n, c.k)
		if !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Binomial(%d,%d) = %g, want %g", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialSymmetryProperty(t *testing.T) {
	f := func(n, k uint8) bool {
		nn := int(n % 60)
		kk := int(k % 60)
		return almostEqual(LogBinomial(nn, kk), LogBinomial(nn, nn-kk), 1e-9) ||
			(kk > nn) // both -Inf handled by almostEqual equality, skip degenerate
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinomialPascalProperty(t *testing.T) {
	// C(n,k) = C(n-1,k-1) + C(n-1,k) for 1 <= k <= n-1.
	f := func(n, k uint8) bool {
		nn := 2 + int(n%40)
		kk := 1 + int(k)%(nn-1)
		lhs := Binomial(nn, kk)
		rhs := Binomial(nn-1, kk-1) + Binomial(nn-1, kk)
		return almostEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBinomialRatio(t *testing.T) {
	if got := BinomialRatio(10, 3, 10, 3); got != 1 {
		t.Errorf("equal ratio = %g, want 1", got)
	}
	// Large arguments that overflow individually must stay finite as a ratio.
	got := BinomialRatio(2000, 1000, 2000, 999)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("large ratio not finite: %g", got)
	}
	// C(2000,1000)/C(2000,999) = 1001/1001... = (2000-999)/1000 ratio check:
	// C(n,k)/C(n,k-1) = (n-k+1)/k
	want := float64(2000-1000+1) / 1000
	if !almostEqual(got, want, 1e-9) {
		t.Errorf("ratio = %g, want %g", got, want)
	}
	if got := BinomialRatio(5, 6, 5, 2); got != 0 {
		t.Errorf("zero numerator = %g, want 0", got)
	}
	if got := BinomialRatio(5, 2, 5, 6); !math.IsInf(got, 1) {
		t.Errorf("zero denominator = %g, want +Inf", got)
	}
	if got := BinomialRatio(5, 6, 5, 7); !math.IsNaN(got) {
		t.Errorf("0/0 = %g, want NaN", got)
	}
}

func TestPow1mXN(t *testing.T) {
	cases := []struct {
		x, n, want float64
	}{
		{0.5, 2, 0.25},
		{0, 100, 1},
		{1, 5, 0},
		{0.3, 0, 1},
		{1e-9, 1e9, math.Exp(-1)}, // (1-eps)^(1/eps) -> 1/e, stable in log space
	}
	for _, c := range cases {
		got := Pow1mXN(c.x, c.n)
		if !almostEqual(got, c.want, 1e-6) {
			t.Errorf("Pow1mXN(%g,%g) = %g, want %g", c.x, c.n, got, c.want)
		}
	}
}

func TestPow1mXNMonotoneProperty(t *testing.T) {
	// For fixed n > 0, Pow1mXN decreases in x.
	f := func(a, b uint16) bool {
		x1 := float64(a%1000) / 1000
		x2 := float64(b%1000) / 1000
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		return Pow1mXN(x1, 10) >= Pow1mXN(x2, 10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
