package stats

import (
	"math/rand"
)

// NewRNG returns a deterministic *rand.Rand seeded with seed. Every
// stochastic component in this repository takes an explicit RNG so that
// simulations replay bit-for-bit.
func NewRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// WeightedChoice picks an index in [0, len(weights)) with probability
// proportional to weights[i]. Negative weights are treated as zero.
// It returns -1 if all weights are zero or the slice is empty.
func WeightedChoice(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return -1
	}
	target := rng.Float64() * total
	var acc float64
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		if target < acc {
			return i
		}
	}
	// Floating-point slack: return the last positive-weight index.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return -1
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0, n). If k >= n it returns all n indices in shuffled order.
func SampleWithoutReplacement(rng *rand.Rand, n, k int) []int {
	if n <= 0 || k <= 0 {
		return nil
	}
	perm := rng.Perm(n)
	if k > n {
		k = n
	}
	return perm[:k]
}

// Shuffle permutes xs in place using rng.
func Shuffle[T any](rng *rand.Rand, xs []T) {
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Exponential draws from an exponential distribution with the given mean.
func Exponential(rng *rand.Rand, mean float64) float64 {
	return rng.ExpFloat64() * mean
}
