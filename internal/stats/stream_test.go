package stats

import (
	"math"
	"testing"
	"unsafe"
)

func TestStreamDeterministicPerLane(t *testing.T) {
	a := NewStream(42, 7)
	b := NewStream(42, 7)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
}

func TestStreamIndependentAcrossLanes(t *testing.T) {
	a := NewStream(42, 0)
	b := NewStream(42, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("lanes 0 and 1 collided on %d of 1000 draws", same)
	}
}

func TestStreamFloat64Range(t *testing.T) {
	r := NewStream(1, 3)
	var sum float64
	const n = 10000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 || math.IsNaN(f) {
			t.Fatalf("Float64 out of range: %g", f)
		}
		sum += f
	}
	if mean := sum / n; mean < 0.45 || mean > 0.55 {
		t.Fatalf("Float64 mean %.3f implausible for a uniform source", mean)
	}
}

func TestStreamStateIsSmall(t *testing.T) {
	// The whole point of the custom source: per-lane state must stay tiny so
	// million-peer swarms can afford one stream per lane.
	if size := unsafe.Sizeof(xoshiro256ss{}); size > 64 {
		t.Fatalf("xoshiro state grew to %d bytes", size)
	}
}
