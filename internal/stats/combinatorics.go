// Package stats provides the numerical substrate for the incentive-mechanism
// analysis and simulator: combinatorics for the piece-availability model,
// summary statistics, quantiles, fairness indices, histograms, and
// deterministic random-number helpers.
//
// Everything in this package is allocation-conscious and safe for concurrent
// use unless a type documents otherwise.
package stats

import (
	"fmt"
	"math"
)

// LogFactorial returns ln(n!) computed via the log-gamma function.
// It panics if n is negative, since a negative factorial indicates a
// programming error in a caller rather than a recoverable condition.
func LogFactorial(n int) float64 {
	if n < 0 {
		panic(fmt.Sprintf("stats: LogFactorial of negative %d", n))
	}
	lg, _ := math.Lgamma(float64(n) + 1)
	return lg
}

// LogBinomial returns ln(C(n, k)). It returns math.Inf(-1) when the
// coefficient is zero (k < 0 or k > n), matching the convention that
// exp(LogBinomial) == Binomial exactly in the degenerate cases.
func LogBinomial(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	return LogFactorial(n) - LogFactorial(k) - LogFactorial(n-k)
}

// Binomial returns C(n, k) as a float64. Values overflow to +Inf for very
// large arguments; callers that only need ratios should use LogBinomial.
func Binomial(n, k int) float64 {
	return math.Exp(LogBinomial(n, k))
}

// BinomialRatio returns C(n1, k1) / C(n2, k2) computed in log space so that
// the ratio stays finite even when the individual coefficients overflow.
// A zero numerator yields 0; a zero denominator yields +Inf (or NaN if both
// are zero), mirroring IEEE division.
func BinomialRatio(n1, k1, n2, k2 int) float64 {
	num := LogBinomial(n1, k1)
	den := LogBinomial(n2, k2)
	if math.IsInf(num, -1) && math.IsInf(den, -1) {
		return math.NaN()
	}
	if math.IsInf(num, -1) {
		return 0
	}
	if math.IsInf(den, -1) {
		return math.Inf(1)
	}
	return math.Exp(num - den)
}

// Pow1mXN returns (1-x)^n computed stably in log space for x in [0, 1].
// For x == 1 it returns 0 (for n > 0) and 1 (for n == 0).
func Pow1mXN(x float64, n float64) float64 {
	switch {
	case n == 0:
		return 1
	case x >= 1:
		return 0
	case x <= 0:
		return 1
	default:
		return math.Exp(n * math.Log1p(-x))
	}
}
