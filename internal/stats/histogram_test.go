package stats

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramObserve(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Observe(0.5) // bin 0
	h.Observe(9.5) // bin 4
	h.Observe(-3)  // clamps to bin 0
	h.Observe(42)  // clamps to bin 4
	h.Observe(5)   // bin 2
	if h.Total() != 5 {
		t.Fatalf("Total = %d", h.Total())
	}
	want := []int{2, 0, 1, 0, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], w)
		}
	}
}

func TestHistogramCDF(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	for _, v := range []float64{0.5, 1.5, 2.5, 3.5} {
		h.Observe(v)
	}
	cdf := h.CDF()
	want := []float64{0.25, 0.5, 0.75, 1}
	for i, w := range want {
		if !almostEqual(cdf[i], w, 1e-12) {
			t.Errorf("cdf[%d] = %g, want %g", i, cdf[i], w)
		}
	}
	empty := NewHistogram(0, 1, 2)
	for _, v := range empty.CDF() {
		if v != 0 {
			t.Error("empty CDF not all zero")
		}
	}
}

func TestHistogramQuantileEstimate(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) + 0.5)
	}
	got := h.QuantileEstimate(0.5)
	if got < 45 || got > 55 {
		t.Errorf("median estimate = %g", got)
	}
	if got := NewHistogram(0, 1, 2).QuantileEstimate(0.5); !math.IsNaN(got) {
		t.Errorf("empty quantile = %g, want NaN", got)
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Observe(0.5)
	out := h.String()
	if !strings.Contains(out, "#") {
		t.Errorf("no bar in output: %q", out)
	}
}
