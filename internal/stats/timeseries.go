package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Point is one (time, value) observation in a TimeSeries.
type Point struct {
	T float64 `json:"t"`
	V float64 `json:"v"`
}

// TimeSeries accumulates timestamped observations for one metric. It is not
// safe for concurrent use; the simulator records from a single goroutine.
type TimeSeries struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// NewTimeSeries returns an empty series with the given metric name.
func NewTimeSeries(name string) *TimeSeries {
	return &TimeSeries{Name: name}
}

// Add appends an observation. Times are expected (but not required) to be
// nondecreasing; Resample sorts defensively.
func (ts *TimeSeries) Add(t, v float64) {
	ts.Points = append(ts.Points, Point{T: t, V: v})
}

// Len returns the number of observations.
func (ts *TimeSeries) Len() int { return len(ts.Points) }

// Last returns the most recent observation, or a zero Point if empty.
func (ts *TimeSeries) Last() Point {
	if len(ts.Points) == 0 {
		return Point{}
	}
	return ts.Points[len(ts.Points)-1]
}

// At returns the last value recorded at or before time t, using step
// interpolation (the series is a right-continuous step function). It returns
// def if t precedes the first observation.
func (ts *TimeSeries) At(t, def float64) float64 {
	idx := sort.Search(len(ts.Points), func(i int) bool { return ts.Points[i].T > t })
	if idx == 0 {
		return def
	}
	return ts.Points[idx-1].V
}

// Resample returns the series sampled at a fixed interval over [0, horizon]
// using step interpolation, which is what the figure harnesses emit.
func (ts *TimeSeries) Resample(interval, horizon float64) *TimeSeries {
	sorted := make([]Point, len(ts.Points))
	copy(sorted, ts.Points)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].T < sorted[j].T })

	out := NewTimeSeries(ts.Name)
	if interval <= 0 {
		return out
	}
	idx := 0
	last := 0.0
	for t := 0.0; t <= horizon+1e-9; t += interval {
		for idx < len(sorted) && sorted[idx].T <= t {
			last = sorted[idx].V
			idx++
		}
		out.Add(t, last)
	}
	return out
}

// CSV renders the series as "t,v" lines with a header.
func (ts *TimeSeries) CSV() string {
	var sb strings.Builder
	sb.WriteString("t,")
	sb.WriteString(ts.Name)
	sb.WriteByte('\n')
	for _, p := range ts.Points {
		fmt.Fprintf(&sb, "%.4f,%.6f\n", p.T, p.V)
	}
	return sb.String()
}

// MergeCSV renders several series against a shared time column. All series
// must already be resampled onto the same time grid; shorter series are
// padded with their last value.
func MergeCSV(series ...*TimeSeries) string {
	var sb strings.Builder
	sb.WriteString("t")
	maxLen := 0
	for _, ts := range series {
		sb.WriteByte(',')
		sb.WriteString(ts.Name)
		if ts.Len() > maxLen {
			maxLen = ts.Len()
		}
	}
	sb.WriteByte('\n')
	for i := 0; i < maxLen; i++ {
		var t float64
		for _, ts := range series {
			if i < ts.Len() {
				t = ts.Points[i].T
				break
			}
		}
		fmt.Fprintf(&sb, "%.4f", t)
		for _, ts := range series {
			v := 0.0
			switch {
			case i < ts.Len():
				v = ts.Points[i].V
			case ts.Len() > 0:
				v = ts.Points[ts.Len()-1].V
			}
			fmt.Fprintf(&sb, ",%.6f", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
