package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width-bin histogram over [Lo, Hi). Values outside the
// range are clamped into the first/last bin so mass is never silently lost.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins over [lo, hi).
// It panics on a non-positive bin count or an empty range, which indicate
// caller bugs.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic(fmt.Sprintf("stats: NewHistogram bins=%d", bins))
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: NewHistogram empty range [%g,%g)", lo, hi))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	idx := int(float64(len(h.Counts)) * (v - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
	h.total++
}

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// CDF returns the empirical CDF evaluated at each bin's upper edge.
func (h *Histogram) CDF() []float64 {
	out := make([]float64, len(h.Counts))
	if h.total == 0 {
		return out
	}
	acc := 0
	for i, c := range h.Counts {
		acc += c
		out[i] = float64(acc) / float64(h.total)
	}
	return out
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	width := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*width
}

// QuantileEstimate returns an estimate of the q-quantile from bin counts,
// or NaN when the histogram is empty.
func (h *Histogram) QuantileEstimate(q float64) float64 {
	if h.total == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	target := q * float64(h.total)
	acc := 0.0
	for i, c := range h.Counts {
		acc += float64(c)
		if acc >= target {
			return h.BinCenter(i)
		}
	}
	return h.BinCenter(len(h.Counts) - 1)
}

// String renders a compact ASCII sketch, useful in example programs.
func (h *Histogram) String() string {
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var sb strings.Builder
	for i, c := range h.Counts {
		bar := 0
		if maxCount > 0 {
			bar = c * 40 / maxCount
		}
		fmt.Fprintf(&sb, "%10.2f | %s %d\n", h.BinCenter(i), strings.Repeat("#", bar), c)
	}
	return sb.String()
}
