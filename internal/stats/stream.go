package stats

import (
	"math/rand"
)

// xoshiro256ss is a small-state rand.Source64: four uint64 words instead of
// the ~5 KB lagged-Fibonacci table behind rand.NewSource. The sharded
// simulator allocates one independent stream per peer lane, so at 10⁵–10⁶
// peers the per-stream footprint is what bounds swarm size; 32 bytes keeps a
// million streams under 100 MB including the rand.Rand wrappers.
//
// The generator is Blackman & Vigna's xoshiro256**; stream seeding goes
// through splitmix64 (their recommended initializer) over a mix of the run
// seed and the lane number, so distinct lanes get well-separated streams and
// the same (seed, lane) pair always replays the same sequence.
type xoshiro256ss struct {
	s [4]uint64
}

// splitmix64 advances *x and returns the next output; used only for seeding.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func newXoshiro(seed int64, stream int) *xoshiro256ss {
	x := uint64(seed)*0x9e3779b97f4a7c15 ^ uint64(stream)
	g := &xoshiro256ss{}
	for i := range g.s {
		g.s[i] = splitmix64(&x)
	}
	// splitmix64 output is equidistributed, so an all-zero state (the one
	// degenerate xoshiro state) is unreachable in practice; guard anyway.
	if g.s[0]|g.s[1]|g.s[2]|g.s[3] == 0 {
		g.s[0] = 0x9e3779b97f4a7c15
	}
	return g
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

func (g *xoshiro256ss) Uint64() uint64 {
	s := &g.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Int63 implements rand.Source.
func (g *xoshiro256ss) Int63() int64 { return int64(g.Uint64() >> 1) }

// Seed implements rand.Source by reseeding in place (stream 0).
func (g *xoshiro256ss) Seed(seed int64) { *g = *newXoshiro(seed, 0) }

// NewStream returns a deterministic *rand.Rand for (seed, stream) backed by
// a 32-byte xoshiro256** state. Distinct stream numbers under the same seed
// yield statistically independent sequences; the sharded simulator uses one
// stream per peer lane so every lane's draws are independent of how lanes
// are packed onto shards.
func NewStream(seed int64, stream int) *rand.Rand {
	return rand.New(newXoshiro(seed, stream))
}
