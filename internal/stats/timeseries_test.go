package stats

import (
	"strings"
	"testing"
)

func TestTimeSeriesAddLast(t *testing.T) {
	ts := NewTimeSeries("x")
	if ts.Len() != 0 || ts.Last() != (Point{}) {
		t.Fatal("empty series not zero")
	}
	ts.Add(1, 10)
	ts.Add(2, 20)
	if ts.Len() != 2 {
		t.Errorf("Len = %d", ts.Len())
	}
	if last := ts.Last(); last.T != 2 || last.V != 20 {
		t.Errorf("Last = %+v", last)
	}
}

func TestTimeSeriesAt(t *testing.T) {
	ts := NewTimeSeries("x")
	ts.Add(1, 10)
	ts.Add(3, 30)
	if got := ts.At(0.5, -1); got != -1 {
		t.Errorf("before first = %g, want default", got)
	}
	if got := ts.At(1, -1); got != 10 {
		t.Errorf("At(1) = %g, want 10", got)
	}
	if got := ts.At(2.9, -1); got != 10 {
		t.Errorf("At(2.9) = %g, want 10", got)
	}
	if got := ts.At(100, -1); got != 30 {
		t.Errorf("At(100) = %g, want 30", got)
	}
}

func TestResample(t *testing.T) {
	ts := NewTimeSeries("m")
	ts.Add(0.5, 1)
	ts.Add(1.5, 2)
	ts.Add(3.2, 3)
	rs := ts.Resample(1, 4)
	want := []float64{0, 1, 2, 2, 3}
	if rs.Len() != len(want) {
		t.Fatalf("resampled len = %d, want %d", rs.Len(), len(want))
	}
	for i, w := range want {
		if rs.Points[i].V != w {
			t.Errorf("point %d = %g, want %g", i, rs.Points[i].V, w)
		}
	}
	if rs := ts.Resample(0, 4); rs.Len() != 0 {
		t.Errorf("zero interval resample len = %d", rs.Len())
	}
}

func TestResampleUnsortedInput(t *testing.T) {
	ts := NewTimeSeries("m")
	ts.Add(3, 30)
	ts.Add(1, 10)
	rs := ts.Resample(1, 3)
	if rs.Points[1].V != 10 || rs.Points[3].V != 30 {
		t.Errorf("unsorted resample wrong: %+v", rs.Points)
	}
}

func TestCSVOutput(t *testing.T) {
	ts := NewTimeSeries("speed")
	ts.Add(1, 2.5)
	csv := ts.CSV()
	if !strings.HasPrefix(csv, "t,speed\n") {
		t.Errorf("missing header: %q", csv)
	}
	if !strings.Contains(csv, "1.0000,2.500000") {
		t.Errorf("missing row: %q", csv)
	}
}

func TestMergeCSV(t *testing.T) {
	a := NewTimeSeries("a")
	a.Add(0, 1)
	a.Add(1, 2)
	b := NewTimeSeries("b")
	b.Add(0, 5)
	merged := MergeCSV(a, b)
	lines := strings.Split(strings.TrimSpace(merged), "\n")
	if lines[0] != "t,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 3 {
		t.Fatalf("line count = %d, want 3", len(lines))
	}
	// b is shorter; its last value pads.
	if !strings.Contains(lines[2], ",5.000000") {
		t.Errorf("padding row = %q", lines[2])
	}
}
