package tracing

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Trace is one causal trace: every span sharing a trace ID, sorted by
// start time.
type Trace struct {
	ID    uint64
	Spans []Span
}

// Duration is the trace's wall-clock extent: latest span end minus
// earliest span start.
func (t Trace) Duration() int64 {
	if len(t.Spans) == 0 {
		return 0
	}
	start, end := t.Spans[0].Start, t.Spans[0].End()
	for _, s := range t.Spans[1:] {
		start = min(start, s.Start)
		end = max(end, s.End())
	}
	return end - start
}

// Nodes returns the distinct node IDs that contributed spans, ascending.
func (t Trace) Nodes() []int {
	seen := map[int]bool{}
	var out []int
	for _, s := range t.Spans {
		if !seen[s.Node] {
			seen[s.Node] = true
			out = append(out, s.Node)
		}
	}
	sort.Ints(out)
	return out
}

// Traces groups spans by trace ID, slowest trace first. Spans with a zero
// trace ID (swarm-wide events: chokes, rewires, slow-piece samples
// outside any trace) are excluded.
func Traces(spans []Span) []Trace {
	byID := map[uint64][]Span{}
	for _, s := range spans {
		if s.TraceID == 0 {
			continue
		}
		byID[s.TraceID] = append(byID[s.TraceID], s)
	}
	out := make([]Trace, 0, len(byID))
	for id, ss := range byID {
		sort.Slice(ss, func(i, j int) bool {
			if ss[i].Start != ss[j].Start {
				return ss[i].Start < ss[j].Start
			}
			return ss[i].SpanID < ss[j].SpanID
		})
		out = append(out, Trace{ID: id, Spans: ss})
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := out[i].Duration(), out[j].Duration()
		if di != dj {
			return di > dj
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// RenderTree writes the trace as an indented span tree: children under
// their parents, siblings by start time, offsets relative to the trace's
// first span. Spans whose parent is missing (e.g. overwritten in the
// ring) render as roots.
func RenderTree(w io.Writer, t Trace) error {
	if len(t.Spans) == 0 {
		return nil
	}
	base := t.Spans[0].Start
	for _, s := range t.Spans {
		base = min(base, s.Start)
	}
	present := map[uint64]bool{}
	for _, s := range t.Spans {
		present[s.SpanID] = true
	}
	children := map[uint64][]Span{}
	var roots []Span
	for _, s := range t.Spans {
		if s.ParentID != 0 && present[s.ParentID] && s.ParentID != s.SpanID {
			children[s.ParentID] = append(children[s.ParentID], s)
		} else {
			roots = append(roots, s)
		}
	}
	if _, err := fmt.Fprintf(w, "trace %016x: %d spans across nodes %v, %.3fms\n",
		t.ID, len(t.Spans), t.Nodes(), float64(t.Duration())/1e6); err != nil {
		return err
	}
	var render func(s Span, depth int) error
	render = func(s Span, depth int) error {
		line := fmt.Sprintf("%s%s node=%d", strings.Repeat("  ", depth+1), s.Name, s.Node)
		if s.Peer >= 0 {
			line += fmt.Sprintf(" peer=%d", s.Peer)
		}
		if s.Piece >= 0 {
			line += fmt.Sprintf(" piece=%d", s.Piece)
		}
		line += fmt.Sprintf(" +%.3fms", float64(s.Start-base)/1e6)
		if s.Dur > 0 {
			line += fmt.Sprintf(" %.3fms", float64(s.Dur)/1e6)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
		for _, c := range children[s.SpanID] {
			if err := render(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := render(r, 0); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one entry of the Chrome trace event format ("JSON Object
// Format"), loadable by chrome://tracing and Perfetto.
type chromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	Pid   int            `json:"pid"`
	Tid   uint64         `json:"tid"`
	Ts    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes spans as a Chrome trace event file. Each node
// becomes a process (pid = node ID, named via process_name metadata) and
// each trace a thread within it (tid = trace ID), so Perfetto lays the
// cross-node story of one trace out as aligned rows. Timestamps are
// rebased to the earliest span and expressed in microseconds, durations
// likewise; zero-duration spans are emitted as instant events.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	var base int64
	nodes := map[int]bool{}
	for i, s := range spans {
		if i == 0 || s.Start < base {
			base = s.Start
		}
		nodes[s.Node] = true
	}
	nodeIDs := make([]int, 0, len(nodes))
	for n := range nodes {
		nodeIDs = append(nodeIDs, n)
	}
	sort.Ints(nodeIDs)
	for _, n := range nodeIDs {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: n,
			Args: map[string]any{"name": fmt.Sprintf("node %d", n)},
		})
	}
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Pid:  s.Node,
			Tid:  s.TraceID,
			Ts:   float64(s.Start-base) / 1e3,
			Args: map[string]any{
				"trace": fmt.Sprintf("%016x", s.TraceID),
				"span":  s.SpanID,
			},
		}
		if s.ParentID != 0 {
			ev.Args["parent"] = s.ParentID
		}
		if s.Piece >= 0 {
			ev.Args["piece"] = s.Piece
		}
		if s.Peer >= 0 {
			ev.Args["peer"] = s.Peer
		}
		if s.Dur > 0 {
			ev.Ph = "X"
			dur := float64(s.Dur) / 1e3
			ev.Dur = &dur
		} else {
			ev.Ph = "i"
			ev.Scope = "t"
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
