package tracing

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestSamplingDeterministic(t *testing.T) {
	c := NewCollector(Config{SampleEvery: 4})
	var hits int
	for i := 0; i < 16; i++ {
		if c.Sample() {
			hits++
		}
	}
	if hits != 4 {
		t.Fatalf("SampleEvery=4 over 16 ticks sampled %d times, want 4", hits)
	}
	if !NewCollector(Config{SampleEvery: 1}).Sample() {
		t.Fatal("SampleEvery=1 must sample the first tick")
	}
	if NewCollector(Config{}).Sample() {
		t.Fatal("SampleEvery=0 must never sample")
	}
	var nilC *Collector
	if nilC.Sample() {
		t.Fatal("nil collector must never sample")
	}
	if nilC.SlowNs() != 0 {
		t.Fatal("nil collector SlowNs must be 0")
	}
}

func TestIDsNonzeroUnique(t *testing.T) {
	c := NewCollector(Config{SampleEvery: 1})
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := c.NewID()
		if id == 0 {
			t.Fatal("minted a zero ID")
		}
		if seen[id] {
			t.Fatalf("duplicate ID %d", id)
		}
		seen[id] = true
	}
}

func TestRingWrapDropsOldest(t *testing.T) {
	c := NewCollector(Config{SampleEvery: 1, Capacity: 4})
	for i := 1; i <= 7; i++ {
		c.Record(Span{TraceID: 1, SpanID: uint64(i), Name: SpanWireSend, Peer: -1, Piece: -1})
	}
	spans, dropped := c.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want ring capacity 4", len(spans))
	}
	if dropped != 3 {
		t.Fatalf("dropped = %d, want 3", dropped)
	}
	for i, s := range spans {
		if want := uint64(4 + i); s.SpanID != want {
			t.Fatalf("span[%d].SpanID = %d, want %d (oldest-first order)", i, s.SpanID, want)
		}
	}
}

func TestTracesGroupingAndOrder(t *testing.T) {
	spans := []Span{
		{TraceID: 1, SpanID: 1, Name: SpanRequestQueued, Start: 100, Dur: 10, Peer: -1, Piece: 0},
		{TraceID: 2, SpanID: 2, Name: SpanRequestQueued, Start: 100, Dur: 500, Peer: -1, Piece: 1},
		{TraceID: 0, SpanID: 3, Name: SpanChoke, Start: 50, Peer: 2, Piece: -1},
		{TraceID: 1, SpanID: 4, ParentID: 1, Name: SpanWireSend, Start: 110, Dur: 20, Peer: -1, Piece: 0},
	}
	ts := Traces(spans)
	if len(ts) != 2 {
		t.Fatalf("got %d traces, want 2 (zero trace ID excluded)", len(ts))
	}
	if ts[0].ID != 2 {
		t.Fatalf("slowest trace first: got trace %d, want 2", ts[0].ID)
	}
	if ts[1].ID != 1 || len(ts[1].Spans) != 2 {
		t.Fatalf("trace 1 grouping wrong: %+v", ts[1])
	}
	if got := ts[1].Duration(); got != 30 {
		t.Fatalf("trace 1 duration = %d, want 30", got)
	}
}

func TestRenderTree(t *testing.T) {
	tr := Trace{ID: 7, Spans: []Span{
		{TraceID: 7, SpanID: 1, Name: SpanRequestQueued, Node: 0, Peer: 1, Piece: 3, Start: 1000, Dur: 100},
		{TraceID: 7, SpanID: 2, ParentID: 1, Name: SpanWireSend, Node: 0, Peer: 1, Piece: 3, Start: 1100, Dur: 200},
		{TraceID: 7, SpanID: 3, ParentID: 2, Name: SpanStoreVerify, Node: 1, Peer: 0, Piece: 3, Start: 1400, Dur: 50},
	}}
	var b bytes.Buffer
	if err := RenderTree(&b, tr); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"trace 0000000000000007", SpanRequestQueued, SpanWireSend, SpanStoreVerify, "node=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("RenderTree output missing %q:\n%s", want, out)
		}
	}
	// store.verify is a grandchild: two levels deeper than the root.
	if !strings.Contains(out, "      "+SpanStoreVerify) {
		t.Fatalf("store.verify not indented as a grandchild:\n%s", out)
	}
}

func TestWriteChromeTraceValidJSON(t *testing.T) {
	spans := []Span{
		{TraceID: 1, SpanID: 1, Name: SpanRequestQueued, Node: 0, Peer: 1, Piece: 0, Start: 5_000_000, Dur: 1_000_000},
		{TraceID: 1, SpanID: 2, ParentID: 1, Name: SpanWireRecv, Node: 1, Peer: 0, Piece: 0, Start: 6_000_000},
	}
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, spans); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, b.String())
	}
	// 2 process_name metadata events + 1 duration + 1 instant.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(doc.TraceEvents))
	}
	var phX, phI, phM int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			phX++
			if ev["dur"].(float64) != 1000 {
				t.Fatalf("duration event dur = %v µs, want 1000", ev["dur"])
			}
		case "i":
			phI++
			if ev["ts"].(float64) != 1000 {
				t.Fatalf("instant ts = %v µs, want 1000 (rebased)", ev["ts"])
			}
		case "M":
			phM++
		}
	}
	if phX != 1 || phI != 1 || phM != 2 {
		t.Fatalf("event mix X=%d i=%d M=%d, want 1/1/2", phX, phI, phM)
	}
}

// BenchmarkSampleDisabled pins the disabled-path cost: a nil collector's
// Sample must be a branch, not an allocation.
func BenchmarkSampleDisabled(b *testing.B) {
	var c *Collector
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if c.Sample() {
			b.Fatal("nil collector sampled")
		}
	}
}

func BenchmarkRecord(b *testing.B) {
	c := NewCollector(Config{SampleEvery: 1})
	s := Span{TraceID: 1, SpanID: 2, Name: SpanWireSend, Peer: -1, Piece: -1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Record(s)
	}
}
