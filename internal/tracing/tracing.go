// Package tracing provides lightweight causal trace spans for the live
// node data path. A sampled piece push mints a 64-bit trace ID that is
// carried across the wire inside protocol frames (see the optional
// trace-context extension in internal/protocol); every hop appends spans
// into its node's Collector, so one trace ID reconstructs the full
// cross-node story of a piece: queued at the sender, dwelling in a bulk
// outbox behind backpressure, on the wire, verified into the store,
// attested, and credited at the ledger.
//
// The design goals, in order:
//
//  1. Zero cost when off. A nil *Collector disables everything; the node
//     hot path never allocates, locks, or reads a clock for untraced
//     frames (scripts/check.sh pins this).
//  2. Bounded memory when on. Spans land in a fixed-size ring; under
//     overload the oldest spans are overwritten and counted, never
//     blocking the data path.
//  3. Causality over precision. Span IDs are minted from one shared
//     atomic counter per Collector (a cluster shares one), so parent
//     links are unambiguous across nodes; timestamps are wall-clock
//     nanoseconds and only comparable within one machine.
package tracing

import (
	"sync"
	"sync/atomic"
)

// Span names recorded by the node. A span either has a duration (Dur > 0)
// or is an instantaneous event (Dur == 0).
const (
	SpanRequestQueued   = "request.queued"   // upload decision made -> frame accepted by the peer outbox
	SpanOutboxWait      = "outbox.wait"      // dwell in the per-peer outbox behind earlier frames (backpressure)
	SpanWireSend        = "wire.send"        // encode + syscall on the sending side
	SpanWireRecv        = "wire.recv"        // frame decoded on the receiving side (instant)
	SpanStoreVerify     = "store.verify"     // hash verification + store write
	SpanAttestSign      = "attest.sign"      // receipt signature at the receiver
	SpanLedgerCredit    = "ledger.credit"    // ledger verification + credit
	SpanAttestAck       = "attest.ack"       // signed receipt copy back at the uploader (instant)
	SpanPieceSlow       = "piece.slow"       // tail-latency sample: want -> verified exceeded SlowNs
	SpanChoke           = "choke"            // peer outbox hit the data backpressure limit (instant)
	SpanUnchoke         = "unchoke"          // peer outbox drained back below the limit (instant)
	SpanDiscoveryRewire = "discovery.rewire" // overlay maintenance closed a link to rewire (instant)
)

// Context is the trace identity carried across the wire: which trace a
// frame belongs to and which span caused it. The zero Context means
// untraced; old peers that do not understand the extension simply see no
// trailing bytes and interoperate.
type Context struct {
	TraceID uint64 // 0 = untraced
	SpanID  uint64 // the sender-side span that caused this frame
}

// Traced reports whether the context carries a live trace.
func (c Context) Traced() bool { return c.TraceID != 0 }

// Span is one recorded hop of a trace. Node is the recording node, Peer
// the remote involved (-1 when none), Piece the piece index (-1 when not
// piece-scoped). Start is wall-clock UnixNano; Dur is 0 for instants.
type Span struct {
	TraceID  uint64 `json:"trace"`
	SpanID   uint64 `json:"span"`
	ParentID uint64 `json:"parent,omitempty"`
	Name     string `json:"name"`
	Node     int    `json:"node"`
	Peer     int    `json:"peer"`
	Piece    int    `json:"piece"`
	Start    int64  `json:"start"`
	Dur      int64  `json:"dur"`
}

// End returns the span's end time in UnixNano.
func (s Span) End() int64 { return s.Start + s.Dur }

// Config configures a Collector.
type Config struct {
	// SampleEvery samples one in N freshly minted piece pushes (the first
	// push always samples, so short runs still trace). 0 disables
	// probabilistic sampling; slow-only tracing still works if SlowNs is
	// set.
	SampleEvery int
	// SlowNs, when > 0, additionally records a piece.slow span for any
	// piece whose want->verified latency exceeds it, regardless of
	// sampling — the always-on tail-latency net.
	SlowNs int64
	// Capacity is the span ring size (default 4096). When full, the
	// oldest spans are overwritten and counted in Snapshot's dropped
	// figure.
	Capacity int
}

// DefaultCapacity is the span ring size when Config.Capacity is 0.
const DefaultCapacity = 4096

// Collector accumulates spans into a fixed-size ring. One Collector is
// shared by every node of a cluster so span IDs are globally unique and
// Snapshot returns the merged cross-node view. All methods are safe for
// concurrent use; Record is a leaf lock (no callbacks), so callers may
// hold their own locks across it.
type Collector struct {
	sampleEvery uint64
	slowNs      int64

	ids  atomic.Uint64 // span/trace ID mint; post-increment, so IDs start at 1
	tick atomic.Uint64 // sampling clock

	mu      sync.Mutex
	ring    []Span
	next    int    // overwrite cursor once the ring is full
	dropped uint64 // spans overwritten
}

// NewCollector returns a Collector for cfg.
func NewCollector(cfg Config) *Collector {
	capacity := cfg.Capacity
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Collector{
		sampleEvery: uint64(max(cfg.SampleEvery, 0)),
		slowNs:      cfg.SlowNs,
		ring:        make([]Span, 0, capacity),
	}
}

// NewID mints a fresh nonzero ID, used for both trace and span IDs.
func (c *Collector) NewID() uint64 { return c.ids.Add(1) }

// Sample reports whether the next freshly minted piece push should be
// traced: deterministic one-in-SampleEvery on a shared atomic clock (the
// first call samples). Nil-safe; a nil Collector never samples.
func (c *Collector) Sample() bool {
	if c == nil || c.sampleEvery == 0 {
		return false
	}
	return (c.tick.Add(1)-1)%c.sampleEvery == 0
}

// SlowNs returns the always-on slow-piece threshold (0 = off). Nil-safe.
func (c *Collector) SlowNs() int64 {
	if c == nil {
		return 0
	}
	return c.slowNs
}

// Record appends a span, overwriting the oldest when the ring is full.
func (c *Collector) Record(s Span) {
	c.mu.Lock()
	if len(c.ring) < cap(c.ring) {
		c.ring = append(c.ring, s)
	} else {
		c.ring[c.next] = s
		c.next++
		if c.next == cap(c.ring) {
			c.next = 0
		}
		c.dropped++
	}
	c.mu.Unlock()
}

// Snapshot returns the collected spans oldest-first plus the count of
// spans lost to ring overwrites.
func (c *Collector) Snapshot() (spans []Span, dropped uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	spans = make([]Span, 0, len(c.ring))
	if len(c.ring) == cap(c.ring) {
		spans = append(spans, c.ring[c.next:]...)
		spans = append(spans, c.ring[:c.next]...)
	} else {
		spans = append(spans, c.ring...)
	}
	return spans, c.dropped
}
