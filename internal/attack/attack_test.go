package attack

import (
	"strings"
	"testing"

	"repro/internal/algo"
	"repro/internal/incentive"
)

func TestMostEffectiveMatchesPaper(t *testing.T) {
	// Section V-B2: collusion for T-Chain, whitewashing for FairTorrent,
	// simple (passive) free-riding for everyone else.
	cases := map[algo.Algorithm]Kind{
		algo.Reciprocity: Passive,
		algo.TChain:      Collusion,
		algo.BitTorrent:  Passive,
		algo.FairTorrent: Whitewash,
		algo.Reputation:  Passive,
		algo.Altruism:    Passive,
	}
	for a, want := range cases {
		plan := MostEffective(a)
		if plan.Kind != want {
			t.Errorf("%v attack = %v, want %v", a, plan.Kind, want)
		}
		if plan.LargeView {
			t.Errorf("%v plan has large view by default", a)
		}
	}
	if MostEffective(algo.FairTorrent).WhitewashInterval <= 0 {
		t.Error("whitewash plan missing interval")
	}
}

func TestWithLargeView(t *testing.T) {
	base := MostEffective(algo.BitTorrent)
	lv := base.WithLargeView()
	if !lv.LargeView {
		t.Error("WithLargeView did not set flag")
	}
	if base.LargeView {
		t.Error("WithLargeView mutated the receiver")
	}
	if lv.Kind != base.Kind {
		t.Error("WithLargeView changed the kind")
	}
}

func TestNormalizeDefaults(t *testing.T) {
	p, err := (Plan{}).Normalize()
	if err != nil || p.Kind != Passive {
		t.Errorf("zero plan = %+v, %v", p, err)
	}
	p, err = (Plan{Kind: Whitewash}).Normalize()
	if err != nil || p.WhitewashInterval != 10 {
		t.Errorf("whitewash plan = %+v, %v", p, err)
	}
	p, err = (Plan{Kind: FalsePraise}).Normalize()
	if err != nil || p.PraiseInterval != 10 || p.PraiseBytes != 1<<20 {
		t.Errorf("praise plan = %+v, %v", p, err)
	}
}

func TestNormalizeRejectsBadPlans(t *testing.T) {
	bad := []Plan{
		{Kind: Kind(77)},
		{Kind: Whitewash, WhitewashInterval: -1},
		{Kind: FalsePraise, PraiseInterval: -1},
		{Kind: FalsePraise, PraiseBytes: -5},
	}
	for i, p := range bad {
		if _, err := p.Normalize(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestKindStrings(t *testing.T) {
	for _, k := range []Kind{Passive, Collusion, Whitewash, FalsePraise} {
		if s := k.String(); strings.HasPrefix(s, "Kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
	if Kind(42).String() != "Kind(42)" {
		t.Error("unknown kind string wrong")
	}
}

func TestFreeRiderNeverUploads(t *testing.T) {
	fr := NewFreeRider(algo.TChain)
	if fr.Algorithm() != algo.TChain {
		t.Errorf("mimic = %v", fr.Algorithm())
	}
	if got := fr.NextReceiver(nil); got != incentive.NoPeer {
		t.Errorf("free-rider picked %v", got)
	}
	// Hooks are inert even with a nil view.
	fr.OnSent(nil, 1, 10)
	fr.OnReceived(nil, 1, 10)
	fr.Forget(1)
}
