// Package attack models the free-riding behaviours the paper evaluates in
// Section V-B2: passive free-riding (never upload), T-Chain collusion
// (falsely confirming receipt so a colluder's key is released), FairTorrent
// whitewashing (identity resets that erase accumulated deficits), the
// reputation false-praise collusion from Table III, and the large-view
// exploit (connecting to many more neighbors to harvest more altruism).
//
// The attestation adversaries (ForgedAttest, ReplayAttest, SybilAttest)
// target the verified-reputation extension: each fabricates contribution
// evidence that the unverified baseline would credit and a proof-checking
// ledger must refuse. Their helpers mint the exact malicious inputs so
// ledger tests and live-cluster runs exercise identical forgeries.
package attack

import (
	"fmt"

	"repro/internal/algo"
	"repro/internal/attest"
	"repro/internal/incentive"
)

// Kind enumerates free-rider behaviours.
type Kind int

// The attack kinds. Passive is the baseline "receive but never upload"
// behaviour; the others augment it. The last three are attestation-layer
// forgeries evaluated against the verified reputation ledger.
const (
	Passive Kind = iota + 1
	Collusion
	Whitewash
	FalsePraise
	ForgedAttest
	ReplayAttest
	SybilAttest
)

// String returns the attack name.
func (k Kind) String() string {
	switch k {
	case Passive:
		return "passive"
	case Collusion:
		return "collusion"
	case Whitewash:
		return "whitewash"
	case FalsePraise:
		return "false-praise"
	case ForgedAttest:
		return "forged-attest"
	case ReplayAttest:
		return "replay-attest"
	case SybilAttest:
		return "sybil-attest"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Plan describes the free-rider population's behaviour for one run.
type Plan struct {
	// Kind is the primary attack behaviour.
	Kind Kind
	// LargeView makes free-riders connect to every peer in the swarm
	// instead of a bounded neighbor set (the large-view exploit [18,19]).
	LargeView bool
	// WhitewashInterval is the seconds between identity resets (Whitewash).
	WhitewashInterval float64
	// PraiseInterval is the seconds between false-praise reports
	// (FalsePraise), and PraiseBytes the fake contribution per report.
	PraiseInterval float64
	PraiseBytes    float64
}

// MostEffective returns the attack the paper assigns to each algorithm in
// Section V-B2: "simple, non-collusive free-riding for most algorithms,
// with additional collusion for T-Chain and whitewashing for FairTorrent."
func MostEffective(a algo.Algorithm) Plan {
	switch a {
	case algo.TChain:
		return Plan{Kind: Collusion}
	case algo.FairTorrent:
		return Plan{Kind: Whitewash, WhitewashInterval: 10}
	default:
		return Plan{Kind: Passive}
	}
}

// WithLargeView returns a copy of the plan with the large-view exploit
// enabled (the Figure 6 configuration).
func (p Plan) WithLargeView() Plan {
	p.LargeView = true
	return p
}

// Normalize fills interval defaults and validates the plan.
func (p Plan) Normalize() (Plan, error) {
	if p.Kind == 0 {
		p.Kind = Passive
	}
	switch p.Kind {
	case Passive, Collusion, Whitewash, FalsePraise,
		ForgedAttest, ReplayAttest, SybilAttest:
	default:
		return p, fmt.Errorf("attack: unknown kind %d", int(p.Kind))
	}
	if p.Kind == Whitewash && p.WhitewashInterval == 0 {
		p.WhitewashInterval = 10
	}
	if p.WhitewashInterval < 0 {
		return p, fmt.Errorf("attack: whitewash interval %g negative", p.WhitewashInterval)
	}
	if p.Kind == FalsePraise {
		if p.PraiseInterval == 0 {
			p.PraiseInterval = 10
		}
		if p.PraiseBytes == 0 {
			p.PraiseBytes = 1 << 20
		}
	}
	if p.PraiseInterval < 0 || p.PraiseBytes < 0 {
		return p, fmt.Errorf("attack: negative praise parameters")
	}
	return p, nil
}

// claimantID is the pseudo-receiver forged unsigned reports name: no real
// counterparty ever confirms a fabricated contribution.
const claimantID int32 = -1

// ForgedClaim fabricates an unsigned contribution report crediting
// beneficiary with bytes — the reputation false-praise collusion from
// Table III expressed in attestation form. The unverified baseline ledger
// (attest.AcceptAll) credits it wholesale; a verifying ledger refuses it
// with attest.ErrUnsigned.
func ForgedClaim(beneficiary int32, bytes float64) attest.Attestation {
	return attest.Claim(beneficiary, claimantID, 0, int64(bytes))
}

// ForgeSignature returns att re-addressed to credit beneficiary while
// keeping its (now wrong) signature — the tampering a man-in-the-middle or
// a colluder editing a captured receipt performs. Verification fails with
// attest.ErrBadSignature.
func ForgeSignature(att attest.Attestation, beneficiary int32) attest.Attestation {
	att.Sender = beneficiary
	att.Sig[0] ^= 0xff // even an unedited copy must not verify for the new sender
	return att
}

// SybilReceipt mints a correctly signed receipt from an identity nobody
// admitted: the Sybil sock-puppet vouching for its operator. The signature
// itself verifies under the sybil's key, but a directory-backed verifier
// refuses it with attest.ErrUnknownSigner — and a *sealed* directory cannot
// be talked into admitting the key at all.
func SybilReceipt(sybil *attest.Key, beneficiary, index int32, bytes int64) attest.Attestation {
	return sybil.Attest(attest.SchemeEd25519, beneficiary, index, [32]byte{}, bytes)
}

// SelfReceipt mints a receipt in which the attacker attests its own
// contribution under its own (possibly even admitted) key. Verification
// fails with attest.ErrSelfAttestation regardless of admission: reputation
// requires a counterparty.
func SelfReceipt(key *attest.Key, index int32, bytes int64) attest.Attestation {
	att := key.Attest(attest.SchemeEd25519, key.ID(), index, [32]byte{}, bytes)
	return att
}

// FreeRider is the incentive.Strategy a free-riding peer runs: it never
// uploads, regardless of the mechanism the compliant swarm uses.
type FreeRider struct {
	mimic algo.Algorithm
}

var _ incentive.Strategy = (*FreeRider)(nil)

// NewFreeRider returns the no-upload strategy, reporting the mimicked
// algorithm so environments treat the peer as a normal swarm member.
func NewFreeRider(mimic algo.Algorithm) *FreeRider {
	return &FreeRider{mimic: mimic}
}

// Algorithm returns the algorithm the free-rider pretends to run.
func (f *FreeRider) Algorithm() algo.Algorithm { return f.mimic }

// NextReceiver always declines to upload.
func (*FreeRider) NextReceiver(incentive.NodeView) incentive.PeerID { return incentive.NoPeer }

// OnSent is unreachable in practice (free-riders never send) but kept inert.
func (*FreeRider) OnSent(incentive.NodeView, incentive.PeerID, float64) {}

// OnReceived is a no-op: free-riders keep no reciprocity state.
func (*FreeRider) OnReceived(incentive.NodeView, incentive.PeerID, float64) {}

// Forget is a no-op.
func (*FreeRider) Forget(incentive.PeerID) {}
