package attack

import (
	"errors"
	"testing"

	"repro/internal/attest"
	"repro/internal/reputation"
)

// verifiedWorld builds the proof-checking setup the attestation adversaries
// are evaluated against: two honest admitted identities, a sealed
// directory, and a ledger that credits only verifying receipts. The
// AcceptAll baseline alongside it shows what the same forgery earns in the
// paper's unverified trust model.
func verifiedWorld(t *testing.T) (honest1, honest2 *attest.Key, verified, baseline *reputation.Ledger) {
	t.Helper()
	honest1 = attest.NewKeyFromSeed(1, 101)
	honest2 = attest.NewKeyFromSeed(2, 102)
	dir := attest.NewDirectory()
	dir.Register(1, honest1.Identity())
	dir.Register(2, honest2.Identity())
	dir.Seal()
	return honest1, honest2,
		reputation.NewLedger(attest.NewVerifier(dir)),
		reputation.NewLedger(attest.AcceptAll{})
}

// TestAdversariesEarnZeroVerifiedReputation drives every attestation-layer
// forgery through both trust models: the unverified baseline credits each
// fabricated contribution (the Table III susceptibility), while the
// verifying ledger refuses it with the precise error and records the
// attempt as an invalid proof — the adversary's score stays exactly zero.
func TestAdversariesEarnZeroVerifiedReputation(t *testing.T) {
	const stolen = 4096
	cases := []struct {
		name    string
		kind    Kind
		mint    func(t *testing.T, honest1, honest2 *attest.Key) attest.Attestation
		wantErr error
	}{
		{
			name: "forged unsigned claim", kind: ForgedAttest,
			mint: func(t *testing.T, _, _ *attest.Key) attest.Attestation {
				return ForgedClaim(1, stolen)
			},
			wantErr: attest.ErrUnsigned,
		},
		{
			name: "captured receipt re-addressed", kind: ForgedAttest,
			mint: func(t *testing.T, _, honest2 *attest.Key) attest.Attestation {
				real := honest2.Attest(attest.SchemeEd25519, 1, 0, [32]byte{}, stolen)
				return ForgeSignature(real, 7)
			},
			wantErr: attest.ErrBadSignature,
		},
		{
			name: "sybil sock-puppet vouches", kind: SybilAttest,
			mint: func(t *testing.T, _, _ *attest.Key) attest.Attestation {
				sybil := attest.NewKeyFromSeed(66, 666)
				return SybilReceipt(sybil, 1, 0, stolen)
			},
			wantErr: attest.ErrUnknownSigner,
		},
		{
			name: "self-attestation under admitted key", kind: SybilAttest,
			mint: func(t *testing.T, honest1, _ *attest.Key) attest.Attestation {
				return SelfReceipt(honest1, 0, stolen)
			},
			wantErr: attest.ErrSelfAttestation,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			honest1, honest2, verified, baseline := verifiedWorld(t)
			att := tc.mint(t, honest1, honest2)
			beneficiary := int(att.Sender)

			if err := baseline.Credit(att); err != nil {
				t.Fatalf("unverified baseline refused the forgery: %v", err)
			}
			if got := baseline.Score(beneficiary); got != stolen {
				t.Fatalf("baseline credited %g, want %d (the attack must pay in the trust model)", got, stolen)
			}

			if err := verified.Credit(att); !errors.Is(err, tc.wantErr) {
				t.Fatalf("verified ledger returned %v, want %v", err, tc.wantErr)
			}
			if got := verified.Total(); got != 0 {
				t.Errorf("verified ledger total = %g after forgery, want 0", got)
			}
			s := verified.Snapshot()[beneficiary]
			if s.Score != 0 || s.Valid != 0 || s.Invalid != 1 {
				t.Errorf("beneficiary standing = %+v, want zero score, zero valid, one invalid", s)
			}
		})
	}
}

// TestReplayedReceiptCreditsOnce replays a perfectly genuine receipt: the
// first presentation credits, every repeat is refused by the sequence
// window, so double-spending a contribution is impossible.
func TestReplayedReceiptCreditsOnce(t *testing.T) {
	const size = 4096
	_, honest2, verified, _ := verifiedWorld(t)
	att := honest2.Attest(attest.SchemeEd25519, 1, 3, [32]byte{}, size)

	if err := verified.Credit(att); err != nil {
		t.Fatalf("genuine receipt refused: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := verified.Credit(att); !errors.Is(err, attest.ErrReplayed) {
			t.Fatalf("replay %d returned %v, want %v", i+1, err, attest.ErrReplayed)
		}
	}
	if got := verified.Score(1); got != size {
		t.Errorf("score after replays = %g, want %d (credited exactly once)", got, size)
	}
	s := verified.Snapshot()[1]
	if s.Valid != 1 || s.Invalid != 3 {
		t.Errorf("standing = %+v, want 1 valid / 3 invalid", s)
	}
}
