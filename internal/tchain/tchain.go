// Package tchain implements T-Chain's enforcement substrate [8]: pieces are
// uploaded *encrypted*, and the decryption key is released only after the
// uploader is satisfied that the receiver reciprocated (directly back to the
// uploader, or indirectly to a third peer designated by the uploader).
//
// The simulator models this rule abstractly (credit withheld from peers
// that renege); the live node (internal/node) uses this package for the
// real thing: AES-256-CTR sealing, sender-side key escrow, and the
// reciprocation ledger that decides when a key may be released. Piece
// integrity after decryption is checked against the swarm manifest's
// SHA-256 hashes, so a wrong or withheld key can never smuggle corrupt data
// into a store.
package tchain

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sync"
)

// KeySize is the AES-256 key length in bytes.
const KeySize = 32

// NonceSize is the CTR-mode IV length in bytes.
const NonceSize = aes.BlockSize

// Key is a piece-encryption key.
type Key [KeySize]byte

// Sealed is an encrypted piece as it travels on the wire.
type Sealed struct {
	// KeyID identifies the escrowed key at the sender.
	KeyID uint64
	// Nonce is the CTR IV.
	Nonce [NonceSize]byte
	// Ciphertext is the encrypted piece payload.
	Ciphertext []byte
}

// Errors returned by this package.
var (
	ErrUnknownKey = errors.New("tchain: unknown or already-released key")
	ErrEmpty      = errors.New("tchain: empty plaintext")
)

// Escrow is a sender-side key vault: Seal encrypts a piece under a fresh
// key and parks the key; Release hands the key out exactly once, after the
// caller has verified reciprocation. Safe for concurrent use.
type Escrow struct {
	mu     sync.Mutex
	rand   io.Reader
	nextID uint64
	keys   map[uint64]Key
}

// NewEscrow returns an escrow drawing keys from crypto/rand.
func NewEscrow() *Escrow {
	return &Escrow{rand: rand.Reader, keys: make(map[uint64]Key)}
}

// NewEscrowWithRand returns an escrow drawing randomness from r —
// deterministic tests inject a seeded reader here.
func NewEscrowWithRand(r io.Reader) *Escrow {
	return &Escrow{rand: r, keys: make(map[uint64]Key)}
}

// Seal encrypts plaintext under a fresh key, escrows the key, and returns
// the sealed piece.
func (e *Escrow) Seal(plaintext []byte) (*Sealed, error) {
	if len(plaintext) == 0 {
		return nil, ErrEmpty
	}
	var key Key
	var nonce [NonceSize]byte
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, err := io.ReadFull(e.rand, key[:]); err != nil {
		return nil, fmt.Errorf("tchain: drawing key: %w", err)
	}
	if _, err := io.ReadFull(e.rand, nonce[:]); err != nil {
		return nil, fmt.Errorf("tchain: drawing nonce: %w", err)
	}
	ciphertext, err := xorStream(key, nonce, plaintext)
	if err != nil {
		return nil, err
	}
	id := e.nextID
	e.nextID++
	e.keys[id] = key
	return &Sealed{KeyID: id, Nonce: nonce, Ciphertext: ciphertext}, nil
}

// Release removes and returns the key for keyID. The second call for the
// same ID returns ErrUnknownKey — a key can only be handed out once.
func (e *Escrow) Release(keyID uint64) (Key, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	key, ok := e.keys[keyID]
	if !ok {
		return Key{}, fmt.Errorf("key %d: %w", keyID, ErrUnknownKey)
	}
	delete(e.keys, keyID)
	return key, nil
}

// Revoke discards the key for keyID (the receiver reneged); the ciphertext
// it guards becomes permanently useless.
func (e *Escrow) Revoke(keyID uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.keys, keyID)
}

// Pending returns the number of escrowed (unreleased) keys.
func (e *Escrow) Pending() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.keys)
}

// Open decrypts a sealed piece with the given key. Callers must verify the
// plaintext against the manifest hash — CTR provides no integrity on its
// own.
func Open(s *Sealed, key Key) ([]byte, error) {
	if s == nil || len(s.Ciphertext) == 0 {
		return nil, ErrEmpty
	}
	return xorStream(key, s.Nonce, s.Ciphertext)
}

func xorStream(key Key, nonce [NonceSize]byte, data []byte) ([]byte, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("tchain: %w", err)
	}
	out := make([]byte, len(data))
	cipher.NewCTR(block, nonce[:]).XORKeyStream(out, data)
	return out, nil
}
