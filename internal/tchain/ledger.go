package tchain

import (
	"sync"
)

// ObligationKind distinguishes direct from indirect reciprocation.
type ObligationKind int

// The two reciprocation modes (Section III-A).
const (
	Direct ObligationKind = iota + 1
	Indirect
)

// AnyPeer is the wildcard Target: any witness's confirmation satisfies the
// demand. The live node uses it because the receiver, not the sender,
// picks the indirect-reciprocation target there.
const AnyPeer = -1

// Obligation records what a receiver owes for one sealed piece: upload a
// piece to Target (the original sender for Direct, a designated third peer
// for Indirect, or AnyPeer) before the key for KeyID is released.
type Obligation struct {
	KeyID  uint64
	Kind   ObligationKind
	Target int // peer ID that must receive the reciprocation, or AnyPeer
}

// ReciprocationLedger is the sender-side record of outstanding
// reciprocation demands: which receiver owes what for which escrowed key.
// When the (possibly third-party) confirmation arrives, the key becomes
// releasable. Safe for concurrent use.
type ReciprocationLedger struct {
	mu       sync.Mutex
	demanded map[uint64]Obligation // keyID -> what we asked for
	receiver map[uint64]int        // keyID -> receiver peer ID
}

// NewReciprocationLedger returns an empty ledger.
func NewReciprocationLedger() *ReciprocationLedger {
	return &ReciprocationLedger{
		demanded: make(map[uint64]Obligation),
		receiver: make(map[uint64]int),
	}
}

// Demand records that `receiver` owes the given obligation for keyID.
func (l *ReciprocationLedger) Demand(keyID uint64, receiver int, ob Obligation) {
	l.mu.Lock()
	defer l.mu.Unlock()
	ob.KeyID = keyID
	l.demanded[keyID] = ob
	l.receiver[keyID] = receiver
}

// Confirm reports a reciprocation observed: `witness` says it received a
// piece from `from`. It returns the keyIDs now releasable — every pending
// demand whose receiver is `from` and whose target is `witness`.
func (l *ReciprocationLedger) Confirm(witness, from int) []uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var released []uint64
	for keyID, ob := range l.demanded {
		if l.receiver[keyID] == from && (ob.Target == witness || ob.Target == AnyPeer) {
			released = append(released, keyID)
			delete(l.demanded, keyID)
			delete(l.receiver, keyID)
		}
	}
	return released
}

// Take removes the demand for keyID if it is still outstanding, reporting
// whether it was present. Used by the endgame key-release fallback to claim
// exactly one demand without disturbing others.
func (l *ReciprocationLedger) Take(keyID uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.demanded[keyID]; !ok {
		return false
	}
	delete(l.demanded, keyID)
	delete(l.receiver, keyID)
	return true
}

// Outstanding returns the number of unconfirmed demands.
func (l *ReciprocationLedger) Outstanding() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.demanded)
}

// Forget drops all demands on a departed or distrusted receiver and
// returns the keyIDs whose keys should be revoked.
func (l *ReciprocationLedger) Forget(receiver int) []uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var revoked []uint64
	for keyID := range l.demanded {
		if l.receiver[keyID] == receiver {
			revoked = append(revoked, keyID)
			delete(l.demanded, keyID)
			delete(l.receiver, keyID)
		}
	}
	return revoked
}
