package tchain

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"math/rand"
	"sync"
	"testing"
)

func testRand() *rand.Rand { return rand.New(rand.NewSource(1)) }

func TestSealOpenRoundTrip(t *testing.T) {
	e := NewEscrowWithRand(testRand())
	plaintext := []byte("the piece payload, long enough to span blocks: 0123456789abcdef0123456789abcdef")
	sealed, err := e.Seal(plaintext)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(sealed.Ciphertext, plaintext) {
		t.Fatal("ciphertext equals plaintext")
	}
	key, err := e.Release(sealed.KeyID)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(sealed, key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, plaintext) {
		t.Error("round trip failed")
	}
}

func TestReleaseOnce(t *testing.T) {
	e := NewEscrowWithRand(testRand())
	sealed, err := e.Seal([]byte("data"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Release(sealed.KeyID); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Release(sealed.KeyID); !errors.Is(err, ErrUnknownKey) {
		t.Errorf("second release err = %v, want ErrUnknownKey", err)
	}
	if _, err := e.Release(9999); !errors.Is(err, ErrUnknownKey) {
		t.Errorf("unknown release err = %v", err)
	}
}

func TestRevoke(t *testing.T) {
	e := NewEscrowWithRand(testRand())
	sealed, _ := e.Seal([]byte("data"))
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d", e.Pending())
	}
	e.Revoke(sealed.KeyID)
	if e.Pending() != 0 {
		t.Errorf("Pending after revoke = %d", e.Pending())
	}
	if _, err := e.Release(sealed.KeyID); !errors.Is(err, ErrUnknownKey) {
		t.Error("revoked key still releasable")
	}
}

func TestWrongKeyFailsHashCheck(t *testing.T) {
	e := NewEscrowWithRand(testRand())
	plaintext := []byte("important piece data that must verify")
	wantHash := sha256.Sum256(plaintext)
	sealed, _ := e.Seal(plaintext)
	var wrong Key
	wrong[0] = 0xff
	got, err := Open(sealed, wrong)
	if err != nil {
		t.Fatal(err)
	}
	if sha256.Sum256(got) == wantHash {
		t.Error("wrong key produced verifying plaintext")
	}
}

func TestDistinctKeysPerSeal(t *testing.T) {
	e := NewEscrowWithRand(testRand())
	s1, _ := e.Seal([]byte("same data"))
	s2, _ := e.Seal([]byte("same data"))
	if s1.KeyID == s2.KeyID {
		t.Error("key IDs collide")
	}
	if bytes.Equal(s1.Ciphertext, s2.Ciphertext) {
		t.Error("same ciphertext under supposedly fresh keys")
	}
	k1, _ := e.Release(s1.KeyID)
	k2, _ := e.Release(s2.KeyID)
	if k1 == k2 {
		t.Error("keys identical")
	}
}

func TestSealEmpty(t *testing.T) {
	e := NewEscrowWithRand(testRand())
	if _, err := e.Seal(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty seal err = %v", err)
	}
	if _, err := Open(nil, Key{}); !errors.Is(err, ErrEmpty) {
		t.Errorf("nil open err = %v", err)
	}
}

func TestEscrowConcurrent(t *testing.T) {
	e := NewEscrow() // crypto/rand is already concurrency-safe
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sealed, err := e.Seal([]byte("payload"))
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := e.Release(sealed.KeyID); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if e.Pending() != 0 {
		t.Errorf("Pending = %d after all released", e.Pending())
	}
}

func TestLedgerConfirmDirect(t *testing.T) {
	l := NewReciprocationLedger()
	l.Demand(7, 42, Obligation{Kind: Direct, Target: 1}) // receiver 42 owes peer 1 (us)
	if got := l.Outstanding(); got != 1 {
		t.Fatalf("Outstanding = %d", got)
	}
	// Wrong witness: nothing released.
	if got := l.Confirm(99, 42); got != nil {
		t.Errorf("wrong witness released %v", got)
	}
	// Wrong sender: nothing released.
	if got := l.Confirm(1, 5); got != nil {
		t.Errorf("wrong sender released %v", got)
	}
	got := l.Confirm(1, 42)
	if len(got) != 1 || got[0] != 7 {
		t.Fatalf("Confirm = %v, want [7]", got)
	}
	if l.Outstanding() != 0 {
		t.Error("demand not cleared")
	}
	// Replay confirmation releases nothing.
	if got := l.Confirm(1, 42); got != nil {
		t.Errorf("replay released %v", got)
	}
}

func TestLedgerConfirmMultiple(t *testing.T) {
	l := NewReciprocationLedger()
	l.Demand(1, 42, Obligation{Kind: Indirect, Target: 9})
	l.Demand(2, 42, Obligation{Kind: Indirect, Target: 9})
	l.Demand(3, 42, Obligation{Kind: Indirect, Target: 8}) // different target
	got := l.Confirm(9, 42)
	if len(got) != 2 {
		t.Fatalf("Confirm = %v, want two keys", got)
	}
	if l.Outstanding() != 1 {
		t.Errorf("Outstanding = %d, want 1", l.Outstanding())
	}
}

func TestLedgerForget(t *testing.T) {
	l := NewReciprocationLedger()
	l.Demand(1, 42, Obligation{Kind: Direct, Target: 1})
	l.Demand(2, 43, Obligation{Kind: Direct, Target: 1})
	revoked := l.Forget(42)
	if len(revoked) != 1 || revoked[0] != 1 {
		t.Fatalf("Forget = %v", revoked)
	}
	if l.Outstanding() != 1 {
		t.Errorf("Outstanding = %d", l.Outstanding())
	}
}

func TestLedgerTake(t *testing.T) {
	l := NewReciprocationLedger()
	l.Demand(5, 42, Obligation{Kind: Indirect, Target: AnyPeer})
	l.Demand(6, 42, Obligation{Kind: Indirect, Target: AnyPeer})
	if !l.Take(5) {
		t.Fatal("Take(5) = false for outstanding demand")
	}
	if l.Take(5) {
		t.Fatal("Take(5) succeeded twice")
	}
	if l.Outstanding() != 1 {
		t.Errorf("Outstanding = %d, want 1", l.Outstanding())
	}
	// A taken demand no longer confirms.
	if got := l.Confirm(9, 42); len(got) != 1 || got[0] != 6 {
		t.Errorf("Confirm = %v, want [6]", got)
	}
	if l.Take(999) {
		t.Error("Take of unknown key succeeded")
	}
}

func TestConfirmAnyPeerWildcard(t *testing.T) {
	l := NewReciprocationLedger()
	l.Demand(1, 42, Obligation{Kind: Indirect, Target: AnyPeer})
	if got := l.Confirm(12345, 42); len(got) != 1 {
		t.Errorf("wildcard confirm = %v", got)
	}
}

type failingReader struct{}

func (failingReader) Read([]byte) (int, error) { return 0, errors.New("rng broken") }

func TestSealFailsWhenRandomnessFails(t *testing.T) {
	e := NewEscrowWithRand(failingReader{})
	if _, err := e.Seal([]byte("data")); err == nil {
		t.Fatal("Seal succeeded without randomness")
	}
}
