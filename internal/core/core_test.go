package core

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestAlgorithmsAndParse(t *testing.T) {
	all := Algorithms()
	if len(all) != 6 {
		t.Fatalf("Algorithms() len = %d", len(all))
	}
	a, err := ParseAlgorithm("t-chain")
	if err != nil || a != TChain {
		t.Errorf("ParseAlgorithm = %v, %v", a, err)
	}
}

func TestSimulateDefaults(t *testing.T) {
	res, err := Simulate(Altruism, WithScale(60, 24), WithSeed(1), WithHorizon(600))
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletionFraction() != 1 {
		t.Errorf("completion = %g", res.CompletionFraction())
	}
}

func TestSimulateOptions(t *testing.T) {
	res, err := Simulate(BitTorrent,
		WithScale(60, 24),
		WithSeed(2),
		WithHorizon(900),
		WithSeeder(2<<20),
		WithFreeRiders(0.2, MostEffectiveAttack(BitTorrent)),
		WithConfig(func(c *sim.Config) { c.MaxNeighbors = 20 }),
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Susceptibility() <= 0 {
		t.Error("free-riders present but susceptibility 0")
	}
	if res.Config.MaxNeighbors != 20 {
		t.Error("WithConfig mutation lost")
	}
}

func TestSimulateInvalidConfig(t *testing.T) {
	if _, err := Simulate(Altruism, WithScale(1, 1)); err == nil {
		t.Fatal("invalid scale accepted")
	}
}

func TestCompareAll(t *testing.T) {
	results, err := CompareAll(WithScale(60, 24), WithSeed(3), WithHorizon(600))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("CompareAll returned %d results", len(results))
	}
	if results[Altruism].CompletionFraction() != 1 {
		t.Error("altruism swarm did not finish")
	}
	// Lemma 2: reciprocity peers never upload; anything they got came from
	// the seeder alone.
	if results[Reciprocity].PeerUploaded != 0 {
		t.Errorf("reciprocity peers uploaded %g bytes", results[Reciprocity].PeerUploaded)
	}
}

func TestEquilibrium(t *testing.T) {
	eq, err := NewEquilibrium([]float64{8, 8, 4, 4, 2, 2, 1, 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	eAlt, fAlt := eq.Evaluate(Altruism)
	eTC, fTC := eq.Evaluate(TChain)
	if eAlt > eTC {
		t.Errorf("altruism E %g should not exceed T-Chain E %g", eAlt, eTC)
	}
	if fTC > fAlt {
		t.Errorf("T-Chain F %g should not exceed altruism F %g", fTC, fAlt)
	}
	if _, f := eq.Evaluate(Reciprocity); !math.IsNaN(f) {
		t.Errorf("reciprocity F = %g, want NaN", f)
	}
	if opt := eq.OptimalEfficiency(); opt <= 0 || eAlt < opt {
		t.Errorf("optimum %g vs altruism %g inconsistent", opt, eAlt)
	}
	if _, err := NewEquilibrium([]float64{1}, 0); err == nil {
		t.Error("single user accepted")
	}
}

func TestRunExperimentWithArtifacts(t *testing.T) {
	var sb strings.Builder
	dir := filepath.Join(t.TempDir(), "artifacts")
	if err := RunExperiment("table2", TestScale(), &sb, dir); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "91.8%") {
		t.Error("table2 output missing expected value")
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.csv"))
	if err != nil || len(matches) == 0 {
		t.Errorf("no artifacts written: %v, %v", matches, err)
	}
}

func TestRunExperimentNoArtifacts(t *testing.T) {
	var sb strings.Builder
	if err := RunExperiment("figure2", TestScale(), &sb, ""); err != nil {
		t.Fatal(err)
	}
}

func TestExperimentsListed(t *testing.T) {
	names := Experiments()
	if len(names) < 10 {
		t.Errorf("only %d experiments", len(names))
	}
}
