// Package core is the library's façade: one import that exposes the
// paper's six incentive mechanisms, the swarm simulator, the closed-form
// performance model, and the experiment harnesses behind a small,
// stable API. The example programs and command-line tools are written
// against this package only.
package core

import (
	"fmt"
	"io"

	"repro/internal/algo"
	"repro/internal/analysis"
	"repro/internal/attack"
	"repro/internal/bandwidth"
	"repro/internal/experiment"
	"repro/internal/incentive"
	"repro/internal/probe"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Algorithm identifies an incentive mechanism; see Algorithms for the set.
type Algorithm = algo.Algorithm

// The six mechanisms the paper compares.
const (
	Reciprocity = algo.Reciprocity
	TChain      = algo.TChain
	BitTorrent  = algo.BitTorrent
	FairTorrent = algo.FairTorrent
	Reputation  = algo.Reputation
	Altruism    = algo.Altruism
)

// Algorithms lists all six mechanisms in the paper's table order.
func Algorithms() []Algorithm { return algo.All() }

// ParseAlgorithm resolves a case-insensitive mechanism name.
func ParseAlgorithm(name string) (Algorithm, error) { return algo.Parse(name) }

// Result is a completed simulation run's output.
type Result = sim.Result

// AttackPlan describes free-rider behaviour.
type AttackPlan = attack.Plan

// MostEffectiveAttack returns the paper's per-algorithm strongest attack.
func MostEffectiveAttack(a Algorithm) AttackPlan { return attack.MostEffective(a) }

// Option customizes a simulation scenario. It is an alias for sim.Option,
// so options built here and in the sim package compose freely.
type Option = sim.Option

// WithScale sets the swarm size and file granularity (peers × pieces of
// 256 KB). The paper's full scale is WithScale(1000, 512).
func WithScale(peers, pieces int) Option { return sim.WithScale(peers, pieces) }

// WithSeed fixes the run's random seed; equal seeds replay bit-for-bit.
func WithSeed(seed int64) Option { return sim.WithSeed(seed) }

// WithHorizon caps the simulated time in seconds.
func WithHorizon(seconds float64) Option { return sim.WithHorizon(seconds) }

// WithFreeRiders makes `fraction` of the peers free-ride using the given
// plan (see MostEffectiveAttack).
func WithFreeRiders(fraction float64, plan AttackPlan) Option {
	return sim.WithFreeRiders(fraction, plan)
}

// WithBandwidth sets the peer upload-capacity mix.
func WithBandwidth(d bandwidth.Distribution) Option { return sim.WithBandwidth(d) }

// WithIncentiveParams tunes α_BT, n_BT, α_R, and the tit-for-tat round.
func WithIncentiveParams(p incentive.Params) Option { return sim.WithIncentive(p) }

// WithSeeder sets the origin server's upload rate in bytes/second.
func WithSeeder(rate float64) Option { return sim.WithSeeder(rate) }

// WithShards selects the sharded parallel event engine with n shards
// (n >= 1); 0 restores the serial engine. Sharded output is identical for
// every n >= 1.
func WithShards(n int) Option { return sim.WithShards(n) }

// WithFaults injects failures: abortRate of compliant peers crash
// mid-download, and the seeder exits at seederExitAt (0 disables either
// knob). It composes sim.WithAbortRate and sim.WithSeederExit.
func WithFaults(abortRate, seederExitAt float64) Option {
	return func(c *sim.Config) {
		sim.WithAbortRate(abortRate)(c)
		sim.WithSeederExit(seederExitAt)(c)
	}
}

// WithConfig applies an arbitrary low-level mutation for knobs the other
// options do not cover.
func WithConfig(mod func(*sim.Config)) Option { return sim.WithConfig(mod) }

// Probe observes a simulation run through the swarm's hook stream; see the
// probe package for the hook catalogue and the Base embedding helper.
type Probe = probe.Probe

// NewCounterProbe returns a probe that tallies every hook event — the
// cheapest way to see what a run did (see Manifest.HookCounts for the
// batch-run equivalent).
func NewCounterProbe() *probe.Counter { return &probe.Counter{} }

// Manifest is the structured record of one run: validated config, seed,
// timings, event counts, and final metrics. See SimulateManifested and
// Replication.Manifests.
type Manifest = runner.Manifest

// Simulate runs one flash-crowd scenario under the given mechanism and
// returns its metrics and time series. Defaults follow the paper's
// Section V-A setup at a laptop-friendly scale (200 peers, 128 pieces);
// use WithScale(1000, 512) for the full-paper scale.
func Simulate(a Algorithm, opts ...Option) (*Result, error) {
	return SimulateObserved(a, nil, opts...)
}

// SimulateObserved is Simulate with a probe attached for the duration of
// the run; p may be nil.
func SimulateObserved(a Algorithm, p Probe, opts ...Option) (*Result, error) {
	cfg := sim.Default(a, 200, 128, opts...)
	cfg.Algorithm = a
	swarm, err := sim.NewSwarm(cfg)
	if err != nil {
		return nil, err
	}
	if err := swarm.Attach(p); err != nil {
		return nil, err
	}
	return swarm.Run()
}

// SimulateManifested is Simulate plus the run's manifest.
func SimulateManifested(a Algorithm, opts ...Option) (*Result, *Manifest, error) {
	cfg := sim.Default(a, 200, 128, opts...)
	cfg.Algorithm = a
	results, manifests, err := runner.New(1).RunManifested([]sim.Config{cfg})
	if err != nil {
		return nil, nil, err
	}
	return results[0], manifests[0], nil
}

// CompareAll runs the same scenario under all six mechanisms, fanning the
// runs out across the replication runner's worker pool. Results are
// deterministic: each run's outcome depends only on its config and seed.
func CompareAll(opts ...Option) (map[Algorithm]*Result, error) {
	algos := Algorithms()
	cfgs := make([]sim.Config, len(algos))
	for i, a := range algos {
		cfg := sim.Default(a, 200, 128, opts...)
		cfg.Algorithm = a
		cfgs[i] = cfg
	}
	results, err := runner.Run(cfgs)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	out := make(map[Algorithm]*Result, len(algos))
	for i, a := range algos {
		out[a] = results[i]
	}
	return out, nil
}

// Replication aggregates repeated seeded runs of one scenario; see
// SimulateReplicated.
type Replication = runner.Replication

// ReplicationMetrics lists the metric keys of Replication.Metrics in
// presentation order.
func ReplicationMetrics() []string { return runner.MetricNames() }

// DefaultWorkers returns the parallel runner's default worker-pool size:
// the REPRO_WORKERS environment variable when set, otherwise GOMAXPROCS.
func DefaultWorkers() int { return runner.DefaultWorkers() }

// SimulateReplicated runs reps replications of one scenario on a pool of
// `workers` goroutines (workers <= 0 selects DefaultWorkers). Replication i
// runs with seed base+i, where base comes from WithSeed (default 0); the
// returned Replication reports each metric's mean ± standard error across
// the seeds. Output is deterministic for a fixed seed and replication
// count, regardless of the worker count.
func SimulateReplicated(a Algorithm, reps, workers int, opts ...Option) (*Replication, error) {
	cfg := sim.Default(a, 200, 128, opts...)
	cfg.Algorithm = a
	return runner.New(workers).Replicate(cfg, reps)
}

// Equilibrium exposes the paper's closed-form model (Section IV-A) for a
// capacity vector: per-algorithm equilibrium efficiency E (Eq. 2) and
// fairness F (Eq. 3).
type Equilibrium struct {
	scenario *analysis.Scenario
}

// NewEquilibrium builds the analytical model with the paper's default
// α_BT = 0.2, α_R = 0.1, n_BT = 4.
func NewEquilibrium(capacities []float64, seederRate float64) (*Equilibrium, error) {
	s, err := analysis.NewScenario(capacities, seederRate, 0.2, 0.1, 4)
	if err != nil {
		return nil, err
	}
	return &Equilibrium{scenario: s}, nil
}

// Evaluate returns (E, F) for one mechanism; F is NaN where the paper
// calls it undefined (pure reciprocity).
func (e *Equilibrium) Evaluate(a Algorithm) (efficiency, fairness float64) {
	return e.scenario.Evaluate(a)
}

// OptimalEfficiency returns Lemma 1's lower bound on E.
func (e *Equilibrium) OptimalEfficiency() float64 {
	return e.scenario.OptimalEfficiency()
}

// ExperimentScale sizes the Section V reproductions.
type ExperimentScale = experiment.Scale

// FullScale is the paper's experimental scale (1000 peers, 128 MB file).
func FullScale() ExperimentScale { return experiment.FullScale() }

// TestScale returns a fast scale preserving all qualitative shapes.
func TestScale() ExperimentScale { return experiment.TestScale() }

// Experiments lists the runnable table/figure reproductions.
func Experiments() []string { return experiment.Names() }

// RunExperiment executes one named table/figure reproduction, writing the
// report to w and CSV/JSON artifacts under outDir ("" skips artifacts).
func RunExperiment(name string, scale ExperimentScale, w io.Writer, outDir string) error {
	var sink *trace.Sink
	if outDir != "" {
		sink = trace.NewSink(outDir)
	}
	if err := experiment.Run(name, scale, w, sink); err != nil {
		return err
	}
	return sink.Flush()
}
