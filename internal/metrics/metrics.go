// Package metrics is the live cluster's telemetry core: sharded,
// allocation-free counters, gauges, and log-bucketed latency histograms
// behind a namespaced Registry with point-in-time snapshots, Prometheus
// text-format and JSON exposition, and expvar publication.
//
// Design constraints, in order (mirroring internal/probe's contract for
// the simulator side):
//
//  1. Near-zero hot-path cost. Counter.Add and Histogram.Observe are a
//     shard pick plus one to three uncontended atomic adds — no locks, no
//     allocation, no time lookups. scripts/check.sh pins both at
//     0 allocs/op.
//  2. Write-side sharding, read-side merging. Writers spread across
//     cache-line-padded per-CPU-ish shards so concurrent producers do not
//     bounce a shared line; Value/Snapshot folds the shards on the (rare,
//     cold) read path.
//  3. One vocabulary. The simulator's probe stream (probe.Metrics) and
//     the live node adapt onto the same Registry, so dashboards and
//     scripts read one metric namespace regardless of which data path
//     produced it.
//
// Consistency model: every cell is updated with atomic operations, so a
// Snapshot is tear-free per metric value but not a cross-metric linearized
// cut — two counters incremented together may differ by in-flight updates.
// Histogram snapshots merge per-shard cells one atomic load at a time, so
// Count, Sum, and the bucket totals may disagree transiently by the few
// observations that landed mid-merge. All drift is bounded by concurrent
// write volume and never survives quiescence.
package metrics

import (
	"math"
	"math/bits"
	"runtime"
	"sync/atomic"
	"unsafe"
)

// shardCount is the number of write shards per metric: GOMAXPROCS at
// process start rounded up to a power of two, capped at 16. A power of
// two keeps the shard pick a mask; the cap bounds per-metric memory for
// huge machines (shards beyond the writer count only cost merge work).
var shardCount = func() int {
	n := runtime.GOMAXPROCS(0)
	if n > 16 {
		n = 16
	}
	c := 1
	for c < n {
		c <<= 1
	}
	return c
}()

// shardMask selects a shard from a hash; shardCount is a power of two.
var shardMask = uint64(shardCount - 1)

// shardHint returns a goroutine-affine shard index. It hashes the stack
// address of a local, which is distinct per goroutine (and stable between
// stack growths), so each goroutine keeps hitting the same shard — the
// per-CPU approximation available without runtime internals. The
// unsafe.Pointer→uintptr conversion is the always-legal direction; the
// pointer never escapes and the local stays on the stack, so the hint
// costs a few instructions and zero allocations.
func shardHint() uint64 {
	var b byte
	h := uint64(uintptr(unsafe.Pointer(&b))) * 0x9E3779B97F4A7C15
	return (h >> 40) & shardMask
}

// cacheLine is the assumed cache-line size the shard padding targets.
const cacheLine = 64

// counterShard is one cache-line-sized write cell of a Counter.
type counterShard struct {
	n atomic.Int64
	_ [cacheLine - 8]byte
}

// Counter is a monotonically increasing (by convention) sharded counter.
// Add never allocates and scales with concurrent writers; Value merges
// the shards. Create through Registry.Counter so the value is exported.
type Counter struct {
	shards []counterShard
}

// NewCounter returns a standalone counter; prefer Registry.Counter for
// anything that should appear in snapshots.
func NewCounter() *Counter {
	return &Counter{shards: make([]counterShard, shardCount)}
}

// Add increments the counter by delta. It is safe for concurrent use and
// performs no allocation.
func (c *Counter) Add(delta int64) {
	c.shards[shardHint()].n.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value folds the shards into the counter's current total.
func (c *Counter) Value() int64 {
	var total int64
	for i := range c.shards {
		total += c.shards[i].n.Load()
	}
	return total
}

// Gauge is a settable instantaneous value. Gauges are low-rate (queue
// depths, in-flight counts), so a single atomic cell suffices — Set and
// Add are one atomic operation, no allocation.
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns a standalone gauge; prefer Registry.Gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores the gauge's current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (use negative deltas to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the gauge's current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of log₂ buckets: bucket i holds observations
// v with bits.Len64(v) == i, i.e. bucket 0 holds v ≤ 0 and bucket i≥1
// holds [2^(i-1), 2^i). 64-bit values need at most index 64.
const histBuckets = 65

// histShard is one write cell of a Histogram. At 67 words it spans
// several cache lines regardless of padding; the trailing pad only keeps
// neighboring shards off a shared line.
type histShard struct {
	count   atomic.Uint64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Uint64
	_       [cacheLine - 16]byte
}

// Histogram is a sharded log₂-bucketed histogram for latencies (in
// nanoseconds, by repo convention — names end in _ns) and sizes (bytes,
// frames). Observe is three uncontended atomic adds and never allocates;
// Snapshot merges the shards on the read path.
type Histogram struct {
	shards []histShard
}

// NewHistogram returns a standalone histogram; prefer Registry.Histogram.
func NewHistogram() *Histogram {
	return &Histogram{shards: make([]histShard, shardCount)}
}

// bucketIndex maps an observation to its log₂ bucket.
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records one value. Negative values land in bucket 0 (and still
// contribute to Sum); observations are expected to be nonnegative.
func (h *Histogram) Observe(v int64) {
	s := &h.shards[shardHint()]
	s.count.Add(1)
	s.sum.Add(v)
	s.buckets[bucketIndex(v)].Add(1)
}

// ObserveDuration records a latency in nanoseconds.
func (h *Histogram) ObserveDuration(ns int64) { h.Observe(ns) }

// Snapshot merges the shards into a point-in-time view (see the package
// comment for the exact consistency guarantee).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var snap HistogramSnapshot
	var buckets [histBuckets]uint64
	top := -1
	for i := range h.shards {
		s := &h.shards[i]
		snap.Count += s.count.Load()
		snap.Sum += s.sum.Load()
		for b := 0; b < histBuckets; b++ {
			if n := s.buckets[b].Load(); n != 0 {
				buckets[b] += n
				if b > top {
					top = b
				}
			}
		}
	}
	snap.Buckets = append([]uint64(nil), buckets[:top+1]...)
	return snap
}

// HistogramSnapshot is a merged, immutable view of a Histogram. Buckets
// is trimmed after the last nonzero cell; bucket i covers [2^(i-1), 2^i)
// with bucket 0 holding v ≤ 0.
type HistogramSnapshot struct {
	// Count is the number of observations.
	Count uint64 `json:"count"`
	// Sum is the sum of all observed values.
	Sum int64 `json:"sum"`
	// Buckets holds per-log₂-bucket observation counts, trimmed of
	// trailing zeros.
	Buckets []uint64 `json:"buckets,omitempty"`
}

// Mean returns the average observed value (NaN-free: 0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// BucketUpperBound returns bucket i's inclusive upper bound as a float
// (0 for bucket 0, 2^i−1 otherwise; +Inf past the representable range).
func BucketUpperBound(i int) float64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.Inf(1)
	}
	return float64(uint64(1)<<uint(i) - 1)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by walking the merged
// buckets and interpolating linearly inside the covering bucket. The
// log₂ buckets bound the relative error by 2×, which is plenty for the
// order-of-magnitude latency questions the dashboard asks. Returns 0 for
// an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			lo := 0.0
			if i > 0 {
				lo = float64(uint64(1) << uint(i-1))
			}
			hi := BucketUpperBound(i)
			if math.IsInf(hi, 1) {
				return lo
			}
			frac := (rank - cum) / float64(n)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return BucketUpperBound(len(s.Buckets) - 1)
}
