package metrics

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// updateGolden regenerates testdata/prometheus.golden instead of
// comparing against it (go test ./internal/metrics -update).
var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestPrometheusGolden pins the text exposition format byte-for-byte
// against a golden file: family TYPE lines, label merging, cumulative
// histogram buckets, and the deterministic sort order.
func TestPrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("node_frames_received_total").Add(42)
	reg.Counter(`node_frames_sent_total{class="bulk"}`).Add(30)
	reg.Counter(`node_frames_sent_total{class="control"}`).Add(12)
	reg.Counter(`node_peer_download_bytes_total{peer="0"}`).Add(8192)
	reg.Counter(`node_peer_download_bytes_total{peer="2"}`).Add(4096)
	reg.Gauge("node_outbox_depth").Set(3)
	h := reg.Histogram("node_span_want_to_verified_ns")
	for _, v := range []int64{1, 3, 3, 900, 1024} {
		h.Observe(v)
	}
	lh := reg.Histogram(`transport_frame_bytes{dir="out"}`)
	lh.Observe(5)
	lh.Observe(300)

	var sb strings.Builder
	if err := reg.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	goldenPath := filepath.Join("testdata", "prometheus.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden file missing (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("prometheus exposition drifted from golden file.\n-- got --\n%s\n-- want --\n%s", got, want)
	}
}
