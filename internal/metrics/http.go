package metrics

import (
	"encoding/json"
	"net/http"
	"strings"
)

// Handler serves the registry over HTTP: Prometheus text exposition by
// default, an indented JSON Snapshot when the request asks for JSON
// (`?format=json` or an Accept header containing application/json). The
// JSON payload decodes back into a Snapshot, which the round-trip test
// pins.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		if wantsJSON(req) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(snap)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = snap.WritePrometheus(w)
	})
}

// wantsJSON decides the exposition format for one request.
func wantsJSON(req *http.Request) bool {
	if req.URL.Query().Get("format") == "json" {
		return true
	}
	return strings.Contains(req.Header.Get("Accept"), "application/json")
}
