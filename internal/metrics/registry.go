package metrics

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Registry is a namespace of metrics. Names follow the repo's scheme
// (DESIGN.md §10): snake_case, a subsystem prefix (node_, transport_,
// sim_), counters suffixed _total (_bytes_total for byte volumes),
// nanosecond histograms suffixed _ns. A series may carry one static
// label baked into its name — `node_peer_upload_bytes_total{peer="3"}` —
// which the Prometheus writer emits verbatim and merges with the
// histogram `le` label.
//
// Lookup methods are get-or-create and mutex-protected; hot paths hold
// the returned metric pointer and never touch the registry again.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	gaugeFuncs map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		gaugeFuncs: make(map[string]func() int64),
	}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = NewCounter()
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = NewGauge()
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// RegisterGaugeFunc registers a pull-style gauge computed at snapshot
// time — for values already maintained elsewhere (store piece counts,
// peer-map sizes). fn runs outside the registry lock and must be safe to
// call from any goroutine; it must not call back into Snapshot.
func (r *Registry) RegisterGaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// Snapshot is a point-in-time view of a Registry, JSON-round-trippable
// (the /metrics?format=json payload decodes back into this type). Gauge
// functions are folded into Gauges. See the package comment for the
// consistency model.
type Snapshot struct {
	// Counters maps series name to merged counter value.
	Counters map[string]int64 `json:"counters"`
	// Gauges maps series name to instantaneous value.
	Gauges map[string]int64 `json:"gauges"`
	// Histograms maps series name to merged histogram state.
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every registered metric. Gauge functions run after
// the registry lock is released, so they may take their own locks.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		hists[name] = h
	}
	funcs := make(map[string]func() int64, len(r.gaugeFuncs))
	for name, fn := range r.gaugeFuncs {
		funcs[name] = fn
	}
	r.mu.Unlock()

	snap := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)+len(funcs)),
		Histograms: make(map[string]HistogramSnapshot, len(hists)),
	}
	for name, c := range counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, fn := range funcs {
		snap.Gauges[name] = fn()
	}
	for name, h := range hists {
		snap.Histograms[name] = h.Snapshot()
	}
	return snap
}

// splitSeries separates a series name into its family and the baked-in
// label block (without braces): `a_total{peer="3"}` → (`a_total`,
// `peer="3"`).
func splitSeries(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// seriesWithLabel re-joins a family with label blocks, dropping empties:
// (`a_bucket`, `peer="3"`, `le="7"`) → `a_bucket{peer="3",le="7"}`.
func seriesWithLabel(family string, labels ...string) string {
	live := labels[:0]
	for _, l := range labels {
		if l != "" {
			live = append(live, l)
		}
	}
	if len(live) == 0 {
		return family
	}
	return family + "{" + strings.Join(live, ",") + "}"
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): one `# TYPE` line per family, series sorted
// lexically, histograms expanded into cumulative `_bucket{le=…}` lines
// plus `_sum` and `_count`. Output is deterministic for a given
// snapshot, which the golden-file test relies on.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	emit := func(kind string, byName map[string]int64) error {
		names := make([]string, 0, len(byName))
		for name := range byName {
			names = append(names, name)
		}
		sort.Strings(names)
		typed := make(map[string]bool)
		for _, name := range names {
			family, _ := splitSeries(name)
			if !typed[family] {
				typed[family] = true
				if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, kind); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", name, byName[name]); err != nil {
				return err
			}
		}
		return nil
	}
	if err := emit("counter", s.Counters); err != nil {
		return err
	}
	if err := emit("gauge", s.Gauges); err != nil {
		return err
	}

	histNames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	typed := make(map[string]bool)
	for _, name := range histNames {
		family, labels := splitSeries(name)
		if !typed[family] {
			typed[family] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", family); err != nil {
				return err
			}
		}
		h := s.Histograms[name]
		var cum uint64
		for i, n := range h.Buckets {
			cum += n
			if n == 0 && i != len(h.Buckets)-1 {
				continue // keep the output compact; cumulative stays correct
			}
			le := fmt.Sprintf(`le="%g"`, BucketUpperBound(i))
			if _, err := fmt.Fprintf(w, "%s %d\n", seriesWithLabel(family+"_bucket", labels, le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", seriesWithLabel(family+"_bucket", labels, `le="+Inf"`), h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", seriesWithLabel(family+"_sum", labels), h.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", seriesWithLabel(family+"_count", labels), h.Count); err != nil {
			return err
		}
	}
	return nil
}

// expvarMu guards duplicate-name checks around expvar.Publish, which
// panics on reuse.
var expvarMu sync.Mutex

// PublishExpvar exposes the registry under name in the process's expvar
// namespace (the standard /debug/vars page), as a nested object mirroring
// Snapshot. Publishing the same name twice is a silent no-op — expvar's
// namespace is process-global, while registries are per-node.
func (r *Registry) PublishExpvar(name string) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
