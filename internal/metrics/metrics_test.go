package metrics

import (
	"encoding/json"
	"expvar"
	"io"
	"math"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
)

// TestMetricsConcurrent hammers one counter, one gauge, and one histogram
// from GOMAXPROCS goroutines and asserts the merged totals — the sharded
// write path must lose nothing under -race.
func TestMetricsConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_ops_total")
	g := reg.Gauge("test_inflight")
	h := reg.Histogram("test_latency_ns")

	workers := runtime.GOMAXPROCS(0)
	const perWorker = 20000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Add(2)
				g.Add(1)
				g.Add(-1)
				h.Observe(int64(i%1000 + 1))
			}
		}(w)
	}
	wg.Wait()

	total := int64(workers) * perWorker
	if got := c.Value(); got != 2*total {
		t.Errorf("counter = %d, want %d", got, 2*total)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	hs := h.Snapshot()
	if hs.Count != uint64(total) {
		t.Errorf("histogram count = %d, want %d", hs.Count, total)
	}
	var bucketSum uint64
	for _, n := range hs.Buckets {
		bucketSum += n
	}
	if bucketSum != hs.Count {
		t.Errorf("bucket sum %d != count %d", bucketSum, hs.Count)
	}

	snap := reg.Snapshot()
	if snap.Counters["test_ops_total"] != 2*total {
		t.Errorf("snapshot counter = %d, want %d", snap.Counters["test_ops_total"], 2*total)
	}
	if snap.Histograms["test_latency_ns"].Count != uint64(total) {
		t.Errorf("snapshot histogram count = %d", snap.Histograms["test_latency_ns"].Count)
	}
}

// TestRegistryGetOrCreate pins the idempotent lookup contract: same name,
// same metric.
func TestRegistryGetOrCreate(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("x") != reg.Counter("x") {
		t.Error("Counter not idempotent")
	}
	if reg.Gauge("y") != reg.Gauge("y") {
		t.Error("Gauge not idempotent")
	}
	if reg.Histogram("z") != reg.Histogram("z") {
		t.Error("Histogram not idempotent")
	}
}

// TestGaugeFunc covers pull-style gauges folding into the snapshot.
func TestGaugeFunc(t *testing.T) {
	reg := NewRegistry()
	v := int64(7)
	reg.RegisterGaugeFunc("test_pull", func() int64 { return v })
	if got := reg.Snapshot().Gauges["test_pull"]; got != 7 {
		t.Errorf("gauge func = %d, want 7", got)
	}
	v = 9
	if got := reg.Snapshot().Gauges["test_pull"]; got != 9 {
		t.Errorf("gauge func after update = %d, want 9", got)
	}
}

// TestHistogramBuckets pins the log₂ bucket boundaries.
func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1 << 40, 41}}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	if got := BucketUpperBound(0); got != 0 {
		t.Errorf("BucketUpperBound(0) = %g", got)
	}
	if got := BucketUpperBound(3); got != 7 {
		t.Errorf("BucketUpperBound(3) = %g, want 7", got)
	}
	if !math.IsInf(BucketUpperBound(64), 1) {
		t.Error("BucketUpperBound(64) not +Inf")
	}
}

// TestHistogramQuantile sanity-checks the interpolated quantiles against
// a uniform fill: estimates must land within the 2× log-bucket error.
func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram()
	for v := int64(1); v <= 1024; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if got := s.Mean(); math.Abs(got-512.5) > 0.01 {
		t.Errorf("mean = %g, want 512.5", got)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		want := q * 1024
		got := s.Quantile(q)
		if got < want/2 || got > want*2 {
			t.Errorf("q%g = %g, want within 2x of %g", q, got, want)
		}
	}
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty snapshot quantile/mean not 0")
	}
}

// TestSnapshotJSONRoundTrip pins the /metrics JSON contract: a snapshot
// marshals and decodes back into an equal Snapshot.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(`node_peer_upload_bytes_total{peer="3"}`).Add(4096)
	reg.Counter("node_frames_received_total").Add(17)
	reg.Gauge("node_outbox_depth").Set(5)
	h := reg.Histogram("node_span_want_to_verified_ns")
	h.Observe(1500)
	h.Observe(90000)

	snap := reg.Snapshot()
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters[`node_peer_upload_bytes_total{peer="3"}`] != 4096 {
		t.Errorf("counter lost: %+v", back.Counters)
	}
	if back.Gauges["node_outbox_depth"] != 5 {
		t.Errorf("gauge lost: %+v", back.Gauges)
	}
	hb := back.Histograms["node_span_want_to_verified_ns"]
	if hb.Count != 2 || hb.Sum != 91500 {
		t.Errorf("histogram lost: %+v", hb)
	}
	if len(hb.Buckets) != len(snap.Histograms["node_span_want_to_verified_ns"].Buckets) {
		t.Error("bucket slice changed across round trip")
	}
}

// TestHandlerFormats covers the HTTP surface: Prometheus text by default,
// JSON on request, and the JSON decoding back into a Snapshot.
func TestHandlerFormats(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_frames_total").Add(3)
	reg.Histogram("test_ns").Observe(5)
	srv := httptest.NewServer(Handler(reg))
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	text := string(body)
	if !strings.Contains(text, "# TYPE test_frames_total counter") ||
		!strings.Contains(text, "test_frames_total 3") {
		t.Errorf("prometheus text missing counter:\n%s", text)
	}

	res, err = srv.Client().Get(srv.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["test_frames_total"] != 3 {
		t.Errorf("JSON snapshot = %+v", snap)
	}
}

// TestPublishExpvar covers the expvar surface: the registry appears under
// its name, and republishing the same name is a no-op instead of a panic.
func TestPublishExpvar(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("test_expvar_total").Add(11)
	reg.PublishExpvar("metrics_test_registry")
	reg.PublishExpvar("metrics_test_registry") // must not panic

	v := expvar.Get("metrics_test_registry")
	if v == nil {
		t.Fatal("registry not published")
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("expvar payload not a Snapshot: %v", err)
	}
	if snap.Counters["test_expvar_total"] != 11 {
		t.Errorf("expvar snapshot = %+v", snap)
	}
}

// BenchmarkCounterAdd pins the hot-path cost of Counter.Add; check.sh
// requires 0 allocs/op.
func BenchmarkCounterAdd(b *testing.B) {
	c := NewCounter()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
	if c.Value() == 0 {
		b.Fatal("counter never incremented")
	}
}

// BenchmarkHistogramObserve pins the hot-path cost of Histogram.Observe;
// check.sh requires 0 allocs/op.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(0)
		for pb.Next() {
			v++
			h.Observe(v)
		}
	})
	if h.Snapshot().Count == 0 {
		b.Fatal("histogram never observed")
	}
}
