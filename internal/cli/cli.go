// Package cli holds the flag plumbing shared by the command-line tools
// (coopsim, coopbench, coopmodel, coopnode): reusable flag bundles for
// swarm scale, replications, and output selection, a repeatable string
// flag, a JSON renderer so every binary's -json mode looks the same, and
// profiling/phase-timing helpers.
//
// Each bundle is a plain struct whose Register method declares its flags
// on a flag.FlagSet, using the struct's current field values as the
// defaults. Binaries set their defaults first, then register:
//
//	opts.Scale = cli.DefaultScale()
//	opts.Scale.Register(flag.CommandLine)
package cli

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"time"
)

// StringList is a flag.Value that collects every occurrence of a repeated
// string flag, in order.
type StringList []string

// String renders the collected values for flag's default-value output.
func (l *StringList) String() string { return fmt.Sprint([]string(*l)) }

// Set appends one occurrence of the flag.
func (l *StringList) Set(v string) error {
	*l = append(*l, v)
	return nil
}

// ScaleFlags bundles the swarm-scale flags shared by the simulation
// binaries: -peers, -pieces, -seed, -horizon, -shards.
type ScaleFlags struct {
	Peers   int
	Pieces  int
	Seed    int64
	Horizon float64
	Shards  int
}

// DefaultScale returns the paper's laptop-friendly default scale
// (200 peers, 128 pieces of 256 KB, seed 1, 12000 s horizon, serial
// engine).
func DefaultScale() ScaleFlags {
	return ScaleFlags{Peers: 200, Pieces: 128, Seed: 1, Horizon: 12000}
}

// Register declares the scale flags on fs with the receiver's current
// values as defaults.
func (s *ScaleFlags) Register(fs *flag.FlagSet) {
	fs.IntVar(&s.Peers, "peers", s.Peers, "flash-crowd size")
	fs.IntVar(&s.Pieces, "pieces", s.Pieces, "file pieces (256 KB each)")
	fs.Int64Var(&s.Seed, "seed", s.Seed, "random seed")
	fs.Float64Var(&s.Horizon, "horizon", s.Horizon, "simulated-time cap in seconds")
	fs.IntVar(&s.Shards, "shards", s.Shards,
		"event-engine shards per swarm (0: serial engine; N>=1: parallel engine, output identical for every N)")
}

// ReplicationFlags bundles the replication flags: -reps and -workers.
type ReplicationFlags struct {
	Reps    int
	Workers int
}

// Register declares the replication flags on fs with the receiver's
// current values as defaults.
func (r *ReplicationFlags) Register(fs *flag.FlagSet) {
	fs.IntVar(&r.Reps, "reps", r.Reps,
		"replication count; >1 runs seeds seed..seed+reps-1 and reports mean ± stderr")
	fs.IntVar(&r.Workers, "workers", r.Workers,
		"parallel worker count for replications (0: REPRO_WORKERS or GOMAXPROCS)")
}

// OutputFlags bundles the output-selection flags: -out (artifact
// directory) and -json (machine-readable stdout).
type OutputFlags struct {
	Dir  string
	JSON bool
}

// Register declares the output flags on fs with the receiver's current
// values as defaults.
func (o *OutputFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&o.Dir, "out", o.Dir, "directory for CSV/JSON artifacts (empty: none)")
	fs.BoolVar(&o.JSON, "json", o.JSON, "emit machine-readable JSON on stdout instead of the text report")
}

// RegisterJSON declares only the -json flag, for binaries without an
// artifact directory.
func (o *OutputFlags) RegisterJSON(fs *flag.FlagSet) {
	fs.BoolVar(&o.JSON, "json", o.JSON, "emit machine-readable JSON on stdout instead of the text report")
}

// TelemetryFlags bundles the live-node observability flags: -metrics-addr
// (the per-node HTTP listener serving /metrics, /debug/swarm, /debug/dht,
// /debug/trace, and /debug/vars), -dashboard (a live one-line terminal
// view), -metrics-out (a final JSON telemetry dump: snapshot plus sampler
// time-series), and the causal-tracing pair -trace-sample/-trace-out.
type TelemetryFlags struct {
	MetricsAddr string
	Dashboard   bool
	MetricsOut  string
	TraceSample int
	TraceOut    string
}

// Register declares the telemetry flags on fs with the receiver's current
// values as defaults.
func (t *TelemetryFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&t.MetricsAddr, "metrics-addr", t.MetricsAddr,
		"serve /metrics, /debug/swarm, and /debug/vars on this TCP address (\":0\" picks a free port; empty disables)")
	fs.BoolVar(&t.Dashboard, "dashboard", t.Dashboard,
		"render a live telemetry line on stderr while the node runs")
	fs.StringVar(&t.MetricsOut, "metrics-out", t.MetricsOut,
		"write a final JSON telemetry dump (metric snapshot + time-series samples) to this file")
	fs.IntVar(&t.TraceSample, "trace-sample", t.TraceSample,
		"record a causal trace for one in N pushed pieces (0 disables tracing)")
	fs.StringVar(&t.TraceOut, "trace-out", t.TraceOut,
		"write collected trace spans as a Chrome trace-event file on exit (implies -trace-sample 1 when that is unset)")
}

// Active reports whether any telemetry output was requested.
func (t *TelemetryFlags) Active() bool {
	return t.MetricsAddr != "" || t.Dashboard || t.MetricsOut != "" ||
		t.TraceSample > 0 || t.TraceOut != ""
}

// WriteJSON renders v to w as indented JSON — the one renderer behind
// every binary's -json mode, so their output framing matches.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// RunSummary is the machine-readable account of one live transfer — the
// -json payload the node binaries emit so scripted runs (and the repo's
// benchmark harness) can diff throughput and allocation behaviour across
// versions without scraping text output.
type RunSummary struct {
	// Bytes is the verified payload byte count transferred.
	Bytes int `json:"bytes"`
	// Pieces is the number of verified pieces transferred.
	Pieces int `json:"pieces"`
	// WallMS is the transfer's wall-clock duration in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// PiecesPerSec is Pieces divided by the wall-clock duration.
	PiecesPerSec float64 `json:"pieces_per_sec"`
	// BytesPerSec is Bytes divided by the wall-clock duration.
	BytesPerSec float64 `json:"bytes_per_sec"`
	// FramesSent counts wire frames written across all peers.
	FramesSent int64 `json:"frames_sent"`
	// FramesReceived counts wire frames received across all peers.
	FramesReceived int64 `json:"frames_received"`
	// AllocObjects is the process's heap-object allocation count over the
	// run (runtime.MemStats.Mallocs delta) — the wire path's allocation
	// behaviour at one remove, since a run is dominated by frame traffic.
	AllocObjects uint64 `json:"alloc_objects"`
}

// NewRunSummary derives the rate fields from the raw counters. A
// non-positive wall duration yields zero rates rather than infinities, so
// the JSON stays finite for degenerate (instant or failed) runs.
func NewRunSummary(bytes, pieces int, wall time.Duration, framesSent, framesReceived int64, allocObjects uint64) RunSummary {
	s := RunSummary{
		Bytes:          bytes,
		Pieces:         pieces,
		WallMS:         float64(wall.Microseconds()) / 1000,
		FramesSent:     framesSent,
		FramesReceived: framesReceived,
		AllocObjects:   allocObjects,
	}
	if secs := wall.Seconds(); secs > 0 {
		s.PiecesPerSec = float64(pieces) / secs
		s.BytesPerSec = float64(bytes) / secs
	}
	return s
}

// ProfileFlags bundles the Go profiling flags: -cpuprofile, -memprofile,
// and -trace. Call Start after flag parsing and Stop (usually deferred)
// once the measured work is done; both are no-ops for empty paths.
type ProfileFlags struct {
	CPUPath   string
	MemPath   string
	TracePath string

	cpuFile   *os.File
	traceFile *os.File
}

// Register declares the profiling flags on fs.
func (p *ProfileFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&p.CPUPath, "cpuprofile", p.CPUPath, "write a CPU profile to this file")
	fs.StringVar(&p.MemPath, "memprofile", p.MemPath, "write a heap profile to this file on exit")
	fs.StringVar(&p.TracePath, "trace", p.TracePath, "write a runtime execution trace to this file")
}

// Active reports whether any profiling output was requested.
func (p *ProfileFlags) Active() bool {
	return p.CPUPath != "" || p.MemPath != "" || p.TracePath != ""
}

// Start begins CPU profiling and execution tracing for the requested
// outputs. On error, anything already started is stopped.
func (p *ProfileFlags) Start() error {
	if p.CPUPath != "" {
		f, err := os.Create(p.CPUPath)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		p.cpuFile = f
	}
	if p.TracePath != "" {
		f, err := os.Create(p.TracePath)
		if err != nil {
			p.Stop()
			return err
		}
		if err := rtrace.Start(f); err != nil {
			f.Close()
			p.Stop()
			return err
		}
		p.traceFile = f
	}
	return nil
}

// Stop ends CPU profiling and tracing, then captures the heap profile if
// one was requested. It returns the first error encountered but always
// attempts every shutdown step.
func (p *ProfileFlags) Stop() error {
	var first error
	keep := func(err error) {
		if first == nil {
			first = err
		}
	}
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(p.cpuFile.Close())
		p.cpuFile = nil
	}
	if p.traceFile != nil {
		rtrace.Stop()
		keep(p.traceFile.Close())
		p.traceFile = nil
	}
	if p.MemPath != "" {
		f, err := os.Create(p.MemPath)
		if err != nil {
			keep(err)
		} else {
			runtime.GC() // settle the heap so the profile shows live objects
			keep(pprof.WriteHeapProfile(f))
			keep(f.Close())
		}
	}
	return first
}

// Phase is one named wall-clock measurement inside a Phases breakdown.
type Phase struct {
	Name string        `json:"name"`
	Wall time.Duration `json:"wall_ns"`
}

// Phases accumulates named wall-clock measurements — one per experiment
// or pipeline stage — and renders them as the batch report's per-phase
// breakdown. The zero value is ready to use.
type Phases struct {
	entries []Phase
}

// Run times f and records it under name, passing through f's error.
func (p *Phases) Run(name string, f func() error) error {
	started := time.Now()
	err := f()
	p.entries = append(p.entries, Phase{Name: name, Wall: time.Since(started)})
	return err
}

// Entries returns the recorded phases in execution order.
func (p *Phases) Entries() []Phase { return p.entries }

// Len returns the number of recorded phases.
func (p *Phases) Len() int { return len(p.entries) }

// Total returns the summed wall-clock time across all phases.
func (p *Phases) Total() time.Duration {
	var total time.Duration
	for _, e := range p.entries {
		total += e.Wall
	}
	return total
}

// Report writes the per-phase wall-clock breakdown as an aligned text
// block with each phase's share of the total.
func (p *Phases) Report(w io.Writer) {
	if len(p.entries) == 0 {
		return
	}
	nameWidth := len("total")
	for _, e := range p.entries {
		if len(e.Name) > nameWidth {
			nameWidth = len(e.Name)
		}
	}
	total := p.Total()
	fmt.Fprintln(w, "phase wall-clock breakdown:")
	for _, e := range p.entries {
		share := 0.0
		if total > 0 {
			share = 100 * float64(e.Wall) / float64(total)
		}
		fmt.Fprintf(w, "  %-*s  %10s  %5.1f%%\n",
			nameWidth, e.Name, e.Wall.Round(time.Millisecond), share)
	}
	fmt.Fprintf(w, "  %-*s  %10s\n", nameWidth, "total", total.Round(time.Millisecond))
}
