package cli

import (
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestStringList(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	var peers StringList
	fs.Var(&peers, "peer", "repeatable")
	if err := fs.Parse([]string{"-peer", "a:1", "-peer", "b:2"}); err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[0] != "a:1" || peers[1] != "b:2" {
		t.Errorf("peers = %v", peers)
	}
	if s := peers.String(); !strings.Contains(s, "a:1") {
		t.Errorf("String() = %q", s)
	}
}

func TestScaleFlagsDefaultsAndOverride(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	s := DefaultScale()
	s.Register(fs)
	if err := fs.Parse([]string{"-peers", "60", "-horizon", "600"}); err != nil {
		t.Fatal(err)
	}
	if s.Peers != 60 || s.Horizon != 600 {
		t.Errorf("overrides not applied: %+v", s)
	}
	if s.Pieces != 128 || s.Seed != 1 {
		t.Errorf("defaults not preserved: %+v", s)
	}
}

func TestReplicationAndOutputFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	r := ReplicationFlags{Reps: 1}
	r.Register(fs)
	var o OutputFlags
	o.Register(fs)
	if err := fs.Parse([]string{"-reps", "8", "-workers", "2", "-json", "-out", "artifacts"}); err != nil {
		t.Fatal(err)
	}
	if r.Reps != 8 || r.Workers != 2 {
		t.Errorf("replication flags: %+v", r)
	}
	if !o.JSON || o.Dir != "artifacts" {
		t.Errorf("output flags: %+v", o)
	}
}

func TestRegisterJSONOmitsOut(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var o OutputFlags
	o.RegisterJSON(fs)
	if err := fs.Parse([]string{"-json"}); err != nil {
		t.Fatal(err)
	}
	if !o.JSON {
		t.Error("-json not applied")
	}
	if err := fs.Parse([]string{"-out", "x"}); err == nil {
		t.Error("-out accepted by RegisterJSON")
	}
}

func TestWriteJSON(t *testing.T) {
	var sb strings.Builder
	if err := WriteJSON(&sb, map[string]int{"runs": 3}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "\"runs\": 3") {
		t.Errorf("output = %q", sb.String())
	}
}

func TestProfileFlagsWriteFiles(t *testing.T) {
	dir := t.TempDir()
	p := ProfileFlags{
		CPUPath: filepath.Join(dir, "cpu.pprof"),
		MemPath: filepath.Join(dir, "mem.pprof"),
	}
	if !p.Active() {
		t.Fatal("Active() = false with paths set")
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to write.
	x := 0
	for i := 0; i < 1<<20; i++ {
		x += i * i
	}
	_ = x
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{p.CPUPath, p.MemPath} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}

func TestProfileFlagsInactive(t *testing.T) {
	var p ProfileFlags
	if p.Active() {
		t.Error("zero value reports active")
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestPhases(t *testing.T) {
	var p Phases
	if err := p.Run("setup", func() error { time.Sleep(time.Millisecond); return nil }); err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("boom")
	if err := p.Run("run", func() error { return wantErr }); !errors.Is(err, wantErr) {
		t.Errorf("error not passed through: %v", err)
	}
	if p.Len() != 2 || len(p.Entries()) != 2 {
		t.Fatalf("Len() = %d", p.Len())
	}
	if p.Total() <= 0 {
		t.Error("Total() not positive")
	}
	var sb strings.Builder
	p.Report(&sb)
	out := sb.String()
	for _, want := range []string{"phase wall-clock breakdown", "setup", "run", "total", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	var empty Phases
	var sb2 strings.Builder
	empty.Report(&sb2)
	if sb2.Len() != 0 {
		t.Error("empty Phases rendered a report")
	}
}

func TestNewRunSummaryRates(t *testing.T) {
	s := NewRunSummary(2048, 4, 2*time.Second, 10, 20, 99)
	if s.Bytes != 2048 || s.Pieces != 4 || s.FramesSent != 10 || s.FramesReceived != 20 || s.AllocObjects != 99 {
		t.Fatalf("raw counters wrong: %+v", s)
	}
	if s.WallMS != 2000 {
		t.Errorf("WallMS = %g, want 2000", s.WallMS)
	}
	if s.PiecesPerSec != 2 {
		t.Errorf("PiecesPerSec = %g, want 2", s.PiecesPerSec)
	}
	if s.BytesPerSec != 1024 {
		t.Errorf("BytesPerSec = %g, want 1024", s.BytesPerSec)
	}
}

func TestNewRunSummaryZeroWallStaysFinite(t *testing.T) {
	s := NewRunSummary(100, 1, 0, 0, 0, 0)
	if s.PiecesPerSec != 0 || s.BytesPerSec != 0 {
		t.Errorf("zero-duration rates = %g, %g; want 0, 0", s.PiecesPerSec, s.BytesPerSec)
	}
}
