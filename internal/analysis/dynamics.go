package analysis

import (
	"fmt"
	"math"

	"repro/internal/algo"
)

// BootstrapCurve iterates Table II's per-timeslot bootstrap probabilities
// into a population trajectory: starting from z(0) = 0, each timeslot
// bootstraps (N − z)·p_B(z) newcomers in expectation, where p_B is the
// algorithm's Table II formula evaluated at the current z. The returned
// series is z(t)/N for t = 0..slots — the analytical counterpart of the
// Figure 4c curves.
//
// base supplies the fixed parameters (N, NS, K, NBT, PiDR, Omega); Z is
// updated internally each slot and NFT is pinned to the population size
// (during a flash crowd nearly everyone holds a near-zero deficit).
func BootstrapCurve(a algo.Algorithm, base BootstrapParams, slots int) ([]float64, error) {
	if slots < 1 {
		return nil, fmt.Errorf("analysis: slots %d must be positive", slots)
	}
	n := float64(base.N)
	z := 0.0
	curve := make([]float64, 0, slots+1)
	curve = append(curve, 0)
	for t := 0; t < slots; t++ {
		p := base
		p.Z = int(math.Round(z))
		// Zero-deficit population for FairTorrent: during a flash crowd
		// essentially everyone hovers near a zero deficit (Section IV-B:
		// "when a flash crowd arrives, most users have similar piece
		// deficits"), so newcomers compete with the whole population.
		p.NFT = max(p.K+2, p.N)
		prob, err := p.BootstrapProbability(a)
		if err != nil {
			return nil, err
		}
		z += (n - z) * prob
		if z > n {
			z = n
		}
		curve = append(curve, z/n)
	}
	return curve, nil
}

// TimeToFraction returns the first index (timeslot) at which the curve
// reaches the given fraction, or -1 if it never does.
func TimeToFraction(curve []float64, fraction float64) int {
	for t, v := range curve {
		if v >= fraction {
			return t
		}
	}
	return -1
}
