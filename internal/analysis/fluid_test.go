package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func fluidBase() FluidParams {
	return FluidParams{N: 1000, Mu: 0.002, Eta: 1, SeedRate: 0.01}
}

func TestFluidValidation(t *testing.T) {
	bad := []FluidParams{
		{N: 0, Mu: 1, Eta: 1, SeedRate: 1},
		{N: 10, Mu: -1, Eta: 1, SeedRate: 1},
		{N: 10, Mu: 1, Eta: 2, SeedRate: 1},
		{N: 10, Mu: 1, Eta: 1, SeedRate: -1},
		{N: 10, Mu: 0, Eta: 0, SeedRate: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := fluidBase().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFluidClosedFormInitialCondition(t *testing.T) {
	p := fluidBase()
	x0, err := p.FluidLeechers(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x0-float64(p.N)) > 1e-9 {
		t.Errorf("x(0) = %g, want N", x0)
	}
}

func TestFluidSatisfiesODE(t *testing.T) {
	// Central difference of the closed form must match −(a·x + s).
	p := fluidBase()
	a := p.Mu * p.Eta
	const h = 1e-4
	for _, tt := range []float64{1, 50, 200, 800} {
		xPlus, _ := p.FluidLeechers(tt + h)
		xMinus, _ := p.FluidLeechers(tt - h)
		x, _ := p.FluidLeechers(tt)
		if x == 0 {
			continue // clamped region; the ODE no longer applies
		}
		derivative := (xPlus - xMinus) / (2 * h)
		want := -(a*x + p.SeedRate)
		if math.Abs(derivative-want) > 1e-3*math.Abs(want) {
			t.Errorf("t=%g: dx/dt = %g, want %g", tt, derivative, want)
		}
	}
}

func TestFluidSeederOnlyDegenerate(t *testing.T) {
	// With mu = 0 the drain is linear: the reciprocity regime.
	p := FluidParams{N: 100, Mu: 0, Eta: 1, SeedRate: 2}
	x, err := p.FluidLeechers(25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-50) > 1e-9 {
		t.Errorf("x(25) = %g, want 50", x)
	}
	t50, err := p.FluidTimeToFraction(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(t50-25) > 1e-9 {
		t.Errorf("t50 = %g, want 25", t50)
	}
}

func TestFluidCompletionCurveMonotoneProperty(t *testing.T) {
	f := func(seedScale, muScale uint8) bool {
		p := FluidParams{
			N:        500,
			Mu:       float64(muScale%50) / 10000,
			Eta:      1,
			SeedRate: float64(seedScale%50)/100 + 0.001,
		}
		curve, err := p.FluidCompletionCurve(2000, 100)
		if err != nil {
			return false
		}
		prev := -1.0
		for _, v := range curve {
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFluidTimeToFractionInvertsCurve(t *testing.T) {
	p := fluidBase()
	for _, frac := range []float64{0.1, 0.5, 0.9, 0.99} {
		tt, err := p.FluidTimeToFraction(frac)
		if err != nil {
			t.Fatal(err)
		}
		x, _ := p.FluidLeechers(tt)
		got := (float64(p.N) - x) / float64(p.N)
		if math.Abs(got-frac) > 1e-9 {
			t.Errorf("fraction at t%g = %g", frac, got)
		}
	}
	if tt, _ := p.FluidTimeToFraction(0); tt != 0 {
		t.Error("t0 != 0")
	}
	if tt, _ := p.FluidTimeToFraction(1.5); !math.IsInf(tt, 1) {
		t.Error("impossible fraction not +Inf")
	}
}

func TestFluidCurveErrors(t *testing.T) {
	p := fluidBase()
	if _, err := p.FluidCompletionCurve(0, 10); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := p.FluidCompletionCurve(10, 1); err == nil {
		t.Error("single sample accepted")
	}
	bad := FluidParams{}
	if _, err := bad.FluidLeechers(1); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := bad.FluidTimeToFraction(0.5); err == nil {
		t.Error("invalid params accepted in time solve")
	}
}
