package analysis

import (
	"math"
	"testing"

	"repro/internal/algo"
)

// TestTableIIExampleColumn pins the paper's published example column:
// 0.1%, 71.4%, 39.6%, 71.4%, 22.2%, 91.8%.
func TestTableIIExampleColumn(t *testing.T) {
	p := TableIIExample()
	want := map[algo.Algorithm]float64{
		algo.Reciprocity: 0.001,
		algo.TChain:      0.714,
		algo.BitTorrent:  0.396,
		algo.FairTorrent: 0.714,
		algo.Reputation:  0.222,
		algo.Altruism:    0.918,
	}
	for a, w := range want {
		got, err := p.BootstrapProbability(a)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if math.Abs(got-w) > 0.0015 {
			t.Errorf("%v bootstrap probability = %.4f, paper says %.3f", a, got, w)
		}
	}
}

func TestBootstrapTableComplete(t *testing.T) {
	table, err := TableIIExample().BootstrapTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != 6 {
		t.Fatalf("table has %d rows", len(table))
	}
}

func TestBootstrapValidation(t *testing.T) {
	bad := []BootstrapParams{
		{N: 2, NS: 1, K: 1, Z: 0, NBT: 1, NFT: 10},
		{N: 100, NS: -1, K: 1, Z: 0, NBT: 1, NFT: 10},
		{N: 100, NS: 1, K: 0, Z: 0, NBT: 1, NFT: 10},
		{N: 100, NS: 1, K: 1, Z: -1, NBT: 1, NFT: 10},
		{N: 100, NS: 1, K: 1, Z: 0, PiDR: 1.5, NBT: 1, NFT: 10},
		{N: 100, NS: 1, K: 1, Z: 0, NBT: 0, NFT: 10},
		{N: 100, NS: 1, K: 1, Z: 0, NBT: 1, Omega: -0.1, NFT: 10},
		{N: 100, NS: 1, K: 5, Z: 0, NBT: 1, NFT: 3},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
		if _, err := p.BootstrapProbability(algo.Altruism); err == nil {
			t.Errorf("case %d probability computed", i)
		}
	}
	if _, err := TableIIExample().BootstrapProbability(algo.Algorithm(42)); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestProposition4Ordering(t *testing.T) {
	// With the example parameters, altruism ≥ {T-Chain, FairTorrent} >
	// BitTorrent > reputation > reciprocity.
	p := TableIIExample()
	prob := func(a algo.Algorithm) float64 {
		v, err := p.BootstrapProbability(a)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	alt, tc, ft := prob(algo.Altruism), prob(algo.TChain), prob(algo.FairTorrent)
	bt, rep, rec := prob(algo.BitTorrent), prob(algo.Reputation), prob(algo.Reciprocity)
	if !(alt >= tc && alt >= ft) {
		t.Errorf("altruism %g not fastest (tc %g, ft %g)", alt, tc, ft)
	}
	if !(tc > bt && ft > bt) {
		t.Errorf("hybrids (tc %g, ft %g) not faster than BT %g", tc, ft, bt)
	}
	if !(bt > rep) {
		t.Errorf("BT %g not faster than reputation %g", bt, rep)
	}
	if !(rep > rec) {
		t.Errorf("reputation %g not faster than reciprocity %g", rep, rec)
	}
}

func TestProposition4ZeroFrictionLimit(t *testing.T) {
	// With π_DR = ω = 0, T-Chain and FairTorrent match altruism's form.
	p := TableIIExample()
	p.PiDR = 0
	p.Omega = 0
	// For FairTorrent equality the per-slot fan-out must match: with
	// n_FT−1 ≈ N−1 the bases align; here we check T-Chain exactly.
	alt, _ := p.BootstrapProbability(algo.Altruism)
	tc, _ := p.BootstrapProbability(algo.TChain)
	if math.Abs(alt-tc) > 1e-12 {
		t.Errorf("π_DR=0: T-Chain %g != altruism %g", tc, alt)
	}
}

func TestBootstrapProbabilityMonotoneInZ(t *testing.T) {
	// More bootstrapped users -> higher bootstrap probability.
	p := TableIIExample()
	for _, a := range []algo.Algorithm{algo.TChain, algo.BitTorrent, algo.FairTorrent, algo.Reputation, algo.Altruism} {
		prev := -1.0
		for z := 0; z <= 1000; z += 100 {
			p.Z = z
			got, err := p.BootstrapProbability(a)
			if err != nil {
				t.Fatal(err)
			}
			if got < prev-1e-12 {
				t.Errorf("%v not monotone in z at z=%d", a, z)
			}
			prev = got
		}
	}
}

func TestExpectedBootstrapTimeGeometric(t *testing.T) {
	// With P=1 and constant probability p, T_B is geometric:
	// E[T_B] = 1/p.
	for _, prob := range []float64{0.1, 0.5, 0.9} {
		got, err := ExpectedBootstrapTimeConst(1, prob, 100000)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-1/prob) > 1e-6 {
			t.Errorf("E[T_B] at p=%g = %g, want %g", prob, got, 1/prob)
		}
	}
}

func TestExpectedBootstrapTimeIncreasesWithP(t *testing.T) {
	// The slowest of P newcomers takes longer as P grows.
	prev := 0.0
	for _, p := range []int{1, 10, 100, 1000} {
		got, err := ExpectedBootstrapTimeConst(p, 0.3, 100000)
		if err != nil {
			t.Fatal(err)
		}
		if got <= prev {
			t.Errorf("E[T_B(%d)] = %g not increasing", p, got)
		}
		prev = got
	}
}

func TestExpectedBootstrapTimeErrors(t *testing.T) {
	if _, err := ExpectedBootstrapTimeConst(0, 0.5, 100); err == nil {
		t.Error("P=0 accepted")
	}
	if _, err := ExpectedBootstrapTimeConst(1, 1.5, 100); err == nil {
		t.Error("probability > 1 accepted")
	}
	// Zero probability never converges.
	if _, err := ExpectedBootstrapTimeConst(1, 0, 100); err == nil {
		t.Error("non-convergent sum did not error")
	}
}

func TestExpectedBootstrapTimeTimeVarying(t *testing.T) {
	// p_B = 0 for t <= 5, then 1: everyone bootstraps exactly at t=6.
	got, err := ExpectedBootstrapTime(50, func(t int) float64 {
		if t <= 5 {
			return 0
		}
		return 1
	}, 1000, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-6) > 1e-9 {
		t.Errorf("E[T_B] = %g, want 6", got)
	}
}
