package analysis

import (
	"fmt"

	"repro/internal/algo"
)

// FreeRideParams collects the quantities entering Table III.
type FreeRideParams struct {
	TotalCapacity float64 // Σᵢ Uᵢ
	AlphaBT       float64 // BitTorrent optimistic-unchoke share
	AlphaR        float64 // reputation altruism share
	Omega         float64 // FairTorrent negative-deficit probability ω
	PiIR          float64 // T-Chain indirect-reciprocity probability π_IR
	FreeRiders    int     // m, number of colluding free-riders
	N             int     // total users
}

// ExploitableResources returns Table III's "exploitable resources" column:
// the upload bandwidth a non-collusive free-rider population can capture.
func (p FreeRideParams) ExploitableResources(a algo.Algorithm) (float64, error) {
	switch a {
	case algo.Reciprocity, algo.TChain:
		return 0, nil
	case algo.BitTorrent:
		return p.AlphaBT * p.TotalCapacity, nil
	case algo.FairTorrent:
		return (1 - p.Omega) * p.TotalCapacity, nil
	case algo.Reputation:
		return p.AlphaR * p.TotalCapacity, nil
	case algo.Altruism:
		return p.TotalCapacity, nil
	default:
		return 0, fmt.Errorf("analysis: unknown algorithm %v", a)
	}
}

// CollusionProbability returns Table III's "collusion probability" column:
// the chance that a collusive attack extracts an upload. The paper marks
// reciprocity, BitTorrent, and FairTorrent "none" (0), altruism "n/a"
// (collusion is pointless when everything is free — reported as 0 here),
// reputation 1 (false praise always works), and T-Chain
// π_IR·(m−1)m/((N−1)N) ≪ 1.
func (p FreeRideParams) CollusionProbability(a algo.Algorithm) (float64, error) {
	switch a {
	case algo.Reciprocity, algo.BitTorrent, algo.FairTorrent, algo.Altruism:
		return 0, nil
	case algo.Reputation:
		return 1, nil
	case algo.TChain:
		if p.N < 2 {
			return 0, fmt.Errorf("analysis: N = %d too small", p.N)
		}
		m := float64(p.FreeRiders)
		n := float64(p.N)
		return p.PiIR * (m - 1) * m / ((n - 1) * n), nil
	default:
		return 0, fmt.Errorf("analysis: unknown algorithm %v", a)
	}
}

// ExposureRow is one rendered row of Table III.
type ExposureRow struct {
	Algorithm   algo.Algorithm
	Exploitable float64
	Collusion   float64
}

// TableIII renders all six rows.
func (p FreeRideParams) TableIII() ([]ExposureRow, error) {
	rows := make([]ExposureRow, 0, 6)
	for _, a := range algo.All() {
		ex, err := p.ExploitableResources(a)
		if err != nil {
			return nil, err
		}
		col, err := p.CollusionProbability(a)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ExposureRow{Algorithm: a, Exploitable: ex, Collusion: col})
	}
	return rows, nil
}
