package analysis

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/algo"
	"repro/internal/stats"
)

// BootstrapParams collects the quantities entering Table II's bootstrap
// probabilities for a flash crowd.
type BootstrapParams struct {
	N     int     // total users
	NS    int     // users the seeder bootstraps per timeslot (n_S)
	K     int     // average pieces a user uploads per timeslot
	Z     int     // bootstrapped users z(t) at the evaluated instant
	PiDR  float64 // probability of direct reciprocity in T-Chain (π_DR)
	NBT   int     // BitTorrent reciprocity slots (n_BT)
	Omega float64 // probability a FairTorrent user has a negative deficit (ω)
	NFT   int     // users with zero deficits in FairTorrent (n_FT)
}

// TableIIExample returns the parameterization of Table II's example column:
// N=1000, n_S=1, K=5, z=500, π_DR=0.5, n_BT=4, ω=0.75, n_FT=500.
func TableIIExample() BootstrapParams {
	return BootstrapParams{N: 1000, NS: 1, K: 5, Z: 500, PiDR: 0.5, NBT: 4, Omega: 0.75, NFT: 500}
}

// Validate checks parameter sanity.
func (p BootstrapParams) Validate() error {
	switch {
	case p.N < 3:
		return fmt.Errorf("analysis: N = %d too small", p.N)
	case p.NS < 0 || p.NS > p.N:
		return fmt.Errorf("analysis: n_S = %d outside [0, N]", p.NS)
	case p.K < 1:
		return fmt.Errorf("analysis: K = %d must be >= 1", p.K)
	case p.Z < 0:
		return fmt.Errorf("analysis: z = %d negative", p.Z)
	case p.PiDR < 0 || p.PiDR > 1:
		return fmt.Errorf("analysis: pi_DR = %g outside [0,1]", p.PiDR)
	case p.NBT < 1 || p.NBT > p.N-3:
		return fmt.Errorf("analysis: n_BT = %d out of range", p.NBT)
	case p.Omega < 0 || p.Omega > 1:
		return fmt.Errorf("analysis: omega = %g outside [0,1]", p.Omega)
	case p.NFT < p.K+2:
		return fmt.Errorf("analysis: n_FT = %d must exceed K+1", p.NFT)
	default:
		return nil
	}
}

// seederMiss is (N − n_S)/N: the probability the seeder does not bootstrap a
// given newcomer this timeslot.
func (p BootstrapParams) seederMiss() float64 {
	return float64(p.N-p.NS) / float64(p.N)
}

// BootstrapProbability returns Table II's per-timeslot probability that a
// single newcomer receives its first piece, for the given algorithm.
func (p BootstrapParams) BootstrapProbability(a algo.Algorithm) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	n := float64(p.N)
	kz := float64(p.K * p.Z)
	z := float64(p.Z)

	var x float64 // probability no *peer* bootstraps the newcomer
	switch a {
	case algo.Reciprocity:
		x = 1 // peers never initiate; only the seeder bootstraps

	case algo.TChain:
		x = math.Pow((n-2+p.PiDR)/(n-1), kz)

	case algo.BitTorrent:
		x = math.Pow((n-float64(p.NBT)-2)/(n-float64(p.NBT)-1), z)

	case algo.FairTorrent:
		base := p.Omega + (1-p.Omega)*float64(p.NFT-p.K-1)/float64(p.NFT-1)
		x = math.Pow(base, z)

	case algo.Reputation:
		// Half the users altruistically upload one piece per slot [4].
		x = math.Pow((n-2)/(n-1), z/2)

	case algo.Altruism:
		x = math.Pow((n-2)/(n-1), kz)

	default:
		return 0, fmt.Errorf("analysis: unknown algorithm %v", a)
	}
	return 1 - p.seederMiss()*x, nil
}

// BootstrapTable returns the per-algorithm probabilities in table order.
func (p BootstrapParams) BootstrapTable() (map[algo.Algorithm]float64, error) {
	out := make(map[algo.Algorithm]float64, 6)
	for _, a := range algo.All() {
		prob, err := p.BootstrapProbability(a)
		if err != nil {
			return nil, err
		}
		out[a] = prob
	}
	return out, nil
}

// ExpectedBootstrapTime evaluates Lemma 3's Eq. 10:
//
//	E[T_B(P)] = Σ_{n≥1} ( 1 − (1 − Π_{t=1..n} (1 − p_B(t)))^P )
//
// where probAt(t) gives the single-newcomer bootstrap probability in
// timeslot t (t starting at 1; callers typically close over z(t)).
// The sum is truncated once the summand drops below tol or after maxSlots
// slots; it returns an error if the tail has not converged by then.
func ExpectedBootstrapTime(p int, probAt func(t int) float64, maxSlots int, tol float64) (float64, error) {
	if p <= 0 {
		return 0, errors.New("analysis: P must be positive")
	}
	if maxSlots <= 0 {
		maxSlots = 100000
	}
	if tol <= 0 {
		tol = 1e-12
	}
	// E[T_B(P)] = Σ_{n≥0} P(T_B > n); the n = 0 term is always 1.
	expected := 1.0
	survival := 1.0 // Π (1 − p_B(t)) so far
	for t := 1; t <= maxSlots; t++ {
		pb := probAt(t)
		if pb < 0 || pb > 1 || math.IsNaN(pb) {
			return 0, fmt.Errorf("analysis: p_B(%d) = %g outside [0,1]", t, pb)
		}
		survival *= 1 - pb
		// P(T_B > t) for the slowest of P independent newcomers.
		term := 1 - stats.Pow1mXN(survival, float64(p))
		expected += term
		if term < tol {
			return expected, nil
		}
	}
	return expected, fmt.Errorf("analysis: E[T_B] did not converge within %d slots", maxSlots)
}

// ExpectedBootstrapTimeConst is ExpectedBootstrapTime with a
// time-independent bootstrap probability, the common case when comparing
// algorithms at a fixed z.
func ExpectedBootstrapTimeConst(p int, prob float64, maxSlots int) (float64, error) {
	return ExpectedBootstrapTime(p, func(int) float64 { return prob }, maxSlots, 1e-12)
}
