package analysis

import (
	"testing"

	"repro/internal/algo"
)

func dynamicsBase() BootstrapParams {
	return BootstrapParams{N: 1000, NS: 2, K: 2, NBT: 4, PiDR: 0.2, Omega: 0.25, NFT: 10}
}

func TestBootstrapCurveShape(t *testing.T) {
	for _, a := range algo.All() {
		curve, err := BootstrapCurve(a, dynamicsBase(), 400)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if len(curve) != 401 {
			t.Fatalf("%v: %d points", a, len(curve))
		}
		if curve[0] != 0 {
			t.Errorf("%v: curve starts at %g", a, curve[0])
		}
		prev := -1.0
		for i, v := range curve {
			if v < prev-1e-12 || v > 1+1e-12 {
				t.Fatalf("%v: curve not monotone in [0,1] at %d: %g", a, i, v)
			}
			prev = v
		}
	}
}

func TestBootstrapCurveOrdering(t *testing.T) {
	// Proposition 4's speed ordering shows up in time-to-90%.
	times := make(map[algo.Algorithm]int, 6)
	for _, a := range algo.All() {
		curve, err := BootstrapCurve(a, dynamicsBase(), 5000)
		if err != nil {
			t.Fatal(err)
		}
		times[a] = TimeToFraction(curve, 0.9)
		if times[a] < 0 {
			t.Fatalf("%v never reached 90%% in 5000 slots", a)
		}
	}
	if !(times[algo.Altruism] <= times[algo.TChain] && times[algo.Altruism] <= times[algo.FairTorrent]) {
		t.Errorf("altruism %d slots not fastest (tc %d, ft %d)",
			times[algo.Altruism], times[algo.TChain], times[algo.FairTorrent])
	}
	if !(times[algo.TChain] <= times[algo.BitTorrent]) {
		t.Errorf("T-Chain %d not faster than BitTorrent %d", times[algo.TChain], times[algo.BitTorrent])
	}
	if !(times[algo.BitTorrent] <= times[algo.Reputation]) {
		t.Errorf("BitTorrent %d not faster than reputation %d", times[algo.BitTorrent], times[algo.Reputation])
	}
	if !(times[algo.Reputation] < times[algo.Reciprocity]) {
		t.Errorf("reputation %d not faster than reciprocity %d", times[algo.Reputation], times[algo.Reciprocity])
	}
}

func TestBootstrapCurveReciprocitySeederOnly(t *testing.T) {
	// Reciprocity's curve depends only on the seeder: z' = (N-z)·n_S/N.
	base := dynamicsBase()
	curve, err := BootstrapCurve(algo.Reciprocity, base, 10)
	if err != nil {
		t.Fatal(err)
	}
	n := float64(base.N)
	z := 0.0
	for slot := 1; slot <= 10; slot++ {
		z += (n - z) * float64(base.NS) / n
		if diff := curve[slot] - z/n; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("slot %d: curve %g, want %g", slot, curve[slot], z/n)
		}
	}
}

func TestBootstrapCurveErrors(t *testing.T) {
	if _, err := BootstrapCurve(algo.Altruism, dynamicsBase(), 0); err == nil {
		t.Error("zero slots accepted")
	}
	bad := dynamicsBase()
	bad.N = 1
	if _, err := BootstrapCurve(algo.Altruism, bad, 10); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestTimeToFraction(t *testing.T) {
	curve := []float64{0, 0.3, 0.6, 0.95, 1}
	if got := TimeToFraction(curve, 0.5); got != 2 {
		t.Errorf("t50 = %d", got)
	}
	if got := TimeToFraction(curve, 0.99); got != 4 {
		t.Errorf("t99 = %d", got)
	}
	if got := TimeToFraction(curve[:3], 0.99); got != -1 {
		t.Errorf("unreachable = %d", got)
	}
}
