package analysis

import (
	"math"
	"testing"

	"repro/internal/algo"
)

func exampleFreeRide() FreeRideParams {
	return FreeRideParams{
		TotalCapacity: 1000,
		AlphaBT:       0.2,
		AlphaR:        0.1,
		Omega:         0.75,
		PiIR:          0.05,
		FreeRiders:    200,
		N:             1000,
	}
}

func TestTableIIIExploitableResources(t *testing.T) {
	p := exampleFreeRide()
	want := map[algo.Algorithm]float64{
		algo.Reciprocity: 0,
		algo.TChain:      0,
		algo.BitTorrent:  200,  // α_BT · ΣU
		algo.FairTorrent: 250,  // (1−ω) · ΣU
		algo.Reputation:  100,  // α_R · ΣU
		algo.Altruism:    1000, // ΣU
	}
	for a, w := range want {
		got, err := p.ExploitableResources(a)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if math.Abs(got-w) > 1e-9 {
			t.Errorf("%v exploitable = %g, want %g", a, got, w)
		}
	}
	if _, err := p.ExploitableResources(algo.Algorithm(77)); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestTableIIICollusion(t *testing.T) {
	p := exampleFreeRide()
	for _, a := range []algo.Algorithm{algo.Reciprocity, algo.BitTorrent, algo.FairTorrent, algo.Altruism} {
		got, err := p.CollusionProbability(a)
		if err != nil || got != 0 {
			t.Errorf("%v collusion = %g, %v; want 0", a, got, err)
		}
	}
	if got, _ := p.CollusionProbability(algo.Reputation); got != 1 {
		t.Errorf("reputation collusion = %g, want 1", got)
	}
	tc, err := p.CollusionProbability(algo.TChain)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.05 * 199 * 200 / (999.0 * 1000)
	if math.Abs(tc-want) > 1e-12 {
		t.Errorf("T-Chain collusion = %g, want %g", tc, want)
	}
	if tc >= 0.01 {
		t.Errorf("T-Chain collusion %g should be ≪ 1", tc)
	}
	if _, err := p.CollusionProbability(algo.Algorithm(77)); err == nil {
		t.Error("unknown algorithm accepted")
	}
	bad := p
	bad.N = 1
	if _, err := bad.CollusionProbability(algo.TChain); err == nil {
		t.Error("N=1 accepted")
	}
}

func TestTableIIISusceptibilityOrdering(t *testing.T) {
	// Altruism > FairTorrent > BitTorrent > Reputation > T-Chain = Reciprocity = 0
	// with the example parameters.
	p := exampleFreeRide()
	rows, err := p.TableIII()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	byAlgo := make(map[algo.Algorithm]ExposureRow, 6)
	for _, r := range rows {
		byAlgo[r.Algorithm] = r
	}
	if !(byAlgo[algo.Altruism].Exploitable > byAlgo[algo.FairTorrent].Exploitable &&
		byAlgo[algo.FairTorrent].Exploitable > byAlgo[algo.BitTorrent].Exploitable &&
		byAlgo[algo.BitTorrent].Exploitable > byAlgo[algo.Reputation].Exploitable &&
		byAlgo[algo.Reputation].Exploitable > 0) {
		t.Errorf("exploitable ordering violated: %+v", byAlgo)
	}
}

func TestReputationEquilibriumProportional(t *testing.T) {
	caps := []float64{8, 4, 2, 1}
	f, e, err := ReputationEquilibrium(ProportionalReputations(caps), caps)
	if err != nil {
		t.Fatal(err)
	}
	if f != 0 {
		t.Errorf("proportional reputations F = %g, want 0", f)
	}
	// E = Σ Σr/(N·rᵢ); with r ∝ U: Σ 15/(4·Uᵢ).
	want := 15.0 / 4 * (1.0/8 + 1.0/4 + 1.0/2 + 1.0/1)
	if math.Abs(e-want) > 1e-9 {
		t.Errorf("E = %g, want %g", e, want)
	}
}

func TestReputationEquilibriumSkewHurtsBoth(t *testing.T) {
	// Proposition 3's point: depress one user's reputation and both F and E
	// degrade.
	caps := []float64{8, 4, 2, 1}
	f0, e0, err := ReputationEquilibrium(ProportionalReputations(caps), caps)
	if err != nil {
		t.Fatal(err)
	}
	skewed := SkewedReputations(caps, 1, 0.05)
	f1, e1, err := ReputationEquilibrium(skewed, caps)
	if err != nil {
		t.Fatal(err)
	}
	if !(f1 > f0 && e1 > e0) {
		t.Errorf("skew did not hurt: F %g→%g, E %g→%g", f0, f1, e0, e1)
	}
}

func TestReputationEquilibriumDegenerate(t *testing.T) {
	if _, _, err := ReputationEquilibrium([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := ReputationEquilibrium(nil, nil); err == nil {
		t.Error("empty accepted")
	}
	if _, _, err := ReputationEquilibrium([]float64{0, 0}, []float64{1, 1}); err == nil {
		t.Error("zero total reputation accepted")
	}
	f, e, err := ReputationEquilibrium([]float64{0, 1}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(f, 1) || !math.IsInf(e, 1) {
		t.Errorf("zero-reputation user: F=%g E=%g, want +Inf", f, e)
	}
}

func TestSkewedReputationsOutOfRange(t *testing.T) {
	caps := []float64{1, 2}
	got := SkewedReputations(caps, 5, 0.1)
	if got[0] != 1 || got[1] != 2 {
		t.Error("out-of-range skew mutated values")
	}
}
