package analysis

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
)

// QNeeds returns q(i,j) from Eq. 5: the probability that a user holding mi
// of M uniformly random pieces needs at least one piece from a user holding
// mj pieces.
//
// For mi ≥ mj the complementary event is "all mj of j's pieces lie inside
// i's mi pieces", whose probability is C(M−mj, mi−mj)/C(M, mi).
// (The paper prints the denominator as C(M, mj); C(M, mi) is the
// normalization that makes q(i,j) a probability and yields the boundary
// values q = 0 at mj = 0 and mi = M that the surrounding text uses.)
func QNeeds(mi, mj, m int) float64 {
	switch {
	case m <= 0 || mi < 0 || mj < 0 || mi > m || mj > m:
		return 0
	case mj == 0:
		return 0 // an empty peer has nothing anyone needs
	case mi < mj:
		return 1 // pigeonhole: j must hold a piece i lacks
	default:
		return 1 - stats.BinomialRatio(m-mj, mi-mj, m, mi)
	}
}

// PiDirectReciprocity returns π_DR(j,i) from Eq. 4: the probability that
// users holding mi and mj pieces can exchange pieces with direct
// reciprocation, q(i,j)·q(j,i). It is 0 whenever either user has no pieces,
// which is the bootstrapping obstruction the paper highlights.
func PiDirectReciprocity(mi, mj, m int) float64 {
	return QNeeds(mi, mj, m) * QNeeds(mj, mi, m)
}

// PieceCountDist is p_k, the probability that a user holds exactly k pieces,
// for k = 0..M (index k).
type PieceCountDist []float64

// UniformPieceCounts returns a distribution uniform over 0..m pieces, a
// convenient stand-in for a mid-download swarm.
func UniformPieceCounts(m int) PieceCountDist {
	out := make(PieceCountDist, m+1)
	p := 1 / float64(m+1)
	for k := range out {
		out[k] = p
	}
	return out
}

// PointPieceCounts returns a distribution concentrated at k pieces.
func PointPieceCounts(m, k int) PieceCountDist {
	out := make(PieceCountDist, m+1)
	out[k] = 1
	return out
}

// Validate checks that the distribution sums to ~1 and is nonnegative.
func (p PieceCountDist) Validate() error {
	if len(p) == 0 {
		return errors.New("analysis: empty piece-count distribution")
	}
	var sum float64
	for k, pk := range p {
		if pk < 0 {
			return fmt.Errorf("analysis: p[%d] = %g negative", k, pk)
		}
		sum += pk
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("analysis: distribution sums to %g, want 1", sum)
	}
	return nil
}

// indirectFactor computes the bracketed factor shared by Eq. 6 and π_IR:
// 1 − (1 − Σ_l p_l·q(j,l)·(1−q(l,j)))^(N−2), the probability that at least
// one third user l exists to whom j's upload can be redirected.
func indirectFactor(mj, m, n int, dist PieceCountDist) float64 {
	var inner float64
	for l := 0; l < len(dist) && l <= m; l++ {
		if dist[l] == 0 {
			continue
		}
		inner += dist[l] * QNeeds(mj, l, m) * (1 - QNeeds(l, mj, m))
	}
	if inner > 1 {
		inner = 1
	}
	return 1 - stats.Pow1mXN(inner, float64(n-2))
}

// PiTChain returns π_TC(j,i) from Eq. 6: the probability that user j (mj
// pieces) can upload to user i (mi pieces) in T-Chain, via direct or
// indirect reciprocity, in a swarm of n users whose piece counts follow
// dist.
func PiTChain(mi, mj, m, n int, dist PieceCountDist) float64 {
	qij := QNeeds(mi, mj, m)
	qji := QNeeds(mj, mi, m)
	return qij*qji + qij*(1-qji)*indirectFactor(mj, m, n, dist)
}

// PiIndirectReciprocity returns π_IR, the second summand of Eq. 6 alone:
// the probability that the exchange happens via indirect reciprocity. This
// drives T-Chain's collusion exposure in Table III.
func PiIndirectReciprocity(mi, mj, m, n int, dist PieceCountDist) float64 {
	qij := QNeeds(mi, mj, m)
	qji := QNeeds(mj, mi, m)
	return qij * (1 - qji) * indirectFactor(mj, m, n, dist)
}

// PiBitTorrent returns π_BT(j,i) from Eq. 7: q(i,j)·((1−α_BT)q(j,i)+α_BT).
func PiBitTorrent(mi, mj, m int, alphaBT float64) float64 {
	return QNeeds(mi, mj, m) * ((1-alphaBT)*QNeeds(mj, mi, m) + alphaBT)
}

// PiAltruism returns π_A(j,i) = q(i,j): altruism is limited only by whether
// the receiver needs something (Corollary 2's proof).
func PiAltruism(mi, mj, m int) float64 {
	return QNeeds(mi, mj, m)
}

// AlphaBTThreshold returns the right-hand side of Eq. 8: π_TC ≥ π_BT
// whenever α_BT is at most this value.
func AlphaBTThreshold(mj, m, n int, dist PieceCountDist) float64 {
	return indirectFactor(mj, m, n, dist)
}

// MeanExchangeProbability averages an exchange-probability kernel over
// piece counts (mi, mj) drawn independently from dist, giving the
// population-level feasibility figure the Figure 3 harness plots.
func MeanExchangeProbability(dist PieceCountDist, kernel func(mi, mj int) float64) float64 {
	var sum float64
	for mi, pi := range dist {
		if pi == 0 {
			continue
		}
		for mj, pj := range dist {
			if pj == 0 {
				continue
			}
			sum += pi * pj * kernel(mi, mj)
		}
	}
	return sum
}
