package analysis

import (
	"math"
	"testing"

	"repro/internal/algo"
)

func mustScenario(t *testing.T, capacities []float64, seeder, aBT, aR float64, nBT int) *Scenario {
	t.Helper()
	s, err := NewScenario(capacities, seeder, aBT, aR, nBT)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// fourClass returns a 40-user capacity vector with four equal tiers.
func fourClass() []float64 {
	caps := make([]float64, 0, 40)
	for _, rate := range []float64{8, 4, 2, 1} {
		for i := 0; i < 10; i++ {
			caps = append(caps, rate)
		}
	}
	return caps
}

func TestNewScenarioValidation(t *testing.T) {
	cases := []struct {
		caps          []float64
		seeder, bt, r float64
		nBT           int
	}{
		{[]float64{1}, 1, 0.2, 0.1, 1},     // too few users
		{[]float64{1, 0}, 1, 0.2, 0.1, 1},  // zero capacity
		{[]float64{1, -1}, 1, 0.2, 0.1, 1}, // negative capacity
		{[]float64{1, 1}, -1, 0.2, 0.1, 1}, // negative seeder
		{[]float64{1, 1}, 1, 1.5, 0.1, 1},  // alphaBT > 1
		{[]float64{1, 1}, 1, 0.2, -0.1, 1}, // alphaR < 0
		{[]float64{1, 1}, 1, 0.2, 0.1, 0},  // nBT < 1
		{[]float64{1, 1}, 1, 0.2, 0.1, 2},  // nBT >= N
		{[]float64{1, math.NaN()}, 1, 0.2, 0.1, 1},
	}
	for i, c := range cases {
		if _, err := NewScenario(c.caps, c.seeder, c.bt, c.r, c.nBT); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestNewScenarioSortsDescending(t *testing.T) {
	s := mustScenario(t, []float64{1, 5, 3}, 0, 0.2, 0.1, 1)
	want := []float64{5, 3, 1}
	for i, w := range want {
		if s.Capacities[i] != w {
			t.Fatalf("Capacities = %v", s.Capacities)
		}
	}
}

func TestLemma2UploadRates(t *testing.T) {
	s := mustScenario(t, fourClass(), 10, 0.2, 0.1, 4)
	for _, a := range algo.All() {
		u := s.UploadRates(a)
		for i, ui := range u {
			want := s.Capacities[i]
			if a == algo.Reciprocity {
				want = 0
			}
			if ui != want {
				t.Errorf("%v upload[%d] = %g, want %g", a, i, ui, want)
			}
		}
	}
}

func TestTableIReciprocityZeroUtilization(t *testing.T) {
	s := mustScenario(t, fourClass(), 10, 0.2, 0.1, 4)
	share := s.SeederRate / float64(s.N())
	for i, d := range s.DownloadRates(algo.Reciprocity) {
		if math.Abs(d-share) > 1e-12 {
			t.Errorf("reciprocity d[%d] = %g, want seeder share %g", i, d, share)
		}
	}
}

func TestTableITChainFairTorrentEqualCapacity(t *testing.T) {
	s := mustScenario(t, fourClass(), 10, 0.2, 0.1, 4)
	share := s.SeederRate / float64(s.N())
	for _, a := range []algo.Algorithm{algo.TChain, algo.FairTorrent} {
		for i, d := range s.DownloadRates(a) {
			want := s.Capacities[i] + share
			if math.Abs(d-want) > 1e-9 {
				t.Errorf("%v d[%d] = %g, want %g", a, i, d, want)
			}
		}
	}
}

func TestTableIAltruismEqualizes(t *testing.T) {
	s := mustScenario(t, fourClass(), 0, 0.2, 0.1, 4)
	d := s.DownloadRates(algo.Altruism)
	total := s.TotalCapacity()
	for i, di := range d {
		want := (total - s.Capacities[i]) / float64(s.N()-1)
		if math.Abs(di-want) > 1e-9 {
			t.Errorf("altruism d[%d] = %g, want %g", i, di, want)
		}
	}
	// Lowest-capacity user downloads the most under altruism.
	if d[0] >= d[len(d)-1] {
		t.Error("altruism should favor low-capacity users")
	}
}

func TestTableIConservation(t *testing.T) {
	// Eq. 1: total download equals total upload + seeder, for every
	// algorithm whose rates come from Table I.
	s := mustScenario(t, fourClass(), 10, 0.2, 0.1, 4)
	for _, a := range algo.All() {
		var totalD, totalU float64
		for _, d := range s.DownloadRates(a) {
			totalD += d
		}
		for _, u := range s.UploadRates(a) {
			totalU += u
		}
		want := totalU + s.SeederRate
		// BitTorrent's cluster approximation and reputation's
		// Σ U_j/(ΣU−U_j) ≈ 1 approximation leave small slack.
		tol := 1e-9 * want
		if a == algo.BitTorrent || a == algo.Reputation {
			tol = 0.05 * want
		}
		if math.Abs(totalD-want) > tol {
			t.Errorf("%v: Σd = %g, Σu+u_S = %g", a, totalD, want)
		}
	}
}

func TestCorollary1FairnessOptimal(t *testing.T) {
	s := mustScenario(t, fourClass(), 0.4, 0.2, 0.1, 4)
	for _, a := range []algo.Algorithm{algo.TChain, algo.FairTorrent} {
		_, f := s.Evaluate(a)
		// d = U + u_S/N vs u = U: F is tiny but not exactly zero when a
		// seeder is present; with no seeder it is exactly zero.
		if f > 0.02 {
			t.Errorf("%v F = %g, want ~0", a, f)
		}
	}
	noSeed := mustScenario(t, fourClass(), 0, 0.2, 0.1, 4)
	for _, a := range []algo.Algorithm{algo.TChain, algo.FairTorrent} {
		_, f := noSeed.Evaluate(a)
		if f != 0 {
			t.Errorf("%v F = %g without seeder, want 0", a, f)
		}
	}
}

func TestCorollary1EfficiencyOrdering(t *testing.T) {
	// With similar capacities inside clusters, Corollary 1's ranking:
	// altruism < BitTorrent, reputation < T-Chain = FairTorrent (< is more
	// efficient, i.e., lower E), and nobody beats the Lemma 1 optimum.
	s := mustScenario(t, fourClass(), 0, 0.2, 0.1, 4)
	e := make(map[algo.Algorithm]float64, 6)
	for _, a := range algo.All() {
		e[a], _ = s.Evaluate(a)
	}
	opt := s.OptimalEfficiency()
	for _, a := range []algo.Algorithm{algo.TChain, algo.BitTorrent, algo.FairTorrent, algo.Reputation, algo.Altruism} {
		if e[a] < opt-1e-12 {
			t.Errorf("%v E = %g beats optimum %g", a, e[a], opt)
		}
	}
	if !(e[algo.Altruism] <= e[algo.BitTorrent] && e[algo.BitTorrent] <= e[algo.TChain]) {
		t.Errorf("efficiency ordering violated: altruism %g, BT %g, TChain %g",
			e[algo.Altruism], e[algo.BitTorrent], e[algo.TChain])
	}
	if !(e[algo.Reputation] <= e[algo.TChain]+1e-9) {
		t.Errorf("reputation %g should be at least as efficient as T-Chain %g",
			e[algo.Reputation], e[algo.TChain])
	}
	if math.Abs(e[algo.TChain]-e[algo.FairTorrent]) > 1e-12 {
		t.Errorf("T-Chain %g and FairTorrent %g should tie", e[algo.TChain], e[algo.FairTorrent])
	}
	if !math.IsInf(e[algo.Reciprocity], 1) {
		t.Errorf("reciprocity E = %g, want +Inf without seeder", e[algo.Reciprocity])
	}
}

func TestFigure2FairnessOrdering(t *testing.T) {
	// Altruism least fair; BitTorrent between the perfectly fair hybrids
	// and altruism; reciprocity undefined.
	s := mustScenario(t, fourClass(), 0, 0.2, 0.1, 4)
	f := make(map[algo.Algorithm]float64, 6)
	for _, a := range algo.All() {
		_, f[a] = s.Evaluate(a)
	}
	if !math.IsNaN(f[algo.Reciprocity]) {
		t.Errorf("reciprocity F = %g, want NaN", f[algo.Reciprocity])
	}
	if !(f[algo.TChain] <= f[algo.BitTorrent] && f[algo.BitTorrent] <= f[algo.Altruism]) {
		t.Errorf("fairness ordering violated: TC %g, BT %g, Alt %g",
			f[algo.TChain], f[algo.BitTorrent], f[algo.Altruism])
	}
	if f[algo.Altruism] <= 0 {
		t.Error("altruism should be measurably unfair with heterogeneous capacities")
	}
}

func TestUniformCapacitiesEverythingFair(t *testing.T) {
	caps := make([]float64, 20)
	for i := range caps {
		caps[i] = 3
	}
	s := mustScenario(t, caps, 0, 0.2, 0.1, 4)
	for _, a := range []algo.Algorithm{algo.TChain, algo.BitTorrent, algo.FairTorrent, algo.Reputation, algo.Altruism} {
		_, f := s.Evaluate(a)
		if f > 0.05 {
			t.Errorf("%v F = %g with uniform capacities, want ~0", a, f)
		}
	}
}

func TestLemma1Optimum(t *testing.T) {
	s := mustScenario(t, []float64{4, 2, 2}, 3, 0.2, 0.1, 1)
	wantD := (4.0+2+2)/3 + 3.0/3
	if got := s.OptimalDownloadRate(); math.Abs(got-wantD) > 1e-12 {
		t.Errorf("d* = %g, want %g", got, wantD)
	}
	if got := s.OptimalEfficiency(); math.Abs(got-1/wantD) > 1e-12 {
		t.Errorf("E* = %g, want %g", got, 1/wantD)
	}
}

func TestEfficiencyDegenerate(t *testing.T) {
	if got := Efficiency([]float64{0, 1}); !math.IsInf(got, 1) {
		t.Errorf("zero rate E = %g, want +Inf", got)
	}
	if got := Efficiency([]float64{2, 2}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("E = %g, want 0.5", got)
	}
}

func TestFairnessDegenerate(t *testing.T) {
	if got := Fairness([]float64{1}, []float64{1, 2}); !math.IsNaN(got) {
		t.Errorf("length mismatch F = %g, want NaN", got)
	}
	if got := Fairness(nil, nil); !math.IsNaN(got) {
		t.Errorf("empty F = %g, want NaN", got)
	}
	if got := Fairness([]float64{1, 1}, []float64{1, 0}); !math.IsNaN(got) {
		t.Errorf("zero upload F = %g, want NaN", got)
	}
}

func TestDownloadRatesUnknownAlgorithm(t *testing.T) {
	s := mustScenario(t, []float64{1, 1}, 0, 0.2, 0.1, 1)
	for _, d := range s.DownloadRates(algo.Algorithm(99)) {
		if d != 0 {
			t.Error("unknown algorithm should yield zero rates")
		}
	}
}
