package analysis

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/stats"
)

// samplePieceSet draws a uniformly random m-subset of [0, total).
func samplePieceSet(rng *rand.Rand, total, m int) map[int]bool {
	out := make(map[int]bool, m)
	for _, idx := range stats.SampleWithoutReplacement(rng, total, m) {
		out[idx] = true
	}
	return out
}

// needsAtLeastOne reports whether j holds a piece i lacks.
func needsAtLeastOne(i, j map[int]bool) bool {
	for p := range j {
		if !i[p] {
			return true
		}
	}
	return false
}

// TestQNeedsMatchesMonteCarlo validates the closed form of Eq. 5 against
// direct sampling: draw random piece sets of the given sizes and count how
// often user i needs something from user j.
func TestQNeedsMatchesMonteCarlo(t *testing.T) {
	const (
		m      = 24
		trials = 20000
	)
	rng := stats.NewRNG(99)
	cases := []struct{ mi, mj int }{
		{12, 12}, {20, 4}, {4, 20}, {23, 1}, {1, 23}, {24, 12}, {12, 0},
	}
	for _, c := range cases {
		hits := 0
		for trial := 0; trial < trials; trial++ {
			si := samplePieceSet(rng, m, c.mi)
			sj := samplePieceSet(rng, m, c.mj)
			if needsAtLeastOne(si, sj) {
				hits++
			}
		}
		empirical := float64(hits) / trials
		closed := QNeeds(c.mi, c.mj, m)
		if math.Abs(empirical-closed) > 0.015 {
			t.Errorf("q(%d,%d): closed form %.4f vs Monte Carlo %.4f",
				c.mi, c.mj, closed, empirical)
		}
	}
}

// TestPiDRMatchesMonteCarlo validates Eq. 4 the same way: both users must
// need something from each other.
func TestPiDRMatchesMonteCarlo(t *testing.T) {
	const (
		m      = 24
		trials = 20000
	)
	rng := stats.NewRNG(7)
	cases := []struct{ mi, mj int }{
		{12, 12}, {6, 18}, {2, 2}, {22, 22},
	}
	for _, c := range cases {
		hits := 0
		for trial := 0; trial < trials; trial++ {
			si := samplePieceSet(rng, m, c.mi)
			sj := samplePieceSet(rng, m, c.mj)
			if needsAtLeastOne(si, sj) && needsAtLeastOne(sj, si) {
				hits++
			}
		}
		empirical := float64(hits) / trials
		closed := PiDirectReciprocity(c.mi, c.mj, m)
		// Eq. 4 multiplies q(i,j)·q(j,i) as if independent; for random
		// uniform sets the coupling is weak, so a slightly wider tolerance
		// absorbs it.
		if math.Abs(empirical-closed) > 0.03 {
			t.Errorf("pi_DR(%d,%d): closed form %.4f vs Monte Carlo %.4f",
				c.mi, c.mj, closed, empirical)
		}
	}
}

// TestPiBTMatchesMonteCarlo validates Eq. 7 by sampling both piece sets and
// the optimistic-unchoke coin.
func TestPiBTMatchesMonteCarlo(t *testing.T) {
	const (
		m       = 24
		trials  = 40000
		alphaBT = 0.2
	)
	rng := stats.NewRNG(13)
	for _, c := range []struct{ mi, mj int }{{12, 12}, {4, 20}} {
		hits := 0
		for trial := 0; trial < trials; trial++ {
			si := samplePieceSet(rng, m, c.mi)
			sj := samplePieceSet(rng, m, c.mj)
			if !needsAtLeastOne(si, sj) {
				continue // receiver needs nothing: no exchange
			}
			if rng.Float64() < alphaBT || needsAtLeastOne(sj, si) {
				hits++
			}
		}
		empirical := float64(hits) / trials
		closed := PiBitTorrent(c.mi, c.mj, m, alphaBT)
		if math.Abs(empirical-closed) > 0.03 {
			t.Errorf("pi_BT(%d,%d): closed form %.4f vs Monte Carlo %.4f",
				c.mi, c.mj, closed, empirical)
		}
	}
}
