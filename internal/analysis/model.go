// Package analysis implements the paper's closed-form performance model
// (Section IV): equilibrium download rates (Table I), the
// fairness–efficiency tradeoff (Lemma 1, Corollary 1), piece-exchange
// probabilities under imperfect availability (Eqs. 4–8, Propositions 2–3),
// flash-crowd bootstrap probabilities (Table II, Lemma 3, Proposition 4),
// and free-riding exposure (Table III).
//
// Where the published formulas contain evident typographical slips (noted
// inline), this package implements the mathematically consistent form and
// EXPERIMENTS.md records the discrepancy.
package analysis

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/algo"
	"repro/internal/stats"
)

// Scenario fixes the parameters of the paper's equilibrium analysis: N users
// with upload capacities U₁ ≥ … ≥ U_N, a seeder of capacity US, and the
// altruism shares of the two altruism hybrids.
type Scenario struct {
	// Capacities are the users' upload capacities, sorted descending
	// (the constructor sorts defensively).
	Capacities []float64
	// SeederRate is u_S, the seeder's upload capacity; every user receives
	// an expected u_S/N from the seeder.
	SeederRate float64
	// AlphaBT is the fraction of BitTorrent bandwidth used for optimistic
	// unchoking (the paper's α_BT, 0.2 in the experiments).
	AlphaBT float64
	// AlphaR is the fraction of reputation-system bandwidth reserved for
	// altruistic bootstrapping (the paper's α_R).
	AlphaR float64
	// NBT is n_BT, the number of users BitTorrent reciprocates with at a
	// time (unchoke slots).
	NBT int
}

// NewScenario validates and normalizes a scenario. Capacities are copied
// and sorted descending per the paper's indexing convention.
func NewScenario(capacities []float64, seederRate, alphaBT, alphaR float64, nBT int) (*Scenario, error) {
	if len(capacities) < 2 {
		return nil, errors.New("analysis: need at least 2 users")
	}
	for i, u := range capacities {
		if u <= 0 || math.IsNaN(u) || math.IsInf(u, 0) {
			return nil, fmt.Errorf("analysis: capacity[%d] = %g invalid", i, u)
		}
	}
	if seederRate < 0 {
		return nil, fmt.Errorf("analysis: seeder rate %g negative", seederRate)
	}
	if alphaBT < 0 || alphaBT > 1 || alphaR < 0 || alphaR > 1 {
		return nil, fmt.Errorf("analysis: alphas (%g, %g) outside [0,1]", alphaBT, alphaR)
	}
	if nBT < 1 || nBT >= len(capacities) {
		return nil, fmt.Errorf("analysis: nBT %d outside [1, N)", nBT)
	}
	sorted := make([]float64, len(capacities))
	copy(sorted, capacities)
	for i := 1; i < len(sorted); i++ { // insertion sort descending; N is small here
		for j := i; j > 0 && sorted[j] > sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	return &Scenario{
		Capacities: sorted,
		SeederRate: seederRate,
		AlphaBT:    alphaBT,
		AlphaR:     alphaR,
		NBT:        nBT,
	}, nil
}

// N returns the number of users.
func (s *Scenario) N() int { return len(s.Capacities) }

// TotalCapacity returns Σᵢ Uᵢ.
func (s *Scenario) TotalCapacity() float64 { return stats.Sum(s.Capacities) }

// seederShare is u_S/N, the expected per-user seeder bandwidth.
func (s *Scenario) seederShare() float64 { return s.SeederRate / float64(s.N()) }

// UploadRates returns the equilibrium upload rates uᵢ under Lemma 2: every
// algorithm uses full capacity Uᵢ except reciprocity, where no user can
// initiate an exchange and all uploads are zero.
func (s *Scenario) UploadRates(a algo.Algorithm) []float64 {
	out := make([]float64, s.N())
	if a == algo.Reciprocity {
		return out
	}
	copy(out, s.Capacities)
	return out
}

// DownloadRates returns the equilibrium download rates dᵢ from Table I
// (download utilization plus the seeder share u_S/N), indexed like
// Capacities (descending capacity order).
func (s *Scenario) DownloadRates(a algo.Algorithm) []float64 {
	n := s.N()
	out := make([]float64, n)
	share := s.seederShare()
	total := s.TotalCapacity()

	switch a {
	case algo.Reciprocity:
		// Download utilization 0: nobody can initiate an exchange.
		for i := range out {
			out[i] = share
		}

	case algo.TChain, algo.FairTorrent:
		// dᵢ − u_S/N = Uᵢ: both hybrids equalize uploads and downloads.
		for i, u := range s.Capacities {
			out[i] = u + share
		}

	case algo.BitTorrent:
		// Tit-for-tat clusters peers of similar capacity (Fan et al. [10]):
		// peer i's reciprocal download is the mean capacity of its cluster
		// of n_BT+1 consecutive peers in sorted order, excluding itself.
		// (Table I's printed index range "mod(i,n_BT)" is a typographical
		// slip — it would make the cluster independent of i; the cited
		// source and Corollary 1's U_i ≈ U_{i+n_BT} condition imply
		// consecutive-block clustering, implemented here.)
		altShare := s.altruismTerm()
		for i := range out {
			cluster := i / (s.NBT + 1)
			lo := cluster * (s.NBT + 1)
			hi := min(lo+s.NBT+1, n)
			var sum float64
			count := 0
			for j := lo; j < hi; j++ {
				if j == i {
					continue
				}
				sum += s.Capacities[j]
				count++
			}
			var tft float64
			if count > 0 {
				// Each cluster partner uploads (1-α)U_j across n_BT slots.
				tft = (1 - s.AlphaBT) * sum / float64(s.NBT)
			}
			out[i] = tft + s.AlphaBT*altShare[i] + share
		}

	case algo.Reputation:
		// dᵢ − u_S/N = Uᵢ Σ_{j≠i} (1−α_R)U_j / Σ_{k≠j} U_k  +  α_R·avg.
		altShare := s.altruismTerm()
		for i, ui := range s.Capacities {
			var rep float64
			for j, uj := range s.Capacities {
				if j == i {
					continue
				}
				rep += (1 - s.AlphaR) * uj / (total - uj)
			}
			out[i] = ui*rep + s.AlphaR*altShare[i] + share
		}

	case algo.Altruism:
		for i, alt := range s.altruismTerm() {
			out[i] = alt + share
		}

	default:
		// Unknown algorithm: zero rates; callers validate algorithms upstream.
	}
	return out
}

// altruismTerm returns Σ_{k≠i} U_k / (N−1) for each i: the expected download
// rate from uniformly random altruistic uploads.
func (s *Scenario) altruismTerm() []float64 {
	total := s.TotalCapacity()
	out := make([]float64, s.N())
	denom := float64(s.N() - 1)
	for i, u := range s.Capacities {
		out[i] = (total - u) / denom
	}
	return out
}

// Efficiency computes E = Σᵢ 1/(N·dᵢ) (Eq. 2): the expected average
// download time for a unit-size file. Lower is better. Users with a zero
// download rate contribute +Inf (they never finish), matching the paper's
// treatment of pure reciprocity with no seeder.
func Efficiency(downloadRates []float64) float64 {
	n := float64(len(downloadRates))
	var sum float64
	for _, d := range downloadRates {
		if d <= 0 {
			return math.Inf(1)
		}
		sum += 1 / (n * d)
	}
	return sum
}

// Fairness computes F = (1/N)Σ|log(dᵢ/uᵢ)| (Eq. 3). Users with zero upload
// or download rate make the statistic undefined (NaN) — as the paper notes
// for pure reciprocity, where fairness "cannot be defined."
func Fairness(downloadRates, uploadRates []float64) float64 {
	if len(downloadRates) != len(uploadRates) || len(downloadRates) == 0 {
		return math.NaN()
	}
	var sum float64
	for i := range downloadRates {
		if downloadRates[i] <= 0 || uploadRates[i] <= 0 {
			return math.NaN()
		}
		sum += math.Abs(math.Log(downloadRates[i] / uploadRates[i]))
	}
	return sum / float64(len(downloadRates))
}

// OptimalDownloadRate returns Lemma 1's efficiency-optimal common download
// rate d* = ΣUᵢ/N + u_S/N.
func (s *Scenario) OptimalDownloadRate() float64 {
	return s.TotalCapacity()/float64(s.N()) + s.seederShare()
}

// OptimalEfficiency returns the Lemma 1 lower bound on E.
func (s *Scenario) OptimalEfficiency() float64 {
	return 1 / s.OptimalDownloadRate()
}

// Evaluate returns (E, F) for one algorithm in the idealized equilibrium.
func (s *Scenario) Evaluate(a algo.Algorithm) (efficiency, fairness float64) {
	d := s.DownloadRates(a)
	u := s.UploadRates(a)
	return Efficiency(d), Fairness(d, u)
}
