package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQNeedsBoundaries(t *testing.T) {
	const m = 100
	cases := []struct {
		mi, mj int
		want   float64
	}{
		{0, 0, 0},   // nobody has anything
		{50, 0, 0},  // j empty: nothing to need
		{0, 1, 1},   // i empty, j has a piece: pigeonhole
		{m, 50, 0},  // i complete: needs nothing
		{10, 50, 1}, // mi < mj: pigeonhole
		{-1, 5, 0},  // out of range
		{5, m + 1, 0},
	}
	for _, c := range cases {
		if got := QNeeds(c.mi, c.mj, m); got != c.want {
			t.Errorf("QNeeds(%d,%d,%d) = %g, want %g", c.mi, c.mj, m, got, c.want)
		}
	}
	if got := QNeeds(5, 5, 0); got != 0 {
		t.Errorf("QNeeds with m=0 = %g", got)
	}
}

func TestQNeedsExactSmallCase(t *testing.T) {
	// M=4, mi=2, mj=2: P(j's 2 pieces ⊆ i's 2 pieces) = 1/C(4,2) = 1/6,
	// so q = 5/6.
	got := QNeeds(2, 2, 4)
	if math.Abs(got-5.0/6) > 1e-12 {
		t.Errorf("QNeeds(2,2,4) = %g, want 5/6", got)
	}
	// M=3, mi=2, mj=1: P(j's piece ∈ i's 2) = 2/3, q = 1/3.
	got = QNeeds(2, 1, 3)
	if math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("QNeeds(2,1,3) = %g, want 1/3", got)
	}
}

func TestQNeedsIsProbabilityProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		m := 1 + int(c%200)
		mi := int(a) % (m + 1)
		mj := int(b) % (m + 1)
		q := QNeeds(mi, mj, m)
		return q >= 0 && q <= 1 && !math.IsNaN(q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQNeedsMonotoneInMj(t *testing.T) {
	// More pieces at j can only increase the chance i needs one.
	const m = 60
	for mi := 0; mi <= m; mi += 10 {
		prev := -1.0
		for mj := 0; mj <= m; mj++ {
			q := QNeeds(mi, mj, m)
			if q < prev-1e-12 {
				t.Fatalf("QNeeds(%d,%d) = %g < QNeeds(%d,%d) = %g", mi, mj, q, mi, mj-1, prev)
			}
			prev = q
		}
	}
}

func TestPiDirectReciprocityZeroWithEmptyPeer(t *testing.T) {
	// Flash-crowd obstruction: a piece-less newcomer can never directly
	// reciprocate (Section IV-A2).
	for mj := 0; mj <= 100; mj += 20 {
		if got := PiDirectReciprocity(0, mj, 100); got != 0 {
			t.Errorf("PiDR(0,%d) = %g, want 0", mj, got)
		}
	}
}

func TestPiDirectReciprocitySymmetric(t *testing.T) {
	f := func(a, b uint8) bool {
		const m = 128
		mi := int(a) % (m + 1)
		mj := int(b) % (m + 1)
		return math.Abs(PiDirectReciprocity(mi, mj, m)-PiDirectReciprocity(mj, mi, m)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPieceCountDists(t *testing.T) {
	u := UniformPieceCounts(10)
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(u) != 11 {
		t.Errorf("uniform len = %d", len(u))
	}
	p := PointPieceCounts(10, 4)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p[4] != 1 {
		t.Error("point mass misplaced")
	}
	if err := (PieceCountDist{}).Validate(); err == nil {
		t.Error("empty dist accepted")
	}
	if err := (PieceCountDist{0.5, 0.4}).Validate(); err == nil {
		t.Error("non-normalized dist accepted")
	}
	if err := (PieceCountDist{1.5, -0.5}).Validate(); err == nil {
		t.Error("negative dist accepted")
	}
}

func TestProposition2Ordering(t *testing.T) {
	// π_A >= π_TC >= π_DR, and Eq. 8: π_TC >= π_BT iff α_BT below the
	// indirect factor.
	const (
		m = 64
		n = 200
	)
	dist := UniformPieceCounts(m)
	for _, mi := range []int{0, 5, 30, 60} {
		for _, mj := range []int{1, 10, 40, 64} {
			piA := PiAltruism(mi, mj, m)
			piTC := PiTChain(mi, mj, m, n, dist)
			piDR := PiDirectReciprocity(mi, mj, m)
			if piTC > piA+1e-12 {
				t.Errorf("π_TC(%d,%d) = %g > π_A = %g", mi, mj, piTC, piA)
			}
			if piDR > piTC+1e-12 {
				t.Errorf("π_DR(%d,%d) = %g > π_TC = %g", mi, mj, piDR, piTC)
			}
			threshold := AlphaBTThreshold(mj, m, n, dist)
			below := PiBitTorrent(mi, mj, m, threshold*0.5)
			if piTC < below-1e-9 {
				t.Errorf("Eq.8 violated at (%d,%d): π_TC %g < π_BT %g with α below threshold",
					mi, mj, piTC, below)
			}
		}
	}
}

func TestCorollary2LargeNLimit(t *testing.T) {
	// As N → ∞, π_TC → π_A whenever indirect reciprocity is possible.
	const m = 64
	dist := UniformPieceCounts(m)
	mi, mj := 10, 40
	piA := PiAltruism(mi, mj, m)
	small := PiTChain(mi, mj, m, 10, dist)
	large := PiTChain(mi, mj, m, 100000, dist)
	if math.Abs(large-piA) > 1e-6 {
		t.Errorf("π_TC at N=1e5 = %g, want → π_A = %g", large, piA)
	}
	if math.Abs(small-piA) < math.Abs(large-piA) {
		t.Error("π_TC should approach π_A monotonically in N")
	}
}

func TestPiBitTorrentAltruismFloor(t *testing.T) {
	// Even when j needs nothing from i, altruism keeps π_BT = α·q(i,j).
	const m = 64
	mi, mj := 0, 30 // newcomer i
	got := PiBitTorrent(mi, mj, m, 0.2)
	want := 0.2 * QNeeds(mi, mj, m)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("π_BT = %g, want %g", got, want)
	}
}

func TestPiIndirectDecomposition(t *testing.T) {
	// π_TC = π_DR + π_IR by construction.
	const (
		m = 32
		n = 50
	)
	dist := UniformPieceCounts(m)
	for mi := 0; mi <= m; mi += 8 {
		for mj := 0; mj <= m; mj += 8 {
			sum := PiDirectReciprocity(mi, mj, m) + PiIndirectReciprocity(mi, mj, m, n, dist)
			tc := PiTChain(mi, mj, m, n, dist)
			if math.Abs(sum-tc) > 1e-12 {
				t.Errorf("decomposition failed at (%d,%d): %g vs %g", mi, mj, sum, tc)
			}
		}
	}
}

func TestMeanExchangeProbability(t *testing.T) {
	const m = 16
	dist := PointPieceCounts(m, 8)
	got := MeanExchangeProbability(dist, func(mi, mj int) float64 {
		return QNeeds(mi, mj, m)
	})
	want := QNeeds(8, 8, m)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("mean = %g, want point value %g", got, want)
	}
}
