package analysis

import (
	"errors"
	"math"

	"repro/internal/stats"
)

// ReputationEquilibrium evaluates Proposition 3: the fairness and efficiency
// of a reputation system once reputations rᵢ have locked in, which may be
// decoupled from capacities Uᵢ (e.g., a high-capacity user stuck with a low
// reputation from a slow start).
//
// F  = (1/N) Σᵢ |log( rᵢ·ΣU / (Uᵢ·Σr) )|
// E  = Σᵢ Σr / (N·rᵢ)            (per Eq. 9, with dᵢ ∝ rᵢ)
//
// (Proposition 3's printed F omits the 1/N normalization that Eq. 3
// defines; the mean form is used so values are comparable across N.)
func ReputationEquilibrium(reputations, capacities []float64) (fairness, efficiency float64, err error) {
	if len(reputations) != len(capacities) || len(reputations) == 0 {
		return 0, 0, errors.New("analysis: reputations and capacities must be same nonzero length")
	}
	n := float64(len(reputations))
	sumR := stats.Sum(reputations)
	sumU := stats.Sum(capacities)
	if sumR <= 0 || sumU <= 0 {
		return 0, 0, errors.New("analysis: total reputation and capacity must be positive")
	}

	var f, e float64
	for i := range reputations {
		ri, ui := reputations[i], capacities[i]
		if ri <= 0 || ui <= 0 {
			return math.Inf(1), math.Inf(1), nil // a zero-reputation user never downloads
		}
		f += math.Abs(math.Log(ri * sumU / (ui * sumR)))
		e += sumR / (n * ri)
	}
	return f / n, e, nil
}

// ProportionalReputations returns reputations proportional to capacities —
// the well-mixed equilibrium under which Proposition 3 reduces to perfect
// fairness (F = 0).
func ProportionalReputations(capacities []float64) []float64 {
	out := make([]float64, len(capacities))
	copy(out, capacities)
	return out
}

// SkewedReputations returns capacities' proportional reputations with user
// idx's reputation multiplied by factor, modelling the slow-start scenario
// Proposition 3 discusses (moderate bandwidth, depressed reputation).
func SkewedReputations(capacities []float64, idx int, factor float64) []float64 {
	out := ProportionalReputations(capacities)
	if idx >= 0 && idx < len(out) {
		out[idx] *= factor
	}
	return out
}
