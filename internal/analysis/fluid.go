package analysis

import (
	"fmt"
	"math"
)

// FluidParams parameterizes the flash-crowd specialization of the classic
// BitTorrent fluid model (Qiu & Srikant [27], the substrate under the
// paper's efficiency analysis): x(t) leechers drain at the swarm's
// aggregate upload rate. With leave-on-completion churn the seed population
// is just the origin, so
//
//	dx/dt = −(μ·η·x + s),   x(0) = N,
//
// where μ is a peer's upload rate in files/second, η the exchange
// efficiency (≈1 under rarest-first), and s the origin's rate in
// files/second. The completion curve is (N − x(t))/N.
type FluidParams struct {
	// N is the flash-crowd size.
	N int
	// Mu is the mean per-peer upload rate in files/second.
	Mu float64
	// Eta is the exchange efficiency in [0, 1] (fraction of upload
	// capacity doing useful work; ≈1 with rarest-first piece selection).
	Eta float64
	// SeedRate is the origin server's upload rate in files/second.
	SeedRate float64
}

// Validate checks the parameters.
func (p FluidParams) Validate() error {
	switch {
	case p.N < 1:
		return fmt.Errorf("analysis: fluid N = %d", p.N)
	case p.Mu < 0 || math.IsNaN(p.Mu):
		return fmt.Errorf("analysis: fluid mu = %g", p.Mu)
	case p.Eta < 0 || p.Eta > 1:
		return fmt.Errorf("analysis: fluid eta = %g outside [0,1]", p.Eta)
	case p.SeedRate < 0:
		return fmt.Errorf("analysis: fluid seed rate = %g", p.SeedRate)
	case p.Mu*p.Eta == 0 && p.SeedRate == 0:
		return fmt.Errorf("analysis: fluid system has no serving capacity")
	default:
		return nil
	}
}

// FluidLeechers returns the closed-form x(t) for the linear drain ODE:
// x(t) = (N + s/a)·e^(−a·t) − s/a with a = μ·η, degenerating to
// x(t) = N − s·t when a = 0. Values are clamped to [0, N].
func (p FluidParams) FluidLeechers(t float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	n := float64(p.N)
	a := p.Mu * p.Eta
	var x float64
	if a == 0 {
		x = n - p.SeedRate*t
	} else {
		ratio := p.SeedRate / a
		x = (n+ratio)*math.Exp(-a*t) - ratio
	}
	if x < 0 {
		x = 0
	}
	if x > n {
		x = n
	}
	return x, nil
}

// FluidCompletionCurve samples the completed fraction (N − x(t))/N on a
// uniform grid of `samples` points over [0, horizon].
func (p FluidParams) FluidCompletionCurve(horizon float64, samples int) ([]float64, error) {
	if samples < 2 || horizon <= 0 {
		return nil, fmt.Errorf("analysis: fluid curve needs samples >= 2 and positive horizon")
	}
	out := make([]float64, samples)
	n := float64(p.N)
	for i := range out {
		t := horizon * float64(i) / float64(samples-1)
		x, err := p.FluidLeechers(t)
		if err != nil {
			return nil, err
		}
		out[i] = (n - x) / n
	}
	return out, nil
}

// FluidTimeToFraction returns the time at which the completed fraction
// reaches the target, solved from the closed form; +Inf if unreachable.
func (p FluidParams) FluidTimeToFraction(fraction float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if fraction <= 0 {
		return 0, nil
	}
	if fraction > 1 {
		return math.Inf(1), nil
	}
	n := float64(p.N)
	target := n * (1 - fraction) // leechers remaining
	a := p.Mu * p.Eta
	if a == 0 {
		return (n - target) / p.SeedRate, nil
	}
	ratio := p.SeedRate / a
	// target = (N + ratio)·e^(−a·t) − ratio
	arg := (target + ratio) / (n + ratio)
	if arg <= 0 {
		return math.Inf(1), nil
	}
	return -math.Log(arg) / a, nil
}
