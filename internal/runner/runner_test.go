package runner

import (
	"encoding/json"
	"math"
	"runtime"
	"strings"
	"testing"

	"repro/internal/algo"
	"repro/internal/sim"
)

// testConfig returns a small, fast scenario.
func testConfig(a algo.Algorithm, seed int64) sim.Config {
	cfg := sim.Default(a, 40, 16)
	cfg.Horizon = 400
	cfg.Seed = seed
	return cfg
}

// resultKey reduces a result to a deterministic comparison fingerprint.
// JSON marshaling sorts map keys, so equal runs produce equal bytes.
func resultKey(t *testing.T, r *sim.Result) string {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestRunMatchesSequentialByteForByte(t *testing.T) {
	algos := []algo.Algorithm{algo.BitTorrent, algo.TChain, algo.Altruism, algo.FairTorrent}
	cfgs := make([]sim.Config, len(algos))
	for i, a := range algos {
		cfgs[i] = testConfig(a, int64(i+1))
	}

	// Sequential reference, inline.
	want := make([]string, len(cfgs))
	for i, cfg := range cfgs {
		sw, err := sim.NewSwarm(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sw.Run()
		if err != nil {
			t.Fatal(err)
		}
		want[i] = resultKey(t, res)
	}

	for _, workers := range []int{1, 2, 4, 8} {
		results, err := New(workers).Run(cfgs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(results) != len(cfgs) {
			t.Fatalf("workers=%d: got %d results", workers, len(results))
		}
		for i, res := range results {
			if got := resultKey(t, res); got != want[i] {
				t.Errorf("workers=%d job %d: parallel result differs from sequential", workers, i)
			}
		}
	}
}

func TestRunSubmissionOrder(t *testing.T) {
	// Jobs with wildly different runtimes still come back in submission
	// order: the fast jobs must not overtake the slow ones.
	cfgs := []sim.Config{
		testConfig(algo.BitTorrent, 9),
		testConfig(algo.Altruism, 10),
		testConfig(algo.TChain, 11),
	}
	cfgs[0].NumPeers, cfgs[0].NumPieces = 80, 32 // slowest first
	results, err := New(4).Run(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Config.Seed != cfgs[i].Seed || res.Config.Algorithm != cfgs[i].Algorithm {
			t.Errorf("result %d is for seed %d/%v, want %d/%v",
				i, res.Config.Seed, res.Config.Algorithm, cfgs[i].Seed, cfgs[i].Algorithm)
		}
	}
}

func TestRunReportsLowestIndexedError(t *testing.T) {
	cfgs := []sim.Config{
		testConfig(algo.BitTorrent, 1),
		testConfig(algo.BitTorrent, 2),
		testConfig(algo.BitTorrent, 3),
	}
	cfgs[1].NumPeers = 1 // invalid
	cfgs[2].NumPeers = 0 // also invalid, but job 1 must win
	_, err := New(4).Run(cfgs)
	if err == nil {
		t.Fatal("invalid config accepted")
	}
	if !strings.Contains(err.Error(), "job 1") {
		t.Errorf("error %q does not name the lowest failing job", err)
	}
}

func TestRunEmpty(t *testing.T) {
	results, err := New(4).Run(nil)
	if err != nil || results != nil {
		t.Errorf("empty batch: results=%v err=%v", results, err)
	}
}

func TestReplicateSeedsAndMetrics(t *testing.T) {
	const reps = 4
	base := testConfig(algo.BitTorrent, 100)
	rep, err := New(2).Replicate(base, reps)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != reps {
		t.Fatalf("got %d results, want %d", len(rep.Results), reps)
	}
	for i, res := range rep.Results {
		if want := base.Seed + int64(i); res.Config.Seed != want {
			t.Errorf("replication %d ran seed %d, want %d", i, res.Config.Seed, want)
		}
	}
	for _, name := range MetricNames() {
		s, ok := rep.Metrics[name]
		if !ok {
			t.Errorf("metric %q missing", name)
			continue
		}
		if s.N > reps {
			t.Errorf("metric %q has N=%d > reps", name, s.N)
		}
		if s.N > 0 && (math.IsNaN(s.Mean) || math.IsNaN(s.Stderr)) {
			t.Errorf("metric %q summary has NaN mean/stderr: %+v", name, s)
		}
	}
	// Completion is defined for every replication of this healthy swarm.
	if got := rep.Metrics[MetricCompletion].N; got != reps {
		t.Errorf("completion N = %d, want %d", got, reps)
	}
}

func TestReplicateIsDeterministic(t *testing.T) {
	base := testConfig(algo.TChain, 7)
	a, err := New(4).Replicate(base, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(1).Replicate(base, 3)
	if err != nil {
		t.Fatal(err)
	}
	for name, sa := range a.Metrics {
		if sb := b.Metrics[name]; sa != sb {
			t.Errorf("metric %q differs across worker counts: %+v vs %+v", name, sa, sb)
		}
	}
}

func TestReplicateRejectsBadCount(t *testing.T) {
	if _, err := New(1).Replicate(testConfig(algo.BitTorrent, 1), 0); err == nil {
		t.Fatal("reps=0 accepted")
	}
}

func TestDefaultWorkersEnvOverride(t *testing.T) {
	t.Setenv(EnvWorkers, "3")
	if got := DefaultWorkers(); got != 3 {
		t.Errorf("DefaultWorkers = %d with %s=3", got, EnvWorkers)
	}
	if got := New(0).Workers(); got != 3 {
		t.Errorf("New(0).Workers() = %d with %s=3", got, EnvWorkers)
	}
	t.Setenv(EnvWorkers, "not-a-number")
	if got := DefaultWorkers(); got < 1 {
		t.Errorf("DefaultWorkers = %d with garbage env", got)
	}
	if got := New(5).Workers(); got != 5 {
		t.Errorf("explicit worker count ignored: %d", got)
	}
}

func TestEffectiveWorkersShardBudget(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	sharded := testConfig(algo.BitTorrent, 1)
	sharded.Shards = procs + 1 // guarantees workers*shards > GOMAXPROCS
	cfgs := []sim.Config{sharded, sharded, sharded, sharded}

	// A defaulted pool is capped (to >= 1 worker) with a warning.
	def := &Pool{workers: procs}
	workers, warn := def.effectiveWorkers(len(cfgs), cfgs)
	if workers < 1 || workers*sharded.Shards > procs && workers != 1 {
		t.Fatalf("defaulted pool picked %d workers for %d-shard jobs on GOMAXPROCS=%d", workers, sharded.Shards, procs)
	}
	if warn == "" {
		t.Fatal("defaulted oversubscribed batch produced no warning")
	}

	// An explicit worker count is honored but flagged.
	exp := New(procs)
	workers, warn = exp.effectiveWorkers(len(cfgs), cfgs)
	if want := min(procs, len(cfgs)); workers != want {
		t.Fatalf("explicit pool ran %d workers, want %d", workers, want)
	}
	if !strings.Contains(warn, "oversubscribed") {
		t.Fatalf("explicit oversubscribed batch warning = %q", warn)
	}

	// Serial configs are never capped or warned.
	plain := []sim.Config{testConfig(algo.BitTorrent, 1)}
	if workers, warn = def.effectiveWorkers(len(plain), plain); workers != 1 || warn != "" {
		t.Fatalf("serial batch got workers=%d warn=%q", workers, warn)
	}
}

func TestManifestWarnsOnOversubscribedShards(t *testing.T) {
	cfg := testConfig(algo.BitTorrent, 3)
	cfg.Shards = runtime.GOMAXPROCS(0) + 1
	pool := New(4) // explicit: honored, so the manifest must carry the warning
	_, manifests, err := pool.RunManifested([]sim.Config{cfg, cfg})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range manifests {
		if !strings.Contains(m.Warning, "oversubscribed") {
			t.Fatalf("manifest warning = %q, want oversubscription flag", m.Warning)
		}
	}
	data, err := json.Marshal(manifests[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"warning\"") {
		t.Fatal("warning missing from manifest JSON")
	}
}
