// Package runner is the deterministic fan-out layer for batch simulation:
// a bounded worker pool that executes independent swarm runs on parallel
// goroutines while preserving the sequential path's output bit-for-bit.
//
// The determinism contract has three parts:
//
//  1. Each job is a self-contained sim.Config whose Seed drives a private
//     RNG, so a run's outcome depends only on its config — never on which
//     worker executed it or in what order jobs were picked up.
//  2. Results are returned in submission order, so tables rendered from a
//     batch are byte-identical to those from an inline sequential loop.
//  3. Errors are reported for the lowest-indexed failing job, so failures
//     are reproducible regardless of scheduling.
//
// The worker count defaults to GOMAXPROCS and can be overridden with the
// REPRO_WORKERS environment variable or an explicit New(workers).
package runner

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"strconv"
	"sync"

	"repro/internal/sim"
	"repro/internal/stats"
)

// EnvWorkers is the environment variable that overrides the default worker
// count (used by the CLI tools and the root benchmark harness).
const EnvWorkers = "REPRO_WORKERS"

// DefaultWorkers returns the pool size used when none is given: the value
// of REPRO_WORKERS if set to a positive integer, otherwise GOMAXPROCS.
func DefaultWorkers() int {
	if v := os.Getenv(EnvWorkers); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// Pool executes batches of independent simulation runs across a fixed
// number of worker goroutines. A Pool is stateless between calls and safe
// for concurrent use.
type Pool struct {
	workers int
	// explicit records that the worker count was requested (New(n) or
	// REPRO_WORKERS) rather than defaulted; explicit counts are honored
	// even when sharded swarms would oversubscribe the cores, with a
	// warning in the manifests instead of a silent cap.
	explicit bool
}

// New returns a pool with the given worker count; workers <= 0 selects
// DefaultWorkers().
func New(workers int) *Pool {
	if workers > 0 {
		return &Pool{workers: workers, explicit: true}
	}
	if v := os.Getenv(EnvWorkers); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return &Pool{workers: n, explicit: true}
		}
	}
	return &Pool{workers: runtime.GOMAXPROCS(0)}
}

// effectiveWorkers bounds the pool size for one batch. Sharded swarms run
// cfg.Shards goroutines each, so a defaulted pool is capped to keep
// workers × shards within GOMAXPROCS (each job still gets at least one
// worker); an explicit worker count is honored but flagged. The returned
// warning (empty when the product fits) is recorded in batch manifests.
func (p *Pool) effectiveWorkers(n int, cfgs []sim.Config) (int, string) {
	workers := min(p.workers, n)
	shards := 0
	for _, c := range cfgs {
		if c.Shards > shards {
			shards = c.Shards
		}
	}
	procs := runtime.GOMAXPROCS(0)
	if shards <= 1 || workers*shards <= procs {
		return workers, ""
	}
	if p.explicit {
		return workers, fmt.Sprintf(
			"oversubscribed: %d workers x %d shards exceeds GOMAXPROCS=%d (explicit worker count honored)",
			workers, shards, procs)
	}
	capped := max(1, procs/shards)
	if capped >= workers {
		return workers, fmt.Sprintf(
			"oversubscribed: %d workers x %d shards exceeds GOMAXPROCS=%d",
			workers, shards, procs)
	}
	return capped, fmt.Sprintf(
		"workers capped %d -> %d: %d-shard swarms on GOMAXPROCS=%d",
		workers, capped, shards, procs)
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Run executes every config on the pool and returns the results in
// submission order. Each swarm runs on its own goroutine with its own
// seed-derived RNG, so the output is identical to running the configs
// sequentially. On failure it returns the error of the lowest-indexed
// failing job.
func (p *Pool) Run(cfgs []sim.Config) ([]*sim.Result, error) {
	if len(cfgs) == 0 {
		return nil, nil
	}
	results := make([]*sim.Result, len(cfgs))
	workers, _ := p.effectiveWorkers(len(cfgs), cfgs)
	err := p.forEach(len(cfgs), workers, func(i int) error {
		res, err := runOne(cfgs[i])
		results[i] = res
		return err
	})
	if err := p.wrapJobError(cfgs, err); err != nil {
		return nil, err
	}
	return results, nil
}

// jobError carries the lowest failing job index out of forEach.
type jobError struct {
	index int
	err   error
}

func (e *jobError) Error() string { return e.err.Error() }
func (e *jobError) Unwrap() error { return e.err }

// forEach runs job(0..n-1) across the given number of workers
// (sequentially for a single worker) and returns a *jobError for the
// lowest-indexed failure, or nil. Job completion order is unconstrained;
// callers index into pre-sized slices to preserve submission order.
func (p *Pool) forEach(n, workers int, job func(i int) error) error {
	errs := make([]error, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = job(i)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					errs[i] = job(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return &jobError{index: i, err: err}
		}
	}
	return nil
}

// wrapJobError annotates a forEach failure with the offending config.
func (p *Pool) wrapJobError(cfgs []sim.Config, err error) error {
	if err == nil {
		return nil
	}
	je, ok := err.(*jobError)
	if !ok {
		return err
	}
	return fmt.Errorf("runner: job %d (%v, seed %d): %w",
		je.index, cfgs[je.index].Algorithm, cfgs[je.index].Seed, je.err)
}

// runOne builds and executes a single swarm.
func runOne(cfg sim.Config) (*sim.Result, error) {
	sw, err := sim.NewSwarm(cfg)
	if err != nil {
		return nil, err
	}
	return sw.Run()
}

// Run executes the configs on a pool of DefaultWorkers() workers. This is
// the entry point the experiment harnesses use.
func Run(cfgs []sim.Config) ([]*sim.Result, error) {
	return New(0).Run(cfgs)
}

// Per-replication metric names, the keys of Replication.Metrics.
const (
	// MetricCompletion is the fraction of compliant peers that finished.
	MetricCompletion = "completion"
	// MetricMeanDownload is the mean compliant download time in seconds.
	MetricMeanDownload = "mean_download_s"
	// MetricMedianDownload is the median compliant download time in seconds.
	MetricMedianDownload = "median_download_s"
	// MetricFairness is the end-of-run mean d/u ratio (1 = perfectly fair).
	MetricFairness = "fairness_du"
	// MetricLogFairness is the paper's Eq. 3 statistic (0 = perfectly fair).
	MetricLogFairness = "fairness_eq3"
	// MetricMeanBootstrap is the mean time to the first credited piece.
	MetricMeanBootstrap = "mean_bootstrap_s"
	// MetricSusceptibility is the fraction of peer upload bytes captured by
	// free-riders.
	MetricSusceptibility = "susceptibility"
	// MetricDuration is the simulated run length in seconds.
	MetricDuration = "duration_s"
)

// MetricNames lists the replication metrics in presentation order.
func MetricNames() []string {
	return []string{
		MetricCompletion, MetricMeanDownload, MetricMedianDownload,
		MetricFairness, MetricLogFairness, MetricMeanBootstrap,
		MetricSusceptibility, MetricDuration,
	}
}

// Replication aggregates repeated runs of one scenario under different
// seeds. Metrics maps each metric name to a stats.Summary whose Mean and
// Stderr give the headline "mean ± stderr" numbers; replications where a
// metric is undefined (NaN — e.g. download time when nobody finished) are
// excluded from that metric's summary, so Summary.N may be below the
// replication count.
type Replication struct {
	// Config is the base configuration; replication i ran with seed
	// Config.Seed + i.
	Config sim.Config `json:"config"`
	// Results holds the per-replication outcomes in seed order.
	Results []*sim.Result `json:"results"`
	// Manifests holds the per-replication run manifests in seed order.
	Manifests []*Manifest `json:"manifests"`
	// Metrics summarizes each scalar metric across replications.
	Metrics map[string]stats.Summary `json:"metrics"`
}

// Replicate runs reps copies of cfg with seeds cfg.Seed, cfg.Seed+1, ...,
// cfg.Seed+reps-1 on the pool and aggregates the per-run scalar metrics.
func (p *Pool) Replicate(cfg sim.Config, reps int) (*Replication, error) {
	if reps < 1 {
		return nil, fmt.Errorf("runner: replication count %d must be >= 1", reps)
	}
	cfgs := make([]sim.Config, reps)
	for i := range cfgs {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		cfgs[i] = c
	}
	results, manifests, err := p.RunManifested(cfgs)
	if err != nil {
		return nil, err
	}
	samples := make(map[string][]float64, 8)
	for _, r := range results {
		samples[MetricCompletion] = append(samples[MetricCompletion], r.CompletionFraction())
		samples[MetricMeanDownload] = append(samples[MetricMeanDownload], r.MeanDownloadTime())
		median := math.NaN() // NaN (excluded) when nobody finished
		if dl := r.DownloadTimeSummary(); dl.N > 0 {
			median = dl.Median
		}
		samples[MetricMedianDownload] = append(samples[MetricMedianDownload], median)
		samples[MetricFairness] = append(samples[MetricFairness], r.FinalFairness())
		samples[MetricLogFairness] = append(samples[MetricLogFairness], r.LogFairness())
		samples[MetricMeanBootstrap] = append(samples[MetricMeanBootstrap], r.MeanBootstrapTime())
		samples[MetricSusceptibility] = append(samples[MetricSusceptibility], r.Susceptibility())
		samples[MetricDuration] = append(samples[MetricDuration], r.Duration)
	}
	metrics := make(map[string]stats.Summary, len(samples))
	for name, xs := range samples {
		metrics[name] = stats.Summarize(xs)
	}
	return &Replication{Config: cfg, Results: results, Manifests: manifests, Metrics: metrics}, nil
}

// Replicate runs reps seed-derived copies of cfg on a default-sized pool.
func Replicate(cfg sim.Config, reps int) (*Replication, error) {
	return New(0).Replicate(cfg, reps)
}
