package runner

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/algo"
	"repro/internal/probe"
	"repro/internal/sim"
)

func TestRunManifested(t *testing.T) {
	algos := []algo.Algorithm{algo.BitTorrent, algo.Altruism, algo.FairTorrent}
	cfgs := make([]sim.Config, len(algos))
	for i, a := range algos {
		cfgs[i] = testConfig(a, int64(i+1))
	}

	pool := New(2)
	plain, err := pool.Run(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	results, manifests, err := pool.RunManifested(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(cfgs) || len(manifests) != len(cfgs) {
		t.Fatalf("got %d results, %d manifests; want %d each", len(results), len(manifests), len(cfgs))
	}

	for i, m := range manifests {
		// The manifest's counting probe must not perturb the run.
		if got, want := resultKey(t, results[i]), resultKey(t, plain[i]); got != want {
			t.Errorf("member %d: manifested result differs from plain run", i)
		}
		if m.Index != i {
			t.Errorf("member %d: Index = %d", i, m.Index)
		}
		if m.Algorithm != algos[i].String() {
			t.Errorf("member %d: Algorithm = %q, want %q", i, m.Algorithm, algos[i])
		}
		if m.Seed != cfgs[i].Seed {
			t.Errorf("member %d: Seed = %d, want %d", i, m.Seed, cfgs[i].Seed)
		}
		if m.Workers != 2 {
			t.Errorf("member %d: Workers = %d, want 2", i, m.Workers)
		}
		if m.EventsProcessed == 0 || m.EventsProcessed != results[i].EventsProcessed {
			t.Errorf("member %d: EventsProcessed = %d, result has %d", i, m.EventsProcessed, results[i].EventsProcessed)
		}
		if m.VirtualTime != results[i].Duration {
			t.Errorf("member %d: VirtualTime = %v, want %v", i, m.VirtualTime, results[i].Duration)
		}
		if m.SetupMS < 0 || m.RunMS <= 0 {
			t.Errorf("member %d: timings SetupMS=%v RunMS=%v", i, m.SetupMS, m.RunMS)
		}
		if m.HookCounts[probe.HookSample] == 0 || m.HookCounts[probe.HookTransferFinish] == 0 {
			t.Errorf("member %d: missing hook counts: %v", i, m.HookCounts)
		}
		// The validated config must reproduce the run.
		rerun, err := Run([]sim.Config{m.Config})
		if err != nil {
			t.Fatalf("member %d: rerunning manifest config: %v", i, err)
		}
		if resultKey(t, rerun[0]) != resultKey(t, results[i]) {
			t.Errorf("member %d: manifest config does not reproduce the run", i)
		}
	}
}

func TestManifestRoundTripsJSON(t *testing.T) {
	cfg := testConfig(algo.TChain, 3)
	_, manifests, err := RunManifested([]sim.Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	m := manifests[0]
	for name, v := range m.Summary {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("Summary[%s] = %v; non-finite values must be omitted", name, v)
		}
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Manifest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	data2, err := json.Marshal(&back)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if string(data) != string(data2) {
		t.Error("manifest does not round-trip through encoding/json")
	}
}

func TestReplicateManifests(t *testing.T) {
	cfg := testConfig(algo.BitTorrent, 5)
	rep, err := Replicate(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Manifests) != 3 {
		t.Fatalf("got %d manifests, want 3", len(rep.Manifests))
	}
	for i, m := range rep.Manifests {
		if m.Seed != cfg.Seed+int64(i) {
			t.Errorf("manifest %d: Seed = %d, want %d", i, m.Seed, cfg.Seed+int64(i))
		}
	}
}

func TestMetricSummaryOmitsNaN(t *testing.T) {
	// A reciprocity run where nobody finishes leaves download times NaN.
	cfg := testConfig(algo.Reciprocity, 1)
	results, err := Run([]sim.Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	sum := MetricSummary(results[0])
	if _, ok := sum[MetricMeanDownload]; ok && results[0].CompletionFraction() == 0 {
		t.Error("mean download present despite zero completions")
	}
	if _, ok := sum[MetricDuration]; !ok {
		t.Error("duration missing from summary")
	}
	if _, err := json.Marshal(sum); err != nil {
		t.Errorf("summary not marshalable: %v", err)
	}
}
