package runner

import (
	"math"
	"time"

	"repro/internal/probe"
	"repro/internal/sim"
)

// Manifest is the structured record of one batch member: what ran (the
// fully validated config and seed), where (worker count), how long it took
// in wall-clock and virtual time, how much happened (engine event count
// and per-hook probe tallies), and the final scalar metrics. Manifests are
// plain JSON — NaN/Inf metrics are omitted from Summary so every manifest
// round-trips through encoding/json.
type Manifest struct {
	// Index is the member's position in the submitted batch.
	Index int `json:"index"`
	// Algorithm is the incentive mechanism's display name.
	Algorithm string `json:"algorithm"`
	// Seed is the run's random seed.
	Seed int64 `json:"seed"`
	// Workers is the pool size the batch executed on, after the
	// shards-aware cap (see Warning).
	Workers int `json:"workers"`
	// Warning flags a workers × shards budget problem for this batch:
	// either a defaulted pool was capped to fit GOMAXPROCS, or an explicit
	// worker count oversubscribes the cores. Empty when the budget fits.
	Warning string `json:"warning,omitempty"`
	// Config is the run's configuration after Validate's normalization —
	// re-running exactly this config reproduces the run bit-for-bit.
	Config sim.Config `json:"config"`
	// SetupMS and RunMS are the wall-clock milliseconds spent building the
	// swarm and executing it.
	SetupMS float64 `json:"setup_ms"`
	RunMS   float64 `json:"run_ms"`
	// VirtualTime is the simulated duration in seconds.
	VirtualTime float64 `json:"virtual_time_s"`
	// EventsProcessed counts engine events executed.
	EventsProcessed uint64 `json:"events_processed"`
	// HookCounts tallies every probe hook fired during the run, keyed by
	// the probe.Hook* names.
	HookCounts map[string]uint64 `json:"hook_counts"`
	// Summary holds the final scalar metrics (the runner.Metric* names);
	// metrics undefined for this run (NaN or Inf) are omitted.
	Summary map[string]float64 `json:"summary"`
}

// MetricSummary computes the scalar metric map for one result, keyed by
// the Metric* names. Metrics undefined for the run (NaN or infinite — e.g.
// download time when nobody finished) are omitted so the map always
// marshals cleanly through encoding/json.
func MetricSummary(r *sim.Result) map[string]float64 {
	out := make(map[string]float64, 8)
	put := func(name string, v float64) {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			out[name] = v
		}
	}
	put(MetricCompletion, r.CompletionFraction())
	put(MetricMeanDownload, r.MeanDownloadTime())
	if dl := r.DownloadTimeSummary(); dl.N > 0 {
		put(MetricMedianDownload, dl.Median)
	}
	put(MetricFairness, r.FinalFairness())
	put(MetricLogFairness, r.LogFairness())
	put(MetricMeanBootstrap, r.MeanBootstrapTime())
	put(MetricSusceptibility, r.Susceptibility())
	put(MetricDuration, r.Duration)
	return out
}

// runOneManifested executes one swarm with a counting probe attached and
// assembles its manifest. The counter probe is allocation-free on the
// dispatch path and cannot perturb the run (pinned by the sim tests), so
// manifested results stay byte-identical to plain ones.
func runOneManifested(index int, cfg sim.Config, workers int, warning string) (*sim.Result, *Manifest, error) {
	setupStart := time.Now()
	sw, err := sim.NewSwarm(cfg)
	if err != nil {
		return nil, nil, err
	}
	counter := &probe.Counter{}
	if err := sw.Attach(counter); err != nil {
		return nil, nil, err
	}
	setup := time.Since(setupStart)
	runStart := time.Now()
	res, err := sw.Run()
	if err != nil {
		return nil, nil, err
	}
	m := &Manifest{
		Index:           index,
		Algorithm:       res.Config.Algorithm.String(),
		Seed:            res.Config.Seed,
		Workers:         workers,
		Warning:         warning,
		Config:          res.Config,
		SetupMS:         setup.Seconds() * 1e3,
		RunMS:           time.Since(runStart).Seconds() * 1e3,
		VirtualTime:     res.Duration,
		EventsProcessed: res.EventsProcessed,
		HookCounts:      counter.Counts(),
		Summary:         MetricSummary(res),
	}
	return res, m, nil
}

// RunManifested executes every config on the pool like Run and additionally
// returns a manifest per batch member, both in submission order. The
// simulation results are byte-identical to Run's; only wall-clock fields
// in the manifests vary between invocations.
func (p *Pool) RunManifested(cfgs []sim.Config) ([]*sim.Result, []*Manifest, error) {
	if len(cfgs) == 0 {
		return nil, nil, nil
	}
	results := make([]*sim.Result, len(cfgs))
	manifests := make([]*Manifest, len(cfgs))
	workers, warning := p.effectiveWorkers(len(cfgs), cfgs)
	err := p.forEach(len(cfgs), workers, func(i int) error {
		res, m, err := runOneManifested(i, cfgs[i], workers, warning)
		results[i], manifests[i] = res, m
		return err
	})
	if err := p.wrapJobError(cfgs, err); err != nil {
		return nil, nil, err
	}
	return results, manifests, nil
}

// RunManifested executes the configs on a default-sized pool and returns
// results plus per-member manifests.
func RunManifested(cfgs []sim.Config) ([]*sim.Result, []*Manifest, error) {
	return New(0).RunManifested(cfgs)
}
