// Package algo defines the taxonomy of incentive mechanisms the paper
// compares: three basic classes (reciprocity, altruism, reputation) and
// three hybrids (BitTorrent, FairTorrent, T-Chain). Every other package —
// the analytical model, the simulator, the live node, and the experiment
// harnesses — keys off these identifiers.
package algo

import "fmt"

// Algorithm identifies one of the six incentive mechanisms.
type Algorithm int

// The six mechanisms, in the order the paper's tables list them, plus
// PropShare [5] — a BitTorrent variant from the paper's related work,
// implemented as an extension (it is not part of the analytical tables).
const (
	Reciprocity Algorithm = iota + 1
	TChain
	BitTorrent
	FairTorrent
	Reputation
	Altruism
	PropShare
)

// All lists the paper's six algorithms in table order. PropShare is an
// extension and is listed by Extensions instead.
func All() []Algorithm {
	return []Algorithm{Reciprocity, TChain, BitTorrent, FairTorrent, Reputation, Altruism}
}

// Extensions lists the mechanisms implemented beyond the paper's six.
func Extensions() []Algorithm {
	return []Algorithm{PropShare}
}

// String returns the paper's display name for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case Reciprocity:
		return "Reciprocity"
	case TChain:
		return "T-Chain"
	case BitTorrent:
		return "BitTorrent"
	case FairTorrent:
		return "FairTorrent"
	case Reputation:
		return "Reputation"
	case Altruism:
		return "Altruism"
	case PropShare:
		return "PropShare"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Parse resolves a case-insensitive name (with or without hyphens) to an
// Algorithm. It returns an error for unknown names.
func Parse(name string) (Algorithm, error) {
	switch normalize(name) {
	case "reciprocity":
		return Reciprocity, nil
	case "tchain":
		return TChain, nil
	case "bittorrent":
		return BitTorrent, nil
	case "fairtorrent":
		return FairTorrent, nil
	case "reputation":
		return Reputation, nil
	case "altruism":
		return Altruism, nil
	case "propshare":
		return PropShare, nil
	default:
		return 0, fmt.Errorf("algo: unknown algorithm %q", name)
	}
}

func normalize(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'A' && c <= 'Z':
			out = append(out, c+'a'-'A')
		case c == '-' || c == '_' || c == ' ':
			// drop separators
		default:
			out = append(out, c)
		}
	}
	return string(out)
}

// Class is one of the paper's three fundamental incentive classes.
type Class int

// The three basic classes (Figure 1).
const (
	ClassReciprocity Class = iota + 1
	ClassAltruism
	ClassReputation
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case ClassReciprocity:
		return "reciprocity"
	case ClassAltruism:
		return "altruism"
	case ClassReputation:
		return "reputation"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Components returns the basic classes an algorithm combines (Figure 1):
// basic algorithms return themselves; hybrids return their two components.
func (a Algorithm) Components() []Class {
	switch a {
	case Reciprocity:
		return []Class{ClassReciprocity}
	case Altruism:
		return []Class{ClassAltruism}
	case Reputation:
		return []Class{ClassReputation}
	case BitTorrent:
		return []Class{ClassReciprocity, ClassAltruism}
	case FairTorrent:
		return []Class{ClassReputation, ClassAltruism}
	case TChain:
		return []Class{ClassReciprocity, ClassReputation}
	case PropShare:
		return []Class{ClassReciprocity, ClassAltruism}
	default:
		return nil
	}
}

// IsHybrid reports whether the algorithm combines two basic classes.
func (a Algorithm) IsHybrid() bool { return len(a.Components()) == 2 }
