package algo

import (
	"strings"
	"testing"
)

func TestAllOrderMatchesPaperTables(t *testing.T) {
	want := []Algorithm{Reciprocity, TChain, BitTorrent, FairTorrent, Reputation, Altruism}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("All() len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("All()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestStringNames(t *testing.T) {
	cases := map[Algorithm]string{
		Reciprocity:  "Reciprocity",
		TChain:       "T-Chain",
		BitTorrent:   "BitTorrent",
		FairTorrent:  "FairTorrent",
		Reputation:   "Reputation",
		Altruism:     "Altruism",
		Algorithm(0): "Algorithm(0)",
	}
	for a, want := range cases {
		if got := a.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(a), got, want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, a := range All() {
		got, err := Parse(a.String())
		if err != nil {
			t.Errorf("Parse(%q): %v", a.String(), err)
			continue
		}
		if got != a {
			t.Errorf("Parse(%q) = %v", a.String(), got)
		}
	}
}

func TestParseVariants(t *testing.T) {
	for _, name := range []string{"t-chain", "TCHAIN", "t_chain", "T Chain"} {
		got, err := Parse(name)
		if err != nil || got != TChain {
			t.Errorf("Parse(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := Parse("bittyrant"); err == nil {
		t.Error("unknown name accepted")
	}
	if _, err := Parse(""); err == nil {
		t.Error("empty name accepted")
	}
}

func TestComponentsMatchFigure1(t *testing.T) {
	cases := map[Algorithm][]Class{
		Reciprocity: {ClassReciprocity},
		Altruism:    {ClassAltruism},
		Reputation:  {ClassReputation},
		BitTorrent:  {ClassReciprocity, ClassAltruism},
		FairTorrent: {ClassReputation, ClassAltruism},
		TChain:      {ClassReciprocity, ClassReputation},
	}
	for a, want := range cases {
		got := a.Components()
		if len(got) != len(want) {
			t.Errorf("%v components = %v", a, got)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%v components = %v, want %v", a, got, want)
			}
		}
		if a.IsHybrid() != (len(want) == 2) {
			t.Errorf("%v IsHybrid = %v", a, a.IsHybrid())
		}
	}
	if Algorithm(0).Components() != nil {
		t.Error("invalid algorithm has components")
	}
}

func TestExtensions(t *testing.T) {
	exts := Extensions()
	if len(exts) != 1 || exts[0] != PropShare {
		t.Fatalf("Extensions() = %v", exts)
	}
	if got, err := Parse("propshare"); err != nil || got != PropShare {
		t.Errorf("Parse(propshare) = %v, %v", got, err)
	}
	if PropShare.String() != "PropShare" {
		t.Errorf("PropShare name = %q", PropShare.String())
	}
	if !PropShare.IsHybrid() {
		t.Error("PropShare should be a reciprocity/altruism hybrid")
	}
	// Extensions never appear in the paper's table set.
	for _, a := range All() {
		if a == PropShare {
			t.Error("PropShare leaked into All()")
		}
	}
}

func TestClassString(t *testing.T) {
	for _, c := range []Class{ClassReciprocity, ClassAltruism, ClassReputation} {
		if strings.HasPrefix(c.String(), "Class(") {
			t.Errorf("class %d missing name", int(c))
		}
	}
	if Class(0).String() != "Class(0)" {
		t.Error("invalid class name wrong")
	}
}
