// Package bandwidth models peer upload capacities for the swarm simulator:
// heterogeneous capacity classes, slot-based transfer timing, and the
// capacity-distribution invariant the paper's analysis assumes
// (Uᵢ ≤ Σ_{j≠i} Uⱼ, Section IV).
package bandwidth

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// Class is one upload-capacity tier with a population weight.
type Class struct {
	Name   string  `json:"name"`
	Rate   float64 `json:"rate"`   // bytes per second
	Weight float64 `json:"weight"` // relative population share
}

// Distribution is a weighted mix of capacity classes.
type Distribution struct {
	Classes []Class `json:"classes"`
}

// DefaultDistribution reflects the four-tier access-link mix common in the
// BitTorrent measurement literature, scaled so the median peer uploads
// ~1 Mbit/s. The paper does not publish its capacity mix; DESIGN.md records
// this substitution.
func DefaultDistribution() Distribution {
	const kbps = 1000.0 / 8 // bytes/s per kbit/s
	return Distribution{Classes: []Class{
		{Name: "dsl-slow", Rate: 256 * kbps, Weight: 0.2},
		{Name: "dsl", Rate: 512 * kbps, Weight: 0.3},
		{Name: "cable", Rate: 1024 * kbps, Weight: 0.3},
		{Name: "fiber", Rate: 4096 * kbps, Weight: 0.2},
	}}
}

// UniformDistribution gives every peer the same rate; useful for the
// idealized-equilibrium experiments where Uᵢ ≈ Uⱼ.
func UniformDistribution(rate float64) Distribution {
	return Distribution{Classes: []Class{{Name: "uniform", Rate: rate, Weight: 1}}}
}

// Validate checks the distribution for use in a simulation.
func (d Distribution) Validate() error {
	if len(d.Classes) == 0 {
		return errors.New("bandwidth: no classes")
	}
	var total float64
	for _, c := range d.Classes {
		if c.Rate <= 0 {
			return fmt.Errorf("bandwidth: class %q rate %g must be positive", c.Name, c.Rate)
		}
		if c.Weight < 0 {
			return fmt.Errorf("bandwidth: class %q negative weight", c.Name)
		}
		total += c.Weight
	}
	if total <= 0 {
		return errors.New("bandwidth: zero total weight")
	}
	return nil
}

// Sample draws n capacities from the distribution. The returned slice is in
// draw order (callers sort if they need the paper's U₁ ≥ … ≥ U_N ordering).
func (d Distribution) Sample(rng *rand.Rand, n int) ([]float64, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	var total float64
	for _, c := range d.Classes {
		total += c.Weight
	}
	out := make([]float64, n)
	for i := range out {
		target := rng.Float64() * total
		var acc float64
		for _, c := range d.Classes {
			acc += c.Weight
			if target < acc {
				out[i] = c.Rate
				break
			}
		}
		if out[i] == 0 {
			out[i] = d.Classes[len(d.Classes)-1].Rate
		}
	}
	return out, nil
}

// SortDescending orders capacities U₁ ≥ U₂ ≥ … ≥ U_N in place, matching the
// paper's indexing convention.
func SortDescending(capacities []float64) {
	sort.Sort(sort.Reverse(sort.Float64Slice(capacities)))
}

// CheckBalance verifies the paper's Section IV assumption that no user holds
// a disproportionate share of total capacity: Uᵢ ≤ Σ_{j≠i} Uⱼ for all i.
// It returns the first violating index, or -1 if the assumption holds.
func CheckBalance(capacities []float64) int {
	var total float64
	for _, u := range capacities {
		total += u
	}
	for i, u := range capacities {
		if u > total-u {
			return i
		}
	}
	return -1
}

// Allocator models one peer's upload link divided into a fixed number of
// concurrent slots. A transfer on one slot proceeds at rate Rate/Slots, so a
// piece of b bytes takes b·Slots/Rate seconds. This matches the equal-split
// assumption behind the paper's Table I rates.
type Allocator struct {
	Rate  float64
	Slots int
	busy  int
}

// NewAllocator returns an allocator with the given link rate and slot count.
// It panics on non-positive arguments (construction-time programming error).
func NewAllocator(rate float64, slots int) *Allocator {
	if rate <= 0 || slots <= 0 {
		panic(fmt.Sprintf("bandwidth: NewAllocator(%g, %d)", rate, slots))
	}
	return &Allocator{Rate: rate, Slots: slots}
}

// Busy returns the number of slots currently transferring.
func (a *Allocator) Busy() int { return a.busy }

// Free returns the number of idle slots.
func (a *Allocator) Free() int { return a.Slots - a.busy }

// Acquire takes one slot and returns the transfer duration for a payload of
// size bytes. It returns ok=false when all slots are busy.
func (a *Allocator) Acquire(size float64) (duration float64, ok bool) {
	if a.busy >= a.Slots {
		return 0, false
	}
	a.busy++
	return size * float64(a.Slots) / a.Rate, true
}

// Release returns one slot. Releasing with no slot held panics: it indicates
// unbalanced Acquire/Release bookkeeping.
func (a *Allocator) Release() {
	if a.busy <= 0 {
		panic("bandwidth: Release without Acquire")
	}
	a.busy--
}
