package bandwidth

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDefaultDistributionValid(t *testing.T) {
	if err := DefaultDistribution().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := UniformDistribution(100).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadDistributions(t *testing.T) {
	cases := []Distribution{
		{},
		{Classes: []Class{{Rate: 0, Weight: 1}}},
		{Classes: []Class{{Rate: -5, Weight: 1}}},
		{Classes: []Class{{Rate: 10, Weight: -1}}},
		{Classes: []Class{{Rate: 10, Weight: 0}}},
	}
	for i, d := range cases {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSampleRespectsWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := Distribution{Classes: []Class{
		{Name: "a", Rate: 10, Weight: 1},
		{Name: "b", Rate: 20, Weight: 3},
	}}
	caps, err := d.Sample(rng, 40000)
	if err != nil {
		t.Fatal(err)
	}
	countB := 0
	for _, c := range caps {
		if c == 20 {
			countB++
		} else if c != 10 {
			t.Fatalf("unexpected capacity %g", c)
		}
	}
	frac := float64(countB) / 40000
	if frac < 0.72 || frac > 0.78 {
		t.Errorf("class b fraction %.3f, want ~0.75", frac)
	}
}

func TestSampleInvalidDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := (Distribution{}).Sample(rng, 5); err == nil {
		t.Error("invalid distribution sampled")
	}
}

func TestSortDescending(t *testing.T) {
	caps := []float64{3, 1, 4, 1, 5}
	SortDescending(caps)
	for i := 1; i < len(caps); i++ {
		if caps[i] > caps[i-1] {
			t.Fatalf("not descending: %v", caps)
		}
	}
}

func TestCheckBalance(t *testing.T) {
	if got := CheckBalance([]float64{1, 1, 1}); got != -1 {
		t.Errorf("balanced = %d, want -1", got)
	}
	if got := CheckBalance([]float64{10, 1, 1}); got != 0 {
		t.Errorf("dominant index = %d, want 0", got)
	}
	if got := CheckBalance(nil); got != -1 {
		t.Errorf("empty = %d, want -1", got)
	}
}

func TestAllocatorSlotAccounting(t *testing.T) {
	a := NewAllocator(100, 2)
	if a.Free() != 2 || a.Busy() != 0 {
		t.Fatal("fresh allocator wrong")
	}
	d1, ok := a.Acquire(50)
	if !ok {
		t.Fatal("first Acquire failed")
	}
	// 50 bytes at 100/2 = 50 B/s per slot -> 1 s.
	if d1 != 1 {
		t.Errorf("duration = %g, want 1", d1)
	}
	if _, ok := a.Acquire(50); !ok {
		t.Fatal("second Acquire failed")
	}
	if _, ok := a.Acquire(50); ok {
		t.Fatal("third Acquire succeeded with 2 slots")
	}
	a.Release()
	if a.Free() != 1 {
		t.Errorf("Free = %d after release", a.Free())
	}
}

func TestAllocatorPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewAllocator(0, 1) },
		func() { NewAllocator(10, 0) },
		func() { NewAllocator(10, 1).Release() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestAllocatorDurationProperty(t *testing.T) {
	// Duration scales linearly with size and inversely with rate.
	f := func(rawSize, rawRate uint16, rawSlots uint8) bool {
		size := float64(rawSize%1000) + 1
		rate := float64(rawRate%1000) + 1
		slots := int(rawSlots%8) + 1
		a := NewAllocator(rate, slots)
		d, ok := a.Acquire(size)
		if !ok {
			return false
		}
		want := size * float64(slots) / rate
		return d == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
