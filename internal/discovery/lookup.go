package discovery

import "sort"

// QueryFunc asks one contact for the closest contacts it knows to target.
// Implementations block until the answer arrives or their own timeout
// expires; an error marks the contact unreachable for this lookup.
type QueryFunc func(c Contact, target ID) ([]Contact, error)

// Lookup runs a Kademlia iterative FindNode: starting from the table's k
// closest known contacts, it keeps alpha queries in flight toward the
// closest not-yet-queried candidates, merging every reply into both the
// shortlist and the table, until the k closest known contacts have all
// been queried (or failed). It returns the k closest live contacts found.
//
// The call blocks for the lookup's duration; queries within a round run
// concurrently on their own goroutines, all joined before return.
func (t *Table) Lookup(target ID, k, alpha int, query QueryFunc) []Contact {
	if k <= 0 {
		k = t.k
	}
	if alpha <= 0 {
		alpha = 3
	}
	type candidate struct {
		c       Contact
		queried bool
		failed  bool
	}
	// shortlist holds every contact seen this lookup, sorted by distance.
	shortlist := make([]candidate, 0, 2*k)
	known := make(map[int]bool)
	merge := func(cs []Contact) {
		for _, c := range cs {
			if known[c.NodeID] || c.ID() == t.self || c.Addr == "" {
				continue
			}
			known[c.NodeID] = true
			shortlist = append(shortlist, candidate{c: c})
		}
		sort.SliceStable(shortlist, func(i, j int) bool {
			return Distance(shortlist[i].c.ID(), target) < Distance(shortlist[j].c.ID(), target)
		})
	}
	merge(t.Closest(target, k))

	type reply struct {
		from   Contact
		found  []Contact
		failed bool
	}
	for {
		// Launch queries toward the closest unqueried candidates among the
		// k best — stopping when those are all settled is the Kademlia
		// termination rule.
		var wave []Contact
		settled := 0
		for i := range shortlist {
			if settled >= k || len(wave) >= alpha {
				break
			}
			cand := &shortlist[i]
			if cand.failed {
				continue
			}
			if cand.queried {
				settled++
				continue
			}
			cand.queried = true
			wave = append(wave, cand.c)
		}
		if len(wave) == 0 {
			break
		}
		replies := make(chan reply, len(wave))
		for _, c := range wave {
			go func(c Contact) {
				found, err := query(c, target)
				replies <- reply{from: c, found: found, failed: err != nil}
			}(c)
		}
		for range wave {
			r := <-replies
			if r.failed {
				for i := range shortlist {
					if shortlist[i].c.NodeID == r.from.NodeID {
						shortlist[i].failed = true
					}
				}
				continue
			}
			t.Add(r.from)
			for _, c := range r.found {
				t.Add(c)
			}
			merge(r.found)
		}
	}

	out := make([]Contact, 0, k)
	for _, cand := range shortlist {
		if cand.queried && !cand.failed {
			out = append(out, cand.c)
		}
		if len(out) == k {
			break
		}
	}
	return out
}
