// Package discovery implements the Kademlia-style routing layer the live
// node (internal/node) uses to find peers without static full-mesh wiring:
// XOR-distance 64-bit node IDs, k-buckets with least-recently-seen eviction
// candidates, and alpha-parallel iterative FindNode lookups.
//
// The package is transport-agnostic: it owns only the routing data
// structures and the lookup algorithm. The node supplies a QueryFunc that
// actually asks a contact for its closest neighbors (over a transient
// internal/transport connection speaking protocol.FindNode/Nodes frames)
// and feeds gossip (Announce frames, handshake peer exchange) into the
// table. Liveness is likewise the caller's: the table hands back eviction
// candidates and the node pings or dials them.
package discovery

import "math/bits"

// ID is a node's position in the 64-bit Kademlia XOR-distance space.
type ID uint64

// IDOf derives the routing ID for a swarm node ID. The mix is splitmix64's
// finalizer: deterministic (any two nodes agree on everyone's ID without
// communication) and well spread, so integer node IDs 0,1,2,... land
// uniformly across the space instead of clustering in one bucket.
func IDOf(nodeID int) ID {
	z := uint64(nodeID) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return ID(z ^ (z >> 31))
}

// Distance is the Kademlia XOR metric between two IDs.
func Distance(a, b ID) uint64 { return uint64(a ^ b) }

// BucketOf returns which of the 64 k-buckets an ID at the given distance
// from self belongs to: bucket i holds distances whose highest set bit is
// bit i, so bucket 63 is the far half of the space and bucket 0 the
// immediate neighborhood. Distance 0 (self) has no bucket; BucketOf
// returns -1 for it.
func BucketOf(self, other ID) int {
	d := Distance(self, other)
	if d == 0 {
		return -1
	}
	return bits.Len64(d) - 1
}

// Contact is one routable peer: its swarm node ID and the address its
// listener can be dialed at.
type Contact struct {
	// NodeID is the peer's swarm identity (protocol.Hello's PeerID).
	NodeID int
	// Addr is the peer's advertised listen address.
	Addr string
}

// ID returns the contact's position in the XOR space.
func (c Contact) ID() ID { return IDOf(c.NodeID) }
