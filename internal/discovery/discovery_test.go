package discovery

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"testing"
)

func TestIDOfDeterministicAndSpread(t *testing.T) {
	if IDOf(42) != IDOf(42) {
		t.Fatal("IDOf not deterministic")
	}
	// Sequential node IDs must land in many distinct buckets relative to
	// node 0 — the whole point of mixing them.
	self := IDOf(0)
	buckets := map[int]bool{}
	for i := 1; i < 256; i++ {
		buckets[BucketOf(self, IDOf(i))] = true
	}
	if len(buckets) < 6 {
		t.Fatalf("256 sequential IDs spread over only %d buckets", len(buckets))
	}
	if BucketOf(self, self) != -1 {
		t.Error("self distance must have no bucket")
	}
}

func TestTableAddRefreshAndEvictionCandidate(t *testing.T) {
	tb := NewTable(0, 2)
	// Find three distinct node IDs sharing one bucket relative to node 0.
	self := tb.Self()
	byBucket := map[int][]int{}
	var bucket int
	var ids []int
	for i := 1; i < 4096 && ids == nil; i++ {
		b := BucketOf(self, IDOf(i))
		byBucket[b] = append(byBucket[b], i)
		if len(byBucket[b]) == 3 {
			bucket, ids = b, byBucket[b]
		}
	}
	if ids == nil {
		t.Fatal("could not find three colliding IDs")
	}
	c := func(i int) Contact { return Contact{NodeID: ids[i], Addr: fmt.Sprintf("mem://%d", ids[i])} }

	if _, added := tb.Add(c(0)); !added {
		t.Fatal("first add rejected")
	}
	if _, added := tb.Add(c(1)); !added {
		t.Fatal("second add rejected")
	}
	if tb.Size() != 2 {
		t.Fatalf("size %d, want 2", tb.Size())
	}
	// Bucket full: the third contact is refused and the least-recently-seen
	// contact (the first added) comes back as the eviction candidate.
	evict, added := tb.Add(c(2))
	if added {
		t.Fatalf("bucket %d overfilled", bucket)
	}
	if evict.NodeID != ids[0] {
		t.Fatalf("eviction candidate %d, want least-recently-seen %d", evict.NodeID, ids[0])
	}
	// Refreshing the LRU contact moves it to most-recent: the candidate
	// rotates to the other entry.
	if _, added := tb.Add(c(0)); !added {
		t.Fatal("refresh of known contact rejected")
	}
	if evict, _ := tb.Add(c(2)); evict.NodeID != ids[1] {
		t.Fatalf("after refresh candidate %d, want %d", evict.NodeID, ids[1])
	}
	// Removing the candidate makes room.
	tb.Remove(Contact{NodeID: ids[1]})
	if _, added := tb.Add(c(2)); !added {
		t.Fatal("add after eviction rejected")
	}
	if tb.Size() != 2 {
		t.Fatalf("size %d after evict+add, want 2", tb.Size())
	}
	// Self and unroutable contacts are refused.
	if _, added := tb.Add(Contact{NodeID: 0, Addr: "mem://0"}); added {
		t.Error("table routed itself")
	}
	if _, added := tb.Add(Contact{NodeID: 9999, Addr: ""}); added {
		t.Error("table routed an address-less contact")
	}
}

func TestClosestOrdering(t *testing.T) {
	tb := NewTable(0, 16)
	for i := 1; i <= 128; i++ {
		tb.Add(Contact{NodeID: i, Addr: fmt.Sprintf("mem://%d", i)})
	}
	target := IDOf(77)
	got := tb.Closest(target, 8)
	if len(got) != 8 {
		t.Fatalf("got %d contacts, want 8", len(got))
	}
	for i := 1; i < len(got); i++ {
		if Distance(got[i-1].ID(), target) > Distance(got[i].ID(), target) {
			t.Fatalf("closest not sorted at %d", i)
		}
	}
	// Brute force: the first result is the global minimum.
	all := tb.Contacts()
	sort.Slice(all, func(i, j int) bool {
		return Distance(all[i].ID(), target) < Distance(all[j].ID(), target)
	})
	if got[0] != all[0] {
		t.Fatalf("closest[0] = %v, brute force %v", got[0], all[0])
	}
}

func TestNeighborCandidatesSpanBuckets(t *testing.T) {
	tb := NewTable(0, 16)
	for i := 1; i <= 256; i++ {
		tb.Add(Contact{NodeID: i, Addr: fmt.Sprintf("mem://%d", i)})
	}
	cands := tb.NeighborCandidates(8)
	if len(cands) != 8 {
		t.Fatalf("got %d candidates, want 8", len(cands))
	}
	// The first candidates must come from distinct buckets (one per
	// nonempty bucket before any bucket repeats).
	seen := map[int]int{}
	distinct := 0
	for _, c := range cands {
		b := BucketOf(tb.Self(), c.ID())
		if seen[b] == 0 {
			distinct++
		}
		seen[b]++
	}
	if distinct < 4 {
		t.Fatalf("candidates cover only %d buckets", distinct)
	}
	// No duplicates.
	ids := map[int]bool{}
	for _, c := range cands {
		if ids[c.NodeID] {
			t.Fatalf("candidate %d repeated", c.NodeID)
		}
		ids[c.NodeID] = true
	}
}

func TestRefreshTargetLandsInKnownBucket(t *testing.T) {
	tb := NewTable(0, 4)
	rng := rand.New(rand.NewSource(1))
	if tb.RefreshTarget(rng) == tb.Self() {
		t.Error("empty-table refresh target equals self")
	}
	for i := 1; i <= 64; i++ {
		tb.Add(Contact{NodeID: i, Addr: fmt.Sprintf("mem://%d", i)})
	}
	nonempty := map[int]bool{}
	for _, c := range tb.Contacts() {
		nonempty[BucketOf(tb.Self(), c.ID())] = true
	}
	for i := 0; i < 50; i++ {
		target := tb.RefreshTarget(rng)
		if !nonempty[BucketOf(tb.Self(), target)] {
			t.Fatalf("refresh target in empty bucket %d", BucketOf(tb.Self(), target))
		}
	}
}

// fakeNetwork simulates a converged Kademlia overlay: every node routes
// its k closest peers plus a few random long links, and answers FindNode
// from that table.
type fakeNetwork struct {
	tables map[int]*Table
	nodes  []Contact
	down   map[int]bool
	// queries counts FindNode RPCs, for sanity bounds; atomic because a
	// lookup issues alpha queries concurrently.
	queries atomic.Int64
}

func newFakeNetwork(n, k int, seed int64) *fakeNetwork {
	rng := rand.New(rand.NewSource(seed))
	net := &fakeNetwork{tables: make(map[int]*Table), down: map[int]bool{}}
	for i := 0; i < n; i++ {
		net.nodes = append(net.nodes, Contact{NodeID: i, Addr: fmt.Sprintf("mem://%d", i)})
	}
	for i := 0; i < n; i++ {
		tb := NewTable(i, k)
		self := IDOf(i)
		sorted := append([]Contact(nil), net.nodes...)
		sort.Slice(sorted, func(a, b int) bool {
			return Distance(sorted[a].ID(), self) < Distance(sorted[b].ID(), self)
		})
		for _, c := range sorted[1 : k+1] { // skip self at distance 0
			tb.Add(c)
		}
		for j := 0; j < k; j++ { // random long links fill far buckets
			tb.Add(net.nodes[rng.Intn(n)])
		}
		net.tables[i] = tb
	}
	return net
}

func (f *fakeNetwork) query(c Contact, target ID) ([]Contact, error) {
	f.queries.Add(1)
	if f.down[c.NodeID] {
		return nil, errors.New("unreachable")
	}
	return f.tables[c.NodeID].Closest(target, f.tables[c.NodeID].K()), nil
}

func TestLookupFindsGlobalClosest(t *testing.T) {
	const n, k, alpha = 200, 8, 3
	net := newFakeNetwork(n, k, 1)
	// A fresh joiner knows only three bootstrap contacts.
	tb := NewTable(5000, k)
	for _, c := range net.nodes[:3] {
		tb.Add(c)
	}
	for _, targetNode := range []int{7, 123, 199} {
		target := IDOf(targetNode)
		got := tb.Lookup(target, k, alpha, net.query)
		if len(got) == 0 {
			t.Fatalf("lookup for node %d found nothing", targetNode)
		}
		if got[0].NodeID != targetNode {
			t.Errorf("lookup for node %d converged on node %d", targetNode, got[0].NodeID)
		}
	}
	if tb.Size() < k {
		t.Errorf("lookup populated only %d table entries", tb.Size())
	}
}

func TestLookupToleratesFailures(t *testing.T) {
	const n, k, alpha = 120, 8, 3
	net := newFakeNetwork(n, k, 2)
	rng := rand.New(rand.NewSource(3))
	for i := 1; i < n; i++ { // a fifth of the overlay is dead
		if rng.Float64() < 0.2 && i != 60 {
			net.down[i] = true
		}
	}
	tb := NewTable(5000, k)
	for _, c := range net.nodes[:3] {
		tb.Add(c)
	}
	got := tb.Lookup(IDOf(60), k, alpha, net.query)
	found := false
	for _, c := range got {
		if net.down[c.NodeID] {
			t.Errorf("lookup returned dead contact %d", c.NodeID)
		}
		if c.NodeID == 60 {
			found = true
		}
	}
	if !found {
		t.Error("lookup missed the live target despite failures")
	}
}

func TestLookupQueryBudgetBounded(t *testing.T) {
	const n, k, alpha = 500, 16, 3
	net := newFakeNetwork(n, k, 4)
	tb := NewTable(5000, k)
	for _, c := range net.nodes[:3] {
		tb.Add(c)
	}
	tb.Lookup(IDOf(321), k, alpha, net.query)
	// An iterative lookup touches O(k log n) contacts, nowhere near the
	// whole population — the property that makes 1000+-node swarms cheap.
	if q := net.queries.Load(); q > n/4 {
		t.Fatalf("lookup spent %d queries on a %d-node overlay", q, n)
	}
}

// BenchmarkDHTLookup measures one iterative lookup (alpha=3, k=16) on a
// converged 1024-node overlay with in-memory queries: the routing-layer
// cost floor under bench.sh's discovery target, excluding transport time.
func BenchmarkDHTLookup(b *testing.B) {
	const n, k, alpha = 1024, 16, 3
	net := newFakeNetwork(n, k, 5)
	rng := rand.New(rand.NewSource(6))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb := NewTable(5000+i, k)
		for _, c := range net.nodes[:3] {
			tb.Add(c)
		}
		tb.Lookup(IDOf(rng.Intn(n)), k, alpha, net.query)
	}
}
