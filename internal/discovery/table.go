package discovery

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Table is a Kademlia routing table: 64 k-buckets of contacts ordered by
// recency, bucket i covering XOR distances whose highest set bit is bit i.
// All methods are safe for concurrent use.
//
// Eviction follows the paper's least-recently-seen policy, adapted to a
// caller-driven liveness check: Add on a full bucket does not insert but
// returns the bucket's least-recently-seen contact as an eviction
// candidate. The caller pings (or dials) it — if it answers, its next
// RecordSeen keeps it and the newcomer is simply dropped (Kademlia prefers
// old live contacts, which resists churn and table-poisoning); if it does
// not, Remove it and re-Add the newcomer.
type Table struct {
	self ID
	k    int

	mu      sync.Mutex
	buckets [64][]tableEntry // least-recently-seen first, most recent last
	size    int
}

// tableEntry is one routed contact plus the last time it was seen alive.
type tableEntry struct {
	c    Contact
	seen time.Time
}

// NewTable builds an empty routing table for the node with the given swarm
// ID. k is the per-bucket capacity (Kademlia's k, typically 16).
func NewTable(selfNodeID, k int) *Table {
	if k <= 0 {
		k = 16
	}
	return &Table{self: IDOf(selfNodeID), k: k}
}

// Self returns the table owner's routing ID.
func (t *Table) Self() ID { return t.self }

// K returns the per-bucket capacity.
func (t *Table) K() int { return t.k }

// Size returns the number of contacts currently routed.
func (t *Table) Size() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.size
}

// Add records c as seen alive now. If c's bucket is full the contact is
// NOT inserted; instead the bucket's least-recently-seen entry comes back
// as the eviction candidate for the caller to liveness-check (see the
// Table doc). The boolean reports whether c is now in the table (newly
// inserted or refreshed).
func (t *Table) Add(c Contact) (evict Contact, added bool) {
	b := BucketOf(t.self, c.ID())
	if b < 0 || c.Addr == "" {
		return Contact{}, false // self, or not routable
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	bucket := t.buckets[b]
	for i := range bucket {
		if bucket[i].c.NodeID == c.NodeID {
			// Known contact: refresh address and move to most-recent.
			entry := tableEntry{c: c, seen: time.Now()}
			t.buckets[b] = append(append(bucket[:i], bucket[i+1:]...), entry)
			return Contact{}, true
		}
	}
	if len(bucket) >= t.k {
		return bucket[0].c, false
	}
	t.buckets[b] = append(bucket, tableEntry{c: c, seen: time.Now()})
	t.size++
	return Contact{}, true
}

// Remove drops a contact (failed dial, missed ping, confirmed-dead
// eviction candidate). Unknown contacts are a no-op.
func (t *Table) Remove(c Contact) {
	b := BucketOf(t.self, c.ID())
	if b < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	bucket := t.buckets[b]
	for i := range bucket {
		if bucket[i].c.NodeID == c.NodeID {
			t.buckets[b] = append(bucket[:i], bucket[i+1:]...)
			t.size--
			return
		}
	}
}

// Closest returns up to n known contacts ordered by XOR distance to
// target. The table holds at most 64*k entries, so a full scan plus sort
// stays cheap at every realistic swarm size.
func (t *Table) Closest(target ID, n int) []Contact {
	t.mu.Lock()
	out := make([]Contact, 0, t.size)
	for b := range t.buckets {
		for _, e := range t.buckets[b] {
			out = append(out, e.c)
		}
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		return Distance(out[i].ID(), target) < Distance(out[j].ID(), target)
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Contacts snapshots every routed contact in no particular order.
func (t *Table) Contacts() []Contact {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Contact, 0, t.size)
	for b := range t.buckets {
		for _, e := range t.buckets[b] {
			out = append(out, e.c)
		}
	}
	return out
}

// BucketLen returns the number of contacts in bucket b, or 0 when b is out
// of range. It backs the per-bucket occupancy gauges: a healthy table has
// its low buckets (near distances) full and occupancy thinning toward the
// high buckets, so a flat or empty profile is a bootstrap or churn symptom.
func (t *Table) BucketLen(b int) int {
	if b < 0 || b >= len(t.buckets) {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buckets[b])
}

// BucketContact is one routed contact plus the last time it was seen alive,
// as exposed by Buckets for the /debug/dht endpoint.
type BucketContact struct {
	Contact  Contact
	LastSeen time.Time
}

// BucketInfo is the snapshot of one nonempty k-bucket.
type BucketInfo struct {
	Index    int // bucket number: highest set bit of the XOR distance
	Contacts []BucketContact
}

// Buckets snapshots every nonempty bucket, least-recently-seen contact
// first within each — the routing-table health view behind /debug/dht.
func (t *Table) Buckets() []BucketInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]BucketInfo, 0, 8)
	for b := range t.buckets {
		bucket := t.buckets[b]
		if len(bucket) == 0 {
			continue
		}
		info := BucketInfo{Index: b, Contacts: make([]BucketContact, 0, len(bucket))}
		for _, e := range bucket {
			info.Contacts = append(info.Contacts, BucketContact{Contact: e.c, LastSeen: e.seen})
		}
		out = append(out, info)
	}
	return out
}

// NeighborCandidates returns up to n contacts to maintain links toward,
// spanning the distance scales: the most-recently-seen entry of every
// nonempty bucket from nearest to farthest, then the second entries, and
// so on. Connecting to one live contact per bucket is Kademlia's
// neighbor-set shape — it keeps the overlay connected (every node has
// links at all distance scales, so greedy XOR routing and flooding both
// reach everyone) with degree logarithmic in the population, which is
// exactly the degree-bounded partial mesh the node's Discover mode wants.
func (t *Table) NeighborCandidates(n int) []Contact {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Contact, 0, n)
	for layer := 0; len(out) < n; layer++ {
		found := false
		for b := 0; b < len(t.buckets) && len(out) < n; b++ {
			bucket := t.buckets[b]
			if layer < len(bucket) {
				found = true
				// Most recent first: index from the tail.
				out = append(out, bucket[len(bucket)-1-layer].c)
			}
		}
		if !found {
			break
		}
	}
	return out
}

// RefreshTarget picks a random ID inside a random nonempty bucket (or a
// uniformly random ID when the table is empty) — the lookup target for
// periodic bucket refresh, which keeps every distance scale populated.
func (t *Table) RefreshTarget(rng *rand.Rand) ID {
	t.mu.Lock()
	nonempty := make([]int, 0, 8)
	for b := range t.buckets {
		if len(t.buckets[b]) > 0 {
			nonempty = append(nonempty, b)
		}
	}
	t.mu.Unlock()
	if len(nonempty) == 0 {
		return ID(rng.Uint64())
	}
	b := nonempty[rng.Intn(len(nonempty))]
	// An ID at distance with highest bit b: flip bit b of self, randomize
	// the lower bits.
	d := uint64(1)<<uint(b) | (rng.Uint64() & (uint64(1)<<uint(b) - 1))
	return t.self ^ ID(d)
}
