package protocol

import (
	"bytes"
	"testing"

	"repro/internal/attest"
	"repro/internal/tracing"
)

// TestTraceContextRoundTrip pins the trace-context frame extension: traced
// frames carry the context through both decode paths; untraced frames are
// byte-identical to the pre-extension encoding.
func TestTraceContextRoundTrip(t *testing.T) {
	tc := tracing.Context{TraceID: 0xdeadbeefcafe, SpanID: 42}
	msgs := []Message{
		Piece{Index: 3, RepaysKeyID: NoRepay, Data: []byte("payload"), Trace: tc},
		SealedPiece{Index: 9, KeyID: 123, Nonce: [16]byte{1}, Ciphertext: []byte{9},
			OriginID: 4, OriginAddr: "mem://a", Trace: tc},
		Attest{Att: attest.Attestation{Sender: 1, Receiver: 2, Scheme: attest.SchemeSession}, Trace: tc},
		AttestedReceipt{KeyID: 7, Att: attest.Attestation{Sender: 1, Receiver: 2}, Trace: tc},
	}
	for _, m := range msgs {
		frame, err := AppendFrame(nil, m)
		if err != nil {
			t.Fatalf("%T: %v", m, err)
		}
		got, err := Decode(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("%T: decode: %v", m, err)
		}
		var gotTC tracing.Context
		switch g := got.(type) {
		case Piece:
			gotTC = g.Trace
		case SealedPiece:
			gotTC = g.Trace
		case Attest:
			gotTC = g.Trace
		case AttestedReceipt:
			gotTC = g.Trace
		}
		if gotTC != tc {
			t.Fatalf("%T: trace context %+v, want %+v", m, gotTC, tc)
		}
	}
}

// TestUntracedFrameBytesUnchanged is the interop guarantee: a frame without
// a trace context encodes to exactly the base payload, with no trailing
// extension bytes an old peer would reject.
func TestUntracedFrameBytesUnchanged(t *testing.T) {
	traced, err := AppendFrame(nil, Piece{Index: 3, Data: []byte("xyz"),
		Trace: tracing.Context{TraceID: 1, SpanID: 2}})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := AppendFrame(nil, Piece{Index: 3, Data: []byte("xyz")})
	if err != nil {
		t.Fatal(err)
	}
	if len(traced) != len(plain)+traceExtWidth {
		t.Fatalf("traced frame is %d bytes, want plain %d + extension %d",
			len(traced), len(plain), traceExtWidth)
	}
	// Base payload: index (4) + repays (8) + data length (4) + data (3).
	if wantPayload := 19; len(plain) != headerSize+wantPayload {
		t.Fatalf("plain frame is %d bytes, want %d (extension bytes leaked in)",
			len(plain), headerSize+wantPayload)
	}
	got, err := Decode(bytes.NewReader(plain))
	if err != nil {
		t.Fatal(err)
	}
	if got.(Piece).Trace.Traced() {
		t.Fatal("plain frame decoded as traced")
	}
}

// TestTraceContextMalformedTrailers pins the strictness of the extension:
// trailing bytes that are not exactly one well-formed trace block stay
// malformed.
func TestTraceContextMalformedTrailers(t *testing.T) {
	base, err := AppendFrame(nil, Piece{Index: 1, Data: []byte("d")})
	if err != nil {
		t.Fatal(err)
	}
	grow := func(trailer []byte) []byte {
		f := append(append([]byte{}, base...), trailer...)
		f[3] += byte(len(trailer)) // patch the payload length (fits in one byte here)
		return f
	}
	cases := map[string][]byte{
		"wrong magic":         grow([]byte{0x55, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 2}),
		"truncated extension": grow([]byte{traceMagic, 0, 0, 0, 0, 0, 0, 0, 1}),
		"extra byte after":    grow([]byte{traceMagic, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 2, 0xff}),
	}
	for name, frame := range cases {
		if _, err := Decode(bytes.NewReader(frame)); err == nil {
			t.Fatalf("%s: decoded successfully, want malformed", name)
		}
	}
}
