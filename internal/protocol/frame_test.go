package protocol

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

// countingWriter records the number of Write calls, to pin EncodeTo's
// one-syscall-per-frame contract.
type countingWriter struct {
	writes int
	buf    bytes.Buffer
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	return w.buf.Write(p)
}

func TestEncodeToSingleWrite(t *testing.T) {
	w := &countingWriter{}
	msgs := []Message{
		Hello{PeerID: 1, NumPieces: 64, Addr: "mem://0"},
		Piece{Index: 5, RepaysKeyID: NoRepay, Data: make([]byte, 4096)},
		SealedPiece{Index: 2, KeyID: 9, Ciphertext: make([]byte, 1024), OriginAddr: "mem://1"},
		Bye{},
	}
	for i, m := range msgs {
		if err := EncodeTo(w, m); err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
		if w.writes != i+1 {
			t.Fatalf("%T took %d Write calls, want exactly one per frame", m, w.writes-i)
		}
	}
	for _, want := range msgs {
		got, err := Decode(&w.buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.MsgType() != want.MsgType() {
			t.Fatalf("decoded %v, want %v", got.MsgType(), want.MsgType())
		}
	}
}

func TestAppendFrameExtendsBuffer(t *testing.T) {
	// Frames append back to back and decode in order from one buffer.
	var buf []byte
	var err error
	for i := int32(0); i < 5; i++ {
		buf, err = AppendFrame(buf, Have{Index: i})
		if err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(buf)
	for i := int32(0); i < 5; i++ {
		m, err := Decode(r)
		if err != nil {
			t.Fatal(err)
		}
		if m.(Have).Index != i {
			t.Fatalf("frame %d decoded as %+v", i, m)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("%d bytes left over", r.Len())
	}
}

func TestAppendFrameErrorLeavesDstUnextended(t *testing.T) {
	prefix, err := AppendFrame(nil, Have{Index: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := len(prefix)
	out, err := AppendFrame(prefix, Piece{Data: make([]byte, MaxFrameSize)})
	if err == nil {
		t.Fatal("oversized frame accepted")
	}
	if len(out) != n {
		t.Fatalf("dst grew from %d to %d bytes on error", n, len(out))
	}
}

func TestDecoderStreamsFrames(t *testing.T) {
	var buf bytes.Buffer
	want := []Message{
		Hello{PeerID: 3, NumPieces: 16, Addr: "a"},
		Have{Index: 7},
		Piece{Index: 1, RepaysKeyID: NoRepay, Data: []byte("abc")},
		Bye{},
	}
	for _, m := range want {
		if err := EncodeTo(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewDecoder(&buf)
	for i, w := range want {
		got, err := dec.Decode()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if p, ok := got.(Piece); ok {
			// Normalize the zero-copy alias for comparison.
			p.Data = append([]byte(nil), p.Data...)
			got = p
		}
		if !reflect.DeepEqual(got, w) {
			t.Errorf("frame %d:\n got %#v\nwant %#v", i, got, w)
		}
	}
	if _, err := dec.Decode(); err != io.EOF {
		t.Errorf("after last frame err = %v, want io.EOF", err)
	}
}

func TestDecoderScratchReuse(t *testing.T) {
	// The zero-copy contract: a Piece's Data aliases decoder scratch and is
	// overwritten by the next Decode of an equal-or-smaller frame.
	var buf bytes.Buffer
	first := bytes.Repeat([]byte{0xAA}, 64)
	second := bytes.Repeat([]byte{0xBB}, 64)
	if err := EncodeTo(&buf, Piece{Index: 0, RepaysKeyID: NoRepay, Data: first}); err != nil {
		t.Fatal(err)
	}
	if err := EncodeTo(&buf, Piece{Index: 1, RepaysKeyID: NoRepay, Data: second}); err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(&buf)
	m1, err := dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	data1 := m1.(Piece).Data
	if !bytes.Equal(data1, first) {
		t.Fatal("first decode corrupted")
	}
	m2, err := dec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m2.(Piece).Data, second) {
		t.Fatal("second decode corrupted")
	}
	// data1 aliased the scratch, which the second Decode rewrote.
	if bytes.Equal(data1, first) {
		t.Error("scratch was not reused: first payload survived the next Decode (zero-copy contract not exercised)")
	}
}

func TestPackageDecodeOwnsStorage(t *testing.T) {
	// The one-shot Decode must return retainable storage even when frames
	// share a reader.
	var buf bytes.Buffer
	first := bytes.Repeat([]byte{0xAA}, 64)
	second := bytes.Repeat([]byte{0xBB}, 64)
	if err := EncodeTo(&buf, Piece{Index: 0, RepaysKeyID: NoRepay, Data: first}); err != nil {
		t.Fatal(err)
	}
	if err := EncodeTo(&buf, Piece{Index: 1, RepaysKeyID: NoRepay, Data: second}); err != nil {
		t.Fatal(err)
	}
	m1, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	data1 := m1.(Piece).Data
	if _, err := Decode(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data1, first) {
		t.Error("package-level Decode returned aliased storage")
	}
}

func TestEncodeToNReportsFrameSize(t *testing.T) {
	var buf bytes.Buffer
	n, err := EncodeToN(&buf, Piece{Index: 9, RepaysKeyID: NoRepay, Data: make([]byte, 512)})
	if err != nil {
		t.Fatal(err)
	}
	if n != buf.Len() {
		t.Errorf("EncodeToN = %d, wrote %d bytes", n, buf.Len())
	}
	dec := NewDecoder(&buf)
	if got := dec.LastFrameSize(); got != 0 {
		t.Errorf("LastFrameSize before first Decode = %d, want 0", got)
	}
	if _, err := dec.Decode(); err != nil {
		t.Fatal(err)
	}
	if got := dec.LastFrameSize(); got != n {
		t.Errorf("LastFrameSize = %d, want encoded size %d", got, n)
	}
}

// BenchmarkFrameRoundTrip drives the steady-state wire path — EncodeTo with
// a pooled frame buffer into a Decoder with reusable scratch — and is the
// allocs-per-frame guard scripts/check.sh pins: after warm-up, one
// piece-sized frame through encode+decode must not allocate.
func BenchmarkFrameRoundTrip(b *testing.B) {
	data := make([]byte, 8<<10)
	// Box the message once, outside the loop, as the node's send queue does:
	// the per-frame path under measurement is encode+decode, not interface
	// conversion at the call site.
	var msg Message = Piece{Index: 42, RepaysKeyID: NoRepay, Data: data}
	var buf bytes.Buffer
	dec := NewDecoder(&buf)
	// Warm the frame pool and decoder scratch to this frame size.
	if err := EncodeTo(&buf, msg); err != nil {
		b.Fatal(err)
	}
	if _, err := dec.Decode(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := EncodeTo(&buf, msg); err != nil {
			b.Fatal(err)
		}
		if _, err := dec.Decode(); err != nil {
			b.Fatal(err)
		}
	}
}
