// Package protocol defines the wire messages the live cooperative-exchange
// node (internal/node) speaks, and their binary framing.
//
// Frame layout: a 4-byte big-endian payload length, a 1-byte message type,
// then the payload. Payloads use fixed-width big-endian integers,
// length-prefixed byte strings, and raw bytes for piece data. The format is
// deliberately free of reflection and allocation-light: Decode reads exactly
// one frame and rejects oversized or malformed input.
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/attest"
	"repro/internal/tracing"
)

// MaxFrameSize bounds a frame payload (16 MiB): large enough for any
// realistic piece, small enough to stop a malicious peer from ballooning
// our memory.
const MaxFrameSize = 16 << 20

// AnyPeer is the wildcard peer ID in reciprocation demands: "any witness".
const AnyPeer int32 = -1

// Type tags a wire message.
type Type uint8

// The message types.
const (
	TypeHello Type = iota + 1
	TypeBitfield
	TypeHave
	TypePiece
	TypeSealedPiece
	TypeKey
	TypeReceipt
	TypeBye
	TypePing
	TypeFindNode
	TypeNodes
	TypeAnnounce
	TypeAttest
	TypeAttestedReceipt
	TypeAttestBatch
)

// String returns the type name.
func (t Type) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeBitfield:
		return "bitfield"
	case TypeHave:
		return "have"
	case TypePiece:
		return "piece"
	case TypeSealedPiece:
		return "sealed-piece"
	case TypeKey:
		return "key"
	case TypeReceipt:
		return "receipt"
	case TypeBye:
		return "bye"
	case TypePing:
		return "ping"
	case TypeFindNode:
		return "find-node"
	case TypeNodes:
		return "nodes"
	case TypeAnnounce:
		return "announce"
	case TypeAttest:
		return "attest"
	case TypeAttestedReceipt:
		return "attested-receipt"
	case TypeAttestBatch:
		return "attest-batch"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Message is one wire message.
type Message interface {
	// MsgType returns the frame type tag.
	MsgType() Type
}

// Hello opens a connection in both directions: who am I, how many pieces
// does the swarm's file have, and where can I be dialed. PubKey, when
// non-empty, is the sender's Ed25519 identity key; receivers pin it
// trust-on-first-use (attest.Directory.Observe) so the peer's transfer
// attestations can be verified. Empty means the peer runs unsigned.
type Hello struct {
	PeerID    int32
	NumPieces int32
	Addr      string
	PubKey    []byte
}

// Bitfield announces the complete set of held pieces.
type Bitfield struct {
	NumPieces int32
	Bits      []byte // ceil(NumPieces/8) bytes, LSB-first within each byte
}

// Have announces one newly acquired piece.
type Have struct {
	Index int32
}

// Piece delivers plaintext piece data. RepaysKeyID, when nonzero−1 (i.e.,
// not NoRepay), marks this upload as the direct reciprocation for a sealed
// piece the sender received earlier.
type Piece struct {
	Index       int32
	RepaysKeyID uint64 // NoRepay when this is an ordinary upload
	Data        []byte
	// Trace is the optional causal trace context (see the trace-context
	// frame extension in codec.go). The zero Context is untraced and adds
	// no wire bytes.
	Trace tracing.Context
}

// NoRepay is the RepaysKeyID value for ordinary (non-reciprocation) pieces.
const NoRepay uint64 = math.MaxUint64

// SealedPiece delivers an encrypted piece under T-Chain. Origin identifies
// the sealing peer (it travels with forwarded seals so the witness knows
// whom to notify).
type SealedPiece struct {
	Index      int32
	KeyID      uint64
	Nonce      [16]byte
	Ciphertext []byte
	OriginID   int32
	OriginAddr string
	// Forwarded marks a seal relayed by a newcomer as its indirect
	// reciprocation (the relayer cannot read it either).
	Forwarded bool
	// ForwarderID is the relaying peer for forwarded seals.
	ForwarderID int32
	// Trace is the optional causal trace context; zero means untraced.
	Trace tracing.Context
}

// Key releases the decryption key for an earlier SealedPiece.
type Key struct {
	KeyID uint64
	Index int32
	Key   [32]byte
}

// Receipt is the witness's confirmation to a seal's origin: "I received a
// reciprocation from From" — the trigger for key release (and the message a
// colluder forges in the paper's T-Chain collusion attack).
type Receipt struct {
	KeyID uint64
	From  int32
}

// Bye announces a graceful departure.
type Bye struct{}

// Ping is the discovery layer's liveness probe. A request (Ack false) asks
// the receiver to echo the Seq back with Ack set; any frame arriving on a
// connection refreshes its liveness, so the reply doubles as a keepalive.
type Ping struct {
	Seq uint32
	Ack bool
}

// FindNode asks a peer for the closest contacts it knows to Target (a
// Kademlia XOR-distance ID, see internal/discovery). Seq correlates the
// Nodes reply on connections multiplexing several lookups.
type FindNode struct {
	Seq    uint32
	Target uint64
}

// NodeInfo is one routable contact carried in a Nodes frame: a swarm node
// ID plus the address its listener can be dialed at.
type NodeInfo struct {
	ID   int32
	Addr string
}

// Nodes carries a contact list: the reply to a FindNode (echoing its Seq),
// or an unsolicited peer-exchange gossip frame (Seq 0) piggybacked on the
// handshake and on capacity redirects.
type Nodes struct {
	Seq      uint32
	Contacts []NodeInfo
}

// Announce gossips swarm membership: "node ID participates and listens at
// Addr". Seq increases with every re-announce by the origin so receivers
// can discard stale duplicates; TTL bounds how many hops a forwarded
// announce travels.
type Announce struct {
	ID   int32
	Addr string
	Seq  uint32
	TTL  uint8
}

// Attest carries a transfer attestation on piece delivery: the receiver's
// signed receipt ("you delivered piece Index to me"), sent back to the
// uploader so it holds spendable proof of its contribution. The receiver
// also submits the same attestation to its own reputation ledger — the
// frame is the sender's copy.
type Attest struct {
	Att attest.Attestation
	// Trace is the optional causal trace context; zero means untraced.
	Trace tracing.Context
}

// AttestBatch carries several coalesced Attest receipts in one frame. A
// busy downloader signs a receipt per piece; sending each as its own frame
// would wake the peer's writer and reader once per delivery, so pending
// receipts accumulate in the outbound queue and ride the next drain as a
// single frame. Semantically identical to that many Attest frames.
type AttestBatch struct {
	Atts []attest.Attestation
}

// AttestedReceipt is the verifiable replacement for Receipt on the T-Chain
// path: the witness's signed attestation that reciprocation for KeyID
// arrived from Att.Sender. The seal's origin verifies the witness signature
// before releasing the key, which is exactly the check whose absence the
// paper's T-Chain collusion attack (a forged Receipt frame) exploits.
type AttestedReceipt struct {
	KeyID uint64
	Att   attest.Attestation
	// Trace is the optional causal trace context; zero means untraced.
	Trace tracing.Context
}

// MsgType returns TypeHello.
func (Hello) MsgType() Type { return TypeHello }

// MsgType returns TypeBitfield.
func (Bitfield) MsgType() Type { return TypeBitfield }

// MsgType returns TypeHave.
func (Have) MsgType() Type { return TypeHave }

// MsgType returns TypePiece.
func (Piece) MsgType() Type { return TypePiece }

// MsgType returns TypeSealedPiece.
func (SealedPiece) MsgType() Type { return TypeSealedPiece }

// MsgType returns TypeKey.
func (Key) MsgType() Type { return TypeKey }

// MsgType returns TypeReceipt.
func (Receipt) MsgType() Type { return TypeReceipt }

// MsgType returns TypeBye.
func (Bye) MsgType() Type { return TypeBye }

// MsgType returns TypePing.
func (Ping) MsgType() Type { return TypePing }

// MsgType returns TypeFindNode.
func (FindNode) MsgType() Type { return TypeFindNode }

// MsgType returns TypeNodes.
func (Nodes) MsgType() Type { return TypeNodes }

// MsgType returns TypeAnnounce.
func (Announce) MsgType() Type { return TypeAnnounce }

// MsgType returns TypeAttest.
func (Attest) MsgType() Type { return TypeAttest }

// MsgType returns TypeAttestedReceipt.
func (AttestedReceipt) MsgType() Type { return TypeAttestedReceipt }

// MsgType returns TypeAttestBatch.
func (AttestBatch) MsgType() Type { return TypeAttestBatch }

// Errors returned by Decode.
var (
	ErrFrameTooLarge = errors.New("protocol: frame exceeds MaxFrameSize")
	ErrMalformed     = errors.New("protocol: malformed frame")
	ErrUnknownType   = errors.New("protocol: unknown message type")
)

// headerSize is the frame header length: a 4-byte payload length plus the
// 1-byte type tag.
const headerSize = 5

// framePool recycles frame-assembly buffers across EncodeTo calls, so the
// steady-state encode path performs zero per-frame allocations. Buffers
// grow to fit the largest frame they ever carried and are reused at that
// size.
var framePool = sync.Pool{New: func() any { b := make([]byte, 0, 1<<10); return &b }}

// AppendFrame appends one framed message (header plus payload) to dst and
// returns the extended buffer. The frame is assembled in place: the header
// is reserved first and patched once the payload length is known, so the
// whole frame is contiguous and can hit the wire in a single Write. On
// error, dst is returned unextended.
func AppendFrame(dst []byte, m Message) ([]byte, error) {
	head := len(dst)
	dst = append(dst, 0, 0, 0, 0, byte(m.MsgType()))
	dst, err := appendPayload(dst, m)
	if err != nil {
		return dst[:head], err
	}
	size := len(dst) - head - headerSize
	if size > MaxFrameSize {
		return dst[:head], ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(dst[head:], uint32(size))
	return dst, nil
}

// EncodeTo writes one framed message to w as a single Write call, using a
// pooled assembly buffer: header and payload are gathered into one
// contiguous frame first, so an unbuffered socket sees one syscall per
// frame and a buffered writer one copy, with no per-frame allocation.
func EncodeTo(w io.Writer, m Message) error {
	_, err := EncodeToN(w, m)
	return err
}

// EncodeToN is EncodeTo returning the encoded frame size in bytes (header
// plus payload) so instrumented transports can observe wire volume without
// wrapping w. On error the returned size is 0.
func EncodeToN(w io.Writer, m Message) (int, error) {
	bp := framePool.Get().(*[]byte)
	buf, err := AppendFrame((*bp)[:0], m)
	n := 0
	if err == nil {
		n = len(buf)
		if _, werr := w.Write(buf); werr != nil {
			err = fmt.Errorf("protocol: writing frame: %w", werr)
			n = 0
		}
	}
	*bp = buf[:0]
	framePool.Put(bp)
	return n, err
}

// Decoder reads framed messages from one stream through a reusable scratch
// buffer, so the steady-state decode path performs zero per-frame
// allocations. A Decoder is owned by a single reader goroutine (matching
// transport.Conn's Recv contract) and must not be shared.
//
// Zero-copy contract: the bulk byte fields of a returned message
// (Piece.Data, SealedPiece.Ciphertext, Bitfield.Bits) alias the decoder's
// scratch and are valid only until the next Decode call. Consume them
// before reading the next frame — handing piece data to piece.Store.Put,
// which verifies and copies, is the canonical zero-copy hand-off; the
// scratch is released for reuse simply by calling Decode again. Retaining a
// field past that point requires an explicit copy.
type Decoder struct {
	r       io.Reader
	scratch []byte
	// lastFrame is the wire size of the most recent successful Decode.
	lastFrame int
	// header lives in the Decoder (not a Decode local) so passing it to
	// io.ReadFull does not make it escape to a fresh heap allocation per
	// frame.
	header [headerSize]byte
}

// NewDecoder returns a Decoder reading from r.
func NewDecoder(r io.Reader) *Decoder { return &Decoder{r: r} }

// LastFrameSize returns the wire size in bytes (header plus payload) of the
// frame returned by the most recent successful Decode, or 0 before the
// first frame. Instrumented transports read it after each Decode to record
// inbound wire volume.
func (d *Decoder) LastFrameSize() int { return d.lastFrame }

// Decode reads one framed message. io.EOF passes through unwrapped for
// clean shutdown detection, exactly like the package-level Decode.
func (d *Decoder) Decode() (Message, error) {
	if _, err := io.ReadFull(d.r, d.header[:]); err != nil {
		return nil, err // io.EOF passes through for clean shutdown detection
	}
	size := binary.BigEndian.Uint32(d.header[:4])
	if size > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	if uint32(cap(d.scratch)) < size {
		d.scratch = make([]byte, size)
	}
	payload := d.scratch[:size]
	if _, err := io.ReadFull(d.r, payload); err != nil {
		return nil, fmt.Errorf("protocol: reading payload: %w", err)
	}
	m, err := unmarshalPayload(Type(d.header[4]), payload, true)
	if err == nil {
		d.lastFrame = headerSize + int(size)
	}
	return m, err
}

// Decode reads one framed message from r. Unlike Decoder.Decode, the
// returned message owns all its storage and may be retained indefinitely —
// the right call for one-shot or low-rate use; per-connection read loops
// should hold a Decoder instead.
func Decode(r io.Reader) (Message, error) {
	header := make([]byte, headerSize)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, err // io.EOF passes through for clean shutdown detection
	}
	size := binary.BigEndian.Uint32(header)
	if size > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("protocol: reading payload: %w", err)
	}
	return unmarshalPayload(Type(header[4]), payload, false)
}
