// Package protocol defines the wire messages the live cooperative-exchange
// node (internal/node) speaks, and their binary framing.
//
// Frame layout: a 4-byte big-endian payload length, a 1-byte message type,
// then the payload. Payloads use fixed-width big-endian integers,
// length-prefixed byte strings, and raw bytes for piece data. The format is
// deliberately free of reflection and allocation-light: Decode reads exactly
// one frame and rejects oversized or malformed input.
package protocol

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// MaxFrameSize bounds a frame payload (16 MiB): large enough for any
// realistic piece, small enough to stop a malicious peer from ballooning
// our memory.
const MaxFrameSize = 16 << 20

// AnyPeer is the wildcard peer ID in reciprocation demands: "any witness".
const AnyPeer int32 = -1

// Type tags a wire message.
type Type uint8

// The message types.
const (
	TypeHello Type = iota + 1
	TypeBitfield
	TypeHave
	TypePiece
	TypeSealedPiece
	TypeKey
	TypeReceipt
	TypeBye
)

// String returns the type name.
func (t Type) String() string {
	switch t {
	case TypeHello:
		return "hello"
	case TypeBitfield:
		return "bitfield"
	case TypeHave:
		return "have"
	case TypePiece:
		return "piece"
	case TypeSealedPiece:
		return "sealed-piece"
	case TypeKey:
		return "key"
	case TypeReceipt:
		return "receipt"
	case TypeBye:
		return "bye"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Message is one wire message.
type Message interface {
	// MsgType returns the frame type tag.
	MsgType() Type
}

// Hello opens a connection in both directions: who am I, how many pieces
// does the swarm's file have, and where can I be dialed.
type Hello struct {
	PeerID    int32
	NumPieces int32
	Addr      string
}

// Bitfield announces the complete set of held pieces.
type Bitfield struct {
	NumPieces int32
	Bits      []byte // ceil(NumPieces/8) bytes, LSB-first within each byte
}

// Have announces one newly acquired piece.
type Have struct {
	Index int32
}

// Piece delivers plaintext piece data. RepaysKeyID, when nonzero−1 (i.e.,
// not NoRepay), marks this upload as the direct reciprocation for a sealed
// piece the sender received earlier.
type Piece struct {
	Index       int32
	RepaysKeyID uint64 // NoRepay when this is an ordinary upload
	Data        []byte
}

// NoRepay is the RepaysKeyID value for ordinary (non-reciprocation) pieces.
const NoRepay uint64 = math.MaxUint64

// SealedPiece delivers an encrypted piece under T-Chain. Origin identifies
// the sealing peer (it travels with forwarded seals so the witness knows
// whom to notify).
type SealedPiece struct {
	Index      int32
	KeyID      uint64
	Nonce      [16]byte
	Ciphertext []byte
	OriginID   int32
	OriginAddr string
	// Forwarded marks a seal relayed by a newcomer as its indirect
	// reciprocation (the relayer cannot read it either).
	Forwarded bool
	// ForwarderID is the relaying peer for forwarded seals.
	ForwarderID int32
}

// Key releases the decryption key for an earlier SealedPiece.
type Key struct {
	KeyID uint64
	Index int32
	Key   [32]byte
}

// Receipt is the witness's confirmation to a seal's origin: "I received a
// reciprocation from From" — the trigger for key release (and the message a
// colluder forges in the paper's T-Chain collusion attack).
type Receipt struct {
	KeyID uint64
	From  int32
}

// Bye announces a graceful departure.
type Bye struct{}

// MsgType returns TypeHello.
func (Hello) MsgType() Type { return TypeHello }

// MsgType returns TypeBitfield.
func (Bitfield) MsgType() Type { return TypeBitfield }

// MsgType returns TypeHave.
func (Have) MsgType() Type { return TypeHave }

// MsgType returns TypePiece.
func (Piece) MsgType() Type { return TypePiece }

// MsgType returns TypeSealedPiece.
func (SealedPiece) MsgType() Type { return TypeSealedPiece }

// MsgType returns TypeKey.
func (Key) MsgType() Type { return TypeKey }

// MsgType returns TypeReceipt.
func (Receipt) MsgType() Type { return TypeReceipt }

// MsgType returns TypeBye.
func (Bye) MsgType() Type { return TypeBye }

// Errors returned by Decode.
var (
	ErrFrameTooLarge = errors.New("protocol: frame exceeds MaxFrameSize")
	ErrMalformed     = errors.New("protocol: malformed frame")
	ErrUnknownType   = errors.New("protocol: unknown message type")
)

// Encode writes one framed message to w.
func Encode(w io.Writer, m Message) error {
	payload, err := marshalPayload(m)
	if err != nil {
		return err
	}
	if len(payload) > MaxFrameSize {
		return ErrFrameTooLarge
	}
	header := make([]byte, 5)
	binary.BigEndian.PutUint32(header, uint32(len(payload)))
	header[4] = byte(m.MsgType())
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("protocol: writing header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("protocol: writing payload: %w", err)
	}
	return nil
}

// Decode reads one framed message from r.
func Decode(r io.Reader) (Message, error) {
	header := make([]byte, 5)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, err // io.EOF passes through for clean shutdown detection
	}
	size := binary.BigEndian.Uint32(header)
	if size > MaxFrameSize {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, size)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("protocol: reading payload: %w", err)
	}
	return unmarshalPayload(Type(header[4]), payload)
}
