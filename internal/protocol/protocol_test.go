package protocol

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/attest"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeTo(&buf, m); err != nil {
		t.Fatalf("encode %T: %v", m, err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode %T: %v", m, err)
	}
	if buf.Len() != 0 {
		t.Fatalf("%d bytes left after one frame", buf.Len())
	}
	return got
}

func TestRoundTripAllTypes(t *testing.T) {
	msgs := []Message{
		Hello{PeerID: 7, NumPieces: 512, Addr: "127.0.0.1:9000"},
		Hello{PeerID: 8, NumPieces: 512, Addr: "127.0.0.1:9001", PubKey: bytes.Repeat([]byte{0xb7}, 32)},
		Bitfield{NumPieces: 12, Bits: []byte{0xff, 0x0f}},
		Have{Index: 42},
		Piece{Index: 3, RepaysKeyID: NoRepay, Data: []byte("payload")},
		Piece{Index: 3, RepaysKeyID: 77, Data: nil},
		SealedPiece{
			Index: 9, KeyID: 123,
			Nonce:      [16]byte{1, 2, 3},
			Ciphertext: []byte{9, 9, 9},
			OriginID:   4, OriginAddr: "mem://a",
			Forwarded: true, ForwarderID: 5,
		},
		Key{KeyID: 55, Index: 2, Key: [32]byte{0xaa}},
		Receipt{KeyID: 55, From: 4},
		Bye{},
		Ping{Seq: 17, Ack: true},
		FindNode{Seq: 18, Target: 0xdeadbeefcafe},
		Nodes{Seq: 18, Contacts: []NodeInfo{{ID: 3, Addr: "mem://3"}, {ID: 9, Addr: "127.0.0.1:9000"}}},
		Nodes{Seq: 0},
		Announce{ID: 12, Addr: "mem://12", Seq: 4, TTL: 2},
		Attest{Att: attest.Attestation{
			Sender: 3, Receiver: 4, Index: 11,
			Hash:  [32]byte{0xde, 0xad},
			Bytes: 4096, Seq: 9,
			Scheme: attest.SchemeEd25519,
			Sig:    [64]byte{0x01, 0x02},
		}},
		AttestedReceipt{KeyID: 77, Att: attest.Attestation{
			Sender: 5, Receiver: 6, Index: 0,
			Bytes: 1024, Seq: 1,
			Scheme: attest.SchemeSession,
			Sig:    [64]byte{0xfe},
		}},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		want := m
		// nil vs empty slices normalize to empty on decode.
		if p, ok := want.(Piece); ok && p.Data == nil {
			p.Data = []byte{}
			want = p
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip %T:\n got %#v\nwant %#v", m, got, want)
		}
		if got.MsgType() != m.MsgType() {
			t.Errorf("%T type = %v", m, got.MsgType())
		}
	}
}

func TestTypeStrings(t *testing.T) {
	for _, tt := range []Type{TypeHello, TypeBitfield, TypeHave, TypePiece, TypeSealedPiece, TypeKey, TypeReceipt, TypeBye, TypePing, TypeFindNode, TypeNodes, TypeAnnounce, TypeAttest, TypeAttestedReceipt} {
		if s := tt.String(); s == "" || strings.HasPrefix(s, "type(") {
			t.Errorf("type %d has no name: %q", tt, s)
		}
	}
	if Type(200).String() != "type(200)" {
		t.Error("unknown type string wrong")
	}
}

func TestDecodeRejectsUnknownType(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0, 99}) // empty payload, type 99
	if _, err := Decode(&buf); !errors.Is(err, ErrUnknownType) {
		t.Errorf("err = %v, want ErrUnknownType", err)
	}
}

func TestDecodeRejectsOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, byte(TypeBye)})
	if _, err := Decode(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	var buf bytes.Buffer
	// Have payload is 4 bytes; declare 8.
	buf.Write([]byte{0, 0, 0, 8, byte(TypeHave)})
	buf.Write(make([]byte, 8))
	if _, err := Decode(&buf); !errors.Is(err, ErrMalformed) {
		t.Errorf("err = %v, want ErrMalformed", err)
	}
}

func TestDecodeRejectsTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	// Piece with a data length pointing past the payload end.
	buf.Write([]byte{0, 0, 0, 16, byte(TypePiece)})
	payload := make([]byte, 16)
	payload[15] = 0xff // data length claims 255 bytes, none present
	buf.Write(payload)
	if _, err := Decode(&buf); err == nil {
		t.Error("truncated piece accepted")
	}
}

func TestDecodeEOFPassesThrough(t *testing.T) {
	if _, err := Decode(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Errorf("err = %v, want io.EOF", err)
	}
}

func TestEncodeRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	big := Piece{Index: 0, RepaysKeyID: NoRepay, Data: make([]byte, MaxFrameSize)}
	if err := EncodeTo(&buf, big); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestMultipleFramesSequential(t *testing.T) {
	var buf bytes.Buffer
	for i := int32(0); i < 10; i++ {
		if err := EncodeTo(&buf, Have{Index: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := int32(0); i < 10; i++ {
		m, err := Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if m.(Have).Index != i {
			t.Fatalf("frame %d = %+v", i, m)
		}
	}
}

func TestPieceRoundTripProperty(t *testing.T) {
	f := func(index int32, keyID uint64, data []byte) bool {
		var buf bytes.Buffer
		if err := EncodeTo(&buf, Piece{Index: index, RepaysKeyID: keyID, Data: data}); err != nil {
			return len(data) > MaxFrameSize-64
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		p, ok := got.(Piece)
		return ok && p.Index == index && p.RepaysKeyID == keyID && bytes.Equal(p.Data, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeFuzzDoesNotPanic(t *testing.T) {
	// Arbitrary garbage must produce errors, never panics.
	f := func(raw []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %x: %v", raw, r)
			}
		}()
		_, _ = Decode(bytes.NewReader(raw))
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
