package protocol

import (
	"encoding/binary"
	"fmt"

	"repro/internal/attest"
	"repro/internal/tracing"
)

// Trace-context frame extension. Data-path frames (Piece, SealedPiece,
// Attest, AttestedReceipt) may carry a trailing 17-byte block — one magic
// byte, then the 8-byte trace ID and 8-byte causing-span ID — after their
// base payload. The block is appended only for traced frames, so the
// untraced wire format is byte-identical to the pre-extension format, and
// decoders that predate the extension reject nothing new (they never see
// it). Decoders that know the extension recognize exactly this trailing
// shape; any other trailing bytes remain malformed.
const (
	traceMagic    = 0x54 // 'T'
	traceExtWidth = 1 + 8 + 8
)

// traceContext appends the trace-context extension for a traced context
// and nothing for an untraced one.
func (w *writer) traceContext(c tracing.Context) {
	if !c.Traced() {
		return
	}
	w.u8(traceMagic)
	w.u64(c.TraceID)
	w.u64(c.SpanID)
}

// traceContext consumes a trailing trace-context extension if and only if
// the remaining payload is exactly one: absent means untraced, and
// malformed trailers are left for done() to reject.
func (r *reader) traceContext() (c tracing.Context) {
	if r.err != nil || len(r.buf) != traceExtWidth || r.buf[0] != traceMagic {
		return
	}
	r.u8()
	c.TraceID = r.u64()
	c.SpanID = r.u64()
	return
}

// writer appends big-endian primitives to a caller-provided buffer. It is
// allocation-free apart from the append growth of the buffer itself, which
// pooled callers amortize to zero.
type writer struct{ buf []byte }

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *writer) i32(v int32)  { w.u32(uint32(v)) }
func (w *writer) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}
func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *writer) boolean(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

// reader consumes big-endian primitives from a buffer; the first error
// sticks so call sites can decode unconditionally and check once. With
// zeroCopy set, variable-length byte fields are returned as subslices of
// the payload instead of fresh copies — the Decoder uses this so bulk
// piece data flows from its scratch buffer straight into a verifying
// consumer (piece.Store.Put) without an intermediate allocation.
type reader struct {
	buf      []byte
	err      error
	zeroCopy bool
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf) < n {
		r.err = ErrMalformed
		return nil
	}
	out := r.buf[:n]
	r.buf = r.buf[n:]
	return out
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *reader) i32() int32 { return int32(r.u32()) }

func (r *reader) bytes() []byte {
	n := r.u32()
	if r.err != nil {
		return nil
	}
	if uint64(n) > uint64(len(r.buf)) {
		r.err = ErrMalformed
		return nil
	}
	raw := r.take(int(n))
	if r.zeroCopy {
		return raw
	}
	out := make([]byte, len(raw))
	copy(out, raw)
	return out
}

func (r *reader) str() string {
	// Strings are always materialized (string conversion copies), so the
	// zero-copy mode never leaks scratch storage through an address field.
	n := r.u32()
	if r.err != nil {
		return ""
	}
	if uint64(n) > uint64(len(r.buf)) {
		r.err = ErrMalformed
		return ""
	}
	return string(r.take(int(n)))
}

func (r *reader) boolean() bool { return r.u8() != 0 }

// attestationWireSize is the fixed wire width of one attestation: the
// canonical signed fields (sender, receiver, index, hash, bytes, seq,
// scheme) plus the signature.
const attestationWireSize = 4 + 4 + 4 + 32 + 8 + 8 + 1 + attest.SigSize

// attestation appends an attestation's wire form: every canonical field in
// canonical order, then the signature. Fixed-width throughout.
func (w *writer) attestation(a *attest.Attestation) {
	w.buf = a.AppendCanonical(w.buf)
	w.buf = append(w.buf, a.Sig[:]...)
}

// attestation consumes an attestation's wire form.
func (r *reader) attestation() attest.Attestation {
	a := attest.Attestation{
		Sender:   r.i32(),
		Receiver: r.i32(),
		Index:    r.i32(),
	}
	copy(a.Hash[:], r.take(len(a.Hash)))
	a.Bytes = int64(r.u64())
	a.Seq = r.u64()
	a.Scheme = attest.Scheme(r.u8())
	copy(a.Sig[:], r.take(len(a.Sig)))
	return a
}

// done verifies the payload was consumed exactly.
func (r *reader) done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(r.buf))
	}
	return nil
}

// appendPayload appends m's payload encoding to dst and returns the
// extended buffer.
func appendPayload(dst []byte, m Message) ([]byte, error) {
	w := writer{buf: dst}
	switch msg := m.(type) {
	case Hello:
		w.i32(msg.PeerID)
		w.i32(msg.NumPieces)
		w.str(msg.Addr)
		w.bytes(msg.PubKey)
	case Bitfield:
		w.i32(msg.NumPieces)
		w.bytes(msg.Bits)
	case Have:
		w.i32(msg.Index)
	case Piece:
		w.i32(msg.Index)
		w.u64(msg.RepaysKeyID)
		w.bytes(msg.Data)
		w.traceContext(msg.Trace)
	case SealedPiece:
		w.i32(msg.Index)
		w.u64(msg.KeyID)
		w.buf = append(w.buf, msg.Nonce[:]...)
		w.bytes(msg.Ciphertext)
		w.i32(msg.OriginID)
		w.str(msg.OriginAddr)
		w.boolean(msg.Forwarded)
		w.i32(msg.ForwarderID)
		w.traceContext(msg.Trace)
	case Key:
		w.u64(msg.KeyID)
		w.i32(msg.Index)
		w.buf = append(w.buf, msg.Key[:]...)
	case Receipt:
		w.u64(msg.KeyID)
		w.i32(msg.From)
	case Bye:
		// empty payload
	case Ping:
		w.u32(msg.Seq)
		w.boolean(msg.Ack)
	case FindNode:
		w.u32(msg.Seq)
		w.u64(msg.Target)
	case Nodes:
		w.u32(msg.Seq)
		w.u32(uint32(len(msg.Contacts)))
		for _, c := range msg.Contacts {
			w.i32(c.ID)
			w.str(c.Addr)
		}
	case Announce:
		w.i32(msg.ID)
		w.str(msg.Addr)
		w.u32(msg.Seq)
		w.u8(msg.TTL)
	case Attest:
		w.attestation(&msg.Att)
		w.traceContext(msg.Trace)
	case AttestedReceipt:
		w.u64(msg.KeyID)
		w.attestation(&msg.Att)
		w.traceContext(msg.Trace)
	case AttestBatch:
		w.u32(uint32(len(msg.Atts)))
		for i := range msg.Atts {
			w.attestation(&msg.Atts[i])
		}
	default:
		return dst, fmt.Errorf("protocol: cannot marshal %T", m)
	}
	return w.buf, nil
}

// unmarshalPayload decodes one payload. With zeroCopy set, the returned
// message's bulk byte fields (Piece.Data, SealedPiece.Ciphertext,
// Bitfield.Bits) alias payload.
func unmarshalPayload(t Type, payload []byte, zeroCopy bool) (Message, error) {
	r := &reader{buf: payload, zeroCopy: zeroCopy}
	var m Message
	switch t {
	case TypeHello:
		msg := Hello{PeerID: r.i32(), NumPieces: r.i32(), Addr: r.str()}
		// PubKey outlives the frame (it is pinned in a directory), so it is
		// always materialized rather than aliasing the decode scratch.
		if pk := r.bytes(); len(pk) > 0 {
			msg.PubKey = append([]byte(nil), pk...)
		}
		m = msg
	case TypeBitfield:
		msg := Bitfield{NumPieces: r.i32(), Bits: r.bytes()}
		m = msg
	case TypeHave:
		m = Have{Index: r.i32()}
	case TypePiece:
		m = Piece{Index: r.i32(), RepaysKeyID: r.u64(), Data: r.bytes(), Trace: r.traceContext()}
	case TypeSealedPiece:
		msg := SealedPiece{Index: r.i32(), KeyID: r.u64()}
		copy(msg.Nonce[:], r.take(len(msg.Nonce)))
		msg.Ciphertext = r.bytes()
		msg.OriginID = r.i32()
		msg.OriginAddr = r.str()
		msg.Forwarded = r.boolean()
		msg.ForwarderID = r.i32()
		msg.Trace = r.traceContext()
		m = msg
	case TypeKey:
		msg := Key{KeyID: r.u64(), Index: r.i32()}
		copy(msg.Key[:], r.take(len(msg.Key)))
		m = msg
	case TypeReceipt:
		m = Receipt{KeyID: r.u64(), From: r.i32()}
	case TypeBye:
		m = Bye{}
	case TypePing:
		m = Ping{Seq: r.u32(), Ack: r.boolean()}
	case TypeFindNode:
		m = FindNode{Seq: r.u32(), Target: r.u64()}
	case TypeNodes:
		msg := Nodes{Seq: r.u32()}
		count := r.u32()
		// Each contact costs at least 8 bytes (ID + address length), so a
		// count beyond the remaining payload is malformed — reject before
		// allocating the slice a forged header asks for.
		if r.err == nil && uint64(count)*8 > uint64(len(r.buf)) {
			r.err = ErrMalformed
		}
		if r.err == nil && count > 0 {
			msg.Contacts = make([]NodeInfo, 0, count)
			for i := uint32(0); i < count; i++ {
				msg.Contacts = append(msg.Contacts, NodeInfo{ID: r.i32(), Addr: r.str()})
			}
		}
		m = msg
	case TypeAnnounce:
		m = Announce{ID: r.i32(), Addr: r.str(), Seq: r.u32(), TTL: r.u8()}
	case TypeAttest:
		m = Attest{Att: r.attestation(), Trace: r.traceContext()}
	case TypeAttestedReceipt:
		m = AttestedReceipt{KeyID: r.u64(), Att: r.attestation(), Trace: r.traceContext()}
	case TypeAttestBatch:
		msg := AttestBatch{}
		count := r.u32()
		// Every attestation is fixed-width on the wire, so a count that
		// overruns the remaining payload is malformed — reject before
		// allocating the slice a forged header asks for.
		if r.err == nil && uint64(count)*attestationWireSize > uint64(len(r.buf)) {
			r.err = ErrMalformed
		}
		if r.err == nil && count > 0 {
			msg.Atts = make([]attest.Attestation, 0, count)
			for i := uint32(0); i < count; i++ {
				msg.Atts = append(msg.Atts, r.attestation())
			}
		}
		m = msg
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, uint8(t))
	}
	if err := r.done(); err != nil {
		return nil, fmt.Errorf("decoding %v: %w", t, err)
	}
	return m, nil
}
