package protocol

import (
	"bytes"
	"testing"

	"repro/internal/attest"
	"repro/internal/tracing"
)

// FuzzDecode feeds raw byte streams to both decode paths. Invariants:
// neither path may panic, both must agree on success/failure and on the
// decoded message type, and any successfully decoded message must survive
// an encode→decode round trip (the codec is self-consistent on everything
// it accepts).
func FuzzDecode(f *testing.F) {
	// Seed with one valid frame of every message type...
	seeds := []Message{
		Hello{PeerID: 7, NumPieces: 512, Addr: "127.0.0.1:9000"},
		Hello{PeerID: 8, NumPieces: 512, Addr: "127.0.0.1:9001", PubKey: bytes.Repeat([]byte{0xb7}, 32)},
		Bitfield{NumPieces: 12, Bits: []byte{0xff, 0x0f}},
		Have{Index: 42},
		Piece{Index: 3, RepaysKeyID: NoRepay, Data: []byte("payload")},
		// The trace-context frame extension: a trailing 17-byte block on
		// data-path frames.
		Piece{Index: 3, RepaysKeyID: NoRepay, Data: []byte("payload"),
			Trace: tracing.Context{TraceID: 0xab54a98ceb1f0ad2, SpanID: 0x1122334455667788}},
		SealedPiece{
			Index: 10, KeyID: 124,
			Nonce:      [16]byte{4, 5, 6},
			Ciphertext: []byte{7, 7},
			OriginID:   4, OriginAddr: "mem://a",
			Trace: tracing.Context{TraceID: 2, SpanID: 3},
		},
		Attest{Att: attest.Attestation{
			Sender: 3, Receiver: 4, Index: 11,
			Scheme: attest.SchemeSession,
		}, Trace: tracing.Context{TraceID: 9, SpanID: 10}},
		AttestedReceipt{KeyID: 78, Att: attest.Attestation{
			Sender: 5, Receiver: 6,
			Scheme: attest.SchemeSession,
		}, Trace: tracing.Context{TraceID: 11, SpanID: 12}},
		SealedPiece{
			Index: 9, KeyID: 123,
			Nonce:      [16]byte{1, 2, 3},
			Ciphertext: []byte{9, 9, 9},
			OriginID:   4, OriginAddr: "mem://a",
			Forwarded: true, ForwarderID: 5,
		},
		Key{KeyID: 55, Index: 2, Key: [32]byte{0xaa}},
		Receipt{KeyID: 55, From: 4},
		Bye{},
		Ping{Seq: 17, Ack: true},
		FindNode{Seq: 18, Target: 0xdeadbeefcafe},
		Nodes{Seq: 18, Contacts: []NodeInfo{{ID: 3, Addr: "mem://3"}}},
		Announce{ID: 12, Addr: "mem://12", Seq: 4, TTL: 2},
		Attest{Att: attest.Attestation{
			Sender: 3, Receiver: 4, Index: 11,
			Hash:  [32]byte{0xde, 0xad},
			Bytes: 4096, Seq: 9,
			Scheme: attest.SchemeEd25519,
			Sig:    [64]byte{0x01, 0x02},
		}},
		AttestedReceipt{KeyID: 77, Att: attest.Attestation{
			Sender: 5, Receiver: 6,
			Bytes: 1024, Seq: 1,
			Scheme: attest.SchemeSession,
			Sig:    [64]byte{0xfe},
		}},
	}
	for _, m := range seeds {
		frame, err := AppendFrame(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	// ...and known malformed shapes: unknown type, oversized length,
	// trailing bytes, truncated string length.
	f.Add([]byte{0, 0, 0, 0, 99})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, byte(TypeBye)})
	f.Add(append([]byte{0, 0, 0, 8, byte(TypeHave)}, make([]byte, 8)...))
	f.Add([]byte{0, 0, 0, 2, byte(TypeHello), 0x01, 0x02})
	// A Piece with 17 trailing bytes that are NOT the trace extension (wrong
	// magic) and one with a truncated extension (16 bytes) — both malformed.
	badTrail := append([]byte{0, 0, 0, 33, byte(TypePiece)},
		0, 0, 0, 1, // index
		0, 0, 0, 0, 0, 0, 0, 0, // repays
		0, 0, 0, 0) // empty data
	f.Add(append(append([]byte{}, badTrail...), 0x55, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 2))
	short := append([]byte{}, badTrail...)
	short[3] = 32 // 16 trailing bytes: magic + trace ID + truncated span ID
	f.Add(append(short, traceMagic, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 3))

	f.Fuzz(func(t *testing.T, raw []byte) {
		oneShot, errOne := Decode(bytes.NewReader(raw))
		streamed, errStream := NewDecoder(bytes.NewReader(raw)).Decode()
		if (errOne == nil) != (errStream == nil) {
			t.Fatalf("paths disagree: Decode err=%v, Decoder err=%v", errOne, errStream)
		}
		if errOne != nil {
			return
		}
		if oneShot.MsgType() != streamed.MsgType() {
			t.Fatalf("paths decoded different types: %v vs %v", oneShot.MsgType(), streamed.MsgType())
		}
		// Round-trip stability: re-encoding an accepted message and decoding
		// it again must succeed and preserve the wire bytes' meaning.
		reframed, err := AppendFrame(nil, oneShot)
		if err != nil {
			t.Fatalf("re-encode of accepted %T failed: %v", oneShot, err)
		}
		again, err := Decode(bytes.NewReader(reframed))
		if err != nil {
			t.Fatalf("re-decode of accepted %T failed: %v", oneShot, err)
		}
		if again.MsgType() != oneShot.MsgType() {
			t.Fatalf("round trip changed type: %v -> %v", oneShot.MsgType(), again.MsgType())
		}
	})
}
