package protocol

import (
	"bytes"
	"testing"

	"repro/internal/attest"
)

// FuzzDecode feeds raw byte streams to both decode paths. Invariants:
// neither path may panic, both must agree on success/failure and on the
// decoded message type, and any successfully decoded message must survive
// an encode→decode round trip (the codec is self-consistent on everything
// it accepts).
func FuzzDecode(f *testing.F) {
	// Seed with one valid frame of every message type...
	seeds := []Message{
		Hello{PeerID: 7, NumPieces: 512, Addr: "127.0.0.1:9000"},
		Hello{PeerID: 8, NumPieces: 512, Addr: "127.0.0.1:9001", PubKey: bytes.Repeat([]byte{0xb7}, 32)},
		Bitfield{NumPieces: 12, Bits: []byte{0xff, 0x0f}},
		Have{Index: 42},
		Piece{Index: 3, RepaysKeyID: NoRepay, Data: []byte("payload")},
		SealedPiece{
			Index: 9, KeyID: 123,
			Nonce:      [16]byte{1, 2, 3},
			Ciphertext: []byte{9, 9, 9},
			OriginID:   4, OriginAddr: "mem://a",
			Forwarded: true, ForwarderID: 5,
		},
		Key{KeyID: 55, Index: 2, Key: [32]byte{0xaa}},
		Receipt{KeyID: 55, From: 4},
		Bye{},
		Ping{Seq: 17, Ack: true},
		FindNode{Seq: 18, Target: 0xdeadbeefcafe},
		Nodes{Seq: 18, Contacts: []NodeInfo{{ID: 3, Addr: "mem://3"}}},
		Announce{ID: 12, Addr: "mem://12", Seq: 4, TTL: 2},
		Attest{Att: attest.Attestation{
			Sender: 3, Receiver: 4, Index: 11,
			Hash:  [32]byte{0xde, 0xad},
			Bytes: 4096, Seq: 9,
			Scheme: attest.SchemeEd25519,
			Sig:    [64]byte{0x01, 0x02},
		}},
		AttestedReceipt{KeyID: 77, Att: attest.Attestation{
			Sender: 5, Receiver: 6,
			Bytes: 1024, Seq: 1,
			Scheme: attest.SchemeSession,
			Sig:    [64]byte{0xfe},
		}},
	}
	for _, m := range seeds {
		frame, err := AppendFrame(nil, m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	// ...and known malformed shapes: unknown type, oversized length,
	// trailing bytes, truncated string length.
	f.Add([]byte{0, 0, 0, 0, 99})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, byte(TypeBye)})
	f.Add(append([]byte{0, 0, 0, 8, byte(TypeHave)}, make([]byte, 8)...))
	f.Add([]byte{0, 0, 0, 2, byte(TypeHello), 0x01, 0x02})

	f.Fuzz(func(t *testing.T, raw []byte) {
		oneShot, errOne := Decode(bytes.NewReader(raw))
		streamed, errStream := NewDecoder(bytes.NewReader(raw)).Decode()
		if (errOne == nil) != (errStream == nil) {
			t.Fatalf("paths disagree: Decode err=%v, Decoder err=%v", errOne, errStream)
		}
		if errOne != nil {
			return
		}
		if oneShot.MsgType() != streamed.MsgType() {
			t.Fatalf("paths decoded different types: %v vs %v", oneShot.MsgType(), streamed.MsgType())
		}
		// Round-trip stability: re-encoding an accepted message and decoding
		// it again must succeed and preserve the wire bytes' meaning.
		reframed, err := AppendFrame(nil, oneShot)
		if err != nil {
			t.Fatalf("re-encode of accepted %T failed: %v", oneShot, err)
		}
		again, err := Decode(bytes.NewReader(reframed))
		if err != nil {
			t.Fatalf("re-decode of accepted %T failed: %v", oneShot, err)
		}
		if again.MsgType() != oneShot.MsgType() {
			t.Fatalf("round trip changed type: %v -> %v", oneShot.MsgType(), again.MsgType())
		}
	})
}
