package sim

import (
	"fmt"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/algo"
	"repro/internal/attack"
	"repro/internal/probe"
)

// TestSimulationInvariantsProperty drives many small randomized scenarios
// through the simulator and checks the invariants that must hold for every
// configuration:
//
//  1. bytes are conserved: credited ≤ raw received ≤ total uploaded,
//  2. a finished peer downloaded exactly the file size,
//  3. susceptibility lies in [0, 1] and is 0 without free-riders,
//  4. bootstrap precedes finish for every peer,
//  5. the monotone series never decrease.
func TestSimulationInvariantsProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test runs many simulations")
	}
	f := func(seed int64, algoPick, frPick, atkPick uint8) bool {
		algorithms := append(algo.All(), algo.PropShare)
		a := algorithms[int(algoPick)%len(algorithms)]
		cfg := Default(a, 40, 16)
		cfg.Seed = seed
		cfg.Horizon = 400
		cfg.MaxNeighbors = 12
		if frPick%3 == 0 {
			cfg.FreeRiderFraction = 0.2
			kinds := []attack.Kind{attack.Passive, attack.Collusion, attack.Whitewash, attack.FalsePraise}
			cfg.Attack = attack.Plan{Kind: kinds[int(atkPick)%len(kinds)]}
			if atkPick%2 == 0 {
				cfg.Attack = cfg.Attack.WithLargeView()
			}
		}
		swarm, err := NewSwarm(cfg)
		if err != nil {
			t.Logf("config rejected: %v", err)
			return false
		}
		res, err := swarm.Run()
		if err != nil {
			t.Logf("run failed: %v", err)
			return false
		}

		var raw, credited float64
		for _, p := range res.Peers {
			raw += p.RawDown
			credited += p.Downloaded
			if p.Downloaded > p.RawDown+1e-6 {
				t.Logf("peer %d credited more than received", p.ID)
				return false
			}
			if p.FinishAt >= 0 {
				if math.Abs(p.Downloaded-cfg.FileSize()) > 1e-6 {
					t.Logf("peer %d finished with %g bytes", p.ID, p.Downloaded)
					return false
				}
				if p.BootstrapAt < 0 || p.BootstrapAt > p.FinishAt {
					t.Logf("peer %d finished before bootstrapping", p.ID)
					return false
				}
			}
		}
		if raw > res.TotalUploaded+1e-6 {
			t.Logf("received %g > uploaded %g", raw, res.TotalUploaded)
			return false
		}
		susc := res.Susceptibility()
		if susc < 0 || susc > 1 {
			t.Logf("susceptibility %g out of range", susc)
			return false
		}
		if cfg.FreeRiderFraction == 0 && susc != 0 {
			t.Logf("susceptibility %g without free-riders", susc)
			return false
		}
		for _, name := range []string{SeriesBootstrapped, SeriesCompleted} {
			pts := res.Series[name].Points
			for i := 1; i < len(pts); i++ {
				if pts[i].V < pts[i-1].V-1e-12 {
					t.Logf("series %s decreased", name)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// checkInterestIndex recomputes every interest-index invariant from the
// bitfields alone (the naive ground truth) and reports the first divergence.
// See interest.go for the invariant list. It reads but never mutates swarm
// state, and draws nothing from the RNG, so running it mid-simulation cannot
// perturb the trace it is checking.
func checkInterestIndex(s *Swarm) error {
	for _, p := range s.peers {
		if !p.active {
			if len(p.neighbors) != 0 || len(p.idxByID) != 0 {
				return fmt.Errorf("inactive peer %d still has %d neighbors", p.id, len(p.neighbors))
			}
			continue
		}
		if len(p.idxByID) != len(p.neighbors) {
			return fmt.Errorf("peer %d: idxByID has %d entries for %d neighbors", p.id, len(p.idxByID), len(p.neighbors))
		}
		for k, q := range p.neighbors {
			if !q.active {
				return fmt.Errorf("peer %d: neighbor %d is inactive", p.id, q.id)
			}
			r := p.revIdx[k]
			if q.neighbors[r] != p || int(q.revIdx[r]) != k {
				return fmt.Errorf("peer %d slot %d: reverse index to %d broken", p.id, k, q.id)
			}
			if q.linkIdx[r] != p.linkIdx[k]^1 {
				return fmt.Errorf("peer %d slot %d: counter slots not paired (%d vs %d)", p.id, k, p.linkIdx[k], q.linkIdx[r])
			}
			pOnly, qOnly := p.have.DiffCounts(q.have)
			if got := s.linkNeeds[p.linkIdx[k]]; got != int32(qOnly) {
				return fmt.Errorf("peer %d slot %d: needs counter %d, naive recount %d", p.id, k, got, qOnly)
			}
			if p.needsFlags[k] != (qOnly > 0) || p.needsFlags[k] != p.have.Needs(q.have) {
				return fmt.Errorf("peer %d slot %d: needsFlag %v, naive Needs %v", p.id, k, p.needsFlags[k], qOnly > 0)
			}
			if p.wantsFlags[k] != (pOnly > 0) || p.wantsFlags[k] != q.have.Needs(p.have) {
				return fmt.Errorf("peer %d slot %d: wantsFlag %v, naive Needs %v", p.id, k, p.wantsFlags[k], pOnly > 0)
			}
			if j, ok := p.idxByID[q.id]; !ok || int(j) != k {
				return fmt.Errorf("peer %d: idxByID[%d] = %d, want %d", p.id, q.id, j, k)
			}
			if p.neighborIDs[k] != q.id || p.nbrOff[k] != q.wordOff {
				return fmt.Errorf("peer %d slot %d: stale id/offset cache for %d", p.id, k, q.id)
			}
		}
	}
	// The rarity index must agree with a per-piece recount over active peers.
	counts := make([]int, s.cfg.NumPieces)
	for _, p := range s.peers {
		if p.active {
			p.have.ForEach(func(i int) { counts[i]++ })
		}
	}
	minC := 0
	for i, c := range counts {
		if got := s.availability.Count(i); got != c {
			return fmt.Errorf("piece %d: availability %d, recount %d", i, got, c)
		}
		if i == 0 || c < minC {
			minC = c
		}
	}
	if s.cfg.NumPieces > 0 && s.availability.MinCount() != minC {
		return fmt.Errorf("MinCount %d, recount %d", s.availability.MinCount(), minC)
	}
	return nil
}

// indexCheckProbe revalidates the interest and rarity indexes against the
// naive recomputation at every topology change and at a sample of other
// events, so a maintenance bug is caught near the event that introduced it
// rather than smeared into final metrics. The leave/abort hooks fire between
// a peer's deactivation and its edge teardown, when the adjacency invariant
// transiently does not hold, so departures arm a pending check that runs at
// the next hook instead of checking in place.
type indexCheckProbe struct {
	probe.Base
	s       *Swarm
	err     error
	events  int
	pending bool
}

func (p *indexCheckProbe) check() {
	p.pending = false
	if p.err == nil {
		p.err = checkInterestIndex(p.s)
	}
}

func (p *indexCheckProbe) sampled() {
	if p.pending {
		p.check()
		return
	}
	if p.events++; p.events%17 == 0 {
		p.check()
	}
}

func (p *indexCheckProbe) PeerJoin(float64, probe.PeerInfo)       { p.check() }
func (p *indexCheckProbe) PeerLeave(float64, int)                 { p.pending = true }
func (p *indexCheckProbe) PeerAbort(float64, int)                 { p.pending = true }
func (p *indexCheckProbe) Unchoke(float64, int, int)              { p.sampled() }
func (p *indexCheckProbe) Credit(float64, probe.CreditInfo)       { p.sampled() }
func (p *indexCheckProbe) TransferFinish(float64, probe.Transfer) { p.sampled() }
func (p *indexCheckProbe) EndRun(float64)                         { p.check() }

// TestInterestIndexMatchesNaive drives randomized churn-heavy traces —
// Poisson joins, mid-download crashes, leave-on-complete departs, whitewash
// identity churn, a seeder exit — while an attached probe cross-checks the
// incremental indexes against naive Bitfield recomputation at every
// topology change. Each trace then replays with the indexes disabled
// (cfg.naiveScan) and must produce the identical Result, proving the indexed
// and naive paths are the same simulation.
func TestInterestIndexMatchesNaive(t *testing.T) {
	if testing.Short() {
		t.Skip("property test runs many simulations")
	}
	f := func(seed int64, algoPick, churnPick uint8) bool {
		algorithms := append(algo.All(), algo.PropShare)
		a := algorithms[int(algoPick)%len(algorithms)]
		cfg := Default(a, 35, 16)
		cfg.Seed = seed
		cfg.Horizon = 400
		cfg.MaxNeighbors = 10
		cfg.AbortRate = 0.25
		if churnPick%2 == 0 {
			cfg.SeederExitAt = 150
		}
		if churnPick%3 == 0 {
			cfg.FreeRiderFraction = 0.2
			cfg.Attack = attack.Plan{Kind: attack.Whitewash}
		}
		if churnPick%4 == 0 {
			cfg.Arrival = ArrivalPoisson
			cfg.MeanInterarrival = 2
		}

		swarm, err := NewSwarm(cfg)
		if err != nil {
			t.Logf("config rejected: %v", err)
			return false
		}
		chk := &indexCheckProbe{s: swarm}
		if err := swarm.Attach(chk); err != nil {
			t.Logf("attach failed: %v", err)
			return false
		}
		res, err := swarm.Run()
		if err != nil {
			t.Logf("run failed: %v", err)
			return false
		}
		if chk.err != nil {
			t.Logf("seed %d %v: index diverged from naive recomputation: %v", seed, a, chk.err)
			return false
		}

		// Replay without the indexes: byte-identical results required.
		naiveCfg := cfg
		naiveCfg.naiveScan = true
		naiveSwarm, err := NewSwarm(naiveCfg)
		if err != nil {
			t.Logf("naive config rejected: %v", err)
			return false
		}
		naiveRes, err := naiveSwarm.Run()
		if err != nil {
			t.Logf("naive run failed: %v", err)
			return false
		}
		res.Config, naiveRes.Config = Config{}, Config{} // differ only in naiveScan
		if !reflect.DeepEqual(res, naiveRes) {
			t.Logf("seed %d %v: indexed and naive runs diverged", seed, a)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
