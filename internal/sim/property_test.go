package sim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/algo"
	"repro/internal/attack"
)

// TestSimulationInvariantsProperty drives many small randomized scenarios
// through the simulator and checks the invariants that must hold for every
// configuration:
//
//  1. bytes are conserved: credited ≤ raw received ≤ total uploaded,
//  2. a finished peer downloaded exactly the file size,
//  3. susceptibility lies in [0, 1] and is 0 without free-riders,
//  4. bootstrap precedes finish for every peer,
//  5. the monotone series never decrease.
func TestSimulationInvariantsProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test runs many simulations")
	}
	f := func(seed int64, algoPick, frPick, atkPick uint8) bool {
		algorithms := append(algo.All(), algo.PropShare)
		a := algorithms[int(algoPick)%len(algorithms)]
		cfg := Default(a, 40, 16)
		cfg.Seed = seed
		cfg.Horizon = 400
		cfg.MaxNeighbors = 12
		if frPick%3 == 0 {
			cfg.FreeRiderFraction = 0.2
			kinds := []attack.Kind{attack.Passive, attack.Collusion, attack.Whitewash, attack.FalsePraise}
			cfg.Attack = attack.Plan{Kind: kinds[int(atkPick)%len(kinds)]}
			if atkPick%2 == 0 {
				cfg.Attack = cfg.Attack.WithLargeView()
			}
		}
		swarm, err := NewSwarm(cfg)
		if err != nil {
			t.Logf("config rejected: %v", err)
			return false
		}
		res, err := swarm.Run()
		if err != nil {
			t.Logf("run failed: %v", err)
			return false
		}

		var raw, credited float64
		for _, p := range res.Peers {
			raw += p.RawDown
			credited += p.Downloaded
			if p.Downloaded > p.RawDown+1e-6 {
				t.Logf("peer %d credited more than received", p.ID)
				return false
			}
			if p.FinishAt >= 0 {
				if math.Abs(p.Downloaded-cfg.FileSize()) > 1e-6 {
					t.Logf("peer %d finished with %g bytes", p.ID, p.Downloaded)
					return false
				}
				if p.BootstrapAt < 0 || p.BootstrapAt > p.FinishAt {
					t.Logf("peer %d finished before bootstrapping", p.ID)
					return false
				}
			}
		}
		if raw > res.TotalUploaded+1e-6 {
			t.Logf("received %g > uploaded %g", raw, res.TotalUploaded)
			return false
		}
		susc := res.Susceptibility()
		if susc < 0 || susc > 1 {
			t.Logf("susceptibility %g out of range", susc)
			return false
		}
		if cfg.FreeRiderFraction == 0 && susc != 0 {
			t.Logf("susceptibility %g without free-riders", susc)
			return false
		}
		for _, name := range []string{SeriesBootstrapped, SeriesCompleted} {
			pts := res.Series[name].Points
			for i := 1; i < len(pts); i++ {
				if pts[i].V < pts[i-1].V-1e-12 {
					t.Logf("series %s decreased", name)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
