package sim

import (
	"math"
	"testing"

	"repro/internal/algo"
	"repro/internal/attack"
)

// testConfig returns a small, fast configuration with the paper's shape.
func testConfig(a algo.Algorithm) Config {
	cfg := Default(a, 100, 48)
	cfg.Seed = 7
	cfg.Horizon = 700
	return cfg
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	sw, err := NewSwarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestConfigValidation(t *testing.T) {
	mods := []func(*Config){
		func(c *Config) { c.Algorithm = algo.Algorithm(99) },
		func(c *Config) { c.NumPeers = 1 },
		func(c *Config) { c.NumPieces = 0 },
		func(c *Config) { c.PieceSize = 0 },
		func(c *Config) { c.ArrivalWindow = -1 },
		func(c *Config) { c.Horizon = 0 },
		func(c *Config) { c.SampleInterval = 0 },
		func(c *Config) { c.MaxNeighbors = 0 },
		func(c *Config) { c.UploadSlots = 0 },
		func(c *Config) { c.SeederRate = -1 },
		func(c *Config) { c.Bandwidth.Classes = nil },
		func(c *Config) { c.Incentive.AlphaBT = 5 },
		func(c *Config) { c.FreeRiderFraction = -0.1 },
		func(c *Config) { c.FreeRiderFraction = 1 },
		func(c *Config) { c.PollInterval = 0 },
		func(c *Config) { c.FreeRiderFraction = 0.2; c.Attack.Kind = attack.Kind(42) },
	}
	for i, mod := range mods {
		cfg := testConfig(algo.Altruism)
		mod(&cfg)
		if _, err := NewSwarm(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSwarmSingleUse(t *testing.T) {
	cfg := testConfig(algo.Altruism)
	sw, err := NewSwarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Run(); err == nil {
		t.Error("second Run accepted")
	}
}

func TestDeterminism(t *testing.T) {
	for _, a := range []algo.Algorithm{algo.Altruism, algo.TChain, algo.FairTorrent} {
		cfg := testConfig(a)
		cfg.NumPeers = 60
		cfg.NumPieces = 24
		r1 := mustRun(t, cfg)
		r2 := mustRun(t, cfg)
		if r1.EventsProcessed != r2.EventsProcessed || r1.Duration != r2.Duration {
			t.Errorf("%v: runs diverged: %d/%g vs %d/%g", a,
				r1.EventsProcessed, r1.Duration, r2.EventsProcessed, r2.Duration)
		}
		for i := range r1.Peers {
			if r1.Peers[i] != r2.Peers[i] {
				t.Fatalf("%v: peer %d diverged: %+v vs %+v", a, i, r1.Peers[i], r2.Peers[i])
			}
		}
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	cfg := testConfig(algo.Altruism)
	r1 := mustRun(t, cfg)
	cfg.Seed = 12345
	r2 := mustRun(t, cfg)
	if r1.EventsProcessed == r2.EventsProcessed && r1.Duration == r2.Duration {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

func TestAllCompliantPeersComplete(t *testing.T) {
	for _, a := range []algo.Algorithm{algo.TChain, algo.BitTorrent, algo.FairTorrent, algo.Reputation, algo.Altruism} {
		res := mustRun(t, testConfig(a))
		if got := res.CompletionFraction(); got != 1 {
			t.Errorf("%v completion = %g, want 1", a, got)
		}
		if math.IsNaN(res.MeanDownloadTime()) {
			t.Errorf("%v has no mean download time", a)
		}
	}
}

// TestLemma2ReciprocityStalls checks the paper's core negative result:
// pure reciprocity deadlocks — peers never upload to each other, and only
// the seeder trickles data in.
func TestLemma2ReciprocityStalls(t *testing.T) {
	res := mustRun(t, testConfig(algo.Reciprocity))
	if res.PeerUploaded != 0 {
		t.Errorf("reciprocity peers uploaded %g bytes, want 0", res.PeerUploaded)
	}
	if got := res.CompletionFraction(); got != 0 {
		t.Errorf("reciprocity completion = %g within horizon, want 0", got)
	}
	if res.SeederUploaded == 0 {
		t.Error("seeder idle in reciprocity run")
	}
}

// TestFigure4aEfficiencyOrdering checks the compliant-swarm efficiency
// shape: altruism fastest; T-Chain/BitTorrent/FairTorrent/reputation
// comparable (within 2x of altruism); reciprocity never finishes.
func TestFigure4aEfficiencyOrdering(t *testing.T) {
	times := make(map[algo.Algorithm]float64, 6)
	for _, a := range []algo.Algorithm{algo.TChain, algo.BitTorrent, algo.FairTorrent, algo.Reputation, algo.Altruism} {
		times[a] = mustRun(t, testConfig(a)).MeanDownloadTime()
	}
	alt := times[algo.Altruism]
	for a, dl := range times {
		if dl < alt-1e-9 {
			t.Errorf("%v (%.1fs) finished faster than altruism (%.1fs)", a, dl, alt)
		}
		if dl > 2*alt {
			t.Errorf("%v (%.1fs) more than 2x slower than altruism (%.1fs)", a, dl, alt)
		}
	}
}

// TestFigure4bFairnessOrdering checks the fairness shape via the paper's
// Eq. 3 statistic over cumulative volumes: the hybrids are much fairer than
// altruism.
func TestFigure4bFairnessOrdering(t *testing.T) {
	f := make(map[algo.Algorithm]float64, 6)
	for _, a := range []algo.Algorithm{algo.TChain, algo.BitTorrent, algo.FairTorrent, algo.Reputation, algo.Altruism} {
		f[a] = mustRun(t, testConfig(a)).LogFairness()
	}
	for _, a := range []algo.Algorithm{algo.TChain, algo.BitTorrent, algo.FairTorrent} {
		if f[a] >= f[algo.Altruism] {
			t.Errorf("%v F = %.3f not fairer than altruism %.3f", a, f[a], f[algo.Altruism])
		}
	}
}

// TestFigure4cBootstrapOrdering checks Proposition 4's ordering: altruism,
// FairTorrent, and T-Chain bootstrap fastest; then BitTorrent; then
// reputation; reciprocity (seeder-only) slowest.
func TestFigure4cBootstrapOrdering(t *testing.T) {
	boot := make(map[algo.Algorithm]float64, 6)
	for _, a := range algo.All() {
		boot[a] = mustRun(t, testConfig(a)).MeanBootstrapTime()
	}
	fastest := []algo.Algorithm{algo.Altruism, algo.FairTorrent, algo.TChain}
	for _, a := range fastest {
		if boot[a] >= boot[algo.BitTorrent] {
			t.Errorf("%v bootstrap %.1fs not faster than BitTorrent %.1fs", a, boot[a], boot[algo.BitTorrent])
		}
	}
	if boot[algo.BitTorrent] >= boot[algo.Reciprocity] {
		t.Errorf("BitTorrent %.1fs not faster than reciprocity %.1fs",
			boot[algo.BitTorrent], boot[algo.Reciprocity])
	}
	if boot[algo.Reputation] >= boot[algo.Reciprocity] {
		t.Errorf("reputation %.1fs not faster than reciprocity %.1fs",
			boot[algo.Reputation], boot[algo.Reciprocity])
	}
}

func withFreeRiders(a algo.Algorithm, largeView bool) Config {
	cfg := testConfig(a)
	cfg.FreeRiderFraction = 0.2
	cfg.Attack = attack.MostEffective(a)
	if largeView {
		cfg.Attack = cfg.Attack.WithLargeView()
	}
	return cfg
}

// TestFigure5aSusceptibilityOrdering checks Table III's shape under 20%
// targeted free-riders: altruism most susceptible, then FairTorrent, then
// BitTorrent; T-Chain and reciprocity near zero.
func TestFigure5aSusceptibilityOrdering(t *testing.T) {
	susc := make(map[algo.Algorithm]float64, 6)
	for _, a := range algo.All() {
		susc[a] = mustRun(t, withFreeRiders(a, false)).Susceptibility()
	}
	if susc[algo.Reciprocity] != 0 {
		t.Errorf("reciprocity susceptibility = %g, want 0", susc[algo.Reciprocity])
	}
	if susc[algo.TChain] > 0.05 {
		t.Errorf("T-Chain susceptibility = %.3f, want near zero", susc[algo.TChain])
	}
	if !(susc[algo.Altruism] > susc[algo.FairTorrent] &&
		susc[algo.FairTorrent] > susc[algo.TChain]) {
		t.Errorf("ordering violated: alt %.3f, ft %.3f, tc %.3f",
			susc[algo.Altruism], susc[algo.FairTorrent], susc[algo.TChain])
	}
	if !(susc[algo.BitTorrent] > susc[algo.TChain]) {
		t.Errorf("BitTorrent %.3f not above T-Chain %.3f", susc[algo.BitTorrent], susc[algo.TChain])
	}
	if susc[algo.Altruism] < 0.15 {
		t.Errorf("altruism susceptibility = %.3f, want ~free-rider share 0.2", susc[algo.Altruism])
	}
}

// TestFigure6LargeViewIncreasesSusceptibility: adding the large-view
// exploit increases every exploitable algorithm's susceptibility.
func TestFigure6LargeViewIncreasesSusceptibility(t *testing.T) {
	for _, a := range []algo.Algorithm{algo.BitTorrent, algo.FairTorrent, algo.Reputation} {
		base := mustRun(t, withFreeRiders(a, false)).Susceptibility()
		lv := mustRun(t, withFreeRiders(a, true)).Susceptibility()
		if lv <= base {
			t.Errorf("%v: large view %.4f not above baseline %.4f", a, lv, base)
		}
	}
	// T-Chain stays near zero even with the large view.
	lv := mustRun(t, withFreeRiders(algo.TChain, true)).Susceptibility()
	if lv > 0.05 {
		t.Errorf("T-Chain large-view susceptibility = %.3f, want near zero", lv)
	}
}

// TestFreeRidersStarveUnderTChain: free-riders get (almost) no plaintext
// under T-Chain but plenty under altruism.
func TestFreeRidersStarveUnderTChain(t *testing.T) {
	frDownload := func(res *Result) float64 {
		var sum float64
		for _, p := range res.Peers {
			if p.FreeRider {
				sum += p.Downloaded
			}
		}
		return sum
	}
	tc := mustRun(t, withFreeRiders(algo.TChain, false))
	alt := mustRun(t, withFreeRiders(algo.Altruism, false))
	if frDownload(tc) > 0.2*frDownload(alt) {
		t.Errorf("T-Chain free-riders got %.0f bytes vs altruism %.0f, want far less",
			frDownload(tc), frDownload(alt))
	}
	// Uncredited ciphertext is tracked separately.
	for _, p := range tc.Peers {
		if p.FreeRider && p.RawDown < p.Downloaded {
			t.Errorf("free-rider %d raw %g < credited %g", p.ID, p.RawDown, p.Downloaded)
		}
	}
}

// TestWhitewashingHelpsAgainstFairTorrent: the whitewashing attack gives
// FairTorrent free-riders more than plain passive free-riding.
func TestWhitewashingHelpsAgainstFairTorrent(t *testing.T) {
	passive := withFreeRiders(algo.FairTorrent, false)
	passive.Attack = attack.Plan{Kind: attack.Passive}
	ww := withFreeRiders(algo.FairTorrent, false) // MostEffective = whitewash
	pSusc := mustRun(t, passive).Susceptibility()
	wSusc := mustRun(t, ww).Susceptibility()
	if wSusc <= pSusc {
		t.Errorf("whitewash susceptibility %.4f not above passive %.4f", wSusc, pSusc)
	}
}

// TestFalsePraiseInflatesReputationSusceptibility: colluding false praise
// extracts more from the reputation algorithm than passive free-riding
// (Table III: collusion probability 1).
func TestFalsePraiseInflatesReputationSusceptibility(t *testing.T) {
	passive := withFreeRiders(algo.Reputation, false)
	praise := withFreeRiders(algo.Reputation, false)
	praise.Attack = attack.Plan{Kind: attack.FalsePraise, PraiseInterval: 5, PraiseBytes: 64 << 20}
	pSusc := mustRun(t, passive).Susceptibility()
	fSusc := mustRun(t, praise).Susceptibility()
	if fSusc <= pSusc {
		t.Errorf("false praise susceptibility %.4f not above passive %.4f", fSusc, pSusc)
	}
}

// TestFreeRidingDegradesEfficiencyAndFairness (Figure 5b/5c): for the
// susceptible algorithms, free-riding slows compliant downloads and lowers
// the compliant fairness ratio.
func TestFreeRidingDegradesEfficiencyAndFairness(t *testing.T) {
	for _, a := range []algo.Algorithm{algo.Altruism, algo.FairTorrent, algo.BitTorrent} {
		base := mustRun(t, testConfig(a))
		fr := mustRun(t, withFreeRiders(a, false))
		if fr.MeanDownloadTime() <= base.MeanDownloadTime() {
			t.Errorf("%v: download time %.1f with free-riders not above baseline %.1f",
				a, fr.MeanDownloadTime(), base.MeanDownloadTime())
		}
		if fr.FinalFairness() >= base.FinalFairness() {
			t.Errorf("%v: fairness %.3f with free-riders not below baseline %.3f",
				a, fr.FinalFairness(), base.FinalFairness())
		}
	}
}

func TestConservationOfBytes(t *testing.T) {
	for _, a := range []algo.Algorithm{algo.TChain, algo.Altruism, algo.FairTorrent} {
		res := mustRun(t, testConfig(a))
		var rawDown, credited float64
		for _, p := range res.Peers {
			rawDown += p.RawDown
			credited += p.Downloaded
		}
		if rawDown > res.TotalUploaded+1e-6 {
			t.Errorf("%v: received %g > uploaded %g", a, rawDown, res.TotalUploaded)
		}
		if credited > rawDown+1e-6 {
			t.Errorf("%v: credited %g > raw %g", a, credited, rawDown)
		}
		// Every compliant completion implies exactly fileSize credited bytes.
		for _, p := range res.Peers {
			if p.FinishAt >= 0 && math.Abs(p.Downloaded-res.Config.FileSize()) > 1e-6 {
				t.Errorf("%v: peer %d finished with %g credited bytes, want %g",
					a, p.ID, p.Downloaded, res.Config.FileSize())
			}
		}
	}
}

func TestSeriesRecorded(t *testing.T) {
	res := mustRun(t, testConfig(algo.TChain))
	for _, name := range []string{SeriesFairness, SeriesContribution, SeriesBootstrapped, SeriesCompleted, SeriesSusceptibility} {
		ts, ok := res.Series[name]
		if !ok || ts.Len() == 0 {
			t.Errorf("series %q missing or empty", name)
			continue
		}
	}
	// Bootstrapped and completed series are monotone nondecreasing.
	for _, name := range []string{SeriesBootstrapped, SeriesCompleted} {
		pts := res.Series[name].Points
		for i := 1; i < len(pts); i++ {
			if pts[i].V < pts[i-1].V-1e-12 {
				t.Errorf("series %q not monotone at %d", name, i)
			}
		}
	}
	last := res.Series[SeriesCompleted].Last().V
	if last != 1 {
		t.Errorf("final completed fraction = %g, want 1", last)
	}
}

func TestBootstrapFractionAccessor(t *testing.T) {
	res := mustRun(t, testConfig(algo.Altruism))
	if got := res.BootstrapFraction(0); got > 0.5 {
		t.Errorf("bootstrap fraction at t=0 = %g", got)
	}
	if got := res.BootstrapFraction(res.Duration); got < 0.99 {
		t.Errorf("final bootstrap fraction = %g, want ~1", got)
	}
}

func TestNoSeederSwarmBootstrapsViaFirstPeer(t *testing.T) {
	// With no seeder but one pre-seeded... not supported; instead check a
	// zero-rate seeder keeps validation but nobody ever bootstraps.
	cfg := testConfig(algo.Altruism)
	cfg.SeederRate = 0
	cfg.Horizon = 50
	res := mustRun(t, cfg)
	if res.BootstrapFraction(res.Duration) != 0 {
		t.Error("peers bootstrapped without any seed data")
	}
	if res.TotalUploaded != 0 {
		t.Errorf("bytes uploaded with no seeder: %g", res.TotalUploaded)
	}
}

func TestLeaveOnCompleteRemovesPeers(t *testing.T) {
	cfg := testConfig(algo.Altruism)
	res := mustRun(t, cfg)
	// After the run, every compliant peer finished and left; the swarm
	// drained before the horizon.
	if res.Duration >= cfg.Horizon {
		t.Errorf("run hit horizon %g", res.Duration)
	}
}

func TestStayOnCompleteKeepsSeeding(t *testing.T) {
	leave := testConfig(algo.TChain)
	stay := leave
	stay.LeaveOnComplete = false
	stay.StopWhenCompliantDone = true
	rLeave := mustRun(t, leave)
	rStay := mustRun(t, stay)
	// Finished peers that stay become extra seeders, so the swarm finishes
	// no slower (virtually always faster).
	if rStay.MeanDownloadTime() > rLeave.MeanDownloadTime()*1.1 {
		t.Errorf("staying seeders slowed the swarm: %.1f vs %.1f",
			rStay.MeanDownloadTime(), rLeave.MeanDownloadTime())
	}
}

func TestPoissonArrivals(t *testing.T) {
	cfg := testConfig(algo.Altruism)
	cfg.Arrival = ArrivalPoisson
	cfg.MeanInterarrival = 2
	cfg.Horizon = 2000
	res := mustRun(t, cfg)
	if res.CompletionFraction() != 1 {
		t.Fatalf("completion = %g", res.CompletionFraction())
	}
	// Arrivals are spread: the last arrival lands far beyond the flash
	// crowd's 10 s window.
	var lastArrival float64
	for _, p := range res.Peers {
		if p.Arrival > lastArrival {
			lastArrival = p.Arrival
		}
	}
	if lastArrival < 50 {
		t.Errorf("last Poisson arrival at %.1fs, want well beyond the flash window", lastArrival)
	}
}

func TestPoissonValidation(t *testing.T) {
	cfg := testConfig(algo.Altruism)
	cfg.Arrival = ArrivalPoisson
	cfg.MeanInterarrival = 0 // invalid
	if _, err := NewSwarm(cfg); err == nil {
		t.Fatal("Poisson without interarrival accepted")
	}
	cfg.Arrival = ArrivalPattern(9)
	if _, err := NewSwarm(cfg); err == nil {
		t.Fatal("unknown arrival pattern accepted")
	}
}

func TestSnapshotCaptured(t *testing.T) {
	cfg := testConfig(algo.Altruism)
	cfg.SnapshotAt = 30
	res := mustRun(t, cfg)
	snap := res.Snapshot()
	if snap == nil {
		t.Fatal("no snapshot recorded")
	}
	if snap.At != 30 || snap.Pairs == 0 || len(snap.PieceCounts) == 0 {
		t.Errorf("snapshot = %+v", snap)
	}
	if snap.PiAltruism < snap.PiDirect {
		t.Errorf("pi_A %.3f < pi_DR %.3f; mutual need cannot exceed one-way need",
			snap.PiAltruism, snap.PiDirect)
	}
	// No snapshot requested -> nil.
	plain := mustRun(t, testConfig(algo.Altruism))
	if plain.Snapshot() != nil {
		t.Error("unrequested snapshot present")
	}
}

func TestSnapshotAtNegativeRejected(t *testing.T) {
	cfg := testConfig(algo.Altruism)
	cfg.SnapshotAt = -1
	if _, err := NewSwarm(cfg); err == nil {
		t.Fatal("negative SnapshotAt accepted")
	}
}

func TestPropShareSimulation(t *testing.T) {
	cfg := testConfig(algo.PropShare)
	res := mustRun(t, cfg)
	if res.CompletionFraction() != 1 {
		t.Fatalf("PropShare completion = %g", res.CompletionFraction())
	}
	// Like BitTorrent, PropShare's fairness beats altruism's.
	alt := mustRun(t, testConfig(algo.Altruism))
	if res.LogFairness() >= alt.LogFairness() {
		t.Errorf("PropShare F %.3f not fairer than altruism %.3f",
			res.LogFairness(), alt.LogFairness())
	}
}

func TestAbortRateChurn(t *testing.T) {
	cfg := testConfig(algo.TChain)
	cfg.AbortRate = 0.15
	res := mustRun(t, cfg)
	aborted := 0
	for _, p := range res.Peers {
		if p.Aborted {
			aborted++
			if p.FinishAt >= 0 {
				t.Errorf("peer %d both aborted and finished", p.ID)
			}
		}
	}
	if aborted == 0 {
		t.Fatal("no peers aborted despite AbortRate")
	}
	// Surviving compliant peers still finish.
	if got := res.CompletionFraction(); got != 1 {
		t.Errorf("survivor completion = %g, want 1", got)
	}
}

func TestSeederExitStallsReciprocity(t *testing.T) {
	// With pure reciprocity, the seeder is the only source; killing it
	// freezes bootstrapping.
	cfg := testConfig(algo.Reciprocity)
	cfg.SeederExitAt = 30
	cfg.Horizon = 200
	res := mustRun(t, cfg)
	atExit := res.BootstrapFraction(30)
	final := res.BootstrapFraction(res.Duration)
	// A piece already in flight at exit may still land; beyond that,
	// nothing moves.
	if final > atExit+0.1 {
		t.Errorf("bootstrap advanced after seeder exit: %.3f -> %.3f", atExit, final)
	}
}

func TestSeederExitSurvivableForAltruism(t *testing.T) {
	// Once enough pieces circulate, the swarm finishes without the origin.
	cfg := testConfig(algo.Altruism)
	cfg.SeederExitAt = 60
	res := mustRun(t, cfg)
	if got := res.CompletionFraction(); got < 0.95 {
		t.Errorf("completion = %g after seeder exit, want ~1", got)
	}
}

func TestFailureConfigValidation(t *testing.T) {
	for _, mod := range []func(*Config){
		func(c *Config) { c.AbortRate = -0.1 },
		func(c *Config) { c.AbortRate = 1 },
		func(c *Config) { c.SeederExitAt = -5 },
	} {
		cfg := testConfig(algo.Altruism)
		mod(&cfg)
		if _, err := NewSwarm(cfg); err == nil {
			t.Error("invalid failure config accepted")
		}
	}
}
