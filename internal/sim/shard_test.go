package sim

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/algo"
	"repro/internal/attack"
	"repro/internal/metrics"
	"repro/internal/probe"
)

// traceProbe records the full hook stream; two runs are equivalent iff
// their streams match event-for-event.
type traceProbe struct {
	probe.Base
	events []string
}

func (t *traceProbe) PeerJoin(now float64, p probe.PeerInfo) {
	t.events = append(t.events, fmt.Sprintf("join %.9g %d %t", now, p.ID, p.FreeRider))
}
func (t *traceProbe) PeerLeave(now float64, id int) {
	t.events = append(t.events, fmt.Sprintf("leave %.9g %d", now, id))
}
func (t *traceProbe) PeerAbort(now float64, id int) {
	t.events = append(t.events, fmt.Sprintf("abort %.9g %d", now, id))
}
func (t *traceProbe) PeerBootstrap(now float64, id int) {
	t.events = append(t.events, fmt.Sprintf("bootstrap %.9g %d", now, id))
}
func (t *traceProbe) PeerComplete(now float64, id int) {
	t.events = append(t.events, fmt.Sprintf("complete %.9g %d", now, id))
}
func (t *traceProbe) Unchoke(now float64, from, to int) {
	t.events = append(t.events, fmt.Sprintf("unchoke %.9g %d %d", now, from, to))
}
func (t *traceProbe) TransferStart(now float64, tr probe.Transfer) {
	t.events = append(t.events, fmt.Sprintf("start %.9g %d %d %d %.9g", now, tr.From, tr.To, tr.Piece, tr.Duration))
}
func (t *traceProbe) TransferFinish(now float64, tr probe.Transfer) {
	t.events = append(t.events, fmt.Sprintf("finish %.9g %d %d %d", now, tr.From, tr.To, tr.Piece))
}
func (t *traceProbe) Credit(now float64, c probe.CreditInfo) {
	t.events = append(t.events, fmt.Sprintf("credit %.9g %d %d %g", now, c.From, c.To, c.Bytes))
}
func (t *traceProbe) FreeRiderCredit(now float64, to int, bytes float64) {
	t.events = append(t.events, fmt.Sprintf("frcredit %.9g %d %g", now, to, bytes))
}
func (t *traceProbe) SeederExit(now float64) {
	t.events = append(t.events, fmt.Sprintf("seederexit %.9g", now))
}
func (t *traceProbe) Sample(now float64) {
	t.events = append(t.events, fmt.Sprintf("sample %.9g", now))
}
func (t *traceProbe) EndRun(now float64) {
	t.events = append(t.events, fmt.Sprintf("end %.9g", now))
}

// runSharded executes cfg with the given shard count and returns the
// result plus the complete hook stream.
func runShardedTrace(t *testing.T, cfg Config, shards int) (*Result, []string) {
	t.Helper()
	cfg.Shards = shards
	s, err := NewSwarm(cfg)
	if err != nil {
		t.Fatalf("NewSwarm(shards=%d): %v", shards, err)
	}
	tp := &traceProbe{}
	if err := s.Attach(tp); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run(shards=%d): %v", shards, err)
	}
	return res, tp.events
}

// shardTestConfigs spans the behavioral surface: plain BitTorrent, T-Chain
// collusion (witness sampling), whitewashing churn, failure injection with
// seeder exit, and Poisson arrivals.
func shardTestConfigs() map[string]Config {
	return map[string]Config{
		"bt-flash-crowd": Default(algo.BitTorrent, 48, 32),
		"tchain-collusion": Default(algo.TChain, 40, 24,
			WithFreeRiders(0.25, attack.Plan{Kind: attack.Collusion, LargeView: true})),
		"reputation-whitewash": Default(algo.Reputation, 40, 24,
			WithFreeRiders(0.2, attack.Plan{Kind: attack.Whitewash, WhitewashInterval: 40})),
		"bt-churn": Default(algo.BitTorrent, 48, 32,
			WithAbortRate(0.15), WithSeederExit(120), WithHorizon(4000)),
		"prop-share-poisson": Default(algo.PropShare, 40, 24,
			WithArrival(ArrivalPoisson, 2.5)),
	}
}

// TestShardedSwarmDeterministicAcrossShardCounts is the tentpole property:
// for every configuration and seed, shards=1 and shards=N produce the
// identical Result and the identical probe hook stream.
func TestShardedSwarmDeterministicAcrossShardCounts(t *testing.T) {
	for name, cfg := range shardTestConfigs() {
		t.Run(name, func(t *testing.T) {
			for _, seed := range []int64{1, 7, 42} {
				cfg := cfg
				cfg.Seed = seed
				base, baseTrace := runShardedTrace(t, cfg, 1)
				if len(baseTrace) == 0 {
					t.Fatal("baseline produced no hook events")
				}
				for _, p := range []int{2, 4, 7} {
					res, trace := runShardedTrace(t, cfg, p)
					if !reflect.DeepEqual(baseTrace, trace) {
						i := 0
						for i < len(trace) && i < len(baseTrace) && trace[i] == baseTrace[i] {
							i++
						}
						a, b := "<none>", "<none>"
						if i < len(baseTrace) {
							a = baseTrace[i]
						}
						if i < len(trace) {
							b = trace[i]
						}
						t.Fatalf("seed %d shards=%d hook stream diverged at event %d:\n  shards=1: %s\n  shards=%d: %s",
							seed, p, i, a, p, b)
					}
					// Shards is the one config field allowed to differ.
					norm := *res
					norm.Config.Shards = base.Config.Shards
					if !reflect.DeepEqual(&norm, base) {
						t.Fatalf("seed %d shards=%d Result diverged from shards=1", seed, p)
					}
				}
			}
		})
	}
}

// TestShardedSwarmEarlyStopConsistent exercises Stop under sharding: the
// early stop raised inside a barrier must halt all shards at a consistent
// virtual time, identically for every shard count (satellite: Stop
// semantics for parallel runs).
func TestShardedSwarmEarlyStopConsistent(t *testing.T) {
	cfg := Default(algo.BitTorrent, 32, 16, WithSeed(5))
	if !cfg.StopWhenCompliantDone {
		t.Fatal("default config must early-stop for this test")
	}
	base, baseTrace := runShardedTrace(t, cfg, 1)
	if base.Duration >= cfg.Horizon {
		t.Fatalf("run did not early-stop (duration %g)", base.Duration)
	}
	window := lookaheadWindow(cfg)
	// The stop lands at a window boundary: a consistent cut across shards.
	if k := base.Duration / window; math.Abs(k-math.Round(k)) > 1e-9 {
		t.Fatalf("stop time %g is not a multiple of the %g s window", base.Duration, window)
	}
	for _, p := range []int{3, 8} {
		res, trace := runShardedTrace(t, cfg, p)
		if res.Duration != base.Duration {
			t.Fatalf("shards=%d stopped at %g, shards=1 at %g", p, res.Duration, base.Duration)
		}
		if !reflect.DeepEqual(baseTrace, trace) {
			t.Fatalf("shards=%d early-stop hook stream diverged", p)
		}
	}
}

// TestShardedCompletesTheFile sanity-checks the sharded engine actually
// simulates: compliant peers finish the download.
func TestShardedCompletesTheFile(t *testing.T) {
	cfg := Default(algo.BitTorrent, 32, 16, WithSeed(3), WithShards(4))
	s, err := NewSwarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if f := res.CompletionFraction(); f < 0.99 {
		t.Fatalf("completion fraction %g under sharded engine", f)
	}
	if res.EventsProcessed == 0 {
		t.Fatal("no events processed")
	}
	stats := s.ShardStats()
	if len(stats) != 4 {
		t.Fatalf("ShardStats returned %d shards, want 4", len(stats))
	}
	var processed uint64
	for _, st := range stats {
		processed += st.Processed
	}
	if processed == 0 {
		t.Fatal("per-shard processed counters all zero")
	}
}

// TestPublishShardMetrics checks the per-shard engine counters surface
// through an internal/metrics registry: one labelled gauge series per
// (shard, counter), with values matching ShardStats.
func TestPublishShardMetrics(t *testing.T) {
	cfg := Default(algo.BitTorrent, 32, 16, WithSeed(3), WithShards(3))
	s, err := NewSwarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	s.PublishShardMetrics(reg)
	snap := reg.Snapshot()
	stats := s.ShardStats()
	var events, stalls int64
	for _, st := range stats {
		label := fmt.Sprintf(`{shard="%d"}`, st.Lane)
		for series, want := range map[string]int64{
			"sim_shard_events" + label:       int64(st.Processed),
			"sim_shard_stalls" + label:       int64(st.Stalls),
			"sim_shard_cross_sent" + label:   int64(st.CrossSent),
			"sim_shard_cross_recv" + label:   int64(st.CrossRecv),
			"sim_shard_staged" + label:       int64(st.Staged),
			"sim_shard_virtual_time" + label: int64(st.MaxTime),
		} {
			got, ok := snap.Gauges[series]
			if !ok {
				t.Errorf("series %s missing from snapshot", series)
			} else if got != want {
				t.Errorf("series %s = %d, want %d", series, got, want)
			}
		}
		events += int64(st.Processed)
		stalls += int64(st.Stalls)
	}
	if events == 0 {
		t.Fatal("published event gauges sum to zero")
	}
	_ = stalls // stalls may legitimately be zero on a saturated swarm

	// The serial engine publishes nothing.
	serial, err := NewSwarm(Default(algo.BitTorrent, 16, 8, WithSeed(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := serial.Run(); err != nil {
		t.Fatal(err)
	}
	reg2 := metrics.NewRegistry()
	serial.PublishShardMetrics(reg2)
	if n := len(reg2.Snapshot().Gauges); n != 0 {
		t.Fatalf("serial swarm published %d gauges, want 0", n)
	}
}
