// Package sim implements the event-driven swarm simulator the paper uses
// for its Section V evaluation (adapted there from the TBeT simulator; built
// from scratch here). A Swarm wires the discrete-event engine, the piece and
// bandwidth substrates, one incentive.Strategy per peer, a seeder, and the
// free-riding attack plans, and records the time series behind Figures 4–6.
package sim

import (
	"fmt"
	"math"

	"repro/internal/algo"
	"repro/internal/attack"
	"repro/internal/bandwidth"
	"repro/internal/incentive"
)

// Config parameterizes one simulation run. NewSwarm validates it; Default
// returns the paper's Section V-A setup scaled by the caller.
type Config struct {
	// Algorithm selects the incentive mechanism compliant peers run.
	Algorithm algo.Algorithm `json:"algorithm"`
	// NumPeers is the flash-crowd size (paper: 1000).
	NumPeers int `json:"num_peers"`
	// NumPieces and PieceSize define the file (paper: 128 MB; we use
	// 512 × 256 KB at full scale).
	NumPieces int     `json:"num_pieces"`
	PieceSize float64 `json:"piece_size"`
	// ArrivalWindow is the flash-crowd span in seconds (paper: 10 s).
	ArrivalWindow float64 `json:"arrival_window"`
	// Arrival selects the arrival process: the paper's flash crowd
	// (uniform over ArrivalWindow, the default) or a Poisson stream with
	// MeanInterarrival seconds between joins — the steady-state regime the
	// paper leaves to future work.
	Arrival ArrivalPattern `json:"arrival"`
	// MeanInterarrival is the Poisson arrival spacing (ArrivalPoisson only).
	MeanInterarrival float64 `json:"mean_interarrival"`
	// Horizon caps the virtual-time run length; needed because pure
	// reciprocity never completes. Zero means "until the swarm drains",
	// which never happens for reciprocity — validation rejects that combo.
	Horizon float64 `json:"horizon"`
	// SampleInterval is the metric sampling period in seconds.
	SampleInterval float64 `json:"sample_interval"`
	// MaxNeighbors bounds each compliant peer's neighbor set.
	MaxNeighbors int `json:"max_neighbors"`
	// UploadSlots is the number of concurrent uploads per peer.
	UploadSlots int `json:"upload_slots"`
	// SeederRate and SeederSlots describe the single seeder.
	SeederRate  float64 `json:"seeder_rate"`
	SeederSlots int     `json:"seeder_slots"`
	// Bandwidth is the peer upload-capacity mix.
	Bandwidth bandwidth.Distribution `json:"bandwidth"`
	// Incentive tunes the mechanisms (α_BT, n_BT, α_R, round length).
	Incentive incentive.Params `json:"incentive"`
	// FreeRiderFraction of peers free-ride (paper: 0.2 in Figures 5–6).
	FreeRiderFraction float64 `json:"free_rider_fraction"`
	// Attack is the free-rider behaviour; ignored when the fraction is 0.
	Attack attack.Plan `json:"attack"`
	// LeaveOnComplete makes peers exit as soon as they finish (paper: yes).
	LeaveOnComplete bool `json:"leave_on_complete"`
	// StopWhenCompliantDone ends the run as soon as every compliant peer
	// has finished, which is the paper's effective measurement window:
	// susceptibility counts what free-riders extracted while the system
	// was alive, not what they could leech afterwards.
	StopWhenCompliantDone bool `json:"stop_when_compliant_done"`
	// PollInterval is the idle-retry period for upload scheduling.
	PollInterval float64 `json:"poll_interval"`
	// SnapshotAt, when positive, records an AvailabilitySnapshot at that
	// virtual time (used by the validate-availability experiment).
	SnapshotAt float64 `json:"snapshot_at"`
	// AbortRate is the fraction of compliant peers that crash mid-download
	// at a uniformly random time before Horizon/2 — failure-injection
	// churn beyond the paper's leave-on-completion model.
	AbortRate float64 `json:"abort_rate"`
	// SeederExitAt, when positive, takes the seeder offline at that time —
	// the "origin disappears" stress the paper's collapse discussion
	// motivates.
	SeederExitAt float64 `json:"seeder_exit_at"`
	// Seed drives every random choice; runs replay bit-for-bit.
	Seed int64 `json:"seed"`
	// Shards selects the execution engine. 0 (the default) runs the serial
	// single-threaded engine, byte-compatible with every previous release.
	// N >= 1 runs the sharded parallel engine with N shards: peers are
	// partitioned into per-shard event heaps executing concurrently under a
	// conservative lookahead window, with per-peer RNG streams. Sharded
	// runs are deterministic and byte-identical for every N >= 1 (Shards=1
	// and Shards=8 produce the same Result), but they are a *different*
	// timing model from the serial engine — per-peer instead of global RNG
	// draws, window-quantized control events — so Shards=0 and Shards=1
	// outputs differ. See DESIGN.md §12.
	Shards int `json:"shards,omitempty"`

	// naiveScan disables the incremental interest/rarity indexes and routes
	// interest queries and piece selection through the original full-scan
	// paths. Unexported on purpose: it exists so package tests and
	// BenchmarkSwarmLargeNaive can pin the two implementations against each
	// other, not as a user knob — both paths produce byte-identical runs.
	naiveScan bool
}

// Default returns the paper's experiment shape at a configurable scale:
// numPeers peers in a 10 s flash crowd downloading numPieces pieces of
// 256 KB each from one seeder, leaving on completion. The paper's full
// scale is Default(a, 1000, 512). Options are applied in order on top of
// the defaults; direct field mutation afterwards remains equivalent.
func Default(a algo.Algorithm, numPeers, numPieces int, opts ...Option) Config {
	cfg := Config{
		Algorithm:             a,
		NumPeers:              numPeers,
		NumPieces:             numPieces,
		PieceSize:             256 << 10,
		ArrivalWindow:         10,
		Horizon:               20000,
		SampleInterval:        5,
		MaxNeighbors:          50,
		UploadSlots:           4,
		SeederRate:            1 << 20,
		SeederSlots:           8,
		Bandwidth:             bandwidth.DefaultDistribution(),
		Incentive:             incentive.DefaultParams(),
		LeaveOnComplete:       true,
		StopWhenCompliantDone: true,
		PollInterval:          1,
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// Validate normalizes and checks the configuration in place.
func (c *Config) Validate() error {
	if _, err := algo.Parse(c.Algorithm.String()); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if c.NumPeers < 2 {
		return fmt.Errorf("sim: NumPeers %d too small", c.NumPeers)
	}
	if c.NumPieces < 1 {
		return fmt.Errorf("sim: NumPieces %d too small", c.NumPieces)
	}
	if c.PieceSize <= 0 {
		return fmt.Errorf("sim: PieceSize %g must be positive", c.PieceSize)
	}
	if c.ArrivalWindow < 0 {
		return fmt.Errorf("sim: ArrivalWindow %g negative", c.ArrivalWindow)
	}
	if c.Arrival == 0 {
		c.Arrival = ArrivalFlashCrowd
	}
	switch c.Arrival {
	case ArrivalFlashCrowd:
	case ArrivalPoisson:
		if c.MeanInterarrival <= 0 {
			return fmt.Errorf("sim: Poisson arrivals need MeanInterarrival > 0, got %g", c.MeanInterarrival)
		}
	default:
		return fmt.Errorf("sim: unknown arrival pattern %d", int(c.Arrival))
	}
	if c.Horizon <= 0 || math.IsNaN(c.Horizon) {
		return fmt.Errorf("sim: Horizon %g must be positive", c.Horizon)
	}
	if c.SampleInterval <= 0 {
		return fmt.Errorf("sim: SampleInterval %g must be positive", c.SampleInterval)
	}
	if c.MaxNeighbors < 1 {
		return fmt.Errorf("sim: MaxNeighbors %d too small", c.MaxNeighbors)
	}
	if c.UploadSlots < 1 || c.SeederSlots < 1 {
		return fmt.Errorf("sim: slots must be >= 1")
	}
	if c.SeederRate < 0 {
		return fmt.Errorf("sim: SeederRate %g negative", c.SeederRate)
	}
	if err := c.Bandwidth.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	normalized, err := c.Incentive.Normalize()
	if err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	c.Incentive = normalized
	if c.FreeRiderFraction < 0 || c.FreeRiderFraction >= 1 {
		return fmt.Errorf("sim: FreeRiderFraction %g outside [0,1)", c.FreeRiderFraction)
	}
	if c.FreeRiderFraction > 0 {
		plan, err := c.Attack.Normalize()
		if err != nil {
			return fmt.Errorf("sim: %w", err)
		}
		c.Attack = plan
	}
	if c.PollInterval <= 0 {
		return fmt.Errorf("sim: PollInterval %g must be positive", c.PollInterval)
	}
	if c.SnapshotAt < 0 {
		return fmt.Errorf("sim: SnapshotAt %g negative", c.SnapshotAt)
	}
	if c.AbortRate < 0 || c.AbortRate >= 1 {
		return fmt.Errorf("sim: AbortRate %g outside [0,1)", c.AbortRate)
	}
	if c.SeederExitAt < 0 {
		return fmt.Errorf("sim: SeederExitAt %g negative", c.SeederExitAt)
	}
	if c.Shards < 0 {
		return fmt.Errorf("sim: Shards %d negative", c.Shards)
	}
	return nil
}

// FileSize returns the file size in bytes.
func (c *Config) FileSize() float64 { return float64(c.NumPieces) * c.PieceSize }

// ArrivalPattern selects how peers join the swarm.
type ArrivalPattern int

// The arrival processes.
const (
	// ArrivalFlashCrowd scatters all arrivals uniformly over
	// ArrivalWindow — the paper's Section V setup.
	ArrivalFlashCrowd ArrivalPattern = iota + 1
	// ArrivalPoisson spaces arrivals with exponential interarrival times
	// of mean MeanInterarrival seconds.
	ArrivalPoisson
)
