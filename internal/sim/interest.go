package sim

import "repro/internal/incentive"

// This file maintains the incremental interest index. Each peer keeps, in
// parallel per-neighbor arrays (structure-of-arrays, so the maintenance scan
// walks dense memory instead of chasing per-edge records):
//
//	linkIdx[k]   — my direction's slot in the swarm's linkNeeds counter slab,
//	needsFlags[k] — my counter > 0 (neighbor k holds a piece I need),
//	wantsFlags[k] — the reverse counter > 0 (neighbor k needs a piece I hold),
//	revIdx[k]    — my slot in neighbor k's parallel arrays,
//	nbrOff[k]    — neighbor k's word offset in the swarm's bitfield slab,
//	idxByID      — neighbor ID → slot, for out-of-sequence queries.
//
// The two directional counters of a link live in adjacent int32 slots of
// Swarm.linkNeeds (slot^1 is the opposite direction), so the maintenance
// scan updates either direction through one dense slab instead of reaching
// into the remote peer's storage. The counters are seeded with one popcount
// pass when two peers connect (Bitfield.DiffCounts) and updated in O(1) per
// incident link when a peer gains a piece, so the NodeView interest queries
// (WantsFromMe / INeedFrom) become flag reads instead of bitfield scans. The
// flags change only on 0<->1 counter transitions.
//
// Invariants (checked by TestInterestIndexMatchesNaive):
//   - adjacency is symmetric and alive: depart tears down both sides of every
//     incident link before control returns, so an adjacency entry never
//     references an inactive peer, and q.revIdx[p.revIdx[k]] == k for
//     neighbors p = q.neighbors[...];
//   - linkNeeds[p.linkIdx[k]] == |p.neighbors[k].have \ p.have| at all times,
//     and p.neighbors[k].linkIdx[p.revIdx[k]] == p.linkIdx[k]^1;
//   - p.needsFlags[k] and p.wantsFlags[k] mirror the two counters' signs;
//   - p.idxByID[q.id] is q's slot in p's arrays, and p.nbrOff[k] is
//     p.neighbors[k].wordOff.
//
// Queries about peers with no link (the seeder pseudo-ID, departed or
// never-connected peers) fall back to the original bitfield scans, so the
// indexed and naive paths are observably identical.

// connect wires the symmetric link p—q if absent, seeding both interest
// counters from a single popcount pass over the two bitfields. Counter slot
// pairs are recycled through the swarm's free list, so churn does not grow
// the slab.
func (s *Swarm) connect(p, q *peer) {
	if p == q {
		return
	}
	if _, dup := p.idxByID[q.id]; dup {
		return
	}
	var pOnly, qOnly int
	if s.indexed {
		pOnly, qOnly = p.have.DiffCounts(q.have)
	}
	var li int32
	if n := len(s.freeLinks); n > 0 {
		li = s.freeLinks[n-1]
		s.freeLinks = s.freeLinks[:n-1]
	} else {
		li = int32(len(s.linkNeeds))
		s.linkNeeds = append(s.linkNeeds, 0, 0)
	}
	s.linkNeeds[li] = int32(qOnly)   // p's needs across the link
	s.linkNeeds[li+1] = int32(pOnly) // q's needs across the link
	j, k := len(p.neighbors), len(q.neighbors)
	p.idxByID[q.id] = int32(j)
	p.neighbors = append(p.neighbors, q)
	p.neighborIDs = append(p.neighborIDs, q.id)
	p.linkIdx = append(p.linkIdx, li)
	p.needsFlags = append(p.needsFlags, qOnly > 0)
	p.wantsFlags = append(p.wantsFlags, pOnly > 0)
	p.revIdx = append(p.revIdx, int32(k))
	p.nbrOff = append(p.nbrOff, q.wordOff)
	q.idxByID[p.id] = int32(k)
	q.neighbors = append(q.neighbors, p)
	q.neighborIDs = append(q.neighborIDs, p.id)
	q.linkIdx = append(q.linkIdx, li+1)
	q.needsFlags = append(q.needsFlags, pOnly > 0)
	q.wantsFlags = append(q.wantsFlags, qOnly > 0)
	q.revIdx = append(q.revIdx, int32(j))
	q.nbrOff = append(q.nbrOff, p.wordOff)
}

// detach removes slot i (the link to p) from q's adjacency in O(1), with the
// same swap-remove the simulator has always used so neighbor iteration order
// — and hence every downstream RNG draw — is unchanged. The neighbor moved
// into slot i has its reverse index fixed up on its own side.
func (q *peer) detach(p *peer, i int) {
	delete(q.idxByID, p.id)
	last := len(q.neighbors) - 1
	q.neighbors[i] = q.neighbors[last]
	q.neighbors = q.neighbors[:last]
	q.neighborIDs[i] = q.neighborIDs[last]
	q.neighborIDs = q.neighborIDs[:last]
	q.linkIdx[i] = q.linkIdx[last]
	q.linkIdx = q.linkIdx[:last]
	q.needsFlags[i] = q.needsFlags[last]
	q.needsFlags = q.needsFlags[:last]
	q.wantsFlags[i] = q.wantsFlags[last]
	q.wantsFlags = q.wantsFlags[:last]
	q.revIdx[i] = q.revIdx[last]
	q.revIdx = q.revIdx[:last]
	q.nbrOff[i] = q.nbrOff[last]
	q.nbrOff = q.nbrOff[:last]
	if i < last {
		moved := q.neighbors[i]
		moved.revIdx[q.revIdx[i]] = int32(i)
		q.idxByID[moved.id] = int32(i)
	}
}

// dropEdges tears down every link incident to p (on depart), returning the
// counter slot pairs to the free list. Bumping topoGen invalidates any
// view's cached cursor so flag indices that the swap-removes just shifted
// can never be read.
func (s *Swarm) dropEdges(p *peer) {
	s.topoGen++
	for k, q := range p.neighbors {
		q.detach(p, int(p.revIdx[k]))
		q.strategy.Forget(p.id)
		base := p.linkIdx[k] &^ 1
		s.linkNeeds[base] = 0
		s.linkNeeds[base+1] = 0
		s.freeLinks = append(s.freeLinks, base)
	}
	p.neighbors = p.neighbors[:0]
	p.neighborIDs = p.neighborIDs[:0]
	p.linkIdx = p.linkIdx[:0]
	p.needsFlags = p.needsFlags[:0]
	p.wantsFlags = p.wantsFlags[:0]
	p.revIdx = p.revIdx[:0]
	p.nbrOff = p.nbrOff[:0]
	clear(p.idxByID)
}

// noteGained updates every link incident to p after p gained piece i: p no
// longer needs i from neighbors that hold it, and neighbors that lack it now
// need it from p. O(degree), with each neighbor's holdings tested directly
// in the swarm's word slab and both counter directions updated through the
// dense linkNeeds slab; the remote peer is dereferenced only on the rare
// 0<->1 transitions that flip its flags.
func (s *Swarm) noteGained(p *peer, i int) {
	w, mask := i>>6, uint64(1)<<(uint(i)&63)
	words, linkNeeds := s.haveWords, s.linkNeeds
	nbrOff, linkIdx := p.nbrOff, p.linkIdx
	for k := range nbrOff {
		// Branch-free counter update: when the neighbor holds i this peer's
		// own counter (slot li) decrements, otherwise the reverse counter
		// (slot li^1) increments. Only the rare 0<->1 transition — the
		// counter landing on `held` (0 when decremented, 1 when incremented)
		// — takes the slow path that flips the interest flags.
		held := int32((words[int(nbrOff[k])+w] & mask) >> (uint(i) & 63))
		li := linkIdx[k] ^ (1 - held)
		linkNeeds[li] += 1 - 2*held
		if linkNeeds[li] == 1-held {
			if held != 0 {
				p.needsFlags[k] = false
				p.neighbors[k].wantsFlags[p.revIdx[k]] = false
			} else {
				p.wantsFlags[k] = true
				p.neighbors[k].needsFlags[p.revIdx[k]] = true
			}
		}
	}
}

// peerNeeds reports whether x still needs a piece y holds — the indexed
// equivalent of x.have.Needs(y.have), falling back to the scan when no link
// joins the pair.
func (s *Swarm) peerNeeds(x, y *peer) bool {
	if s.indexed {
		if j, ok := x.idxByID[y.id]; ok {
			return x.needsFlags[j]
		}
	}
	return x.have.Needs(y.have)
}

// wantingIDs appends to dst the IDs of neighbors whose wantsFlags are set —
// the peers that currently need at least one piece p holds — in adjacency
// order, which is exactly the order the generic Neighbors-then-WantsFromMe
// filter visits them.
func (p *peer) wantingIDs(dst []incentive.PeerID) []incentive.PeerID {
	for k, want := range p.wantsFlags {
		if want {
			dst = append(dst, p.neighborIDs[k])
		}
	}
	return dst
}
