package sim

import (
	"math"

	"repro/internal/probe"
	"repro/internal/stats"
)

// Series names recorded during a run.
const (
	// SeriesFairness is the experimental fairness metric plotted in
	// Figures 4b/5c/6c: the mean download-to-upload ratio Σ(dᵢ/uᵢ)/N over
	// active compliant peers. 1 is perfectly fair; values far above 1 mean
	// peers are subsidized beyond their contribution (altruism), values
	// below 1 mean compliant peers are being exploited (free-riding).
	// (The paper's Section V preamble prints the reciprocal Σ(uᵢ/dᵢ)/N,
	// but that average is ≈1 for *every* mechanism by construction; the
	// d/u form reproduces all of the paper's qualitative fairness claims —
	// see EXPERIMENTS.md. The u/d form is recorded as
	// SeriesContribution.)
	SeriesFairness = "fairness"
	// SeriesContribution is the literal Σ(uᵢ/dᵢ)/N average.
	SeriesContribution = "contribution"
	// SeriesBootstrapped is the fraction of arrived peers holding at least
	// one piece (Figure 4c).
	SeriesBootstrapped = "bootstrapped"
	// SeriesCompleted is the fraction of peers that finished downloading.
	SeriesCompleted = "completed"
	// SeriesSusceptibility is the cumulative fraction of peer-uploaded
	// bytes credited to free-riders (Figures 5a, 6a). Seeder bytes are
	// excluded from both numerator and denominator: the metric measures
	// how much of the users' contributed bandwidth the attackers captured.
	SeriesSusceptibility = "susceptibility"
)

// metricsCollector records the paper's five time series. It is the
// simulator's built-in probe: every number it produces is derived from
// the probe.Probe hook stream alone (it never reads swarm internals),
// which proves the probe API carries enough signal to reproduce the
// Figures 4–6 evaluation. The swarm attaches one per run.
type metricsCollector struct {
	probe.Base

	numPeers int
	peers    []metricPeer

	completed         int     // compliant completions
	totalUploaded     float64 // all link bytes, peers + seeder
	peerUploaded      float64 // link bytes uploaded by peers only
	freeRiderCredited float64 // peer-uploaded bytes credited to free-riders

	series map[string]*stats.TimeSeries
}

// metricPeer is the collector's per-peer view, maintained exclusively
// from hook events.
type metricPeer struct {
	uploaded     float64
	credited     float64
	joined       bool
	active       bool
	freeRider    bool
	bootstrapped bool
}

var _ probe.Probe = (*metricsCollector)(nil)

// BeginRun sizes the per-peer records and creates the series.
func (m *metricsCollector) BeginRun(info probe.RunInfo) {
	m.numPeers = info.NumPeers
	m.peers = make([]metricPeer, info.NumPeers)
	m.series = make(map[string]*stats.TimeSeries)
	for _, name := range []string{
		SeriesFairness, SeriesContribution, SeriesBootstrapped,
		SeriesCompleted, SeriesSusceptibility,
	} {
		m.series[name] = stats.NewTimeSeries(name)
	}
}

// PeerJoin marks the peer joined and active.
func (m *metricsCollector) PeerJoin(_ float64, p probe.PeerInfo) {
	rec := &m.peers[p.ID]
	rec.joined = true
	rec.active = true
	rec.freeRider = p.FreeRider
}

// PeerLeave marks the peer inactive.
func (m *metricsCollector) PeerLeave(_ float64, id int) {
	m.peers[id].active = false
}

// PeerBootstrap marks the peer's first credited piece.
func (m *metricsCollector) PeerBootstrap(_ float64, id int) {
	m.peers[id].bootstrapped = true
}

// PeerComplete counts compliant completions for the completed series.
func (m *metricsCollector) PeerComplete(_ float64, id int) {
	if !m.peers[id].freeRider {
		m.completed++
	}
}

// TransferFinish accumulates link-level upload volumes.
func (m *metricsCollector) TransferFinish(_ float64, t probe.Transfer) {
	m.totalUploaded += t.Bytes
	if t.From >= 0 {
		m.peers[t.From].uploaded += t.Bytes
		m.peerUploaded += t.Bytes
	}
}

// Credit accumulates the receiver's credited (plaintext) volume.
func (m *metricsCollector) Credit(_ float64, c probe.CreditInfo) {
	m.peers[c.To].credited += c.Bytes
}

// FreeRiderCredit accumulates the susceptibility numerator.
func (m *metricsCollector) FreeRiderCredit(_ float64, _ int, bytes float64) {
	m.freeRiderCredited += bytes
}

// Sample appends one point to each series from the collector's state.
func (m *metricsCollector) Sample(now float64) {
	var fairSum, contribSum float64
	var fairCount, contribCount int
	bootstrapped := 0
	for i := range m.peers {
		p := &m.peers[i]
		if !p.joined {
			continue
		}
		if p.bootstrapped {
			bootstrapped++
		}
		if !p.freeRider && p.active {
			if p.uploaded > 0 && p.credited > 0 {
				fairSum += p.credited / p.uploaded
				fairCount++
			}
			if p.credited > 0 {
				contribSum += p.uploaded / p.credited
				contribCount++
			}
		}
	}
	if fairCount > 0 {
		m.series[SeriesFairness].Add(now, fairSum/float64(fairCount))
	}
	if contribCount > 0 {
		m.series[SeriesContribution].Add(now, contribSum/float64(contribCount))
	}
	// Fraction of the full population, matching the paper's z(t)/N.
	m.series[SeriesBootstrapped].Add(now, float64(bootstrapped)/float64(m.numPeers))
	m.series[SeriesCompleted].Add(now, float64(m.completed)/float64(m.numPeers))
	if m.peerUploaded > 0 {
		m.series[SeriesSusceptibility].Add(now, m.freeRiderCredited/m.peerUploaded)
	} else {
		m.series[SeriesSusceptibility].Add(now, 0)
	}
}

// sample is the recurring metrics event.
func (s *Swarm) sample(now float64) {
	s.emitSample(now)
	if s.live() {
		s.controlAfter(s.cfg.SampleInterval, s.sample)
	}
}

// PeerStats is the per-peer outcome of a run.
type PeerStats struct {
	ID          int     `json:"id"`
	Capacity    float64 `json:"capacity"`
	FreeRider   bool    `json:"free_rider"`
	Aborted     bool    `json:"aborted"`
	Arrival     float64 `json:"arrival"`
	BootstrapAt float64 `json:"bootstrap_at"` // -1 if never bootstrapped
	FinishAt    float64 `json:"finish_at"`    // -1 if never finished
	Uploaded    float64 `json:"uploaded"`
	Downloaded  float64 `json:"downloaded"` // credited bytes
	RawDown     float64 `json:"raw_down"`   // includes undecryptable ciphertext
}

// Result is everything a run produced.
type Result struct {
	Config            Config                       `json:"config"`
	Peers             []PeerStats                  `json:"peers"`
	Series            map[string]*stats.TimeSeries `json:"series"`
	TotalUploaded     float64                      `json:"total_uploaded"`
	PeerUploaded      float64                      `json:"peer_uploaded"`
	SeederUploaded    float64                      `json:"seeder_uploaded"`
	FreeRiderCredited float64                      `json:"free_rider_credited"`
	Duration          float64                      `json:"duration"`
	EventsProcessed   uint64                       `json:"events_processed"`

	snapshot *AvailabilitySnapshot
}

func (s *Swarm) buildResult() *Result {
	res := &Result{
		Config:            s.cfg,
		Peers:             make([]PeerStats, len(s.peers)),
		Series:            s.metrics.series,
		TotalUploaded:     s.metrics.totalUploaded,
		PeerUploaded:      s.metrics.peerUploaded,
		SeederUploaded:    s.seeder.uploaded,
		FreeRiderCredited: s.metrics.freeRiderCredited,
		Duration:          s.now(),
		EventsProcessed:   s.processed(),
		snapshot:          s.snapshot,
	}
	for i, p := range s.peers {
		res.Peers[i] = PeerStats{
			ID:          int(p.id),
			Capacity:    p.capacity,
			FreeRider:   p.freeRider,
			Aborted:     p.aborted,
			Arrival:     p.arrival,
			BootstrapAt: p.bootstrapAt,
			FinishAt:    p.finishAt,
			Uploaded:    p.uploaded,
			Downloaded:  p.creditedDown,
			RawDown:     p.rawDown,
		}
	}
	return res
}

// CompletionFraction returns the fraction of compliant peers that finished.
func (r *Result) CompletionFraction() float64 {
	total, done := 0, 0
	for _, p := range r.Peers {
		if p.FreeRider || p.Aborted {
			continue
		}
		total++
		if p.FinishAt >= 0 {
			done++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(done) / float64(total)
}

// MeanDownloadTime returns the paper's efficiency metric: the mean
// completion time (finish − arrival) over compliant peers that finished.
// NaN when nobody finished (pure reciprocity).
func (r *Result) MeanDownloadTime() float64 {
	times := r.downloadTimes()
	if len(times) == 0 {
		return math.NaN()
	}
	return stats.Mean(times)
}

// DownloadTimeSummary summarizes compliant completion times.
func (r *Result) DownloadTimeSummary() stats.Summary {
	return stats.Summarize(r.downloadTimes())
}

func (r *Result) downloadTimes() []float64 {
	out := make([]float64, 0, len(r.Peers))
	for _, p := range r.Peers {
		if !p.FreeRider && p.FinishAt >= 0 {
			out = append(out, p.FinishAt-p.Arrival)
		}
	}
	return out
}

// FinalFairness returns the end-of-run mean dᵢ/uᵢ over compliant peers with
// positive uploads and downloads (1 is perfectly fair; see SeriesFairness).
func (r *Result) FinalFairness() float64 {
	var sum float64
	var count int
	for _, p := range r.Peers {
		if !p.FreeRider && p.Downloaded > 0 && p.Uploaded > 0 {
			sum += p.Downloaded / p.Uploaded
			count++
		}
	}
	if count == 0 {
		return math.NaN()
	}
	return sum / float64(count)
}

// ContributionRatio returns the end-of-run Σ(uᵢ/dᵢ)/N over compliant peers
// that downloaded anything — the literal average printed in the paper's
// Section V preamble.
func (r *Result) ContributionRatio() float64 {
	var up, down []float64
	for _, p := range r.Peers {
		if !p.FreeRider && p.Downloaded > 0 {
			up = append(up, p.Uploaded)
			down = append(down, p.Downloaded)
		}
	}
	return stats.RatioFairness(up, down)
}

// LogFairness returns the paper's analytical fairness statistic F (Eq. 3)
// over compliant peers' cumulative rates.
func (r *Result) LogFairness() float64 {
	var up, down []float64
	for _, p := range r.Peers {
		if !p.FreeRider {
			up = append(up, p.Uploaded)
			down = append(down, p.Downloaded)
		}
	}
	return stats.LogFairness(down, up)
}

// Susceptibility returns the fraction of peer-uploaded bytes credited to
// free-riders, the paper's Figure 5a/6a metric.
func (r *Result) Susceptibility() float64 {
	if r.PeerUploaded == 0 {
		return 0
	}
	return r.FreeRiderCredited / r.PeerUploaded
}

// MeanBootstrapTime returns the mean time from arrival to first credited
// piece over compliant peers that bootstrapped; NaN if none did.
func (r *Result) MeanBootstrapTime() float64 {
	var times []float64
	for _, p := range r.Peers {
		if !p.FreeRider && p.BootstrapAt >= 0 {
			times = append(times, p.BootstrapAt-p.Arrival)
		}
	}
	if len(times) == 0 {
		return math.NaN()
	}
	return stats.Mean(times)
}

// BootstrapFraction returns the fraction of compliant peers that received
// at least one piece by time t (step-interpolated from the series).
func (r *Result) BootstrapFraction(t float64) float64 {
	return r.Series[SeriesBootstrapped].At(t, 0)
}
