package sim

import (
	"fmt"
	"math"

	"repro/internal/eventsim"
	"repro/internal/incentive"
	"repro/internal/metrics"
	"repro/internal/probe"
)

// This file is the swarm's side of the sharded parallel engine
// (eventsim.Sharded). The mapping:
//
//   - Lane i (0 <= i < NumPeers) is peer i; lane NumPeers is the seeder.
//   - In-window handlers (kick, startUpload, release, land) touch only
//     their own lane's peer plus *barrier-stable* shared state — bitfields,
//     the active/incomplete lists, availability counts — which mutate only
//     at barriers, so concurrent reads are race-free and P-independent.
//   - Every piece of probe output and every cross-peer mutation funnels
//     through the barrier: hook emissions are staged as shardRec records
//     replayed in deterministic (time, lane, seq) order, and piece credits
//     run inside the replay via the same credit() the serial engine uses.
//   - All transfer durations are >= the lookahead window by construction
//     (the window is the minimum possible piece-transfer time), so a
//     transfer started in window k always lands in a later window and the
//     cross-lane Send never violates the conservative lookahead.
//
// The result is identical for every shard count >= 1: the record order and
// every RNG draw depend only on (seed, lane), never on lane placement.

// shardRec is one staged barrier record: a probe emission and, for kGain,
// the deferred receiver-side credit. Flat struct, no interfaces — staging a
// record does not allocate.
type shardRec struct {
	kind     uint8
	from     int32
	to       int32
	piece    int32
	receiver *peer
	bytes    float64
	duration float64
}

// The record kinds, in the lifecycle order of one transfer.
const (
	recUnchoke uint8 = iota
	recStart
	recFinish
	recGain
)

// lookaheadWindow derives the engine's conservative lookahead: the minimum
// time any piece transfer can take, over every peer bandwidth class (each
// transfer gets Rate/UploadSlots, so the floor is PieceSize*Slots/Rate) and
// the seeder. Any event one lane schedules on another is at least one
// transfer away, so this window is a safe horizon for concurrent execution.
func lookaheadWindow(cfg Config) float64 {
	w := math.Inf(1)
	for _, cl := range cfg.Bandwidth.Classes {
		if cl.Rate > 0 {
			w = math.Min(w, cfg.PieceSize*float64(cfg.UploadSlots)/cl.Rate)
		}
	}
	if cfg.SeederRate > 0 {
		w = math.Min(w, cfg.PieceSize*float64(cfg.SeederSlots)/cfg.SeederRate)
	}
	if math.IsInf(w, 0) {
		w = cfg.PollInterval // degenerate config: no one can upload
	}
	return w
}

// laneOf maps a peer to its engine lane.
func laneOf(p *peer) int { return int(p.id) }

// shardKick is the sharded kick: fill p's free upload slots from p's own
// lane, arming a jittered lane-local retry when the strategy has nothing to
// send. It runs in-window on p's shard.
func (s *Swarm) shardKick(p *peer, now float64) {
	if !p.active {
		return
	}
	for p.alloc.Free() > 0 {
		if !s.shardStartUpload(p, now) {
			s.shardArmRetry(p, now)
			return
		}
	}
	p.retry.Cancel()
	p.retry = eventsim.Timer{}
}

func (s *Swarm) shardArmRetry(p *peer, now float64) {
	if p.retry.Pending() {
		return
	}
	delay := s.cfg.PollInterval * (0.5 + p.laneRNG.Float64())
	p.retry = s.sh.LaneSchedule(laneOf(p), now+delay, p.retryFn)
}

// shardStartUpload mirrors startUpload on the sender's lane. All strategy
// and piece-selection draws come from the sender's lane stream; the
// receiver lookup, piece pick, and credit decision read barrier-stable
// state. The completion is split between both parties: a lane event on the
// sender (slot release, OnSent) and a cross-lane message to the receiver
// (arrival, credit staging), both at now+duration >= the next barrier.
func (s *Swarm) shardStartUpload(p *peer, now float64) bool {
	p.view.now = now
	receiverID := p.strategy.NextReceiver(p.view)
	if receiverID == incentive.NoPeer {
		return false
	}
	s.sh.Stage(laneOf(p), shardRec{kind: recUnchoke, from: int32(p.id), to: int32(receiverID)})
	receiver := s.lookup(receiverID)
	if receiver == nil || !receiver.active {
		return false
	}
	pieceIdx := s.pickPiece(p.laneRNG, p.have, receiver)
	if pieceIdx < 0 {
		return false
	}
	duration, ok := p.alloc.Acquire(s.cfg.PieceSize)
	if !ok {
		return false
	}
	s.sh.Stage(laneOf(p), shardRec{
		kind:     recStart,
		from:     int32(p.id),
		to:       int32(receiver.id),
		piece:    int32(pieceIdx),
		receiver: receiver,
		bytes:    s.cfg.PieceSize,
		duration: duration,
	})
	// The T-Chain key-release verdict is decided at transfer start from the
	// sender's stream and barrier-stable collusion state, then carried by
	// value to both completion events.
	cred := s.credited(p.laneRNG, p, receiver)
	at := now + duration
	// Sender-side completion is scheduled first so its staged finish record
	// precedes the receiver's gain record at the barrier.
	s.sh.LaneSchedule(laneOf(p), at, func(t float64) { s.shardRelease(p, receiver, pieceIdx, cred, t) })
	s.sh.Send(laneOf(p), laneOf(receiver), at, func(t float64) {
		s.shardLand(p.id, receiver, pieceIdx, cred, t)
	})
	return true
}

// shardRelease is the sender's half of a completed transfer: free the slot,
// record the upload, apply OnSent or the distrust penalty, and look for the
// next send. Runs on the sender's lane.
func (s *Swarm) shardRelease(sender, receiver *peer, pieceIdx int, cred bool, now float64) {
	sender.alloc.Release()
	bytes := s.cfg.PieceSize
	sender.uploaded += bytes
	s.shardFinish(laneOf(sender), sender.id, receiver.id, pieceIdx, receiver)
	if receiver.active {
		if cred {
			if !sender.freeRider {
				sender.view.now = now
				sender.strategy.OnSent(sender.view, receiver.id, bytes)
			}
		} else {
			sender.distrust[receiver.id] = true
		}
	}
	s.shardKick(sender, now)
}

// shardLand is the receiver's half: the bytes arrive on the receiver's
// lane. The credit itself (bitfield set, availability, ledger, OnReceived,
// completion/departure) is deferred to the barrier via a recGain record so
// it runs under the global deterministic order; the raw byte count and the
// re-kick are lane-local. from == SeederID marks a seeder upload.
func (s *Swarm) shardLand(from incentive.PeerID, receiver *peer, pieceIdx int, cred bool, now float64) {
	if !receiver.active {
		return
	}
	receiver.rawDown += s.cfg.PieceSize
	if cred {
		s.sh.Stage(laneOf(receiver), shardRec{
			kind:     recGain,
			from:     int32(from),
			to:       int32(receiver.id),
			piece:    int32(pieceIdx),
			receiver: receiver,
			bytes:    s.cfg.PieceSize,
		})
	}
	s.shardKick(receiver, now)
}

// shardFinish stages the transfer-finish record for either party's
// completion; split out so the seeder path shares it.
func (s *Swarm) shardFinish(lane int, from, to incentive.PeerID, pieceIdx int, receiver *peer) {
	s.sh.Stage(lane, shardRec{
		kind:     recFinish,
		from:     int32(from),
		to:       int32(to),
		piece:    int32(pieceIdx),
		receiver: receiver,
		bytes:    s.cfg.PieceSize,
	})
}

// replayRec executes one staged record at the barrier, in global
// deterministic order. This is where the swarm-global mutations and every
// probe emission happen, single-threaded.
func (s *Swarm) replayRec(now float64, r shardRec) {
	switch r.kind {
	case recUnchoke:
		s.emitUnchoke(now, int(r.from), int(r.to))
	case recStart:
		r.receiver.pending.Set(int(r.piece))
		s.emitTransferStart(now, probe.Transfer{
			From:     int(r.from),
			To:       int(r.to),
			Piece:    int(r.piece),
			Bytes:    r.bytes,
			Duration: r.duration,
		})
	case recFinish:
		r.receiver.pending.Clear(int(r.piece))
		s.emitTransferFinish(now, probe.Transfer{
			From:  int(r.from),
			To:    int(r.to),
			Piece: int(r.piece),
			Bytes: r.bytes,
		})
	case recGain:
		if r.receiver.freeRider {
			s.emitFreeRiderCredit(now, int(r.receiver.id), r.bytes)
		}
		r.receiver.view.now = now
		// credit dedups via the have bitfield, so two lanes racing the same
		// piece toward one receiver (both picked it from pre-window state)
		// resolve exactly like the serial engine's in-flight duplicates.
		s.credit(incentive.PeerID(r.from), r.receiver, int(r.piece), r.bytes, now)
	}
}

// --- seeder ---

// shardSchedule fills the seeder's slots from the seeder lane; the sharded
// twin of seeder.schedule.
func (sd *seeder) shardSchedule(now float64) {
	if sd.swarm.cfg.SeederRate <= 0 || sd.offline {
		return
	}
	for sd.alloc.Free() > 0 {
		if !sd.shardStartUpload(now) {
			sd.shardArmRetry(now)
			return
		}
	}
}

func (sd *seeder) shardArmRetry(now float64) {
	s := sd.swarm
	if sd.retrying || !s.live() {
		return
	}
	sd.retrying = true
	delay := s.cfg.PollInterval * (0.5 + s.seederRNG.Float64())
	s.sh.LaneSchedule(s.seederLane, now+delay, sd.retryFn)
}

// shardStartUpload mirrors seeder.startUpload on the seeder lane, drawing
// from the seeder's dedicated stream and reading the barrier-stable
// incomplete list.
func (sd *seeder) shardStartUpload(now float64) bool {
	s := sd.swarm
	count := 0
	var receiver *peer
	check := len(sd.distrust) != 0
	for _, p := range s.incomplete {
		if check && sd.distrust[int(p.id)] {
			continue
		}
		count++
		if s.seederRNG.Intn(count) == 0 {
			receiver = p
		}
	}
	if receiver == nil {
		return false
	}
	s.sh.Stage(s.seederLane, shardRec{kind: recUnchoke, from: int32(SeederID), to: int32(receiver.id)})
	pieceIdx := s.pickPiece(s.seederRNG, nil, receiver)
	if pieceIdx < 0 {
		return false
	}
	duration, ok := sd.alloc.Acquire(s.cfg.PieceSize)
	if !ok {
		return false
	}
	s.sh.Stage(s.seederLane, shardRec{
		kind:     recStart,
		from:     int32(SeederID),
		to:       int32(receiver.id),
		piece:    int32(pieceIdx),
		receiver: receiver,
		bytes:    s.cfg.PieceSize,
		duration: duration,
	})
	cred := s.credited(s.seederRNG, nil, receiver)
	at := now + duration
	s.sh.LaneSchedule(s.seederLane, at, func(t float64) { sd.shardRelease(receiver, pieceIdx, cred, t) })
	s.sh.Send(s.seederLane, laneOf(receiver), at, func(t float64) {
		s.shardLand(SeederID, receiver, pieceIdx, cred, t)
	})
	return true
}

// shardRelease is the seeder's completion half on the seeder lane.
func (sd *seeder) shardRelease(receiver *peer, pieceIdx int, cred bool, now float64) {
	s := sd.swarm
	sd.alloc.Release()
	sd.uploaded += s.cfg.PieceSize
	s.shardFinish(s.seederLane, SeederID, receiver.id, pieceIdx, receiver)
	if receiver.active && !cred {
		sd.distrust[int(receiver.id)] = true
	}
	sd.shardSchedule(now)
}

// ShardStats exposes the engine's per-shard counters (events processed,
// window stalls, cross-shard traffic). Nil under the serial engine. The
// breakdown depends on the shard count — it is diagnostics, deliberately
// kept out of Result so Results stay comparable across shard counts.
func (s *Swarm) ShardStats() []eventsim.ShardStats {
	if s.sh == nil {
		return nil
	}
	return s.sh.Stats()
}

// PublishShardMetrics registers the engine's per-shard counters as
// pull-style gauges on reg, one series per (shard, counter) with the shard
// index baked in as a label:
//
//	sim_shard_events{shard="N"}       lane events executed on shard N
//	sim_shard_stalls{shard="N"}       windows shard N spent with no due event
//	sim_shard_cross_sent{shard="N"}   cross-shard messages sent from shard N
//	sim_shard_cross_recv{shard="N"}   cross-shard messages delivered to N
//	sim_shard_staged{shard="N"}       barrier records staged by shard N
//	sim_shard_virtual_time{shard="N"} latest event time executed, whole seconds
//
// Values are read at registry-snapshot time. The engine's counters are
// owned by worker goroutines mid-window, so scrape after Run (the usual
// shape: run, then snapshot or serve /metrics) for settled values. No-op
// under the serial engine.
func (s *Swarm) PublishShardMetrics(reg *metrics.Registry) {
	if s.sh == nil || reg == nil {
		return
	}
	stat := func(i int, pick func(eventsim.ShardStats) int64) func() int64 {
		return func() int64 { return pick(s.sh.Stats()[i]) }
	}
	for i := 0; i < s.sh.Shards(); i++ {
		label := fmt.Sprintf(`{shard="%d"}`, i)
		reg.RegisterGaugeFunc("sim_shard_events"+label,
			stat(i, func(st eventsim.ShardStats) int64 { return int64(st.Processed) }))
		reg.RegisterGaugeFunc("sim_shard_stalls"+label,
			stat(i, func(st eventsim.ShardStats) int64 { return int64(st.Stalls) }))
		reg.RegisterGaugeFunc("sim_shard_cross_sent"+label,
			stat(i, func(st eventsim.ShardStats) int64 { return int64(st.CrossSent) }))
		reg.RegisterGaugeFunc("sim_shard_cross_recv"+label,
			stat(i, func(st eventsim.ShardStats) int64 { return int64(st.CrossRecv) }))
		reg.RegisterGaugeFunc("sim_shard_staged"+label,
			stat(i, func(st eventsim.ShardStats) int64 { return int64(st.Staged) }))
		reg.RegisterGaugeFunc("sim_shard_virtual_time"+label,
			stat(i, func(st eventsim.ShardStats) int64 { return int64(st.MaxTime) }))
	}
}
