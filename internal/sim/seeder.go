package sim

import (
	"repro/internal/bandwidth"
	"repro/internal/eventsim"
	"repro/internal/probe"
)

// seeder is the origin server: it holds every piece and uploads
// continuously at its configured rate, choosing uniformly among active
// incomplete peers and serving the locally rarest piece. The seeder takes
// part in every algorithm identically — it is the n_S bootstrap source of
// the paper's Table II analysis.
type seeder struct {
	swarm    *Swarm
	alloc    *bandwidth.Allocator
	uploaded float64
	retrying bool
	offline  bool // the seeder exited (failure injection)
	// distrust marks peers that reneged on reciprocating a seeder upload
	// under T-Chain; the seeder stops serving them.
	distrust map[int]bool
	retryFn  eventsim.Handler // cached idle-retry closure
}

func newSeeder(s *Swarm) *seeder {
	rate := s.cfg.SeederRate
	if rate <= 0 {
		rate = 1 // a dormant seeder still needs a valid allocator
	}
	sd := &seeder{
		swarm:    s,
		alloc:    bandwidth.NewAllocator(rate, s.cfg.SeederSlots),
		distrust: make(map[int]bool),
	}
	sd.retryFn = func(now float64) {
		sd.retrying = false
		if s.sh != nil {
			sd.shardSchedule(now)
		} else {
			sd.schedule()
		}
	}
	return sd
}

// schedule fills the seeder's free slots, polling again later if no peer
// currently needs anything.
func (sd *seeder) schedule() {
	if sd.swarm.cfg.SeederRate <= 0 || sd.offline {
		return
	}
	for sd.alloc.Free() > 0 {
		if !sd.startUpload() {
			sd.armRetry()
			return
		}
	}
}

func (sd *seeder) armRetry() {
	if sd.retrying || !sd.swarm.live() {
		return
	}
	sd.retrying = true
	delay := sd.swarm.cfg.PollInterval * (0.5 + sd.swarm.rng.Float64())
	sd.swarm.engine.After(delay, sd.retryFn)
}

// startUpload picks a random active incomplete peer and sends it a rarest
// missing piece. Reports whether a transfer began.
func (sd *seeder) startUpload() bool {
	s := sd.swarm
	// Reservoir-sample an eligible receiver from the id-ascending list of
	// active incomplete peers — the same eligible sequence (hence the same
	// rng draws) as the old full-population scan, without touching peers
	// that have finished or left.
	count := 0
	var receiver *peer
	check := len(sd.distrust) != 0
	for _, p := range s.incomplete {
		if check && sd.distrust[int(p.id)] {
			continue
		}
		count++
		if s.rng.Intn(count) == 0 {
			receiver = p
		}
	}
	if receiver == nil {
		return false
	}
	s.emitUnchoke(s.engine.Now(), int(SeederID), int(receiver.id))
	pieceIdx := s.pickPiece(s.rng, nil, receiver)
	if pieceIdx < 0 {
		return false
	}
	duration, ok := sd.alloc.Acquire(s.cfg.PieceSize)
	if !ok {
		return false
	}
	receiver.pending.Set(pieceIdx)
	s.emitTransferStart(s.engine.Now(), probe.Transfer{
		From:     int(SeederID),
		To:       int(receiver.id),
		Piece:    pieceIdx,
		Bytes:    s.cfg.PieceSize,
		Duration: duration,
	})
	s.engine.After(duration, s.newFlight(nil, receiver, pieceIdx).handler)
	return true
}

// deliver completes a seeder transfer. The T-Chain key-release rule applies
// to the seeder too: a free-rider that will not reciprocate (indirectly —
// the seeder needs nothing) gets ciphertext it cannot decrypt.
func (sd *seeder) deliver(receiver *peer, pieceIdx int, now float64) {
	s := sd.swarm
	sd.alloc.Release()
	bytes := s.cfg.PieceSize
	sd.uploaded += bytes
	receiver.pending.Clear(pieceIdx)
	s.emitTransferFinish(now, probe.Transfer{
		From:  int(SeederID),
		To:    int(receiver.id),
		Piece: pieceIdx,
		Bytes: bytes,
	})

	if receiver.active {
		receiver.rawDown += bytes
		if s.credited(s.rng, nil, receiver) {
			s.credit(SeederID, receiver, pieceIdx, bytes, now)
		} else {
			sd.distrust[int(receiver.id)] = true
		}
	}
	sd.schedule()
	if receiver.active {
		s.kick(receiver)
	}
}
