package sim

import (
	"math/rand"

	"repro/internal/bandwidth"
	"repro/internal/eventsim"
	"repro/internal/incentive"
	"repro/internal/piece"
)

// SeederID is the pseudo-peer ID of the seeder in strategy callbacks.
const SeederID incentive.PeerID = -2

// peer is one simulated swarm member.
type peer struct {
	id          incentive.PeerID
	capacity    float64
	alloc       *bandwidth.Allocator
	have        *piece.Bitfield
	pending     map[int]bool // pieces currently in flight toward this peer
	strategy    incentive.Strategy
	view        *peerView
	neighbors   []*peer
	neighborSet map[incentive.PeerID]bool

	freeRider bool
	aborted   bool // crashed mid-download (failure injection)
	arrival   float64
	joined    bool
	active    bool // joined and not yet departed

	// distrust marks peers that reneged on a T-Chain reciprocation with
	// this peer; they are never served again (the mechanism's local
	// reputation component).
	distrust map[incentive.PeerID]bool

	bootstrapAt float64 // time of first credited piece, -1 if never
	finishAt    float64 // completion time, -1 if never

	uploaded     float64 // bytes sent (link usage)
	creditedDown float64 // bytes received and credited (plaintext)
	rawDown      float64 // bytes received including uncredited ciphertext

	retry eventsim.Timer // pending idle-retry; the zero Timer when none
}

// addNeighbor creates the (symmetric) edge p—q if absent.
func (p *peer) addNeighbor(q *peer) {
	if p == q || p.neighborSet[q.id] {
		return
	}
	p.neighborSet[q.id] = true
	p.neighbors = append(p.neighbors, q)
	q.neighborSet[p.id] = true
	q.neighbors = append(q.neighbors, p)
}

// dropNeighbor removes q from p's adjacency (one direction).
func (p *peer) dropNeighbor(q *peer) {
	if !p.neighborSet[q.id] {
		return
	}
	delete(p.neighborSet, q.id)
	for i, n := range p.neighbors {
		if n == q {
			p.neighbors[i] = p.neighbors[len(p.neighbors)-1]
			p.neighbors = p.neighbors[:len(p.neighbors)-1]
			break
		}
	}
}

// peerView adapts a peer to incentive.NodeView. One instance per peer,
// reused across decisions; the scratch slice keeps Neighbors allocation-free
// on the hot path.
type peerView struct {
	swarm   *Swarm
	peer    *peer
	scratch []incentive.PeerID
}

var _ incentive.NodeView = (*peerView)(nil)

func (v *peerView) Self() incentive.PeerID { return v.peer.id }
func (v *peerView) Now() float64           { return v.swarm.engine.Now() }
func (v *peerView) RNG() *rand.Rand        { return v.swarm.rng }

// Neighbors returns the IDs of currently active neighbors. The returned
// slice is valid until the next call on this view.
func (v *peerView) Neighbors() []incentive.PeerID {
	v.scratch = v.scratch[:0]
	for _, n := range v.peer.neighbors {
		if n.active && !v.peer.distrust[n.id] {
			v.scratch = append(v.scratch, n.id)
		}
	}
	return v.scratch
}

// WantsFromMe reports whether the identified peer needs a piece we hold.
func (v *peerView) WantsFromMe(id incentive.PeerID) bool {
	other := v.swarm.lookup(id)
	if other == nil || !other.active {
		return false
	}
	return other.have.Needs(v.peer.have)
}

// INeedFrom reports whether the identified peer holds a piece we need.
func (v *peerView) INeedFrom(id incentive.PeerID) bool {
	if id == SeederID {
		return !v.peer.have.Complete()
	}
	other := v.swarm.lookup(id)
	if other == nil {
		return false
	}
	return v.peer.have.Needs(other.have)
}

// PieceCount returns how many pieces the identified peer holds.
func (v *peerView) PieceCount(id incentive.PeerID) int {
	if id == SeederID {
		return v.swarm.cfg.NumPieces
	}
	other := v.swarm.lookup(id)
	if other == nil {
		return 0
	}
	return other.have.Count()
}

// Reputation returns the global ledger score for the identified peer.
func (v *peerView) Reputation(id incentive.PeerID) float64 {
	return v.swarm.ledger.Score(int(id))
}
