package sim

import (
	"math/rand"

	"repro/internal/bandwidth"
	"repro/internal/eventsim"
	"repro/internal/incentive"
	"repro/internal/piece"
)

// SeederID is the pseudo-peer ID of the seeder in strategy callbacks.
const SeederID incentive.PeerID = -2

// peer is one simulated swarm member.
type peer struct {
	id       incentive.PeerID
	capacity float64
	alloc    *bandwidth.Allocator
	have     *piece.Bitfield
	wordOff  int32           // have's word offset in Swarm.haveWords
	pending  *piece.Bitfield // pieces currently in flight toward this peer
	strategy incentive.Strategy
	view     *peerView

	// The per-neighbor interest index, structure-of-arrays: index i of each
	// slice describes the link to neighbors[i], and idxByID resolves a
	// neighbor ID to that slot. See interest.go for the invariants. Keeping
	// counters and flags in this peer's contiguous storage lets the hot-path
	// queries and the noteGained maintenance scan walk dense memory.
	neighbors   []*peer
	neighborIDs []incentive.PeerID
	linkIdx     []int32 // linkIdx[i]: my counter slot in Swarm.linkNeeds
	wantsFlags  []bool  // wantsFlags[i]: neighbor i needs a piece I hold
	needsFlags  []bool  // needsFlags[i]: neighbor i holds a piece I need
	revIdx      []int32 // revIdx[i]: my slot in neighbor i's arrays
	nbrOff      []int32 // nbrOff[i]: neighbor i's offset in Swarm.haveWords
	idxByID     map[incentive.PeerID]int32

	freeRider bool
	aborted   bool // crashed mid-download (failure injection)
	arrival   float64
	joined    bool
	active    bool // joined and not yet departed

	// distrust marks peers that reneged on a T-Chain reciprocation with
	// this peer; they are never served again (the mechanism's local
	// reputation component).
	distrust map[incentive.PeerID]bool

	bootstrapAt float64 // time of first credited piece, -1 if never
	finishAt    float64 // completion time, -1 if never

	uploaded     float64 // bytes sent (link usage)
	creditedDown float64 // bytes received and credited (plaintext)
	rawDown      float64 // bytes received including uncredited ciphertext

	retry   eventsim.Timer   // pending idle-retry; the zero Timer when none
	retryFn eventsim.Handler // cached retry closure, allocated once per peer

	// Sharded-engine state, nil/unused under the serial engine. Each peer is
	// one lane with its own RNG stream, so its draws are independent of how
	// lanes are packed onto shards; kickFn is the cached barrier-kick
	// handler scheduled whenever barrier-side state changes make the peer
	// worth re-polling.
	laneRNG *rand.Rand
	kickFn  eventsim.Handler
}

// peerView adapts a peer to incentive.NodeView. One instance per peer,
// reused across decisions; the scratch slice keeps Neighbors allocation-free
// on the hot path. When scratch is a wholesale copy of the peer's neighbor
// IDs (direct == true), the cursor lets the strategies' sequential
// WantsFromMe/INeedFrom pattern read the peer's live interest flags by
// position — no map lookup, no edge dereference.
type peerView struct {
	swarm   *Swarm
	peer    *peer
	now     float64 // current virtual time under the sharded engine
	scratch []incentive.PeerID
	cursor  int
	topoGen uint64 // swarm topology generation the scratch was built at
	direct  bool   // scratch indices == the peer's parallel-array indices
}

var _ incentive.NodeView = (*peerView)(nil)

func (v *peerView) Self() incentive.PeerID { return v.peer.id }

// Now returns the current virtual time. Under the sharded engine shards
// advance concurrently, so there is no global clock to consult; the
// dispatching handler stamps v.now before invoking strategy code.
func (v *peerView) Now() float64 {
	if v.swarm.sh != nil {
		return v.now
	}
	return v.swarm.engine.Now()
}

// RNG returns the random stream strategy code must use: the swarm-global
// stream under the serial engine, the peer's own lane stream under the
// sharded engine (the global stream is not safe — or deterministic — to
// share across concurrently executing shards).
func (v *peerView) RNG() *rand.Rand {
	if v.swarm.sh != nil {
		return v.peer.laneRNG
	}
	return v.swarm.rng
}

// Neighbors returns the IDs of currently active neighbors. The returned
// slice is valid until the next call on this view, and the caller may
// overwrite it in place (strategies filter it without allocating).
func (v *peerView) Neighbors() []incentive.PeerID {
	p := v.peer
	if len(p.distrust) == 0 {
		// Every adjacency entry is active (depart tears down its edges
		// before control returns to the simulator), so the id array can be
		// copied wholesale and scratch positions line up with the peer's
		// parallel interest-flag arrays.
		v.scratch = append(v.scratch[:0], p.neighborIDs...)
		v.direct = v.swarm.indexed
	} else {
		v.scratch = v.scratch[:0]
		for _, n := range p.neighbors {
			if n.active && !p.distrust[n.id] {
				v.scratch = append(v.scratch, n.id)
			}
		}
		v.direct = false
	}
	v.cursor = 0
	v.topoGen = v.swarm.topoGen
	return v.scratch
}

// WantsFromMe reports whether the identified peer needs a piece we hold.
//
// Strategies overwhelmingly query neighbors in Neighbors() order, so a
// cursor over the scratch slice answers most lookups from the peer's live
// wantsFlags array; the flags are maintained incrementally on every piece
// gain, so a hit is always current. The topology-generation check discards
// the hint if any peer departed (shifting flag positions) since the scratch
// was built; misses fall back to the edge map, and peers with no edge get
// the exact pre-index scan semantics.
func (v *peerView) WantsFromMe(id incentive.PeerID) bool {
	if c := v.cursor; v.direct && c < len(v.scratch) && v.scratch[c] == id && v.topoGen == v.swarm.topoGen {
		v.cursor = c + 1
		return v.peer.wantsFlags[c]
	}
	if v.swarm.indexed {
		if j, ok := v.peer.idxByID[id]; ok {
			// A link implies the other side is an active neighbor; the flag
			// mirrors its incrementally maintained needs counter.
			return v.peer.wantsFlags[j]
		}
	}
	other := v.swarm.lookup(id)
	if other == nil || !other.active {
		return false
	}
	return other.have.Needs(v.peer.have)
}

// WantingNeighbors returns the neighbors that currently need at least one
// piece this peer holds, implementing the incentive package's optional
// fast-path interface: one pass over the live interest flags replaces the
// per-neighbor WantsFromMe calls of the generic filter, with the identical
// result in the identical order. It declines (ok == false) when the index is
// off or a T-Chain distrust filter applies, sending the caller down the
// generic path.
func (v *peerView) WantingNeighbors() ([]incentive.PeerID, bool) {
	p := v.peer
	if !v.swarm.indexed || len(p.distrust) != 0 {
		return nil, false
	}
	v.scratch = p.wantingIDs(v.scratch[:0])
	// The scratch positions no longer line up with the peer's parallel
	// arrays, so out-of-sequence queries must take the map path.
	v.direct = false
	v.cursor = len(v.scratch)
	return v.scratch, true
}

// INeedFrom reports whether the identified peer holds a piece we need.
func (v *peerView) INeedFrom(id incentive.PeerID) bool {
	if id == SeederID {
		return !v.peer.have.Complete()
	}
	if c := v.cursor; v.direct && c < len(v.scratch) && v.scratch[c] == id && v.topoGen == v.swarm.topoGen {
		v.cursor = c + 1
		return v.peer.needsFlags[c]
	}
	if v.swarm.indexed {
		if j, ok := v.peer.idxByID[id]; ok {
			return v.peer.needsFlags[j]
		}
	}
	other := v.swarm.lookup(id)
	if other == nil {
		return false
	}
	return v.peer.have.Needs(other.have)
}

// PieceCount returns how many pieces the identified peer holds.
func (v *peerView) PieceCount(id incentive.PeerID) int {
	if id == SeederID {
		return v.swarm.cfg.NumPieces
	}
	other := v.swarm.lookup(id)
	if other == nil {
		return 0
	}
	return other.have.Count()
}

// Reputation returns the global ledger score for the identified peer.
func (v *peerView) Reputation(id incentive.PeerID) float64 {
	return v.swarm.ledger.Score(int(id))
}
