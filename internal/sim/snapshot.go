package sim

import (
	"repro/internal/stats"
)

// AvailabilitySnapshot captures the swarm's piece-availability state at one
// instant: the distribution of per-peer piece counts and the empirical
// pairwise exchange feasibility, sampled over random ordered pairs of
// active peers. The validate-availability experiment compares these
// against the paper's Eq. 4–7 closed forms evaluated on the same
// piece-count distribution.
type AvailabilitySnapshot struct {
	// At is the virtual time the snapshot was taken.
	At float64 `json:"at"`
	// PieceCounts holds each active peer's piece count.
	PieceCounts []int `json:"piece_counts"`
	// PiAltruism is the empirical probability that a random receiver needs
	// at least one piece a random sender holds (Corollary 2's π_A).
	PiAltruism float64 `json:"pi_altruism"`
	// PiDirect is the empirical probability that two random peers each
	// need something from the other (Eq. 4's π_DR).
	PiDirect float64 `json:"pi_direct"`
	// Pairs is the number of sampled ordered pairs.
	Pairs int `json:"pairs"`
}

// snapshotPairs is how many ordered pairs the snapshot samples.
const snapshotPairs = 4000

// takeSnapshot records the availability state at virtual time now.
func (s *Swarm) takeSnapshot(now float64) {
	active := make([]*peer, 0, s.activeCount)
	for _, p := range s.peers {
		if p.active {
			active = append(active, p)
		}
	}
	snap := &AvailabilitySnapshot{At: now, PieceCounts: make([]int, len(active))}
	for i, p := range active {
		snap.PieceCounts[i] = p.have.Count()
	}
	if len(active) >= 2 {
		needHits, mutualHits := 0, 0
		for trial := 0; trial < snapshotPairs; trial++ {
			idx := stats.SampleWithoutReplacement(s.rng, len(active), 2)
			receiver, sender := active[idx[0]], active[idx[1]]
			needs := receiver.have.Needs(sender.have)
			if needs {
				needHits++
				if sender.have.Needs(receiver.have) {
					mutualHits++
				}
			}
		}
		snap.PiAltruism = float64(needHits) / snapshotPairs
		snap.PiDirect = float64(mutualHits) / snapshotPairs
		snap.Pairs = snapshotPairs
	}
	s.snapshot = snap
}

// Snapshot returns the availability snapshot taken at Config.SnapshotAt,
// or nil if none was requested or the swarm drained before that time.
func (r *Result) Snapshot() *AvailabilitySnapshot { return r.snapshot }
