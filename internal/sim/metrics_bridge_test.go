package sim

import (
	"testing"

	"repro/internal/algo"
	"repro/internal/metrics"
	"repro/internal/probe"
)

// TestMetricsBridge attaches the probe.Metrics bridge alongside a
// probe.Counter and asserts the registry's sim_ counters match the
// counter's per-hook tallies — the simulator and the live cluster feed
// the same metric vocabulary through the same Registry.
func TestMetricsBridge(t *testing.T) {
	cfg := testConfig(algo.BitTorrent)
	sw, err := NewSwarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	c := &probe.Counter{}
	if err := sw.Attach(probe.Multi(c, probe.NewMetrics(reg))); err != nil {
		t.Fatal(err)
	}
	res, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	for hook, want := range c.Counts() {
		name := "sim_" + hook + "_total"
		if got := snap.Counters[name]; uint64(got) != want {
			// Hooks with zero events never register a counter; that is
			// fine as long as the tally agrees.
			if !(got == 0 && want == 0) {
				t.Errorf("%s = %d, want %d", name, got, want)
			}
		}
	}
	if got := snap.Counters["sim_credited_bytes_total"]; float64(got) != c.CreditedBytes() {
		t.Errorf("sim_credited_bytes_total = %d, want %v", got, c.CreditedBytes())
	}
	counts := c.Counts()
	th := snap.Histograms["sim_transfer_bytes"]
	if th.Count != counts[probe.HookTransferStart] {
		t.Errorf("sim_transfer_bytes count = %d, want starts = %d",
			th.Count, counts[probe.HookTransferStart])
	}
	if want := int64(counts[probe.HookTransferStart]) * int64(cfg.PieceSize); th.Sum != want {
		t.Errorf("sim_transfer_bytes sum = %d, want starts*pieceSize = %d", th.Sum, want)
	}
	if res.EventsProcessed == 0 {
		t.Error("swarm processed no events")
	}
	// Every joiner eventually leaves or survives to the end; the gauge
	// must equal joins minus leaves.
	if got := snap.Gauges["sim_active_peers"]; got != int64(counts[probe.HookPeerJoin])-int64(counts[probe.HookPeerLeave]) {
		t.Errorf("sim_active_peers = %d, want joins-leaves = %d",
			got, int64(counts[probe.HookPeerJoin])-int64(counts[probe.HookPeerLeave]))
	}
}
