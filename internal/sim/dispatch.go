package sim

import (
	"fmt"

	"repro/internal/probe"
)

// This file is the swarm side of the probe API: every emit helper first
// updates the built-in metrics collector (which is itself a probe.Probe),
// then fans out to the externally attached probe through one nil check.
// With nothing attached the hot path pays a single nil comparison per
// hook site and zero allocations — all hook arguments are values.

// Attach registers an additional probe for this run and immediately
// replays BeginRun to it, so a probe attached between NewSwarm and Run
// still sees the full hook stream. Attach may be called multiple times
// (probes compose via probe.Multi, dispatched in attachment order) but
// not after Run has started. A nil probe is ignored.
func (s *Swarm) Attach(p probe.Probe) error {
	if s.ran {
		return fmt.Errorf("sim: cannot attach probe after Run")
	}
	if p == nil {
		return nil
	}
	p.BeginRun(s.info)
	if s.probe == nil {
		s.probe = p // common case: one probe, no combinator allocation
	} else {
		s.probe = probe.Multi(s.probe, p)
	}
	return nil
}

func (s *Swarm) emitPeerJoin(now float64, p *peer) {
	info := probe.PeerInfo{ID: int(p.id), Capacity: p.capacity, FreeRider: p.freeRider}
	s.metrics.PeerJoin(now, info)
	if s.probe != nil {
		s.probe.PeerJoin(now, info)
	}
}

func (s *Swarm) emitPeerLeave(now float64, id int) {
	s.metrics.PeerLeave(now, id)
	if s.probe != nil {
		s.probe.PeerLeave(now, id)
	}
}

func (s *Swarm) emitPeerAbort(now float64, id int) {
	if s.probe != nil {
		s.probe.PeerAbort(now, id)
	}
}

func (s *Swarm) emitPeerBootstrap(now float64, id int) {
	s.metrics.PeerBootstrap(now, id)
	if s.probe != nil {
		s.probe.PeerBootstrap(now, id)
	}
}

func (s *Swarm) emitPeerComplete(now float64, id int) {
	s.metrics.PeerComplete(now, id)
	if s.probe != nil {
		s.probe.PeerComplete(now, id)
	}
}

func (s *Swarm) emitUnchoke(now float64, from, to int) {
	if s.probe != nil {
		s.probe.Unchoke(now, from, to)
	}
}

func (s *Swarm) emitTransferStart(now float64, t probe.Transfer) {
	if s.probe != nil {
		s.probe.TransferStart(now, t)
	}
}

func (s *Swarm) emitTransferFinish(now float64, t probe.Transfer) {
	s.metrics.TransferFinish(now, t)
	if s.probe != nil {
		s.probe.TransferFinish(now, t)
	}
}

func (s *Swarm) emitCredit(now float64, c probe.CreditInfo) {
	s.metrics.Credit(now, c)
	if s.probe != nil {
		s.probe.Credit(now, c)
	}
}

func (s *Swarm) emitFreeRiderCredit(now float64, to int, bytes float64) {
	s.metrics.FreeRiderCredit(now, to, bytes)
	if s.probe != nil {
		s.probe.FreeRiderCredit(now, to, bytes)
	}
}

func (s *Swarm) emitSeederExit(now float64) {
	if s.probe != nil {
		s.probe.SeederExit(now)
	}
}

func (s *Swarm) emitSample(now float64) {
	s.metrics.Sample(now)
	if s.probe != nil {
		s.probe.Sample(now)
	}
}

func (s *Swarm) emitEndRun(now float64) {
	if s.probe != nil {
		s.probe.EndRun(now)
	}
}
