package sim

import (
	"math/rand"

	"repro/internal/algo"
	"repro/internal/attack"
	"repro/internal/attest"
	"repro/internal/eventsim"
	"repro/internal/incentive"
	"repro/internal/piece"
	"repro/internal/probe"
)

// kick attempts to fill all of p's free upload slots, and arranges an idle
// retry if the strategy currently has nothing to send.
func (s *Swarm) kick(p *peer) {
	if !p.active {
		return
	}
	for p.alloc.Free() > 0 {
		if !s.startUpload(p) {
			s.armRetry(p)
			return
		}
	}
	// All slots busy: the next delivery completion re-kicks.
	p.retry.Cancel()
	p.retry = eventsim.Timer{}
}

// armRetry schedules a single jittered poll for a peer whose strategy had
// nothing to send. At most one retry is outstanding per peer; the handler is
// the peer's cached retry closure, so arming allocates nothing.
func (s *Swarm) armRetry(p *peer) {
	if p.retry.Pending() {
		return
	}
	delay := s.cfg.PollInterval * (0.5 + s.rng.Float64())
	p.retry = s.engine.After(delay, p.retryFn)
}

// flight is a pooled in-flight transfer record. Its delivery handler is
// created once per record and the record is recycled on landing, so
// scheduling a delivery allocates nothing in steady state. A nil sender
// marks a seeder upload.
type flight struct {
	s        *Swarm
	sender   *peer
	receiver *peer
	piece    int
	handler  eventsim.Handler
}

// newFlight checks a record out of the pool (or mints one) and arms it.
func (s *Swarm) newFlight(sender, receiver *peer, pieceIdx int) *flight {
	var t *flight
	if n := len(s.flightPool); n > 0 {
		t = s.flightPool[n-1]
		s.flightPool = s.flightPool[:n-1]
	} else {
		t = &flight{s: s}
		t.handler = func(now float64) { t.land(now) }
	}
	t.sender, t.receiver, t.piece = sender, receiver, pieceIdx
	return t
}

// land completes the transfer and returns the record to the pool. The pool
// append happens before delivery so the record is reusable by any uploads
// the delivery itself triggers.
func (t *flight) land(now float64) {
	s, sender, receiver, idx := t.s, t.sender, t.receiver, t.piece
	t.sender, t.receiver = nil, nil
	s.flightPool = append(s.flightPool, t)
	if sender == nil {
		s.seeder.deliver(receiver, idx, now)
	} else {
		s.deliver(sender, receiver, idx, now)
	}
}

// startUpload asks p's strategy for a receiver, picks a piece, and starts
// the transfer. It reports whether a transfer began.
func (s *Swarm) startUpload(p *peer) bool {
	receiverID := p.strategy.NextReceiver(p.view)
	if receiverID == incentive.NoPeer {
		return false
	}
	s.emitUnchoke(s.engine.Now(), int(p.id), int(receiverID))
	receiver := s.lookup(receiverID)
	if receiver == nil || !receiver.active {
		return false
	}
	pieceIdx := s.pickPiece(s.rng, p.have, receiver)
	if pieceIdx < 0 {
		return false
	}
	duration, ok := p.alloc.Acquire(s.cfg.PieceSize)
	if !ok {
		return false
	}
	receiver.pending.Set(pieceIdx)
	s.emitTransferStart(s.engine.Now(), probe.Transfer{
		From:     int(p.id),
		To:       int(receiver.id),
		Piece:    pieceIdx,
		Bytes:    s.cfg.PieceSize,
		Duration: duration,
	})
	s.engine.After(duration, s.newFlight(p, receiver, pieceIdx).handler)
	return true
}

// pickPiece selects, local-rarest-first, a piece the receiver needs from
// the sender's holdings, excluding pieces already in flight toward the
// receiver. senderHave == nil means the seeder (holds everything). The
// indexed path fuses candidate enumeration, the pending filter, and the
// rarest-first reservoir into one allocation-free bitfield scan that
// consumes the same rng draws as the naive path. rng is the swarm stream
// under the serial engine and the sender's lane stream under the sharded
// engine.
func (s *Swarm) pickPiece(rng *rand.Rand, senderHave *piece.Bitfield, receiver *peer) int {
	if s.indexed {
		return s.availability.SelectRarestMissing(rng, receiver.have, senderHave, receiver.pending)
	}
	return s.pickPieceNaive(rng, senderHave, receiver)
}

// pickPieceNaive is the pre-index scan path, kept as the reference
// implementation for BenchmarkSwarmLargeNaive and the index equivalence
// property test.
func (s *Swarm) pickPieceNaive(rng *rand.Rand, senderHave *piece.Bitfield, receiver *peer) int {
	var candidates []int
	if senderHave == nil {
		candidates = candidatesFromSeeder(receiver)
	} else {
		candidates = receiver.have.MissingFrom(senderHave)
	}
	filtered := candidates[:0]
	for _, c := range candidates {
		if !receiver.pending.Has(c) {
			filtered = append(filtered, c)
		}
	}
	return s.availability.RarestFirst(rng, filtered)
}

// candidatesFromSeeder lists all pieces the receiver still needs.
func candidatesFromSeeder(receiver *peer) []int {
	out := make([]int, 0, receiver.have.Size()-receiver.have.Count())
	for i := 0; i < receiver.have.Size(); i++ {
		if !receiver.have.Has(i) {
			out = append(out, i)
		}
	}
	return out
}

// deliver completes a peer-to-peer transfer: releases the sender's slot,
// applies the T-Chain key-release rule, credits the receiver, and re-kicks
// both parties.
func (s *Swarm) deliver(sender, receiver *peer, pieceIdx int, now float64) {
	sender.alloc.Release()
	bytes := s.cfg.PieceSize
	sender.uploaded += bytes
	receiver.pending.Clear(pieceIdx)
	s.emitTransferFinish(now, probe.Transfer{
		From:  int(sender.id),
		To:    int(receiver.id),
		Piece: pieceIdx,
		Bytes: bytes,
	})

	if receiver.active {
		receiver.rawDown += bytes
		if s.credited(s.rng, sender, receiver) {
			if receiver.freeRider {
				s.emitFreeRiderCredit(now, int(receiver.id), bytes)
			}
			s.credit(sender.id, receiver, pieceIdx, bytes, now)
			if !sender.freeRider {
				sender.strategy.OnSent(sender.view, receiver.id, bytes)
			}
		} else {
			// The receiver reneged on the T-Chain reciprocation: the key
			// is withheld and the sender never serves this peer again.
			sender.distrust[receiver.id] = true
		}
	}
	s.kick(sender)
	if receiver.active {
		s.kick(receiver)
	}
}

// credited applies the mechanism's enforcement to a delivery. Everything is
// credited except T-Chain uploads to free-riders: T-Chain withholds the
// decryption key until the receiver reciprocates, which a free-rider never
// does. A colluding free-rider still succeeds when the exchange would be
// *indirect* and the randomly designated reciprocation witness is a fellow
// colluder who falsely confirms receipt (Section IV-C). rng is the stream
// the witness reservoir draws from: the swarm stream under the serial
// engine, the sender's lane stream under the sharded engine.
func (s *Swarm) credited(rng *rand.Rand, sender, receiver *peer) bool {
	if !receiver.freeRider || s.cfg.Algorithm != algo.TChain {
		return true
	}
	if s.cfg.Attack.Kind != attack.Collusion {
		return false
	}
	// Direct reciprocation demanded? Then the free-rider's refusal is
	// detected immediately and no key is released.
	if sender != nil && s.peerNeeds(sender, receiver) {
		return false
	}
	// Indirect: the sender designates a random third peer as the
	// reciprocation target; collusion works only if it is a colluder.
	witness := s.randomActivePeerExcept(rng, sender, receiver)
	return witness != nil && witness.freeRider
}

// credit records a successful (plaintext) piece delivery.
func (s *Swarm) credit(senderID incentive.PeerID, receiver *peer, pieceIdx int, bytes, now float64) {
	if !receiver.have.Set(pieceIdx) {
		return // duplicate delivery; piece already held
	}
	s.availability.AddPiece(pieceIdx)
	if s.indexed {
		s.noteGained(receiver, pieceIdx)
	}
	receiver.creditedDown += bytes
	s.emitCredit(now, probe.CreditInfo{
		From:  int(senderID),
		To:    int(receiver.id),
		Bytes: bytes,
	})
	if receiver.bootstrapAt < 0 {
		receiver.bootstrapAt = now
		s.emitPeerBootstrap(now, int(receiver.id))
	}
	// The simulator models the paper's unverified world: crediting is a
	// bare claim the AcceptAll ledger takes at face value. The live node is
	// where claims become signed attestations (internal/node, DESIGN §14).
	_ = s.ledger.Credit(attest.Claim(int32(senderID), int32(receiver.id), int32(pieceIdx), int64(bytes)))
	receiver.strategy.OnReceived(receiver.view, senderID, bytes)

	if receiver.have.Complete() {
		receiver.finishAt = now
		s.incomplete = removePeerByID(s.incomplete, receiver)
		s.emitPeerComplete(now, int(receiver.id))
		if !receiver.freeRider {
			s.completedCount++
		}
		if s.cfg.LeaveOnComplete {
			s.depart(receiver, now)
		}
		if s.cfg.StopWhenCompliantDone && s.completedCount == s.numCompliant {
			s.emitSample(now)
			s.stopEngine()
		}
	}
}

// randomActivePeerExcept returns a uniformly random active peer other than
// the two parties, or nil if none exists. sender may be nil (the seeder).
// The id-ascending active list yields the same eligible sequence — and thus
// the same reservoir draws — as the old full-population scan.
func (s *Swarm) randomActivePeerExcept(rng *rand.Rand, sender, receiver *peer) *peer {
	count := 0
	var chosen *peer
	for _, p := range s.actives {
		if p == receiver || (sender != nil && p == sender) {
			continue
		}
		count++
		if rng.Intn(count) == 0 {
			chosen = p
		}
	}
	return chosen
}
