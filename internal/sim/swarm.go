package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"slices"

	"repro/internal/algo"
	"repro/internal/attack"
	"repro/internal/attest"
	"repro/internal/bandwidth"
	"repro/internal/eventsim"
	"repro/internal/incentive"
	"repro/internal/piece"
	"repro/internal/probe"
	"repro/internal/reputation"
	"repro/internal/stats"
)

// Swarm is one simulation instance. Construct with NewSwarm, execute with
// Run; a Swarm is single-use.
type Swarm struct {
	cfg          Config
	engine       *eventsim.Engine
	rng          *rand.Rand
	peers        []*peer
	ledger       *reputation.Ledger
	availability *piece.Availability
	seeder       *seeder

	// Sharded-engine state (cfg.Shards >= 1): sh replaces engine as the
	// executor, lanes 0..NumPeers-1 are the peers, seederLane hosts the
	// seeder, and seederRNG is its dedicated stream. See shard.go.
	sh         *eventsim.Sharded[shardRec]
	seederRNG  *rand.Rand
	seederLane int

	arrivedCount   int
	activeCount    int
	completedCount int // compliant completions
	numCompliant   int

	// haveWords is the shared backing slab for every peer's have bitfield:
	// peer i's words are haveWords[i*W : (i+1)*W] where W is the per-peer
	// word count (see peer.wordOff). One dense allocation keeps the interest
	// index's membership tests cache-resident and lets edges address a
	// neighbor's holdings by int32 offset instead of pointer.
	haveWords []uint64
	// linkNeeds holds the interest index's directional counters, two
	// adjacent int32 slots per link (slot^1 is the opposite direction);
	// freeLinks recycles slot pairs released by departs. See interest.go.
	linkNeeds []int32
	freeLinks []int32
	// actives and incomplete are id-ascending lists of active peers and of
	// active peers still downloading, maintained incrementally on
	// join/depart/completion. They replace the full-population scans in
	// join candidate collection, seeder receiver sampling, witness sampling,
	// and the liveness check, while preserving the exact id-ascending
	// iteration order those scans produced.
	actives    []*peer
	incomplete []*peer

	// indexed enables the incremental interest/rarity indexes (the default);
	// cfg.naiveScan turns it off so tests and benchmarks can run the
	// reference scan paths against the same inputs.
	indexed bool
	// topoGen increments whenever an edge is torn down; peerView uses it to
	// invalidate cached edge pointers (see interest.go).
	topoGen uint64
	// flightPool and joinScratch recycle the churn-heavy allocations:
	// in-flight transfer records and the join-time candidate slice.
	flightPool  []*flight
	joinScratch []*peer

	info    probe.RunInfo     // replayed to late-attached probes
	metrics *metricsCollector // built-in probe: the paper's five series
	probe   probe.Probe       // externally attached; nil-checked per hook

	snapshot *AvailabilitySnapshot
	ran      bool
}

// NewSwarm validates cfg and builds the initial event schedule: peer
// arrivals across the flash-crowd window, the seeder, and the metric
// sampler.
func NewSwarm(cfg Config) (*Swarm, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Swarm{
		cfg:          cfg,
		engine:       eventsim.New(),
		rng:          stats.NewRNG(cfg.Seed),
		ledger:       reputation.NewLedger(attest.AcceptAll{}),
		availability: piece.NewAvailability(cfg.NumPieces),
		metrics:      &metricsCollector{},
	}
	s.indexed = !cfg.naiveScan
	if cfg.Shards > 0 {
		s.seederLane = cfg.NumPeers
		s.seederRNG = stats.NewStream(cfg.Seed, s.seederLane)
		s.sh = eventsim.NewSharded[shardRec](cfg.Shards, cfg.NumPeers+1, lookaheadWindow(cfg), s.replayRec)
	}
	s.info = probe.RunInfo{
		Algorithm: cfg.Algorithm.String(),
		NumPeers:  cfg.NumPeers,
		NumPieces: cfg.NumPieces,
		PieceSize: cfg.PieceSize,
		Horizon:   cfg.Horizon,
		Seed:      cfg.Seed,
	}
	s.metrics.BeginRun(s.info)

	capacities, err := cfg.Bandwidth.Sample(s.rng, cfg.NumPeers)
	if err != nil {
		return nil, err
	}

	numFreeRiders := int(float64(cfg.NumPeers) * cfg.FreeRiderFraction)
	freeRiderIdx := make(map[int]bool, numFreeRiders)
	for _, idx := range stats.SampleWithoutReplacement(s.rng, cfg.NumPeers, numFreeRiders) {
		freeRiderIdx[idx] = true
	}

	arrivals := s.arrivalTimes(cfg)
	s.peers = make([]*peer, cfg.NumPeers)
	w := (cfg.NumPieces + 63) / 64
	s.haveWords = make([]uint64, cfg.NumPeers*w)
	for i := 0; i < cfg.NumPeers; i++ {
		p := &peer{
			id:          incentive.PeerID(i),
			capacity:    capacities[i],
			alloc:       bandwidth.NewAllocator(capacities[i], cfg.UploadSlots),
			have:        piece.NewBitfieldBacked(s.haveWords[i*w:(i+1)*w:(i+1)*w], cfg.NumPieces),
			wordOff:     int32(i * w),
			pending:     piece.NewBitfield(cfg.NumPieces),
			idxByID:     make(map[incentive.PeerID]int32),
			distrust:    make(map[incentive.PeerID]bool),
			freeRider:   freeRiderIdx[i],
			arrival:     arrivals[i],
			bootstrapAt: -1,
			finishAt:    -1,
		}
		p.view = &peerView{swarm: s, peer: p}
		p.retryFn = func(now float64) {
			p.retry = eventsim.Timer{}
			if s.sh != nil {
				s.shardKick(p, now)
			} else {
				s.kick(p)
			}
		}
		if s.sh != nil {
			p.laneRNG = stats.NewStream(cfg.Seed, i)
			p.kickFn = func(now float64) { s.shardKick(p, now) }
		}
		if p.freeRider {
			p.strategy = attack.NewFreeRider(cfg.Algorithm)
		} else {
			strat, err := incentive.New(cfg.Algorithm, cfg.Incentive, s.ledger)
			if err != nil {
				return nil, fmt.Errorf("sim: building strategy: %w", err)
			}
			p.strategy = strat
		}
		if !p.freeRider {
			s.numCompliant++
		}
		s.peers[i] = p
		s.scheduleControlAt(p.arrival, func(now float64) { s.join(p, now) })
	}

	s.seeder = newSeeder(s)
	if s.sh != nil {
		s.sh.BarrierSchedule(s.seederLane, 0, func(now float64) { s.seeder.shardSchedule(now) })
	} else {
		s.engine.Schedule(0, func(float64) { s.seeder.schedule() })
	}
	s.scheduleControlAt(cfg.SampleInterval, s.sample)
	if cfg.SnapshotAt > 0 {
		s.scheduleControlAt(cfg.SnapshotAt, s.takeSnapshot)
	}
	s.scheduleFailures()
	s.scheduleAttacks()
	return s, nil
}

// arrivalTimes draws each peer's join time per the configured process.
func (s *Swarm) arrivalTimes(cfg Config) []float64 {
	out := make([]float64, cfg.NumPeers)
	switch cfg.Arrival {
	case ArrivalPoisson:
		t := 0.0
		for i := range out {
			t += stats.Exponential(s.rng, cfg.MeanInterarrival)
			out[i] = t
		}
	default: // flash crowd
		for i := range out {
			out[i] = s.rng.Float64() * cfg.ArrivalWindow
		}
	}
	return out
}

// lookup resolves a peer ID; the seeder and out-of-range IDs return nil.
func (s *Swarm) lookup(id incentive.PeerID) *peer {
	if id < 0 || int(id) >= len(s.peers) {
		return nil
	}
	return s.peers[id]
}

// join activates a peer at its arrival time and wires its neighborhood.
// Under the sharded engine it runs as a control event at a barrier, so the
// swarm-global rng draws and topology mutations below stay single-threaded.
func (s *Swarm) join(p *peer, now float64) {
	p.joined = true
	p.active = true
	s.arrivedCount++
	s.activeCount++
	s.emitPeerJoin(now, p)

	// Connect to up to MaxNeighbors random active peers. The candidate
	// slice is swarm-owned scratch: join runs to completion before any
	// other event, so reusing it is safe and keeps churn allocation-free.
	// Copying the id-ascending active list before p is inserted yields the
	// same candidate sequence the old full-population scan produced.
	candidates := append(s.joinScratch[:0], s.actives...)
	s.joinScratch = candidates
	s.actives = insertPeerByID(s.actives, p)
	s.incomplete = insertPeerByID(s.incomplete, p)
	stats.Shuffle(s.rng, candidates)
	limit := min(s.cfg.MaxNeighbors, len(candidates))
	for _, q := range candidates[:limit] {
		s.connect(p, q)
	}
	// Large-view free-riders connect to everyone: existing large-view
	// attackers grab the newcomer, and a joining large-view attacker grabs
	// every active peer.
	if s.cfg.FreeRiderFraction > 0 && s.cfg.Attack.LargeView {
		for _, q := range candidates {
			if q.freeRider || p.freeRider {
				s.connect(p, q)
			}
		}
	}
	if s.sh != nil {
		// Lane state may be mid-window on other shards; kicks become lane
		// events at the next window boundary, newcomer first, then its
		// neighbors in wiring order.
		s.sh.BarrierSchedule(int(p.id), now, p.kickFn)
		for _, q := range p.neighbors {
			s.sh.BarrierSchedule(int(q.id), now, q.kickFn)
		}
		return
	}
	s.kick(p)
	// A newcomer is a fresh upload opportunity for its neighbors.
	for _, q := range p.neighbors {
		s.kick(q)
	}
}

// depart deactivates a peer after completion, per the paper's
// leave-on-completion churn, removing it from all neighborhoods.
func (s *Swarm) depart(p *peer, now float64) {
	if !p.active {
		return
	}
	p.active = false
	s.activeCount--
	s.actives = removePeerByID(s.actives, p)
	s.incomplete = removePeerByID(s.incomplete, p)
	s.emitPeerLeave(now, int(p.id))
	p.retry.Cancel()
	p.retry = eventsim.Timer{}
	s.availability.RemoveBitfield(p.have)
	s.dropEdges(p)
}

// insertPeerByID inserts p into an id-ascending peer list, keeping it
// sorted. Inserting an already-present peer is a no-op.
func insertPeerByID(list []*peer, p *peer) []*peer {
	i, found := slices.BinarySearchFunc(list, p.id, func(q *peer, id incentive.PeerID) int {
		return int(q.id - id)
	})
	if found {
		return list
	}
	return slices.Insert(list, i, p)
}

// removePeerByID removes p from an id-ascending peer list. Removing an
// absent peer is a no-op, so completion and a subsequent leave-on-complete
// depart may both remove from the incomplete list.
func removePeerByID(list []*peer, p *peer) []*peer {
	i, found := slices.BinarySearchFunc(list, p.id, func(q *peer, id incentive.PeerID) int {
		return int(q.id - id)
	})
	if !found {
		return list
	}
	return slices.Delete(list, i, i+1)
}

// Run executes the simulation to the horizon (or until the swarm drains)
// and returns the collected results. It can only be called once.
func (s *Swarm) Run() (*Result, error) {
	if s.ran {
		return nil, fmt.Errorf("sim: swarm already ran")
	}
	s.ran = true
	var err error
	if s.sh != nil {
		err = s.sh.Run(s.cfg.Horizon)
	} else {
		err = s.engine.Run(s.cfg.Horizon)
	}
	if err != nil && !errors.Is(err, eventsim.ErrStopped) {
		return nil, err
	}
	s.emitSample(s.now())
	s.emitEndRun(s.now())
	return s.buildResult(), nil
}

// now returns the current virtual time of whichever engine is driving the
// run. Only meaningful outside a sharded window (at barriers, control
// events, or after Run returns).
func (s *Swarm) now() float64 {
	if s.sh != nil {
		return s.sh.Now()
	}
	return s.engine.Now()
}

// processed returns the total executed event count of the active engine.
func (s *Swarm) processed() uint64 {
	if s.sh != nil {
		return s.sh.Processed()
	}
	return s.engine.Processed()
}

// scheduleControlAt schedules a swarm-level control event (join, sampler,
// snapshot, attack or failure injection) at absolute time t. Control events
// run single-threaded — inside the serial engine trivially, and at window
// barriers under the sharded engine — so their handlers may touch any state.
func (s *Swarm) scheduleControlAt(t float64, h eventsim.Handler) {
	if s.sh != nil {
		s.sh.ScheduleControl(t, h)
		return
	}
	s.engine.Schedule(t, h)
}

// controlAfter schedules a control event d seconds from now.
func (s *Swarm) controlAfter(d float64, h eventsim.Handler) {
	if s.sh != nil {
		s.sh.ControlAfter(d, h)
		return
	}
	s.engine.After(d, h)
}

// stopEngine halts whichever engine is driving the run.
func (s *Swarm) stopEngine() {
	if s.sh != nil {
		s.sh.Stop()
		return
	}
	s.engine.Stop()
}

// live reports whether anything can still happen: peers yet to arrive or
// active peers still downloading. O(1) via the maintained incomplete list.
func (s *Swarm) live() bool {
	return s.arrivedCount < len(s.peers) || len(s.incomplete) > 0
}

// scheduleAttacks installs the recurring attack events for the configured
// plan (whitewashing identity resets, false-praise reports).
func (s *Swarm) scheduleAttacks() {
	if s.cfg.FreeRiderFraction <= 0 {
		return
	}
	plan := s.cfg.Attack
	switch plan.Kind {
	case attack.Whitewash:
		var tick func(now float64)
		tick = func(now float64) {
			if !s.live() {
				return
			}
			for _, p := range s.peers {
				if p.freeRider && p.active {
					s.whitewash(p)
				}
			}
			s.controlAfter(plan.WhitewashInterval, tick)
		}
		s.scheduleControlAt(plan.WhitewashInterval, tick)

	case attack.FalsePraise:
		var tick func(now float64)
		tick = func(now float64) {
			if !s.live() {
				return
			}
			for _, p := range s.peers {
				if p.freeRider && p.active {
					// The colluders' fabricated report is an unsigned claim:
					// the AcceptAll baseline credits it wholesale (Table III's
					// vulnerability), a verifying ledger would refuse it.
					_ = s.ledger.Credit(attack.ForgedClaim(int32(p.id), plan.PraiseBytes))
				}
			}
			s.controlAfter(plan.PraiseInterval, tick)
		}
		s.scheduleControlAt(plan.PraiseInterval, tick)
	}
}

// scheduleFailures installs the failure-injection events: random
// mid-download peer crashes and the seeder's exit.
func (s *Swarm) scheduleFailures() {
	if s.cfg.AbortRate > 0 {
		var compliant []*peer
		for _, p := range s.peers {
			if !p.freeRider {
				compliant = append(compliant, p)
			}
		}
		count := int(float64(len(compliant)) * s.cfg.AbortRate)
		for _, idx := range stats.SampleWithoutReplacement(s.rng, len(compliant), count) {
			p := compliant[idx]
			// Crash sometime after arrival, within the first half of the
			// horizon — late enough to have participated.
			at := p.arrival + s.rng.Float64()*(s.cfg.Horizon/2-p.arrival)
			if at <= p.arrival {
				at = p.arrival + 1
			}
			s.scheduleControlAt(at, func(now float64) {
				if p.active && !p.have.Complete() {
					p.aborted = true
					s.numCompliant-- // it can never complete; don't wait for it
					s.emitPeerAbort(now, int(p.id))
					s.depart(p, now)
					s.maybeStopCompliantDone(now)
				}
			})
		}
	}
	if s.cfg.SeederExitAt > 0 {
		s.scheduleControlAt(s.cfg.SeederExitAt, func(now float64) {
			s.seeder.offline = true
			s.emitSeederExit(now)
		})
	}
}

// maybeStopCompliantDone re-checks the early-stop condition after the
// compliant population shrinks. Under the sharded engine the stop raised
// here halts every shard at the current window boundary — a consistent
// virtual time — and the remainder of the barrier is skipped.
func (s *Swarm) maybeStopCompliantDone(now float64) {
	if s.cfg.StopWhenCompliantDone && s.completedCount >= s.numCompliant {
		s.emitSample(now)
		s.stopEngine()
	}
}

// whitewash models a free-rider discarding its identity: every compliant
// peer forgets its counters about the attacker and the global ledger entry
// is erased, so deficit and reputation history reset to newcomer state.
func (s *Swarm) whitewash(p *peer) {
	for _, q := range p.neighbors {
		q.strategy.Forget(p.id)
	}
	s.ledger.Reset(int(p.id))
}

// Algorithm returns the configured mechanism (used by metrics and tests).
func (s *Swarm) Algorithm() algo.Algorithm { return s.cfg.Algorithm }
