package sim

import (
	"repro/internal/attack"
	"repro/internal/bandwidth"
	"repro/internal/incentive"
)

// Option customizes a Config built by Default. Options are plain
// functions over the config, applied in order, so they compose with each
// other and with direct field assignment — a Config struct literal (or a
// post-hoc field mutation) remains fully supported; options are the
// ergonomic path for the common knobs.
type Option func(*Config)

// WithSeed fixes the run's random seed; equal seeds replay bit-for-bit.
func WithSeed(seed int64) Option {
	return func(c *Config) { c.Seed = seed }
}

// WithHorizon caps the simulated time in seconds.
func WithHorizon(seconds float64) Option {
	return func(c *Config) { c.Horizon = seconds }
}

// WithScale sets the swarm size and file granularity (peers × pieces of
// the configured piece size). The paper's full scale is WithScale(1000, 512).
func WithScale(peers, pieces int) Option {
	return func(c *Config) {
		c.NumPeers = peers
		c.NumPieces = pieces
	}
}

// WithFreeRiders makes `fraction` of the peers free-ride using the given
// attack plan (see attack.MostEffective).
func WithFreeRiders(fraction float64, plan attack.Plan) Option {
	return func(c *Config) {
		c.FreeRiderFraction = fraction
		c.Attack = plan
	}
}

// WithBandwidth sets the peer upload-capacity mix.
func WithBandwidth(d bandwidth.Distribution) Option {
	return func(c *Config) { c.Bandwidth = d }
}

// WithIncentive replaces the mechanism parameters (α_BT, n_BT, α_R, round
// length) wholesale; use WithConfig to tweak a single field of the
// defaults.
func WithIncentive(p incentive.Params) Option {
	return func(c *Config) { c.Incentive = p }
}

// WithSeeder sets the origin server's upload rate in bytes/second.
func WithSeeder(rate float64) Option {
	return func(c *Config) { c.SeederRate = rate }
}

// WithNeighbors bounds each compliant peer's neighbor set.
func WithNeighbors(maxNeighbors int) Option {
	return func(c *Config) { c.MaxNeighbors = maxNeighbors }
}

// WithArrival selects the arrival process; meanInterarrival is the Poisson
// spacing in seconds (ignored for the flash crowd).
func WithArrival(pattern ArrivalPattern, meanInterarrival float64) Option {
	return func(c *Config) {
		c.Arrival = pattern
		c.MeanInterarrival = meanInterarrival
	}
}

// WithAbortRate makes the given fraction of compliant peers crash
// mid-download (0 disables the failure injection).
func WithAbortRate(fraction float64) Option {
	return func(c *Config) { c.AbortRate = fraction }
}

// WithSeederExit makes the origin server go offline at the given virtual
// time (0 keeps it up for the whole run).
func WithSeederExit(at float64) Option {
	return func(c *Config) { c.SeederExitAt = at }
}

// WithChurn injects failures: abortRate of compliant peers crash
// mid-download, and the seeder exits at seederExitAt (0 disables either).
//
// Deprecated: use WithAbortRate and WithSeederExit, which name the two
// unrelated knobs separately.
func WithChurn(abortRate, seederExitAt float64) Option {
	return func(c *Config) {
		c.AbortRate = abortRate
		c.SeederExitAt = seederExitAt
	}
}

// WithShards selects the sharded parallel engine with n shards (n >= 1);
// 0 restores the serial engine. Sharded output is identical for every
// n >= 1, so n only trades wall-clock speed against core usage.
func WithShards(n int) Option {
	return func(c *Config) { c.Shards = n }
}

// WithSnapshotAt records an availability snapshot at the given virtual
// time (used by the validation experiments).
func WithSnapshotAt(t float64) Option {
	return func(c *Config) { c.SnapshotAt = t }
}

// WithConfig applies an arbitrary low-level mutation for knobs the other
// options do not cover.
func WithConfig(mod func(*Config)) Option {
	return func(c *Config) { mod(c) }
}
