package sim

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/algo"
	"repro/internal/attack"
	"repro/internal/incentive"
)

// TestConfigValidateTable drives Validate through the edge cases the
// scattered integration tests don't pin down: arrival-pattern coupling,
// churn-parameter bounds, and non-finite horizons.
func TestConfigValidateTable(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr string // substring of the error; "" means valid
	}{
		{"defaults valid", func(c *Config) {}, ""},
		{"poisson missing interarrival", func(c *Config) {
			c.Arrival = ArrivalPoisson
			c.MeanInterarrival = 0
		}, "MeanInterarrival"},
		{"poisson negative interarrival", func(c *Config) {
			c.Arrival = ArrivalPoisson
			c.MeanInterarrival = -3
		}, "MeanInterarrival"},
		{"poisson with interarrival valid", func(c *Config) {
			c.Arrival = ArrivalPoisson
			c.MeanInterarrival = 2.5
		}, ""},
		{"unknown arrival pattern", func(c *Config) { c.Arrival = ArrivalPattern(99) }, "arrival pattern"},
		{"interarrival ignored for flash crowd", func(c *Config) { c.MeanInterarrival = -1 }, ""},
		{"abort rate negative", func(c *Config) { c.AbortRate = -0.1 }, "AbortRate"},
		{"abort rate at one", func(c *Config) { c.AbortRate = 1 }, "AbortRate"},
		{"abort rate boundary valid", func(c *Config) { c.AbortRate = 0.999 }, ""},
		{"seeder exit negative", func(c *Config) { c.SeederExitAt = -1 }, "SeederExitAt"},
		{"seeder exit zero means never", func(c *Config) { c.SeederExitAt = 0 }, ""},
		{"horizon NaN", func(c *Config) { c.Horizon = math.NaN() }, "Horizon"},
		{"horizon zero rejected (reciprocity never drains)", func(c *Config) {
			c.Algorithm = algo.Reciprocity
			c.Horizon = 0
		}, "Horizon"},
		{"horizon negative", func(c *Config) { c.Horizon = -100 }, "Horizon"},
		{"free riders need a fraction below one", func(c *Config) { c.FreeRiderFraction = 1 }, "FreeRiderFraction"},
		{"snapshot negative", func(c *Config) { c.SnapshotAt = -5 }, "SnapshotAt"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Default(algo.BitTorrent, 50, 16)
			tc.mutate(&cfg)
			err := cfg.Validate()
			switch {
			case tc.wantErr == "" && err != nil:
				t.Fatalf("unexpected error: %v", err)
			case tc.wantErr != "" && err == nil:
				t.Fatalf("config accepted, want error containing %q", tc.wantErr)
			case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestValidateNormalizesInPlace(t *testing.T) {
	cfg := Default(algo.BitTorrent, 50, 16)
	cfg.Arrival = 0 // unset: should normalize to the flash crowd
	cfg.Incentive = incentive.Params{}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Arrival != ArrivalFlashCrowd {
		t.Errorf("Arrival not defaulted: %d", cfg.Arrival)
	}
	if cfg.Incentive.NBT == 0 {
		t.Error("Incentive params not normalized")
	}
}

// TestOptionsSetFields checks each functional option against direct field
// mutation — Default's documented equivalence.
func TestOptionsSetFields(t *testing.T) {
	plan := attack.Plan{Kind: attack.Passive}
	cfg := Default(algo.BitTorrent, 50, 16,
		WithSeed(42),
		WithHorizon(777),
		WithScale(80, 32),
		WithFreeRiders(0.25, plan),
		WithSeeder(1<<18),
		WithNeighbors(12),
		WithArrival(ArrivalPoisson, 3),
		WithAbortRate(0.1),
		WithSeederExit(99),
		WithSnapshotAt(50),
		WithConfig(func(c *Config) { c.UploadSlots = 7 }),
	)
	want := Default(algo.BitTorrent, 50, 16)
	want.Seed = 42
	want.Horizon = 777
	want.NumPeers, want.NumPieces = 80, 32
	want.FreeRiderFraction, want.Attack = 0.25, plan
	want.SeederRate = 1 << 18
	want.MaxNeighbors = 12
	want.Arrival, want.MeanInterarrival = ArrivalPoisson, 3
	want.AbortRate, want.SeederExitAt = 0.1, 99
	want.SnapshotAt = 50
	want.UploadSlots = 7
	if !reflect.DeepEqual(cfg, want) {
		t.Errorf("options diverge from direct mutation:\n got %+v\nwant %+v", cfg, want)
	}
}

// TestWithChurnDeprecatedWrapper pins the deprecated combined option to its
// two replacements so old callers keep compiling and behaving identically.
func TestWithChurnDeprecatedWrapper(t *testing.T) {
	old := Default(algo.BitTorrent, 50, 16, WithChurn(0.1, 99))
	split := Default(algo.BitTorrent, 50, 16, WithAbortRate(0.1), WithSeederExit(99))
	if !reflect.DeepEqual(old, split) {
		t.Errorf("WithChurn diverges from WithAbortRate+WithSeederExit:\n got %+v\nwant %+v", old, split)
	}
}
