package sim

import (
	"testing"

	"repro/internal/algo"
)

// largeConfig is the scale benchmark's shape: a 5000-peer flash crowd over a
// 64 MB file (256 × 256 KB pieces) under BitTorrent, the mechanism with the
// densest per-decision neighbor scanning. One full run at this scale drives
// roughly 1.3 million piece transfers through the upload hot path.
func largeConfig() Config {
	cfg := Default(algo.BitTorrent, 5000, 256)
	cfg.Seed = 42
	cfg.Horizon = 4000
	return cfg
}

// runScaleBench executes one full large-swarm run and reports per-transfer
// allocation metrics alongside the standard per-op numbers.
func runScaleBench(b *testing.B, cfg Config) {
	b.Helper()
	b.ReportAllocs()
	var transfers float64
	for i := 0; i < b.N; i++ {
		sw, err := NewSwarm(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sw.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.CompletionFraction() < 0.99 {
			b.Fatalf("only %.1f%% of compliant peers completed; scale config too tight",
				100*res.CompletionFraction())
		}
		transfers += float64(res.EventsProcessed)
	}
	b.ReportMetric(transfers/float64(b.N), "events/op")
}

// BenchmarkSwarmLarge measures the full upload hot path at 5000 peers ×
// 256 pieces with the incremental interest and rarity indexes enabled.
// scripts/bench.sh scale records it in BENCH_scale.json, and
// scripts/check.sh guards its allocs/op against per-decision regressions.
func BenchmarkSwarmLarge(b *testing.B) {
	runScaleBench(b, largeConfig())
}

// BenchmarkSwarmLargeNaive runs the identical swarm through the pre-index
// reference paths (full bitfield scans per interest query, MissingFrom
// allocation per piece pick). Both benchmarks produce byte-identical runs;
// the ratio between them is the tentpole's recorded win.
func BenchmarkSwarmLargeNaive(b *testing.B) {
	cfg := largeConfig()
	cfg.naiveScan = true
	runScaleBench(b, cfg)
}

// BenchmarkSwarmLargeSharded is the 5000×256 swarm on the sharded parallel
// engine with 8 shards — the same population and piece count as
// BenchmarkSwarmLarge, run concurrently under the conservative lookahead
// barrier. The sharded engine is its own deterministic timing model
// (per-peer RNG streams, window-quantized control), so events/op differs
// from the serial row; the wall-clock ratio against BenchmarkSwarmLarge is
// the parallelism win on the recording machine's core count.
func BenchmarkSwarmLargeSharded(b *testing.B) {
	cfg := largeConfig()
	cfg.Shards = 8
	runScaleBench(b, cfg)
}

// hugeConfig is the population-scale shape the parallel engine targets: a
// 100,000-peer flash crowd over a 16 MB file (64 × 256 KB pieces). The
// piece count is kept modest so a run is dominated by swarm dynamics
// (interest, choking, availability) rather than per-peer completion grind.
func hugeConfig() Config {
	cfg := Default(algo.BitTorrent, 100_000, 64)
	cfg.Seed = 42
	cfg.Horizon = 30000
	cfg.Shards = 8
	return cfg
}

// BenchmarkSwarmHuge runs the 100k-peer swarm on the sharded engine —
// population scale that the serial engine's single heap makes impractical.
// scripts/bench.sh scale records it in BENCH_scale.json.
func BenchmarkSwarmHuge(b *testing.B) {
	if testing.Short() {
		b.Skip("100k-peer run")
	}
	runScaleBench(b, hugeConfig())
}
