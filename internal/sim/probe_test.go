package sim

import (
	"encoding/json"
	"testing"

	"repro/internal/algo"
	"repro/internal/attack"
	"repro/internal/probe"
)

// TestProbeObservesRun attaches a Counter and cross-checks its event
// tallies against the run's own result.
func TestProbeObservesRun(t *testing.T) {
	cfg := testConfig(algo.BitTorrent)
	sw, err := NewSwarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := &probe.Counter{}
	if err := sw.Attach(c); err != nil {
		t.Fatal(err)
	}
	res, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}

	counts := c.Counts()
	if counts[probe.HookPeerJoin] != uint64(cfg.NumPeers) {
		t.Errorf("joins = %d, want %d", counts[probe.HookPeerJoin], cfg.NumPeers)
	}
	// Every transfer carries exactly one piece.
	wantTotal := float64(counts[probe.HookTransferFinish]) * cfg.PieceSize
	if res.TotalUploaded != wantTotal {
		t.Errorf("TotalUploaded = %v, want finishes*pieceSize = %v", res.TotalUploaded, wantTotal)
	}
	// Every credit credits one piece; the probe's byte view must agree
	// with the per-peer credited sums.
	var credited float64
	for _, p := range res.Peers {
		credited += p.Downloaded
	}
	if c.CreditedBytes() != credited {
		t.Errorf("CreditedBytes = %v, want %v", c.CreditedBytes(), credited)
	}
	if counts[probe.HookTransferStart] != counts[probe.HookTransferFinish] {
		t.Errorf("starts = %d, finishes = %d; transfers must pair up",
			counts[probe.HookTransferStart], counts[probe.HookTransferFinish])
	}
	// Unchokes include grants that did not become transfers (inactive
	// receiver, no needed piece, slot exhausted) — never fewer.
	if counts[probe.HookUnchoke] < counts[probe.HookTransferStart] {
		t.Errorf("unchokes = %d < starts = %d", counts[probe.HookUnchoke], counts[probe.HookTransferStart])
	}
	if counts[probe.HookSample] == 0 {
		t.Error("no Sample events observed")
	}
	bootstrapped := 0
	for _, p := range res.Peers {
		if p.BootstrapAt >= 0 {
			bootstrapped++
		}
	}
	if counts[probe.HookPeerBootstrap] != uint64(bootstrapped) {
		t.Errorf("bootstraps = %d, want %d", counts[probe.HookPeerBootstrap], bootstrapped)
	}
	finished := 0
	for _, p := range res.Peers {
		if p.FinishAt >= 0 {
			finished++
		}
	}
	if counts[probe.HookPeerComplete] != uint64(finished) {
		t.Errorf("completes = %d, want %d", counts[probe.HookPeerComplete], finished)
	}
}

// TestProbeSusceptibilityAgrees checks the free-rider credit stream against
// the susceptibility metric under an attack configuration.
func TestProbeSusceptibilityAgrees(t *testing.T) {
	cfg := testConfig(algo.BitTorrent)
	cfg.FreeRiderFraction = 0.2
	cfg.Attack = attack.Plan{Kind: attack.Passive}
	sw, err := NewSwarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := &probe.Counter{}
	if err := sw.Attach(c); err != nil {
		t.Fatal(err)
	}
	res, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}
	if c.FreeRiderBytes() != res.FreeRiderCredited {
		t.Errorf("FreeRiderBytes = %v, want %v", c.FreeRiderBytes(), res.FreeRiderCredited)
	}
	if c.FreeRiderBytes() == 0 {
		t.Error("expected free-riders to capture credit under BitTorrent")
	}
}

// TestProbeDoesNotPerturbRun pins the core probe contract: attaching a
// probe must not change the simulation's outcome in any way.
func TestProbeDoesNotPerturbRun(t *testing.T) {
	cfg := testConfig(algo.TChain)
	cfg.FreeRiderFraction = 0.2
	cfg.Attack = attack.Plan{Kind: attack.Collusion}

	plain := mustRun(t, cfg)

	sw, err := NewSwarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Attach(&probe.Counter{}); err != nil {
		t.Fatal(err)
	}
	probed, err := sw.Run()
	if err != nil {
		t.Fatal(err)
	}

	a, err := json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(probed)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("attaching a probe changed the run result")
	}
}

// TestAttachRules covers the Attach edge cases: nil probes, composition,
// BeginRun replay, and the after-Run rejection.
func TestAttachRules(t *testing.T) {
	cfg := testConfig(algo.Altruism)
	sw, err := NewSwarm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Attach(nil); err != nil {
		t.Errorf("Attach(nil) = %v, want nil", err)
	}
	c1, c2 := &probe.Counter{}, &probe.Counter{}
	if err := sw.Attach(c1); err != nil {
		t.Fatal(err)
	}
	if err := sw.Attach(c2); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Run(); err != nil {
		t.Fatal(err)
	}
	if c1.Total() == 0 || c1.Total() != c2.Total() {
		t.Errorf("composed probes saw %d and %d events; want equal and nonzero", c1.Total(), c2.Total())
	}
	if err := sw.Attach(&probe.Counter{}); err == nil {
		t.Error("Attach after Run accepted")
	}
}

// runBenchSwarm runs one small swarm, optionally with a probe attached.
func runBenchSwarm(b *testing.B, p probe.Probe) {
	b.Helper()
	cfg := Default(algo.BitTorrent, 60, 24)
	cfg.Seed = 11
	cfg.Horizon = 500
	sw, err := NewSwarm(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := sw.Attach(p); err != nil {
		b.Fatal(err)
	}
	if _, err := sw.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSwarmNoProbe is the dispatch-overhead baseline: the same swarm
// as BenchmarkSwarmCounterProbe with nothing attached.
func BenchmarkSwarmNoProbe(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		runBenchSwarm(b, nil)
	}
}

// BenchmarkSwarmCounterProbe measures the full hook stream dispatched to
// the cheapest useful probe; scripts/check.sh guards the allocation delta
// against BenchmarkSwarmNoProbe (it must be zero).
func BenchmarkSwarmCounterProbe(b *testing.B) {
	b.ReportAllocs()
	// One counter reused across iterations, outside the timed region, so
	// the probe's own allocation doesn't show up in the dispatch-overhead
	// delta even at -benchtime=1x.
	c := &probe.Counter{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runBenchSwarm(b, c)
	}
}
