package trace

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestTableText(t *testing.T) {
	tbl := NewTable("Demo", "Algorithm", "E")
	tbl.AddRow("T-Chain", 0.123456)
	tbl.AddRow("Altruism", 42)
	var sb strings.Builder
	if err := tbl.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== Demo ==", "Algorithm", "T-Chain", "0.1235", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("", "a", "b")
	tbl.AddRow(1, 2.5)
	csv, err := tbl.CSV()
	if err != nil {
		t.Fatal(err)
	}
	if csv != "a,b\n1,2.5\n" {
		t.Errorf("csv = %q", csv)
	}
	bad := NewTable("", "a")
	bad.AddRow("has,comma")
	if _, err := bad.CSV(); err == nil {
		t.Error("comma cell accepted")
	}
}

func TestSinkFlush(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "out")
	s := NewSink(dir)

	tbl := NewTable("", "x")
	tbl.AddRow(1)
	if err := s.AddTable("table1", tbl); err != nil {
		t.Fatal(err)
	}

	ts := stats.NewTimeSeries("m")
	ts.Add(0, 1)
	s.AddSeries("series1", ts)

	if err := s.AddJSON("meta", map[string]int{"n": 3}); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Files()); got != 3 {
		t.Fatalf("%d files collected", got)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table1.csv", "series1.csv", "meta.json"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing artifact %s: %v", name, err)
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"n\": 3") {
		t.Errorf("meta.json = %s", data)
	}
}

func TestNilSinkIsSafe(t *testing.T) {
	var s *Sink
	if err := s.AddTable("x", NewTable("", "a")); err != nil {
		t.Error(err)
	}
	s.AddSeries("y", stats.NewTimeSeries("m"))
	if err := s.AddJSON("z", 1); err != nil {
		t.Error(err)
	}
	if s.Files() != nil {
		t.Error("nil sink has files")
	}
	if err := s.Flush(); err != nil {
		t.Error(err)
	}
}

func TestEmptySinkFlushNoDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "never")
	s := NewSink(dir)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Error("empty sink created directory")
	}
}

func TestChartRendersSeries(t *testing.T) {
	a := stats.NewTimeSeries("rising")
	b := stats.NewTimeSeries("flat")
	for i := 0; i <= 10; i++ {
		a.Add(float64(i), float64(i)/10)
		b.Add(float64(i), 0.5)
	}
	out := Chart("Demo chart", 40, 8, a, b)
	for _, want := range []string{"Demo chart", "rising", "flat", "*", "o", "+---"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 10 {
		t.Errorf("chart too short: %d lines", len(lines))
	}
}

func TestChartNegativeValues(t *testing.T) {
	// A series dipping to -4 must render below the zero line, with the
	// bottom axis label showing the true minimum rather than 0.
	ts := stats.NewTimeSeries("deficit")
	ts.Add(0, 2)
	ts.Add(5, -4)
	ts.Add(10, -4)
	out := Chart("", 40, 8, ts)
	if !strings.Contains(out, "-4") {
		t.Errorf("bottom label missing the negative minimum:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	top, bottom := -1, -1
	for i, line := range lines {
		if strings.Contains(line, "*") {
			if top == -1 {
				top = i
			}
			bottom = i
		}
	}
	if top == bottom {
		t.Errorf("negative values flattened onto one row:\n%s", out)
	}
}

func TestChartNonNegativeUnchanged(t *testing.T) {
	// Charts of non-negative data must keep their original zero floor.
	ts := stats.NewTimeSeries("frac")
	ts.Add(0, 0)
	ts.Add(10, 1)
	out := Chart("", 40, 8, ts)
	if !strings.Contains(out, "        0 |") {
		t.Errorf("zero floor label changed:\n%s", out)
	}
}

func TestChartEmptyAndDegenerate(t *testing.T) {
	if out := Chart("t", 40, 8); !strings.Contains(out, "no data") {
		t.Errorf("empty chart = %q", out)
	}
	// Single point at t=0 has tMax = 0: no drawable x-range.
	ts := stats.NewTimeSeries("x")
	ts.Add(0, 1)
	if out := Chart("", 40, 8, ts); !strings.Contains(out, "no data") {
		t.Errorf("degenerate chart = %q", out)
	}
	// Tiny dimensions are clamped, not panicking.
	ts2 := stats.NewTimeSeries("y")
	ts2.Add(0, 1)
	ts2.Add(10, 2)
	if out := Chart("", 1, 1, ts2); out == "" {
		t.Error("clamped chart empty")
	}
}
