package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/stats"
)

// chartGlyphs mark the series, in order, in a Chart.
var chartGlyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Chart renders one or more time series as an ASCII line chart — the
// terminal rendering of the paper's figures. Series are drawn with distinct
// glyphs (later series win collisions), with a legend underneath. The value
// axis always includes zero and extends to the data's minimum, so negative
// values (e.g. deficits or residuals) render at their true height instead
// of being flattened onto the zero line.
func Chart(title string, width, height int, series ...*stats.TimeSeries) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	var tMax, vMax, vMin float64 // vMin <= 0 <= vMax, so zero stays on the axis
	hasData := false
	for _, ts := range series {
		for _, p := range ts.Points {
			if math.IsNaN(p.V) || math.IsInf(p.V, 0) {
				continue
			}
			hasData = true
			if p.T > tMax {
				tMax = p.T
			}
			if p.V > vMax {
				vMax = p.V
			}
			if p.V < vMin {
				vMin = p.V
			}
		}
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	if !hasData || tMax <= 0 {
		sb.WriteString("(no data)\n")
		return sb.String()
	}
	if vMax-vMin <= 0 { // every finite point is exactly zero
		vMax = 1
	}
	span := vMax - vMin

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, ts := range series {
		glyph := chartGlyphs[si%len(chartGlyphs)]
		pts := make([]stats.Point, len(ts.Points))
		copy(pts, ts.Points)
		sort.Slice(pts, func(i, j int) bool { return pts[i].T < pts[j].T })
		for col := 0; col < width; col++ {
			t := tMax * float64(col) / float64(width-1)
			v := valueAt(pts, t)
			if math.IsNaN(v) {
				continue
			}
			row := height - 1 - int(math.Round((v-vMin)/span*float64(height-1)))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = glyph
		}
	}
	for r, line := range grid {
		label := "          "
		switch r {
		case 0:
			label = fmt.Sprintf("%9.3g ", vMax)
		case height - 1:
			label = fmt.Sprintf("%9.3g ", vMin)
		}
		sb.WriteString(label)
		sb.WriteByte('|')
		sb.Write(line)
		sb.WriteByte('\n')
	}
	sb.WriteString(strings.Repeat(" ", 10))
	sb.WriteByte('+')
	sb.WriteString(strings.Repeat("-", width))
	sb.WriteByte('\n')
	sb.WriteString(strings.Repeat(" ", 11))
	axis := fmt.Sprintf("0%*s", width-1, fmt.Sprintf("%.3g", tMax))
	sb.WriteString(axis)
	sb.WriteByte('\n')
	for si, ts := range series {
		fmt.Fprintf(&sb, "  %c %s", chartGlyphs[si%len(chartGlyphs)], ts.Name)
		if (si+1)%4 == 0 || si == len(series)-1 {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// valueAt returns the step-interpolated value at t, NaN before the first
// point.
func valueAt(sorted []stats.Point, t float64) float64 {
	idx := sort.Search(len(sorted), func(i int) bool { return sorted[i].T > t })
	if idx == 0 {
		return math.NaN()
	}
	return sorted[idx-1].V
}
