// Package trace renders experiment outputs: aligned text tables for the
// terminal, CSV files for plotting, and JSON for downstream tooling.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/stats"
)

// Table is a simple aligned text/CSV table builder.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats with %.4g.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case float32:
			row[i] = fmt.Sprintf("%.4g", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString("== ")
		sb.WriteString(t.Title)
		sb.WriteString(" ==\n")
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// CSV renders the table as CSV (no quoting needed for our numeric content;
// cells containing commas are rejected at render time).
func (t *Table) CSV() (string, error) {
	var sb strings.Builder
	writeRow := func(cells []string) error {
		for i, cell := range cells {
			if strings.ContainsAny(cell, ",\n\"") {
				return fmt.Errorf("trace: cell %q needs quoting; use simple values", cell)
			}
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(cell)
		}
		sb.WriteByte('\n')
		return nil
	}
	if err := writeRow(t.Headers); err != nil {
		return "", err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return "", err
		}
	}
	return sb.String(), nil
}

// Sink collects named artifacts (tables, series) and can persist them to a
// directory. A nil Sink is valid and discards everything, so experiment
// code never branches on "do we want output files".
type Sink struct {
	dir   string
	files map[string]string
}

// NewSink returns a sink writing under dir (created on demand).
func NewSink(dir string) *Sink {
	return &Sink{dir: dir, files: make(map[string]string)}
}

// AddTable stores a table as <name>.csv.
func (s *Sink) AddTable(name string, t *Table) error {
	if s == nil {
		return nil
	}
	csv, err := t.CSV()
	if err != nil {
		return err
	}
	s.files[name+".csv"] = csv
	return nil
}

// AddSeries stores one or more time series merged into <name>.csv.
func (s *Sink) AddSeries(name string, series ...*stats.TimeSeries) {
	if s == nil {
		return
	}
	s.files[name+".csv"] = stats.MergeCSV(series...)
}

// AddJSON stores v marshaled as <name>.json.
func (s *Sink) AddJSON(name string, v any) error {
	if s == nil {
		return nil
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("trace: marshal %s: %w", name, err)
	}
	s.files[name+".json"] = string(data)
	return nil
}

// Files returns the artifact names collected so far.
func (s *Sink) Files() []string {
	if s == nil {
		return nil
	}
	out := make([]string, 0, len(s.files))
	for name := range s.files {
		out = append(out, name)
	}
	return out
}

// Flush writes all collected artifacts to the sink directory.
func (s *Sink) Flush() error {
	if s == nil || len(s.files) == 0 {
		return nil
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	for name, content := range s.files {
		path := filepath.Join(s.dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return fmt.Errorf("trace: writing %s: %w", path, err)
		}
	}
	return nil
}
