package node

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/algo"
	"repro/internal/piece"
	"repro/internal/transport"
)

// discoveryDegreeOK asserts the hard degree bound for every running node.
func discoveryDegreeOK(t *testing.T, nodes []*Node, maxDegree int) {
	t.Helper()
	for _, n := range nodes {
		if got := n.Stats().Neighbors; got > maxDegree {
			t.Errorf("node %d degree %d exceeds max %d", n.ID(), got, maxDegree)
		}
	}
}

// TestDiscoverySwarmAllAlgorithms: a DHT-wired swarm (every node bootstraps
// off at most three contacts, degree-bounded partial mesh) must complete
// under every mechanism that can initiate uploads, exactly like the full
// mesh does. (Pure reciprocity stalls by design — Lemma 2 — on any
// topology.)
func TestDiscoverySwarmAllAlgorithms(t *testing.T) {
	for _, a := range []algo.Algorithm{algo.Altruism, algo.BitTorrent, algo.FairTorrent, algo.Reputation, algo.TChain} {
		a := a
		t.Run(a.String(), func(t *testing.T) {
			t.Parallel()
			manifest, content := clusterFixture(t)
			c, err := StartCluster(manifest, content,
				WithAlgorithm(a),
				WithLeechers(12),
				WithTopology(Discovery(8, 3, 4)),
				WithDecisionInterval(2*time.Millisecond),
			)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Stop()
			ctx, cancel := context.WithTimeout(context.Background(), 45*time.Second)
			defer cancel()
			if err := c.WaitAllCompleteContext(ctx); err != nil {
				t.Fatalf("discovery swarm under %v did not complete: %v", a, err)
			}
			discoveryDegreeOK(t, c.Nodes, 8) // max = 2*target
		})
	}
}

// TestDiscoveryDegreeBounded: in a 40-node discovered swarm the partial
// mesh must stay strictly degree-bounded — nobody's neighbor set approaches
// N-1 — while routing tables grow well past the bootstrap set and the
// download still completes.
func TestDiscoveryDegreeBounded(t *testing.T) {
	manifest, content := clusterFixture(t)
	const leechers = 39
	c, err := StartCluster(manifest, content,
		WithLeechers(leechers),
		WithTopology(Discovery(8, 3, 6)),
		WithDecisionInterval(2*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := c.WaitAllCompleteContext(ctx); err != nil {
		t.Fatalf("discovered swarm did not complete: %v", err)
	}
	discoveryDegreeOK(t, c.Nodes, 12)
	// Convergence: most nodes route far more of the swarm than the three
	// contacts they bootstrapped from.
	converged := 0
	for _, n := range c.Nodes {
		if n.RoutingTable().Size() > maxBootstrapSeeds {
			converged++
		}
	}
	if converged < len(c.Nodes)*3/4 {
		t.Errorf("only %d/%d routing tables grew past the bootstrap set", converged, len(c.Nodes))
	}
	// Full-mesh nodes have no routing table at all.
	if c.Nodes[0].RoutingTable() == nil {
		t.Error("discovery node reports no routing table")
	}
}

// TestDiscoveryChurn64: a 64-node swarm on a lossy, laggy transport, with
// 20% of the leechers replaced mid-download (stop 13, join 13). Survivors
// and joiners must all complete, the degree bound must hold throughout, and
// tearing everything down must leak no goroutines. Run under -race this is
// the discovery subsystem's integration gate (scripts/check.sh runs it by
// name).
func TestDiscoveryChurn64(t *testing.T) {
	manifest, content := clusterFixture(t)
	before := runtime.NumGoroutine()

	tr, err := transport.NewFlaky(transport.NewMem(),
		transport.WithDropProb(0.02),
		transport.WithLatency(time.Millisecond, 3*time.Millisecond),
		transport.WithDropSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	const leechers = 63
	c, err := StartCluster(manifest, content,
		WithTransport(tr),
		WithLeechers(leechers),
		WithTopology(Discovery(8, 3, 6)),
		WithDecisionInterval(2*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	// Let the swarm wire up and start downloading, then churn: every fifth
	// leecher leaves (node IDs 5, 10, ..., 65 minus the seed) and a fresh
	// one joins in its place.
	time.Sleep(500 * time.Millisecond)
	stopped := make(map[int]bool)
	for i := 5; i <= leechers && len(stopped) < 13; i += 4 {
		if err := c.Nodes[i].Stop(); err != nil {
			t.Fatalf("stopping node %d: %v", i, err)
		}
		stopped[i] = true
	}
	joined := make([]*Node, 0, len(stopped))
	for range stopped {
		n, err := c.Join()
		if err != nil {
			t.Fatalf("join: %v", err)
		}
		joined = append(joined, n)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	for i, n := range c.Nodes {
		if i == 0 || stopped[i] {
			continue
		}
		if err := n.WaitCompleteContext(ctx); err != nil {
			st := n.Stats()
			t.Fatalf("survivor %d did not complete: %v (pieces %d, neighbors %d, table %d)",
				n.ID(), err, st.Pieces, st.Neighbors, n.RoutingTable().Size())
		}
	}
	if len(joined) != 13 {
		t.Fatalf("joined %d nodes, want 13", len(joined))
	}

	live := make([]*Node, 0, len(c.Nodes))
	for i, n := range c.Nodes {
		if i != 0 && stopped[i] {
			continue
		}
		live = append(live, n)
	}
	discoveryDegreeOK(t, live, 12)
	converged := 0
	for _, n := range live {
		if n.RoutingTable().Size() > maxBootstrapSeeds {
			converged++
		}
	}
	if converged < len(live)*3/4 {
		t.Errorf("only %d/%d routing tables grew past the bootstrap set", converged, len(live))
	}

	if err := c.Stop(); err != nil {
		t.Fatalf("cluster stop: %v", err)
	}
	// Stop returns after every node's WaitGroup drains, but the flaky
	// transport's per-connection dispatchers exit asynchronously on close —
	// poll briefly before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines: %d before, %d after Stop; stacks:\n%s", before, now, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDiscoveryTChainLateJoiner: a node that wires into a T-Chain swarm
// only after everyone else has finished hits the protocol's nastiest
// corner. Every neighbor is complete, so sealed pieces keep arriving but
// no reciprocation is possible — the origins need nothing, and no witness
// lacks any piece — so no key is ever released and no trust is ever
// earned. The joiner's bootstrap set deliberately excludes the
// plaintext-serving seed and its target degree equals the bootstrap size,
// leaving starvation rewiring as the only way out: detect zero progress,
// widen past TargetDegree, and rotate links until one lands on the seed.
func TestDiscoveryTChainLateJoiner(t *testing.T) {
	manifest, content := clusterFixture(t)
	tr := transport.NewMem()
	c, err := StartCluster(manifest, content,
		WithTransport(tr),
		WithAlgorithm(algo.TChain),
		WithLeechers(8),
		WithTopology(Discovery(8, 3, 4)),
		WithDecisionInterval(2*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 45*time.Second)
	defer cancel()
	if err := c.WaitAllCompleteContext(ctx); err != nil {
		t.Fatalf("base swarm did not complete: %v", err)
	}

	joiner, err := New(Config{
		ID:               100,
		Algorithm:        algo.TChain,
		Store:            piece.NewStore(manifest),
		Transport:        tr,
		Bootstrap:        []string{c.Nodes[3].Addr(), c.Nodes[4].Addr(), c.Nodes[5].Addr()},
		DecisionInterval: 2 * time.Millisecond,
		Discover:         &DiscoverConfig{K: 8, Alpha: 3, TargetDegree: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := joiner.Start(); err != nil {
		t.Fatal(err)
	}
	defer joiner.Stop()
	jctx, jcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer jcancel()
	if err := joiner.WaitCompleteContext(jctx); err != nil {
		st := joiner.Stats()
		t.Fatalf("late joiner never completed: %v (pieces %d, neighbors %d, sealed pending %d)",
			err, st.Pieces, st.Neighbors, st.SealedPending)
	}
}

// TestClusterJoin: nodes attached to a running discovered swarm bootstrap
// off the same few contacts, find the swarm, and complete.
func TestClusterJoin(t *testing.T) {
	manifest, content := clusterFixture(t)
	c, err := StartCluster(manifest, content,
		WithLeechers(8),
		WithTopology(Discovery(8, 3, 4)),
		WithDecisionInterval(2*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	joined := make([]*Node, 0, 4)
	for i := 0; i < 4; i++ {
		n, err := c.Join()
		if err != nil {
			t.Fatal(err)
		}
		joined = append(joined, n)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 45*time.Second)
	defer cancel()
	if err := c.WaitAllCompleteContext(ctx); err != nil {
		t.Fatalf("swarm with joiners did not complete: %v", err)
	}
	for _, n := range joined {
		if !n.Stats().Complete {
			t.Errorf("joiner %d incomplete", n.ID())
		}
	}
	// Join after Stop must refuse.
	c.Stop()
	if _, err := c.Join(); err == nil {
		t.Error("Join on a stopped cluster succeeded")
	}
}

// BenchmarkDiscoveryConvergence256 is the bench.sh discovery target's
// swarm-scale half: a 256-node cluster bootstrapped from three contacts,
// timed from start until the DHT has wired every node (degree >= 1) and
// until every leecher completes the download. s/wire and s/complete land in
// BENCH_dht.json alongside the routing-layer lookup latency.
func BenchmarkDiscoveryConvergence256(b *testing.B) {
	manifest, err := piece.SyntheticManifest(testPieces, testPieceSize)
	if err != nil {
		b.Fatal(err)
	}
	content := make([]byte, 0, manifest.FileSize)
	for i := 0; i < testPieces; i++ {
		content = append(content, piece.SyntheticPiece(i, testPieceSize)...)
	}
	for i := 0; i < b.N; i++ {
		start := time.Now()
		c, err := StartCluster(manifest, content,
			WithLeechers(255),
			WithTopology(Discovery(16, 3, 8)),
			WithDecisionInterval(5*time.Millisecond),
		)
		if err != nil {
			b.Fatal(err)
		}
		wireDeadline := time.Now().Add(60 * time.Second)
		for {
			wired := 0
			for _, n := range c.Nodes {
				if n.Stats().Neighbors >= 1 {
					wired++
				}
			}
			if wired == len(c.Nodes) {
				break
			}
			if time.Now().After(wireDeadline) {
				c.Stop()
				b.Fatalf("only %d/%d nodes wired after 60s", wired, len(c.Nodes))
			}
			time.Sleep(10 * time.Millisecond)
		}
		b.ReportMetric(time.Since(start).Seconds(), "s/wire")
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		if err := c.WaitAllCompleteContext(ctx); err != nil {
			cancel()
			c.Stop()
			b.Fatal(err)
		}
		cancel()
		b.ReportMetric(time.Since(start).Seconds(), "s/complete")
		c.Stop()
	}
}
