package node

import (
	"math/bits"
	"math/rand"
	"time"

	"repro/internal/algo"
	"repro/internal/incentive"
	"repro/internal/protocol"
	"repro/internal/tchain"
)

// nodeView adapts the node's state to incentive.NodeView. All methods are
// called with n.mu held (the upload loop and message handlers lock before
// consulting the strategy), so the interest queries read the per-remote
// counters directly — O(1) per probe, no store lock, no bitfield clone —
// and the slice results reuse node-owned scratch per the NodeView
// contract ("valid only until the next call on the view").
type nodeView struct {
	n *Node
}

var _ incentive.NodeView = nodeView{}

func (v nodeView) Self() incentive.PeerID { return incentive.PeerID(v.n.cfg.ID) }
func (v nodeView) Now() float64           { return time.Since(v.n.start).Seconds() }
func (v nodeView) RNG() *rand.Rand        { return v.n.rng }

func (v nodeView) Neighbors() []incentive.PeerID {
	out := v.n.neighborScratch[:0]
	for id := range v.n.peers {
		out = append(out, incentive.PeerID(id))
	}
	v.n.neighborScratch = out
	return out
}

// WantingNeighbors implements the incentive package's optional fast path:
// the neighbors whose cached theyNeed counter is positive, without the
// per-neighbor WantsFromMe round trips.
func (v nodeView) WantingNeighbors() ([]incentive.PeerID, bool) {
	out := v.n.wantScratch[:0]
	for id, r := range v.n.peers {
		if r.theyNeed > 0 {
			out = append(out, incentive.PeerID(id))
		}
	}
	v.n.wantScratch = out
	return out, true
}

func (v nodeView) WantsFromMe(p incentive.PeerID) bool {
	r, ok := v.n.peers[int(p)]
	return ok && r.theyNeed > 0
}

func (v nodeView) INeedFrom(p incentive.PeerID) bool {
	r, ok := v.n.peers[int(p)]
	return ok && r.iNeed > 0
}

func (v nodeView) PieceCount(p incentive.PeerID) int {
	r, ok := v.n.peers[int(p)]
	if !ok {
		return 0
	}
	return r.have.Count()
}

func (v nodeView) Reputation(p incentive.PeerID) float64 {
	return v.n.ledger.Score(int(p))
}

// view returns the strategy view; callers must hold n.mu.
func (n *Node) view() incentive.NodeView { return nodeView{n: n} }

// resendCooldown is how long a (peer, piece) send suppresses duplicates
// while we wait for the peer's Have.
const resendCooldown = 3 * time.Second

// reciprocationGrace is how long a seal's key stays strictly escrowed for a
// *trusted* receiver before the endgame fallback releases it (see
// markTrusted). Untrusted receivers get no grace: reciprocate or starve.
const reciprocationGrace = 2 * time.Second

// uploadLoop is the decision engine: a token bucket refilled at UploadRate
// drives strategy-chosen piece pushes.
func (n *Node) uploadLoop() {
	defer n.wg.Done()
	if n.cfg.FreeRide {
		return // free-riders never upload
	}
	ticker := time.NewTicker(n.cfg.DecisionInterval)
	defer ticker.Stop()

	pieceSize := float64(n.cfg.Store.Manifest().PieceSize)
	budget := pieceSize // allow an immediate first send
	last := time.Now()
	for {
		select {
		case <-n.done:
			return
		case now := <-ticker.C:
			if n.cfg.UploadRate > 0 {
				budget += n.cfg.UploadRate * now.Sub(last).Seconds()
				if maxBudget := 4 * pieceSize; budget > maxBudget {
					budget = maxBudget
				}
			} else {
				budget = 8 * pieceSize // unthrottled: bounded burst per tick
			}
			last = now
			for budget >= pieceSize {
				if !n.tryUpload() {
					break
				}
				budget -= pieceSize
			}
		}
	}
}

// tryUpload asks the strategy for a receiver and pushes one piece; reports
// whether a send happened. A peer whose bulk queue is full is skipped
// before any piece work — backpressure redirects the budget instead of
// piling frames onto a stalled connection.
func (n *Node) tryUpload() bool {
	n.mu.Lock()
	receiverID := n.strategy.NextReceiver(n.view())
	if receiverID == incentive.NoPeer {
		n.mu.Unlock()
		return false
	}
	r, ok := n.peers[int(receiverID)]
	if !ok {
		n.mu.Unlock()
		return false
	}
	if r.dataBacklogged() {
		n.mu.Unlock()
		return false
	}
	idx := n.pickPieceLocked(r)
	if idx < 0 {
		n.mu.Unlock()
		return false
	}
	n.markSentLocked(r.id, idx)
	// Trace decision while mu still guards pieceTrace: continue the trace
	// this piece arrived under, or let the sampler mint a fresh one. Nil
	// means untraced — the send path then runs the pre-tracing code exactly.
	var ut *uploadTrace
	if n.tracer != nil {
		ut = n.uploadTraceLocked(idx, r.id)
	}
	n.mu.Unlock()

	data, err := n.cfg.Store.GetRef(idx)
	if err != nil {
		return false
	}
	if n.cfg.Algorithm == algo.TChain && !n.cfg.SeedMode {
		return n.sendSealed(r, idx, data, ut)
	}
	return n.sendPiece(r, idx, data, protocol.NoRepay, ut)
}

// pickPieceLocked chooses a uniformly random piece the receiver needs,
// excluding recent sends (mu held). It walks the bitfield words directly
// with a reservoir pick, so the hot path builds no candidate slice; the
// cached theyNeed counter short-circuits peers with nothing to gain.
func (n *Node) pickPieceLocked(r *remote) int {
	if r.theyNeed == 0 {
		return -1
	}
	recent := n.recentSends[r.id]
	now := time.Now()
	mine, theirs := n.myBits.Words(), r.have.Words()
	limit := min(len(mine), len(theirs))
	picked, seen := -1, 0
	for w := 0; w < limit; w++ {
		diff := mine[w] &^ theirs[w]
		for diff != 0 {
			idx := w*64 + bits.TrailingZeros64(diff)
			diff &= diff - 1
			if at, ok := recent[idx]; ok && now.Sub(at) < resendCooldown {
				continue
			}
			seen++
			if n.rng.Intn(seen) == 0 {
				picked = idx
			}
		}
	}
	return picked
}

// pickRandomWantedLocked returns a uniformly random piece we hold that r
// lacks, or -1 (mu held). Unlike pickPieceLocked it ignores the resend
// cooldown: it serves the reciprocation path, where repaying with a piece
// we recently pushed is still a valid (and verifiable) repayment.
func (n *Node) pickRandomWantedLocked(r *remote) int {
	if r.theyNeed == 0 {
		return -1
	}
	mine, theirs := n.myBits.Words(), r.have.Words()
	limit := min(len(mine), len(theirs))
	picked, seen := -1, 0
	for w := 0; w < limit; w++ {
		diff := mine[w] &^ theirs[w]
		for diff != 0 {
			idx := w*64 + bits.TrailingZeros64(diff)
			diff &= diff - 1
			seen++
			if n.rng.Intn(seen) == 0 {
				picked = idx
			}
		}
	}
	return picked
}

func (n *Node) markSentLocked(peerID, idx int) {
	recent := n.recentSends[peerID]
	if recent == nil {
		recent = make(map[int]time.Time)
		n.recentSends[peerID] = recent
	}
	recent[idx] = time.Now()
}

// sendPiece pushes plaintext and reports whether the frame was accepted
// (repaysKeyID = NoRepay for ordinary uploads). Ordinary uploads respect
// the peer's bounded bulk queue; repayment pieces travel the control path —
// dropping one would strand the counterpart's escrowed key forever, so
// they are never refused. Accounting only happens for accepted frames.
// ut, when non-nil, traces the push (see trace.go); the frame then carries
// the trace context to the receiver.
func (n *Node) sendPiece(r *remote, idx int, data []byte, repaysKeyID uint64, ut *uploadTrace) bool {
	msg := protocol.Piece{Index: int32(idx), RepaysKeyID: repaysKeyID, Data: data}
	if ut != nil {
		msg.Trace = ut.tc
	}
	if repaysKeyID != protocol.NoRepay {
		if ut != nil {
			r.enqueueTraced(msg, ut)
		} else {
			r.enqueue(msg)
		}
	} else if ut != nil {
		if !r.enqueueDataTraced(msg, ut) {
			return false
		}
	} else if !r.enqueueData(msg) {
		return false
	}
	n.metrics.noteUpload(r.id, len(data))
	n.mu.Lock()
	n.strategy.OnSent(n.view(), incentive.PeerID(r.id), float64(len(data)))
	n.mu.Unlock()
	return true
}

// sendSealed pushes an encrypted piece and records the reciprocation
// demand; the key stays in escrow until the receiver (or a witness)
// confirms. ut, when non-nil, traces the push.
func (n *Node) sendSealed(r *remote, idx int, data []byte, ut *uploadTrace) bool {
	sealed, err := n.escrow.Seal(data)
	if err != nil {
		return false
	}
	n.mu.Lock()
	n.sealIndex[sealed.KeyID] = idx
	n.mu.Unlock()
	// Accept reciprocation observed by any witness (direct repayment
	// arrives as a Piece with RepaysKeyID and confirms with ourselves as
	// witness).
	n.recip.Demand(sealed.KeyID, r.id, tchain.Obligation{Kind: tchain.Indirect, Target: tchain.AnyPeer})
	msg := protocol.SealedPiece{
		Index:      int32(idx),
		KeyID:      sealed.KeyID,
		Nonce:      sealed.Nonce,
		Ciphertext: sealed.Ciphertext,
		OriginID:   int32(n.cfg.ID),
		OriginAddr: n.Addr(),
	}
	if ut != nil {
		msg.Trace = ut.tc
	}
	accepted := false
	if ut != nil {
		accepted = r.enqueueDataTraced(msg, ut)
	} else {
		accepted = r.enqueueData(msg)
	}
	if !accepted {
		// Queue full: unwind the seal as if it never happened, so the
		// escrow and demand ledgers do not accumulate unsent obligations.
		n.recip.Take(sealed.KeyID)
		n.escrow.Revoke(sealed.KeyID)
		n.mu.Lock()
		delete(n.sealIndex, sealed.KeyID)
		n.mu.Unlock()
		return false
	}
	n.metrics.noteUpload(r.id, len(data))
	n.mu.Lock()
	n.strategy.OnSent(n.view(), incentive.PeerID(r.id), float64(len(data)))
	n.mu.Unlock()

	// Endgame fallback: if the receiver has genuinely reciprocated before
	// and still owes this one after the grace period (typically because
	// nobody in the swarm needs anything anymore), release the key.
	keyID := sealed.KeyID
	receiverID := r.id
	time.AfterFunc(reciprocationGrace, func() {
		n.mu.Lock()
		trusted := n.trusted[receiverID]
		receiver := n.peers[receiverID]
		n.mu.Unlock()
		if !trusted || receiver == nil {
			return
		}
		if n.recip.Take(keyID) {
			n.releaseKeys(receiver, []uint64{keyID})
		}
	})
	return true
}
