package node

import (
	"math/rand"
	"time"

	"repro/internal/algo"
	"repro/internal/incentive"
	"repro/internal/protocol"
	"repro/internal/tchain"
)

// nodeView adapts the node's state to incentive.NodeView. All methods are
// called with n.mu held (the upload loop and message handlers lock before
// consulting the strategy).
type nodeView struct {
	n *Node
}

var _ incentive.NodeView = nodeView{}

func (v nodeView) Self() incentive.PeerID { return incentive.PeerID(v.n.cfg.ID) }
func (v nodeView) Now() float64           { return time.Since(v.n.start).Seconds() }
func (v nodeView) RNG() *rand.Rand        { return v.n.rng }

func (v nodeView) Neighbors() []incentive.PeerID {
	out := make([]incentive.PeerID, 0, len(v.n.peers))
	for id := range v.n.peers {
		out = append(out, incentive.PeerID(id))
	}
	return out
}

func (v nodeView) WantsFromMe(p incentive.PeerID) bool {
	r, ok := v.n.peers[int(p)]
	if !ok {
		return false
	}
	return r.have.Needs(v.n.cfg.Store.Bitfield())
}

func (v nodeView) INeedFrom(p incentive.PeerID) bool {
	r, ok := v.n.peers[int(p)]
	if !ok {
		return false
	}
	return v.n.cfg.Store.Bitfield().Needs(r.have)
}

func (v nodeView) PieceCount(p incentive.PeerID) int {
	r, ok := v.n.peers[int(p)]
	if !ok {
		return 0
	}
	return r.have.Count()
}

func (v nodeView) Reputation(p incentive.PeerID) float64 {
	return v.n.ledger.Score(int(p))
}

// view returns the strategy view; callers must hold n.mu.
func (n *Node) view() incentive.NodeView { return nodeView{n: n} }

// resendCooldown is how long a (peer, piece) send suppresses duplicates
// while we wait for the peer's Have.
const resendCooldown = 3 * time.Second

// reciprocationGrace is how long a seal's key stays strictly escrowed for a
// *trusted* receiver before the endgame fallback releases it (see
// markTrusted). Untrusted receivers get no grace: reciprocate or starve.
const reciprocationGrace = 2 * time.Second

// uploadLoop is the decision engine: a token bucket refilled at UploadRate
// drives strategy-chosen piece pushes.
func (n *Node) uploadLoop() {
	defer n.wg.Done()
	if n.cfg.FreeRide {
		return // free-riders never upload
	}
	ticker := time.NewTicker(n.cfg.DecisionInterval)
	defer ticker.Stop()

	pieceSize := float64(n.cfg.Store.Manifest().PieceSize)
	budget := pieceSize // allow an immediate first send
	last := time.Now()
	for {
		select {
		case <-n.done:
			return
		case now := <-ticker.C:
			if n.cfg.UploadRate > 0 {
				budget += n.cfg.UploadRate * now.Sub(last).Seconds()
				if maxBudget := 4 * pieceSize; budget > maxBudget {
					budget = maxBudget
				}
			} else {
				budget = 8 * pieceSize // unthrottled: bounded burst per tick
			}
			last = now
			for budget >= pieceSize {
				if !n.tryUpload() {
					break
				}
				budget -= pieceSize
			}
		}
	}
}

// tryUpload asks the strategy for a receiver and pushes one piece; reports
// whether a send happened.
func (n *Node) tryUpload() bool {
	n.mu.Lock()
	receiverID := n.strategy.NextReceiver(n.view())
	if receiverID == incentive.NoPeer {
		n.mu.Unlock()
		return false
	}
	r, ok := n.peers[int(receiverID)]
	if !ok {
		n.mu.Unlock()
		return false
	}
	idx := n.pickPieceLocked(r)
	if idx < 0 {
		n.mu.Unlock()
		return false
	}
	n.markSentLocked(r.id, idx)
	n.mu.Unlock()

	data, err := n.cfg.Store.Get(idx)
	if err != nil {
		return false
	}
	if n.cfg.Algorithm == algo.TChain && !n.cfg.SeedMode {
		return n.sendSealed(r, idx, data)
	}
	n.sendPiece(r, idx, data, protocol.NoRepay)
	return true
}

// pickPieceLocked chooses a piece the receiver needs, excluding recent
// sends (mu held).
func (n *Node) pickPieceLocked(r *remote) int {
	candidates := r.have.MissingFrom(n.cfg.Store.Bitfield())
	recent := n.recentSends[r.id]
	now := time.Now()
	filtered := candidates[:0]
	for _, c := range candidates {
		if at, ok := recent[c]; ok && now.Sub(at) < resendCooldown {
			continue
		}
		filtered = append(filtered, c)
	}
	if len(filtered) == 0 {
		return -1
	}
	return filtered[n.rng.Intn(len(filtered))]
}

func (n *Node) markSentLocked(peerID, idx int) {
	recent := n.recentSends[peerID]
	if recent == nil {
		recent = make(map[int]time.Time)
		n.recentSends[peerID] = recent
	}
	recent[idx] = time.Now()
}

// sendPiece pushes plaintext (repaysKeyID = NoRepay for ordinary uploads).
func (n *Node) sendPiece(r *remote, idx int, data []byte, repaysKeyID uint64) {
	msg := protocol.Piece{Index: int32(idx), RepaysKeyID: repaysKeyID, Data: data}
	r.enqueue(msg)
	n.mu.Lock()
	n.uploaded += float64(len(data))
	n.strategy.OnSent(n.view(), incentive.PeerID(r.id), float64(len(data)))
	n.mu.Unlock()
}

// sendSealed pushes an encrypted piece and records the reciprocation
// demand; the key stays in escrow until the receiver (or a witness)
// confirms.
func (n *Node) sendSealed(r *remote, idx int, data []byte) bool {
	sealed, err := n.escrow.Seal(data)
	if err != nil {
		return false
	}
	n.mu.Lock()
	n.sealIndex[sealed.KeyID] = idx
	n.mu.Unlock()
	// Accept reciprocation observed by any witness (direct repayment
	// arrives as a Piece with RepaysKeyID and confirms with ourselves as
	// witness).
	n.recip.Demand(sealed.KeyID, r.id, tchain.Obligation{Kind: tchain.Indirect, Target: tchain.AnyPeer})
	msg := protocol.SealedPiece{
		Index:      int32(idx),
		KeyID:      sealed.KeyID,
		Nonce:      sealed.Nonce,
		Ciphertext: sealed.Ciphertext,
		OriginID:   int32(n.cfg.ID),
		OriginAddr: n.Addr(),
	}
	r.enqueue(msg)
	n.mu.Lock()
	n.uploaded += float64(len(data))
	n.strategy.OnSent(n.view(), incentive.PeerID(r.id), float64(len(data)))
	n.mu.Unlock()

	// Endgame fallback: if the receiver has genuinely reciprocated before
	// and still owes this one after the grace period (typically because
	// nobody in the swarm needs anything anymore), release the key.
	keyID := sealed.KeyID
	receiverID := r.id
	time.AfterFunc(reciprocationGrace, func() {
		n.mu.Lock()
		trusted := n.trusted[receiverID]
		receiver := n.peers[receiverID]
		n.mu.Unlock()
		if !trusted || receiver == nil {
			return
		}
		if n.recip.Take(keyID) {
			n.releaseKeys(receiver, []uint64{keyID})
		}
	})
	return true
}
