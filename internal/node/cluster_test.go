package node

import (
	"context"
	"testing"
	"time"

	"repro/internal/algo"
	"repro/internal/attest"
	"repro/internal/piece"
	"repro/internal/transport"
)

func clusterFixture(t *testing.T) (*piece.Manifest, []byte) {
	t.Helper()
	manifest, err := piece.SyntheticManifest(testPieces, testPieceSize)
	if err != nil {
		t.Fatal(err)
	}
	content := make([]byte, 0, manifest.FileSize)
	for i := 0; i < testPieces; i++ {
		content = append(content, piece.SyntheticPiece(i, testPieceSize)...)
	}
	return manifest, content
}

func TestStartClusterValidation(t *testing.T) {
	manifest, content := clusterFixture(t)
	bad := []struct {
		name     string
		manifest *piece.Manifest
		content  []byte
		opts     []ClusterOption
	}{
		{"no manifest", nil, content, nil},
		{"no content", manifest, nil, nil},
		{"nil transport", manifest, content, []ClusterOption{WithTransport(nil)}},
		{"nil listen func", manifest, content, []ClusterOption{WithListenAddr(nil)}},
		{"negative leechers", manifest, content, []ClusterOption{WithLeechers(-1)}},
		{"negative rate", manifest, content, []ClusterOption{WithUploadRate(-1)}},
		{"nil identity func", manifest, content, []ClusterOption{WithIdentity(nil)}},
		{"bad attest scheme", manifest, content, []ClusterOption{WithAttestScheme(attest.SchemeNone)}},
	}
	for _, tc := range bad {
		if _, err := StartCluster(tc.manifest, tc.content, tc.opts...); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestClusterLifecycle(t *testing.T) {
	manifest, content := clusterFixture(t)
	c, err := StartCluster(manifest, content,
		WithAlgorithm(algo.TChain),
		WithLeechers(3),
		WithFreeRiders(map[int]bool{3: true}),
		WithDecisionInterval(2*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	if c.Seed().ID() != 0 || len(c.Leechers()) != 3 {
		t.Fatalf("cluster shape wrong: seed %d, %d leechers", c.Seed().ID(), len(c.Leechers()))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := c.WaitAllCompleteContext(ctx); err != nil {
		t.Fatalf("compliant leechers did not complete: %v", err)
	}
	// The free-rider is excluded from WaitAllCompleteContext and holds nothing.
	if got := c.Nodes[3].Stats().Pieces; got != 0 {
		t.Errorf("T-Chain free-rider decrypted %d pieces", got)
	}
	if c.Ledger.Score(0) <= 0 {
		t.Error("seed earned no reputation")
	}
}

// TestClusterOverDegradedTransport runs a whole cluster over a transport
// that both drops 3% of data messages and delays every delivery by a random
// 1–5 ms: the recovery paths plus the flaky transport's in-order delay queue
// must still converge to a complete swarm.
func TestClusterOverDegradedTransport(t *testing.T) {
	manifest, content := clusterFixture(t)
	tr, err := transport.NewFlaky(transport.NewMem(),
		transport.WithDropProb(0.03),
		transport.WithLatency(time.Millisecond, 5*time.Millisecond),
		transport.WithDropSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	c, err := StartCluster(manifest, content,
		WithTransport(tr),
		WithLeechers(3),
		WithDecisionInterval(2*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 45*time.Second)
	defer cancel()
	if err := c.WaitAllCompleteContext(ctx); err != nil {
		t.Fatalf("cluster did not complete over degraded transport: %v", err)
	}
}

// TestClusterStopIdempotent drives a cluster through a full start/stop
// cycle and checks the Stop contract: repeat calls are safe and report the
// same (nil) error.
func TestClusterStopIdempotent(t *testing.T) {
	manifest, content := clusterFixture(t)
	c, err := StartCluster(manifest, content,
		WithAlgorithm(algo.Altruism),
		WithTransport(transport.NewMem()),
		WithLeechers(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Stop(); err != nil {
		t.Fatalf("first Stop: %v", err)
	}
	if err := c.Stop(); err != nil {
		t.Fatalf("second Stop: %v", err)
	}
	// Stopping a member node directly is also idempotent.
	if err := c.Nodes[0].Stop(); err != nil {
		t.Fatalf("node re-Stop: %v", err)
	}
}
