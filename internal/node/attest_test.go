package node

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/algo"
	"repro/internal/attest"
	"repro/internal/piece"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// startSignedCluster runs a default (signed, session-scheme) cluster to
// completion and returns it still running, for post-hoc inspection.
func startSignedCluster(t *testing.T, tr transport.Transport, leechers int) *Cluster {
	t.Helper()
	manifest, err := piece.SyntheticManifest(testPieces, testPieceSize)
	if err != nil {
		t.Fatal(err)
	}
	content := make([]byte, 0, manifest.FileSize)
	for i := 0; i < testPieces; i++ {
		content = append(content, piece.SyntheticPiece(i, testPieceSize)...)
	}
	c, err := StartCluster(manifest, content,
		WithAlgorithm(algo.Altruism),
		WithTransport(tr),
		WithLeechers(leechers),
		WithDecisionInterval(2*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Stop() })
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.WaitAllCompleteContext(ctx); err != nil {
		t.Fatal(err)
	}
	return c
}

// sumCounter totals one counter across every node's private registry.
func sumCounter(c *Cluster, name string) int64 {
	var total int64
	for _, n := range c.Nodes {
		total += n.Metrics().Snapshot().Counters[name]
	}
	return total
}

// TestClusterAttestationEndToEnd checks the proof-first accounting books
// after a full signed swarm: every piece delivery produced exactly one
// receipt, the shared ledger's scores are the byte-exact sum of those
// verified proofs, and nothing was rejected.
func TestClusterAttestationEndToEnd(t *testing.T) {
	const leechers = 4
	c := startSignedCluster(t, transport.NewMem(), leechers)

	// Racing duplicate deliveries are genuine uploads and are credited too
	// (Store.Put is idempotent), so delivery-derived quantities are lower
	// bounds while proofs, scores, and counters must agree exactly.
	minDeliveries := int64(leechers * testPieces)

	var valid, invalid uint64
	var score float64
	for _, s := range c.Ledger.Snapshot() {
		valid += s.Valid
		invalid += s.Invalid
		score += s.Score
	}
	if int64(valid) < minDeliveries || invalid != 0 {
		t.Errorf("ledger proofs = %d valid / %d invalid, want >= %d / 0", valid, invalid, minDeliveries)
	}
	if want := float64(valid) * testPieceSize; score != want {
		t.Errorf("ledger score sum = %g, want %g (one piece per proof)", score, want)
	}
	if seed := c.Ledger.Score(0); seed <= 0 {
		t.Errorf("seed score = %g, want > 0 (it uploaded)", seed)
	}

	if got := sumCounter(c, "node_attest_signed_total"); got != int64(valid) {
		t.Errorf("receipts signed = %d, want %d (one per credited proof)", got, valid)
	}
	if got := sumCounter(c, "node_attest_credited_total"); got != int64(valid) {
		t.Errorf("receipts credited = %d, want %d", got, valid)
	}
	if got := sumCounter(c, `node_attest_acks_total{result="bad"}`); got != 0 {
		t.Errorf("bad acks = %d, want 0 on an untampered transport", got)
	}
	if got := sumCounter(c, `node_attest_acks_total{result="ok"}`); got == 0 {
		t.Error("no sender ever received a valid receipt copy")
	}

	info := c.Nodes[1].VerifyInfoSnapshot()
	if !info.Enabled || info.Scheme != attest.SchemeSession.String() {
		t.Errorf("verify info = enabled %v scheme %q, want enabled session", info.Enabled, info.Scheme)
	}
	if info.Admitted != leechers+1 {
		t.Errorf("admitted identities = %d, want %d", info.Admitted, leechers+1)
	}
}

// tamperTransport corrupts the signature of every receipt frame crossing
// the wire, in both directions, leaving all other traffic intact — the
// man-in-the-middle the ack audit path is built to catch. Messages are
// copied before mutation: the memory transport delivers by reference.
type tamperTransport struct{ transport.Transport }

func (tt tamperTransport) Dial(addr string) (transport.Conn, error) {
	c, err := tt.Transport.Dial(addr)
	if err != nil {
		return nil, err
	}
	return tamperConn{c}, nil
}

func (tt tamperTransport) Listen(addr string) (transport.Listener, error) {
	l, err := tt.Transport.Listen(addr)
	if err != nil {
		return nil, err
	}
	return tamperListener{l}, nil
}

type tamperListener struct{ transport.Listener }

func (tl tamperListener) Accept() (transport.Conn, error) {
	c, err := tl.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return tamperConn{c}, nil
}

type tamperConn struct{ transport.Conn }

func corruptAttest(m protocol.Message) protocol.Message {
	switch f := m.(type) {
	case protocol.Attest:
		f.Att.Sig[0] ^= 0xff
		return f
	case protocol.AttestBatch:
		atts := make([]attest.Attestation, len(f.Atts))
		copy(atts, f.Atts)
		for i := range atts {
			atts[i].Sig[0] ^= 0xff
		}
		return protocol.AttestBatch{Atts: atts}
	}
	return m
}

func (tc tamperConn) Send(m protocol.Message) error {
	return tc.Conn.Send(corruptAttest(m))
}

func (tc tamperConn) SendBatch(ms []protocol.Message) error {
	out := make([]protocol.Message, len(ms))
	for i, m := range ms {
		out[i] = corruptAttest(m)
	}
	if bs, ok := tc.Conn.(transport.BatchSender); ok {
		return bs.SendBatch(out)
	}
	for _, m := range out {
		if err := tc.Conn.Send(m); err != nil {
			return err
		}
	}
	return nil
}

// TestClusterSurvivesTamperedAcks runs a signed swarm over a transport
// that corrupts every receipt copy in flight. The swarm still completes
// (receipts are evidence, not flow control), the shared ledger is
// untouched (crediting happens at the receiver, not over the wire), and
// every tampered copy is caught and counted — none verifies.
func TestClusterSurvivesTamperedAcks(t *testing.T) {
	const leechers = 3
	c := startSignedCluster(t, tamperTransport{transport.NewMem()}, leechers)

	minDeliveries := int64(leechers * testPieces)
	var valid, invalid uint64
	for _, s := range c.Ledger.Snapshot() {
		valid += s.Valid
		invalid += s.Invalid
	}
	if int64(valid) < minDeliveries || invalid != 0 {
		t.Errorf("ledger proofs = %d valid / %d invalid, want >= %d / 0 (crediting is local)", valid, invalid, minDeliveries)
	}
	if got := sumCounter(c, `node_attest_acks_total{result="ok"}`); got != 0 {
		t.Errorf("%d tampered receipt copies verified, want 0", got)
	}
	if got := sumCounter(c, `node_attest_acks_total{result="bad"}`); got == 0 {
		t.Error("no tampered receipt copy was caught")
	}
}

// TestVerifyEndpoint exercises the audit surface: GET returns the
// proof-derived standings, POST separates a genuine receipt from a forged
// one without spending either (auditing must not consume replay windows).
func TestVerifyEndpoint(t *testing.T) {
	c := startSignedCluster(t, transport.NewMem(), 2)
	srv := httptest.NewServer(MetricsMux(c.Nodes[1]))
	defer srv.Close()

	res, err := srv.Client().Get(srv.URL + "/verify")
	if err != nil {
		t.Fatal(err)
	}
	var info VerifyInfo
	if err := json.NewDecoder(res.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if !info.Enabled || len(info.Standings) == 0 {
		t.Fatalf("GET /verify = %+v, want enabled with standings", info)
	}
	var seedScore float64
	for _, s := range info.Standings {
		if s.Peer == 0 {
			seedScore = s.Score
		}
	}
	if seedScore <= 0 {
		t.Errorf("seed standing %g over /verify, want > 0", seedScore)
	}

	genuine := c.Key(2).Attest(attest.SchemeSession, 1, 0, [32]byte{}, testPieceSize)
	toJSON := func(a attest.Attestation) VerifyAttJSON {
		return VerifyAttJSON{
			Sender: a.Sender, Receiver: a.Receiver, Index: a.Index,
			Hash: hex.EncodeToString(a.Hash[:]), Bytes: a.Bytes,
			Seq: a.Seq, Scheme: uint8(a.Scheme), Sig: hex.EncodeToString(a.Sig[:]),
		}
	}
	forged := genuine
	forged.Sig[0] ^= 0xff
	body, err := json.Marshal([]VerifyAttJSON{toJSON(genuine), toJSON(forged)})
	if err != nil {
		t.Fatal(err)
	}

	// Audit twice: the second pass must agree with the first, proving the
	// endpoint spends no state.
	for pass := 0; pass < 2; pass++ {
		res, err := srv.Client().Post(srv.URL+"/verify", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var verdicts []VerifyResult
		if err := json.NewDecoder(res.Body).Decode(&verdicts); err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if len(verdicts) != 2 || !verdicts[0].OK || verdicts[1].OK {
			t.Fatalf("pass %d verdicts = %+v, want [genuine ok, forged refused]", pass, verdicts)
		}
	}
}
