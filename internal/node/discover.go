package node

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/discovery"
	"repro/internal/metrics"
	"repro/internal/protocol"
	"repro/internal/tchain"
	"repro/internal/tracing"
	"repro/internal/transport"
)

// DiscoverConfig enables decentralized peer discovery: instead of a static
// full mesh, the node maintains a Kademlia routing table (internal/discovery)
// over FindNode/Nodes RPCs, learns peers through gossip (Announce frames and
// handshake peer exchange), and keeps a degree-bounded neighbor set alive by
// dialing routing-table candidates and pinging idle links. Zero values take
// the defaults noted per field.
type DiscoverConfig struct {
	// K is the bucket capacity and lookup width (Kademlia's k; default 16).
	K int
	// Alpha is the lookup parallelism (default 3).
	Alpha int
	// TargetDegree is how many neighbors the node dials toward (default 8).
	TargetDegree int
	// MaxDegree caps accepted neighbors; surplus inbound handshakes are
	// redirected — answered with the closest known contacts plus Bye —
	// instead of registered (default 2*TargetDegree).
	MaxDegree int
	// MaintainInterval is the degree/liveness maintenance tick (default 150ms).
	MaintainInterval time.Duration
	// AnnounceInterval is how often the node gossips its own contact
	// (default 2s).
	AnnounceInterval time.Duration
	// RefreshInterval is how often a random-target bucket-refresh lookup
	// runs (default 3s).
	RefreshInterval time.Duration
	// PingInterval is how long a neighbor link may stay silent before it is
	// pinged (default 5s).
	PingInterval time.Duration
	// PingTimeout is how long a link may stay silent before it is declared
	// dead and closed (default 3*PingInterval).
	PingTimeout time.Duration
	// QueryTimeout bounds one transient FindNode RPC (default 1s).
	QueryTimeout time.Duration
}

// withDefaults fills zero fields with the documented defaults.
func (c DiscoverConfig) withDefaults() DiscoverConfig {
	if c.K <= 0 {
		c.K = 16
	}
	if c.Alpha <= 0 {
		c.Alpha = 3
	}
	if c.TargetDegree <= 0 {
		c.TargetDegree = 8
	}
	if c.MaxDegree <= 0 {
		c.MaxDegree = 2 * c.TargetDegree
	}
	if c.MaxDegree < c.TargetDegree {
		c.MaxDegree = c.TargetDegree
	}
	if c.MaintainInterval <= 0 {
		c.MaintainInterval = 150 * time.Millisecond
	}
	if c.AnnounceInterval <= 0 {
		c.AnnounceInterval = 2 * time.Second
	}
	if c.RefreshInterval <= 0 {
		c.RefreshInterval = 3 * time.Second
	}
	if c.PingInterval <= 0 {
		c.PingInterval = 5 * time.Second
	}
	if c.PingTimeout <= 0 {
		c.PingTimeout = 3 * c.PingInterval
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = time.Second
	}
	return c
}

const (
	// announceTTL bounds gossip propagation depth; with fanout 3 an
	// announce reaches ~fanout^TTL nodes, plenty for the swarm sizes the
	// repo runs while keeping traffic linear.
	announceTTL = 3
	// announceFanout is how many random neighbors a fresh announce is
	// forwarded to.
	announceFanout = 3
	// redialCooldown spaces dial attempts toward one contact, so a node
	// that redirects us (at capacity) is not hammered every maintain tick.
	redialCooldown = 2 * time.Second
	// discoverySessionTimeout bounds a served transient discovery session;
	// transport.Conn has no deadlines, so a watchdog closes the conn.
	discoverySessionTimeout = 5 * time.Second
	// redirectLinger bounds how long a refused connection stays open after
	// the redirect is sent, waiting for the dialer to hang up.
	redirectLinger = 2 * time.Second
	// starveTicksToWiden is how many consecutive maintain ticks a node must
	// spend starved — incomplete and gaining no pieces — before it dials
	// past TargetDegree toward MaxDegree for fresh links.
	starveTicksToWiden = 4
	// starveTicksToRotate is the longer starvation threshold at which the
	// node drops one random neighbor to force rewiring: its current links
	// are demonstrably useless (no piece has arrived over any of them), so
	// trading one for an unconnected candidate is strictly more promising.
	starveTicksToRotate = 12
)

// errSelfQuery rejects a lookup query aimed at ourselves.
var errSelfQuery = errors.New("node: discovery query to self")

// discState is the node's discovery runtime: the routing table, gossip
// bookkeeping, and the discovery_ metric handles. Nil on full-mesh nodes —
// every hook in the hot paths checks that, so discovery-off nodes run the
// exact pre-discovery code.
type discState struct {
	cfg   DiscoverConfig
	table *discovery.Table

	mu          sync.Mutex
	rng         *rand.Rand
	announceSeq uint32
	querySeq    uint32
	pingSeq     uint32
	seen        map[int32]uint32 // gossip origin -> highest announce seq
	dialing     map[int]bool     // contact dials in flight
	cooldown    map[int]int64    // contact -> no-redial-before (sinceStartNs)

	lookupBusy   bool  // one refresh/self lookup at a time
	lastRedialNs int64 // last empty-table bootstrap re-dial (sinceStartNs)
	starveTicks  int   // consecutive no-progress maintain ticks (discoverLoop only)
	lastPieces   int   // piece count at the previous maintain tick (discoverLoop only)

	lookupNs       *metrics.Histogram
	queriesSent    *metrics.Counter
	queriesServed  *metrics.Counter
	announcesSent  *metrics.Counter
	announcesFwd   *metrics.Counter
	announcesStale *metrics.Counter
	redirects      *metrics.Counter
	dialFailures   *metrics.Counter
	pingsSent      *metrics.Counter
	peersExpired   *metrics.Counter
	rewires        *metrics.Counter
}

// newDiscState builds the discovery runtime and registers its telemetry
// (the discovery_ series) in reg:
//
//	discovery_table_size                   routing-table contacts (gauge)
//	discovery_lookup_ns                    iterative lookup latency histogram
//	discovery_queries_sent_total / discovery_queries_served_total
//	discovery_announces_sent_total / _forwarded_total / _stale_total
//	discovery_redirects_total              inbound handshakes refused at MaxDegree
//	discovery_dial_failures_total
//	discovery_pings_sent_total
//	discovery_peers_expired_total          links closed by the ping timeout
//	discovery_rewires_total                links dropped by starvation rewiring
//	discovery_bucket_occupancy{bucket=N}   contacts per k-bucket (gauges)
func newDiscState(cfg DiscoverConfig, nodeID int, seed int64, reg *metrics.Registry) *discState {
	d := &discState{
		cfg:            cfg.withDefaults(),
		table:          discovery.NewTable(nodeID, cfg.withDefaults().K),
		rng:            rand.New(rand.NewSource(seed ^ 0x5bd1e995)),
		seen:           make(map[int32]uint32),
		dialing:        make(map[int]bool),
		cooldown:       make(map[int]int64),
		lookupNs:       reg.Histogram("discovery_lookup_ns"),
		queriesSent:    reg.Counter("discovery_queries_sent_total"),
		queriesServed:  reg.Counter("discovery_queries_served_total"),
		announcesSent:  reg.Counter("discovery_announces_sent_total"),
		announcesFwd:   reg.Counter("discovery_announces_forwarded_total"),
		announcesStale: reg.Counter("discovery_announces_stale_total"),
		redirects:      reg.Counter("discovery_redirects_total"),
		dialFailures:   reg.Counter("discovery_dial_failures_total"),
		pingsSent:      reg.Counter("discovery_pings_sent_total"),
		peersExpired:   reg.Counter("discovery_peers_expired_total"),
		rewires:        reg.Counter("discovery_rewires_total"),
	}
	reg.RegisterGaugeFunc("discovery_table_size", func() int64 {
		return int64(d.table.Size())
	})
	// Per-bucket occupancy: the routing table's health profile. Pull-style
	// gauges cost nothing between snapshots, so all 64 distance scales are
	// registered up front.
	for b := 0; b < 64; b++ {
		bucket := b
		reg.RegisterGaugeFunc(fmt.Sprintf(`discovery_bucket_occupancy{bucket="%d"}`, bucket), func() int64 {
			return int64(d.table.BucketLen(bucket))
		})
	}
	return d
}

// RoutingTable exposes the node's Kademlia routing table, nil when the node
// runs without discovery. Tests and operators read table size and contacts
// from it; mutating it directly is safe (the table locks itself) but
// normally the discovery loops own it.
func (n *Node) RoutingTable() *discovery.Table {
	if n.disc == nil {
		return nil
	}
	return n.disc.table
}

// roomForPeer reports whether another neighbor could be admitted: the
// degree is below MaxDegree, or an exhausted link (see evictableLocked)
// could be dropped to make room.
func (n *Node) roomForPeer() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.peers) < n.disc.cfg.MaxDegree || n.evictableLocked() != nil
}

// evictableLocked (n.mu held) returns a neighbor whose link carries no
// further value — both ends hold every piece, so neither side will ever
// send the other anything — or nil. Evicting such a link to admit a
// newcomer is what keeps a degree-saturated clique of finished nodes from
// locking the rest of the swarm out: without it, the seed's early
// neighbors complete, stay wired to each other forever, and a late joiner
// finds every node with content at MaxDegree.
func (n *Node) evictableLocked() *remote {
	if !n.myBits.Complete() {
		return nil
	}
	for _, r := range n.peers {
		// iNeed == 0 is implied by our completeness; theyNeed == 0 means
		// the peer holds every piece we do, i.e. it is complete too.
		if r.theyNeed == 0 && r.iNeed == 0 {
			return r
		}
	}
	return nil
}

// lingerRedirect holds a refused connection open until the redirected
// dialer hangs up, bounded by a watchdog. Transports that deliver
// asynchronously (injected latency) would otherwise destroy the redirect's
// Nodes frame in flight when the caller's deferred Close tears the
// connection down — leaving the refused dialer with no contacts to try,
// which at bootstrap time strands it permanently.
func (n *Node) lingerRedirect(conn transport.Conn) {
	done := make(chan struct{})
	defer close(done)
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		t := time.NewTimer(redirectLinger)
		defer t.Stop()
		select {
		case <-done:
		case <-t.C:
			conn.Close()
		case <-n.done:
			conn.Close()
		}
	}()
	for {
		if _, err := conn.Recv(); err != nil {
			return
		}
	}
}

// discoverLoop is the discovery heartbeat: degree and liveness maintenance
// every MaintainInterval, self-announce gossip every AnnounceInterval, and
// a bucket-refresh lookup every RefreshInterval. A self-lookup runs once as
// soon as the table has any contact — the standard Kademlia join, which
// populates the joiner's buckets and spreads its contact to the nodes
// nearest it.
func (n *Node) discoverLoop() {
	defer n.wg.Done()
	d := n.disc
	maintain := time.NewTicker(d.cfg.MaintainInterval)
	defer maintain.Stop()
	announce := time.NewTicker(d.cfg.AnnounceInterval)
	defer announce.Stop()
	refresh := time.NewTicker(d.cfg.RefreshInterval)
	defer refresh.Stop()
	joined := false
	for {
		select {
		case <-n.done:
			return
		case <-maintain.C:
			if !joined && d.table.Size() > 0 {
				joined = true
				n.spawnLookup(discovery.IDOf(n.cfg.ID))
			}
			n.maintainDegree()
			n.checkLiveness()
		case <-announce.C:
			n.sendAnnounce()
		case <-refresh.C:
			d.mu.Lock()
			target := d.table.RefreshTarget(d.rng)
			d.mu.Unlock()
			n.spawnLookup(target)
		}
	}
}

// spawnLookup runs one iterative lookup on its own wg-tracked goroutine,
// recording its latency. At most one spawned lookup runs at a time — a slow
// lookup (flaky transport, query timeouts) must not pile up behind the
// refresh ticker.
func (n *Node) spawnLookup(target discovery.ID) {
	d := n.disc
	d.mu.Lock()
	busy := d.lookupBusy
	if !busy {
		d.lookupBusy = true
	}
	d.mu.Unlock()
	if busy {
		return
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		defer func() {
			d.mu.Lock()
			d.lookupBusy = false
			d.mu.Unlock()
		}()
		start := time.Now()
		d.table.Lookup(target, d.cfg.K, d.cfg.Alpha, n.queryContact)
		d.lookupNs.Observe(time.Since(start).Nanoseconds())
	}()
}

// maintainDegree dials routing-table candidates until the connected degree
// reaches TargetDegree. Candidates span the table's buckets (one per
// distance scale — see discovery.NeighborCandidates), each dial is
// cooldown-spaced, and failures evict the contact. A node that knows
// nobody at all falls back to re-dialing its bootstrap set — the recovery
// path for a joiner whose initial handshakes were all refused or lost.
//
// A node can also starve with its degree target met. Starvation is
// detected by outcome, not topology: the node is incomplete and its piece
// count has not moved since the last tick. That covers both the
// content-less pocket (nobody nearby holds anything it needs) and the
// harder case where neighbors hold everything it needs but will never
// deliver — under T-Chain a late joiner surrounded by finished peers
// receives sealed pieces it cannot reciprocate for, so no key ever
// arrives. After starveTicksToWiden no-progress ticks the dial goal
// widens from TargetDegree to MaxDegree; after starveTicksToRotate the
// node starts dropping one random neighbor per rotation interval,
// churning its link set through the candidate table until something —
// typically a plaintext-serving seed — feeds it.
func (n *Node) maintainDegree() {
	d := n.disc
	n.mu.Lock()
	pieces := n.myBits.Count()
	starved := !n.myBits.Complete() && pieces == d.lastPieces
	d.lastPieces = pieces
	if starved {
		d.starveTicks++
	} else {
		d.starveTicks = 0
	}
	goal := d.cfg.TargetDegree
	if d.starveTicks >= starveTicksToWiden {
		goal = d.cfg.MaxDegree
	}
	var victim *remote
	if d.starveTicks >= starveTicksToRotate && len(n.peers) > 0 {
		seen := 0
		for _, r := range n.peers {
			seen++
			if n.rng.Intn(seen) == 0 {
				victim = r
			}
		}
	}
	need := goal - len(n.peers)
	var connected map[int]bool
	if need > 0 || victim != nil {
		connected = make(map[int]bool, len(n.peers))
		for id := range n.peers {
			connected[id] = true
		}
	}
	n.mu.Unlock()
	if victim != nil {
		// Only rotate when the table actually knows somebody new; dropping
		// our last links with nothing to replace them would deepen the hole.
		if n.hasUnconnectedCandidate(connected) {
			d.starveTicks = starveTicksToWiden // keep widened goal, pace rotations
			d.rewires.Inc()
			if n.tracer != nil {
				instant(n.tracer, tracing.SpanDiscoveryRewire, n.cfg.ID, victim.id, -1)
			}
			n.log.Info("starvation rewire: dropping neighbor", "peer", victim.id)
			victim.conn.Close()
			need++ // the freed slot is dialable this very tick
		}
	}
	if need <= 0 {
		return
	}
	if len(connected) == 0 && d.table.Size() == 0 {
		n.redialBootstrap()
		return
	}
	now := n.sinceStartNs()
	candidates := d.table.NeighborCandidates(2 * goal)
	// Dial in random order: the candidate list is bucket-ordered, and a
	// deterministic order would let the same early-bucket contacts soak up
	// every freed slot — starvation rewiring then churns forever without
	// ever trying the one contact that could feed us.
	d.mu.Lock()
	d.rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	d.mu.Unlock()
	for _, c := range candidates {
		if need <= 0 {
			return
		}
		if c.NodeID == n.cfg.ID || connected[c.NodeID] {
			continue
		}
		d.mu.Lock()
		skip := d.dialing[c.NodeID] || now < d.cooldown[c.NodeID]
		if !skip {
			d.dialing[c.NodeID] = true
			d.cooldown[c.NodeID] = now + redialCooldown.Nanoseconds()
		}
		d.mu.Unlock()
		if skip {
			continue
		}
		need--
		n.wg.Add(1)
		go n.dialContact(c)
	}
}

// hasUnconnectedCandidate reports whether the routing table knows a
// contact we are not already wired to — the precondition for starvation
// rewiring to be worth a dropped link.
func (n *Node) hasUnconnectedCandidate(connected map[int]bool) bool {
	for _, c := range n.disc.table.NeighborCandidates(2 * n.disc.cfg.MaxDegree) {
		if c.NodeID != n.cfg.ID && !connected[c.NodeID] {
			return true
		}
	}
	return false
}

// redialBootstrap re-dials the configured bootstrap addresses, spaced by
// the redial cooldown. Start does this once; a node still fully isolated
// afterwards (every handshake refused at capacity, or the redirect frames
// lost in flight) gets here from the maintain tick.
func (n *Node) redialBootstrap() {
	d := n.disc
	now := n.sinceStartNs()
	d.mu.Lock()
	tooSoon := now-d.lastRedialNs < redialCooldown.Nanoseconds()
	if !tooSoon {
		d.lastRedialNs = now
	}
	d.mu.Unlock()
	if tooSoon {
		return
	}
	for _, addr := range n.cfg.Bootstrap {
		conn, err := n.cfg.Transport.Dial(addr)
		if err != nil {
			d.dialFailures.Inc()
			continue
		}
		n.wg.Add(1)
		go n.handleConn(conn, true)
	}
}

// dialContact dials one routing-table candidate and hands the connection to
// the normal handshake path. A failed dial evicts the contact — the only
// eviction besides an expired link, so the table self-cleans under churn.
// The caller has already taken a wg slot; handleConn releases it.
func (n *Node) dialContact(c discovery.Contact) {
	conn, err := n.cfg.Transport.Dial(c.Addr)
	n.disc.mu.Lock()
	delete(n.disc.dialing, c.NodeID)
	n.disc.mu.Unlock()
	if err != nil {
		n.disc.dialFailures.Inc()
		n.disc.table.Remove(c)
		n.wg.Done()
		return
	}
	n.handleConn(conn, true)
}

// checkLiveness pings neighbors whose link has been silent past
// PingInterval and closes links silent past PingTimeout; the closed
// connection's read loop then runs the normal peer teardown.
func (n *Node) checkLiveness() {
	d := n.disc
	n.mu.Lock()
	peers := make([]*remote, 0, len(n.peers))
	for _, r := range n.peers {
		peers = append(peers, r)
	}
	n.mu.Unlock()
	now := n.sinceStartNs()
	for _, r := range peers {
		idle := now - r.lastRecv.Load()
		switch {
		case idle > d.cfg.PingTimeout.Nanoseconds():
			d.peersExpired.Inc()
			r.conn.Close()
		case idle > d.cfg.PingInterval.Nanoseconds() &&
			now-r.lastPing.Load() > d.cfg.PingInterval.Nanoseconds():
			r.lastPing.Store(now)
			d.mu.Lock()
			d.pingSeq++
			seq := d.pingSeq
			d.mu.Unlock()
			d.pingsSent.Inc()
			r.enqueue(protocol.Ping{Seq: seq})
		}
	}
}

// sendAnnounce gossips the node's own contact to every neighbor.
// Re-announcing every AnnounceInterval keeps the contact's seq moving, so
// peers can tell a fresh sighting from an echo of an old one.
func (n *Node) sendAnnounce() {
	d := n.disc
	d.mu.Lock()
	d.announceSeq++
	seq := d.announceSeq
	d.mu.Unlock()
	msg := protocol.Announce{ID: int32(n.cfg.ID), Addr: n.Addr(), Seq: seq, TTL: announceTTL}
	n.mu.Lock()
	sent := len(n.peers)
	for _, r := range n.peers {
		r.enqueue(msg)
	}
	n.mu.Unlock()
	d.announcesSent.Add(int64(sent))
}

// handleAnnounce processes one gossip frame: discard stale seqs per origin,
// learn the contact, and forward fresh announces (TTL permitting) to a few
// random neighbors excluding the origin and the sender.
func (n *Node) handleAnnounce(r *remote, m protocol.Announce) {
	d := n.disc
	if int(m.ID) == n.cfg.ID {
		return
	}
	d.mu.Lock()
	last, known := d.seen[m.ID]
	stale := known && m.Seq <= last
	if !stale {
		d.seen[m.ID] = m.Seq
	}
	d.mu.Unlock()
	if stale {
		d.announcesStale.Inc()
		return
	}
	d.table.Add(discovery.Contact{NodeID: int(m.ID), Addr: m.Addr})
	if m.TTL == 0 {
		return
	}
	m.TTL--
	n.mu.Lock()
	targets := make([]*remote, 0, announceFanout)
	seen := 0
	for _, p := range n.peers {
		if p.id == r.id || p.id == int(m.ID) {
			continue
		}
		seen++
		if len(targets) < announceFanout {
			targets = append(targets, p)
		} else if j := n.rng.Intn(seen); j < announceFanout {
			targets[j] = p
		}
	}
	n.mu.Unlock()
	for _, p := range targets {
		p.enqueue(m)
	}
	d.announcesFwd.Add(int64(len(targets)))
}

// addNodeInfos feeds wire contacts into the routing table (handshake peer
// exchange, capacity redirects, unsolicited Nodes gossip).
func (n *Node) addNodeInfos(infos []protocol.NodeInfo) {
	for _, ni := range infos {
		if int(ni.ID) == n.cfg.ID {
			continue
		}
		n.disc.table.Add(discovery.Contact{NodeID: int(ni.ID), Addr: ni.Addr})
	}
}

// closestInfos answers a FindNode: the K closest known contacts to target,
// plus our own contact so queriers always learn the node they asked.
func (n *Node) closestInfos(target discovery.ID) []protocol.NodeInfo {
	cs := n.disc.table.Closest(target, n.disc.cfg.K)
	out := make([]protocol.NodeInfo, 0, len(cs)+1)
	for _, c := range cs {
		out = append(out, protocol.NodeInfo{ID: int32(c.NodeID), Addr: c.Addr})
	}
	return append(out, protocol.NodeInfo{ID: int32(n.cfg.ID), Addr: n.Addr()})
}

// queryContact is the discovery.QueryFunc the lookups run on: a transient
// connection that speaks FindNode as its very first frame — no Hello, so
// the remote's accept path serves a discovery mini-session instead of a
// peer handshake — and waits for the matching Nodes reply. transport.Conn
// has no deadlines, so a watchdog goroutine bounds the RPC by closing the
// conn on QueryTimeout or node shutdown.
func (n *Node) queryContact(c discovery.Contact, target discovery.ID) ([]discovery.Contact, error) {
	d := n.disc
	if c.NodeID == n.cfg.ID {
		return nil, errSelfQuery
	}
	conn, err := n.cfg.Transport.Dial(c.Addr)
	if err != nil {
		d.dialFailures.Inc()
		d.table.Remove(c)
		return nil, err
	}
	defer conn.Close()
	done := make(chan struct{})
	defer close(done)
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		t := time.NewTimer(d.cfg.QueryTimeout)
		defer t.Stop()
		select {
		case <-done:
		case <-t.C:
			conn.Close()
		case <-n.done:
			conn.Close()
		}
	}()
	d.mu.Lock()
	d.querySeq++
	seq := d.querySeq
	d.mu.Unlock()
	d.queriesSent.Inc()
	if err := conn.Send(protocol.FindNode{Seq: seq, Target: uint64(target)}); err != nil {
		return nil, err
	}
	for {
		msg, err := conn.Recv()
		if err != nil {
			return nil, err
		}
		nodes, ok := msg.(protocol.Nodes)
		if !ok || nodes.Seq != seq {
			continue
		}
		out := make([]discovery.Contact, 0, len(nodes.Contacts))
		for _, ni := range nodes.Contacts {
			if int(ni.ID) == n.cfg.ID || ni.Addr == "" {
				continue
			}
			out = append(out, discovery.Contact{NodeID: int(ni.ID), Addr: ni.Addr})
		}
		return out, nil
	}
}

// sendTransientReceipt delivers a T-Chain receipt frame (Receipt, or
// AttestedReceipt on a signing node) to an origin the witness is not wired
// to: dial, send, and hold the connection open until the origin hangs up
// (an asynchronous transport would destroy the in-flight frame on an
// immediate close), bounded by the query-timeout watchdog. Fire-and-forget
// — a lost receipt costs one key release, which the origin's endgame grace
// covers for trusted receivers.
func (n *Node) sendTransientReceipt(addr string, receipt protocol.Message) {
	d := n.disc
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		conn, err := n.cfg.Transport.Dial(addr)
		if err != nil {
			d.dialFailures.Inc()
			return
		}
		defer conn.Close()
		done := make(chan struct{})
		defer close(done)
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			t := time.NewTimer(d.cfg.QueryTimeout)
			defer t.Stop()
			select {
			case <-done:
			case <-t.C:
				conn.Close()
			case <-n.done:
				conn.Close()
			}
		}()
		if conn.Send(receipt) != nil || conn.Send(protocol.Bye{}) != nil {
			return
		}
		for {
			if _, err := conn.Recv(); err != nil {
				return
			}
		}
	}()
}

// serveDiscovery answers a transient discovery session: the accept path
// lands here when a connection's first frame is not a Hello. It serves
// FindNode and Ping until the client hangs up, Bye arrives, or the session
// watchdog expires. The caller (handleConn) owns conn registration and
// close.
func (n *Node) serveDiscovery(conn transport.Conn, first protocol.Message) {
	done := make(chan struct{})
	defer close(done)
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		t := time.NewTimer(discoverySessionTimeout)
		defer t.Stop()
		select {
		case <-done:
		case <-t.C:
			conn.Close()
		case <-n.done:
			conn.Close()
		}
	}()
	msg := first
	for {
		switch m := msg.(type) {
		case protocol.FindNode:
			n.disc.queriesServed.Inc()
			if conn.Send(protocol.Nodes{Seq: m.Seq, Contacts: n.closestInfos(discovery.ID(m.Target))}) != nil {
				return
			}
		case protocol.Ping:
			if !m.Ack {
				if conn.Send(protocol.Ping{Seq: m.Seq, Ack: true}) != nil {
					return
				}
			}
		case protocol.Receipt:
			// A witness that does not neighbor us confirms a reciprocation
			// out of band (see sendTransientReceipt). Signing nodes refuse
			// the unsigned form, same as on established links.
			if n.identity != nil {
				n.metrics.attestReceiptsRejected.Inc()
				return
			}
			n.confirmReceipt(tchain.AnyPeer, m)
		case protocol.AttestedReceipt:
			n.handleAttestedReceipt(m)
		default:
			return // Bye, or a frame a discovery session has no business seeing
		}
		var err error
		if msg, err = conn.Recv(); err != nil {
			return
		}
	}
}
