package node

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/algo"
	"repro/internal/transport"
)

// TestWriterQueueDegradedNoLeak targets the per-peer writer goroutines:
// over a transport that drops 5% of data messages and delays every delivery
// by a random 1–4 ms, the bounded send queues and their writers must still
// drive the swarm to completion, and tearing the cluster down must reap
// every writer — no goroutine may survive Stop. Run under -race this also
// exercises the outbox's swap/recycle path for data races.
func TestWriterQueueDegradedNoLeak(t *testing.T) {
	manifest, content := clusterFixture(t)
	before := runtime.NumGoroutine()

	tr, err := transport.NewFlaky(transport.NewMem(),
		transport.WithDropProb(0.05),
		transport.WithLatency(time.Millisecond, 4*time.Millisecond),
		transport.WithDropSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	c, err := StartCluster(manifest, content,
		WithAlgorithm(algo.Altruism),
		WithTransport(tr),
		WithLeechers(4),
		WithDecisionInterval(2*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := c.WaitAllCompleteContext(ctx); err != nil {
		c.Stop()
		t.Fatalf("degraded cluster did not complete: %v", err)
	}
	for _, n := range c.Nodes {
		st := n.Stats()
		if !n.cfg.SeedMode && st.FramesReceived == 0 {
			t.Errorf("node %d dispatched no frames", st.ID)
		}
	}
	c.Stop()

	// Stop returns after every node's WaitGroup drains, but the flaky
	// transport's per-connection dispatchers exit asynchronously on close —
	// poll briefly before declaring a leak.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		now := runtime.NumGoroutine()
		if now <= before+2 { // small slack for runtime housekeeping
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines: %d before, %d after Stop; stacks:\n%s", before, now, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
