package node

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/algo"
	"repro/internal/attest"
	"repro/internal/discovery"
	"repro/internal/piece"
	"repro/internal/protocol"
	"repro/internal/reputation"
	"repro/internal/tracing"
	"repro/internal/transport"
)

// startChain builds a 3-node line topology over real TCP — seed 0 — 1 — 2,
// node 2 knowing only node 1 — with every push traced into one shared
// collector. A piece reaching node 2 must hop through node 1, so its trace
// must span all three nodes.
func startChain(t *testing.T) ([]*Node, *tracing.Collector) {
	t.Helper()
	manifest, content := clusterFixture(t)
	tr := tracing.NewCollector(tracing.Config{SampleEvery: 1, Capacity: 1 << 15})
	ledger := reputation.NewLedger(attest.AcceptAll{})
	var nodes []*Node
	for i := 0; i < 3; i++ {
		var store *piece.Store
		if i == 0 {
			seeded, err := piece.NewSeedStore(manifest, content)
			if err != nil {
				t.Fatal(err)
			}
			store = seeded
		} else {
			store = piece.NewStore(manifest)
		}
		var bootstrap []string
		if i > 0 {
			bootstrap = []string{nodes[i-1].Addr()} // chain: each node knows only its predecessor
		}
		n, err := New(Config{
			ID:               i,
			Algorithm:        algo.Altruism,
			Store:            store,
			Transport:        transport.NewTCP(),
			ListenAddr:       "127.0.0.1:0",
			Bootstrap:        bootstrap,
			DecisionInterval: 2 * time.Millisecond,
			Ledger:           ledger,
			Tracer:           tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
	})
	return nodes, tr
}

// TestTraceChainPropagation downloads through a 3-node TCP chain and checks
// that at least one trace tells the full multi-hop story: walking parent
// links from a store.verify on node 2 must pass through every expected span
// — request.queued → outbox.wait → wire.send → wire.recv → store.verify on
// each hop — visit all three nodes in causal order, and terminate at a root
// request.queued on the seed.
func TestTraceChainPropagation(t *testing.T) {
	nodes, tr := startChain(t)
	for i := 1; i < 3; i++ {
		if err := waitComplete(t, nodes[i], 30*time.Second); err != nil {
			t.Fatalf("node %d incomplete: %v (%+v)", i, err, nodes[i].Stats())
		}
	}
	spans, dropped := tr.Snapshot()
	if dropped != 0 {
		t.Fatalf("collector dropped %d spans; grow Capacity", dropped)
	}
	byID := make(map[uint64]tracing.Span, len(spans))
	for _, s := range spans {
		byID[s.SpanID] = s
	}

	// The receiver-side chain every hop appends, innermost first.
	hopNames := map[string]bool{
		tracing.SpanWireRecv: true, tracing.SpanStoreVerify: true,
		tracing.SpanRequestQueued: true, tracing.SpanOutboxWait: true,
		tracing.SpanWireSend: true, tracing.SpanAttestSign: true,
		tracing.SpanLedgerCredit: true,
	}
	verified := 0
	for _, s := range spans {
		// ledger.credit is the deepest receiver-side span — its ancestor
		// chain covers the whole hop (credit → sign → verify → recv) plus
		// everything upstream of the frame.
		if s.Name != tracing.SpanLedgerCredit || s.Node != 2 {
			continue
		}
		// Walk ancestors to the root, recording nodes and names touched and
		// checking causal clock order (parents start no later than children).
		nodesSeen := map[int]bool{}
		namesSeen := map[string]bool{}
		cur := s
		ok := true
		for depth := 0; ; depth++ {
			if depth > 64 {
				t.Fatalf("parent walk did not terminate from span %d", s.SpanID)
			}
			nodesSeen[cur.Node] = true
			namesSeen[cur.Name] = true
			if cur.ParentID == 0 {
				break
			}
			parent, found := byID[cur.ParentID]
			if !found {
				ok = false // ancestor overwritten or foreign; try another verify span
				break
			}
			if parent.Start > cur.Start {
				t.Errorf("span %s (start %d) precedes its parent %s (start %d)",
					cur.Name, cur.Start, parent.Name, parent.Start)
			}
			cur = parent
		}
		if !ok {
			continue
		}
		if cur.Name != tracing.SpanRequestQueued || cur.Node != 0 {
			t.Errorf("trace %d roots at %s on node %d, want request.queued on seed 0",
				s.TraceID, cur.Name, cur.Node)
			continue
		}
		for name := range hopNames {
			if !namesSeen[name] {
				t.Errorf("trace %d: span %s missing from the causal walk", s.TraceID, name)
			}
		}
		if !nodesSeen[0] || !nodesSeen[1] || !nodesSeen[2] {
			t.Errorf("trace %d touched nodes %v, want all of 0,1,2", s.TraceID, nodesSeen)
			continue
		}
		verified++
	}
	if verified == 0 {
		t.Fatalf("no complete 3-node causal chain among %d spans", len(spans))
	}

	// The grouped view must agree: at least one trace spans all three nodes.
	crossNode := 0
	for _, trace := range tracing.Traces(spans) {
		if len(trace.Nodes()) == 3 {
			crossNode++
		}
	}
	if crossNode == 0 {
		t.Fatal("tracing.Traces found no trace spanning all 3 nodes")
	}
}

// blockConn is a transport.Conn whose Send blocks until Close — a peer that
// stopped reading. It deliberately does not implement transport.BatchSender,
// so the writer drains it frame by frame.
type blockConn struct {
	unblock chan struct{}
	once    sync.Once
}

func newBlockConn() *blockConn { return &blockConn{unblock: make(chan struct{})} }

func (c *blockConn) Send(protocol.Message) error {
	<-c.unblock
	return transport.ErrClosed
}

func (c *blockConn) Recv() (protocol.Message, error) {
	<-c.unblock
	return nil, transport.ErrClosed
}

func (c *blockConn) Close() error {
	c.once.Do(func() { close(c.unblock) })
	return nil
}

func (c *blockConn) RemoteAddr() string { return "block://peer" }

// TestStopDrainAccounting wedges a peer connection and checks Stop's drain
// counters: the frame stuck mid-Send is neither drained nor dropped, while
// everything still queued behind it lands in node_stop_drain_dropped_total.
func TestStopDrainAccounting(t *testing.T) {
	manifest, _ := clusterFixture(t)
	n, err := New(Config{
		ID:        0,
		Algorithm: algo.Altruism,
		Store:     piece.NewStore(manifest),
		Transport: transport.NewMem(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Start(); err != nil {
		t.Fatal(err)
	}

	conn := newBlockConn()
	r := newRemote(1, conn, testPieces, "", n.metrics, nil, 0)
	n.mu.Lock()
	n.peers[1] = r
	n.conns[conn] = true
	n.mu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		r.writeLoop()
	}()

	// First frame: the writer picks it up and wedges inside Send.
	r.enqueue(protocol.Have{Index: 0})
	deadline := time.Now().Add(5 * time.Second)
	for {
		r.outMu.Lock()
		writing := r.writing
		r.outMu.Unlock()
		if writing {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("writer never picked up the first frame")
		}
		time.Sleep(time.Millisecond)
	}
	// Four more queue up behind the wedged drain.
	const stuck = 4
	for i := 1; i <= stuck; i++ {
		r.enqueue(protocol.Have{Index: int32(i)})
	}

	saved := stopFlushTimeout
	stopFlushTimeout = 50 * time.Millisecond
	defer func() { stopFlushTimeout = saved }()
	if err := n.Stop(); err != nil {
		t.Fatal(err)
	}

	if got := n.metrics.stopDrainDropped.Value(); got != stuck {
		t.Errorf("node_stop_drain_dropped_total = %d, want %d", got, stuck)
	}
	if got := n.metrics.stopDrainFrames.Value(); got != 0 {
		t.Errorf("node_stop_drain_frames_total = %d, want 0 (the drain window was wedged)", got)
	}
}

// TestDebugDHTAndBucketGauges checks the routing-table health surfaces: the
// /debug/dht payload and the discovery_bucket_occupancy gauges must both
// reflect contacts added to the table.
func TestDebugDHTAndBucketGauges(t *testing.T) {
	manifest, _ := clusterFixture(t)
	n, err := New(Config{
		ID:        0,
		Algorithm: algo.Altruism,
		Store:     piece.NewStore(manifest),
		Transport: transport.NewMem(),
		Discover:  &DiscoverConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	// No Start: the table and gauges work without the loops running.
	table := n.RoutingTable()
	contacts := []int{1, 2, 3, 9}
	for _, id := range contacts {
		if _, added := table.Add(discovery.Contact{NodeID: id, Addr: "mem://x"}); !added {
			t.Fatalf("contact %d not added", id)
		}
	}

	info := n.DebugDHTInfo()
	if info.Size != len(contacts) {
		t.Fatalf("DebugDHTInfo.Size = %d, want %d", info.Size, len(contacts))
	}
	seen := 0
	for _, b := range info.Buckets {
		if len(b.Contacts) == 0 {
			t.Errorf("bucket %d reported empty", b.Bucket)
		}
		for _, c := range b.Contacts {
			if c.LastSeenSec < 0 || c.LastSeenSec > 60 {
				t.Errorf("contact %d last seen %.1fs ago, want recent", c.ID, c.LastSeenSec)
			}
			if got := discovery.BucketOf(table.Self(), discovery.IDOf(c.ID)); got != b.Bucket {
				t.Errorf("contact %d filed under bucket %d, want %d", c.ID, b.Bucket, got)
			}
			seen++
		}
	}
	if seen != len(contacts) {
		t.Fatalf("buckets list %d contacts, want %d", seen, len(contacts))
	}

	snap := n.Metrics().Snapshot()
	total := int64(0)
	for _, b := range info.Buckets {
		name := `discovery_bucket_occupancy{bucket="` + itoa(b.Bucket) + `"}`
		if got := snap.Gauges[name]; got != int64(len(b.Contacts)) {
			t.Errorf("%s = %d, want %d", name, got, len(b.Contacts))
		}
		total += int64(len(b.Contacts))
	}
	if got := snap.Gauges["discovery_table_size"]; got != total {
		t.Errorf("discovery_table_size = %d, want %d", got, total)
	}

	// The HTTP surface serves the same view.
	mux := MetricsMux(n)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/dht", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/dht status %d", rec.Code)
	}
	var payload DebugDHT
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Size != len(contacts) {
		t.Errorf("/debug/dht size = %d, want %d", payload.Size, len(contacts))
	}
}

// itoa avoids importing strconv for two-digit bucket numbers in tests.
func itoa(v int) string {
	if v >= 10 {
		return string(rune('0'+v/10)) + string(rune('0'+v%10))
	}
	return string(rune('0' + v))
}

// TestDebugTraceEndpoint checks /debug/trace: 404 with tracing off, JSON
// spans and Chrome export with it on.
func TestDebugTraceEndpoint(t *testing.T) {
	manifest, _ := clusterFixture(t)
	plain, err := New(Config{Algorithm: algo.Altruism, Store: piece.NewStore(manifest), Transport: transport.NewMem()})
	if err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	MetricsMux(plain).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if rec.Code != 404 {
		t.Fatalf("untraced node /debug/trace status %d, want 404", rec.Code)
	}

	tr := tracing.NewCollector(tracing.Config{SampleEvery: 1})
	traced, err := New(Config{ID: 7, Algorithm: algo.Altruism, Store: piece.NewStore(manifest), Transport: transport.NewMem(), Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	tr.Record(tracing.Span{TraceID: 0xabc, SpanID: tr.NewID(), Name: tracing.SpanWireRecv, Node: 7, Start: 100, Dur: 50})
	mux := MetricsMux(traced)

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/trace status %d", rec.Code)
	}
	var payload struct {
		Dropped uint64         `json:"dropped"`
		Spans   []tracing.Span `json:"spans"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Spans) != 1 || payload.Spans[0].TraceID != 0xabc {
		t.Fatalf("unexpected spans payload: %+v", payload)
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?format=chrome", nil))
	if rec.Code != 200 {
		t.Fatalf("/debug/trace?format=chrome status %d", rec.Code)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &chrome); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("chrome export has no events")
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?trace=zz", nil))
	if rec.Code != 400 {
		t.Fatalf("bad trace filter status %d, want 400", rec.Code)
	}
}

// nopConn swallows frames; the cheapest possible wire for the outbox
// benchmark.
type nopConn struct{}

func (nopConn) Send(protocol.Message) error     { return nil }
func (nopConn) Recv() (protocol.Message, error) { return nil, transport.ErrClosed }
func (nopConn) Close() error                    { return nil }
func (nopConn) RemoteAddr() string              { return "nop://peer" }

// BenchmarkOutboxUntraced pins the untraced enqueue+drain path: one bulk
// frame through enqueueData and a writeLoop-shaped drain, tracing compiled
// in but off. scripts/check.sh gates this at zero allocations — the proof
// that adding the tracing hooks did not touch the hot path's allocation
// behaviour.
func BenchmarkOutboxUntraced(b *testing.B) {
	manifest, err := piece.SyntheticManifest(4, 64)
	if err != nil {
		b.Fatal(err)
	}
	n, err := New(Config{Algorithm: algo.Altruism, Store: piece.NewStore(manifest), Transport: transport.NewMem()})
	if err != nil {
		b.Fatal(err)
	}
	r := newRemote(1, nopConn{}, 4, "", n.metrics, nil, 0)
	var msg protocol.Message = protocol.Piece{Index: 1, RepaysKeyID: protocol.NoRepay, Data: make([]byte, 64)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !r.enqueueData(msg) {
			b.Fatal("enqueue refused")
		}
		// Inline drain mirroring writeLoop's swap/recycle, minus the
		// goroutine handoff so the measurement is deterministic.
		r.outMu.Lock()
		batch := r.outbox
		r.outbox = r.spare[:0]
		traced := r.traced
		r.traced = r.tracedSpare[:0]
		nData := r.outData
		r.outMu.Unlock()
		if len(traced) > 0 {
			b.Fatal("untraced run produced traced frames")
		}
		for _, m := range batch {
			if err := r.conn.Send(m); err != nil {
				b.Fatal(err)
			}
		}
		clear(batch)
		r.outMu.Lock()
		r.spare = batch[:0]
		r.tracedSpare = traced[:0]
		r.outData -= nData
		r.outMu.Unlock()
	}
}
