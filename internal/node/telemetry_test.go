package node

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/algo"
	"repro/internal/metrics"
	"repro/internal/piece"
	"repro/internal/transport"
)

// TestClusterMetricsHTTP runs a small swarm to completion and pins the
// acceptance contract: the getter's per-peer download counters, read over
// the /metrics HTTP surface in both formats, sum to exactly the content
// size, and /debug/swarm serves the peer table.
func TestClusterMetricsHTTP(t *testing.T) {
	c := newCluster(t, transport.NewMem(), memAddrs, algo.BitTorrent, 3, nil)
	for i, n := range c.nodes[1:] {
		if err := waitComplete(t, n, 20*time.Second); err != nil {
			t.Fatalf("leecher %d incomplete: %v", i+1, err)
		}
	}
	getter := c.nodes[1]
	srv := httptest.NewServer(MetricsMux(getter))
	defer srv.Close()

	// JSON snapshot: per-peer download bytes sum to the file size.
	res, err := srv.Client().Get(srv.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var snap metrics.Snapshot
	if err := json.NewDecoder(res.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	var perPeerSum int64
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "node_peer_download_bytes_total{") {
			perPeerSum += v
		}
	}
	if want := int64(len(c.content)); perPeerSum != want {
		t.Errorf("per-peer download sum = %d, want content size %d", perPeerSum, want)
	}
	if got := snap.Counters["node_credited_bytes_total"]; got != perPeerSum {
		t.Errorf("credited total %d != per-peer sum %d", got, perPeerSum)
	}
	if snap.Gauges["node_complete"] != 1 {
		t.Errorf("node_complete = %d, want 1", snap.Gauges["node_complete"])
	}
	if got := snap.Counters["node_pieces_verified_total"]; got != testPieces {
		t.Errorf("pieces verified = %d, want %d", got, testPieces)
	}
	// The span histograms closed once per verified piece.
	if h := snap.Histograms["node_span_first_byte_to_verified_ns"]; h.Count != testPieces {
		t.Errorf("first-byte->verified span count = %d, want %d", h.Count, testPieces)
	}

	// Prometheus text: same counters, text exposition.
	res, err = srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(text), "# TYPE node_peer_download_bytes_total counter") {
		t.Errorf("prometheus text missing per-peer family:\n%.500s", text)
	}

	// /debug/swarm: a complete node's table shows neighbors with nothing
	// left to exchange.
	res, err = srv.Client().Get(srv.URL + "/debug/swarm")
	if err != nil {
		t.Fatal(err)
	}
	var dbg DebugSwarm
	if err := json.NewDecoder(res.Body).Decode(&dbg); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if !dbg.Complete || dbg.Pieces != testPieces {
		t.Errorf("debug swarm = %+v, want complete with %d pieces", dbg, testPieces)
	}
	if len(dbg.Peers) == 0 {
		t.Error("debug swarm shows no peers on a running mesh")
	}
	for _, p := range dbg.Peers {
		if p.INeed != 0 {
			t.Errorf("complete node still needs %d pieces from peer %d", p.INeed, p.ID)
		}
	}

	// /debug/vars: the expvar surface carries the registry too.
	res, err = srv.Client().Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(res.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if _, ok := vars["node_1"]; !ok {
		t.Error("expvar missing node_1 registry")
	}
}

// TestStatsShim pins satellite 1: Stats() reads the same counters the
// registry exposes, so the two views can never drift.
func TestStatsShim(t *testing.T) {
	c := newCluster(t, transport.NewMem(), memAddrs, algo.Altruism, 2, nil)
	for i, n := range c.nodes[1:] {
		if err := waitComplete(t, n, 20*time.Second); err != nil {
			t.Fatalf("leecher %d incomplete: %v", i+1, err)
		}
	}
	for _, n := range c.nodes {
		st := n.Stats()
		snap := n.Metrics().Snapshot()
		if int64(st.CreditedBytes) != snap.Counters["node_credited_bytes_total"] {
			t.Errorf("node %d: Stats credited %v != counter %d",
				st.ID, st.CreditedBytes, snap.Counters["node_credited_bytes_total"])
		}
		if int64(st.UploadedBytes) != snap.Counters["node_uploaded_bytes_total"] {
			t.Errorf("node %d: Stats uploaded %v != counter %d",
				st.ID, st.UploadedBytes, snap.Counters["node_uploaded_bytes_total"])
		}
		wantSent := snap.Counters[`node_frames_sent_total{class="control"}`] +
			snap.Counters[`node_frames_sent_total{class="bulk"}`]
		if st.FramesSent != wantSent {
			t.Errorf("node %d: Stats frames sent %d != class sum %d", st.ID, st.FramesSent, wantSent)
		}
		if st.FramesReceived != snap.Counters["node_frames_received_total"] {
			t.Errorf("node %d: Stats frames received %d != counter %d",
				st.ID, st.FramesReceived, snap.Counters["node_frames_received_total"])
		}
	}
	// The seed uploaded at least one full copy; a leecher credited exactly
	// one.
	if got := c.nodes[0].Stats().UploadedBytes; got < float64(len(c.content)) {
		t.Errorf("seed uploaded %v bytes, want >= %d", got, len(c.content))
	}
}

// TestSharedRegistryAcrossNodes covers the documented aggregate mode: two
// nodes feeding one registry merge their counters.
func TestSharedRegistryAcrossNodes(t *testing.T) {
	reg := metrics.NewRegistry()
	tr := transport.NewMem()
	manifestCluster := newCluster(t, tr, memAddrs, algo.Altruism, 0, nil) // seed only
	seed := manifestCluster.nodes[0]

	leech, err := New(Config{
		ID:        1,
		Algorithm: algo.Altruism,
		Store:     piece.NewStore(manifestCluster.manifest),
		Transport: tr,
		Bootstrap: []string{seed.Addr()},
		Metrics:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := leech.Start(); err != nil {
		t.Fatal(err)
	}
	defer leech.Stop()
	if err := waitComplete(t, leech, 20*time.Second); err != nil {
		t.Fatal(err)
	}
	if leech.Metrics() != reg {
		t.Error("Metrics() did not return the supplied registry")
	}
	if got := reg.Snapshot().Counters["node_credited_bytes_total"]; got != int64(len(manifestCluster.content)) {
		t.Errorf("supplied registry credited %d, want %d", got, len(manifestCluster.content))
	}
}

// TestSampler covers the periodic reducer: rows accumulate, progress is
// monotonic, and the final row reflects completion.
func TestSampler(t *testing.T) {
	c := newCluster(t, transport.NewMem(), memAddrs, algo.BitTorrent, 2, nil)
	n := c.nodes[1]
	rowCh := make(chan SampleRow, 256)
	s := StartSampler(n, 5*time.Millisecond, func(r SampleRow) {
		select {
		case rowCh <- r:
		default:
		}
	})
	if err := waitComplete(t, n, 20*time.Second); err != nil {
		s.Stop()
		t.Fatal(err)
	}
	// Let at least one post-completion sample land.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case r := <-rowCh:
			if r.Complete {
				s.Stop()
				goto done
			}
		case <-deadline:
			s.Stop()
			t.Fatal("no complete sample observed")
		}
	}
done:
	rows := s.Rows()
	if len(rows) == 0 {
		t.Fatal("no rows collected")
	}
	last := rows[len(rows)-1]
	for i := 1; i < len(rows); i++ {
		if rows[i].TSec < rows[i-1].TSec || rows[i].CreditedBytes < rows[i-1].CreditedBytes {
			t.Fatalf("rows not monotonic at %d: %+v -> %+v", i, rows[i-1], rows[i])
		}
	}
	if !last.Complete || last.Pieces != testPieces {
		t.Errorf("final row %+v, want complete with %d pieces", last, testPieces)
	}
	if last.CreditedBytes != int64(len(c.content)) {
		t.Errorf("final credited %d, want %d", last.CreditedBytes, len(c.content))
	}
	if last.Jain <= 0 || last.Jain > 1 {
		t.Errorf("jain = %v, want (0, 1]", last.Jain)
	}
	// Rows must survive JSON encoding (no NaN leaks from the fairness
	// index).
	if _, err := json.Marshal(rows); err != nil {
		t.Errorf("rows not JSON-encodable: %v", err)
	}
	if line := DashboardLine(last, testPieces); !strings.Contains(line, "pieces=16/16") {
		t.Errorf("dashboard line %q missing progress", line)
	}
}
