package node

import (
	"fmt"
	"time"

	"repro/internal/tracing"
)

// Causal tracing glue for the live data path. The node traces nothing by
// default: Config.Tracer is nil, every hook below is skipped behind a nil
// check, and the hot paths (enqueueData, writeLoop, handlePiece) run the
// exact pre-tracing instruction stream — scripts/check.sh pins the
// untraced enqueue+drain path's allocation count.
//
// When a collector is attached, the sender mints a three-span chain per
// traced push — request.queued → outbox.wait → wire.send — and the frame
// carries {trace ID, wire.send span ID} across the wire (the protocol
// trace-context extension). The receiver chains wire.recv → store.verify
// → attest.sign → ledger.credit under the inbound context, stores a
// continuation context per piece so its own later uploads of that piece
// extend the same trace, and sends the receipt ack back carrying the
// credit span — whose arrival the original uploader records as
// attest.ack, closing the loop.

// uploadTrace is the sender-side state for one traced piece push, minted
// under n.mu by uploadTraceLocked (or continueUpload) and threaded through
// sendPiece/sendSealed as a nil-means-untraced pointer.
type uploadTrace struct {
	tc     tracing.Context // trace ID + the wire.send span carried on the frame
	queued uint64          // request.queued span ID
	wait   uint64          // outbox.wait span ID
	parent uint64          // parent of request.queued (continuation span, or 0 for a fresh trace)
	piece  int
	peer   int
	mintNs int64 // when the upload decision was made
}

// frame converts the upload trace into the writer-side bookkeeping record,
// stamped with the outbox-entry time.
func (ut *uploadTrace) frame(enqNs int64) tracedFrame {
	return tracedFrame{
		traceID: ut.tc.TraceID,
		queued:  ut.queued,
		wait:    ut.wait,
		send:    ut.tc.SpanID,
		piece:   ut.piece,
		peer:    ut.peer,
		enqNs:   enqNs,
	}
}

// queuedSpan is the request.queued span: decision made → frame accepted by
// the peer outbox.
func (ut *uploadTrace) queuedSpan(node int, enqNs int64) tracing.Span {
	return tracing.Span{
		TraceID: ut.tc.TraceID, SpanID: ut.queued, ParentID: ut.parent,
		Name: tracing.SpanRequestQueued, Node: node, Peer: ut.peer, Piece: ut.piece,
		Start: ut.mintNs, Dur: enqNs - ut.mintNs,
	}
}

// tracedFrame rides the per-peer outbox alongside its frame; writeLoop
// records the outbox.wait and wire.send spans once the drain that carried
// the frame reaches the wire.
type tracedFrame struct {
	traceID uint64
	queued  uint64 // parent of outbox.wait
	wait    uint64
	send    uint64
	piece   int
	peer    int
	enqNs   int64
}

// newUploadTrace mints the sender-side span chain. traceID is an existing
// trace for continuations (parent then links the upstream span) or a fresh
// ID for a sampled push.
func newUploadTrace(tr *tracing.Collector, traceID, parent uint64, piece, peer int) *uploadTrace {
	return &uploadTrace{
		tc:     tracing.Context{TraceID: traceID, SpanID: tr.NewID()},
		queued: tr.NewID(),
		wait:   tr.NewID(),
		parent: parent,
		piece:  piece,
		peer:   peer,
		mintNs: time.Now().UnixNano(),
	}
}

// uploadTraceLocked decides whether this push is traced (mu held): a piece
// that arrived traced continues its trace; otherwise the sampler decides
// whether to mint a fresh one. Returns nil for untraced pushes. Callers
// must have checked n.tracer != nil.
func (n *Node) uploadTraceLocked(idx, peerID int) *uploadTrace {
	tr := n.tracer
	var traceID, parent uint64
	if pt := n.pieceTrace[idx]; pt.Traced() {
		// One-shot: the continuation traces one onward forwarding chain,
		// not the full fan-out tree. Without this, every sampled root
		// transitively taints the whole distribution of its piece and the
		// traced fraction climbs toward 100% regardless of the sampling
		// rate — the cross-node story only needs one causal path.
		traceID, parent = pt.TraceID, pt.SpanID
		n.pieceTrace[idx] = tracing.Context{}
	} else if tr.Sample() {
		traceID = tr.NewID()
	} else {
		return nil
	}
	return newUploadTrace(tr, traceID, parent, idx, peerID)
}

// continueUpload extends an inbound trace context into an outbound push
// (the reciprocation path repaying a traced seal). Returns nil when
// untraced or tracing is off.
func (n *Node) continueUpload(tc tracing.Context, piece, peer int) *uploadTrace {
	if n.tracer == nil || !tc.Traced() {
		return nil
	}
	return newUploadTrace(n.tracer, tc.TraceID, tc.SpanID, piece, peer)
}

// hopTrace chains the receiver-side spans of one traced frame: each step
// closes a span covering the work since the previous step and parents the
// next one under it.
type hopTrace struct {
	tr      *tracing.Collector
	trace   uint64
	last    uint64 // most recent span ID — the next span's parent
	node    int
	peer    int
	piece   int
	startNs int64 // start of the span the next step will close
}

// hopStart begins receiver-side tracing for a traced inbound frame,
// recording the wire.recv instant. Returns nil for untraced frames or when
// tracing is off.
func (n *Node) hopStart(tc tracing.Context, peer, piece int) *hopTrace {
	tr := n.tracer
	if tr == nil || !tc.Traced() {
		return nil
	}
	now := time.Now().UnixNano()
	h := &hopTrace{tr: tr, trace: tc.TraceID, last: tr.NewID(),
		node: n.cfg.ID, peer: peer, piece: piece, startNs: now}
	tr.Record(tracing.Span{
		TraceID: h.trace, SpanID: h.last, ParentID: tc.SpanID,
		Name: tracing.SpanWireRecv, Node: h.node, Peer: peer, Piece: piece, Start: now,
	})
	return h
}

// hopResume continues a stored continuation context without a wire.recv
// instant — the Key-release path, where the traced frame was the seal and
// the key frame merely unlocks it.
func (n *Node) hopResume(tc tracing.Context, peer, piece int) *hopTrace {
	tr := n.tracer
	if tr == nil || !tc.Traced() {
		return nil
	}
	return &hopTrace{tr: tr, trace: tc.TraceID, last: tc.SpanID,
		node: n.cfg.ID, peer: peer, piece: piece, startNs: time.Now().UnixNano()}
}

// step closes a span named name covering the work since the previous step
// and chains under it. Nil-safe.
func (h *hopTrace) step(name string) {
	if h == nil {
		return
	}
	now := time.Now().UnixNano()
	id := h.tr.NewID()
	h.tr.Record(tracing.Span{
		TraceID: h.trace, SpanID: id, ParentID: h.last,
		Name: name, Node: h.node, Peer: h.peer, Piece: h.piece,
		Start: h.startNs, Dur: now - h.startNs,
	})
	h.last = id
	h.startNs = now
}

// context returns the continuation context anchored at the latest span.
// Nil-safe; a nil hop returns the untraced zero Context.
func (h *hopTrace) context() tracing.Context {
	if h == nil {
		return tracing.Context{}
	}
	return tracing.Context{TraceID: h.trace, SpanID: h.last}
}

// instant records a standalone instant span, used for swarm-wide events
// (choke/unchoke, discovery rewires) that belong to no single trace.
func instant(tr *tracing.Collector, name string, node, peer, piece int) {
	tr.Record(tracing.Span{
		SpanID: tr.NewID(), Name: name, Node: node, Peer: peer, Piece: piece,
		Start: time.Now().UnixNano(),
	})
}

// traceHex formats a trace ID for log correlation; grep for it across node
// logs to reconstruct a cross-node story.
func traceHex(id uint64) string { return fmt.Sprintf("%016x", id) }

// Tracer returns the node's trace collector, or nil when tracing is off.
func (n *Node) Tracer() *tracing.Collector { return n.tracer }
