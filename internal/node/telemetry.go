package node

import (
	"encoding/hex"
	"encoding/json"
	"expvar"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/attest"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/tracing"
)

// DebugPeer is one row of the /debug/swarm peer table.
type DebugPeer struct {
	// ID is the peer's swarm identity.
	ID int `json:"id"`
	// Addr is the peer's advertised listen address.
	Addr string `json:"addr"`
	// Have is how many pieces the peer is known to hold.
	Have int `json:"have"`
	// TheyNeed counts pieces we hold that the peer lacks.
	TheyNeed int `json:"they_need"`
	// INeed counts pieces the peer holds that we lack.
	INeed int `json:"i_need"`
	// Outbox is the peer's queued outbound frame count.
	Outbox int `json:"outbox"`
}

// DebugRarity summarizes piece availability across the known neighborhood
// (neighbors plus ourselves).
type DebugRarity struct {
	// MinHolders and MaxHolders bound the per-piece holder counts.
	MinHolders int `json:"min_holders"`
	MaxHolders int `json:"max_holders"`
	// MeanHolders is the average holder count per piece.
	MeanHolders float64 `json:"mean_holders"`
	// Rarest lists up to eight piece indices at MinHolders — the pieces a
	// rarest-first strategy would chase.
	Rarest []int `json:"rarest,omitempty"`
}

// DebugSwarm is the /debug/swarm payload: this node's view of the swarm at
// one instant. Like Stats, each field is consistent with itself; the
// snapshot as a whole is not a linearized cut of a running swarm.
type DebugSwarm struct {
	// ID is this node's identity; Pieces/Complete describe its store.
	ID       int  `json:"id"`
	Pieces   int  `json:"pieces"`
	Complete bool `json:"complete"`
	// Peers is the neighbor table, sorted by peer ID.
	Peers []DebugPeer `json:"peers"`
	// Rarity summarizes piece availability over the known neighborhood.
	Rarity DebugRarity `json:"rarity"`
}

// DebugSwarmInfo assembles the node's current swarm view.
func (n *Node) DebugSwarmInfo() DebugSwarm {
	numPieces := n.cfg.Store.Manifest().NumPieces()
	holders := make([]int, numPieces)

	n.mu.Lock()
	peers := make([]DebugPeer, 0, len(n.peers))
	remotes := make([]*remote, 0, len(n.peers))
	for _, r := range n.peers {
		peers = append(peers, DebugPeer{
			ID:       r.id,
			Addr:     r.addr,
			Have:     r.have.Count(),
			TheyNeed: r.theyNeed,
			INeed:    r.iNeed,
		})
		remotes = append(remotes, r)
		for _, idx := range r.have.Indices() {
			holders[idx]++
		}
	}
	for _, idx := range n.myBits.Indices() {
		holders[idx]++
	}
	n.mu.Unlock()

	// Outbox depths are read outside n.mu (each queue has its own lock).
	for i, r := range remotes {
		r.outMu.Lock()
		peers[i].Outbox = len(r.outbox)
		r.outMu.Unlock()
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].ID < peers[j].ID })

	var rarity DebugRarity
	if numPieces > 0 {
		rarity.MinHolders = holders[0]
		sum := 0
		for _, h := range holders {
			sum += h
			if h < rarity.MinHolders {
				rarity.MinHolders = h
			}
			if h > rarity.MaxHolders {
				rarity.MaxHolders = h
			}
		}
		rarity.MeanHolders = float64(sum) / float64(numPieces)
		for idx, h := range holders {
			if h == rarity.MinHolders {
				rarity.Rarest = append(rarity.Rarest, idx)
				if len(rarity.Rarest) == 8 {
					break
				}
			}
		}
	}

	return DebugSwarm{
		ID:       n.cfg.ID,
		Pieces:   n.cfg.Store.Count(),
		Complete: n.cfg.Store.Complete(),
		Peers:    peers,
		Rarity:   rarity,
	}
}

// VerifyStanding is one peer's row in the /verify standings: its credited
// score plus how many of its attestations the ledger accepted and refused.
type VerifyStanding struct {
	Peer    int     `json:"peer"`
	Score   float64 `json:"score"`
	Valid   uint64  `json:"valid"`
	Invalid uint64  `json:"invalid"`
}

// VerifyInfo is the GET /verify payload: the node's attestation posture and
// the proof-derived reputation standings it holds.
type VerifyInfo struct {
	// ID is this node's identity; Enabled whether it signs and verifies.
	ID      int  `json:"id"`
	Enabled bool `json:"enabled"`
	// Scheme is the per-piece receipt scheme ("ed25519" or "session").
	Scheme string `json:"scheme,omitempty"`
	// PubKey is the node's hex Ed25519 public key.
	PubKey string `json:"pub_key,omitempty"`
	// Admitted is the directory size (peers whose receipts verify).
	Admitted int `json:"admitted,omitempty"`
	// Standings lists per-peer proof standings, sorted by peer ID.
	Standings []VerifyStanding `json:"standings"`
}

// VerifyInfoSnapshot assembles the node's current /verify view.
func (n *Node) VerifyInfoSnapshot() VerifyInfo {
	info := VerifyInfo{ID: n.cfg.ID, Enabled: n.identity != nil}
	if n.identity != nil {
		info.Scheme = n.attScheme.String()
		info.PubKey = hex.EncodeToString(n.identity.Public())
		info.Admitted = n.directory.Len()
	}
	snap := n.ledger.Snapshot()
	info.Standings = make([]VerifyStanding, 0, len(snap))
	for peer, s := range snap {
		info.Standings = append(info.Standings, VerifyStanding{Peer: peer, Score: s.Score, Valid: s.Valid, Invalid: s.Invalid})
	}
	sort.Slice(info.Standings, func(i, j int) bool { return info.Standings[i].Peer < info.Standings[j].Peer })
	return info
}

// VerifyAttJSON is the wire form of one attestation in a POST /verify
// audit request; Hash and Sig are hex.
type VerifyAttJSON struct {
	Sender   int32  `json:"sender"`
	Receiver int32  `json:"receiver"`
	Index    int32  `json:"index"`
	Hash     string `json:"hash"`
	Bytes    int64  `json:"bytes"`
	Seq      uint64 `json:"seq"`
	Scheme   uint8  `json:"scheme"`
	Sig      string `json:"sig"`
}

// VerifyResult is one POST /verify verdict.
type VerifyResult struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
}

func (j VerifyAttJSON) attestation() (attest.Attestation, error) {
	att := attest.Attestation{
		Sender: j.Sender, Receiver: j.Receiver, Index: j.Index,
		Bytes: j.Bytes, Seq: j.Seq, Scheme: attest.Scheme(j.Scheme),
	}
	if j.Hash != "" {
		h, err := hex.DecodeString(j.Hash)
		if err != nil || len(h) != len(att.Hash) {
			return att, fmt.Errorf("bad hash %q", j.Hash)
		}
		copy(att.Hash[:], h)
	}
	if j.Sig != "" {
		s, err := hex.DecodeString(j.Sig)
		if err != nil || len(s) != len(att.Sig) {
			return att, fmt.Errorf("bad sig %q", j.Sig)
		}
		copy(att.Sig[:], s)
	}
	return att, nil
}

// handleVerify serves /verify: GET returns the proof-derived standings,
// POST audits a JSON array of attestations statelessly (replay windows are
// not spent, so auditing a receipt never invalidates it).
func (n *Node) handleVerify(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(n.VerifyInfoSnapshot())
	case http.MethodPost:
		if n.verifier == nil {
			http.Error(w, "attestation disabled on this node", http.StatusServiceUnavailable)
			return
		}
		var req []VerifyAttJSON
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		results := make([]VerifyResult, len(req))
		for i, entry := range req {
			att, err := entry.attestation()
			if err == nil {
				err = n.verifier.Check(att)
			}
			if err != nil {
				results[i] = VerifyResult{Error: err.Error()}
			} else {
				results[i] = VerifyResult{OK: true}
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(results)
	default:
		http.Error(w, "GET or POST", http.StatusMethodNotAllowed)
	}
}

// DebugDHTContact is one routed contact in the /debug/dht payload.
type DebugDHTContact struct {
	ID   int    `json:"id"`
	Addr string `json:"addr"`
	// LastSeenSec is how many seconds ago the contact was last seen alive.
	LastSeenSec float64 `json:"last_seen_sec"`
}

// DebugDHTBucket is one nonempty k-bucket: Bucket is the distance scale
// (highest set bit of the XOR distance to this node).
type DebugDHTBucket struct {
	Bucket   int               `json:"bucket"`
	Contacts []DebugDHTContact `json:"contacts"`
}

// DebugDHT is the /debug/dht payload: the routing table's health view —
// per-bucket occupancy and contact freshness.
type DebugDHT struct {
	ID      int              `json:"id"`
	K       int              `json:"k"`
	Size    int              `json:"size"`
	Buckets []DebugDHTBucket `json:"buckets"`
}

// DebugDHTInfo assembles the routing-table snapshot, or a zero-bucket view
// when the node runs without discovery.
func (n *Node) DebugDHTInfo() DebugDHT {
	info := DebugDHT{ID: n.cfg.ID}
	t := n.RoutingTable()
	if t == nil {
		return info
	}
	info.K = t.K()
	info.Size = t.Size()
	now := time.Now()
	for _, b := range t.Buckets() {
		db := DebugDHTBucket{Bucket: b.Index, Contacts: make([]DebugDHTContact, 0, len(b.Contacts))}
		for _, c := range b.Contacts {
			db.Contacts = append(db.Contacts, DebugDHTContact{
				ID:          c.Contact.NodeID,
				Addr:        c.Contact.Addr,
				LastSeenSec: now.Sub(c.LastSeen).Seconds(),
			})
		}
		info.Buckets = append(info.Buckets, db)
	}
	return info
}

// handleDebugTrace serves /debug/trace: the collector's current span ring as
// JSON ({"dropped": N, "spans": [...]}), or a Chrome trace-event file with
// ?format=chrome (load it in chrome://tracing or Perfetto). ?trace=<hex id>
// restricts the output to one trace.
func (n *Node) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	if n.tracer == nil {
		http.Error(w, "tracing disabled on this node", http.StatusNotFound)
		return
	}
	spans, dropped := n.tracer.Snapshot()
	if want := r.URL.Query().Get("trace"); want != "" {
		id, err := strconv.ParseUint(want, 16, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad trace id %q", want), http.StatusBadRequest)
			return
		}
		kept := spans[:0]
		for _, s := range spans {
			if s.TraceID == id {
				kept = append(kept, s)
			}
		}
		spans = kept
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
		_ = tracing.WriteChromeTrace(w, spans)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		Dropped uint64         `json:"dropped"`
		Spans   []tracing.Span `json:"spans"`
	}{Dropped: dropped, Spans: spans})
}

// MetricsMux serves the node's telemetry over HTTP:
//
//	/metrics      Prometheus text (JSON Snapshot with ?format=json)
//	/debug/swarm  the DebugSwarm peer table and rarity summary
//	/debug/dht    routing-table health: buckets, contacts, last-seen ages
//	/debug/trace  trace-collector spans (?format=chrome for chrome://tracing,
//	              ?trace=<hex> to filter one trace); 404 when tracing is off
//	/debug/vars   standard expvar, including this node's registry
//	/verify       GET: proof-derived reputation standings;
//	              POST: stateless audit of a JSON attestation batch
//
// The registry is also published as the expvar variable "node_<id>" (first
// publication per process wins; republishing is a no-op).
func MetricsMux(n *Node) *http.ServeMux {
	n.metrics.reg.PublishExpvar(fmt.Sprintf("node_%d", n.cfg.ID))
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler(n.metrics.reg))
	mux.HandleFunc("/debug/swarm", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(n.DebugSwarmInfo())
	})
	mux.HandleFunc("/debug/dht", func(w http.ResponseWriter, _ *http.Request) {
		if n.RoutingTable() == nil {
			http.Error(w, "discovery disabled on this node", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(n.DebugDHTInfo())
	})
	mux.HandleFunc("/debug/trace", n.handleDebugTrace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/verify", n.handleVerify)
	return mux
}

// SampleRow is one time-series point from the Sampler: the aggregate view
// the coopnode dashboard renders and -metrics-out dumps.
type SampleRow struct {
	// TSec is seconds since sampling started.
	TSec float64 `json:"t_sec"`
	// Pieces and Complete describe download progress.
	Pieces   int  `json:"pieces"`
	Complete bool `json:"complete"`
	// CreditedBytes is cumulative verified download volume; BytesPerSec is
	// its rate over the last sampling interval.
	CreditedBytes int64   `json:"credited_bytes"`
	BytesPerSec   float64 `json:"bytes_per_sec"`
	// ActivePeers is the connected neighbor count.
	ActivePeers int `json:"active_peers"`
	// Jain is the Jain fairness index over per-peer download volume (0
	// when fewer than one peer has delivered bytes).
	Jain float64 `json:"jain"`
	// OutboxDepth is the total queued outbound frames across peers.
	OutboxDepth int64 `json:"outbox_depth"`
}

// Sampler periodically reduces a node's metrics into SampleRow points.
// Stop it before stopping the node.
type Sampler struct {
	stop chan struct{}
	done chan struct{}
	once sync.Once

	mu   sync.Mutex
	rows []SampleRow
}

// StartSampler samples n every interval, appending each row to the
// sampler's series and passing it to onRow (nil for none; called from the
// sampler goroutine).
func StartSampler(n *Node, interval time.Duration, onRow func(SampleRow)) *Sampler {
	if interval <= 0 {
		interval = time.Second
	}
	s := &Sampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		start := time.Now()
		var lastBytes int64
		lastT := start
		for {
			select {
			case <-s.stop:
				return
			case now := <-ticker.C:
				row := sampleNode(n, now.Sub(start).Seconds())
				if dt := now.Sub(lastT).Seconds(); dt > 0 {
					row.BytesPerSec = float64(row.CreditedBytes-lastBytes) / dt
				}
				lastBytes, lastT = row.CreditedBytes, now
				s.mu.Lock()
				s.rows = append(s.rows, row)
				s.mu.Unlock()
				if onRow != nil {
					onRow(row)
				}
			}
		}
	}()
	return s
}

// sampleNode reduces the node's counters into one row at t seconds.
func sampleNode(n *Node, t float64) SampleRow {
	st := n.Stats()
	perPeer := n.metrics.peerDownloadBytes()
	xs := make([]float64, 0, len(perPeer))
	for _, b := range perPeer {
		if b > 0 {
			xs = append(xs, float64(b))
		}
	}
	jain := stats.JainIndex(xs)
	if math.IsNaN(jain) || math.IsInf(jain, 0) {
		jain = 0 // keep the row JSON-encodable
	}
	return SampleRow{
		TSec:          t,
		Pieces:        st.Pieces,
		Complete:      st.Complete,
		CreditedBytes: int64(st.CreditedBytes),
		ActivePeers:   st.Neighbors,
		Jain:          jain,
		OutboxDepth:   n.outboxDepth(),
	}
}

// Stop halts sampling and waits for the sampler goroutine.
func (s *Sampler) Stop() {
	s.once.Do(func() { close(s.stop) })
	<-s.done
}

// Rows returns the rows collected so far, oldest first.
func (s *Sampler) Rows() []SampleRow {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SampleRow(nil), s.rows...)
}

// DashboardLine renders one row as the coopnode -dashboard terminal line.
func DashboardLine(r SampleRow, totalPieces int) string {
	return fmt.Sprintf("t=%5.1fs pieces=%d/%d rate=%8.0f B/s peers=%d jain=%.3f outbox=%d",
		r.TSec, r.Pieces, totalPieces, r.BytesPerSec, r.ActivePeers, r.Jain, r.OutboxDepth)
}
