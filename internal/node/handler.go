package node

import (
	"time"

	"repro/internal/attest"
	"repro/internal/discovery"
	"repro/internal/incentive"
	"repro/internal/protocol"
	"repro/internal/tchain"
	"repro/internal/tracing"
	"repro/internal/transport"
)

// handleConn performs the handshake and then dispatches inbound messages
// until the connection dies. When dialer is true, this side speaks first.
func (n *Node) handleConn(conn transport.Conn, dialer bool) {
	defer n.wg.Done()
	n.mu.Lock()
	if n.stopping {
		// Stop already swept the conns map; registering now would leak a
		// connection nobody will ever close.
		n.mu.Unlock()
		conn.Close()
		return
	}
	n.conns[conn] = true
	n.mu.Unlock()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.conns, conn)
		n.mu.Unlock()
	}()

	hello := protocol.Hello{
		PeerID:    int32(n.cfg.ID),
		NumPieces: int32(n.cfg.Store.Manifest().NumPieces()),
		Addr:      n.Addr(),
	}
	if n.identity != nil {
		hello.PubKey = n.identity.Public()
	}
	if dialer {
		if conn.Send(hello) != nil || conn.Send(n.bitfieldMsg()) != nil {
			return
		}
	}
	first, err := conn.Recv()
	if err != nil {
		return
	}
	theirHello, ok := first.(protocol.Hello)
	if !ok {
		// Not a handshake. With discovery on, the accept side serves a
		// transient discovery session (a FindNode-first connection is how
		// lookups query us), and the dial side reads a capacity redirect —
		// the peer answered our Hello with contacts to try instead.
		if n.disc != nil {
			if !dialer {
				n.serveDiscovery(conn, first)
			} else if m, redirected := first.(protocol.Nodes); redirected {
				n.addNodeInfos(m.Contacts)
			}
		}
		return
	}
	if theirHello.NumPieces != hello.NumPieces {
		return // different swarm
	}
	peerID := int(theirHello.PeerID)
	if n.directory != nil && len(theirHello.PubKey) > 0 {
		// Pin the peer's key trust-on-first-use. A key that conflicts with
		// the pinned (or registered) one is an imposter — refuse the link; a
		// sealed directory likewise refuses identities it was not told about.
		if err := n.directory.Observe(theirHello.PeerID, theirHello.PubKey); err != nil {
			n.metrics.attestTOFURejected.Inc()
			n.log.Warn("handshake refused: identity conflicts with directory",
				"peer", peerID, "err", err)
			return
		}
	}
	if n.disc != nil {
		// Learn the contact whatever happens next; a redirected dialer is
		// still a real, routable node.
		n.disc.table.Add(discovery.Contact{NodeID: peerID, Addr: theirHello.Addr})
	}
	if !dialer {
		if n.disc != nil && !n.roomForPeer() {
			// At capacity: refuse the handshake but leave the dialer better
			// off — the closest contacts we know toward it, then Bye. Linger
			// until the dialer hangs up so an asynchronous transport actually
			// delivers the redirect before the deferred Close kills it.
			n.disc.redirects.Inc()
			if conn.Send(protocol.Nodes{Contacts: n.closestInfos(discovery.IDOf(peerID))}) == nil &&
				conn.Send(protocol.Bye{}) == nil {
				n.lingerRedirect(conn)
			}
			return
		}
		if conn.Send(hello) != nil || conn.Send(n.bitfieldMsg()) != nil {
			return
		}
	}

	r := newRemote(peerID, conn, n.cfg.Store.Manifest().NumPieces(), theirHello.Addr, n.metrics, n.tracer, n.cfg.ID)
	r.lastRecv.Store(n.sinceStartNs())
	n.mu.Lock()
	if _, dup := n.peers[peerID]; dup || peerID == n.cfg.ID {
		n.mu.Unlock()
		return // duplicate connection (simultaneous dial) or self-dial
	}
	var evicted *remote
	if n.disc != nil && len(n.peers) >= n.disc.cfg.MaxDegree {
		// Late capacity check under the lock, covering both sides: the
		// accept path's early redirect races concurrent handshakes (at
		// startup, a whole swarm dials the bootstrap nodes inside one
		// accept window), and our own in-flight dials could otherwise land
		// past the cap. An exhausted link (both ends complete) is evicted
		// to make room; otherwise MaxDegree is a hard bound, so refuse even
		// a link we dialed — but always redirect with contacts and linger
		// for the hangup: a refused dialer that learns nothing may have no
		// other way into the swarm.
		if evicted = n.evictableLocked(); evicted != nil {
			delete(n.peers, evicted.id)
			n.strategy.Forget(incentive.PeerID(evicted.id))
			delete(n.recentSends, evicted.id)
		} else {
			n.mu.Unlock()
			n.disc.redirects.Inc()
			if conn.Send(protocol.Nodes{Contacts: n.closestInfos(discovery.IDOf(peerID))}) == nil &&
				conn.Send(protocol.Bye{}) == nil {
				n.lingerRedirect(conn)
			}
			return
		}
	}
	// Seed the interest counters against an empty peer bitfield; the
	// peer's Bitfield message re-derives them the moment it lands.
	r.theyNeed, r.iNeed = n.myBits.DiffCounts(r.have)
	n.peers[peerID] = r
	n.mu.Unlock()
	if evicted != nil {
		// Closing the evicted link outside the lock lets its read loop run
		// the normal teardown; it only skips the peer-map cleanup done above.
		evicted.conn.Close()
	}
	n.log.Debug("peer connected", "peer", peerID, "dialer", dialer)
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		r.writeLoop()
	}()
	defer r.closeOutbox()
	if n.disc != nil {
		// Peer exchange: hand the new neighbor the closest contacts we know
		// toward it, piggybacked on the handshake. This is what lets a swarm
		// bootstrapped from two or three seeds fan out.
		r.enqueue(protocol.Nodes{Contacts: n.closestInfos(discovery.IDOf(peerID))})
	}

	defer func() {
		n.mu.Lock()
		if n.peers[peerID] == r {
			delete(n.peers, peerID)
			n.strategy.Forget(incentive.PeerID(peerID))
			delete(n.recentSends, peerID)
		}
		revoked := n.recip.Forget(peerID)
		n.mu.Unlock()
		for _, keyID := range revoked {
			n.escrow.Revoke(keyID)
		}
		n.log.Debug("peer disconnected", "peer", peerID)
	}()

	for {
		select {
		case <-n.done:
			return
		default:
		}
		msg, err := conn.Recv()
		if err != nil {
			return
		}
		n.metrics.framesIn.Inc()
		if n.disc != nil {
			r.lastRecv.Store(n.sinceStartNs())
		}
		if done := n.dispatch(r, msg); done {
			return
		}
	}
}

// dispatch handles one inbound message; it reports whether the connection
// should close. Messages arrive under the transport's zero-copy contract:
// bulk byte fields may alias connection-owned scratch that the next Recv
// reuses, so every handler either consumes them synchronously (Bitfield,
// Piece via Store.Put's verify-and-copy) or copies what it retains
// (SealedPiece ciphertext).
func (n *Node) dispatch(r *remote, msg protocol.Message) bool {
	switch m := msg.(type) {
	case protocol.Bitfield:
		n.mu.Lock()
		for i := int32(0); i < m.NumPieces; i++ {
			if int(i/8) < len(m.Bits) && m.Bits[i/8]&(1<<(uint(i)%8)) != 0 {
				r.have.Set(int(i))
				n.noteWantedLocked(int(i))
			}
		}
		// Re-derive both interest counters in one popcount pass.
		r.theyNeed, r.iNeed = n.myBits.DiffCounts(r.have)
		n.mu.Unlock()

	case protocol.Have:
		n.mu.Lock()
		if int(m.Index) < r.have.Size() && r.have.Set(int(m.Index)) {
			if n.myBits.Has(int(m.Index)) {
				r.theyNeed-- // they caught up on a piece we hold
			} else {
				r.iNeed++ // they now hold a piece we still need
				n.noteWantedLocked(int(m.Index))
			}
		}
		n.mu.Unlock()

	case protocol.Piece:
		n.handlePiece(r, m)

	case protocol.SealedPiece:
		n.handleSealed(r, m)

	case protocol.Key:
		n.handleKey(m)

	case protocol.Receipt:
		n.handleReceipt(r, m)

	case protocol.Attest:
		n.handleAttest(r, m)

	case protocol.AttestBatch:
		n.handleAttestBatch(m)

	case protocol.AttestedReceipt:
		n.handleAttestedReceipt(m)

	case protocol.Ping:
		if n.disc != nil && !m.Ack {
			r.enqueue(protocol.Ping{Seq: m.Seq, Ack: true})
		}

	case protocol.FindNode:
		// Lookups normally query over transient connections, but answering
		// on an established link too costs nothing and helps a peer that
		// already knows us.
		if n.disc != nil {
			n.disc.queriesServed.Inc()
			r.enqueue(protocol.Nodes{Seq: m.Seq, Contacts: n.closestInfos(discovery.ID(m.Target))})
		}

	case protocol.Nodes:
		if n.disc != nil {
			n.addNodeInfos(m.Contacts)
		}

	case protocol.Announce:
		if n.disc != nil {
			n.handleAnnounce(r, m)
		}

	case protocol.Bye:
		return true
	}
	return false
}

// handlePiece verifies and stores a plaintext piece, credits the sender,
// and — if the piece repays one of our seals — releases the key. m.Data may
// alias the connection's decode scratch; Store.Put is the zero-copy
// hand-off (verify, then copy into the store), after which the scratch is
// free to be reused by the next Recv.
func (n *Node) handlePiece(r *remote, m protocol.Piece) {
	h := n.hopStart(m.Trace, r.id, int(m.Index))
	if err := n.cfg.Store.Put(int(m.Index), m.Data); err != nil {
		return // forged or duplicate data; Put verified the hash
	}
	h.step(tracing.SpanStoreVerify)
	// Continuation anchored at the verify span: onward uploads of this piece
	// extend the same trace from here.
	cont := h.context()
	// Sign (or, unsigned, claim) the receipt outside n.mu — Ed25519 is two
	// orders of magnitude slower than anything else under that lock.
	att := n.signReceipt(int32(r.id), m.Index, len(m.Data))
	h.step(tracing.SpanAttestSign)
	n.creditAttestation(r, att, h)
	if h != nil && n.logDebug {
		n.log.Debug("piece verified", "piece", m.Index, "from", r.id,
			"trace", traceHex(m.Trace.TraceID))
	}
	n.mu.Lock()
	if n.pieceTrace != nil && cont.Traced() {
		n.pieceTrace[m.Index] = cont
	}
	n.noteFirstByteLocked(int(m.Index))
	// A racing duplicate (Put is idempotent) still credits the ledger as
	// before, but the byte counters only attribute first deliveries so
	// per-peer sums equal verified content bytes.
	if n.myBits.Has(int(m.Index)) {
		n.metrics.noteDuplicate(len(m.Data))
	} else {
		n.metrics.noteDownload(r.id, len(m.Data))
	}
	n.strategy.OnReceived(n.view(), incentive.PeerID(r.id), float64(len(m.Data)))
	// A pending seal for this index is now moot; drop the ciphertext.
	for keyID, pending := range n.pendingSeals {
		if pending.index == int(m.Index) {
			delete(n.pendingSeals, keyID)
		}
	}
	n.noteGainedLocked(int(m.Index))
	n.mu.Unlock()
	n.checkComplete()

	if m.RepaysKeyID != protocol.NoRepay {
		// Direct reciprocation for a seal we sent to r.
		released := n.recip.Confirm(n.cfg.ID, r.id)
		if len(released) > 0 {
			n.markTrusted(r.id)
		}
		n.releaseKeys(r, released)
	}
}

// handleSealed stores the ciphertext and reciprocates per T-Chain: repay
// the origin directly when possible, otherwise forward the seal to a third
// peer (who will send the origin a receipt). Free-riders renege.
func (n *Node) handleSealed(r *remote, m protocol.SealedPiece) {
	if m.Index < 0 || int(m.Index) >= n.cfg.Store.Manifest().NumPieces() {
		return // malformed index; nothing downstream would accept it
	}
	h := n.hopStart(m.Trace, r.id, int(m.Index))
	// The ciphertext outlives this dispatch (pending-seal escrow, possible
	// forward), while m.Ciphertext may alias the connection's decode
	// scratch — copy once here, then share the stable copy everywhere.
	ciphertext := append([]byte(nil), m.Ciphertext...)
	sealed := &tchain.Sealed{KeyID: m.KeyID, Nonce: m.Nonce, Ciphertext: ciphertext}
	originID := int(m.OriginID)

	if m.Forwarded {
		// We are the witness of someone else's reciprocation: confirm it to
		// the origin so the forwarder earns its key. We keep the ciphertext
		// too — if the origin later releases the key to us as well we can
		// use it, but we do not rely on that.
		n.mu.Lock()
		origin, connected := n.peers[originID]
		if !n.cfg.Store.Has(int(m.Index)) {
			n.pendingSeals[m.KeyID] = pendingSeal{sealed: sealed, index: int(m.Index), originID: originID, originAddr: m.OriginAddr, tc: h.context()}
			n.noteFirstByteLocked(int(m.Index))
		}
		n.mu.Unlock()
		var receipt protocol.Message = protocol.Receipt{KeyID: m.KeyID, From: m.ForwarderID}
		if n.identity != nil {
			// Sign the witness confirmation: the origin releases the key only
			// for a receipt minted by an admitted identity that names the
			// exact sealed piece. Always Ed25519 — witness receipts cross
			// trust domains (transient connections, possibly other processes).
			hash := [32]byte(n.cfg.Store.Manifest().Hashes[m.Index])
			wAtt := n.identity.Attest(attest.SchemeEd25519, m.ForwarderID, m.Index, hash, int64(len(ciphertext)))
			n.metrics.attestSigned.Inc()
			receipt = protocol.AttestedReceipt{KeyID: m.KeyID, Att: wAtt, Trace: h.context()}
		}
		if connected {
			origin.enqueue(receipt)
		} else if n.disc != nil && m.OriginAddr != "" {
			// On a degree-bounded mesh the witness may not neighbor the
			// origin; deliver the receipt over a transient connection so the
			// forwarder still earns its key.
			n.sendTransientReceipt(m.OriginAddr, receipt)
		}
		return
	}

	n.mu.Lock()
	if n.cfg.Store.Has(int(m.Index)) {
		n.mu.Unlock()
		return // nothing to gain; skip reciprocating for a duplicate
	}
	n.pendingSeals[m.KeyID] = pendingSeal{sealed: sealed, index: int(m.Index), originID: originID, originAddr: m.OriginAddr, tc: h.context()}
	n.noteFirstByteLocked(int(m.Index))
	n.mu.Unlock()

	if n.cfg.FreeRide {
		return // renege: keep unreadable ciphertext, upload nothing
	}
	n.reciprocate(r, m, ciphertext)
}

// reciprocate fulfils the obligation created by a sealed piece. ciphertext
// is the caller's stable copy of m.Ciphertext, safe to enqueue for an
// asynchronous writer.
func (n *Node) reciprocate(r *remote, m protocol.SealedPiece, ciphertext []byte) {
	n.mu.Lock()
	// Direct: send the origin a piece it needs.
	directIdx := n.pickRandomWantedLocked(r)
	n.mu.Unlock()

	if directIdx >= 0 {
		data, err := n.cfg.Store.GetRef(directIdx)
		if err == nil {
			// A traced seal's repayment extends the seal's trace, so the
			// reciprocation round-trip shows up in one causal story.
			n.sendPiece(r, directIdx, data, m.KeyID, n.continueUpload(m.Trace, directIdx, r.id))
			return
		}
	}

	// Indirect: forward the sealed piece to a neighbor that needs it; the
	// witness will send the origin a receipt. When every neighbor already
	// holds the piece — a drained swarm facing a newcomer — forward anyway:
	// reciprocation in T-Chain proves contribution (upload spent), not
	// utility, and the witness discards the duplicate ciphertext but still
	// receipts it. Without this fallback a node that joins after the swarm
	// finishes has no obligation it can ever fulfil, earns no trust, and
	// starves on undecryptable ciphertext forever.
	n.mu.Lock()
	var witness, fallback *remote
	needySeen, anySeen := 0, 0
	for _, p := range n.peers {
		if p.id == int(m.OriginID) {
			continue
		}
		anySeen++
		if n.rng.Intn(anySeen) == 0 { // reservoir pick, no candidate slice
			fallback = p
		}
		if !p.have.Has(int(m.Index)) {
			needySeen++
			if n.rng.Intn(needySeen) == 0 {
				witness = p
			}
		}
	}
	if witness == nil {
		witness = fallback
	}
	n.mu.Unlock()
	if witness == nil {
		return // no neighbor but the origin itself; the key may never arrive
	}
	forwarded := m
	forwarded.Ciphertext = ciphertext
	forwarded.Forwarded = true
	forwarded.ForwarderID = int32(n.cfg.ID)
	if !witness.enqueueData(forwarded) {
		return // witness saturated; same outcome as having no witness
	}
	n.metrics.noteUpload(witness.id, len(ciphertext))
}

// handleKey decrypts a pending seal, verifies, stores, and credits the
// origin.
func (n *Node) handleKey(m protocol.Key) {
	n.mu.Lock()
	pending, ok := n.pendingSeals[m.KeyID]
	if ok {
		delete(n.pendingSeals, m.KeyID)
	}
	n.mu.Unlock()
	if !ok {
		return
	}
	// Resume the trace the seal arrived under: the decrypt+verify and the
	// credit belong to the seal's causal story, not the key frame's.
	h := n.hopResume(pending.tc, pending.originID, pending.index)
	var key tchain.Key
	copy(key[:], m.Key[:])
	plaintext, err := tchain.Open(pending.sealed, key)
	if err != nil {
		return
	}
	if err := n.cfg.Store.Put(pending.index, plaintext); err != nil {
		return // wrong key or corrupt ciphertext: hash check failed
	}
	h.step(tracing.SpanStoreVerify)
	cont := h.context()
	att := n.signReceipt(int32(pending.originID), int32(pending.index), len(plaintext))
	h.step(tracing.SpanAttestSign)
	n.mu.Lock()
	origin := n.peers[pending.originID]
	n.mu.Unlock()
	n.creditAttestation(origin, att, h)
	n.mu.Lock()
	if n.pieceTrace != nil && cont.Traced() {
		n.pieceTrace[pending.index] = cont
	}
	if n.myBits.Has(pending.index) {
		n.metrics.noteDuplicate(len(plaintext))
	} else {
		n.metrics.noteDownload(pending.originID, len(plaintext))
	}
	n.strategy.OnReceived(n.view(), incentive.PeerID(pending.originID), float64(len(plaintext)))
	n.noteGainedLocked(pending.index)
	n.mu.Unlock()
	n.checkComplete()
}

// handleReceipt processes an unsigned witness confirmation: release the key
// to the receiver that reciprocated. Note the trust assumption — a forged
// receipt from a colluder extracts the key without real reciprocation,
// exactly the paper's T-Chain collusion attack. A signing node therefore
// refuses this frame outright and releases keys only for AttestedReceipt.
func (n *Node) handleReceipt(r *remote, m protocol.Receipt) {
	if n.identity != nil {
		n.metrics.attestReceiptsRejected.Inc()
		return
	}
	n.confirmReceipt(r.id, m)
}

// signReceipt builds the receiver-side attestation for one verified piece
// delivery: signed under the node's configured scheme when it has an
// identity, a bare unsigned claim otherwise (the paper's trust model).
func (n *Node) signReceipt(sender, index int32, size int) attest.Attestation {
	if n.identity == nil {
		return attest.Claim(sender, int32(n.cfg.ID), index, int64(size))
	}
	hash := [32]byte(n.cfg.Store.Manifest().Hashes[index])
	return n.identity.Attest(n.attScheme, sender, index, hash, int64(size))
}

// creditAttestation submits a receipt to the reputation ledger, counts the
// outcome, and — when the receipt is signed — enqueues the sender's copy on
// to: the proof it can present to anyone holding the directory. h, when
// non-nil, closes a ledger.credit span over the credit and rides the ack
// frame back to the uploader (who records its arrival as attest.ack).
func (n *Node) creditAttestation(to *remote, att attest.Attestation, h *hopTrace) {
	if err := n.ledger.Credit(att); err != nil {
		n.metrics.attestRejected(err).Inc()
		if n.logDebug {
			n.log.Debug("attestation rejected", "sender", att.Sender, "piece", att.Index, "err", err)
		}
	} else {
		n.metrics.attestCredited.Inc()
	}
	h.step(tracing.SpanLedgerCredit)
	if att.Scheme == attest.SchemeNone {
		return
	}
	n.metrics.attestSigned.Inc()
	if to != nil {
		to.enqueueAck(att, h.context())
	}
}

// handleAttest records the receipt copy a receiver sent back for one of our
// deliveries. The crediting (and its replay accounting) happened on the
// receiver's side; here the copy is checked statelessly and scored in
// metrics — a tampered or mis-addressed copy is counted and dropped, which
// is what the tampering-transport test observes.
func (n *Node) handleAttest(r *remote, m protocol.Attest) {
	if n.tracer != nil && m.Trace.Traced() {
		// The receipt copy for a traced delivery closes the loop: record its
		// arrival under the receiver's ledger.credit span.
		n.tracer.Record(tracing.Span{
			TraceID: m.Trace.TraceID, SpanID: n.tracer.NewID(), ParentID: m.Trace.SpanID,
			Name: tracing.SpanAttestAck, Node: n.cfg.ID, Peer: r.id, Piece: int(m.Att.Index),
			Start: time.Now().UnixNano(),
		})
	}
	n.checkAck(m.Att)
}

// handleAttestBatch checks each coalesced receipt individually; the batch
// frame is pure transport-level coalescing (see protocol.AttestBatch).
func (n *Node) handleAttestBatch(m protocol.AttestBatch) {
	for i := range m.Atts {
		n.checkAck(m.Atts[i])
	}
}

// checkAck audits one receipt another peer signed over our upload. The
// counters are the node's evidence feed: a bad ack means the counterparty
// is minting receipts we could never spend.
func (n *Node) checkAck(att attest.Attestation) {
	if n.verifier == nil {
		return // unsigned node: no key material to check against
	}
	if att.Sender != int32(n.cfg.ID) || n.verifier.Check(att) != nil {
		n.metrics.attestAcksBad.Inc()
		return
	}
	n.metrics.attestAcksOK.Inc()
}

// handleAttestedReceipt applies a witness-signed T-Chain receipt: the
// witness (Att.Receiver) attests that the forwarder (Att.Sender) relayed
// our sealed piece. This closes the collusion hole unsigned receipts leave
// open — the signature must verify under an admitted identity and the
// receipt must name the exact piece the escrow is holding the key for, so
// a receipt can be neither minted from thin air nor replayed after the
// key is released (releaseKeys deletes the seal's index entry).
func (n *Node) handleAttestedReceipt(m protocol.AttestedReceipt) {
	legacy := protocol.Receipt{KeyID: m.KeyID, From: m.Att.Sender}
	if n.verifier == nil {
		// Unsigned node: degrade to the legacy trust-the-witness path.
		n.confirmReceipt(int(m.Att.Receiver), legacy)
		return
	}
	if n.verifier.Check(m.Att) != nil {
		n.metrics.attestReceiptsRejected.Inc()
		return
	}
	n.mu.Lock()
	idx, held := n.sealIndex[m.KeyID]
	n.mu.Unlock()
	if !held || int32(idx) != m.Att.Index {
		n.metrics.attestReceiptsRejected.Inc()
		return
	}
	n.metrics.attestReceiptsVerified.Inc()
	n.confirmReceipt(int(m.Att.Receiver), legacy)
}

// confirmReceipt applies one receipt from the given witness. Receipts also
// arrive over transient connections (a witness that does not neighbor the
// origin), where the witness identity is unauthenticated anyway — the
// demands are AnyPeer, so the witness ID only matters for targeted
// obligations.
func (n *Node) confirmReceipt(witnessID int, m protocol.Receipt) {
	released := n.recip.Confirm(witnessID, int(m.From))
	n.mu.Lock()
	receiver := n.peers[int(m.From)]
	n.mu.Unlock()
	if len(released) > 0 {
		n.markTrusted(int(m.From))
	}
	if receiver != nil {
		n.releaseKeys(receiver, released)
	}
}

// markTrusted records that a peer completed a genuine reciprocation. A
// trusted peer later benefits from the endgame key-release fallback
// (reciprocationGrace): when the swarm is drained and nobody needs
// anything, the obligation is unfulfillable through no fault of the
// receiver. Free-riders never reciprocate, never earn trust, and never
// benefit from the fallback.
func (n *Node) markTrusted(peer int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.trusted[peer] = true
}

// releaseKeys sends escrowed keys to a receiver.
func (n *Node) releaseKeys(r *remote, keyIDs []uint64) {
	for _, keyID := range keyIDs {
		key, err := n.escrow.Release(keyID)
		if err != nil {
			continue
		}
		n.mu.Lock()
		idx := n.sealIndex[keyID]
		delete(n.sealIndex, keyID)
		n.mu.Unlock()
		msg := protocol.Key{KeyID: keyID, Index: int32(idx)}
		copy(msg.Key[:], key[:])
		r.enqueue(msg)
	}
}

// bitfieldMsg snapshots our holdings as a wire bitfield.
func (n *Node) bitfieldMsg() protocol.Bitfield {
	bits := n.cfg.Store.Bitfield()
	numPieces := bits.Size()
	packed := make([]byte, (numPieces+7)/8)
	for _, i := range bits.Indices() {
		packed[i/8] |= 1 << (uint(i) % 8)
	}
	return protocol.Bitfield{NumPieces: int32(numPieces), Bits: packed}
}

// noteGainedLocked records a newly verified piece (mu held): it mirrors
// the bit locally, adjusts every neighbor's interest counters, and
// enqueues the Have announcements — enqueue never blocks, so doing it
// under the lock trades the old per-piece target-snapshot allocation for a
// few queue appends. Duplicate gains (two peers racing the same piece
// through Store.Put) are detected by the bitfield and ignored.
func (n *Node) noteGainedLocked(index int) {
	if !n.myBits.Set(index) {
		return
	}
	n.noteVerifiedLocked(index)
	for _, r := range n.peers {
		if r.have.Has(index) {
			r.iNeed-- // no longer need it from them
		} else {
			r.theyNeed++ // they now lack a piece we hold
		}
		r.enqueue(protocol.Have{Index: int32(index)})
	}
}

// checkComplete closes the completion channel once the store fills up.
func (n *Node) checkComplete() {
	if n.cfg.Store.Complete() {
		n.completeOnce.Do(func() { close(n.completeCh) })
	}
}
