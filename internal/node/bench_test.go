package node

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/algo"
	"repro/internal/metrics"
	"repro/internal/piece"
	"repro/internal/tracing"
	"repro/internal/transport"
)

const (
	benchPieces    = 48
	benchPieceSize = 8 << 10
)

// benchCluster runs one full swarm download — a seed plus leechers-1 empty
// nodes on tr, full-mesh bootstrapped — and returns the wall-clock time and
// the total number of piece deliveries.
func benchCluster(b *testing.B, tr transport.Transport, listenAddr func(int) string, nodes int, extra ...ClusterOption) (time.Duration, int) {
	b.Helper()
	manifest, err := piece.SyntheticManifest(benchPieces, benchPieceSize)
	if err != nil {
		b.Fatal(err)
	}
	content := make([]byte, 0, manifest.FileSize)
	for i := 0; i < benchPieces; i++ {
		content = append(content, piece.SyntheticPiece(i, benchPieceSize)...)
	}
	opts := append([]ClusterOption{
		WithAlgorithm(algo.Altruism),
		WithTransport(tr),
		WithListenAddr(listenAddr),
		WithLeechers(nodes - 1),
		WithDecisionInterval(time.Millisecond),
	}, extra...)
	start := time.Now()
	c, err := StartCluster(manifest, content, opts...)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := c.WaitAllCompleteContext(ctx); err != nil {
		b.Fatal(err)
	}
	return time.Since(start), (nodes - 1) * benchPieces
}

// BenchmarkClusterThroughput measures the live data path end to end: a full
// swarm download over the in-memory transport (the protocol/node hot path
// without kernel sockets) and over real TCP loopback. pieces/sec counts
// completed piece deliveries across all leechers; allocs/op is the headline
// the frame pooling and writer batching attack.
//
// Both variants run fully instrumented — per-node metrics plus a shared
// transport.Metrics bundle — so the number this benchmark reports is the
// telemetry-on cost, which scripts/bench.sh compares against the
// pre-instrumentation BENCH_node.json baseline.
func BenchmarkClusterThroughput(b *testing.B) {
	b.Run("mem-32", func(b *testing.B) {
		var elapsed time.Duration
		var pieces int
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tm := transport.NewMetrics(metrics.NewRegistry())
			d, p := benchCluster(b, transport.NewMemInstrumented(tm), func(int) string { return "" }, 32)
			elapsed += d
			pieces += p
		}
		b.ReportMetric(float64(pieces)/elapsed.Seconds(), "pieces/sec")
	})
	b.Run(fmt.Sprintf("tcp-%d", 16), func(b *testing.B) {
		var elapsed time.Duration
		var pieces int
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tm := transport.NewMetrics(metrics.NewRegistry())
			d, p := benchCluster(b, transport.NewTCPInstrumented(tm), func(int) string { return "127.0.0.1:0" }, 16)
			elapsed += d
			pieces += p
		}
		b.ReportMetric(float64(pieces)/elapsed.Seconds(), "pieces/sec")
	})
}

// BenchmarkClusterThroughputUnsigned is the same mem-32 swarm with
// attestation disabled: the trust-the-report configuration the signed
// default is compared against. scripts/bench.sh attest runs both and
// reports the signing overhead as a same-machine delta, immune to baseline
// drift between benchmark-recording sessions.
func BenchmarkClusterThroughputUnsigned(b *testing.B) {
	var elapsed time.Duration
	var pieces int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm := transport.NewMetrics(metrics.NewRegistry())
		d, p := benchCluster(b, transport.NewMemInstrumented(tm), func(int) string { return "" }, 32,
			WithoutAttestation())
		elapsed += d
		pieces += p
	}
	b.ReportMetric(float64(pieces)/elapsed.Seconds(), "pieces/sec")
}

// BenchmarkClusterThroughputTraced is the mem-32 swarm with causal tracing
// sampling one push in 32 — a realistic always-on production rate, and the
// instrumented configuration scripts/bench.sh trace compares against the
// untraced run on the same machine. The delta is the whole observed cost of
// tracing: span minting, clock reads in the write loop, wire trace-context
// extensions, continuation chains, and collector inserts.
func BenchmarkClusterThroughputTraced(b *testing.B) {
	var elapsed time.Duration
	var pieces int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tm := transport.NewMetrics(metrics.NewRegistry())
		d, p := benchCluster(b, transport.NewMemInstrumented(tm), func(int) string { return "" }, 32,
			WithTracing(tracing.Config{SampleEvery: 32, Capacity: 1 << 13}))
		elapsed += d
		pieces += p
	}
	b.ReportMetric(float64(pieces)/elapsed.Seconds(), "pieces/sec")
}
