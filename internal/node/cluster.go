package node

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"repro/internal/algo"
	"repro/internal/attest"
	"repro/internal/piece"
	"repro/internal/reputation"
	"repro/internal/tracing"
	"repro/internal/transport"
)

// Topology selects how a cluster wires its nodes together. The zero value
// is the full mesh; Discovery and DiscoveryWith build DHT-wired topologies.
type Topology struct {
	discover *DiscoverConfig // nil = full mesh
}

// FullMesh bootstraps every node with the addresses of all earlier nodes,
// so the swarm is a complete graph — the classic wiring, where every node's
// degree is N-1.
var FullMesh = Topology{}

// Discovery wires the swarm through the Kademlia discovery layer: every
// node bootstraps off at most three seeds and finds the rest of the swarm
// via lookups and gossip, keeping its neighbor set near degree (hard cap
// 2*degree). k is the routing bucket capacity and lookup width, alpha the
// lookup parallelism; zero values take the DiscoverConfig defaults. The
// maintenance intervals are tightened for in-process swarms (50ms degree
// ticks, sub-second gossip) so clusters converge in test-scale time; use
// DiscoveryWith for deployment-scale tuning.
func Discovery(k, alpha, degree int) Topology {
	return DiscoveryWith(DiscoverConfig{
		K:                k,
		Alpha:            alpha,
		TargetDegree:     degree,
		MaintainInterval: 50 * time.Millisecond,
		AnnounceInterval: 500 * time.Millisecond,
		RefreshInterval:  time.Second,
		PingInterval:     2 * time.Second,
		QueryTimeout:     500 * time.Millisecond,
	})
}

// DiscoveryWith wires the swarm through the discovery layer with full
// control over the DiscoverConfig.
func DiscoveryWith(cfg DiscoverConfig) Topology {
	c := cfg.withDefaults()
	return Topology{discover: &c}
}

// clusterKeySeed derives the default deterministic node keypairs; any
// fixed value works, it only needs to be stable across runs so cluster
// tests and benchmarks are reproducible.
const clusterKeySeed int64 = 0x1CDC5

// clusterOptions is the resolved cluster configuration.
type clusterOptions struct {
	algorithm        algo.Algorithm
	transport        transport.Transport
	listenAddr       func(i int) string
	leechers         int
	freeRiders       map[int]bool
	uploadRate       float64
	decisionInterval time.Duration
	topology         Topology
	identity         func(id int) *attest.Key
	attScheme        attest.Scheme
	unsigned         bool
	tracing          *tracing.Config
	logger           *slog.Logger
}

// ClusterOption customizes StartCluster; options that reject their argument
// surface the error through StartCluster.
type ClusterOption func(*clusterOptions) error

// WithAlgorithm selects the incentive mechanism every compliant node runs
// (default algo.Altruism).
func WithAlgorithm(a algo.Algorithm) ClusterOption {
	return func(o *clusterOptions) error {
		o.algorithm = a
		return nil
	}
}

// WithTransport selects the transport carrying the swarm (default
// transport.NewMem()).
func WithTransport(tr transport.Transport) ClusterOption {
	return func(o *clusterOptions) error {
		if tr == nil {
			return fmt.Errorf("node: WithTransport(nil)")
		}
		o.transport = tr
		return nil
	}
}

// WithListenAddr sets the listen address for node i ("" suits the memory
// transport, "127.0.0.1:0" TCP).
func WithListenAddr(f func(i int) string) ClusterOption {
	return func(o *clusterOptions) error {
		if f == nil {
			return fmt.Errorf("node: WithListenAddr(nil)")
		}
		o.listenAddr = f
		return nil
	}
}

// WithLeechers sets the number of downloading peers, node IDs 1..n
// (default 0: just the seed).
func WithLeechers(n int) ClusterOption {
	return func(o *clusterOptions) error {
		if n < 0 {
			return fmt.Errorf("node: negative leecher count %d", n)
		}
		o.leechers = n
		return nil
	}
}

// WithFreeRiders marks node IDs that free-ride (receive without ever
// uploading or reciprocating).
func WithFreeRiders(ids map[int]bool) ClusterOption {
	return func(o *clusterOptions) error {
		o.freeRiders = ids
		return nil
	}
}

// WithUploadRate throttles every node to rate bytes/second (0 =
// unthrottled).
func WithUploadRate(rate float64) ClusterOption {
	return func(o *clusterOptions) error {
		if rate < 0 {
			return fmt.Errorf("node: UploadRate %g negative", rate)
		}
		o.uploadRate = rate
		return nil
	}
}

// WithDecisionInterval overrides every node's upload-scheduler tick.
func WithDecisionInterval(d time.Duration) ClusterOption {
	return func(o *clusterOptions) error {
		o.decisionInterval = d
		return nil
	}
}

// WithTopology selects the swarm wiring: FullMesh (the default) or
// Discovery/DiscoveryWith.
func WithTopology(t Topology) ClusterOption {
	return func(o *clusterOptions) error {
		o.topology = t
		return nil
	}
}

// WithIdentity supplies the signing keypair for each node ID, overriding
// the default deterministic derivation (attest.NewKeyFromSeed off a fixed
// cluster seed). Returning nil for an ID leaves that node unsigned — the
// hook a Sybil or legacy peer experiment uses.
func WithIdentity(keyFor func(id int) *attest.Key) ClusterOption {
	return func(o *clusterOptions) error {
		if keyFor == nil {
			return fmt.Errorf("node: WithIdentity(nil)")
		}
		o.identity = keyFor
		return nil
	}
}

// WithAttestScheme selects the per-piece receipt scheme (default
// attest.SchemeSession, the pairwise-MAC fast path suited to in-process
// swarms; pass attest.SchemeEd25519 to exercise full signatures).
func WithAttestScheme(s attest.Scheme) ClusterOption {
	return func(o *clusterOptions) error {
		if s != attest.SchemeSession && s != attest.SchemeEd25519 {
			return fmt.Errorf("node: WithAttestScheme(%v)", s)
		}
		o.attScheme = s
		return nil
	}
}

// WithTracing enables causal tracing across the whole swarm: every node
// shares one collector (exposed as Cluster.Tracer), so a traced piece's
// spans land in a single ring no matter which nodes touch it and
// tracing.Traces can reassemble cross-node stories without merging.
func WithTracing(cfg tracing.Config) ClusterOption {
	return func(o *clusterOptions) error {
		o.tracing = &cfg
		return nil
	}
}

// WithLogger gives every node a structured logger (default: discard). The
// logger is passed raw; each node derives its own child with a "node"
// attribute, so one handler serializes the whole swarm's events.
func WithLogger(l *slog.Logger) ClusterOption {
	return func(o *clusterOptions) error {
		if l == nil {
			return fmt.Errorf("node: WithLogger(nil)")
		}
		o.logger = l
		return nil
	}
}

// WithoutAttestation runs the cluster on the legacy unsigned protocol:
// no keys, no directory, a ledger that accepts bare claims — the paper's
// trust-the-report world, kept available as the experimental baseline.
func WithoutAttestation() ClusterOption {
	return func(o *clusterOptions) error {
		o.unsigned = true
		return nil
	}
}

// maxBootstrapSeeds is how many existing nodes a discovery-wired joiner is
// pointed at; everything beyond these few contacts is learned through the
// DHT and gossip.
const maxBootstrapSeeds = 3

// Cluster is a running in-process swarm. Stop it when done; Join attaches
// additional leechers while it runs.
type Cluster struct {
	// Nodes holds the seed at index 0 followed by the leechers, including
	// any attached by Join. Join appends to it, so do not range over Nodes
	// concurrently with Join calls.
	Nodes []*Node
	// Ledger is the shared reputation service. Unless WithoutAttestation
	// was given it verifies every credit against Directory, so scores are
	// sums of proven transfers.
	Ledger *reputation.Ledger
	// Directory is the shared admitted-identity set (nil for an unsigned
	// cluster). It is sealed once the initial nodes are registered; Join
	// admits later nodes through the authorized Register path.
	Directory *attest.Directory
	// Tracer is the swarm-wide trace collector (nil unless WithTracing was
	// given). Snapshot it after the run — or serve it live via MetricsMux —
	// to reassemble cross-node piece stories with tracing.Traces.
	Tracer *tracing.Collector

	opts     clusterOptions
	manifest *piece.Manifest
	content  []byte

	mu       sync.Mutex
	keys     map[int]*attest.Key
	nextID   int
	stopped  bool
	stopOnce sync.Once
	stopErr  error
}

// StartCluster builds and starts an in-process swarm: one seed holding all
// of content plus WithLeechers downloading peers, sharing one reputation
// ledger, wired per WithTopology. By default every node gets a
// deterministic Ed25519 identity registered in a shared directory (sealed
// after startup — closed membership), receipts travel signed, and the
// shared ledger credits only verified proofs; WithoutAttestation restores
// the unsigned baseline. On error, any nodes already started are stopped
// before returning.
func StartCluster(manifest *piece.Manifest, content []byte, opts ...ClusterOption) (*Cluster, error) {
	if manifest == nil || len(content) == 0 {
		return nil, fmt.Errorf("node: cluster needs a manifest and content")
	}
	o := clusterOptions{
		algorithm:  algo.Altruism,
		listenAddr: func(int) string { return "" },
		identity:   func(id int) *attest.Key { return attest.NewKeyFromSeed(int32(id), clusterKeySeed) },
		attScheme:  attest.SchemeSession,
	}
	for _, opt := range opts {
		if err := opt(&o); err != nil {
			return nil, err
		}
	}
	if o.transport == nil {
		o.transport = transport.NewMem()
	}

	c := &Cluster{
		opts:     o,
		manifest: manifest,
		content:  content,
		keys:     make(map[int]*attest.Key),
	}
	if o.tracing != nil {
		c.Tracer = tracing.NewCollector(*o.tracing)
	}
	if o.unsigned {
		c.Ledger = reputation.NewLedger(attest.AcceptAll{})
	} else {
		c.Directory = attest.NewDirectory()
		c.Ledger = reputation.NewLedger(attest.NewVerifier(c.Directory))
	}
	for i := 0; i <= o.leechers; i++ {
		if _, err := c.startNode(i); err != nil {
			c.Stop()
			return nil, err
		}
	}
	if c.Directory != nil {
		// Close membership: from here on only the authorized Register path
		// (Join) admits identities; trust-on-first-use is refused.
		c.Directory.Seal()
	}
	c.nextID = o.leechers + 1
	return c, nil
}

// Key returns the signing keypair startNode assigned to node id (nil for
// an unsigned cluster or an unknown id) — test hooks use it to mint or
// tamper with attestations.
func (c *Cluster) Key(id int) *attest.Key {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.keys[id]
}

// startNode builds, starts, and registers node id (0 = the seed).
func (c *Cluster) startNode(id int) (*Node, error) {
	var store *piece.Store
	if id == 0 {
		seeded, err := piece.NewSeedStore(c.manifest, c.content)
		if err != nil {
			return nil, fmt.Errorf("node: seeding: %w", err)
		}
		store = seeded
	} else {
		store = piece.NewStore(c.manifest)
	}
	bootstrap := make([]string, 0, len(c.Nodes))
	for _, prev := range c.Nodes {
		if c.opts.topology.discover != nil && len(bootstrap) >= maxBootstrapSeeds {
			break
		}
		bootstrap = append(bootstrap, prev.Addr())
	}
	var disc *DiscoverConfig
	if c.opts.topology.discover != nil {
		cp := *c.opts.topology.discover
		disc = &cp
	}
	var key *attest.Key
	if c.Directory != nil {
		if key = c.opts.identity(id); key != nil {
			// Authorized admission: works before and after Seal, so Join
			// keeps attaching signed nodes to a closed directory.
			c.Directory.Register(int32(id), key.Identity())
			c.mu.Lock()
			c.keys[id] = key
			c.mu.Unlock()
		}
	}
	n, err := New(Config{
		ID:               id,
		Algorithm:        c.opts.algorithm,
		Store:            store,
		Transport:        c.opts.transport,
		ListenAddr:       c.opts.listenAddr(id),
		Bootstrap:        bootstrap,
		UploadRate:       c.opts.uploadRate,
		DecisionInterval: c.opts.decisionInterval,
		FreeRide:         c.opts.freeRiders[id],
		Identity:         key,
		Directory:        c.Directory,
		AttestScheme:     c.opts.attScheme,
		Ledger:           c.Ledger,
		Discover:         disc,
		Tracer:           c.Tracer,
		Log:              c.opts.logger,
	})
	if err != nil {
		return nil, err
	}
	if err := n.Start(); err != nil {
		return nil, err
	}
	c.Nodes = append(c.Nodes, n)
	return n, nil
}

// Join attaches one more leecher to the running swarm, bootstrapped the
// same way StartCluster wires nodes (under a Discovery topology: off the
// cluster's first few nodes, finding everyone else through the DHT). The
// node is appended to Nodes and returned; stopping it individually models a
// peer leaving. Join is not safe to call concurrently with itself or with
// reads of Nodes.
func (c *Cluster) Join() (*Node, error) {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return nil, fmt.Errorf("node: cluster stopped")
	}
	id := c.nextID
	c.nextID++
	c.mu.Unlock()
	return c.startNode(id)
}

// Seed returns the seeding node.
func (c *Cluster) Seed() *Node { return c.Nodes[0] }

// Leechers returns the non-seed nodes (including any free-riders).
func (c *Cluster) Leechers() []*Node { return c.Nodes[1:] }

// WaitAllCompleteContext blocks until every *compliant* leecher holds the
// full file or the context is done. Free-riders are excluded: under T-Chain
// they never finish, by design. It returns nil on success; otherwise an
// error wrapping ctx.Err() that names the first node still incomplete.
func (c *Cluster) WaitAllCompleteContext(ctx context.Context) error {
	for i, n := range c.Nodes {
		if i == 0 || n.cfg.FreeRide {
			continue
		}
		if err := n.WaitCompleteContext(ctx); err != nil {
			return fmt.Errorf("node: waiting for node %d: %w", n.cfg.ID, err)
		}
	}
	return nil
}

// Stop tears every node down. It is idempotent — every call (including
// concurrent ones) waits for the full teardown — and returns the first
// per-node teardown error; repeat calls return that same error. Nodes
// already stopped individually are fine: Node.Stop is idempotent too.
func (c *Cluster) Stop() error {
	c.mu.Lock()
	c.stopped = true
	c.mu.Unlock()
	c.stopOnce.Do(func() {
		var first error
		for _, n := range c.Nodes {
			if err := n.Stop(); err != nil && first == nil {
				first = err
			}
		}
		c.stopErr = first
	})
	return c.stopErr
}
