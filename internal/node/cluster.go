package node

import (
	"context"
	"fmt"
	"time"

	"repro/internal/algo"
	"repro/internal/piece"
	"repro/internal/reputation"
	"repro/internal/transport"
)

// ClusterConfig describes an in-process swarm of live nodes: one seed
// holding the full content plus a set of leechers, full-mesh bootstrapped,
// sharing one reputation ledger.
type ClusterConfig struct {
	// Algorithm is the mechanism every compliant node runs.
	Algorithm algo.Algorithm
	// Transport carries the swarm (transport.NewMem() or transport.NewTCP()).
	Transport transport.Transport
	// ListenAddr returns the listen address for node i ("" for the memory
	// transport, "127.0.0.1:0" for TCP). Nil defaults to "".
	ListenAddr func(i int) string
	// Manifest and Content define the file; the seed holds all of Content.
	Manifest *piece.Manifest
	Content  []byte
	// Leechers is the number of downloading peers (node IDs 1..Leechers).
	Leechers int
	// FreeRiders marks node IDs that free-ride.
	FreeRiders map[int]bool
	// UploadRate throttles every node (bytes/second, 0 = unthrottled).
	UploadRate float64
	// DecisionInterval overrides the upload-scheduler tick.
	DecisionInterval time.Duration
}

// Cluster is a running in-process swarm. Stop it when done.
type Cluster struct {
	// Nodes holds the seed at index 0 followed by the leechers.
	Nodes []*Node
	// Ledger is the shared reputation service.
	Ledger *reputation.Ledger
}

// StartCluster builds and starts the whole swarm. On error, any nodes
// already started are stopped before returning.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Manifest == nil || len(cfg.Content) == 0 {
		return nil, fmt.Errorf("node: cluster needs a manifest and content")
	}
	if cfg.Transport == nil {
		return nil, fmt.Errorf("node: cluster needs a transport")
	}
	if cfg.Leechers < 0 {
		return nil, fmt.Errorf("node: negative leecher count %d", cfg.Leechers)
	}
	listenAddr := cfg.ListenAddr
	if listenAddr == nil {
		listenAddr = func(int) string { return "" }
	}

	c := &Cluster{Ledger: reputation.NewLedger()}
	var addrs []string
	total := cfg.Leechers + 1
	for i := 0; i < total; i++ {
		var store *piece.Store
		if i == 0 {
			seeded, err := piece.NewSeedStore(cfg.Manifest, cfg.Content)
			if err != nil {
				c.Stop()
				return nil, fmt.Errorf("node: seeding: %w", err)
			}
			store = seeded
		} else {
			store = piece.NewStore(cfg.Manifest)
		}
		n, err := New(Config{
			ID:               i,
			Algorithm:        cfg.Algorithm,
			Store:            store,
			Transport:        cfg.Transport,
			ListenAddr:       listenAddr(i),
			Bootstrap:        append([]string(nil), addrs...),
			UploadRate:       cfg.UploadRate,
			DecisionInterval: cfg.DecisionInterval,
			FreeRide:         cfg.FreeRiders[i],
			Ledger:           c.Ledger,
		})
		if err != nil {
			c.Stop()
			return nil, err
		}
		if err := n.Start(); err != nil {
			c.Stop()
			return nil, err
		}
		c.Nodes = append(c.Nodes, n)
		addrs = append(addrs, n.Addr())
	}
	return c, nil
}

// Seed returns the seeding node.
func (c *Cluster) Seed() *Node { return c.Nodes[0] }

// Leechers returns the non-seed nodes (including any free-riders).
func (c *Cluster) Leechers() []*Node { return c.Nodes[1:] }

// WaitAllCompleteContext blocks until every *compliant* leecher holds the
// full file or the context is done. Free-riders are excluded: under T-Chain
// they never finish, by design. It returns nil on success; otherwise an
// error wrapping ctx.Err() that names the first node still incomplete.
func (c *Cluster) WaitAllCompleteContext(ctx context.Context) error {
	for i, n := range c.Nodes {
		if i == 0 || n.cfg.FreeRide {
			continue
		}
		if err := n.WaitCompleteContext(ctx); err != nil {
			return fmt.Errorf("node: waiting for node %d: %w", n.cfg.ID, err)
		}
	}
	return nil
}

// WaitAllComplete blocks until every *compliant* leecher holds the full
// file or the timeout elapses, reporting success.
//
// Deprecated: use WaitAllCompleteContext, which reports which node timed out
// and composes with caller contexts.
func (c *Cluster) WaitAllComplete(timeout time.Duration) bool {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return c.WaitAllCompleteContext(ctx) == nil
}

// Stop tears every node down.
func (c *Cluster) Stop() {
	for _, n := range c.Nodes {
		n.Stop()
	}
}
