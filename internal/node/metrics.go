package node

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/attest"
	"repro/internal/metrics"
	"repro/internal/tracing"
)

// nodeMetrics bundles the node's instrumentation: typed handles into one
// metrics.Registry, resolved once at construction so the hot paths never
// touch the registry's name map. Every node has one — when Config.Metrics
// is nil a private registry backs it — which lets Stats() be a pure
// snapshot shim over the counters instead of a second bookkeeping system.
//
// Series (node_ namespace):
//
//	node_uploaded_bytes_total / node_credited_bytes_total
//	node_frames_sent_total{class="control"|"bulk"} / node_frames_received_total
//	node_backpressure_refusals_total    bulk frames refused by a full peer queue
//	node_pieces_verified_total
//	node_duplicate_piece_bytes_total    verified deliveries of pieces already held
//	node_peer_upload_bytes_total{peer="N"} / node_peer_download_bytes_total{peer="N"}
//	node_upload_piece_bytes / node_download_piece_bytes     histograms
//	node_span_want_to_first_byte_ns     first neighbor sighting -> first data
//	node_span_first_byte_to_verified_ns first data -> hash-verified store
//	node_span_want_to_verified_ns       the full piece-acquisition span
//	node_pieces_held / node_neighbors / node_sealed_pending /
//	node_complete / node_outbox_depth   pull-style gauges
//	node_stop_drain_frames_total        frames flushed during Stop's drain window
//	node_stop_drain_dropped_total       frames still queued when Stop closed the connections
//
// Attestation series (present on every node; they only move when signing
// or verification actually happens):
//
//	node_attest_signed_total            receipts this node signed
//	node_attest_credited_total          attestations the ledger accepted
//	node_attest_rejected_total{reason=} attestations the ledger refused
//	node_attest_acks_total{result=}     sender-side receipt copies checked
//	node_attest_receipts_total{result=} witness-signed T-Chain receipts
//	node_attest_tofu_rejected_total     handshakes refused by the directory
type nodeMetrics struct {
	reg *metrics.Registry

	uploadedBytes  *metrics.Counter
	creditedBytes  *metrics.Counter
	framesControl  *metrics.Counter
	framesBulk     *metrics.Counter
	framesIn       *metrics.Counter
	backpressure   *metrics.Counter
	piecesVerified *metrics.Counter
	duplicateBytes *metrics.Counter

	stopDrainFrames  *metrics.Counter
	stopDrainDropped *metrics.Counter

	attestSigned           *metrics.Counter
	attestCredited         *metrics.Counter
	attestAcksOK           *metrics.Counter
	attestAcksBad          *metrics.Counter
	attestReceiptsVerified *metrics.Counter
	attestReceiptsRejected *metrics.Counter
	attestTOFURejected     *metrics.Counter

	// Ledger rejections, pre-resolved per reason so the error path never
	// touches the registry's name map.
	rejBadSig   *metrics.Counter
	rejReplayed *metrics.Counter
	rejStale    *metrics.Counter
	rejUnknown  *metrics.Counter
	rejSelf     *metrics.Counter
	rejUnsigned *metrics.Counter
	rejOther    *metrics.Counter

	uploadPieceBytes   *metrics.Histogram
	downloadPieceBytes *metrics.Histogram

	spanWantFirstByte     *metrics.Histogram
	spanFirstByteVerified *metrics.Histogram
	spanWantVerified      *metrics.Histogram

	peerMu   sync.Mutex
	peerUp   map[int]*metrics.Counter
	peerDown map[int]*metrics.Counter
}

// newNodeMetrics resolves the node's series in reg and registers the
// pull-style gauges, which read n under its own locks at snapshot time
// (never call Registry.Snapshot with n.mu held).
func newNodeMetrics(reg *metrics.Registry, n *Node) *nodeMetrics {
	m := &nodeMetrics{
		reg:                   reg,
		uploadedBytes:         reg.Counter("node_uploaded_bytes_total"),
		creditedBytes:         reg.Counter("node_credited_bytes_total"),
		framesControl:         reg.Counter(`node_frames_sent_total{class="control"}`),
		framesBulk:            reg.Counter(`node_frames_sent_total{class="bulk"}`),
		framesIn:              reg.Counter("node_frames_received_total"),
		backpressure:          reg.Counter("node_backpressure_refusals_total"),
		piecesVerified:        reg.Counter("node_pieces_verified_total"),
		duplicateBytes:        reg.Counter("node_duplicate_piece_bytes_total"),
		stopDrainFrames:       reg.Counter("node_stop_drain_frames_total"),
		stopDrainDropped:      reg.Counter("node_stop_drain_dropped_total"),
		uploadPieceBytes:      reg.Histogram("node_upload_piece_bytes"),
		downloadPieceBytes:    reg.Histogram("node_download_piece_bytes"),
		spanWantFirstByte:     reg.Histogram("node_span_want_to_first_byte_ns"),
		spanFirstByteVerified: reg.Histogram("node_span_first_byte_to_verified_ns"),
		spanWantVerified:      reg.Histogram("node_span_want_to_verified_ns"),
		peerUp:                make(map[int]*metrics.Counter),
		peerDown:              make(map[int]*metrics.Counter),

		attestSigned:           reg.Counter("node_attest_signed_total"),
		attestCredited:         reg.Counter("node_attest_credited_total"),
		attestAcksOK:           reg.Counter(`node_attest_acks_total{result="ok"}`),
		attestAcksBad:          reg.Counter(`node_attest_acks_total{result="bad"}`),
		attestReceiptsVerified: reg.Counter(`node_attest_receipts_total{result="ok"}`),
		attestReceiptsRejected: reg.Counter(`node_attest_receipts_total{result="rejected"}`),
		attestTOFURejected:     reg.Counter("node_attest_tofu_rejected_total"),
		rejBadSig:              reg.Counter(`node_attest_rejected_total{reason="bad-signature"}`),
		rejReplayed:            reg.Counter(`node_attest_rejected_total{reason="replayed"}`),
		rejStale:               reg.Counter(`node_attest_rejected_total{reason="stale"}`),
		rejUnknown:             reg.Counter(`node_attest_rejected_total{reason="unknown-signer"}`),
		rejSelf:                reg.Counter(`node_attest_rejected_total{reason="self"}`),
		rejUnsigned:            reg.Counter(`node_attest_rejected_total{reason="unsigned"}`),
		rejOther:               reg.Counter(`node_attest_rejected_total{reason="other"}`),
	}
	reg.RegisterGaugeFunc("node_pieces_held", func() int64 {
		return int64(n.cfg.Store.Count())
	})
	reg.RegisterGaugeFunc("node_complete", func() int64 {
		if n.cfg.Store.Complete() {
			return 1
		}
		return 0
	})
	reg.RegisterGaugeFunc("node_neighbors", func() int64 {
		n.mu.Lock()
		defer n.mu.Unlock()
		return int64(len(n.peers))
	})
	reg.RegisterGaugeFunc("node_sealed_pending", func() int64 {
		n.mu.Lock()
		defer n.mu.Unlock()
		return int64(len(n.pendingSeals))
	})
	reg.RegisterGaugeFunc("node_outbox_depth", func() int64 {
		return n.outboxDepth()
	})
	return m
}

// peerUpload returns the get-or-create per-peer upload byte counter.
func (m *nodeMetrics) peerUpload(peer int) *metrics.Counter {
	m.peerMu.Lock()
	defer m.peerMu.Unlock()
	c, ok := m.peerUp[peer]
	if !ok {
		c = m.reg.Counter(fmt.Sprintf(`node_peer_upload_bytes_total{peer="%d"}`, peer))
		m.peerUp[peer] = c
	}
	return c
}

// peerDownload returns the get-or-create per-peer download byte counter.
func (m *nodeMetrics) peerDownload(peer int) *metrics.Counter {
	m.peerMu.Lock()
	defer m.peerMu.Unlock()
	c, ok := m.peerDown[peer]
	if !ok {
		c = m.reg.Counter(fmt.Sprintf(`node_peer_download_bytes_total{peer="%d"}`, peer))
		m.peerDown[peer] = c
	}
	return c
}

// noteUpload records one outbound piece payload toward peer.
func (m *nodeMetrics) noteUpload(peer, bytes int) {
	m.uploadedBytes.Add(int64(bytes))
	m.uploadPieceBytes.Observe(int64(bytes))
	m.peerUpload(peer).Add(int64(bytes))
}

// noteDownload records one verified (credited) inbound piece payload from
// peer.
func (m *nodeMetrics) noteDownload(peer, bytes int) {
	m.creditedBytes.Add(int64(bytes))
	m.downloadPieceBytes.Observe(int64(bytes))
	m.peerDownload(peer).Add(int64(bytes))
}

// attestRejected maps a ledger rejection to its reason-labelled counter.
func (m *nodeMetrics) attestRejected(err error) *metrics.Counter {
	switch {
	case errors.Is(err, attest.ErrBadSignature):
		return m.rejBadSig
	case errors.Is(err, attest.ErrReplayed):
		return m.rejReplayed
	case errors.Is(err, attest.ErrStale):
		return m.rejStale
	case errors.Is(err, attest.ErrUnknownSigner), errors.Is(err, attest.ErrNoSession):
		return m.rejUnknown
	case errors.Is(err, attest.ErrSelfAttestation):
		return m.rejSelf
	case errors.Is(err, attest.ErrUnsigned):
		return m.rejUnsigned
	default:
		return m.rejOther
	}
}

// noteDuplicate records a verified delivery of a piece we already held —
// real wire traffic, but not useful volume (two peers pushed the same piece
// concurrently). Kept out of the credited/per-peer counters so their sums
// equal verified content bytes exactly.
func (m *nodeMetrics) noteDuplicate(bytes int) {
	m.duplicateBytes.Add(int64(bytes))
}

// peerDownloadBytes snapshots the per-peer download counters — the
// fairness-index input for the sampler.
func (m *nodeMetrics) peerDownloadBytes() map[int]int64 {
	m.peerMu.Lock()
	defer m.peerMu.Unlock()
	out := make(map[int]int64, len(m.peerDown))
	for id, c := range m.peerDown {
		out[id] = c.Value()
	}
	return out
}

// sinceStartNs returns the node's monotonic span clock: nanoseconds since
// Start. Span timestamps store this value (0 = unset), so span histograms
// never mix wall-clock bases.
func (n *Node) sinceStartNs() int64 {
	d := time.Since(n.start).Nanoseconds()
	if d <= 0 {
		return 1 // Start just happened; keep "set" distinguishable from 0
	}
	return d
}

// noteWantedLocked marks the want-time of a piece (mu held): the first
// moment a neighbor is seen holding a piece we lack. In this push protocol
// there is no explicit request, so this is the span's opening edge.
func (n *Node) noteWantedLocked(index int) {
	if index < 0 || index >= len(n.wantSince) || n.wantSince[index] != 0 {
		return
	}
	if n.myBits.Has(index) {
		return
	}
	n.wantSince[index] = n.sinceStartNs()
}

// noteFirstByteLocked marks first data arrival for a piece (mu held) —
// plaintext hitting the verifier, or ciphertext entering the pending-seal
// escrow — and records the want->first-byte span.
func (n *Node) noteFirstByteLocked(index int) {
	if index < 0 || index >= len(n.firstByteAt) || n.firstByteAt[index] != 0 {
		return
	}
	now := n.sinceStartNs()
	n.firstByteAt[index] = now
	if w := n.wantSince[index]; w != 0 {
		n.metrics.spanWantFirstByte.Observe(now - w)
	}
}

// noteVerifiedLocked closes a piece's span at hash-verified store time (mu
// held).
func (n *Node) noteVerifiedLocked(index int) {
	n.metrics.piecesVerified.Inc()
	if index < 0 || index >= len(n.firstByteAt) {
		return
	}
	now := n.sinceStartNs()
	if f := n.firstByteAt[index]; f != 0 {
		n.metrics.spanFirstByteVerified.Observe(now - f)
	}
	if w := n.wantSince[index]; w != 0 {
		n.metrics.spanWantVerified.Observe(now - w)
		// The always-on tail net: a piece whose want->verified span blew
		// the slow threshold records a piece.slow span regardless of
		// sampling, tagged with the piece's trace when one is live so the
		// slow outlier and its causal story meet in the collector. SlowNs
		// is nil-safe, so the untraced path pays a nil check only.
		if slow := n.tracer.SlowNs(); slow > 0 && now-w > slow {
			var traceID uint64
			if n.pieceTrace != nil {
				traceID = n.pieceTrace[index].TraceID
			}
			n.tracer.Record(tracing.Span{
				TraceID: traceID, SpanID: n.tracer.NewID(),
				Name: tracing.SpanPieceSlow, Node: n.cfg.ID, Peer: -1, Piece: index,
				Start: n.start.Add(time.Duration(w)).UnixNano(), Dur: now - w,
			})
		}
	}
}

// outboxDepth sums the queued outbound frames across peers.
func (n *Node) outboxDepth() int64 {
	n.mu.Lock()
	peers := make([]*remote, 0, len(n.peers))
	for _, r := range n.peers {
		peers = append(peers, r)
	}
	n.mu.Unlock()
	var depth int64
	for _, r := range peers {
		r.outMu.Lock()
		depth += int64(len(r.outbox))
		r.outMu.Unlock()
	}
	return depth
}

// Metrics returns the node's metric registry — the one from Config.Metrics,
// or the private registry the node created when none was supplied. It is
// live: counters keep moving while the node runs.
func (n *Node) Metrics() *metrics.Registry { return n.metrics.reg }
