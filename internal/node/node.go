// Package node implements a live cooperative-exchange peer: the same
// incentive mechanisms the simulator studies (internal/incentive), run over
// a real message transport (internal/transport) with verified piece storage
// (internal/piece) and, for T-Chain, real encryption with escrowed keys
// (internal/tchain).
//
// A Node pushes pieces to strategy-chosen neighbors, throttled by a token
// bucket; receivers verify every piece against the swarm manifest. Under
// T-Chain the payload travels sealed and the key is released only after the
// sender observes reciprocation (a repaying piece, or a witness receipt for
// a forwarded seal) — a receiver that reneges keeps ciphertext it can never
// read.
//
// Simplifications relative to a full deployment, recorded in DESIGN.md:
// the reputation algorithm's global scores live in a shared
// reputation.Ledger (standing in for EigenTrust's gossip); witnesses only
// notify seal origins they are already connected to (examples run meshes).
package node

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/algo"
	"repro/internal/attest"
	"repro/internal/incentive"
	"repro/internal/metrics"
	"repro/internal/piece"
	"repro/internal/protocol"
	"repro/internal/reputation"
	"repro/internal/stats"
	"repro/internal/tchain"
	"repro/internal/tracing"
	"repro/internal/transport"
)

// Config parameterizes a node.
type Config struct {
	// ID is the node's swarm-unique identity.
	ID int
	// Algorithm is the incentive mechanism to run.
	Algorithm algo.Algorithm
	// Params tunes the mechanism; zero values take the paper's defaults.
	Params incentive.Params
	// Store holds this node's pieces (pre-seeded for a seed node).
	Store *piece.Store
	// Transport provides connectivity.
	Transport transport.Transport
	// ListenAddr is where to accept inbound connections.
	ListenAddr string
	// Bootstrap addresses are dialed at startup.
	Bootstrap []string
	// UploadRate throttles uploads in bytes/second; 0 means unthrottled.
	UploadRate float64
	// DecisionInterval is the upload-scheduler tick (default 20 ms).
	DecisionInterval time.Duration
	// FreeRide makes the node receive without ever uploading or
	// reciprocating — the attack behaviour from Section IV-C.
	FreeRide bool
	// SeedMode marks this node as the swarm's origin server: it serves
	// plaintext unconditionally, matching the paper's model of the seeder
	// as an unconditional u_S/N contribution in every mechanism
	// (including T-Chain, where ordinary peers seal and demand
	// reciprocation). Without an altruistic origin a two-party T-Chain
	// swarm cannot even start: reciprocation toward a peer that needs
	// nothing is infeasible.
	SeedMode bool
	// Identity is the node's attestation keypair. When set, the node signs
	// a receipt for every verified piece it stores (crediting the sender
	// with proof instead of trust), advertises its public key in the
	// handshake, and refuses unsigned T-Chain receipts. Nil runs the
	// legacy unsigned protocol — crediting is then a bare claim, exactly
	// the trust model the paper analyzes.
	Identity *attest.Key
	// Directory is the admitted-identity set attestations are verified
	// against. Nil with Identity set creates a private open directory that
	// pins peer keys trust-on-first-use from their Hello frames; clusters
	// share one sealed directory instead (closed membership, no Sybils).
	Directory *attest.Directory
	// AttestScheme selects the per-piece receipt signature. Zero with
	// Identity set defaults to SchemeEd25519 (self-contained signatures,
	// right for cross-process swarms); in-process clusters pass
	// SchemeSession, the pairwise-MAC fast path. Witness receipts are
	// always Ed25519 — they cross trust domains.
	AttestScheme attest.Scheme
	// Ledger is the shared global-reputation service; nil creates a
	// private one (reputation scores then stay local), verifying against
	// Directory when Identity is set and accepting bare claims otherwise.
	Ledger *reputation.Ledger
	// Metrics receives the node's telemetry (the node_ series); nil
	// creates a private registry, reachable via Node.Metrics. The registry
	// is per-node — sharing one across nodes merges their counters into an
	// aggregate view, which is valid but loses the per-node breakdown.
	Metrics *metrics.Registry
	// Discover enables decentralized peer discovery (Kademlia routing +
	// gossip membership, see DiscoverConfig); nil keeps the node purely
	// bootstrap-wired, exactly the pre-discovery behaviour.
	Discover *DiscoverConfig
	// Tracer enables causal tracing of the live data path (see
	// internal/tracing and trace.go). Cluster nodes share one collector so
	// cross-node spans land in a single ring; nil disables tracing
	// entirely, leaving the hot paths untouched.
	Tracer *tracing.Collector
	// Log receives the node's structured events (peer churn, attestation
	// refusals, shutdown drains) with trace/span IDs attached where a
	// trace is live. Nil discards everything — the default, and the only
	// mode the hot paths are benchmarked in.
	Log *slog.Logger
	// Seed drives the node's random choices; 0 derives one from ID.
	Seed int64
}

func (c *Config) validate() error {
	if c.Store == nil {
		return errors.New("node: Store required")
	}
	if c.Transport == nil {
		return errors.New("node: Transport required")
	}
	if c.UploadRate < 0 {
		return fmt.Errorf("node: UploadRate %g negative", c.UploadRate)
	}
	return nil
}

// maxQueuedData bounds the bulk payload frames (Piece, SealedPiece) queued
// per peer: enough to keep a healthy connection's writer busy, small enough
// that a stalled peer pins at most maxQueuedData pieces of memory and the
// upload scheduler redirects its budget elsewhere (see enqueueData).
const maxQueuedData = 16

// stopFlushTimeout bounds how long Stop waits, in total across all peers,
// for queued outbound frames to reach the wire before connections are
// closed under the writers. A variable so the shutdown-accounting test can
// shrink the window.
var stopFlushTimeout = 2 * time.Second

// remote is one connected neighbor. Outbound messages go through a
// per-peer queue drained by a dedicated writer goroutine, so the read
// loops never block on a slow peer (two mutually full pipes would
// otherwise deadlock the swarm). Control frames (haves, receipts, keys)
// are never dropped and never block; bulk data frames are bounded by
// maxQueuedData, the node's backpressure signal.
type remote struct {
	id   int
	conn transport.Conn
	have *piece.Bitfield
	addr string

	// theyNeed counts pieces we hold that the peer lacks; iNeed counts
	// pieces the peer holds that we lack. Maintained incrementally under
	// Node.mu (bitfield merge, have announcements, our own piece gains),
	// they make the strategy's WantsFromMe/INeedFrom probes O(1) instead
	// of an O(pieces/64) bitfield scan per probe with the node locked.
	theyNeed int
	iNeed    int

	outMu     sync.Mutex
	outCond   *sync.Cond
	outbox    []protocol.Message
	spare     []protocol.Message // previous drained batch, recycled
	outData   int                // bulk frames enqueued or being written
	writing   bool               // a drained batch is on its way to the wire
	outClosed bool

	// traced carries the span bookkeeping for traced frames currently in
	// the outbox (see trace.go); it is swapped out alongside the batch so
	// writeLoop can record outbox.wait and wire.send once the drain lands.
	// choked marks a backpressure refusal whose recovery (the queue
	// draining back below the bound) should emit an unchoke instant. All
	// three stay nil/false when tracing is off.
	traced      []tracedFrame
	tracedSpare []tracedFrame
	choked      bool

	// lastRecv and lastPing are sinceStartNs timestamps for discovery's
	// failure detector (maintained only when discovery is on): the last
	// inbound frame on this link and the last keepalive ping we sent.
	lastRecv atomic.Int64
	lastPing atomic.Int64

	nm *nodeMetrics // owning node's instrumentation

	tr     *tracing.Collector // nil when tracing is off
	nodeID int                // owning node's ID, for span attribution
}

// newRemote wires the outbound queue.
func newRemote(id int, conn transport.Conn, numPieces int, addr string, nm *nodeMetrics, tr *tracing.Collector, nodeID int) *remote {
	r := &remote{id: id, conn: conn, have: piece.NewBitfield(numPieces), addr: addr, nm: nm, tr: tr, nodeID: nodeID}
	r.outCond = sync.NewCond(&r.outMu)
	return r
}

// enqueue appends a control message for the writer goroutine; it never
// blocks and is never dropped.
func (r *remote) enqueue(m protocol.Message) {
	r.outMu.Lock()
	defer r.outMu.Unlock()
	if r.outClosed {
		return
	}
	r.outbox = append(r.outbox, m)
	r.outCond.Signal()
}

// enqueueAck queues a signed receipt copy for this peer. Receipts are
// ordinary control frames: a lazy no-wakeup variant was measured and
// bought nothing (the drain that follows each piece's Have broadcast picks
// acks up either way), while it silently stranded receipts on links with
// no other outbound traffic — a downloader never Have-broadcasts to a
// complete seed, so the seed's proof copies only flushed at close.
func (r *remote) enqueueAck(att attest.Attestation, tc tracing.Context) {
	r.enqueue(protocol.Attest{Att: att, Trace: tc})
}

// enqueueData appends a bulk payload frame, reporting whether it was
// accepted. A full queue refuses the frame — the caller treats the peer as
// saturated and the scheduler's resend cooldown re-offers the piece later.
// Each refusal lands in node_backpressure_refusals_total.
func (r *remote) enqueueData(m protocol.Message) bool {
	r.outMu.Lock()
	defer r.outMu.Unlock()
	if r.outClosed || r.outData >= maxQueuedData {
		if !r.outClosed {
			r.nm.backpressure.Inc()
			r.noteChokedLocked()
		}
		return false
	}
	r.outData++
	r.outbox = append(r.outbox, m)
	r.outCond.Signal()
	return true
}

// noteChokedLocked emits a choke instant on the first backpressure refusal
// of a saturated stretch (outMu held). Refusals are off the accept fast
// path, so the tracing check costs nothing when the queue is healthy; with
// tracing off it is a nil compare.
func (r *remote) noteChokedLocked() {
	if r.tr == nil || r.choked {
		return
	}
	r.choked = true
	instant(r.tr, tracing.SpanChoke, r.nodeID, r.id, -1)
}

// enqueueTraced is enqueue for a traced control frame (a repayment piece):
// never refused, never dropped, with the request.queued span recorded on
// acceptance and the writer bookkeeping attached.
func (r *remote) enqueueTraced(m protocol.Message, ut *uploadTrace) {
	enqNs := time.Now().UnixNano()
	r.outMu.Lock()
	if r.outClosed {
		r.outMu.Unlock()
		return
	}
	r.outbox = append(r.outbox, m)
	r.traced = append(r.traced, ut.frame(enqNs))
	r.outCond.Signal()
	r.outMu.Unlock()
	r.tr.Record(ut.queuedSpan(r.nodeID, enqNs))
}

// enqueueDataTraced is enqueueData for a traced bulk frame: same
// backpressure contract, plus the request.queued span and the writer
// bookkeeping on acceptance.
func (r *remote) enqueueDataTraced(m protocol.Message, ut *uploadTrace) bool {
	enqNs := time.Now().UnixNano()
	r.outMu.Lock()
	if r.outClosed || r.outData >= maxQueuedData {
		if !r.outClosed {
			r.nm.backpressure.Inc()
			r.noteChokedLocked()
		}
		r.outMu.Unlock()
		return false
	}
	r.outData++
	r.outbox = append(r.outbox, m)
	r.traced = append(r.traced, ut.frame(enqNs))
	r.outCond.Signal()
	r.outMu.Unlock()
	r.tr.Record(ut.queuedSpan(r.nodeID, enqNs))
	return true
}

// dataBacklogged reports whether the bulk queue is at capacity — the
// upload scheduler's cheap pre-check before it burns a decision on a peer
// that cannot absorb another piece.
func (r *remote) dataBacklogged() bool {
	r.outMu.Lock()
	defer r.outMu.Unlock()
	return r.outData >= maxQueuedData
}

// flushed reports whether every frame handed to this remote has reached
// the wire: nothing queued and no drained batch mid-Send. A closed outbox
// counts as flushed — its writer is gone and waiting would be pointless.
func (r *remote) flushed() bool {
	r.outMu.Lock()
	defer r.outMu.Unlock()
	return r.outClosed || (len(r.outbox) == 0 && !r.writing)
}

// closeOutbox stops the writer goroutine.
func (r *remote) closeOutbox() {
	r.outMu.Lock()
	r.outClosed = true
	r.outMu.Unlock()
	r.outCond.Broadcast()
}

// writeLoop drains the outbox to the connection until closed or the
// connection dies. Each drain takes the whole queue in one swap (the
// previous batch's slice is recycled, so steady state allocates nothing)
// and hands it to the transport's batch path when available — one flush,
// one syscall per drain on TCP. outData is decremented only after the
// batch hits the wire, so enqueueData's bound covers frames being written,
// not just frames waiting.
func (r *remote) writeLoop() {
	batcher, _ := r.conn.(transport.BatchSender)
	for {
		r.outMu.Lock()
		for len(r.outbox) == 0 && !r.outClosed {
			r.outCond.Wait()
		}
		if len(r.outbox) == 0 {
			r.outMu.Unlock()
			return // closed and fully drained
		}
		batch := r.outbox
		r.outbox = r.spare[:0]
		traced := r.traced
		r.traced = r.tracedSpare[:0]
		nData := r.outData
		r.writing = true
		r.outMu.Unlock()

		// The clock is read only when the drain carries traced frames, so
		// untraced operation (tracing off, or nothing sampled) never pays
		// for a timestamp here.
		var drainNs int64
		if len(traced) > 0 {
			drainNs = time.Now().UnixNano()
		}
		var err error
		if batcher != nil {
			err = batcher.SendBatch(batch)
		} else {
			for _, m := range batch {
				if err = r.conn.Send(m); err != nil {
					break
				}
			}
		}
		if err == nil {
			// nData is exactly the batch's bulk frames (Piece, SealedPiece);
			// the rest are control frames, so the class split costs nothing
			// beyond the bookkeeping writeLoop already does.
			r.nm.framesBulk.Add(int64(nData))
			r.nm.framesControl.Add(int64(len(batch) - nData))
			if len(traced) > 0 {
				doneNs := time.Now().UnixNano()
				for _, tf := range traced {
					// outbox.wait: accepted by the queue → this drain began.
					r.tr.Record(tracing.Span{
						TraceID: tf.traceID, SpanID: tf.wait, ParentID: tf.queued,
						Name: tracing.SpanOutboxWait, Node: r.nodeID, Peer: tf.peer, Piece: tf.piece,
						Start: tf.enqNs, Dur: drainNs - tf.enqNs,
					})
					// wire.send: the whole drain's encode+flush window — frames
					// share one batched syscall, so they share the span bounds.
					r.tr.Record(tracing.Span{
						TraceID: tf.traceID, SpanID: tf.send, ParentID: tf.wait,
						Name: tracing.SpanWireSend, Node: r.nodeID, Peer: tf.peer, Piece: tf.piece,
						Start: drainNs, Dur: doneNs - drainNs,
					})
				}
			}
		}
		clear(batch) // drop payload references before recycling the slice
		unchoked := false
		r.outMu.Lock()
		r.spare = batch[:0]
		r.tracedSpare = traced[:0]
		r.outData -= nData
		r.writing = false
		if r.choked && r.outData < maxQueuedData {
			r.choked = false
			unchoked = true
		}
		r.outMu.Unlock()
		if unchoked {
			instant(r.tr, tracing.SpanUnchoke, r.nodeID, r.id, -1)
		}
		if err != nil {
			r.closeOutbox()
			return
		}
	}
}

// pendingSeal is a sealed piece waiting for its key. tc is the trace
// continuation context the seal arrived under (zero = untraced): when the
// key finally lands, handleKey resumes the trace there, so the decrypt and
// verify appear in the same causal story as the seal's wire hop.
type pendingSeal struct {
	sealed     *tchain.Sealed
	index      int
	originID   int
	originAddr string
	tc         tracing.Context
}

// Stats is a snapshot of a node's counters, assembled from the metrics
// core (see Stats for the consistency model).
type Stats struct {
	ID             int
	Pieces         int
	Complete       bool
	UploadedBytes  float64
	CreditedBytes  float64 // verified plaintext received (first deliveries only)
	SealedPending  int     // ciphertext pieces awaiting keys
	Neighbors      int
	FramesSent     int64 // wire frames written across all peers
	FramesReceived int64 // wire frames dispatched across all peers
}

// Node is a live peer. Create with New, run with Start, stop with Stop.
type Node struct {
	cfg      Config
	strategy incentive.Strategy
	escrow   *tchain.Escrow
	recip    *tchain.ReciprocationLedger
	ledger   *reputation.Ledger

	// identity/directory/verifier are the attestation plumbing (nil when
	// Config.Identity is nil): the key that signs our receipts, the
	// admitted-identity set, and the stateless checker for receipts and
	// acks (the crediting replay windows live in the ledger's policy).
	identity  *attest.Key
	directory *attest.Directory
	verifier  *attest.Verifier
	attScheme attest.Scheme

	mu           sync.Mutex
	stopping     bool
	peers        map[int]*remote
	conns        map[transport.Conn]bool // every live conn, incl. pre-handshake
	pendingSeals map[uint64]pendingSeal
	sealIndex    map[uint64]int // keyID -> piece index, sender side
	recentSends  map[int]map[int]time.Time
	trusted      map[int]bool // peers that have genuinely reciprocated a seal
	rng          *rand.Rand

	// wantSince and firstByteAt are per-piece span timestamps (nanoseconds
	// on the sinceStartNs clock, 0 = unset), maintained under mu: want-time
	// opens when a neighbor is first seen holding a piece we lack,
	// first-byte when its data (plaintext or ciphertext) first arrives, and
	// noteVerifiedLocked closes the span at hash-verified store time.
	wantSince   []int64
	firstByteAt []int64

	// myBits mirrors the store's holdings under mu, so the decision loop
	// and the per-peer interest counters never take the store's lock or
	// clone a bitfield on the hot path. noteGainedLocked keeps it (and
	// every remote's counters) in sync with verified Puts.
	myBits *piece.Bitfield
	// neighborScratch and wantScratch back the strategy view's slice
	// results; both are reused across decisions (valid until the next view
	// call, per incentive.NodeView's contract) and protected by mu.
	neighborScratch []incentive.PeerID
	wantScratch     []incentive.PeerID

	metrics *nodeMetrics // never nil after New
	disc    *discState   // nil unless Config.Discover is set

	// tracer is the causal-trace collector (nil = tracing off, the
	// zero-overhead default); log is never nil (a discard logger stands in
	// when Config.Log is nil) and logDebug caches its debug-level Enabled
	// answer so hot-path Debug sites can skip argument evaluation entirely.
	// pieceTrace maps piece index -> continuation context (under mu): a
	// piece that arrived on a traced frame hands its trace to this node's
	// next onward upload of it, which is what stitches multi-hop stories
	// together. Allocated only when tracing is on.
	tracer     *tracing.Collector
	log        *slog.Logger
	logDebug   bool
	pieceTrace []tracing.Context

	listener transport.Listener
	done     chan struct{}
	closed   sync.Once
	stopErr  error // set inside closed.Do, read after wg.Wait
	wg       sync.WaitGroup
	start    time.Time

	completeCh   chan struct{}
	completeOnce sync.Once
}

// New builds a node; call Start to bring it online.
func New(cfg Config) (*Node, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.DecisionInterval <= 0 {
		cfg.DecisionInterval = 20 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = int64(cfg.ID)*7919 + 17
	}
	var verifier *attest.Verifier
	directory := cfg.Directory
	if cfg.Identity != nil {
		if cfg.AttestScheme == attest.SchemeNone {
			cfg.AttestScheme = attest.SchemeEd25519
		}
		if directory == nil {
			directory = attest.NewDirectory()
		}
		// Registering ourselves is idempotent for a cluster-shared
		// directory and necessary for a private one: the ledger verifies
		// our own signed receipts before crediting.
		directory.Register(int32(cfg.ID), cfg.Identity.Identity())
		verifier = attest.NewVerifier(directory)
	}
	ledger := cfg.Ledger
	if ledger == nil {
		if verifier != nil {
			// The private ledger shares this node's verifier: Credit spends
			// replay windows there, while the node's own uses (receipt and
			// ack checks, the /verify audit endpoint) are stateless.
			ledger = reputation.NewLedger(verifier)
		} else {
			ledger = reputation.NewLedger(attest.AcceptAll{})
		}
	}
	// The live T-Chain node enforces reciprocation at the protocol layer
	// (seal/forward/receipt/key), so its strategy only needs the
	// opportunistic-seeding component — which is altruism's uniform pick.
	strategyAlgo := cfg.Algorithm
	if strategyAlgo == algo.TChain {
		strategyAlgo = algo.Altruism
	}
	strategy, err := incentive.New(strategyAlgo, cfg.Params, ledger)
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:          cfg,
		strategy:     strategy,
		escrow:       tchain.NewEscrow(),
		recip:        tchain.NewReciprocationLedger(),
		ledger:       ledger,
		identity:     cfg.Identity,
		directory:    directory,
		verifier:     verifier,
		attScheme:    cfg.AttestScheme,
		peers:        make(map[int]*remote),
		conns:        make(map[transport.Conn]bool),
		pendingSeals: make(map[uint64]pendingSeal),
		sealIndex:    make(map[uint64]int),
		recentSends:  make(map[int]map[int]time.Time),
		trusted:      make(map[int]bool),
		rng:          stats.NewRNG(cfg.Seed),
		myBits:       cfg.Store.Bitfield(),
		wantSince:    make([]int64, cfg.Store.Manifest().NumPieces()),
		firstByteAt:  make([]int64, cfg.Store.Manifest().NumPieces()),
		done:         make(chan struct{}),
		completeCh:   make(chan struct{}),
		tracer:       cfg.Tracer,
		log:          cfg.Log,
	}
	if n.log == nil {
		n.log = slog.New(slog.DiscardHandler)
	}
	n.log = n.log.With("node", cfg.ID)
	// Cache the debug-level decision: slog evaluates call arguments before
	// the handler's Enabled check, so per-piece Debug sites must be guarded
	// or they allocate (traceHex, attr boxing) even into a discard handler.
	n.logDebug = n.log.Enabled(context.Background(), slog.LevelDebug)
	if n.tracer != nil {
		n.pieceTrace = make([]tracing.Context, cfg.Store.Manifest().NumPieces())
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	n.metrics = newNodeMetrics(reg, n)
	if cfg.Discover != nil {
		n.disc = newDiscState(*cfg.Discover, cfg.ID, cfg.Seed, reg)
	}
	if cfg.Store.Complete() {
		n.completeOnce.Do(func() { close(n.completeCh) })
	}
	return n, nil
}

// ID returns the node's identity.
func (n *Node) ID() int { return n.cfg.ID }

// StoreHandle returns the node's piece store (e.g., to assemble the file
// after completion).
func (n *Node) StoreHandle() *piece.Store { return n.cfg.Store }

// Addr returns the bound listen address (valid after Start).
func (n *Node) Addr() string {
	if n.listener == nil {
		return ""
	}
	return n.listener.Addr()
}

// Start binds the listener, dials bootstrap peers, and launches the accept
// and upload loops.
func (n *Node) Start() error {
	l, err := n.cfg.Transport.Listen(n.cfg.ListenAddr)
	if err != nil {
		return err
	}
	n.listener = l
	n.start = time.Now()

	n.wg.Add(1)
	go n.acceptLoop()

	for _, addr := range n.cfg.Bootstrap {
		conn, err := n.cfg.Transport.Dial(addr)
		if err != nil {
			continue // bootstrap peers are best-effort
		}
		n.wg.Add(1)
		go n.handleConn(conn, true)
	}

	n.wg.Add(1)
	go n.uploadLoop()
	if n.disc != nil {
		n.wg.Add(1)
		go n.discoverLoop()
	}
	return nil
}

// Stop tears the node down and waits for all its goroutines. It is
// idempotent — every call waits for the full teardown — and returns the
// first teardown error (listener close); repeat calls return that same
// error.
func (n *Node) Stop() error {
	n.closed.Do(func() {
		close(n.done)
		if n.listener != nil {
			n.stopErr = n.listener.Close()
		}
		n.mu.Lock()
		n.stopping = true
		remotes := make([]*remote, 0, len(n.peers))
		for _, r := range n.peers {
			remotes = append(remotes, r)
		}
		n.mu.Unlock()
		// Let the writer goroutines put already-queued frames on the wire
		// before the connections go away. A caller that stops the node the
		// instant its download completes — the CLI does exactly this — may
		// close before the writers have even been scheduled, and the tail
		// of the conversation (receipt copies, in particular: the proof a
		// seeder keeps of its uploads) would be dropped on the floor. The
		// deadline is shared across peers so a wedged link cannot stall
		// shutdown.
		queuedFrames := func() int64 {
			var q int64
			for _, r := range remotes {
				r.outMu.Lock()
				q += int64(len(r.outbox))
				r.outMu.Unlock()
			}
			return q
		}
		initial := queuedFrames()
		deadline := time.Now().Add(stopFlushTimeout)
		for _, r := range remotes {
			for !r.flushed() && time.Now().Before(deadline) {
				time.Sleep(200 * time.Microsecond)
			}
		}
		// Shutdown drain accounting: what the window flushed versus what the
		// connection teardown is about to drop (receipt copies, in
		// particular — the proof a seeder keeps of its uploads).
		remaining := queuedFrames()
		n.metrics.stopDrainFrames.Add(max(initial-remaining, 0))
		n.metrics.stopDrainDropped.Add(remaining)
		n.log.Info("node stopped",
			"drained_frames", max(initial-remaining, 0),
			"dropped_frames", remaining)
		n.mu.Lock()
		for conn := range n.conns {
			conn.Close()
		}
		n.mu.Unlock()
	})
	n.wg.Wait()
	return n.stopErr
}

// WaitCompleteContext blocks until the node holds the full file or the
// context is done. It returns nil on completion and ctx.Err() otherwise, so
// callers compose cancellation, deadlines, and timeouts the standard way.
func (n *Node) WaitCompleteContext(ctx context.Context) error {
	select {
	case <-n.completeCh:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stats returns a snapshot of the node's counters. It is a shim over the
// metrics core: every field reads the same counter the node_ series
// exposes over /metrics.
//
// Consistency model: each individual value is tear-free (a sharded counter
// merges its shards atomically), but the fields are read one after another
// while the node keeps running, so cross-field invariants may be off by
// the handful of events that landed between reads — e.g. Pieces may
// already include a piece whose CreditedBytes increment is read a
// microsecond later. Snapshots are exact once the node is stopped or
// complete. Registry.Snapshot makes the same promise per metric.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return Stats{
		ID:             n.cfg.ID,
		Pieces:         n.cfg.Store.Count(),
		Complete:       n.cfg.Store.Complete(),
		UploadedBytes:  float64(n.metrics.uploadedBytes.Value()),
		CreditedBytes:  float64(n.metrics.creditedBytes.Value()),
		SealedPending:  len(n.pendingSeals),
		Neighbors:      len(n.peers),
		FramesSent:     n.metrics.framesControl.Value() + n.metrics.framesBulk.Value(),
		FramesReceived: n.metrics.framesIn.Value(),
	}
}

func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.listener.Accept()
		if err != nil {
			return
		}
		n.wg.Add(1)
		go n.handleConn(conn, false)
	}
}
