package node

import (
	"context"
	"testing"
	"time"

	"repro/internal/algo"
	"repro/internal/attest"
	"repro/internal/incentive"
	"repro/internal/piece"
	"repro/internal/reputation"
	"repro/internal/transport"
)

const (
	testPieces    = 16
	testPieceSize = 512
)

// waitComplete drives the context-based wait API under a test deadline,
// returning whatever WaitCompleteContext reports.
func waitComplete(t *testing.T, n *Node, timeout time.Duration) error {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return n.WaitCompleteContext(ctx)
}

// cluster spins up one seed node plus n leechers on the given transport,
// full-mesh connected, and returns them started.
type cluster struct {
	t        *testing.T
	manifest *piece.Manifest
	content  []byte
	nodes    []*Node
}

func newCluster(t *testing.T, tr transport.Transport, listenAddr func(i int) string,
	a algo.Algorithm, leechers int, freeRiders map[int]bool) *cluster {
	t.Helper()
	manifest, err := piece.SyntheticManifest(testPieces, testPieceSize)
	if err != nil {
		t.Fatal(err)
	}
	content := make([]byte, 0, manifest.FileSize)
	for i := 0; i < testPieces; i++ {
		content = append(content, piece.SyntheticPiece(i, testPieceSize)...)
	}
	ledger := reputation.NewLedger(attest.AcceptAll{})

	c := &cluster{t: t, manifest: manifest, content: content}
	var addrs []string
	for i := 0; i <= leechers; i++ {
		var store *piece.Store
		if i == 0 {
			seedStore, err := piece.NewSeedStore(manifest, content)
			if err != nil {
				t.Fatal(err)
			}
			store = seedStore
		} else {
			store = piece.NewStore(manifest)
		}
		cfg := Config{
			ID:               i,
			Algorithm:        a,
			Store:            store,
			Transport:        tr,
			ListenAddr:       listenAddr(i),
			Bootstrap:        append([]string(nil), addrs...),
			DecisionInterval: 2 * time.Millisecond,
			FreeRide:         freeRiders[i],
			Ledger:           ledger,
		}
		n, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		c.nodes = append(c.nodes, n)
		addrs = append(addrs, n.Addr())
	}
	t.Cleanup(c.stopAll)
	return c
}

func (c *cluster) stopAll() {
	for _, n := range c.nodes {
		n.Stop()
	}
}

func memAddrs(i int) string { return "" }

func TestNodeValidation(t *testing.T) {
	manifest, _ := piece.SyntheticManifest(4, 64)
	store := piece.NewStore(manifest)
	tr := transport.NewMem()
	cases := []Config{
		{Transport: tr}, // no store
		{Store: store},  // no transport
		{Store: store, Transport: tr, UploadRate: -1},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// TestDistributeAllAlgorithms: a seed plus four compliant leechers finish
// the file under every mechanism that can initiate uploads. (Pure
// reciprocity stalls by design — covered separately.)
func TestDistributeAllAlgorithms(t *testing.T) {
	for _, a := range []algo.Algorithm{algo.Altruism, algo.BitTorrent, algo.FairTorrent, algo.Reputation, algo.TChain} {
		t.Run(a.String(), func(t *testing.T) {
			t.Parallel()
			c := newCluster(t, transport.NewMem(), memAddrs, a, 4, nil)
			for i, n := range c.nodes[1:] {
				if err := waitComplete(t, n, 20*time.Second); err != nil {
					t.Fatalf("leecher %d incomplete (%v): %+v", i+1, err, n.Stats())
				}
			}
			// Assembled content matches the original bytes.
			got, err := c.nodes[1].cfg.Store.Assemble()
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(c.content) {
				t.Fatalf("assembled %d bytes, want %d", len(got), len(c.content))
			}
			for i := range got {
				if got[i] != c.content[i] {
					t.Fatalf("content differs at byte %d", i)
				}
			}
		})
	}
}

// TestReciprocityStallsLive: with pure reciprocity nobody can initiate, so
// leechers stay empty (Lemma 2's deadlock, on the real stack).
func TestReciprocityStallsLive(t *testing.T) {
	c := newCluster(t, transport.NewMem(), memAddrs, algo.Reciprocity, 2, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if c.nodes[1].WaitCompleteContext(ctx) == nil {
		t.Fatal("reciprocity leecher completed — someone initiated an upload")
	}
	for _, n := range c.nodes[1:] {
		if s := n.Stats(); s.Pieces != 0 {
			t.Errorf("leecher %d acquired %d pieces under pure reciprocity", s.ID, s.Pieces)
		}
	}
}

// TestTChainFreeRiderStarves: under T-Chain, a free-riding node receives
// sealed pieces it can never decrypt, while compliant nodes finish.
func TestTChainFreeRiderStarves(t *testing.T) {
	c := newCluster(t, transport.NewMem(), memAddrs, algo.TChain, 3, map[int]bool{3: true})
	for _, i := range []int{1, 2} {
		if err := waitComplete(t, c.nodes[i], 20*time.Second); err != nil {
			t.Fatalf("compliant leecher %d incomplete (%v): %+v", i, err, c.nodes[i].Stats())
		}
	}
	time.Sleep(100 * time.Millisecond)
	fr := c.nodes[3].Stats()
	if fr.Pieces != 0 {
		t.Errorf("free-rider decrypted %d pieces under T-Chain", fr.Pieces)
	}
	if fr.UploadedBytes != 0 {
		t.Errorf("free-rider uploaded %g bytes", fr.UploadedBytes)
	}
}

// TestAltruismFreeRiderFeasts: the same free-rider completes the whole file
// under altruism — the other end of Table III.
func TestAltruismFreeRiderFeasts(t *testing.T) {
	c := newCluster(t, transport.NewMem(), memAddrs, algo.Altruism, 3, map[int]bool{3: true})
	if err := waitComplete(t, c.nodes[3], 20*time.Second); err != nil {
		t.Fatalf("free-rider incomplete under altruism (%v): %+v", err, c.nodes[3].Stats())
	}
	if got := c.nodes[3].Stats().UploadedBytes; got != 0 {
		t.Errorf("free-rider uploaded %g bytes", got)
	}
}

// TestTCPCluster runs a small swarm over real TCP on localhost.
func TestTCPCluster(t *testing.T) {
	c := newCluster(t, transport.NewTCP(), func(int) string { return "127.0.0.1:0" },
		algo.TChain, 3, nil)
	// Generous deadline: under -race with other packages' tests hogging the
	// machine, a healthy TCP swarm can take far longer than its usual ~2 s.
	for i := 1; i <= 3; i++ {
		if err := waitComplete(t, c.nodes[i], 90*time.Second); err != nil {
			t.Fatalf("TCP leecher %d incomplete (%v): %+v", i, err, c.nodes[i].Stats())
		}
	}
}

// TestReputationContributorPreferred: with the reputation mechanism, the
// ledger accumulates real upload credit for contributors.
func TestReputationContributorPreferred(t *testing.T) {
	c := newCluster(t, transport.NewMem(), memAddrs, algo.Reputation, 3, nil)
	for i := 1; i <= 3; i++ {
		if err := waitComplete(t, c.nodes[i], 20*time.Second); err != nil {
			t.Fatalf("leecher %d incomplete: %v", i, err)
		}
	}
	// The seed must have earned the highest reputation.
	ledger := c.nodes[0].ledger
	seedScore := ledger.Score(0)
	if seedScore <= 0 {
		t.Fatal("seed has no reputation despite uploading")
	}
	for i := 1; i <= 3; i++ {
		if ledger.Score(i) > seedScore {
			t.Errorf("leecher %d outscored the seed", i)
		}
	}
}

// TestNodeStopIdempotent: Stop twice, and stats stay accessible.
func TestNodeStopIdempotent(t *testing.T) {
	c := newCluster(t, transport.NewMem(), memAddrs, algo.Altruism, 1, nil)
	c.nodes[0].Stop()
	c.nodes[0].Stop()
	_ = c.nodes[0].Stats()
}

// TestUploadRateThrottle: a throttled seed uploads no faster than its
// token bucket allows.
func TestUploadRateThrottle(t *testing.T) {
	manifest, _ := piece.SyntheticManifest(testPieces, testPieceSize)
	content := make([]byte, 0, manifest.FileSize)
	for i := 0; i < testPieces; i++ {
		content = append(content, piece.SyntheticPiece(i, testPieceSize)...)
	}
	seedStore, _ := piece.NewSeedStore(manifest, content)
	tr := transport.NewMem()
	rate := float64(4 * testPieceSize) // four pieces per second
	seed, err := New(Config{
		ID: 0, Algorithm: algo.Altruism, Store: seedStore, Transport: tr,
		UploadRate: rate, DecisionInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Start(); err != nil {
		t.Fatal(err)
	}
	defer seed.Stop()

	leech, err := New(Config{
		ID: 1, Algorithm: algo.Altruism, Store: piece.NewStore(manifest),
		Transport: tr, Bootstrap: []string{seed.Addr()}, DecisionInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := leech.Start(); err != nil {
		t.Fatal(err)
	}
	defer leech.Stop()

	const window = 1500 * time.Millisecond
	time.Sleep(window)
	uploaded := seed.Stats().UploadedBytes
	// Allow bucket burst (4 pieces) plus rate*window.
	limit := rate*window.Seconds() + 5*testPieceSize
	if uploaded > limit {
		t.Errorf("uploaded %g bytes in %v, limit %g", uploaded, window, limit)
	}
	if uploaded == 0 {
		t.Error("throttled seed uploaded nothing")
	}
}

// TestStrategyParamsPropagate: invalid params surface at construction.
func TestStrategyParamsPropagate(t *testing.T) {
	manifest, _ := piece.SyntheticManifest(4, 64)
	_, err := New(Config{
		ID: 0, Algorithm: algo.BitTorrent, Store: piece.NewStore(manifest),
		Transport: transport.NewMem(), Params: incentive.Params{AlphaBT: 3},
	})
	if err == nil {
		t.Fatal("invalid params accepted")
	}
}

// TestSwarmSurvivesMessageLoss: with 5% of non-handshake messages dropped,
// the recovery paths (resend cooldown, seal re-issue, trusted key-release
// fallback) still complete the download.
func TestSwarmSurvivesMessageLoss(t *testing.T) {
	for _, a := range []algo.Algorithm{algo.Altruism, algo.TChain} {
		t.Run(a.String(), func(t *testing.T) {
			tr, err := transport.NewFlaky(transport.NewMem(),
				transport.WithDropProb(0.05), transport.WithDropSeed(77))
			if err != nil {
				t.Fatal(err)
			}
			c := newCluster(t, tr, memAddrs, a, 3, nil)
			for i := 1; i <= 3; i++ {
				if err := waitComplete(t, c.nodes[i], 45*time.Second); err != nil {
					t.Fatalf("leecher %d incomplete under loss (%v): %+v", i, err, c.nodes[i].Stats())
				}
			}
		})
	}
}

// TestSeedModeServesPlaintextUnderTChain: an origin-server node sends
// plaintext even under T-Chain, so a two-party swarm (where reciprocation
// toward a complete peer is infeasible) still works.
func TestSeedModeServesPlaintextUnderTChain(t *testing.T) {
	manifest, _ := piece.SyntheticManifest(testPieces, testPieceSize)
	content := make([]byte, 0, manifest.FileSize)
	for i := 0; i < testPieces; i++ {
		content = append(content, piece.SyntheticPiece(i, testPieceSize)...)
	}
	seedStore, _ := piece.NewSeedStore(manifest, content)
	tr := transport.NewMem()
	seed, err := New(Config{
		ID: 0, Algorithm: algo.TChain, Store: seedStore, Transport: tr,
		DecisionInterval: 2 * time.Millisecond, SeedMode: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := seed.Start(); err != nil {
		t.Fatal(err)
	}
	defer seed.Stop()

	leech, err := New(Config{
		ID: 1, Algorithm: algo.TChain, Store: piece.NewStore(manifest),
		Transport: tr, Bootstrap: []string{seed.Addr()},
		DecisionInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := leech.Start(); err != nil {
		t.Fatal(err)
	}
	defer leech.Stop()

	if err := waitComplete(t, leech, 20*time.Second); err != nil {
		t.Fatalf("two-party T-Chain swarm with SeedMode did not complete (%v): %+v", err, leech.Stats())
	}
}
