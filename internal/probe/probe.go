// Package probe defines the simulator's observability layer: a hook
// interface the swarm invokes at every semantically meaningful event —
// peer lifecycle, piece transfers, credit flows, scheduling decisions —
// so new quantities can be measured without editing the simulation hot
// loop.
//
// Design constraints, in order:
//
//  1. Zero cost when unobserved. The swarm dispatches through a single
//     nil-checked interface field; with no probe attached the hot path
//     pays one nil comparison per hook site and allocates nothing.
//  2. Zero allocations when observed. Every hook receives plain value
//     arguments (small structs, ints, float64s), never interface{} or
//     closures, so dispatching to an attached probe does not allocate.
//  3. Probes own their state. A probe derives everything from the hook
//     stream (plus the RunInfo handed to BeginRun); it never reaches
//     back into the swarm. This keeps probes trivially composable and
//     race-free under the parallel runner (one probe per swarm).
//
// The simulator's own metric series (the five curves behind the paper's
// Figures 4–6) are implemented as the first probe over exactly this
// interface, which is the existence proof that the hook stream carries
// enough information to reproduce the paper's evaluation.
//
// Implementers embed Base and override only the hooks they need:
//
//	type pieceFlow struct {
//		probe.Base
//		credits int
//	}
//
//	func (f *pieceFlow) Credit(now float64, c probe.CreditInfo) { f.credits++ }
package probe

// SeederID is the pseudo-peer ID the swarm uses for the origin server in
// transfer and credit events. It mirrors sim.SeederID; it is redeclared
// here (rather than imported) because sim depends on probe, not the
// reverse.
const SeederID = -2

// RunInfo describes the run a probe is being attached to. It is a plain
// snapshot of the configuration fields probes most often need; the full
// config travels in the run manifest, not through the probe API.
type RunInfo struct {
	// Algorithm is the incentive mechanism's display name.
	Algorithm string
	// NumPeers and NumPieces give the swarm and file size.
	NumPeers  int
	NumPieces int
	// PieceSize is the piece size in bytes.
	PieceSize float64
	// Horizon is the virtual-time cap in seconds.
	Horizon float64
	// Seed is the run's random seed.
	Seed int64
}

// PeerInfo identifies a peer at join time.
type PeerInfo struct {
	// ID is the peer's swarm-unique identifier (dense, starting at 0).
	ID int
	// Capacity is the peer's upload capacity in bytes/second.
	Capacity float64
	// FreeRider reports whether the peer runs the free-riding strategy.
	FreeRider bool
}

// Transfer describes one piece transfer on the simulated link layer.
type Transfer struct {
	// From is the sender: a peer ID, or SeederID for the origin server.
	From int
	// To is the receiving peer's ID.
	To int
	// Piece is the piece index in flight.
	Piece int
	// Bytes is the transfer's link-level size (the configured piece size).
	Bytes float64
	// Duration is the transfer's link time in seconds (TransferStart only;
	// zero in TransferFinish events).
	Duration float64
}

// CreditInfo describes a recorded plaintext credit: the receiver held the
// decryption key (or the mechanism released it) and the piece was new, so
// the bytes count toward the receiver's credited download volume.
type CreditInfo struct {
	// From is the crediting sender: a peer ID, or SeederID.
	From int
	// To is the credited receiving peer's ID.
	To int
	// Bytes is the credited volume.
	Bytes float64
}

// Probe observes one simulation run. All hooks run synchronously inside
// the event loop at the instant `now` (virtual seconds); implementations
// must be fast and must not retain argument structs past the call.
//
// Choke/unchoke semantics: the simulator models upload-slot scheduling,
// so Unchoke fires when a sender's strategy grants a slot to a receiver;
// the matching choke is implicit when the transfer completes and the slot
// is released (observable as TransferFinish from the same sender).
type Probe interface {
	// BeginRun fires once before any event, carrying the run's shape.
	BeginRun(info RunInfo)
	// PeerJoin fires when a peer arrives and activates.
	PeerJoin(now float64, p PeerInfo)
	// PeerLeave fires when a peer deactivates (completion departure,
	// crash, or any other removal from the active swarm).
	PeerLeave(now float64, id int)
	// PeerAbort fires when failure injection crashes a peer mid-download;
	// a PeerLeave for the same peer follows immediately.
	PeerAbort(now float64, id int)
	// PeerBootstrap fires when a peer is credited its first piece.
	PeerBootstrap(now float64, id int)
	// PeerComplete fires when a peer finishes the file (free-riders
	// included; check the PeerJoin info to filter).
	PeerComplete(now float64, id int)
	// Unchoke fires when a sender's strategy grants an upload slot to a
	// receiver (from may be SeederID).
	Unchoke(now float64, from, to int)
	// TransferStart fires when a piece transfer begins.
	TransferStart(now float64, t Transfer)
	// TransferFinish fires when a piece transfer's link time elapses,
	// before any credit processing for the delivery.
	TransferFinish(now float64, t Transfer)
	// Credit fires when a delivery is recorded as credited plaintext
	// (new piece, key released). Duplicate or ciphertext deliveries
	// produce TransferFinish without Credit.
	Credit(now float64, c CreditInfo)
	// FreeRiderCredit fires when peer-uploaded bytes are credited to a
	// free-rider — the numerator of the paper's susceptibility metric.
	FreeRiderCredit(now float64, to int, bytes float64)
	// SeederExit fires when failure injection takes the seeder offline.
	SeederExit(now float64)
	// Sample fires at every metric sampling instant (the configured
	// sampling period, early-stop instants, and the end of the run), in
	// that event's swarm-consistent state.
	Sample(now float64)
	// EndRun fires once after the final Sample, when the run is over.
	EndRun(now float64)
}

// Base is a no-op Probe; embed it and override the hooks of interest.
type Base struct{}

// BeginRun implements Probe as a no-op.
func (Base) BeginRun(RunInfo) {}

// PeerJoin implements Probe as a no-op.
func (Base) PeerJoin(float64, PeerInfo) {}

// PeerLeave implements Probe as a no-op.
func (Base) PeerLeave(float64, int) {}

// PeerAbort implements Probe as a no-op.
func (Base) PeerAbort(float64, int) {}

// PeerBootstrap implements Probe as a no-op.
func (Base) PeerBootstrap(float64, int) {}

// PeerComplete implements Probe as a no-op.
func (Base) PeerComplete(float64, int) {}

// Unchoke implements Probe as a no-op.
func (Base) Unchoke(float64, int, int) {}

// TransferStart implements Probe as a no-op.
func (Base) TransferStart(float64, Transfer) {}

// TransferFinish implements Probe as a no-op.
func (Base) TransferFinish(float64, Transfer) {}

// Credit implements Probe as a no-op.
func (Base) Credit(float64, CreditInfo) {}

// FreeRiderCredit implements Probe as a no-op.
func (Base) FreeRiderCredit(float64, int, float64) {}

// SeederExit implements Probe as a no-op.
func (Base) SeederExit(float64) {}

// Sample implements Probe as a no-op.
func (Base) Sample(float64) {}

// EndRun implements Probe as a no-op.
func (Base) EndRun(float64) {}

var _ Probe = Base{}

// multi fans every hook out to a fixed list of probes, in order.
type multi struct {
	probes []Probe
}

// Multi combines probes into one that dispatches to each in order. Nil
// entries are dropped; zero or one live probes collapse to nil or the
// probe itself, so the swarm's nil-check stays meaningful.
func Multi(probes ...Probe) Probe {
	live := make([]Probe, 0, len(probes))
	for _, p := range probes {
		if p != nil {
			live = append(live, p)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return &multi{probes: live}
}

// BeginRun implements Probe.
func (m *multi) BeginRun(info RunInfo) {
	for _, p := range m.probes {
		p.BeginRun(info)
	}
}

// PeerJoin implements Probe.
func (m *multi) PeerJoin(now float64, pi PeerInfo) {
	for _, p := range m.probes {
		p.PeerJoin(now, pi)
	}
}

// PeerLeave implements Probe.
func (m *multi) PeerLeave(now float64, id int) {
	for _, p := range m.probes {
		p.PeerLeave(now, id)
	}
}

// PeerAbort implements Probe.
func (m *multi) PeerAbort(now float64, id int) {
	for _, p := range m.probes {
		p.PeerAbort(now, id)
	}
}

// PeerBootstrap implements Probe.
func (m *multi) PeerBootstrap(now float64, id int) {
	for _, p := range m.probes {
		p.PeerBootstrap(now, id)
	}
}

// PeerComplete implements Probe.
func (m *multi) PeerComplete(now float64, id int) {
	for _, p := range m.probes {
		p.PeerComplete(now, id)
	}
}

// Unchoke implements Probe.
func (m *multi) Unchoke(now float64, from, to int) {
	for _, p := range m.probes {
		p.Unchoke(now, from, to)
	}
}

// TransferStart implements Probe.
func (m *multi) TransferStart(now float64, t Transfer) {
	for _, p := range m.probes {
		p.TransferStart(now, t)
	}
}

// TransferFinish implements Probe.
func (m *multi) TransferFinish(now float64, t Transfer) {
	for _, p := range m.probes {
		p.TransferFinish(now, t)
	}
}

// Credit implements Probe.
func (m *multi) Credit(now float64, c CreditInfo) {
	for _, p := range m.probes {
		p.Credit(now, c)
	}
}

// FreeRiderCredit implements Probe.
func (m *multi) FreeRiderCredit(now float64, to int, bytes float64) {
	for _, p := range m.probes {
		p.FreeRiderCredit(now, to, bytes)
	}
}

// SeederExit implements Probe.
func (m *multi) SeederExit(now float64) {
	for _, p := range m.probes {
		p.SeederExit(now)
	}
}

// Sample implements Probe.
func (m *multi) Sample(now float64) {
	for _, p := range m.probes {
		p.Sample(now)
	}
}

// EndRun implements Probe.
func (m *multi) EndRun(now float64) {
	for _, p := range m.probes {
		p.EndRun(now)
	}
}
