package probe

import "testing"

// recorder logs hook invocations in order.
type recorder struct {
	Base
	log []string
}

func (r *recorder) BeginRun(RunInfo)           { r.log = append(r.log, "begin") }
func (r *recorder) Sample(float64)             { r.log = append(r.log, "sample") }
func (r *recorder) EndRun(float64)             { r.log = append(r.log, "end") }
func (r *recorder) PeerJoin(float64, PeerInfo) { r.log = append(r.log, "join") }
func (r *recorder) Credit(float64, CreditInfo) { r.log = append(r.log, "credit") }
func (r *recorder) TransferStart(_ float64, t Transfer) {
	r.log = append(r.log, "start")
}

func TestMultiCollapses(t *testing.T) {
	if got := Multi(); got != nil {
		t.Errorf("Multi() = %v, want nil", got)
	}
	if got := Multi(nil, nil); got != nil {
		t.Errorf("Multi(nil, nil) = %v, want nil", got)
	}
	r := &recorder{}
	if got := Multi(nil, r, nil); got != Probe(r) {
		t.Errorf("Multi with one live probe should return it unchanged, got %T", got)
	}
}

func TestMultiFansOut(t *testing.T) {
	a, b := &recorder{}, &recorder{}
	m := Multi(a, b)
	m.BeginRun(RunInfo{NumPeers: 3})
	m.PeerJoin(1, PeerInfo{ID: 0})
	m.Credit(2, CreditInfo{From: SeederID, To: 0, Bytes: 7})
	m.Sample(3)
	m.EndRun(4)
	want := []string{"begin", "join", "credit", "sample", "end"}
	for _, r := range []*recorder{a, b} {
		if len(r.log) != len(want) {
			t.Fatalf("log = %v, want %v", r.log, want)
		}
		for i := range want {
			if r.log[i] != want[i] {
				t.Fatalf("log = %v, want %v", r.log, want)
			}
		}
	}
}

func TestBaseImplementsProbe(t *testing.T) {
	var p Probe = Base{}
	// Every hook must be callable as a no-op.
	p.BeginRun(RunInfo{})
	p.PeerJoin(0, PeerInfo{})
	p.PeerLeave(0, 0)
	p.PeerAbort(0, 0)
	p.PeerBootstrap(0, 0)
	p.PeerComplete(0, 0)
	p.Unchoke(0, 0, 0)
	p.TransferStart(0, Transfer{})
	p.TransferFinish(0, Transfer{})
	p.Credit(0, CreditInfo{})
	p.FreeRiderCredit(0, 0, 0)
	p.SeederExit(0)
	p.Sample(0)
	p.EndRun(0)
}

func TestCounter(t *testing.T) {
	c := &Counter{}
	c.BeginRun(RunInfo{})
	c.PeerJoin(0, PeerInfo{ID: 1})
	c.PeerJoin(1, PeerInfo{ID: 2})
	c.Unchoke(1, 1, 2)
	c.TransferStart(1, Transfer{From: 1, To: 2, Bytes: 10})
	c.TransferFinish(2, Transfer{From: 1, To: 2, Bytes: 10})
	c.Credit(2, CreditInfo{From: 1, To: 2, Bytes: 10})
	c.FreeRiderCredit(2, 2, 10)
	c.PeerBootstrap(2, 2)
	c.PeerComplete(3, 2)
	c.PeerLeave(3, 2)
	c.PeerAbort(4, 1)
	c.SeederExit(5)
	c.Sample(5)
	c.EndRun(5)

	counts := c.Counts()
	want := map[string]uint64{
		HookPeerJoin: 2, HookPeerLeave: 1, HookPeerAbort: 1,
		HookPeerBootstrap: 1, HookPeerComplete: 1, HookUnchoke: 1,
		HookTransferStart: 1, HookTransferFinish: 1, HookCredit: 1,
		HookFreeRiderCredit: 1, HookSeederExit: 1, HookSample: 1,
	}
	for _, name := range HookNames() {
		if counts[name] != want[name] {
			t.Errorf("Counts[%s] = %d, want %d", name, counts[name], want[name])
		}
	}
	if got := c.Total(); got != 13 {
		t.Errorf("Total() = %d, want 13", got)
	}
	if got := c.CreditedBytes(); got != 10 {
		t.Errorf("CreditedBytes() = %v, want 10", got)
	}
	if got := c.FreeRiderBytes(); got != 10 {
		t.Errorf("FreeRiderBytes() = %v, want 10", got)
	}
}

func TestHookNamesMatchCounts(t *testing.T) {
	c := &Counter{}
	counts := c.Counts()
	if len(HookNames()) != len(counts) {
		t.Fatalf("HookNames has %d entries, Counts has %d", len(HookNames()), len(counts))
	}
	for _, name := range HookNames() {
		if _, ok := counts[name]; !ok {
			t.Errorf("HookNames entry %q missing from Counts", name)
		}
	}
}
