package probe

// Hook names, the keys of Counter.Counts, in presentation order.
const (
	// HookPeerJoin counts PeerJoin events.
	HookPeerJoin = "peer_join"
	// HookPeerLeave counts PeerLeave events.
	HookPeerLeave = "peer_leave"
	// HookPeerAbort counts PeerAbort events.
	HookPeerAbort = "peer_abort"
	// HookPeerBootstrap counts PeerBootstrap events.
	HookPeerBootstrap = "peer_bootstrap"
	// HookPeerComplete counts PeerComplete events.
	HookPeerComplete = "peer_complete"
	// HookUnchoke counts Unchoke events.
	HookUnchoke = "unchoke"
	// HookTransferStart counts TransferStart events.
	HookTransferStart = "transfer_start"
	// HookTransferFinish counts TransferFinish events.
	HookTransferFinish = "transfer_finish"
	// HookCredit counts Credit events.
	HookCredit = "credit"
	// HookFreeRiderCredit counts FreeRiderCredit events.
	HookFreeRiderCredit = "free_rider_credit"
	// HookSeederExit counts SeederExit events.
	HookSeederExit = "seeder_exit"
	// HookSample counts Sample events.
	HookSample = "sample"
)

// HookNames lists the counted hooks in presentation order.
func HookNames() []string {
	return []string{
		HookPeerJoin, HookPeerLeave, HookPeerAbort, HookPeerBootstrap,
		HookPeerComplete, HookUnchoke, HookTransferStart,
		HookTransferFinish, HookCredit, HookFreeRiderCredit,
		HookSeederExit, HookSample,
	}
}

// Counter tallies every hook invocation — the cheapest useful probe, and
// the overhead yardstick for the probe-dispatch benchmarks. The zero
// value is ready to use; Counter is not safe for concurrent use (attach
// one per swarm).
type Counter struct {
	joins, leaves, aborts, bootstraps, completes uint64
	unchokes, starts, finishes                   uint64
	credits, frCredits                           uint64
	seederExits, samples                         uint64

	creditedBytes float64
	frBytes       float64
}

var _ Probe = (*Counter)(nil)

// BeginRun implements Probe as a no-op.
func (c *Counter) BeginRun(RunInfo) {}

// PeerJoin implements Probe.
func (c *Counter) PeerJoin(float64, PeerInfo) { c.joins++ }

// PeerLeave implements Probe.
func (c *Counter) PeerLeave(float64, int) { c.leaves++ }

// PeerAbort implements Probe.
func (c *Counter) PeerAbort(float64, int) { c.aborts++ }

// PeerBootstrap implements Probe.
func (c *Counter) PeerBootstrap(float64, int) { c.bootstraps++ }

// PeerComplete implements Probe.
func (c *Counter) PeerComplete(float64, int) { c.completes++ }

// Unchoke implements Probe.
func (c *Counter) Unchoke(float64, int, int) { c.unchokes++ }

// TransferStart implements Probe.
func (c *Counter) TransferStart(float64, Transfer) { c.starts++ }

// TransferFinish implements Probe.
func (c *Counter) TransferFinish(float64, Transfer) { c.finishes++ }

// Credit implements Probe.
func (c *Counter) Credit(_ float64, ci CreditInfo) {
	c.credits++
	c.creditedBytes += ci.Bytes
}

// FreeRiderCredit implements Probe.
func (c *Counter) FreeRiderCredit(_ float64, _ int, bytes float64) {
	c.frCredits++
	c.frBytes += bytes
}

// SeederExit implements Probe.
func (c *Counter) SeederExit(float64) { c.seederExits++ }

// Sample implements Probe.
func (c *Counter) Sample(float64) { c.samples++ }

// EndRun implements Probe as a no-op.
func (c *Counter) EndRun(float64) {}

// Counts returns the per-hook event tallies keyed by the Hook* names.
func (c *Counter) Counts() map[string]uint64 {
	return map[string]uint64{
		HookPeerJoin:        c.joins,
		HookPeerLeave:       c.leaves,
		HookPeerAbort:       c.aborts,
		HookPeerBootstrap:   c.bootstraps,
		HookPeerComplete:    c.completes,
		HookUnchoke:         c.unchokes,
		HookTransferStart:   c.starts,
		HookTransferFinish:  c.finishes,
		HookCredit:          c.credits,
		HookFreeRiderCredit: c.frCredits,
		HookSeederExit:      c.seederExits,
		HookSample:          c.samples,
	}
}

// Total returns the total number of hook invocations counted (BeginRun
// and EndRun excluded).
func (c *Counter) Total() uint64 {
	var total uint64
	for _, v := range c.Counts() {
		total += v
	}
	return total
}

// CreditedBytes returns the total plaintext bytes observed via Credit.
func (c *Counter) CreditedBytes() float64 { return c.creditedBytes }

// FreeRiderBytes returns the peer-uploaded bytes credited to free-riders
// observed via FreeRiderCredit.
func (c *Counter) FreeRiderBytes() float64 { return c.frBytes }
