package probe

import (
	"repro/internal/metrics"
)

// Metrics adapts the simulator's hook stream onto a metrics.Registry, so
// the simulator and the live cluster share one metric vocabulary (the
// sim_ namespace mirrors the node_ namespace's shapes): per-hook event
// counters named sim_<hook>_total after the Hook* constants, byte-volume
// counters, transfer size/duration histograms, and an active-peer gauge.
// Attach one per swarm (sim.Swarm.Attach), handing dashboards and the
// /metrics surface the same registry the live node feeds.
//
// Durations are virtual seconds recorded as nanoseconds (the repo's _ns
// histogram convention), so simulated and live latency histograms plot on
// the same axes.
type Metrics struct {
	joins, leaves, aborts, bootstraps *metrics.Counter
	completes, unchokes               *metrics.Counter
	starts, finishes                  *metrics.Counter
	credits, frCredits                *metrics.Counter
	seederExits, samples              *metrics.Counter

	creditedBytes *metrics.Counter
	frBytes       *metrics.Counter

	transferBytes *metrics.Histogram
	transferDurNs *metrics.Histogram

	activePeers *metrics.Gauge
}

var _ Probe = (*Metrics)(nil)

// hookCounter names one per-hook event counter in the sim_ namespace.
func hookCounter(reg *metrics.Registry, hook string) *metrics.Counter {
	return reg.Counter("sim_" + hook + "_total")
}

// NewMetrics returns a Metrics probe recording into reg.
func NewMetrics(reg *metrics.Registry) *Metrics {
	return &Metrics{
		joins:         hookCounter(reg, HookPeerJoin),
		leaves:        hookCounter(reg, HookPeerLeave),
		aborts:        hookCounter(reg, HookPeerAbort),
		bootstraps:    hookCounter(reg, HookPeerBootstrap),
		completes:     hookCounter(reg, HookPeerComplete),
		unchokes:      hookCounter(reg, HookUnchoke),
		starts:        hookCounter(reg, HookTransferStart),
		finishes:      hookCounter(reg, HookTransferFinish),
		credits:       hookCounter(reg, HookCredit),
		frCredits:     hookCounter(reg, HookFreeRiderCredit),
		seederExits:   hookCounter(reg, HookSeederExit),
		samples:       hookCounter(reg, HookSample),
		creditedBytes: reg.Counter("sim_credited_bytes_total"),
		frBytes:       reg.Counter("sim_free_rider_credited_bytes_total"),
		transferBytes: reg.Histogram("sim_transfer_bytes"),
		transferDurNs: reg.Histogram("sim_transfer_duration_ns"),
		activePeers:   reg.Gauge("sim_active_peers"),
	}
}

// BeginRun implements Probe as a no-op (run shape travels in the
// manifest, not the metric stream).
func (m *Metrics) BeginRun(RunInfo) {}

// PeerJoin implements Probe.
func (m *Metrics) PeerJoin(float64, PeerInfo) {
	m.joins.Inc()
	m.activePeers.Add(1)
}

// PeerLeave implements Probe.
func (m *Metrics) PeerLeave(float64, int) {
	m.leaves.Inc()
	m.activePeers.Add(-1)
}

// PeerAbort implements Probe.
func (m *Metrics) PeerAbort(float64, int) { m.aborts.Inc() }

// PeerBootstrap implements Probe.
func (m *Metrics) PeerBootstrap(float64, int) { m.bootstraps.Inc() }

// PeerComplete implements Probe.
func (m *Metrics) PeerComplete(float64, int) { m.completes.Inc() }

// Unchoke implements Probe.
func (m *Metrics) Unchoke(float64, int, int) { m.unchokes.Inc() }

// TransferStart implements Probe, recording the transfer's link size and
// virtual duration.
func (m *Metrics) TransferStart(_ float64, t Transfer) {
	m.starts.Inc()
	m.transferBytes.Observe(int64(t.Bytes))
	m.transferDurNs.Observe(int64(t.Duration * 1e9))
}

// TransferFinish implements Probe.
func (m *Metrics) TransferFinish(float64, Transfer) { m.finishes.Inc() }

// Credit implements Probe.
func (m *Metrics) Credit(_ float64, c CreditInfo) {
	m.credits.Inc()
	m.creditedBytes.Add(int64(c.Bytes))
}

// FreeRiderCredit implements Probe.
func (m *Metrics) FreeRiderCredit(_ float64, _ int, bytes float64) {
	m.frCredits.Inc()
	m.frBytes.Add(int64(bytes))
}

// SeederExit implements Probe.
func (m *Metrics) SeederExit(float64) { m.seederExits.Inc() }

// Sample implements Probe.
func (m *Metrics) Sample(float64) { m.samples.Inc() }

// EndRun implements Probe as a no-op.
func (m *Metrics) EndRun(float64) {}
