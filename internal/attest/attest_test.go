package attest

import (
	"crypto/hmac"
	"crypto/sha256"
	"errors"
	"testing"
)

// newTestPair returns a directory with two registered peers plus their keys.
func newTestPair(t *testing.T) (*Directory, *Key, *Key) {
	t.Helper()
	dir := NewDirectory()
	a := NewKeyFromSeed(1, 42)
	b := NewKeyFromSeed(2, 42)
	dir.Register(1, a.Identity())
	dir.Register(2, b.Identity())
	return dir, a, b
}

func TestAttestVerifyBothSchemes(t *testing.T) {
	dir, _, b := newTestPair(t)
	v := NewVerifier(dir)
	for _, scheme := range []Scheme{SchemeEd25519, SchemeSession} {
		att := b.Attest(scheme, 1, 7, [32]byte{0xaa}, 4096)
		if att.Sender != 1 || att.Receiver != 2 || att.Seq == 0 {
			t.Fatalf("%v: bad attestation fields: %+v", scheme, att)
		}
		if err := v.Verify(att); err != nil {
			t.Fatalf("%v: genuine receipt rejected: %v", scheme, err)
		}
	}
}

func TestVerifyRejectsTamperedFields(t *testing.T) {
	dir, _, b := newTestPair(t)
	for _, scheme := range []Scheme{SchemeEd25519, SchemeSession} {
		base := b.Attest(scheme, 1, 7, [32]byte{0xaa}, 4096)
		mutations := map[string]func(*Attestation){
			"sender":   func(a *Attestation) { a.Sender = 3 },
			"index":    func(a *Attestation) { a.Index = 8 },
			"hash":     func(a *Attestation) { a.Hash[0] ^= 1 },
			"bytes":    func(a *Attestation) { a.Bytes++ },
			"seq":      func(a *Attestation) { a.Seq++ },
			"sig":      func(a *Attestation) { a.Sig[0] ^= 1 },
			"receiver": func(a *Attestation) { a.Receiver = 1; a.Sender = 2 },
		}
		for name, mutate := range mutations {
			v := NewVerifier(dir)
			att := base
			mutate(&att)
			if err := v.Verify(att); err == nil {
				t.Errorf("%v: tampered %s accepted", scheme, name)
			}
		}
	}
}

func TestVerifyRejectsReplay(t *testing.T) {
	dir, _, b := newTestPair(t)
	v := NewVerifier(dir)
	att := b.Attest(SchemeEd25519, 1, 0, [32]byte{}, 100)
	if err := v.Verify(att); err != nil {
		t.Fatalf("first use rejected: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := v.Verify(att); !errors.Is(err, ErrReplayed) {
			t.Fatalf("replay %d: got %v, want ErrReplayed", i, err)
		}
	}
	// Check is stateless: the spent receipt still audits as genuine.
	if err := v.Check(att); err != nil {
		t.Fatalf("Check after spend: %v", err)
	}
}

func TestVerifyToleratesReorderWithinWindow(t *testing.T) {
	dir, _, b := newTestPair(t)
	v := NewVerifier(dir)
	var atts []Attestation
	for i := 0; i < 10; i++ {
		atts = append(atts, b.Attest(SchemeSession, 1, int32(i), [32]byte{}, 100))
	}
	// Deliver out of order: evens first, then odds.
	for i := 0; i < 10; i += 2 {
		if err := v.Verify(atts[i]); err != nil {
			t.Fatalf("even %d: %v", i, err)
		}
	}
	for i := 1; i < 10; i += 2 {
		if err := v.Verify(atts[i]); err != nil {
			t.Fatalf("odd %d: %v", i, err)
		}
	}
	// And every one of them is now spent.
	for i, att := range atts {
		if err := v.Verify(att); !errors.Is(err, ErrReplayed) {
			t.Fatalf("re-spend %d: got %v", i, err)
		}
	}
}

func TestVerifyRejectsStaleBeyondWindow(t *testing.T) {
	dir, _, b := newTestPair(t)
	v := NewVerifier(dir)
	first := b.Attest(SchemeSession, 1, 0, [32]byte{}, 100)
	var last Attestation
	for i := 0; i < windowSpan+1; i++ {
		last = b.Attest(SchemeSession, 1, 0, [32]byte{}, 100)
	}
	if err := v.Verify(last); err != nil {
		t.Fatalf("latest: %v", err)
	}
	if err := v.Verify(first); !errors.Is(err, ErrStale) {
		t.Fatalf("stale: got %v, want ErrStale", err)
	}
}

func TestVerifyRejectsSelfAttestation(t *testing.T) {
	dir, a, _ := newTestPair(t)
	v := NewVerifier(dir)
	att := a.Attest(SchemeEd25519, a.ID(), 0, [32]byte{}, 100)
	if err := v.Verify(att); !errors.Is(err, ErrSelfAttestation) {
		t.Fatalf("got %v, want ErrSelfAttestation", err)
	}
}

func TestVerifyRejectsUnknownSigner(t *testing.T) {
	dir, _, _ := newTestPair(t)
	v := NewVerifier(dir)
	sybil := NewKeyFromSeed(99, 7) // validly signed, never admitted
	att := sybil.Attest(SchemeEd25519, 1, 0, [32]byte{}, 100)
	if err := v.Verify(att); !errors.Is(err, ErrUnknownSigner) {
		t.Fatalf("got %v, want ErrUnknownSigner", err)
	}
}

func TestVerifyRejectsUnsignedClaim(t *testing.T) {
	dir, _, _ := newTestPair(t)
	v := NewVerifier(dir)
	if err := v.Verify(Claim(1, 2, 0, 100)); !errors.Is(err, ErrUnsigned) {
		t.Fatalf("got %v, want ErrUnsigned", err)
	}
	if err := (AcceptAll{}).Verify(Claim(1, 2, 0, 100)); err != nil {
		t.Fatalf("AcceptAll rejected a claim: %v", err)
	}
}

func TestVerifyRejectsSessionWithoutSecret(t *testing.T) {
	dir, _, b := newTestPair(t)
	// Re-admit peer 2 through TOFU: public key only, no session secret.
	dir2 := NewDirectory()
	if err := dir2.Observe(2, b.Public()); err != nil {
		t.Fatal(err)
	}
	_ = dir
	v := NewVerifier(dir2)
	sessionAtt := b.Attest(SchemeSession, 1, 0, [32]byte{}, 100)
	if err := v.Verify(sessionAtt); !errors.Is(err, ErrNoSession) {
		t.Fatalf("session: got %v, want ErrNoSession", err)
	}
	edAtt := b.Attest(SchemeEd25519, 1, 0, [32]byte{}, 100)
	if err := v.Verify(edAtt); err != nil {
		t.Fatalf("ed25519 under TOFU identity: %v", err)
	}
}

func TestDirectorySealAndConflict(t *testing.T) {
	dir := NewDirectory()
	a := NewKeyFromSeed(1, 1)
	if err := dir.Observe(1, a.Public()); err != nil {
		t.Fatal(err)
	}
	// Same key again: fine. Different key for the same ID: conflict.
	if err := dir.Observe(1, a.Public()); err != nil {
		t.Fatalf("re-observe same key: %v", err)
	}
	imposter := NewKeyFromSeed(1, 999)
	if err := dir.Observe(1, imposter.Public()); !errors.Is(err, ErrKeyConflict) {
		t.Fatalf("imposter: got %v, want ErrKeyConflict", err)
	}
	dir.Seal()
	late := NewKeyFromSeed(5, 1)
	if err := dir.Observe(5, late.Public()); !errors.Is(err, ErrSealed) {
		t.Fatalf("sealed observe: got %v, want ErrSealed", err)
	}
	// The authorized path still admits after sealing.
	dir.Register(5, late.Identity())
	if _, ok := dir.Lookup(5); !ok {
		t.Fatal("Register after Seal did not admit")
	}
}

func TestDeterministicKeys(t *testing.T) {
	a1 := NewKeyFromSeed(3, 1234)
	a2 := NewKeyFromSeed(3, 1234)
	if !a1.Public().Equal(a2.Public()) {
		t.Fatal("same (id, seed) produced different keys")
	}
	b := NewKeyFromSeed(4, 1234)
	if a1.Public().Equal(b.Public()) {
		t.Fatal("different ids produced the same key")
	}
}

func TestVerifyBatch(t *testing.T) {
	dir, _, b := newTestPair(t)
	v := NewVerifier(dir)
	var atts []Attestation
	for i := 0; i < 8; i++ {
		atts = append(atts, b.Attest(SchemeEd25519, 1, int32(i), [32]byte{}, 100))
	}
	atts[3].Sig[0] ^= 1          // forged
	atts[6] = atts[5]            // replay within the batch
	atts = append(atts, atts[0]) // replay of an earlier entry
	errs := v.VerifyBatch(atts)
	for i, err := range errs {
		switch i {
		case 3:
			if !errors.Is(err, ErrBadSignature) {
				t.Errorf("entry 3: got %v, want ErrBadSignature", err)
			}
		case 6, 8:
			if !errors.Is(err, ErrReplayed) {
				t.Errorf("entry %d: got %v, want ErrReplayed", i, err)
			}
		default:
			if err != nil {
				t.Errorf("entry %d: %v", i, err)
			}
		}
	}
}

func TestWindowAdmit(t *testing.T) {
	var w window
	seqs := []struct {
		seq   uint64
		ok    bool
		stale bool
	}{
		{5, true, false},
		{5, false, false},
		{3, true, false},
		{200, true, false},
		{200 - windowSpan + 1, true, false}, // oldest still inside
		{200 - windowSpan, false, true},     // just fell out
		{5, false, true},
	}
	for i, s := range seqs {
		ok, stale := w.admit(s.seq)
		if ok != s.ok || stale != s.stale {
			t.Fatalf("step %d seq %d: got ok=%v stale=%v, want ok=%v stale=%v",
				i, s.seq, ok, stale, s.ok, s.stale)
		}
	}
}

// TestHMACSHA256MatchesCrypto pins the open-coded single-block HMAC used on
// the receipt hot path to the crypto/hmac reference for every message length
// it can be handed, so the allocation-free rewrite cannot drift from RFC 2104.
func TestHMACSHA256MatchesCrypto(t *testing.T) {
	var key [32]byte
	for i := range key {
		key[i] = byte(i*7 + 3)
	}
	msg := make([]byte, 64)
	for i := range msg {
		msg[i] = byte(255 - i)
	}
	for n := 0; n <= len(msg); n++ {
		got := hmacSHA256(&key, msg[:n])
		ref := hmac.New(sha256.New, key[:])
		ref.Write(msg[:n])
		if !hmac.Equal(got[:], ref.Sum(nil)) {
			t.Fatalf("hmacSHA256 diverges from crypto/hmac at message length %d", n)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("hmacSHA256 accepted a message over one block")
		}
	}()
	hmacSHA256(&key, make([]byte, 65))
}
