package attest

import (
	"crypto/ed25519"
	"crypto/hmac"
	"runtime"
	"sync"
)

// windowSpan is how far behind the highest admitted sequence a receipt may
// arrive. Receivers assign sequences in order per sender, but escrowed
// (T-Chain) credits can land after later plaintext receipts, so the window
// tolerates bounded reordering without ever re-admitting a spent sequence.
const windowSpan = 128

// window is a DTLS-style anti-replay window: the highest admitted sequence
// plus a bitmap of the windowSpan sequences at and below it. Stored by
// value in the verifier's map so steady-state admission allocates nothing.
type window struct {
	max  uint64
	bits [windowSpan / 64]uint64 // bit 0 of word 0 = max itself
}

// admit marks seq as spent. It reports false if seq was already spent or
// fell behind the window.
func (w *window) admit(seq uint64) (ok bool, stale bool) {
	switch {
	case seq > w.max:
		shift := seq - w.max
		if shift >= windowSpan {
			w.bits = [windowSpan / 64]uint64{}
		} else {
			for ; shift >= 64; shift -= 64 {
				w.bits[1] = w.bits[0]
				w.bits[0] = 0
			}
			if shift > 0 {
				w.bits[1] = w.bits[1]<<shift | w.bits[0]>>(64-shift)
				w.bits[0] <<= shift
			}
		}
		w.max = seq
		w.bits[0] |= 1
		return true, false
	case w.max-seq >= windowSpan:
		return false, true
	default:
		off := w.max - seq
		word, bit := off/64, off%64
		if w.bits[word]&(1<<bit) != 0 {
			return false, false
		}
		w.bits[word] |= 1 << bit
		return true, false
	}
}

// Verifier enforces the full attestation contract against a directory:
// no self-attestation, signer admitted, signature valid, sequence fresh.
// Verify spends sequences; Check is the stateless variant for audits.
type Verifier struct {
	dir *Directory

	mu       sync.Mutex
	windows  map[uint64]window   // (receiver, sender) pair → replay window
	pairKeys map[uint64][32]byte // cached session MAC keys per pair
}

// NewVerifier returns a verifier trusting identities admitted to dir.
func NewVerifier(dir *Directory) *Verifier {
	return &Verifier{
		dir:      dir,
		windows:  make(map[uint64]window),
		pairKeys: make(map[uint64][32]byte),
	}
}

// pairID packs the directional (receiver, sender) pair into one map key.
func pairID(receiver, sender int32) uint64 {
	return uint64(uint32(receiver))<<32 | uint64(uint32(sender))
}

// checkSig validates everything about att except sequence freshness.
func (v *Verifier) checkSig(att *Attestation) error {
	if att.Sender == att.Receiver {
		return ErrSelfAttestation
	}
	if att.Scheme == SchemeNone {
		return ErrUnsigned
	}
	ident, ok := v.dir.Lookup(att.Receiver)
	if !ok {
		return ErrUnknownSigner
	}
	var canonical [canonicalSize]byte
	c := att.AppendCanonical(canonical[:0])
	switch att.Scheme {
	case SchemeEd25519:
		if !ed25519.Verify(ident.PubKey, c, att.Sig[:]) {
			return ErrBadSignature
		}
	case SchemeSession:
		if !ident.HasSession {
			return ErrNoSession
		}
		pair := pairID(att.Receiver, att.Sender)
		v.mu.Lock()
		pk, ok := v.pairKeys[pair]
		if !ok {
			pk = pairMACKey(&ident.Session, att.Sender)
			v.pairKeys[pair] = pk
		}
		v.mu.Unlock()
		tag := sessionTag(&pk, c)
		if !hmac.Equal(tag[:], att.Sig[:macSize]) {
			return ErrBadSignature
		}
	default:
		return ErrBadScheme
	}
	return nil
}

// admitSeq spends att's sequence number, rejecting replays and receipts
// that fell behind the reorder window. Sequence 0 is never assigned by a
// Key and is always rejected.
func (v *Verifier) admitSeq(att *Attestation) error {
	if att.Seq == 0 {
		return ErrReplayed
	}
	pair := pairID(att.Receiver, att.Sender)
	v.mu.Lock()
	w := v.windows[pair]
	ok, stale := w.admit(att.Seq)
	if ok {
		v.windows[pair] = w
	}
	v.mu.Unlock()
	if stale {
		return ErrStale
	}
	if !ok {
		return ErrReplayed
	}
	return nil
}

// Verify validates att and spends its sequence number. A nil return means
// the receipt is genuine, fresh, and will never verify again.
func (v *Verifier) Verify(att Attestation) error {
	if err := v.checkSig(&att); err != nil {
		return err
	}
	return v.admitSeq(&att)
}

// Check validates att's signature and admission without consuming replay
// state: the audit path (the /verify endpoint, witness-receipt checks). A
// receipt that passes Check may still be rejected by Verify as a replay.
func (v *Verifier) Check(att Attestation) error {
	return v.checkSig(&att)
}

// VerifyBatch validates a batch, fanning the signature checks across CPUs
// and then admitting sequences in batch order. The returned slice has one
// entry per attestation, nil for the valid ones. Ed25519 verification
// dominates batch cost, so the parallel section is the signature pass.
func (v *Verifier) VerifyBatch(atts []Attestation) []error {
	errs := make([]error, len(atts))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(atts) {
		workers = len(atts)
	}
	if workers > 1 {
		var next int
		var mu sync.Mutex
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					mu.Lock()
					i := next
					next++
					mu.Unlock()
					if i >= len(atts) {
						return
					}
					errs[i] = v.checkSig(&atts[i])
				}
			}()
		}
		wg.Wait()
	} else {
		for i := range atts {
			errs[i] = v.checkSig(&atts[i])
		}
	}
	for i := range atts {
		if errs[i] == nil {
			errs[i] = v.admitSeq(&atts[i])
		}
	}
	return errs
}
