// Package attest implements cryptographically verifiable transfer
// attestations: signed receipts proving "Sender uploaded piece Index
// (content hash Hash, Bytes bytes) to Receiver".
//
// The receiver signs, not the sender. A peer can always sign claims about
// its own contributions, so sender-signed receipts would leave the paper's
// false-praise attack (Table III) wide open; requiring the downloader's
// signature means inflating your reputation needs a counterparty's private
// key. Replays of a genuine receipt are suppressed by a per-(receiver,
// sender) sequence window, and Sybil-minted identities fail the directory
// lookup, so a valid attestation is spendable exactly once and only by the
// peer that actually received the data.
//
// Two signature schemes share one attestation shape:
//
//   - SchemeEd25519 signs with the receiver's long-term identity key.
//     Used for T-Chain witness receipts, cross-process swarms (coopnode),
//     and audits — anywhere the verifier may only know the public key.
//   - SchemeSession MACs with a pairwise HMAC-SHA256 key derived from the
//     receiver's registered session secret. This is the stand-in for the
//     handshake-derived record keys real transports negotiate: identity
//     keys sign once at admission, per-piece receipts ride the ~50× cheaper
//     MAC. High-rate in-process swarms use it so verification stays off the
//     throughput critical path.
//
// SchemeNone marks an unsigned claim — the paper's trust-the-report world.
// A strict Verifier rejects it; the AcceptAll policy (which models the
// paper's unverified baseline for simulation) accepts it.
package attest

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"errors"
)

// Scheme selects how an attestation is signed.
type Scheme uint8

// The signature schemes.
const (
	// SchemeNone is an unsigned claim; only AcceptAll admits it.
	SchemeNone Scheme = iota
	// SchemeEd25519 is a signature by the receiver's identity key.
	SchemeEd25519
	// SchemeSession is an HMAC-SHA256 tag under the pairwise session key.
	SchemeSession
)

// String returns the scheme name.
func (s Scheme) String() string {
	switch s {
	case SchemeNone:
		return "none"
	case SchemeEd25519:
		return "ed25519"
	case SchemeSession:
		return "session"
	default:
		return "scheme(?)"
	}
}

// SigSize is the attestation signature field width (an Ed25519 signature;
// session MACs use the first 32 bytes and zero the rest).
const SigSize = ed25519.SignatureSize

// macSize is the session-MAC tag width within Sig.
const macSize = sha256.Size

// Attestation is one signed transfer receipt: Receiver attests that Sender
// delivered piece Index with content hash Hash and payload size Bytes. Seq
// is assigned by the receiver per sender, strictly increasing from 1, and
// anchors replay suppression.
type Attestation struct {
	Sender   int32
	Receiver int32
	Index    int32
	Hash     [32]byte
	Bytes    int64
	Seq      uint64
	Scheme   Scheme
	Sig      [SigSize]byte
}

// canonicalSize is the length of the signed canonical encoding.
const canonicalSize = 4 + 4 + 4 + 32 + 8 + 8 + 1

// AppendCanonical appends the canonical signed encoding — every field
// except the signature, fixed-width big-endian — to dst and returns the
// extended buffer. Signers and verifiers must agree on this byte string
// exactly; including the scheme tag prevents cross-scheme confusion.
func (a *Attestation) AppendCanonical(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(a.Sender))
	dst = binary.BigEndian.AppendUint32(dst, uint32(a.Receiver))
	dst = binary.BigEndian.AppendUint32(dst, uint32(a.Index))
	dst = append(dst, a.Hash[:]...)
	dst = binary.BigEndian.AppendUint64(dst, uint64(a.Bytes))
	dst = binary.BigEndian.AppendUint64(dst, a.Seq)
	dst = append(dst, byte(a.Scheme))
	return dst
}

// Claim returns an unsigned SchemeNone attestation. It models the paper's
// unverified world: a bare report that Sender delivered piece Index of n
// bytes to Receiver. Only the AcceptAll policy credits claims.
func Claim(sender, receiver, index int32, n int64) Attestation {
	return Attestation{Sender: sender, Receiver: receiver, Index: index, Bytes: n}
}

// Verification errors.
var (
	// ErrSelfAttestation rejects receipts where a peer vouches for itself.
	ErrSelfAttestation = errors.New("attest: sender and receiver are the same peer")
	// ErrUnknownSigner rejects receipts signed by an identity the directory
	// has never admitted — the Sybil case.
	ErrUnknownSigner = errors.New("attest: signer not in directory")
	// ErrBadSignature rejects receipts whose signature does not verify —
	// the forgery case.
	ErrBadSignature = errors.New("attest: signature verification failed")
	// ErrReplayed rejects receipts whose sequence number was already spent.
	ErrReplayed = errors.New("attest: sequence already used (replay)")
	// ErrStale rejects receipts that fell behind the replay window.
	ErrStale = errors.New("attest: sequence below replay window")
	// ErrUnsigned rejects SchemeNone claims under a strict verifier.
	ErrUnsigned = errors.New("attest: unsigned claim rejected")
	// ErrNoSession rejects session-MAC receipts from identities that
	// registered no session secret (e.g. TOFU-observed remote peers).
	ErrNoSession = errors.New("attest: no session secret for signer")
	// ErrBadScheme rejects unknown scheme tags.
	ErrBadScheme = errors.New("attest: unknown signature scheme")
)

// Policy decides whether an attestation is sufficient evidence to credit
// reputation. The reputation ledger consults its policy before every
// mutation: Verifier enforces the full cryptographic contract, AcceptAll
// reproduces the paper's trust-the-report baseline.
type Policy interface {
	Verify(att Attestation) error
}

// AcceptAll is the paper's unverified world as a policy: every claim is
// credited, signed or not. The simulator uses it by default so the
// incentive analysis (and its attack susceptibilities, Table III) matches
// the paper; flipping a swarm to a strict Verifier is what closes those
// attacks.
type AcceptAll struct{}

// Verify accepts every attestation.
func (AcceptAll) Verify(Attestation) error { return nil }

// pairMACKey derives the directional MAC key receiver→sender from the
// receiver's session secret. The sender ID is bound into the derivation so
// a tag computed for one counterparty cannot be replayed as another's.
func pairMACKey(session *[32]byte, sender int32) [32]byte {
	var ctx [5]byte
	ctx[0] = 'p' // domain: pairwise receipt key
	binary.BigEndian.PutUint32(ctx[1:5], uint32(sender))
	return hmacSHA256(session, ctx[:])
}

// sessionTag computes the session-MAC tag for canonical bytes under a
// pairwise key.
func sessionTag(pairKey *[32]byte, canonical []byte) [macSize]byte {
	return hmacSHA256(pairKey, canonical)
}

// hmacSHA256 is HMAC-SHA256 restricted to a 32-byte key and a single-block
// message, computed over stack buffers. crypto/hmac allocates two digests
// and an interface per New, which at per-piece receipt rates was the
// delivery path's dominant allocation source; this open-coded equivalent
// allocates nothing. Equivalence with crypto/hmac is pinned by a test.
func hmacSHA256(key *[32]byte, msg []byte) [32]byte {
	const blockSize = 64 // sha256 block size; both messages here fit one block
	if len(msg) > blockSize {
		panic("attest: hmacSHA256 message exceeds one block")
	}
	var inner [blockSize + blockSize]byte
	var outer [blockSize + sha256.Size]byte
	for i := 0; i < blockSize; i++ {
		inner[i] = 0x36
		outer[i] = 0x5c
	}
	for i, b := range key {
		inner[i] ^= b
		outer[i] ^= b
	}
	n := copy(inner[blockSize:], msg)
	digest := sha256.Sum256(inner[:blockSize+n])
	copy(outer[blockSize:], digest[:])
	return sha256.Sum256(outer[:])
}
