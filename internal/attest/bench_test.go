package attest

import "testing"

// The bench.sh attest target records these: the Ed25519 identity-signature
// cost (admission, witness receipts, cross-process swarms) and the session
// MAC cost (per-piece receipts on the cluster hot path). The gap between
// them is why the two-scheme design exists.

func benchPair(b *testing.B) (*Verifier, *Key) {
	b.Helper()
	dir := NewDirectory()
	recv := NewKeyFromSeed(2, 42)
	dir.Register(1, NewKeyFromSeed(1, 42).Identity())
	dir.Register(2, recv.Identity())
	return NewVerifier(dir), recv
}

func BenchmarkAttestSignEd25519(b *testing.B) {
	_, recv := benchPair(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		recv.Attest(SchemeEd25519, 1, int32(i), [32]byte{}, 4096)
	}
}

func BenchmarkAttestVerifyEd25519(b *testing.B) {
	v, recv := benchPair(b)
	att := recv.Attest(SchemeEd25519, 1, 0, [32]byte{}, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := v.Check(att); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAttestVerifyBatchEd25519(b *testing.B) {
	v, recv := benchPair(b)
	const batch = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		atts := make([]Attestation, batch)
		for j := range atts {
			atts[j] = recv.Attest(SchemeEd25519, 1, int32(j), [32]byte{}, 4096)
		}
		b.StartTimer()
		errs := v.VerifyBatch(atts)
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAttestSignSession(b *testing.B) {
	_, recv := benchPair(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		recv.Attest(SchemeSession, 1, int32(i), [32]byte{}, 4096)
	}
}

func BenchmarkAttestVerifySession(b *testing.B) {
	v, recv := benchPair(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		att := recv.Attest(SchemeSession, 1, int32(i), [32]byte{}, 4096)
		if err := v.Verify(att); err != nil {
			b.Fatal(err)
		}
	}
}
