package attest

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
)

// Key is one peer's attestation identity: an Ed25519 keypair for identity
// signatures, a session secret for cheap pairwise MACs, and the per-sender
// sequence counters this peer assigns when signing receipts. Safe for
// concurrent use — a live node signs from several handler goroutines.
type Key struct {
	id      int32
	priv    ed25519.PrivateKey
	pub     ed25519.PublicKey
	session [32]byte

	mu       sync.Mutex
	seq      map[int32]uint64   // next unassigned Seq per counterparty sender
	pairKeys map[int32][32]byte // cached pairwise MAC keys
}

// NewKey generates a fresh random identity for peer id.
func NewKey(id int32) (*Key, error) {
	var seed [ed25519.SeedSize]byte
	if _, err := rand.Read(seed[:]); err != nil {
		return nil, fmt.Errorf("attest: generating key: %w", err)
	}
	return newKey(id, seed), nil
}

// NewKeyFromSeed derives a deterministic identity for peer id from a swarm
// seed. Clusters and simulations use it so a run's key material — and
// therefore every signature — is reproducible; the derivation domain
// separates the Ed25519 seed from the session secret.
func NewKeyFromSeed(id int32, seed int64) *Key {
	var material [13]byte
	material[0] = 'k' // domain: identity seed
	binary.BigEndian.PutUint32(material[1:5], uint32(id))
	binary.BigEndian.PutUint64(material[5:13], uint64(seed))
	edSeed := sha256.Sum256(material[:])
	return newKey(id, edSeed)
}

func newKey(id int32, edSeed [ed25519.SeedSize]byte) *Key {
	k := &Key{
		id:       id,
		priv:     ed25519.NewKeyFromSeed(edSeed[:]),
		seq:      make(map[int32]uint64),
		pairKeys: make(map[int32][32]byte),
	}
	k.pub = k.priv.Public().(ed25519.PublicKey)
	// The session secret is independent of the Ed25519 scalar but derived
	// from the same seed, so one registration carries both.
	var sessMaterial [ed25519.SeedSize + 1]byte
	sessMaterial[0] = 's' // domain: session secret
	copy(sessMaterial[1:], edSeed[:])
	k.session = sha256.Sum256(sessMaterial[:])
	return k
}

// ID returns the peer ID this key attests as.
func (k *Key) ID() int32 { return k.id }

// Public returns the Ed25519 public key.
func (k *Key) Public() ed25519.PublicKey { return k.pub }

// Identity returns the registration record for this key: the public key
// plus the session secret. Register it with an in-process Directory;
// cross-process peers learn only the public half (via Hello) and must use
// SchemeEd25519.
func (k *Key) Identity() Identity {
	return Identity{PubKey: k.pub, Session: k.session, HasSession: true}
}

// Attest signs a receipt as this key's peer (the receiver): "sender
// delivered piece index, content hash hash, n bytes". It assigns the next
// sequence number for that sender and signs under the requested scheme.
func (k *Key) Attest(scheme Scheme, sender, index int32, hash [32]byte, n int64) Attestation {
	att := Attestation{
		Sender:   sender,
		Receiver: k.id,
		Index:    index,
		Hash:     hash,
		Bytes:    n,
		Scheme:   scheme,
	}
	var pairKey [32]byte
	k.mu.Lock()
	k.seq[sender]++
	att.Seq = k.seq[sender]
	if scheme == SchemeSession {
		pk, ok := k.pairKeys[sender]
		if !ok {
			pk = pairMACKey(&k.session, sender)
			k.pairKeys[sender] = pk
		}
		pairKey = pk
	}
	k.mu.Unlock()

	var canonical [canonicalSize]byte
	c := att.AppendCanonical(canonical[:0])
	switch scheme {
	case SchemeEd25519:
		copy(att.Sig[:], ed25519.Sign(k.priv, c))
	case SchemeSession:
		tag := sessionTag(&pairKey, c)
		copy(att.Sig[:], tag[:])
	case SchemeNone:
		// unsigned claim — nothing to do
	}
	return att
}
