package attest

import (
	"crypto/ed25519"
	"crypto/subtle"
	"errors"
	"fmt"
	"sync"
)

// Identity is one admitted peer's verification material. HasSession marks
// identities registered in-process with their session secret; identities
// learned over the wire carry only the public key and can verify
// SchemeEd25519 receipts alone.
type Identity struct {
	PubKey     ed25519.PublicKey
	Session    [32]byte
	HasSession bool
}

// Directory errors.
var (
	// ErrSealed rejects trust-on-first-use observations after Seal.
	ErrSealed = errors.New("attest: directory sealed, new identities rejected")
	// ErrKeyConflict rejects an observation that contradicts an already
	// pinned key for the same peer ID.
	ErrKeyConflict = errors.New("attest: conflicting key for peer")
)

// Directory maps peer IDs to admitted identities. It is the membership
// root of trust: a Verifier only accepts receipts signed by directory
// identities, so whoever controls admission controls who can mint
// reputation.
//
// Two admission paths with different trust:
//
//   - Register is the authorized path — the cluster (or operator) vouches
//     for the binding. It always succeeds and may rotate a key.
//   - Observe is trust-on-first-use — a previously unseen peer's Hello
//     pins its public key; later conflicting keys are rejected. Open TOFU
//     admits Sybils by construction (anyone can mint a key), which is the
//     documented tradeoff for cross-process swarms without a CA; sealed
//     directories refuse TOFU entirely, closing the Sybil door for
//     closed-membership clusters.
type Directory struct {
	mu     sync.RWMutex
	ids    map[int32]Identity
	sealed bool
}

// NewDirectory returns an empty open directory.
func NewDirectory() *Directory {
	return &Directory{ids: make(map[int32]Identity)}
}

// Register admits (or rotates) an identity through the authorized path.
func (d *Directory) Register(id int32, ident Identity) {
	d.mu.Lock()
	d.ids[id] = ident
	d.mu.Unlock()
}

// Observe pins a public key for id on first use. It fails with ErrSealed
// on a sealed directory and ErrKeyConflict if id is already bound to a
// different key; re-observing the same key is a no-op.
func (d *Directory) Observe(id int32, pub ed25519.PublicKey) error {
	if len(pub) != ed25519.PublicKeySize {
		return fmt.Errorf("attest: observing peer %d: bad public key length %d", id, len(pub))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if existing, ok := d.ids[id]; ok {
		if subtle.ConstantTimeCompare(existing.PubKey, pub) != 1 {
			return fmt.Errorf("%w %d", ErrKeyConflict, id)
		}
		return nil
	}
	if d.sealed {
		return ErrSealed
	}
	cp := make(ed25519.PublicKey, ed25519.PublicKeySize)
	copy(cp, pub)
	d.ids[id] = Identity{PubKey: cp}
	return nil
}

// Seal closes membership: subsequent Observe calls for unknown peers fail.
// Register remains available to the authorized path (e.g. Cluster.Join).
func (d *Directory) Seal() {
	d.mu.Lock()
	d.sealed = true
	d.mu.Unlock()
}

// Lookup returns the identity admitted for id.
func (d *Directory) Lookup(id int32) (Identity, bool) {
	d.mu.RLock()
	ident, ok := d.ids[id]
	d.mu.RUnlock()
	return ident, ok
}

// Len returns the number of admitted identities.
func (d *Directory) Len() int {
	d.mu.RLock()
	n := len(d.ids)
	d.mu.RUnlock()
	return n
}
