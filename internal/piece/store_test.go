package piece

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

func testContent(n int) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(i * 31)
	}
	return buf
}

func TestNewManifest(t *testing.T) {
	content := testContent(100)
	m, err := NewManifest(content, 30)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumPieces() != 4 {
		t.Errorf("NumPieces = %d, want 4", m.NumPieces())
	}
	if m.PieceLength(0) != 30 || m.PieceLength(3) != 10 {
		t.Errorf("lengths: %d, %d", m.PieceLength(0), m.PieceLength(3))
	}
	if m.PieceLength(-1) != 0 || m.PieceLength(4) != 0 {
		t.Error("out-of-range PieceLength not 0")
	}
}

func TestNewManifestExactMultiple(t *testing.T) {
	m, err := NewManifest(testContent(90), 30)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumPieces() != 3 || m.PieceLength(2) != 30 {
		t.Errorf("pieces=%d lastLen=%d", m.NumPieces(), m.PieceLength(2))
	}
}

func TestNewManifestErrors(t *testing.T) {
	if _, err := NewManifest(nil, 10); err == nil {
		t.Error("empty content accepted")
	}
	if _, err := NewManifest(testContent(10), 0); err == nil {
		t.Error("zero piece size accepted")
	}
}

func TestStorePutGetVerify(t *testing.T) {
	content := testContent(100)
	m, _ := NewManifest(content, 40)
	s := NewStore(m)

	if err := s.Put(0, content[:40]); err != nil {
		t.Fatal(err)
	}
	if !s.Has(0) || s.Count() != 1 {
		t.Error("piece not recorded")
	}
	got, err := s.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content[:40]) {
		t.Error("Get returned wrong data")
	}
	// Returned slice is a copy.
	got[0] ^= 0xff
	again, _ := s.Get(0)
	if !bytes.Equal(again, content[:40]) {
		t.Error("Get exposes internal buffer")
	}

	if err := s.Put(1, content[:40]); !errors.Is(err, ErrHashMismatch) {
		t.Errorf("forged piece err = %v, want ErrHashMismatch", err)
	}
	if err := s.Put(99, nil); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("bad index err = %v, want ErrOutOfRange", err)
	}
	if _, err := s.Get(2); !errors.Is(err, ErrNotHeld) {
		t.Errorf("missing Get err = %v, want ErrNotHeld", err)
	}
	// Idempotent re-put.
	if err := s.Put(0, content[:40]); err != nil {
		t.Errorf("re-put err = %v", err)
	}
}

func TestSeedStoreAndAssemble(t *testing.T) {
	content := testContent(100)
	m, _ := NewManifest(content, 33)
	seed, err := NewSeedStore(m, content)
	if err != nil {
		t.Fatal(err)
	}
	if !seed.Complete() {
		t.Fatal("seed not complete")
	}
	out, err := seed.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, content) {
		t.Error("assembled file differs")
	}

	partial := NewStore(m)
	if _, err := partial.Assemble(); !errors.Is(err, ErrNotHeld) {
		t.Errorf("partial Assemble err = %v", err)
	}
	if _, err := NewSeedStore(m, content[:10]); err == nil {
		t.Error("short content accepted for seeding")
	}
}

func TestSyntheticManifest(t *testing.T) {
	m, err := SyntheticManifest(16, 64)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumPieces() != 16 || m.FileSize != 1024 {
		t.Errorf("manifest %d pieces, %d bytes", m.NumPieces(), m.FileSize)
	}
	// Synthetic pieces verify against their manifest.
	s := NewStore(m)
	for i := 0; i < 16; i++ {
		if err := s.Put(i, SyntheticPiece(i, 64)); err != nil {
			t.Fatalf("synthetic piece %d rejected: %v", i, err)
		}
	}
	if !s.Complete() {
		t.Error("store incomplete")
	}
	// Distinct pieces have distinct content.
	if bytes.Equal(SyntheticPiece(0, 64), SyntheticPiece(1, 64)) {
		t.Error("synthetic pieces identical")
	}
	if _, err := SyntheticManifest(0, 64); err == nil {
		t.Error("zero pieces accepted")
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	m, _ := SyntheticManifest(64, 32)
	s := NewStore(m)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := s.Put(i, SyntheticPiece(i, 32)); err != nil {
				t.Error(err)
			}
			s.Has(i)
			s.Count()
			s.Bitfield()
		}(i)
	}
	wg.Wait()
	if s.Count() != 64 {
		t.Errorf("Count = %d, want 64", s.Count())
	}
}

func TestStoreBitfieldSnapshot(t *testing.T) {
	m, _ := SyntheticManifest(8, 16)
	s := NewStore(m)
	bf := s.Bitfield()
	if err := s.Put(0, SyntheticPiece(0, 16)); err != nil {
		t.Fatal(err)
	}
	if bf.Has(0) {
		t.Error("snapshot mutated by later Put")
	}
}
