package piece

import (
	"math/rand"
)

// Availability tracks, for each piece index, how many peers in a view hold
// it. Swarm simulators maintain one global instance; live nodes maintain one
// per neighborhood. Not safe for concurrent use.
type Availability struct {
	counts []int
}

// NewAvailability returns a zeroed availability index over numPieces pieces.
func NewAvailability(numPieces int) *Availability {
	return &Availability{counts: make([]int, numPieces)}
}

// AddPiece records that one more peer holds piece i.
func (a *Availability) AddPiece(i int) {
	if i >= 0 && i < len(a.counts) {
		a.counts[i]++
	}
}

// RemovePiece records that one fewer peer holds piece i (e.g., peer left).
func (a *Availability) RemovePiece(i int) {
	if i >= 0 && i < len(a.counts) && a.counts[i] > 0 {
		a.counts[i]--
	}
}

// AddBitfield records every piece in b as held by one more peer.
func (a *Availability) AddBitfield(b *Bitfield) {
	for _, i := range b.Indices() {
		a.AddPiece(i)
	}
}

// RemoveBitfield reverses AddBitfield.
func (a *Availability) RemoveBitfield(b *Bitfield) {
	for _, i := range b.Indices() {
		a.RemovePiece(i)
	}
}

// Count returns the availability of piece i.
func (a *Availability) Count(i int) int {
	if i < 0 || i >= len(a.counts) {
		return 0
	}
	return a.counts[i]
}

// RarestFirst picks from candidates the piece with the lowest availability,
// breaking ties uniformly at random (the paper assumes pieces are equally
// likely to be held, which local-rarest-first approximates). It returns -1
// for an empty candidate set.
func (a *Availability) RarestFirst(rng *rand.Rand, candidates []int) int {
	if len(candidates) == 0 {
		return -1
	}
	best := -1
	bestCount := int(^uint(0) >> 1)
	ties := 0
	for _, c := range candidates {
		count := a.Count(c)
		switch {
		case count < bestCount:
			best, bestCount, ties = c, count, 1
		case count == bestCount:
			// Reservoir-sample among ties so selection stays uniform without
			// a second pass.
			ties++
			if rng.Intn(ties) == 0 {
				best = c
			}
		}
	}
	return best
}

// RandomPiece picks uniformly from candidates, or -1 if empty. Used by
// strategies that do not employ rarest-first (e.g., pure altruism variants).
func RandomPiece(rng *rand.Rand, candidates []int) int {
	if len(candidates) == 0 {
		return -1
	}
	return candidates[rng.Intn(len(candidates))]
}
