package piece

import (
	"math/bits"
	"math/rand"
)

// Availability tracks, for each piece index, how many peers in a view hold
// it, alongside a rarity histogram: hist[c] counts the pieces held by exactly
// c peers, and the minimum occupied bucket is maintained incrementally so the
// current rarity floor is an O(1) query. Swarm simulators maintain one global
// instance; live nodes maintain one per neighborhood. Not safe for concurrent
// use.
type Availability struct {
	counts []int
	hist   []int // hist[c] = number of pieces with availability exactly c
	minC   int   // smallest c with hist[c] > 0; 0 for an empty piece space
}

// NewAvailability returns a zeroed availability index over numPieces pieces.
func NewAvailability(numPieces int) *Availability {
	a := &Availability{
		counts: make([]int, numPieces),
		hist:   make([]int, 1, 64),
	}
	a.hist[0] = numPieces
	return a
}

// AddPiece records that one more peer holds piece i.
func (a *Availability) AddPiece(i int) {
	if i < 0 || i >= len(a.counts) {
		return
	}
	c := a.counts[i]
	a.counts[i] = c + 1
	a.hist[c]--
	if c+1 >= len(a.hist) {
		a.hist = append(a.hist, 0)
	}
	a.hist[c+1]++
	// The minimum bucket only drains upward; sum(hist) is constant, so the
	// walk terminates and is amortized O(1) across a run.
	for a.minC < len(a.hist)-1 && a.hist[a.minC] == 0 {
		a.minC++
	}
}

// RemovePiece records that one fewer peer holds piece i (e.g., peer left).
func (a *Availability) RemovePiece(i int) {
	if i < 0 || i >= len(a.counts) || a.counts[i] == 0 {
		return
	}
	c := a.counts[i]
	a.counts[i] = c - 1
	a.hist[c]--
	a.hist[c-1]++
	if c-1 < a.minC {
		a.minC = c - 1
	}
}

// AddBitfield records every piece in b as held by one more peer.
func (a *Availability) AddBitfield(b *Bitfield) {
	b.ForEach(a.AddPiece)
}

// RemoveBitfield reverses AddBitfield.
func (a *Availability) RemoveBitfield(b *Bitfield) {
	b.ForEach(a.RemovePiece)
}

// Count returns the availability of piece i.
func (a *Availability) Count(i int) int {
	if i < 0 || i >= len(a.counts) {
		return 0
	}
	return a.counts[i]
}

// MinCount returns the lowest availability across all pieces — the rarity
// floor — in O(1). An empty piece space reports 0.
func (a *Availability) MinCount() int { return a.minC }

// Histogram returns a copy of the rarity histogram: the element at index c is
// the number of pieces held by exactly c peers. Intended for diagnostics and
// invariant checks, not hot paths.
func (a *Availability) Histogram() []int {
	out := make([]int, len(a.hist))
	copy(out, a.hist)
	return out
}

// RarestFirst picks from candidates the piece with the lowest availability,
// breaking ties uniformly at random (the paper assumes pieces are equally
// likely to be held, which local-rarest-first approximates). It returns -1
// for an empty candidate set.
func (a *Availability) RarestFirst(rng *rand.Rand, candidates []int) int {
	if len(candidates) == 0 {
		return -1
	}
	best := -1
	bestCount := int(^uint(0) >> 1)
	ties := 0
	for _, c := range candidates {
		count := a.Count(c)
		switch {
		case count < bestCount:
			best, bestCount, ties = c, count, 1
		case count == bestCount:
			// Reservoir-sample among ties so selection stays uniform without
			// a second pass.
			ties++
			if rng.Intn(ties) == 0 {
				best = c
			}
		}
	}
	return best
}

// SelectRarestMissing picks, local-rarest-first with uniform tie-breaking, a
// piece that from holds and have lacks, excluding pieces marked in pending.
// A nil from means the sender holds everything (the seeder); a nil pending
// excludes nothing. It is the fused, allocation-free equivalent of
// have.MissingFrom(from) followed by a pending filter and RarestFirst: it
// visits the same candidates in the same ascending order and consumes exactly
// the same rng draws, so simulations that switch to it replay byte-for-byte.
// The reservoir tie-breaking is why the scan cannot stop early — a later
// candidate tying the current best must still consume a draw — so the win
// here is eliminating the candidate-slice allocation, not the scan itself.
func (a *Availability) SelectRarestMissing(rng *rand.Rand, have, from, pending *Bitfield) int {
	if have == nil {
		return -1
	}
	best := -1
	bestCount := int(^uint(0) >> 1)
	ties := 0
	for w := range have.words {
		var cand uint64
		if from == nil {
			cand = ^have.words[w]
		} else if w < len(from.words) {
			cand = from.words[w] &^ have.words[w]
		}
		if pending != nil && w < len(pending.words) {
			cand &^= pending.words[w]
		}
		for cand != 0 {
			idx := w*64 + bits.TrailingZeros64(cand)
			if idx >= have.size {
				break
			}
			count := 0
			if idx < len(a.counts) {
				count = a.counts[idx]
			}
			switch {
			case count < bestCount:
				best, bestCount, ties = idx, count, 1
			case count == bestCount:
				ties++
				if rng.Intn(ties) == 0 {
					best = idx
				}
			}
			cand &= cand - 1
		}
	}
	return best
}

// RandomPiece picks uniformly from candidates, or -1 if empty. Used by
// strategies that do not employ rarest-first (e.g., pure altruism variants).
func RandomPiece(rng *rand.Rand, candidates []int) int {
	if len(candidates) == 0 {
		return -1
	}
	return candidates[rng.Intn(len(candidates))]
}
