package piece

import (
	"bytes"
	"strings"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	content := testContent(1000)
	m, err := NewManifest(content, 256)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeManifest(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.PieceSize != m.PieceSize || got.FileSize != m.FileSize || got.NumPieces() != m.NumPieces() {
		t.Fatalf("shape changed: %+v vs %+v", got, m)
	}
	for i := range m.Hashes {
		if got.Hashes[i] != m.Hashes[i] {
			t.Fatalf("hash %d changed", i)
		}
	}
	// A store built from the decoded manifest accepts the original content.
	if _, err := NewSeedStore(got, content); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeManifestRejectsMalformed(t *testing.T) {
	cases := []string{
		`not json`,
		`{"piece_size":0,"file_size":10,"hashes":["00"]}`,
		`{"piece_size":4,"file_size":10,"hashes":[]}`,
		`{"piece_size":4,"file_size":10,"hashes":["00"]}`,      // size mismatch (needs 3)
		`{"piece_size":4,"file_size":8,"hashes":["zz","zz"]}`,  // bad hex
		`{"piece_size":4,"file_size":8,"hashes":["00","00"]}`,  // short hash
		`{"piece_size":4,"file_size":-8,"hashes":["00","00"]}`, // negative size
	}
	for i, c := range cases {
		if _, err := DecodeManifest(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
