package piece

import (
	"math/rand"
	"testing"
)

func TestAvailabilityCounting(t *testing.T) {
	a := NewAvailability(10)
	a.AddPiece(3)
	a.AddPiece(3)
	a.AddPiece(5)
	if a.Count(3) != 2 || a.Count(5) != 1 || a.Count(0) != 0 {
		t.Error("counts wrong")
	}
	a.RemovePiece(3)
	if a.Count(3) != 1 {
		t.Errorf("Count(3) = %d after removal", a.Count(3))
	}
	a.RemovePiece(0) // underflow guard
	if a.Count(0) != 0 {
		t.Error("underflow not guarded")
	}
	a.AddPiece(-1) // out of range ignored
	a.AddPiece(10)
	if a.Count(-1) != 0 || a.Count(10) != 0 {
		t.Error("out-of-range not ignored")
	}
}

func TestAvailabilityBitfieldOps(t *testing.T) {
	a := NewAvailability(10)
	b := NewBitfield(10)
	b.Set(1)
	b.Set(4)
	a.AddBitfield(b)
	if a.Count(1) != 1 || a.Count(4) != 1 {
		t.Error("AddBitfield wrong")
	}
	a.RemoveBitfield(b)
	if a.Count(1) != 0 || a.Count(4) != 0 {
		t.Error("RemoveBitfield wrong")
	}
}

func TestRarestFirstPicksRarest(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewAvailability(5)
	a.AddPiece(0)
	a.AddPiece(0)
	a.AddPiece(1)
	// candidates: 0 (avail 2), 1 (avail 1), 2 (avail 0) -> must pick 2.
	if got := a.RarestFirst(rng, []int{0, 1, 2}); got != 2 {
		t.Errorf("RarestFirst = %d, want 2", got)
	}
	if got := a.RarestFirst(rng, nil); got != -1 {
		t.Errorf("empty candidates = %d, want -1", got)
	}
}

func TestRarestFirstTieBreakUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewAvailability(3)
	counts := make(map[int]int, 3)
	for i := 0; i < 30000; i++ {
		counts[a.RarestFirst(rng, []int{0, 1, 2})]++
	}
	for idx, c := range counts {
		frac := float64(c) / 30000
		if frac < 0.30 || frac > 0.37 {
			t.Errorf("tie index %d frequency %.3f, want ~1/3", idx, frac)
		}
	}
}

func TestRandomPiece(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	if got := RandomPiece(rng, nil); got != -1 {
		t.Errorf("empty = %d", got)
	}
	candidates := []int{7, 8, 9}
	for i := 0; i < 100; i++ {
		got := RandomPiece(rng, candidates)
		if got < 7 || got > 9 {
			t.Fatalf("RandomPiece = %d outside candidates", got)
		}
	}
}
