package piece

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
)

// manifestWire is the JSON form of a Manifest: hashes as hex strings.
type manifestWire struct {
	PieceSize int      `json:"piece_size"`
	FileSize  int      `json:"file_size"`
	Hashes    []string `json:"hashes"`
}

// EncodeManifest writes the manifest as JSON, suitable for sharing with
// peers out of band (the swarm's "torrent file").
func EncodeManifest(w io.Writer, m *Manifest) error {
	wire := manifestWire{
		PieceSize: m.PieceSize,
		FileSize:  m.FileSize,
		Hashes:    make([]string, len(m.Hashes)),
	}
	for i, h := range m.Hashes {
		wire.Hashes[i] = hex.EncodeToString(h[:])
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(wire); err != nil {
		return fmt.Errorf("piece: encoding manifest: %w", err)
	}
	return nil
}

// DecodeManifest reads a JSON manifest and validates its shape.
func DecodeManifest(r io.Reader) (*Manifest, error) {
	var wire manifestWire
	if err := json.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("piece: decoding manifest: %w", err)
	}
	if wire.PieceSize <= 0 {
		return nil, fmt.Errorf("piece: manifest piece size %d invalid", wire.PieceSize)
	}
	if len(wire.Hashes) == 0 {
		return nil, fmt.Errorf("piece: manifest has no pieces")
	}
	wantPieces := (wire.FileSize + wire.PieceSize - 1) / wire.PieceSize
	if wire.FileSize <= 0 || wantPieces != len(wire.Hashes) {
		return nil, fmt.Errorf("piece: manifest sizes inconsistent: %d bytes, %d-byte pieces, %d hashes",
			wire.FileSize, wire.PieceSize, len(wire.Hashes))
	}
	m := &Manifest{
		PieceSize: wire.PieceSize,
		FileSize:  wire.FileSize,
		Hashes:    make([]Hash, len(wire.Hashes)),
	}
	for i, hs := range wire.Hashes {
		raw, err := hex.DecodeString(hs)
		if err != nil || len(raw) != len(m.Hashes[i]) {
			return nil, fmt.Errorf("piece: manifest hash %d malformed", i)
		}
		copy(m.Hashes[i][:], raw)
	}
	return m, nil
}
