// Package piece provides piece bookkeeping for cooperative file exchange:
// bitfields over the piece space, content-addressed piece stores with
// SHA-256 verification, and the local-rarest-first selection policy the
// paper assumes for its piece-availability model.
package piece

import (
	"fmt"
	"math/bits"
)

// Bitfield tracks which pieces of an M-piece file a peer holds. It is a
// value-semantics-free type: methods mutate in place and callers share
// pointers deliberately. Not safe for concurrent use.
type Bitfield struct {
	words []uint64
	size  int
	count int
}

// NewBitfield returns an empty bitfield over size pieces. It panics on a
// negative size.
func NewBitfield(size int) *Bitfield {
	if size < 0 {
		panic(fmt.Sprintf("piece: NewBitfield size %d", size))
	}
	return &Bitfield{words: make([]uint64, (size+63)/64), size: size}
}

// NewBitfieldBacked returns an empty bitfield over size pieces whose words
// live in the caller-provided slice, which must have length (size+63)/64 and
// be all zero. Callers may carve many bitfields out of one shared slab so
// the fields sit dense in memory — the simulator backs every peer's holdings
// this way, which keeps its incremental interest index cache-resident. The
// backing slice must not be mutated directly afterwards.
func NewBitfieldBacked(words []uint64, size int) *Bitfield {
	if size < 0 {
		panic(fmt.Sprintf("piece: NewBitfieldBacked size %d", size))
	}
	if len(words) != (size+63)/64 {
		panic(fmt.Sprintf("piece: NewBitfieldBacked got %d words, need %d", len(words), (size+63)/64))
	}
	for i, w := range words {
		if w != 0 {
			panic(fmt.Sprintf("piece: NewBitfieldBacked backing word %d not zero", i))
		}
	}
	return &Bitfield{words: words, size: size}
}

// Size returns the total number of pieces tracked.
func (b *Bitfield) Size() int { return b.size }

// Count returns the number of pieces held.
func (b *Bitfield) Count() int { return b.count }

// Complete reports whether every piece is held.
func (b *Bitfield) Complete() bool { return b.count == b.size }

// Has reports whether piece i is held. Out-of-range indices return false.
func (b *Bitfield) Has(i int) bool {
	if i < 0 || i >= b.size {
		return false
	}
	return b.words[i/64]&(1<<(uint(i)%64)) != 0
}

// Set marks piece i as held and reports whether the bit changed. Setting an
// out-of-range index panics, since it indicates an indexing bug.
func (b *Bitfield) Set(i int) bool {
	if i < 0 || i >= b.size {
		panic(fmt.Sprintf("piece: Set(%d) out of range [0,%d)", i, b.size))
	}
	mask := uint64(1) << (uint(i) % 64)
	if b.words[i/64]&mask != 0 {
		return false
	}
	b.words[i/64] |= mask
	b.count++
	return true
}

// Clear unmarks piece i and reports whether the bit changed.
func (b *Bitfield) Clear(i int) bool {
	if i < 0 || i >= b.size {
		panic(fmt.Sprintf("piece: Clear(%d) out of range [0,%d)", i, b.size))
	}
	mask := uint64(1) << (uint(i) % 64)
	if b.words[i/64]&mask == 0 {
		return false
	}
	b.words[i/64] &^= mask
	b.count--
	return true
}

// SetAll marks every piece as held.
func (b *Bitfield) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	if extra := b.size % 64; extra != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] = (1 << uint(extra)) - 1
	}
	b.count = b.size
}

// Clone returns an independent copy.
func (b *Bitfield) Clone() *Bitfield {
	words := make([]uint64, len(b.words))
	copy(words, b.words)
	return &Bitfield{words: words, size: b.size, count: b.count}
}

// MissingFrom returns the indices of pieces that other holds and b does not:
// the candidate set for a transfer from other to b's owner. The result is in
// ascending index order.
func (b *Bitfield) MissingFrom(other *Bitfield) []int {
	if other == nil {
		return nil
	}
	n := min(len(b.words), len(other.words))
	var out []int
	for w := 0; w < n; w++ {
		diff := other.words[w] &^ b.words[w]
		for diff != 0 {
			bit := bits.TrailingZeros64(diff)
			idx := w*64 + bit
			if idx < b.size {
				out = append(out, idx)
			}
			diff &= diff - 1
		}
	}
	return out
}

// CountMissingFrom returns len(MissingFrom(other)) without allocating.
func (b *Bitfield) CountMissingFrom(other *Bitfield) int {
	if other == nil {
		return 0
	}
	n := min(len(b.words), len(other.words))
	total := 0
	for w := 0; w < n; w++ {
		total += bits.OnesCount64(other.words[w] &^ b.words[w])
	}
	return total
}

// DiffCounts returns, in one popcount pass, how many pieces only b holds and
// how many only other holds: (|b \ other|, |other \ b|). It seeds the
// simulator's incremental per-edge interest counters when two peers connect.
// A nil other counts as an empty bitfield.
func (b *Bitfield) DiffCounts(other *Bitfield) (selfOnly, otherOnly int) {
	if other == nil {
		return b.count, 0
	}
	n := min(len(b.words), len(other.words))
	for w := 0; w < n; w++ {
		selfOnly += bits.OnesCount64(b.words[w] &^ other.words[w])
		otherOnly += bits.OnesCount64(other.words[w] &^ b.words[w])
	}
	for w := n; w < len(b.words); w++ {
		selfOnly += bits.OnesCount64(b.words[w])
	}
	for w := n; w < len(other.words); w++ {
		otherOnly += bits.OnesCount64(other.words[w])
	}
	return selfOnly, otherOnly
}

// Words returns the bitfield's backing words (bit i of word w is piece
// w*64+i), shared rather than copied: the slice is allocated once and never
// reallocated, so index structures may cache it for repeated membership
// tests without re-dereferencing the Bitfield. Callers must not modify it.
func (b *Bitfield) Words() []uint64 { return b.words }

// ForEach calls fn for every held piece index in ascending order, without
// allocating the index slice Indices would build.
func (b *Bitfield) ForEach(fn func(i int)) {
	for w, word := range b.words {
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			fn(w*64 + bit)
			word &= word - 1
		}
	}
}

// Needs reports whether other holds at least one piece that b lacks. This is
// the indicator behind the paper's q(i,j) probability.
func (b *Bitfield) Needs(other *Bitfield) bool {
	if other == nil {
		return false
	}
	n := min(len(b.words), len(other.words))
	for w := 0; w < n; w++ {
		if other.words[w]&^b.words[w] != 0 {
			return true
		}
	}
	return false
}

// Indices returns all held piece indices in ascending order.
func (b *Bitfield) Indices() []int {
	out := make([]int, 0, b.count)
	for w, word := range b.words {
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			out = append(out, w*64+bit)
			word &= word - 1
		}
	}
	return out
}

// String renders the bitfield as a 0/1 string, for debugging and tests.
func (b *Bitfield) String() string {
	buf := make([]byte, b.size)
	for i := 0; i < b.size; i++ {
		if b.Has(i) {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
	}
	return string(buf)
}
