package piece

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
)

// Hash is the SHA-256 digest of a piece's plaintext content.
type Hash [sha256.Size]byte

// Errors returned by Store operations.
var (
	ErrOutOfRange   = errors.New("piece: index out of range")
	ErrHashMismatch = errors.New("piece: content hash mismatch")
	ErrNotHeld      = errors.New("piece: piece not held")
)

// Manifest describes a file split into fixed-size pieces: the expected hash
// of every piece plus sizing metadata. A Manifest is immutable after
// creation and safe to share between peers.
type Manifest struct {
	PieceSize int
	FileSize  int
	Hashes    []Hash
}

// NumPieces returns the number of pieces in the file.
func (m *Manifest) NumPieces() int { return len(m.Hashes) }

// PieceLength returns the byte length of piece i (the final piece may be
// short).
func (m *Manifest) PieceLength(i int) int {
	if i < 0 || i >= len(m.Hashes) {
		return 0
	}
	if i == len(m.Hashes)-1 {
		if rem := m.FileSize % m.PieceSize; rem != 0 {
			return rem
		}
	}
	return m.PieceSize
}

// NewManifest splits content into pieceSize chunks and records their hashes.
// It returns an error on a non-positive piece size or empty content.
func NewManifest(content []byte, pieceSize int) (*Manifest, error) {
	if pieceSize <= 0 {
		return nil, fmt.Errorf("piece: piece size %d must be positive", pieceSize)
	}
	if len(content) == 0 {
		return nil, errors.New("piece: empty content")
	}
	numPieces := (len(content) + pieceSize - 1) / pieceSize
	m := &Manifest{
		PieceSize: pieceSize,
		FileSize:  len(content),
		Hashes:    make([]Hash, numPieces),
	}
	for i := 0; i < numPieces; i++ {
		lo := i * pieceSize
		hi := min(lo+pieceSize, len(content))
		m.Hashes[i] = sha256.Sum256(content[lo:hi])
	}
	return m, nil
}

// SyntheticManifest builds a manifest for a deterministic synthetic file of
// numPieces pieces of pieceSize bytes each, without materializing the file.
// Piece i's content is the byte pattern produced by SyntheticPiece(i, ...).
// Simulations use this to model a 128 MB file without 128 MB of RAM per peer.
func SyntheticManifest(numPieces, pieceSize int) (*Manifest, error) {
	if numPieces <= 0 || pieceSize <= 0 {
		return nil, fmt.Errorf("piece: invalid synthetic manifest %dx%d", numPieces, pieceSize)
	}
	m := &Manifest{
		PieceSize: pieceSize,
		FileSize:  numPieces * pieceSize,
		Hashes:    make([]Hash, numPieces),
	}
	for i := 0; i < numPieces; i++ {
		m.Hashes[i] = sha256.Sum256(SyntheticPiece(i, pieceSize))
	}
	return m, nil
}

// SyntheticPiece returns the deterministic content of piece i in a synthetic
// file: a repeating 8-byte little-endian pattern derived from the index.
func SyntheticPiece(i, pieceSize int) []byte {
	buf := make([]byte, pieceSize)
	seed := uint64(i)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	for off := 0; off < pieceSize; off += 8 {
		v := seed + uint64(off)
		for b := 0; b < 8 && off+b < pieceSize; b++ {
			buf[off+b] = byte(v >> (8 * uint(b)))
		}
	}
	return buf
}

// Store holds verified piece data for one peer. It verifies every Put
// against the manifest hash, so corrupt or forged pieces never enter a
// peer's store. Safe for concurrent use (the live network node accesses it
// from multiple goroutines).
type Store struct {
	mu       sync.RWMutex
	manifest *Manifest
	have     *Bitfield
	data     map[int][]byte
}

// NewStore returns an empty store for the given manifest.
func NewStore(m *Manifest) *Store {
	return &Store{
		manifest: m,
		have:     NewBitfield(m.NumPieces()),
		data:     make(map[int][]byte),
	}
}

// NewSeedStore returns a store pre-populated with every piece of content.
// The content must match the manifest.
func NewSeedStore(m *Manifest, content []byte) (*Store, error) {
	s := NewStore(m)
	for i := 0; i < m.NumPieces(); i++ {
		lo := i * m.PieceSize
		hi := min(lo+m.PieceSize, len(content))
		if lo >= len(content) {
			return nil, fmt.Errorf("piece: content too short for manifest: %w", ErrOutOfRange)
		}
		if err := s.Put(i, content[lo:hi]); err != nil {
			return nil, fmt.Errorf("seeding piece %d: %w", i, err)
		}
	}
	return s, nil
}

// Manifest returns the store's manifest.
func (s *Store) Manifest() *Manifest { return s.manifest }

// Put verifies data against the manifest hash for piece i and stores it.
// It returns ErrHashMismatch if verification fails and ErrOutOfRange for a
// bad index. Re-putting a held piece is a verified no-op.
func (s *Store) Put(i int, data []byte) error {
	if i < 0 || i >= s.manifest.NumPieces() {
		return fmt.Errorf("piece %d of %d: %w", i, s.manifest.NumPieces(), ErrOutOfRange)
	}
	if sha256.Sum256(data) != s.manifest.Hashes[i] {
		return fmt.Errorf("piece %d: %w", i, ErrHashMismatch)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.have.Has(i) {
		return nil
	}
	stored := make([]byte, len(data))
	copy(stored, data)
	s.data[i] = stored
	s.have.Set(i)
	return nil
}

// Get returns a copy of piece i's data, or ErrNotHeld.
func (s *Store) Get(i int) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.data[i]
	if !ok {
		return nil, fmt.Errorf("piece %d: %w", i, ErrNotHeld)
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// GetRef returns piece i's stored bytes without copying, or ErrNotHeld.
// The returned slice is the store's own buffer: callers must treat it as
// read-only. That contract is safe to offer because stored buffers are
// private copies made by Put and never mutated afterwards — it is what
// lets the live node hand pieces straight to the wire encoder with zero
// per-send allocation.
func (s *Store) GetRef(i int) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.data[i]
	if !ok {
		return nil, fmt.Errorf("piece %d: %w", i, ErrNotHeld)
	}
	return data, nil
}

// Has reports whether piece i is held.
func (s *Store) Has(i int) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.have.Has(i)
}

// Count returns the number of held pieces.
func (s *Store) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.have.Count()
}

// Complete reports whether all pieces are held.
func (s *Store) Complete() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.have.Complete()
}

// Bitfield returns a snapshot copy of the held-piece bitfield.
func (s *Store) Bitfield() *Bitfield {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.have.Clone()
}

// Assemble concatenates all pieces into the original file content. It
// returns ErrNotHeld if any piece is missing.
func (s *Store) Assemble() ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.have.Complete() {
		return nil, fmt.Errorf("%d of %d pieces: %w", s.have.Count(), s.manifest.NumPieces(), ErrNotHeld)
	}
	var buf bytes.Buffer
	buf.Grow(s.manifest.FileSize)
	for i := 0; i < s.manifest.NumPieces(); i++ {
		buf.Write(s.data[i])
	}
	return buf.Bytes(), nil
}
