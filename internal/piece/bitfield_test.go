package piece

import (
	"testing"
	"testing/quick"
)

func TestBitfieldBasicOps(t *testing.T) {
	b := NewBitfield(100)
	if b.Size() != 100 || b.Count() != 0 || b.Complete() {
		t.Fatal("fresh bitfield wrong")
	}
	if !b.Set(5) {
		t.Error("first Set returned false")
	}
	if b.Set(5) {
		t.Error("duplicate Set returned true")
	}
	if !b.Has(5) || b.Has(6) {
		t.Error("Has wrong")
	}
	if b.Count() != 1 {
		t.Errorf("Count = %d", b.Count())
	}
	if !b.Clear(5) || b.Clear(5) {
		t.Error("Clear semantics wrong")
	}
	if b.Count() != 0 {
		t.Errorf("Count after clear = %d", b.Count())
	}
}

func TestBitfieldBoundary(t *testing.T) {
	// Sizes straddling word boundaries.
	for _, size := range []int{1, 63, 64, 65, 128, 129} {
		b := NewBitfield(size)
		b.SetAll()
		if b.Count() != size || !b.Complete() {
			t.Errorf("size %d: SetAll count=%d", size, b.Count())
		}
		if b.Has(size) {
			t.Errorf("size %d: Has(size) = true", size)
		}
		indices := b.Indices()
		if len(indices) != size {
			t.Errorf("size %d: %d indices", size, len(indices))
		}
		for i, idx := range indices {
			if idx != i {
				t.Fatalf("size %d: indices %v", size, indices)
			}
		}
	}
}

func TestBitfieldOutOfRange(t *testing.T) {
	b := NewBitfield(10)
	if b.Has(-1) || b.Has(10) {
		t.Error("out-of-range Has should be false")
	}
	for _, fn := range []func(){
		func() { b.Set(10) },
		func() { b.Set(-1) },
		func() { b.Clear(10) },
		func() { NewBitfield(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMissingFrom(t *testing.T) {
	a := NewBitfield(10)
	b := NewBitfield(10)
	b.Set(1)
	b.Set(3)
	b.Set(7)
	a.Set(3)
	missing := a.MissingFrom(b)
	want := []int{1, 7}
	if len(missing) != len(want) {
		t.Fatalf("missing = %v, want %v", missing, want)
	}
	for i := range want {
		if missing[i] != want[i] {
			t.Fatalf("missing = %v, want %v", missing, want)
		}
	}
	if got := a.CountMissingFrom(b); got != 2 {
		t.Errorf("CountMissingFrom = %d, want 2", got)
	}
	if !a.Needs(b) {
		t.Error("Needs = false, want true")
	}
	if b.Needs(a) {
		t.Error("b needs nothing from a")
	}
	if a.Needs(nil) || a.MissingFrom(nil) != nil || a.CountMissingFrom(nil) != 0 {
		t.Error("nil other not handled")
	}
}

func TestMissingFromConsistencyProperty(t *testing.T) {
	f := func(setsA, setsB []uint8) bool {
		a := NewBitfield(256)
		b := NewBitfield(256)
		for _, i := range setsA {
			a.Set(int(i))
		}
		for _, i := range setsB {
			b.Set(int(i))
		}
		missing := a.MissingFrom(b)
		if len(missing) != a.CountMissingFrom(b) {
			return false
		}
		if a.Needs(b) != (len(missing) > 0) {
			return false
		}
		for _, i := range missing {
			if !b.Has(i) || a.Has(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClone(t *testing.T) {
	a := NewBitfield(70)
	a.Set(69)
	c := a.Clone()
	c.Set(0)
	if a.Has(0) {
		t.Error("clone not independent")
	}
	if !c.Has(69) || c.Count() != 2 {
		t.Error("clone lost state")
	}
}

func TestBitfieldString(t *testing.T) {
	b := NewBitfield(4)
	b.Set(1)
	if got := b.String(); got != "0100" {
		t.Errorf("String = %q", got)
	}
}
