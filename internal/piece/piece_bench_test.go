package piece

import (
	"math/rand"
	"testing"
)

func benchBitfields(size int) (*Bitfield, *Bitfield) {
	rng := rand.New(rand.NewSource(1))
	a := NewBitfield(size)
	b := NewBitfield(size)
	for i := 0; i < size; i++ {
		if rng.Intn(2) == 0 {
			a.Set(i)
		}
		if rng.Intn(2) == 0 {
			b.Set(i)
		}
	}
	return a, b
}

func BenchmarkBitfieldNeeds(b *testing.B) {
	x, y := benchBitfields(512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Needs(y)
	}
}

func BenchmarkBitfieldMissingFrom(b *testing.B) {
	x, y := benchBitfields(512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.MissingFrom(y)
	}
}

func BenchmarkRarestFirst(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	avail := NewAvailability(512)
	for i := 0; i < 512; i++ {
		for j := 0; j < rng.Intn(20); j++ {
			avail.AddPiece(i)
		}
	}
	candidates := make([]int, 128)
	for i := range candidates {
		candidates[i] = rng.Intn(512)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		avail.RarestFirst(rng, candidates)
	}
}

func BenchmarkStorePut(b *testing.B) {
	m, err := SyntheticManifest(64, 16<<10)
	if err != nil {
		b.Fatal(err)
	}
	data := make([][]byte, 64)
	for i := range data {
		data[i] = SyntheticPiece(i, 16<<10)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewStore(m)
		for j := 0; j < 64; j++ {
			if err := s.Put(j, data[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
}
