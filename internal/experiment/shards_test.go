package experiment

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

// fixtureNames are the paper's eight rendered artifacts: the three tables
// and the five figures.
var fixtureNames = []string{
	"table1", "table2", "table3",
	"figure2", "figure3", "figure4", "figure5", "figure6",
}

// renderFixture runs one experiment at the given shard count and returns
// its rendered text plus every persisted artifact, keyed by file name. The
// run manifests are excluded: they record wall-clock timings and the shard
// count itself, which legitimately differ between engine setups.
func renderFixture(t *testing.T, name string, scale Scale) (string, map[string]string) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), name)
	sink := trace.NewSink(dir)
	var sb strings.Builder
	if err := Run(name, scale, &sb, sink); err != nil {
		t.Fatalf("%s (shards=%d): %v", name, scale.Shards, err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	artifacts := make(map[string]string)
	for _, f := range sink.Files() {
		if strings.Contains(f, "-manifests") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			t.Fatal(err)
		}
		artifacts[f] = string(data)
	}
	return sb.String(), artifacts
}

// TestFigureFixturesByteIdenticalAcrossShards is the figure-fixture gate:
// all eight paper artifacts — rendered text and persisted series/tables —
// must be byte-identical between shards=1 and shards=4. check.sh runs this
// test by name.
func TestFigureFixturesByteIdenticalAcrossShards(t *testing.T) {
	if testing.Short() {
		t.Skip("renders every fixture twice")
	}
	scale := Scale{NumPeers: 60, NumPieces: 24, Horizon: 600, Seed: 3}
	for _, name := range fixtureNames {
		s1 := scale
		s1.Shards = 1
		base, baseArtifacts := renderFixture(t, name, s1)
		s4 := scale
		s4.Shards = 4
		out, artifacts := renderFixture(t, name, s4)
		if base != out {
			t.Errorf("%s: rendered output differs between shards=1 and shards=4:\n--- shards=1 ---\n%s\n--- shards=4 ---\n%s",
				name, base, out)
		}
		if len(artifacts) != len(baseArtifacts) {
			t.Errorf("%s: artifact sets differ: %d vs %d files", name, len(baseArtifacts), len(artifacts))
		}
		for f, want := range baseArtifacts {
			if got, ok := artifacts[f]; !ok {
				t.Errorf("%s: artifact %s missing under shards=4", name, f)
			} else if got != want {
				t.Errorf("%s: artifact %s differs between shards=1 and shards=4", name, f)
			}
		}
	}
}

// TestShardedFigureMatchesSerialShape sanity-checks that the sharded engine
// at paper settings still produces a healthy swarm (the sharded and serial
// engines are distinct deterministic timing models, so their outputs are
// compared for shape, not bytes).
func TestShardedFigureMatchesSerialShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs figure4 twice")
	}
	scale := Scale{NumPeers: 60, NumPieces: 24, Horizon: 600, Seed: 3}
	var serial, sharded strings.Builder
	if err := Run("figure4", scale, &serial, nil); err != nil {
		t.Fatal(err)
	}
	scale.Shards = 2
	if err := Run("figure4", scale, &sharded, nil); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"BitTorrent", "T-Chain", "100%"} {
		if !strings.Contains(sharded.String(), want) {
			t.Errorf("sharded figure4 output missing %q:\n%s", want, sharded.String())
		}
	}
	if serial.String() == sharded.String() {
		t.Log("note: serial and sharded outputs coincided (allowed but unexpected)")
	}
}
