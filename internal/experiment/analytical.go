package experiment

import (
	"fmt"
	"io"
	"math"

	"repro/internal/algo"
	"repro/internal/analysis"
	"repro/internal/trace"
)

// analysisScenario builds the capacity mix used by the analytical tables:
// four equal tiers (8:4:2:1), 40 users, a seeder worth one mid-tier user,
// with the paper's α_BT = 0.2, α_R = 0.1, n_BT = 4.
func analysisScenario() (*analysis.Scenario, error) {
	caps := make([]float64, 0, 40)
	for _, rate := range []float64{8, 4, 2, 1} {
		for i := 0; i < 10; i++ {
			caps = append(caps, rate)
		}
	}
	return analysis.NewScenario(caps, 2, 0.2, 0.1, 4)
}

// Table1 prints the equilibrium download rates of Table I for the analysis
// capacity mix, one row per algorithm with the per-tier utilization.
func Table1(_ Scale, w io.Writer, sink *trace.Sink) error {
	s, err := analysisScenario()
	if err != nil {
		return err
	}
	tiers := []float64{8, 4, 2, 1}
	tbl := trace.NewTable("Table I: equilibrium download utilization d_i - u_S/N by capacity tier",
		"Algorithm", "U=8", "U=4", "U=2", "U=1")
	share := s.SeederRate / float64(s.N())
	for _, a := range algo.All() {
		d := s.DownloadRates(a)
		row := make([]any, 0, 5)
		row = append(row, a.String())
		for _, tier := range tiers {
			// Mean utilization over users in this tier.
			var sum float64
			count := 0
			for i, u := range s.Capacities {
				if u == tier {
					sum += d[i] - share
					count++
				}
			}
			row = append(row, sum/float64(count))
		}
		tbl.AddRow(row...)
	}
	if err := tbl.WriteText(w); err != nil {
		return err
	}
	return sink.AddTable("table1", tbl)
}

// Figure2 prints the idealized fairness/efficiency ranking of Corollary 1.
func Figure2(_ Scale, w io.Writer, sink *trace.Sink) error {
	s, err := analysisScenario()
	if err != nil {
		return err
	}
	tbl := trace.NewTable("Figure 2: idealized equilibrium fairness and efficiency",
		"Algorithm", "E (Eq.2)", "F (Eq.3)", "E/E_opt")
	opt := s.OptimalEfficiency()
	for _, a := range algo.All() {
		e, f := s.Evaluate(a)
		fStr := fmt.Sprintf("%.4g", f)
		if math.IsNaN(f) {
			fStr = "undefined"
		}
		eStr := fmt.Sprintf("%.4g", e)
		ratio := fmt.Sprintf("%.3f", e/opt)
		if math.IsInf(e, 1) {
			eStr, ratio = "inf", "inf"
		}
		tbl.AddRow(a.String(), eStr, fStr, ratio)
	}
	if err := tbl.WriteText(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "Lemma 1 optimum: E* = %.4g (d* = %.4g)\n\n", opt, s.OptimalDownloadRate())
	return sink.AddTable("figure2", tbl)
}

// Figure3 prints the mean piece-exchange probabilities under imperfect
// piece availability (Proposition 2 / Corollary 2) for a sweep of swarm
// maturities, reproducing the efficiency re-ranking of Figure 3.
func Figure3(_ Scale, w io.Writer, sink *trace.Sink) error {
	const (
		m = 128 // pieces
		n = 500 // users
	)
	tbl := trace.NewTable("Figure 3: mean exchange probability by swarm maturity (M=128, N=500)",
		"Distribution", "pi_Altruism", "pi_TChain", "pi_BT", "pi_DR")
	dists := []struct {
		name string
		dist analysis.PieceCountDist
	}{
		{"flash-crowd (most empty)", flashCrowdDist(m)},
		{"uniform 0..M", analysis.UniformPieceCounts(m)},
		{"mid-swarm (all ~M/2)", analysis.PointPieceCounts(m, m/2)},
		{"endgame (all ~0.9M)", analysis.PointPieceCounts(m, m*9/10)},
	}
	for _, d := range dists {
		piA := analysis.MeanExchangeProbability(d.dist, func(mi, mj int) float64 {
			return analysis.PiAltruism(mi, mj, m)
		})
		piTC := analysis.MeanExchangeProbability(d.dist, func(mi, mj int) float64 {
			return analysis.PiTChain(mi, mj, m, n, d.dist)
		})
		piBT := analysis.MeanExchangeProbability(d.dist, func(mi, mj int) float64 {
			return analysis.PiBitTorrent(mi, mj, m, 0.2)
		})
		piDR := analysis.MeanExchangeProbability(d.dist, func(mi, mj int) float64 {
			return analysis.PiDirectReciprocity(mi, mj, m)
		})
		tbl.AddRow(d.name, piA, piTC, piBT, piDR)
	}
	if err := tbl.WriteText(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "Expected ordering (Fig. 3): Altruism >= T-Chain >= FairTorrent >= BitTorrent >= Reputation >> Reciprocity")
	fmt.Fprintln(w)
	return sink.AddTable("figure3", tbl)
}

// flashCrowdDist: 80% of users have nothing, the rest hold a few pieces.
func flashCrowdDist(m int) analysis.PieceCountDist {
	dist := make(analysis.PieceCountDist, m+1)
	dist[0] = 0.8
	for k := 1; k <= 10; k++ {
		dist[k] = 0.02
	}
	return dist
}

// Table2 prints the flash-crowd bootstrap probabilities with the paper's
// example parameters; the rightmost column should read 0.1%, 71.4%, 39.6%,
// 71.4%, 22.2%, 91.8%.
func Table2(_ Scale, w io.Writer, sink *trace.Sink) error {
	p := analysis.TableIIExample()
	tbl := trace.NewTable(
		fmt.Sprintf("Table II: bootstrap probability (N=%d, n_S=%d, K=%d, z=%d, pi_DR=%.2f, n_BT=%d, omega=%.2f, n_FT=%d)",
			p.N, p.NS, p.K, p.Z, p.PiDR, p.NBT, p.Omega, p.NFT),
		"Algorithm", "Probability", "Paper")
	paper := map[algo.Algorithm]string{
		algo.Reciprocity: "0.1%", algo.TChain: "71.4%", algo.BitTorrent: "39.6%",
		algo.FairTorrent: "71.4%", algo.Reputation: "22.2%", algo.Altruism: "91.8%",
	}
	for _, a := range algo.All() {
		prob, err := p.BootstrapProbability(a)
		if err != nil {
			return err
		}
		tbl.AddRow(a.String(), fmt.Sprintf("%.1f%%", prob*100), paper[a])
	}
	if err := tbl.WriteText(w); err != nil {
		return err
	}
	return sink.AddTable("table2", tbl)
}

// Lemma3 prints E[T_B(P)] for a sweep of flash-crowd sizes, per algorithm,
// using each algorithm's Table II probability at the example operating
// point.
func Lemma3(_ Scale, w io.Writer, sink *trace.Sink) error {
	params := analysis.TableIIExample()
	sizes := []int{1, 10, 100, 1000}
	headers := make([]string, 0, len(sizes)+1)
	headers = append(headers, "Algorithm")
	for _, p := range sizes {
		headers = append(headers, fmt.Sprintf("E[T_B(%d)]", p))
	}
	tbl := trace.NewTable("Lemma 3: expected slots until P newcomers bootstrap", headers...)
	for _, a := range algo.All() {
		prob, err := params.BootstrapProbability(a)
		if err != nil {
			return err
		}
		row := []any{a.String()}
		for _, p := range sizes {
			if prob <= 0 {
				row = append(row, "inf")
				continue
			}
			et, err := analysis.ExpectedBootstrapTimeConst(p, prob, 10_000_000)
			if err != nil {
				return err
			}
			row = append(row, et)
		}
		tbl.AddRow(row...)
	}
	if err := tbl.WriteText(w); err != nil {
		return err
	}
	return sink.AddTable("lemma3", tbl)
}

// Table3 prints the free-riding exposure of each algorithm: exploitable
// resources and collusion probability.
func Table3(_ Scale, w io.Writer, sink *trace.Sink) error {
	s, err := analysisScenario()
	if err != nil {
		return err
	}
	// π_IR at a mid-swarm operating point.
	dist := analysis.UniformPieceCounts(128)
	piIR := analysis.MeanExchangeProbability(dist, func(mi, mj int) float64 {
		return analysis.PiIndirectReciprocity(mi, mj, 128, s.N(), dist)
	})
	p := analysis.FreeRideParams{
		TotalCapacity: s.TotalCapacity(),
		AlphaBT:       s.AlphaBT,
		AlphaR:        s.AlphaR,
		Omega:         0.75,
		PiIR:          piIR,
		FreeRiders:    s.N() / 5,
		N:             s.N(),
	}
	rows, err := p.TableIII()
	if err != nil {
		return err
	}
	tbl := trace.NewTable(
		fmt.Sprintf("Table III: free-riding exposure (Sum U=%.4g, alpha_BT=%.2f, alpha_R=%.2f, omega=%.2f, m=%d)",
			p.TotalCapacity, p.AlphaBT, p.AlphaR, p.Omega, p.FreeRiders),
		"Algorithm", "Exploitable", "Fraction of Sum U", "Collusion prob")
	for _, r := range rows {
		tbl.AddRow(r.Algorithm.String(), r.Exploitable, r.Exploitable/p.TotalCapacity, r.Collusion)
	}
	if err := tbl.WriteText(w); err != nil {
		return err
	}
	return sink.AddTable("table3", tbl)
}

// Prop3 sweeps a reputation skew on one mid-capacity user and prints how
// both fairness and efficiency degrade (Proposition 3).
func Prop3(_ Scale, w io.Writer, sink *trace.Sink) error {
	s, err := analysisScenario()
	if err != nil {
		return err
	}
	tbl := trace.NewTable("Proposition 3: reputation skew vs fairness and efficiency",
		"Skew factor", "F", "E (normalized)")
	baseReps := analysis.ProportionalReputations(s.Capacities)
	_, e0, err := analysis.ReputationEquilibrium(baseReps, s.Capacities)
	if err != nil {
		return err
	}
	for _, factor := range []float64{1, 0.5, 0.2, 0.1, 0.05, 0.01} {
		reps := analysis.SkewedReputations(s.Capacities, s.N()/2, factor)
		f, e, err := analysis.ReputationEquilibrium(reps, s.Capacities)
		if err != nil {
			return err
		}
		tbl.AddRow(factor, f, e/e0)
	}
	if err := tbl.WriteText(w); err != nil {
		return err
	}
	return sink.AddTable("prop3", tbl)
}
