package experiment

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/algo"
	"repro/internal/analysis"
	"repro/internal/attack"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ValidateAvailability cross-validates the paper's piece-availability model
// (Eqs. 4–7) against the simulator: it pauses an altruism swarm mid-run,
// measures the empirical pairwise exchange feasibility, and compares it
// with the closed forms evaluated on the observed piece-count distribution.
func ValidateAvailability(scale Scale, w io.Writer, sink *trace.Sink) error {
	// Calibration run: find the mean download time so the snapshot lands
	// mid-download, when piece counts are spread out and the model is
	// interesting.
	calib, err := runOne(simConfig(algo.Altruism, scale))
	if err != nil {
		return err
	}
	meanDL := calib.MeanDownloadTime()
	if meanDL != meanDL { // NaN: nobody finished
		return errors.New("experiment: calibration run never completed; raise the horizon")
	}

	tbl := trace.NewTable(
		"Validation: Eq. 4-7 exchange model vs simulator across swarm phases",
		"Phase", "t(s)", "Peers", "pi_A model", "pi_A sim", "pi_DR model", "pi_DR sim")
	phases := []struct {
		name     string
		fraction float64
	}{
		{"flash-crowd", 0.04},
		{"mid-swarm", 0.5},
		{"endgame", 0.95},
	}
	cfgs := make([]sim.Config, 0, len(phases))
	for _, phase := range phases {
		cfgs = append(cfgs, simConfig(algo.Altruism, scale,
			sim.WithSnapshotAt(meanDL*phase.fraction)))
	}
	results, err := runBatch("validate-availability", sink, cfgs)
	if err != nil {
		return err
	}
	var snaps []*sim.AvailabilitySnapshot
	for i, phase := range phases {
		cfg, res := cfgs[i], results[i]
		snap := res.Snapshot()
		if snap == nil || snap.Pairs == 0 {
			return fmt.Errorf("experiment: %s snapshot missed (swarm drained at %.0fs)", phase.name, res.Duration)
		}
		snaps = append(snaps, snap)

		// Empirical piece-count distribution p_k at the snapshot instant.
		m := cfg.NumPieces
		dist := make(analysis.PieceCountDist, m+1)
		for _, count := range snap.PieceCounts {
			dist[count] += 1 / float64(len(snap.PieceCounts))
		}
		modelPiA := analysis.MeanExchangeProbability(dist, func(mi, mj int) float64 {
			return analysis.PiAltruism(mi, mj, m)
		})
		modelPiDR := analysis.MeanExchangeProbability(dist, func(mi, mj int) float64 {
			return analysis.PiDirectReciprocity(mi, mj, m)
		})
		tbl.AddRow(phase.name, snap.At, len(snap.PieceCounts),
			modelPiA, snap.PiAltruism, modelPiDR, snap.PiDirect)
	}
	if err := tbl.WriteText(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "The model assumes pieces are uniformly spread across peers (rarest-")
	fmt.Fprintln(w, "first's steady state). The flash-crowd row shows the bootstrapping")
	fmt.Fprintln(w, "obstruction: mutual need (pi_DR) is vanishingly rare while most peers")
	fmt.Fprintln(w, "are still empty. The endgame row shows the availability crunch as")
	fmt.Fprintln(w, "peers converge on the last pieces.")
	fmt.Fprintln(w)
	if err := sink.AddJSON("validate-availability-snapshots", snaps); err != nil {
		return err
	}
	return sink.AddTable("validate-availability", tbl)
}

// AblationPropShare compares BitTorrent's equal-split unchoking with
// PropShare's contribution-proportional allocation [5] — the related-work
// variant the paper cites as an attempt to reduce free-riding.
func AblationPropShare(scale Scale, w io.Writer, sink *trace.Sink) error {
	tbl := trace.NewTable("Ablation: BitTorrent vs PropShare (extension), with and without 20% free-riders",
		"Mechanism", "FreeRiders", "MeanDL(s)", "F(Eq.3)", "Susceptibility")
	type point struct {
		a  algo.Algorithm
		fr float64
	}
	var points []point
	var cfgs []sim.Config
	for _, a := range []algo.Algorithm{algo.BitTorrent, algo.PropShare} {
		for _, fr := range []float64{0, 0.2} {
			var opts []sim.Option
			if fr > 0 {
				opts = append(opts, sim.WithFreeRiders(fr, attack.Plan{Kind: attack.Passive}))
			}
			points = append(points, point{a, fr})
			cfgs = append(cfgs, simConfig(a, scale, opts...))
		}
	}
	results, err := runBatch("ablation-propshare", sink, cfgs)
	if err != nil {
		return err
	}
	for i, pt := range points {
		res := results[i]
		tbl.AddRow(pt.a.String(), fmt.Sprintf("%.0f%%", pt.fr*100),
			fmtOr(res.MeanDownloadTime(), "never"),
			fmtOr(res.LogFairness(), "n/a"),
			res.Susceptibility())
	}
	if err := tbl.WriteText(w); err != nil {
		return err
	}
	return sink.AddTable("ablation-propshare", tbl)
}

// AblationArrival contrasts the paper's flash crowd with a steady Poisson
// arrival stream — the regime where bootstrapping pressure is spread out.
func AblationArrival(scale Scale, w io.Writer, sink *trace.Sink) error {
	tbl := trace.NewTable("Ablation: flash crowd vs Poisson arrivals",
		"Mechanism", "Arrivals", "MeanBoot(s)", "MeanDL(s)", "Completed")
	type point struct {
		a     algo.Algorithm
		label string
	}
	var points []point
	var cfgs []sim.Config
	for _, a := range []algo.Algorithm{algo.TChain, algo.BitTorrent, algo.Reputation, algo.Altruism} {
		for _, pattern := range []sim.ArrivalPattern{sim.ArrivalFlashCrowd, sim.ArrivalPoisson} {
			label := "flash-crowd"
			opt := sim.WithArrival(pattern, 0)
			if pattern == sim.ArrivalPoisson {
				// Spread the same population over ~a quarter of the horizon.
				opt = sim.WithArrival(pattern, scale.Horizon/4/float64(scale.NumPeers))
				label = "poisson"
			}
			points = append(points, point{a, label})
			cfgs = append(cfgs, simConfig(a, scale, opt))
		}
	}
	results, err := runBatch("ablation-arrival", sink, cfgs)
	if err != nil {
		return err
	}
	for i, pt := range points {
		res := results[i]
		tbl.AddRow(pt.a.String(), pt.label,
			fmtOr(res.MeanBootstrapTime(), "never"),
			fmtOr(res.MeanDownloadTime(), "never"),
			fmt.Sprintf("%.0f%%", 100*res.CompletionFraction()))
	}
	if err := tbl.WriteText(w); err != nil {
		return err
	}
	return sink.AddTable("ablation-arrival", tbl)
}

// AblationChurn injects mid-download crashes and a seeder exit, measuring
// how each mechanism's surviving population fares — robustness beyond the
// paper's leave-on-completion churn.
func AblationChurn(scale Scale, w io.Writer, sink *trace.Sink) error {
	tbl := trace.NewTable("Ablation: failure injection (15% peer crashes; seeder exits at horizon/8)",
		"Mechanism", "Failures", "SurvivorCompleted", "MeanDL(s)")
	type point struct {
		a     algo.Algorithm
		label string
	}
	var points []point
	var cfgs []sim.Config
	for _, a := range []algo.Algorithm{algo.TChain, algo.BitTorrent, algo.Altruism} {
		for _, injected := range []bool{false, true} {
			var opts []sim.Option
			label := "none"
			if injected {
				opts = append(opts,
					sim.WithAbortRate(0.15),
					sim.WithSeederExit(scale.Horizon/8))
				label = "crashes+seeder-exit"
			}
			points = append(points, point{a, label})
			cfgs = append(cfgs, simConfig(a, scale, opts...))
		}
	}
	results, err := runBatch("ablation-churn", sink, cfgs)
	if err != nil {
		return err
	}
	for i, pt := range points {
		res := results[i]
		tbl.AddRow(pt.a.String(), pt.label,
			fmt.Sprintf("%.0f%%", 100*res.CompletionFraction()),
			fmtOr(res.MeanDownloadTime(), "never"))
	}
	if err := tbl.WriteText(w); err != nil {
		return err
	}
	return sink.AddTable("ablation-churn", tbl)
}
