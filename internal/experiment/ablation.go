package experiment

import (
	"fmt"
	"io"

	"repro/internal/algo"
	"repro/internal/attack"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/trace"
)

// runOne executes a single configured run.
func runOne(cfg sim.Config) (*sim.Result, error) {
	sw, err := sim.NewSwarm(cfg)
	if err != nil {
		return nil, err
	}
	return sw.Run()
}

// runBatch fans a sweep's independent configurations out across the runner
// pool. Results come back in submission order, so callers can zip them with
// the parameter values that produced them and render rows exactly as the
// old sequential loops did. With a live sink, the batch runs manifested and
// every member's run manifest is persisted as <name>-manifests.json; the
// results are byte-identical either way.
func runBatch(name string, sink *trace.Sink, cfgs []sim.Config) ([]*sim.Result, error) {
	if sink == nil {
		results, err := runner.Run(cfgs)
		if err != nil {
			return nil, fmt.Errorf("experiment: %w", err)
		}
		return results, nil
	}
	results, manifests, err := runner.RunManifested(cfgs)
	if err != nil {
		return nil, fmt.Errorf("experiment: %w", err)
	}
	if err := sink.AddJSON(name+"-manifests", manifests); err != nil {
		return nil, err
	}
	return results, nil
}

// AblationAlphaBT sweeps BitTorrent's optimistic-unchoke share: the design
// tradeoff between bootstrap speed (α up) and free-riding exposure (α up).
func AblationAlphaBT(scale Scale, w io.Writer, sink *trace.Sink) error {
	tbl := trace.NewTable("Ablation: BitTorrent optimistic-unchoke share alpha_BT",
		"alpha_BT", "MeanBoot(s)", "MeanDL(s)", "Susceptibility")
	alphas := []float64{0.05, 0.1, 0.2, 0.4, 0.8}
	cfgs := make([]sim.Config, 0, len(alphas))
	for _, alpha := range alphas {
		cfgs = append(cfgs, simConfig(algo.BitTorrent, scale,
			sim.WithFreeRiders(0.2, attack.Plan{Kind: attack.Passive}),
			sim.WithConfig(func(c *sim.Config) { c.Incentive.AlphaBT = alpha }),
		))
	}
	results, err := runBatch("ablation-alphabt", sink, cfgs)
	if err != nil {
		return err
	}
	for i, alpha := range alphas {
		res := results[i]
		tbl.AddRow(alpha, fmtOr(res.MeanBootstrapTime(), "never"),
			fmtOr(res.MeanDownloadTime(), "never"), res.Susceptibility())
	}
	if err := tbl.WriteText(w); err != nil {
		return err
	}
	return sink.AddTable("ablation-alphabt", tbl)
}

// AblationNBT sweeps BitTorrent's reciprocity slot count n_BT (Table I's
// clustering parameter).
func AblationNBT(scale Scale, w io.Writer, sink *trace.Sink) error {
	tbl := trace.NewTable("Ablation: BitTorrent reciprocity slots n_BT",
		"n_BT", "MeanDL(s)", "Fairness(d/u)", "F(Eq.3)")
	slots := []int{1, 2, 4, 8, 16}
	cfgs := make([]sim.Config, 0, len(slots))
	for _, nbt := range slots {
		cfgs = append(cfgs, simConfig(algo.BitTorrent, scale,
			sim.WithConfig(func(c *sim.Config) { c.Incentive.NBT = nbt }),
		))
	}
	results, err := runBatch("ablation-nbt", sink, cfgs)
	if err != nil {
		return err
	}
	for i, nbt := range slots {
		res := results[i]
		tbl.AddRow(nbt, fmtOr(res.MeanDownloadTime(), "never"),
			fmtOr(res.FinalFairness(), "n/a"), fmtOr(res.LogFairness(), "n/a"))
	}
	if err := tbl.WriteText(w); err != nil {
		return err
	}
	return sink.AddTable("ablation-nbt", tbl)
}

// AblationSeeder sweeps seeder capacity: the bootstrap path every
// mechanism shares (Table II's n_S term).
func AblationSeeder(scale Scale, w io.Writer, sink *trace.Sink) error {
	tbl := trace.NewTable("Ablation: seeder capacity vs bootstrap and completion",
		"SeederRate(B/s)", "Algorithm", "MeanBoot(s)", "MeanDL(s)", "Completed")
	type point struct {
		rate float64
		a    algo.Algorithm
	}
	var points []point
	var cfgs []sim.Config
	for _, rate := range []float64{1 << 18, 1 << 20, 1 << 22} {
		for _, a := range []algo.Algorithm{algo.Reciprocity, algo.BitTorrent, algo.Altruism} {
			points = append(points, point{rate, a})
			cfgs = append(cfgs, simConfig(a, scale, sim.WithSeeder(rate)))
		}
	}
	results, err := runBatch("ablation-seeder", sink, cfgs)
	if err != nil {
		return err
	}
	for i, pt := range points {
		res := results[i]
		tbl.AddRow(pt.rate, pt.a.String(), fmtOr(res.MeanBootstrapTime(), "never"),
			fmtOr(res.MeanDownloadTime(), "never"),
			fmt.Sprintf("%.0f%%", 100*res.CompletionFraction()))
	}
	if err := tbl.WriteText(w); err != nil {
		return err
	}
	return sink.AddTable("ablation-seeder", tbl)
}

// AblationNeighborView sweeps the compliant neighbor-set size and contrasts
// it with the large-view exploit, quantifying why the exploit works.
func AblationNeighborView(scale Scale, w io.Writer, sink *trace.Sink) error {
	tbl := trace.NewTable("Ablation: neighbor-set size vs large-view susceptibility (BitTorrent, 20% free-riders)",
		"MaxNeighbors", "LargeView", "Susceptibility", "MeanDL(s)")
	type point struct {
		neighbors int
		largeView bool
	}
	var points []point
	var cfgs []sim.Config
	for _, neighbors := range []int{10, 25, 50} {
		for _, largeView := range []bool{false, true} {
			plan := attack.Plan{Kind: attack.Passive}
			if largeView {
				plan = plan.WithLargeView()
			}
			points = append(points, point{neighbors, largeView})
			cfgs = append(cfgs, simConfig(algo.BitTorrent, scale,
				sim.WithNeighbors(neighbors),
				sim.WithFreeRiders(0.2, plan),
			))
		}
	}
	results, err := runBatch("ablation-largeview", sink, cfgs)
	if err != nil {
		return err
	}
	for i, pt := range points {
		res := results[i]
		tbl.AddRow(pt.neighbors, pt.largeView, res.Susceptibility(), fmtOr(res.MeanDownloadTime(), "never"))
	}
	if err := tbl.WriteText(w); err != nil {
		return err
	}
	return sink.AddTable("ablation-largeview", tbl)
}

// AblationWhitewash sweeps the whitewashing interval against FairTorrent:
// faster identity churn means deficits never accumulate.
func AblationWhitewash(scale Scale, w io.Writer, sink *trace.Sink) error {
	tbl := trace.NewTable("Ablation: FairTorrent whitewash interval (20% free-riders)",
		"Interval(s)", "Susceptibility", "CompliantMeanDL(s)")
	intervals := []float64{10, 30, 60, 120, 1e9}
	cfgs := make([]sim.Config, 0, len(intervals))
	for _, interval := range intervals {
		cfgs = append(cfgs, simConfig(algo.FairTorrent, scale,
			sim.WithFreeRiders(0.2, attack.Plan{Kind: attack.Whitewash, WhitewashInterval: interval}),
		))
	}
	results, err := runBatch("ablation-whitewash", sink, cfgs)
	if err != nil {
		return err
	}
	for i, interval := range intervals {
		res := results[i]
		label := fmt.Sprintf("%.0f", interval)
		if interval >= 1e9 {
			label = "never"
		}
		tbl.AddRow(label, res.Susceptibility(), fmtOr(res.MeanDownloadTime(), "never"))
	}
	if err := tbl.WriteText(w); err != nil {
		return err
	}
	return sink.AddTable("ablation-whitewash", tbl)
}

// AblationFalsePraise compares passive free-riding with false-praise
// collusion against the reputation algorithm (Table III's collusion row).
func AblationFalsePraise(scale Scale, w io.Writer, sink *trace.Sink) error {
	tbl := trace.NewTable("Ablation: reputation-system collusion via false praise (20% free-riders)",
		"Attack", "Susceptibility", "CompliantMeanDL(s)")
	plans := []attack.Plan{
		{Kind: attack.Passive},
		{Kind: attack.FalsePraise, PraiseInterval: 5, PraiseBytes: 64 << 20},
	}
	cfgs := make([]sim.Config, 0, len(plans))
	for _, plan := range plans {
		cfgs = append(cfgs, simConfig(algo.Reputation, scale, sim.WithFreeRiders(0.2, plan)))
	}
	results, err := runBatch("ablation-praise", sink, cfgs)
	if err != nil {
		return err
	}
	for i, plan := range plans {
		res := results[i]
		tbl.AddRow(plan.Kind.String(), res.Susceptibility(), fmtOr(res.MeanDownloadTime(), "never"))
	}
	if err := tbl.WriteText(w); err != nil {
		return err
	}
	return sink.AddTable("ablation-praise", tbl)
}

// AblationIndirect isolates T-Chain's indirect reciprocity by comparing its
// bootstrap speed against pure reciprocity (no initiation at all) and
// BitTorrent (altruism-only bootstrap).
func AblationIndirect(scale Scale, w io.Writer, sink *trace.Sink) error {
	tbl := trace.NewTable("Ablation: bootstrapping with and without indirect reciprocity",
		"Mechanism", "MeanBoot(s)", "Bootstrapped@30s")
	algos := []algo.Algorithm{algo.TChain, algo.BitTorrent, algo.Reciprocity}
	cfgs := make([]sim.Config, 0, len(algos))
	for _, a := range algos {
		cfgs = append(cfgs, simConfig(a, scale))
	}
	results, err := runBatch("ablation-indirect", sink, cfgs)
	if err != nil {
		return err
	}
	for i, a := range algos {
		res := results[i]
		tbl.AddRow(a.String(), fmtOr(res.MeanBootstrapTime(), "never"),
			fmt.Sprintf("%.0f%%", 100*res.BootstrapFraction(30)))
	}
	if err := tbl.WriteText(w); err != nil {
		return err
	}
	return sink.AddTable("ablation-indirect", tbl)
}
