package experiment

import (
	"math"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestNamesSortedAndComplete(t *testing.T) {
	names := Names()
	if len(names) != len(registry) {
		t.Fatalf("Names() returned %d of %d", len(names), len(registry))
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
	for _, want := range []string{"table1", "table2", "table3", "figure2", "figure3", "figure4", "figure5", "figure6", "lemma3", "prop3"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("experiment %q not registered", want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := Run("nope", TestScale(), &sb, nil); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// TestAnalyticalExperiments runs every closed-form harness; these are cheap
// enough to assert on content.
func TestAnalyticalExperiments(t *testing.T) {
	cases := map[string][]string{
		"table1":  {"Table I", "Reciprocity", "Altruism"},
		"table2":  {"71.4%", "91.8%", "39.6%", "22.2%", "0.1%"},
		"table3":  {"Table III", "Collusion"},
		"figure2": {"Lemma 1 optimum", "undefined"},
		"figure3": {"pi_Altruism", "flash-crowd"},
		"lemma3":  {"E[T_B(1000)]", "Reciprocity"},
		"prop3":   {"Skew factor"},
	}
	for name, wants := range cases {
		var sb strings.Builder
		sink := trace.NewSink(filepath.Join(t.TempDir(), name))
		if err := Run(name, TestScale(), &sb, sink); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := sb.String()
		for _, want := range wants {
			if !strings.Contains(out, want) {
				t.Errorf("%s output missing %q:\n%s", name, want, out)
			}
		}
		if len(sink.Files()) == 0 {
			t.Errorf("%s produced no artifacts", name)
		}
		if err := sink.Flush(); err != nil {
			t.Errorf("%s flush: %v", name, err)
		}
	}
}

// TestTable2MatchesPaperColumn parses the rendered Table II and compares
// our probabilities against the paper's printed example values.
func TestTable2MatchesPaperColumn(t *testing.T) {
	var sb strings.Builder
	if err := Run("table2", TestScale(), &sb, nil); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(sb.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		// Rows look like: "T-Chain  71.4%  71.4%". Allow 0.2 percentage
		// points of slack for the paper's display rounding.
		last, prev := fields[len(fields)-1], fields[len(fields)-2]
		if strings.HasSuffix(last, "%") && strings.HasSuffix(prev, "%") {
			a, errA := strconv.ParseFloat(strings.TrimSuffix(prev, "%"), 64)
			b, errB := strconv.ParseFloat(strings.TrimSuffix(last, "%"), 64)
			if errA != nil || errB != nil {
				continue
			}
			if math.Abs(a-b) > 0.2 {
				t.Errorf("row %q: computed %s vs paper %s", line, prev, last)
			}
		}
	}
}

// TestSimulationFigures runs the three simulation figures at test scale.
func TestSimulationFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation figures take a few seconds")
	}
	scale := TestScale()
	for _, name := range []string{"figure4", "figure5", "figure6"} {
		var sb strings.Builder
		sink := trace.NewSink(filepath.Join(t.TempDir(), name))
		if err := Run(name, scale, &sb, sink); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out := sb.String()
		for _, want := range []string{"Reciprocity", "T-Chain", "Susceptibility"} {
			if !strings.Contains(out, want) {
				t.Errorf("%s output missing %q:\n%s", name, want, out)
			}
		}
		// The series artifacts exist for each sampled metric.
		files := sink.Files()
		if len(files) < 5 {
			t.Errorf("%s produced only %d artifacts: %v", name, len(files), files)
		}
		if err := sink.Flush(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestParallelOutputByteIdentical verifies the runner's determinism
// contract end-to-end: for a fixed seed set, the rendered experiment output
// is byte-for-byte identical whether the underlying swarms ran on one
// worker or fanned out across several.
func TestParallelOutputByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs each experiment twice")
	}
	scale := Scale{NumPeers: 60, NumPieces: 24, Horizon: 600, Seed: 3}
	for _, name := range []string{"figure4", "figure5", "ablation-seeder", "ablation-arrival"} {
		render := func(workers string) string {
			t.Setenv("REPRO_WORKERS", workers)
			var sb strings.Builder
			if err := Run(name, scale, &sb, nil); err != nil {
				t.Fatalf("%s (workers=%s): %v", name, workers, err)
			}
			return sb.String()
		}
		sequential := render("1")
		parallel := render("8")
		if sequential != parallel {
			t.Errorf("%s: parallel output differs from sequential:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
				name, sequential, parallel)
		}
	}
}

// TestValidateAvailability checks the model-vs-simulator cross-validation:
// the flash-crowd phase must show the bootstrapping obstruction (pi_DR far
// below pi_A) and the model must track the simulator.
func TestValidateAvailability(t *testing.T) {
	if testing.Short() {
		t.Skip("validation runs several simulations")
	}
	var sb strings.Builder
	scale := Scale{NumPeers: 200, NumPieces: 96, Horizon: 2000, Seed: 4}
	if err := Run("validate-availability", scale, &sb, nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"flash-crowd", "mid-swarm", "endgame"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing phase %q:\n%s", want, out)
		}
	}
}

// TestAblations runs each ablation harness at a reduced scale.
func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations take a few seconds")
	}
	scale := Scale{NumPeers: 60, NumPieces: 24, Horizon: 600, Seed: 3}
	for _, name := range []string{
		"ablation-alphabt", "ablation-nbt", "ablation-seeder",
		"ablation-largeview", "ablation-whitewash", "ablation-praise",
		"ablation-indirect", "ablation-propshare", "ablation-arrival",
		"ablation-churn",
	} {
		var sb strings.Builder
		if err := Run(name, scale, &sb, nil); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(sb.String(), "Ablation") {
			t.Errorf("%s output missing title:\n%s", name, sb.String())
		}
	}
}

// TestValidateBootstrap checks the Table II dynamics validation: the model
// and the simulator agree that reciprocity is the slowest bootstrapper.
func TestValidateBootstrap(t *testing.T) {
	if testing.Short() {
		t.Skip("validation runs six simulations")
	}
	var sb strings.Builder
	scale := Scale{NumPeers: 120, NumPieces: 48, Horizon: 1000, Seed: 2}
	if err := Run("validate-bootstrap", scale, &sb, nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Reciprocity") || !strings.Contains(out, "Model t90(s)") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

// TestValidateFluid checks the fluid-model cross-validation runs and
// produces the comparison table.
func TestValidateFluid(t *testing.T) {
	if testing.Short() {
		t.Skip("validation runs a simulation")
	}
	var sb strings.Builder
	scale := Scale{NumPeers: 120, NumPieces: 48, Horizon: 1500, Seed: 2}
	if err := Run("validate-fluid", scale, &sb, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Fluid t(s)") {
		t.Errorf("missing comparison table:\n%s", sb.String())
	}
}
