package experiment

import (
	"fmt"
	"io"

	"repro/internal/algo"
	"repro/internal/analysis"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ValidateFluid compares the classic fluid model's completion curve
// (analysis.FluidParams, the Qiu–Srikant substrate under the paper's
// efficiency analysis) against the simulator's measured completion
// trajectory for the altruism mechanism — the regime the fluid model's
// uniform-exchange assumption describes.
func ValidateFluid(scale Scale, w io.Writer, sink *trace.Sink) error {
	cfg := simConfig(algo.Altruism, scale)
	res, err := runOne(cfg)
	if err != nil {
		return err
	}
	fileBytes := cfg.FileSize()
	fluid := analysis.FluidParams{
		N:        cfg.NumPeers,
		Mu:       meanCapacity(cfg) / fileBytes,
		Eta:      1,
		SeedRate: cfg.SeederRate / fileBytes,
	}

	tbl := trace.NewTable(
		fmt.Sprintf("Validation: fluid model vs simulator, altruism (N=%d, mu=%.3g files/s, s=%.3g files/s)",
			fluid.N, fluid.Mu, fluid.SeedRate),
		"Completed", "Fluid t(s)", "Sim t(s)")
	simCompleted := res.Series[sim.SeriesCompleted]
	for _, frac := range []float64{0.25, 0.5, 0.75, 0.9, 0.99} {
		fluidT, err := fluid.FluidTimeToFraction(frac)
		if err != nil {
			return err
		}
		tbl.AddRow(fmt.Sprintf("%.0f%%", frac*100),
			fluidT, fmtOr(timeToSimFraction(simCompleted, frac), "never"))
	}
	if err := tbl.WriteText(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "Reading the comparison: the fluid ODE retires leechers *continuously*")
	fmt.Fprintln(w, "at the aggregate service rate, while a synchronized flash crowd with")
	fmt.Fprintln(w, "equalized download rates finishes in a sharp wave around the mean — so")
	fmt.Fprintln(w, "the two agree on the swarm's characteristic timescale (compare the")
	fmt.Fprintln(w, "50-75% rows) but disagree on the tails by construction. The paper's")
	fmt.Fprintln(w, "per-user equilibrium analysis (Table I) is the sharper tool; this is")
	fmt.Fprintln(w, "the baseline it improves on.")
	fmt.Fprintln(w)
	return sink.AddTable("validate-fluid", tbl)
}
