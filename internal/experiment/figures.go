package experiment

import (
	"fmt"
	"io"
	"math"

	"repro/internal/algo"
	"repro/internal/attack"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// simConfig builds the Section V configuration for one algorithm at the
// given scale, with any extra options applied on top.
func simConfig(a algo.Algorithm, scale Scale, opts ...sim.Option) sim.Config {
	base := []sim.Option{sim.WithHorizon(scale.Horizon), sim.WithSeed(scale.Seed), sim.WithShards(scale.Shards)}
	return sim.Default(a, scale.NumPeers, scale.NumPieces, append(base, opts...)...)
}

// runAll executes one run per algorithm, applying the per-algorithm options
// to each config first. The six runs are independent, so they fan out across
// the runner pool; results come back in algo.All() order, keeping the
// rendered tables byte-identical to the old sequential loop. With a live
// sink, each batch member's run manifest is persisted as <name>-manifests.
func runAll(scale Scale, name string, sink *trace.Sink, perAlgo func(algo.Algorithm) []sim.Option) (map[algo.Algorithm]*sim.Result, error) {
	algos := algo.All()
	cfgs := make([]sim.Config, len(algos))
	for i, a := range algos {
		var opts []sim.Option
		if perAlgo != nil {
			opts = perAlgo(a)
		}
		cfgs[i] = simConfig(a, scale, opts...)
	}
	results, err := runBatch(name, sink, cfgs)
	if err != nil {
		return nil, err
	}
	out := make(map[algo.Algorithm]*sim.Result, len(algos))
	for i, a := range algos {
		out[a] = results[i]
	}
	return out, nil
}

// fmtOr formats a float or returns alt for NaN/Inf (e.g., reciprocity's
// undefined download time).
func fmtOr(v float64, alt string) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return alt
	}
	return fmt.Sprintf("%.4g", v)
}

// summarizeRuns renders the standard per-algorithm summary table and
// persists each run's time series.
func summarizeRuns(title, prefix string, results map[algo.Algorithm]*sim.Result, w io.Writer, sink *trace.Sink) error {
	tbl := trace.NewTable(title,
		"Algorithm", "Completed", "MeanDL(s)", "MedianDL(s)", "Fairness(d/u)", "F(Eq.3)", "MeanBoot(s)", "Susceptibility")
	for _, a := range algo.All() {
		r := results[a]
		summary := r.DownloadTimeSummary()
		tbl.AddRow(a.String(),
			fmt.Sprintf("%.0f%%", 100*r.CompletionFraction()),
			fmtOr(r.MeanDownloadTime(), "never"),
			fmtOr(summary.Median, "never"),
			fmtOr(r.FinalFairness(), "n/a"),
			fmtOr(r.LogFairness(), "n/a"),
			fmtOr(r.MeanBootstrapTime(), "never"),
			fmt.Sprintf("%.4f", r.Susceptibility()),
		)
	}
	if err := tbl.WriteText(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := sink.AddTable(prefix+"-summary", tbl); err != nil {
		return err
	}
	// Persist per-metric series across algorithms on a shared grid, and
	// render the two headline curves as terminal charts.
	var horizon float64
	for _, a := range algo.All() {
		if d := results[a].Duration; d > horizon {
			horizon = d
		}
	}
	interval := horizon / 200
	if interval <= 0 {
		interval = 1
	}
	for _, name := range []string{sim.SeriesFairness, sim.SeriesBootstrapped, sim.SeriesCompleted, sim.SeriesSusceptibility} {
		merged := make([]*stats.TimeSeries, 0, 6)
		for _, a := range algo.All() {
			ts := results[a].Series[name].Resample(interval, horizon)
			ts.Name = a.String()
			merged = append(merged, ts)
		}
		sink.AddSeries(fmt.Sprintf("%s-%s", prefix, name), merged...)
		switch name {
		case sim.SeriesBootstrapped:
			// Zoom the bootstrap chart onto the interesting early window.
			zoom := make([]*stats.TimeSeries, 0, len(merged))
			for _, a := range algo.All() {
				ts := results[a].Series[name].Resample(horizon/400, horizon/8)
				ts.Name = a.String()
				zoom = append(zoom, ts)
			}
			fmt.Fprintln(w, trace.Chart("Bootstrapped fraction vs time (early window)", 64, 12, zoom...))
		case sim.SeriesCompleted:
			fmt.Fprintln(w, trace.Chart("Completed fraction vs time", 64, 12, merged...))
		}
	}
	return nil
}

// Figure4 reproduces the compliant-swarm comparison: (a) download-time
// efficiency, (b) fairness over time, (c) bootstrapping speed.
func Figure4(scale Scale, w io.Writer, sink *trace.Sink) error {
	results, err := runAll(scale, "figure4", sink, nil)
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Figure 4: all users compliant (N=%d, M=%d pieces)", scale.NumPeers, scale.NumPieces)
	return summarizeRuns(title, "figure4", results, w, sink)
}

// Figure5 reproduces the 20% free-rider comparison with each algorithm's
// most effective attack (collusion for T-Chain, whitewashing for
// FairTorrent, passive otherwise).
func Figure5(scale Scale, w io.Writer, sink *trace.Sink) error {
	results, err := runAll(scale, "figure5", sink, func(a algo.Algorithm) []sim.Option {
		return []sim.Option{sim.WithFreeRiders(0.2, attack.MostEffective(a))}
	})
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Figure 5: 20%% targeted free-riders (N=%d, M=%d pieces)", scale.NumPeers, scale.NumPieces)
	return summarizeRuns(title, "figure5", results, w, sink)
}

// Figure6 adds the large-view exploit on top of Figure 5's attacks.
func Figure6(scale Scale, w io.Writer, sink *trace.Sink) error {
	results, err := runAll(scale, "figure6", sink, func(a algo.Algorithm) []sim.Option {
		return []sim.Option{sim.WithFreeRiders(0.2, attack.MostEffective(a).WithLargeView())}
	})
	if err != nil {
		return err
	}
	title := fmt.Sprintf("Figure 6: 20%% free-riders with large-view exploit (N=%d, M=%d pieces)", scale.NumPeers, scale.NumPieces)
	return summarizeRuns(title, "figure6", results, w, sink)
}
