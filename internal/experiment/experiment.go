// Package experiment contains one runnable harness per table and figure in
// the paper's evaluation, plus the ablations DESIGN.md calls out. Each
// harness prints the same rows/series the paper reports and optionally
// persists CSV/JSON artifacts through a trace.Sink.
package experiment

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/trace"
)

// Scale sets the simulation size for the Section V experiments. The paper's
// full scale is 1000 peers and a 128 MB file (512 × 256 KB pieces);
// TestScale keeps CI fast while preserving every qualitative shape.
type Scale struct {
	NumPeers  int
	NumPieces int
	Horizon   float64
	Seed      int64
	// Shards selects the simulator's execution engine for every run in the
	// experiment: 0 is the serial engine, N >= 1 the sharded parallel
	// engine with N shards. Rendered output is identical for every N >= 1.
	Shards int
}

// FullScale reproduces the paper's experimental scale.
func FullScale() Scale { return Scale{NumPeers: 1000, NumPieces: 512, Horizon: 12000, Seed: 1} }

// TestScale is a fast scale for tests and quick iteration.
func TestScale() Scale { return Scale{NumPeers: 100, NumPieces: 48, Horizon: 900, Seed: 7} }

// Runner executes one experiment, writing human-readable output to w and
// artifacts to sink (which may be nil).
type Runner func(scale Scale, w io.Writer, sink *trace.Sink) error

// registry maps experiment IDs to runners. IDs follow the paper's artifact
// names: table1..table3, figure2..figure6, lemma3, prop3, plus ablations.
var registry = map[string]Runner{
	"table1":             Table1,
	"table2":             Table2,
	"table3":             Table3,
	"figure2":            Figure2,
	"figure3":            Figure3,
	"lemma3":             Lemma3,
	"prop3":              Prop3,
	"figure4":            Figure4,
	"figure5":            Figure5,
	"figure6":            Figure6,
	"ablation-alphabt":   AblationAlphaBT,
	"ablation-nbt":       AblationNBT,
	"ablation-seeder":    AblationSeeder,
	"ablation-largeview": AblationNeighborView,
	"ablation-whitewash": AblationWhitewash,
	"ablation-praise":    AblationFalsePraise,
	"ablation-indirect":  AblationIndirect,
	"ablation-propshare": AblationPropShare,
	"ablation-arrival":   AblationArrival,
	"ablation-churn":     AblationChurn,

	"validate-availability": ValidateAvailability,
	"validate-bootstrap":    ValidateBootstrap,
	"validate-fluid":        ValidateFluid,
}

// Names returns the registered experiment IDs, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Run executes the named experiment.
func Run(name string, scale Scale, w io.Writer, sink *trace.Sink) error {
	runner, ok := registry[strings.ToLower(name)]
	if !ok {
		return fmt.Errorf("experiment: unknown experiment %q (have: %s)",
			name, strings.Join(Names(), ", "))
	}
	return runner(scale, w, sink)
}
