package experiment

import (
	"fmt"
	"io"
	"math"

	"repro/internal/algo"
	"repro/internal/analysis"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// ValidateBootstrap compares Table II's bootstrap dynamics (iterated via
// analysis.BootstrapCurve) against the simulator's measured bootstrapped
// fraction (Figure 4c), per algorithm. The comparison targets the *speed
// ordering* and rough time scales — the analytical model works in abstract
// timeslots, which we map to seconds using the mean piece-upload rate.
func ValidateBootstrap(scale Scale, w io.Writer, sink *trace.Sink) error {
	tbl := trace.NewTable(
		"Validation: Table II bootstrap dynamics vs simulator (time to 50% / 90% bootstrapped)",
		"Algorithm", "Model t50(s)", "Sim t50(s)", "Model t90(s)", "Sim t90(s)")

	// Map one analytical timeslot to one simulated second, deriving K and
	// n_S from the simulation configuration.
	refCfg := simConfig(algo.Altruism, scale)
	meanRate := meanCapacity(refCfg)
	base := analysis.BootstrapParams{
		N:     refCfg.NumPeers,
		NS:    max(1, int(refCfg.SeederRate/refCfg.PieceSize)),
		K:     max(1, int(meanRate/refCfg.PieceSize)),
		NBT:   refCfg.Incentive.NBT,
		PiDR:  0.2,  // early-swarm direct-reciprocity chance (cf. Table II text)
		Omega: 0.25, // early-swarm negative-deficit chance
		NFT:   refCfg.NumPeers,
	}
	slots := int(scale.Horizon)
	var curves []*stats.TimeSeries
	cfgs := make([]sim.Config, 0, len(algo.All()))
	for _, a := range algo.All() {
		cfgs = append(cfgs, simConfig(a, scale))
	}
	results, err := runBatch("validate-bootstrap", sink, cfgs)
	if err != nil {
		return err
	}
	for i, a := range algo.All() {
		curve, err := analysis.BootstrapCurve(a, base, slots)
		if err != nil {
			return err
		}
		simSeries := results[i].Series[sim.SeriesBootstrapped]
		tbl.AddRow(a.String(),
			slotOr(analysis.TimeToFraction(curve, 0.5)),
			fmtOr(timeToSimFraction(simSeries, 0.5), "never"),
			slotOr(analysis.TimeToFraction(curve, 0.9)),
			fmtOr(timeToSimFraction(simSeries, 0.9), "never"),
		)
		ts := stats.NewTimeSeries("model-" + a.String())
		for slot, v := range curve {
			if slot%5 == 0 {
				ts.Add(float64(slot), v)
			}
		}
		curves = append(curves, ts)
	}
	if err := tbl.WriteText(w); err != nil {
		return err
	}
	fmt.Fprintln(w, "One model timeslot is mapped to one simulated second. The model's")
	fmt.Fprintln(w, "speed ordering (Proposition 4) should match the simulator's; absolute")
	fmt.Fprintln(w, "times differ where the slotted approximation is coarse.")
	fmt.Fprintln(w)
	sink.AddSeries("validate-bootstrap-model", curves...)
	return sink.AddTable("validate-bootstrap", tbl)
}

// meanCapacity returns the expected peer upload rate under the config's
// bandwidth mix.
func meanCapacity(cfg sim.Config) float64 {
	var total, weight float64
	for _, c := range cfg.Bandwidth.Classes {
		total += c.Rate * c.Weight
		weight += c.Weight
	}
	if weight == 0 {
		return 0
	}
	return total / weight
}

// timeToSimFraction finds when the simulated bootstrapped fraction first
// reaches the target, or NaN if it never does.
func timeToSimFraction(ts *stats.TimeSeries, fraction float64) float64 {
	for _, p := range ts.Points {
		if p.V >= fraction {
			return p.T
		}
	}
	return math.NaN()
}

func slotOr(slot int) string {
	if slot < 0 {
		return "never"
	}
	return fmt.Sprintf("%d", slot)
}
