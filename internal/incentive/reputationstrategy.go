package incentive

import (
	"repro/internal/algo"
	"repro/internal/reputation"
)

// reputationStrategy is the basic reputation mechanism (Section III-A):
// the probability of uploading to a neighbor is proportional to the total
// number of pieces that neighbor has uploaded to *anyone* (a global score,
// as in EigenTrust). A fraction α_R of decisions are altruistic uniform
// picks, which is how the mechanism bootstraps zero-reputation newcomers.
type reputationStrategy struct {
	params Params
	ledger *reputation.Ledger

	scratch []contribEntry // per-decision score cache, reused
}

var _ Strategy = (*reputationStrategy)(nil)

func newReputation(p Params, ledger *reputation.Ledger) *reputationStrategy {
	return &reputationStrategy{params: p, ledger: ledger}
}

func (*reputationStrategy) Algorithm() algo.Algorithm { return algo.Reputation }

func (r *reputationStrategy) NextReceiver(view NodeView) PeerID {
	wanting := wantingNeighbors(view)
	if len(wanting) == 0 {
		return NoPeer
	}
	rng := view.RNG()
	if rng.Float64() < r.params.AlphaR {
		// Altruistic bootstrap share.
		return randomPeer(rng, wanting)
	}
	// Reputation-weighted pick. If every interested neighbor has zero
	// reputation the tit-for-tat share idles, mirroring the slow
	// bootstrapping the paper derives in Table II. Scores are read once per
	// candidate; the accumulation order — and thus the exact float
	// arithmetic — matches the two-pass original.
	ents := r.scratch[:0]
	var total float64
	for _, p := range wanting {
		s := view.Reputation(p)
		ents = append(ents, contribEntry{p, s})
		total += s
	}
	r.scratch = ents
	if total <= 0 {
		return NoPeer
	}
	target := rng.Float64() * total
	var acc float64
	for _, e := range ents {
		acc += e.weight
		if target < acc {
			return e.id
		}
	}
	return wanting[len(wanting)-1]
}

func (*reputationStrategy) OnSent(NodeView, PeerID, float64) {}

func (*reputationStrategy) OnReceived(NodeView, PeerID, float64) {}

func (r *reputationStrategy) Forget(peer PeerID) {
	// Global scores live in the ledger; nothing local to erase. The ledger
	// reset itself is driven by the environment (whitewashing model).
	_ = peer
}
