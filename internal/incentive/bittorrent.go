package incentive

import (
	"slices"

	"repro/internal/algo"
)

// bitTorrent is the reciprocity/altruism hybrid (Section III-A): a fixed
// fraction 1−α_BT of upload decisions go to the top n_BT contributors from
// the previous timeslot (tit-for-tat), and the remaining α_BT go to random
// neighbors (optimistic unchoking), which is what bootstraps newcomers.
// This mirrors the paper's simulation setup: "users upload to random
// neighbors with a 20% probability, and otherwise to neighbors with the
// highest contributions."
type bitTorrent struct {
	params     Params
	roundStart float64

	// ranked holds every peer with a positive contribution window, kept
	// sorted by (contribution desc, id asc) — the tit-for-tat ranking.
	// Weights change only on OnReceived (one entry bubbles up) and on the
	// round rotation (full re-sort), so each upload decision walks the
	// prefix of an already-ranked list instead of gathering and sorting
	// candidates from scratch.
	ranked []contribRecord

	top []PeerID // per-decision top-n_BT id slice, reused
}

var _ Strategy = (*bitTorrent)(nil)

func newBitTorrent(p Params) *bitTorrent {
	return &bitTorrent{params: p}
}

func (*bitTorrent) Algorithm() algo.Algorithm { return algo.BitTorrent }

// compareRecordDesc is the tit-for-tat ranking: blended contribution
// descending, ID ascending as the tiebreak — a strict total order, so the
// ranked list has exactly one valid arrangement and incremental maintenance
// (bubbling, re-sorting) cannot diverge from a from-scratch sort.
func compareRecordDesc(x, y contribRecord) int {
	cx, cy := x.cur+x.prev, y.cur+y.prev
	switch {
	case cx > cy:
		return -1
	case cx < cy:
		return 1
	case x.id < y.id:
		return -1
	case x.id > y.id:
		return 1
	}
	return 0
}

// rotate advances the contribution window when a round has elapsed: each
// entry's current total becomes its previous one, entries left with nothing
// are dropped (they can never be ranked), and the survivors are re-ranked
// under their new weights.
func (b *bitTorrent) rotate(now float64) {
	if now-b.roundStart < b.params.RoundSeconds {
		return
	}
	out := b.ranked[:0]
	for _, r := range b.ranked {
		if r.cur != 0 {
			out = append(out, contribRecord{id: r.id, prev: r.cur})
		}
	}
	b.ranked = out
	slices.SortFunc(b.ranked, compareRecordDesc)
	b.roundStart = now
}

func (b *bitTorrent) NextReceiver(view NodeView) PeerID {
	b.rotate(view.Now())
	wanting := wantingNeighbors(view)
	if len(wanting) == 0 {
		return NoPeer
	}
	if view.RNG().Float64() < b.params.AlphaBT {
		// Optimistic unchoke: uniformly random interested neighbor.
		return randomPeer(view.RNG(), wanting)
	}
	// Tit-for-tat: serve one of the top n_BT interested contributors. The
	// ranked list is already in (contribution desc, id asc) order, so the
	// top set is the first n_BT entries that pass the interest filter —
	// identical to sorting the interested contributors per decision. If
	// nobody has contributed, this share of bandwidth idles — newcomers are
	// reached only through the optimistic branch, which is what makes
	// BitTorrent's bootstrapping slower than altruism's (Table II).
	top := b.top[:0]
	for i := range b.ranked {
		if id := b.ranked[i].id; view.WantsFromMe(id) {
			top = append(top, id)
			if len(top) == b.params.NBT {
				break
			}
		}
	}
	b.top = top
	return randomPeer(view.RNG(), top)
}

func (b *bitTorrent) OnSent(NodeView, PeerID, float64) {}

func (b *bitTorrent) OnReceived(view NodeView, from PeerID, bytes float64) {
	b.rotate(view.Now())
	i := len(b.ranked)
	for j := range b.ranked {
		if b.ranked[j].id == from {
			i = j
			break
		}
	}
	if i == len(b.ranked) {
		b.ranked = append(b.ranked, contribRecord{id: from, cur: bytes})
	} else {
		b.ranked[i].cur += bytes
	}
	// The entry's weight grew, so it can only move toward the front.
	for i > 0 && compareRecordDesc(b.ranked[i], b.ranked[i-1]) < 0 {
		b.ranked[i], b.ranked[i-1] = b.ranked[i-1], b.ranked[i]
		i--
	}
}

func (b *bitTorrent) Forget(peer PeerID) {
	for j := range b.ranked {
		if b.ranked[j].id == peer {
			b.ranked = slices.Delete(b.ranked, j, j+1)
			return
		}
	}
}
