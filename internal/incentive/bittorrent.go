package incentive

import (
	"sort"

	"repro/internal/algo"
)

// bitTorrent is the reciprocity/altruism hybrid (Section III-A): a fixed
// fraction 1−α_BT of upload decisions go to the top n_BT contributors from
// the previous timeslot (tit-for-tat), and the remaining α_BT go to random
// neighbors (optimistic unchoking), which is what bootstraps newcomers.
// This mirrors the paper's simulation setup: "users upload to random
// neighbors with a 20% probability, and otherwise to neighbors with the
// highest contributions."
type bitTorrent struct {
	params     Params
	roundStart float64
	current    map[PeerID]float64 // bytes received in the current round
	previous   map[PeerID]float64 // bytes received in the previous round
}

var _ Strategy = (*bitTorrent)(nil)

func newBitTorrent(p Params) *bitTorrent {
	return &bitTorrent{
		params:   p,
		current:  make(map[PeerID]float64),
		previous: make(map[PeerID]float64),
	}
}

func (*bitTorrent) Algorithm() algo.Algorithm { return algo.BitTorrent }

// rotate advances the contribution window when a round has elapsed.
func (b *bitTorrent) rotate(now float64) {
	if now-b.roundStart < b.params.RoundSeconds {
		return
	}
	b.previous = b.current
	b.current = make(map[PeerID]float64, len(b.previous))
	b.roundStart = now
}

// contribution blends the previous round's total with the current round's
// running total, so fresh uploads count before the round closes.
func (b *bitTorrent) contribution(p PeerID) float64 {
	return b.previous[p] + b.current[p]
}

func (b *bitTorrent) NextReceiver(view NodeView) PeerID {
	b.rotate(view.Now())
	wanting := wantingNeighbors(view)
	if len(wanting) == 0 {
		return NoPeer
	}
	if view.RNG().Float64() < b.params.AlphaBT {
		// Optimistic unchoke: uniformly random interested neighbor.
		return randomPeer(view.RNG(), wanting)
	}
	// Tit-for-tat: among interested neighbors with positive contribution,
	// serve one of the top n_BT. If nobody has contributed, this share of
	// bandwidth idles — newcomers are reached only through the optimistic
	// branch, which is what makes BitTorrent's bootstrapping slower than
	// altruism's (Table II).
	contributors := make([]PeerID, 0, len(wanting))
	for _, p := range wanting {
		if b.contribution(p) > 0 {
			contributors = append(contributors, p)
		}
	}
	if len(contributors) == 0 {
		return NoPeer
	}
	sort.Slice(contributors, func(i, j int) bool {
		ci, cj := b.contribution(contributors[i]), b.contribution(contributors[j])
		if ci != cj {
			return ci > cj
		}
		return contributors[i] < contributors[j] // deterministic tie-break
	})
	top := contributors
	if len(top) > b.params.NBT {
		top = top[:b.params.NBT]
	}
	return randomPeer(view.RNG(), top)
}

func (b *bitTorrent) OnSent(NodeView, PeerID, float64) {}

func (b *bitTorrent) OnReceived(view NodeView, from PeerID, bytes float64) {
	b.rotate(view.Now())
	b.current[from] += bytes
}

func (b *bitTorrent) Forget(peer PeerID) {
	delete(b.current, peer)
	delete(b.previous, peer)
}
