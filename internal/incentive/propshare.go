package incentive

import (
	"repro/internal/algo"
)

// propShare implements PropShare [5] (Levin et al., "BitTorrent is an
// auction"), the BitTorrent variant from the paper's related work: instead
// of splitting the reciprocal bandwidth equally among the top n_BT
// contributors, each upload decision picks an interested neighbor with
// probability *proportional* to its contribution in the current window,
// with the α_BT share still reserved for uniform optimistic picks.
// Proportional allocation pays each contributor in proportion to what it
// gave, which reduces the profitability of BitTyrant-style strategic
// under-contribution.
//
// This mechanism is an extension beyond the paper's six; the ablation bench
// compares it against plain BitTorrent.
type propShare struct {
	params     Params
	roundStart float64
	window     contribLedger

	scratch []contribEntry // per-decision contribution cache, reused
}

var _ Strategy = (*propShare)(nil)

func newPropShare(p Params) *propShare {
	return &propShare{params: p}
}

func (*propShare) Algorithm() algo.Algorithm { return algo.PropShare }

func (p *propShare) rotate(now float64) {
	if now-p.roundStart < p.params.RoundSeconds {
		return
	}
	p.window.rotate()
	p.roundStart = now
}

func (p *propShare) NextReceiver(view NodeView) PeerID {
	p.rotate(view.Now())
	wanting := wantingNeighbors(view)
	if len(wanting) == 0 {
		return NoPeer
	}
	rng := view.RNG()
	if rng.Float64() < p.params.AlphaBT {
		return randomPeer(rng, wanting)
	}
	// Contributions are read once per candidate; the accumulation order —
	// and thus the exact float arithmetic — matches the two-pass original.
	ents := p.scratch[:0]
	var total float64
	for _, id := range wanting {
		c := p.window.contribution(id)
		ents = append(ents, contribEntry{id, c})
		total += c
	}
	p.scratch = ents
	if total <= 0 {
		// Nobody has contributed: like BitTorrent, the proportional share
		// idles and newcomers are reached only through the optimistic
		// branch.
		return NoPeer
	}
	target := rng.Float64() * total
	var acc float64
	for _, e := range ents {
		acc += e.weight
		if target < acc {
			return e.id
		}
	}
	return wanting[len(wanting)-1]
}

func (p *propShare) OnSent(NodeView, PeerID, float64) {}

func (p *propShare) OnReceived(view NodeView, from PeerID, bytes float64) {
	p.rotate(view.Now())
	p.window.add(from, bytes)
}

func (p *propShare) Forget(peer PeerID) {
	p.window.forget(peer)
}
