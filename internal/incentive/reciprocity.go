package incentive

import (
	"repro/internal/algo"
)

// reciprocity is the pure direct-reciprocity mechanism: a user uploads only
// to the neighbor that has contributed the most to it, and only while it
// still owes that neighbor data. No user can *initiate* an exchange, which
// is exactly why the paper proves the mechanism deadlocks (Lemma 2: zero
// upload utilization) — uploads require prior downloads, which require
// prior uploads.
type reciprocity struct {
	received map[PeerID]float64 // bytes received from each peer
	sent     map[PeerID]float64 // bytes sent to each peer
}

var _ Strategy = (*reciprocity)(nil)

func newReciprocity() *reciprocity {
	return &reciprocity{
		received: make(map[PeerID]float64),
		sent:     make(map[PeerID]float64),
	}
}

func (*reciprocity) Algorithm() algo.Algorithm { return algo.Reciprocity }

func (r *reciprocity) NextReceiver(view NodeView) PeerID {
	// Candidates: neighbors we owe data to (received > sent), i.e., whose
	// gift we can reciprocate. Among them, the one that has contributed
	// the most (the simulation setup in Section V-A).
	best := NoPeer
	var bestContribution float64
	for _, n := range view.Neighbors() {
		owed := r.received[n] - r.sent[n]
		if owed <= 0 || !view.WantsFromMe(n) {
			continue
		}
		if r.received[n] > bestContribution {
			best, bestContribution = n, r.received[n]
		}
	}
	return best
}

func (r *reciprocity) OnSent(_ NodeView, to PeerID, bytes float64) {
	r.sent[to] += bytes
}

func (r *reciprocity) OnReceived(_ NodeView, from PeerID, bytes float64) {
	r.received[from] += bytes
}

func (r *reciprocity) Forget(peer PeerID) {
	delete(r.received, peer)
	delete(r.sent, peer)
}
