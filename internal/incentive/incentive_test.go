package incentive

import (
	"math/rand"
	"testing"

	"repro/internal/algo"
	"repro/internal/attest"
	"repro/internal/reputation"
)

// mustCredit seeds a ledger score through the proof-first API.
func mustCredit(t *testing.T, l *reputation.Ledger, att attest.Attestation) {
	t.Helper()
	if err := l.Credit(att); err != nil {
		t.Fatalf("Credit: %v", err)
	}
}

// fakeView is a scriptable NodeView for strategy unit tests.
type fakeView struct {
	self       PeerID
	now        float64
	rng        *rand.Rand
	neighbors  []PeerID
	wants      map[PeerID]bool // peer needs a piece I hold
	iNeed      map[PeerID]bool // peer holds a piece I need
	pieceCount map[PeerID]int
	reps       map[PeerID]float64
}

var _ NodeView = (*fakeView)(nil)

func newFakeView(neighbors ...PeerID) *fakeView {
	v := &fakeView{
		self:       100,
		rng:        rand.New(rand.NewSource(1)),
		neighbors:  neighbors,
		wants:      make(map[PeerID]bool),
		iNeed:      make(map[PeerID]bool),
		pieceCount: make(map[PeerID]int),
		reps:       make(map[PeerID]float64),
	}
	for _, n := range neighbors {
		v.wants[n] = true
	}
	return v
}

func (v *fakeView) Self() PeerID    { return v.self }
func (v *fakeView) Now() float64    { return v.now }
func (v *fakeView) RNG() *rand.Rand { return v.rng }

// Neighbors hands out a copy: the NodeView contract lets strategies filter
// the returned slice in place, and the fake must keep its script intact.
func (v *fakeView) Neighbors() []PeerID {
	out := make([]PeerID, len(v.neighbors))
	copy(out, v.neighbors)
	return out
}
func (v *fakeView) WantsFromMe(p PeerID) bool   { return v.wants[p] }
func (v *fakeView) INeedFrom(p PeerID) bool     { return v.iNeed[p] }
func (v *fakeView) PieceCount(p PeerID) int     { return v.pieceCount[p] }
func (v *fakeView) Reputation(p PeerID) float64 { return v.reps[p] }

func TestFactoryAllAlgorithms(t *testing.T) {
	ledger := reputation.NewLedger(attest.AcceptAll{})
	for _, a := range algo.All() {
		s, err := New(a, Params{}, ledger)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if s.Algorithm() != a {
			t.Errorf("%v reports %v", a, s.Algorithm())
		}
	}
	if _, err := New(algo.Reputation, Params{}, nil); err == nil {
		t.Error("reputation without ledger accepted")
	}
	if _, err := New(algo.Algorithm(99), Params{}, ledger); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := New(algo.Altruism, Params{AlphaBT: 2}, nil); err == nil {
		t.Error("bad params accepted")
	}
}

func TestParamsNormalize(t *testing.T) {
	p, err := (Params{}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if p != DefaultParams() {
		t.Errorf("zero params normalized to %+v", p)
	}
	bad := []Params{
		{AlphaBT: -0.1, NBT: 1, RoundSeconds: 1, AlphaR: 0.1},
		{AlphaBT: 0.2, NBT: -1, RoundSeconds: 1, AlphaR: 0.1},
		{AlphaBT: 0.2, NBT: 1, RoundSeconds: -1, AlphaR: 0.1},
		{AlphaBT: 0.2, NBT: 1, RoundSeconds: 1, AlphaR: 1.1},
	}
	for i, b := range bad {
		if _, err := b.Normalize(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestAltruismPicksRandomWanting(t *testing.T) {
	s := newAltruism()
	v := newFakeView(1, 2, 3)
	v.wants[2] = false
	counts := map[PeerID]int{}
	for i := 0; i < 1000; i++ {
		counts[s.NextReceiver(v)]++
	}
	if counts[2] != 0 {
		t.Error("altruism picked uninterested neighbor")
	}
	if counts[1] == 0 || counts[3] == 0 {
		t.Errorf("altruism not spreading: %v", counts)
	}
	// No candidates -> NoPeer.
	empty := newFakeView()
	if got := s.NextReceiver(empty); got != NoPeer {
		t.Errorf("empty view pick = %v", got)
	}
}

func TestReciprocityNeverInitiates(t *testing.T) {
	s := newReciprocity()
	v := newFakeView(1, 2, 3)
	for i := 0; i < 100; i++ {
		if got := s.NextReceiver(v); got != NoPeer {
			t.Fatalf("reciprocity initiated an upload to %v", got)
		}
	}
}

func TestReciprocityReciprocatesTopContributor(t *testing.T) {
	s := newReciprocity()
	v := newFakeView(1, 2, 3)
	s.OnReceived(v, 1, 100)
	s.OnReceived(v, 2, 300)
	if got := s.NextReceiver(v); got != 2 {
		t.Errorf("pick = %v, want top contributor 2", got)
	}
	// After reciprocating in full, peer 2 is no longer owed.
	s.OnSent(v, 2, 300)
	if got := s.NextReceiver(v); got != 1 {
		t.Errorf("pick = %v, want 1 after settling with 2", got)
	}
	s.OnSent(v, 1, 100)
	if got := s.NextReceiver(v); got != NoPeer {
		t.Errorf("pick = %v, want NoPeer when nothing owed", got)
	}
}

func TestReciprocityForget(t *testing.T) {
	s := newReciprocity()
	v := newFakeView(1)
	s.OnReceived(v, 1, 100)
	s.Forget(1)
	if got := s.NextReceiver(v); got != NoPeer {
		t.Errorf("pick after Forget = %v", got)
	}
}

func TestBitTorrentSplitsTitForTatAndOptimistic(t *testing.T) {
	s := newBitTorrent(Params{AlphaBT: 0.2, NBT: 2, RoundSeconds: 10})
	v := newFakeView(1, 2, 3, 4)
	// Peers 1 and 2 contributed; 3, 4 did not.
	s.OnReceived(v, 1, 500)
	s.OnReceived(v, 2, 400)
	counts := map[PeerID]int{}
	const trials = 20000
	for i := 0; i < trials; i++ {
		counts[s.NextReceiver(v)]++
	}
	// ~80% to {1,2}, ~20% spread over all four.
	tftShare := float64(counts[1]+counts[2]) / trials
	if tftShare < 0.82 || tftShare > 0.95 {
		t.Errorf("contributors received %.3f of picks, want ~0.85-0.90: %v", tftShare, counts)
	}
	if counts[3] == 0 || counts[4] == 0 {
		t.Error("optimistic unchoke never reached non-contributors")
	}
}

func TestBitTorrentIdlesWithoutContributors(t *testing.T) {
	s := newBitTorrent(DefaultParams())
	v := newFakeView(1, 2, 3)
	noPeer, picked := 0, 0
	for i := 0; i < 10000; i++ {
		if s.NextReceiver(v) == NoPeer {
			noPeer++
		} else {
			picked++
		}
	}
	// With no contributions, only the α_BT = 20% optimistic branch fires.
	frac := float64(picked) / 10000
	if frac < 0.17 || frac > 0.23 {
		t.Errorf("pick fraction %.3f, want ~0.2", frac)
	}
	if noPeer == 0 {
		t.Error("tit-for-tat share should idle without contributors")
	}
}

func TestBitTorrentRoundRotation(t *testing.T) {
	s := newBitTorrent(Params{AlphaBT: 0, NBT: 4, RoundSeconds: 10})
	v := newFakeView(1, 2)
	s.OnReceived(v, 1, 100)
	if got := s.NextReceiver(v); got != 1 {
		t.Fatalf("pick = %v, want 1", got)
	}
	// Two rounds later the old contribution has aged out entirely.
	v.now = 11
	s.NextReceiver(v) // triggers first rotation (100 moves to previous)
	v.now = 22
	if got := s.NextReceiver(v); got != NoPeer {
		t.Errorf("pick = %v after contribution aged out, want NoPeer", got)
	}
}

func TestBitTorrentTopNBTOnly(t *testing.T) {
	s := newBitTorrent(Params{AlphaBT: 0.001, NBT: 2, RoundSeconds: 1000})
	v := newFakeView(1, 2, 3)
	s.OnReceived(v, 1, 300)
	s.OnReceived(v, 2, 200)
	s.OnReceived(v, 3, 100) // third-best: outside top-2
	counts := map[PeerID]int{}
	for i := 0; i < 5000; i++ {
		counts[s.NextReceiver(v)]++
	}
	if counts[3] > 50 { // only via the 0.1% optimistic branch
		t.Errorf("third contributor picked %d times, want ~never", counts[3])
	}
}

func TestFairTorrentServesMostOwedFirst(t *testing.T) {
	s := newFairTorrent()
	v := newFakeView(1, 2, 3)
	s.OnReceived(v, 2, 100) // deficit[2] = -100: we owe 2 the most
	s.OnReceived(v, 3, 50)
	if got := s.NextReceiver(v); got != 2 {
		t.Errorf("pick = %v, want most-owed peer 2", got)
	}
	s.OnSent(v, 2, 100) // settled
	if got := s.NextReceiver(v); got != 3 {
		t.Errorf("pick = %v, want next-owed peer 3", got)
	}
}

func TestFairTorrentAltruismAtZeroDeficit(t *testing.T) {
	// All deficits zero: uniform pick among wanting (the bootstrap path).
	s := newFairTorrent()
	v := newFakeView(1, 2, 3)
	counts := map[PeerID]int{}
	for i := 0; i < 3000; i++ {
		counts[s.NextReceiver(v)]++
	}
	for _, p := range []PeerID{1, 2, 3} {
		if counts[p] < 800 {
			t.Errorf("peer %v picked %d of 3000, want ~1000", p, counts[p])
		}
	}
}

func TestFairTorrentPrefersNewcomerOverCreditor(t *testing.T) {
	s := newFairTorrent()
	v := newFakeView(1, 2)
	s.OnSent(v, 1, 100) // deficit[1] = +100: we already over-served 1
	if got := s.NextReceiver(v); got != 2 {
		t.Errorf("pick = %v, want zero-deficit newcomer 2", got)
	}
	s.Forget(1) // whitewash: 1 is back at zero deficit
	counts := map[PeerID]int{}
	for i := 0; i < 1000; i++ {
		counts[s.NextReceiver(v)]++
	}
	if counts[1] == 0 {
		t.Error("whitewashed peer no longer eligible")
	}
}

func TestReputationWeightedPick(t *testing.T) {
	ledger := reputation.NewLedger(attest.AcceptAll{})
	mustCredit(t, ledger, attest.Claim(1, 9, 0, 900))
	mustCredit(t, ledger, attest.Claim(2, 9, 0, 100))
	p, _ := (Params{AlphaR: 0.0001, AlphaBT: 0.2, NBT: 4, RoundSeconds: 10}).Normalize()
	s := newReputation(p, ledger)
	v := newFakeView(1, 2, 3)
	v.reps[1] = ledger.Score(1)
	v.reps[2] = ledger.Score(2)
	counts := map[PeerID]int{}
	const trials = 20000
	for i := 0; i < trials; i++ {
		counts[s.NextReceiver(v)]++
	}
	frac1 := float64(counts[1]) / trials
	if frac1 < 0.85 || frac1 > 0.95 {
		t.Errorf("high-rep peer share %.3f, want ~0.9", frac1)
	}
	if counts[3] > trials/100 {
		t.Errorf("zero-rep peer picked %d times with tiny alphaR", counts[3])
	}
}

func TestReputationIdlesWhenAllZero(t *testing.T) {
	ledger := reputation.NewLedger(attest.AcceptAll{})
	p, _ := (Params{AlphaR: 0.1, AlphaBT: 0.2, NBT: 4, RoundSeconds: 10}).Normalize()
	s := newReputation(p, ledger)
	v := newFakeView(1, 2)
	picked := 0
	for i := 0; i < 10000; i++ {
		if s.NextReceiver(v) != NoPeer {
			picked++
		}
	}
	frac := float64(picked) / 10000
	if frac < 0.07 || frac > 0.13 {
		t.Errorf("zero-rep pick fraction %.3f, want ~alphaR = 0.1", frac)
	}
}

func TestTChainObligationPriority(t *testing.T) {
	s := newTChain()
	v := newFakeView(1, 2, 3)
	// Receiving from 1, and 1 wants from me -> direct obligation to 1.
	s.OnReceived(v, 1, 100)
	if got := s.NextReceiver(v); got != 1 {
		t.Errorf("pick = %v, want direct obligation to 1", got)
	}
	// Obligation consumed; next pick is opportunistic (any wanting).
	if got := s.NextReceiver(v); got == NoPeer {
		t.Error("opportunistic seeding should always find a wanting neighbor")
	}
}

func TestTChainIndirectObligationForNewcomer(t *testing.T) {
	s := newTChain()
	v := newFakeView(1, 2)
	v.wants[1] = false // sender 1 needs nothing from me -> indirect
	s.OnReceived(v, 1, 100)
	if got := s.NextReceiver(v); got != 2 {
		t.Errorf("pick = %v, want indirect target 2", got)
	}
}

func TestTChainStaleObligationDropped(t *testing.T) {
	s := newTChain()
	v := newFakeView(1, 2)
	s.OnReceived(v, 1, 100) // direct obligation to 1
	v.wants[1] = false      // 1 finished; no longer wants
	if got := s.NextReceiver(v); got != 2 {
		t.Errorf("pick = %v, want fallthrough to opportunistic 2", got)
	}
}

func TestTChainForgetDropsObligations(t *testing.T) {
	s := newTChain()
	v := newFakeView(1, 2)
	s.OnReceived(v, 1, 100)
	s.Forget(1)
	if got := s.NextReceiver(v); got != 2 {
		t.Errorf("pick = %v after Forget, want 2", got)
	}
}

func TestTChainOpportunisticSpreadsUniformly(t *testing.T) {
	// With no obligations pending, opportunistic seeding is a uniform pick
	// among interested neighbors (Corollary 2: T-Chain approaches
	// altruism's exchange probability).
	s := newTChain()
	v := newFakeView(1, 2)
	counts := map[PeerID]int{}
	for i := 0; i < 5000; i++ {
		counts[s.NextReceiver(v)]++
	}
	for _, p := range []PeerID{1, 2} {
		if counts[p] < 2200 || counts[p] > 2800 {
			t.Errorf("peer %v picked %d of 5000, want ~2500", p, counts[p])
		}
	}
}

func TestTChainObligationQueueBounded(t *testing.T) {
	s := newTChain()
	v := newFakeView(1, 2, 3)
	for i := 0; i < 1000; i++ {
		s.OnReceived(v, 1, 1)
	}
	if len(s.obligations) > 4*len(v.neighbors) {
		t.Errorf("obligation queue grew to %d", len(s.obligations))
	}
}

func TestStrategiesHandleEmptyNeighborhood(t *testing.T) {
	ledger := reputation.NewLedger(attest.AcceptAll{})
	empty := newFakeView()
	for _, a := range algo.All() {
		s, err := New(a, Params{}, ledger)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.NextReceiver(empty); got != NoPeer {
			t.Errorf("%v picked %v from empty neighborhood", a, got)
		}
		// Hooks must not panic on unknown peers.
		s.OnSent(empty, 42, 10)
		s.OnReceived(empty, 42, 10)
		s.Forget(42)
	}
}
