package incentive

import (
	"testing"

	"repro/internal/algo"
	"repro/internal/attest"
	"repro/internal/reputation"
)

// benchView models a 50-neighbor decision, the simulator's hot path.
func benchView() *fakeView {
	neighbors := make([]PeerID, 50)
	for i := range neighbors {
		neighbors[i] = PeerID(i)
	}
	return newFakeView(neighbors...)
}

func BenchmarkNextReceiver(b *testing.B) {
	ledger := reputation.NewLedger(attest.AcceptAll{})
	for i := 0; i < 50; i++ {
		_ = ledger.Credit(attest.Claim(int32(i), -1, 0, int64(i*1000)))
	}
	algorithms := append(algo.All(), algo.PropShare)
	for _, a := range algorithms {
		b.Run(a.String(), func(b *testing.B) {
			s, err := New(a, Params{}, ledger)
			if err != nil {
				b.Fatal(err)
			}
			v := benchView()
			for i := 0; i < 50; i++ {
				v.reps[PeerID(i)] = ledger.Score(i)
				s.OnReceived(v, PeerID(i), float64(i*100))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.NextReceiver(v)
			}
		})
	}
}
