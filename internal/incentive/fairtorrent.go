package incentive

import (
	"repro/internal/algo"
)

// fairTorrent is the reputation/altruism hybrid (Section III-A): each user
// maintains a deficit counter per peer — bytes uploaded to that peer minus
// bytes received from it — as a local reputation score, and always uploads
// to the interested neighbor with the smallest (most negative) deficit.
// When every deficit is nonnegative, the pick falls on a zero-deficit peer
// (newcomers included), which is the altruistic component that bootstraps
// the swarm and, simultaneously, the exposure free-riders exploit
// (Table III: (1−ω)·ΣU).
type fairTorrent struct {
	deficit map[PeerID]float64 // uploaded − received, per peer
}

var _ Strategy = (*fairTorrent)(nil)

func newFairTorrent() *fairTorrent {
	return &fairTorrent{deficit: make(map[PeerID]float64)}
}

func (*fairTorrent) Algorithm() algo.Algorithm { return algo.FairTorrent }

func (f *fairTorrent) NextReceiver(view NodeView) PeerID {
	wanting := wantingNeighbors(view)
	if len(wanting) == 0 {
		return NoPeer
	}
	// Find the minimum deficit; sample uniformly among ties so zero-deficit
	// newcomers share the altruistic bandwidth evenly.
	rng := view.RNG()
	best := NoPeer
	bestDeficit := 0.0
	ties := 0
	for _, p := range wanting {
		d := f.deficit[p]
		switch {
		case best == NoPeer || d < bestDeficit:
			best, bestDeficit, ties = p, d, 1
		case d == bestDeficit:
			ties++
			if rng.Intn(ties) == 0 {
				best = p
			}
		}
	}
	return best
}

func (f *fairTorrent) OnSent(_ NodeView, to PeerID, bytes float64) {
	f.deficit[to] += bytes
}

func (f *fairTorrent) OnReceived(_ NodeView, from PeerID, bytes float64) {
	f.deficit[from] -= bytes
}

func (f *fairTorrent) Forget(peer PeerID) {
	delete(f.deficit, peer)
}
