// Package incentive implements the six incentive mechanisms the paper
// compares (Section III): the basic reciprocity, altruism, and reputation
// algorithms, and the BitTorrent, FairTorrent, and T-Chain hybrids.
//
// A Strategy decides, each time its peer has a free upload slot, which
// neighbor should receive the next piece. Strategies observe their
// environment only through the NodeView interface, so the same
// implementations drive both the discrete-event swarm simulator
// (internal/sim) and the live TCP node (internal/node).
package incentive

import (
	"fmt"
	"math/rand"

	"repro/internal/algo"
	"repro/internal/reputation"
)

// PeerID identifies a peer within one swarm. IDs are small dense integers
// assigned by the environment.
type PeerID int

// NoPeer is returned by NextReceiver when no upload is currently possible.
const NoPeer PeerID = -1

// NodeView is the window through which a strategy observes its peer's
// environment. Implementations must be cheap: strategies call these methods
// on every upload decision.
type NodeView interface {
	// Self returns the ID of the peer this strategy controls.
	Self() PeerID
	// Now returns the current time in seconds (virtual or wall-clock).
	Now() float64
	// RNG returns the deterministic random source for this peer.
	RNG() *rand.Rand
	// Neighbors returns the currently connected candidate receivers.
	Neighbors() []PeerID
	// WantsFromMe reports whether peer needs at least one piece I hold.
	WantsFromMe(peer PeerID) bool
	// INeedFrom reports whether peer holds at least one piece I need.
	INeedFrom(peer PeerID) bool
	// PieceCount returns the number of pieces peer is known to hold.
	PieceCount(peer PeerID) int
	// Reputation returns peer's global reputation score, 0 if unknown.
	Reputation(peer PeerID) float64
}

// Strategy is one peer's incentive mechanism. Strategies are stateful and
// owned by exactly one peer; they are not safe for concurrent use (the
// simulator is single-threaded and the live node serializes decisions).
type Strategy interface {
	// Algorithm identifies the mechanism.
	Algorithm() algo.Algorithm
	// NextReceiver picks the neighbor to upload one piece to, or NoPeer if
	// the mechanism currently forbids uploading (e.g., reciprocity with
	// nothing to reciprocate).
	NextReceiver(view NodeView) PeerID
	// OnSent records that the peer finished uploading bytes to `to`.
	OnSent(view NodeView, to PeerID, bytes float64)
	// OnReceived records that the peer finished downloading bytes from
	// `from`.
	OnReceived(view NodeView, from PeerID, bytes float64)
	// Forget erases all local state about peer, modelling the peer's
	// departure or a whitewashing identity reset.
	Forget(peer PeerID)
}

// Params tunes the mechanisms. Zero values select the paper's experimental
// settings via Normalize.
type Params struct {
	// AlphaBT is BitTorrent's optimistic-unchoke probability (paper: 0.2).
	AlphaBT float64
	// NBT is the number of top contributors BitTorrent reciprocates with
	// (paper: n_BT = 4).
	NBT int
	// RoundSeconds is the tit-for-tat contribution window: "the previous
	// timeslot" in the paper's reciprocity/altruism hybrid description.
	RoundSeconds float64
	// AlphaR is the reputation algorithm's altruistic bootstrap share.
	AlphaR float64
}

// DefaultParams returns the paper's experimental settings.
func DefaultParams() Params {
	return Params{AlphaBT: 0.2, NBT: 4, RoundSeconds: 10, AlphaR: 0.1}
}

// Normalize fills zero fields with defaults and validates ranges.
func (p Params) Normalize() (Params, error) {
	def := DefaultParams()
	if p.AlphaBT == 0 {
		p.AlphaBT = def.AlphaBT
	}
	if p.NBT == 0 {
		p.NBT = def.NBT
	}
	if p.RoundSeconds == 0 {
		p.RoundSeconds = def.RoundSeconds
	}
	if p.AlphaR == 0 {
		p.AlphaR = def.AlphaR
	}
	if p.AlphaBT < 0 || p.AlphaBT > 1 {
		return p, fmt.Errorf("incentive: AlphaBT %g outside [0,1]", p.AlphaBT)
	}
	if p.AlphaR < 0 || p.AlphaR > 1 {
		return p, fmt.Errorf("incentive: AlphaR %g outside [0,1]", p.AlphaR)
	}
	if p.NBT < 1 {
		return p, fmt.Errorf("incentive: NBT %d must be >= 1", p.NBT)
	}
	if p.RoundSeconds <= 0 {
		return p, fmt.Errorf("incentive: RoundSeconds %g must be positive", p.RoundSeconds)
	}
	return p, nil
}

// New constructs the strategy for one compliant peer running the given
// mechanism. The ledger is required by the reputation algorithm and ignored
// by the others (it may be nil for them).
func New(a algo.Algorithm, params Params, ledger *reputation.Ledger) (Strategy, error) {
	p, err := params.Normalize()
	if err != nil {
		return nil, err
	}
	switch a {
	case algo.Reciprocity:
		return newReciprocity(), nil
	case algo.Altruism:
		return newAltruism(), nil
	case algo.BitTorrent:
		return newBitTorrent(p), nil
	case algo.FairTorrent:
		return newFairTorrent(), nil
	case algo.Reputation:
		if ledger == nil {
			return nil, fmt.Errorf("incentive: reputation algorithm requires a ledger")
		}
		return newReputation(p, ledger), nil
	case algo.TChain:
		return newTChain(), nil
	case algo.PropShare:
		return newPropShare(p), nil
	default:
		return nil, fmt.Errorf("incentive: unknown algorithm %v", a)
	}
}

// wantingNeighbors returns the neighbors that currently need at least one
// piece the local peer holds — the universal eligibility filter.
func wantingNeighbors(view NodeView) []PeerID {
	neighbors := view.Neighbors()
	out := make([]PeerID, 0, len(neighbors))
	for _, n := range neighbors {
		if view.WantsFromMe(n) {
			out = append(out, n)
		}
	}
	return out
}

// randomPeer picks uniformly from candidates, or NoPeer if empty.
func randomPeer(rng *rand.Rand, candidates []PeerID) PeerID {
	if len(candidates) == 0 {
		return NoPeer
	}
	return candidates[rng.Intn(len(candidates))]
}
