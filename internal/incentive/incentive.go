// Package incentive implements the six incentive mechanisms the paper
// compares (Section III): the basic reciprocity, altruism, and reputation
// algorithms, and the BitTorrent, FairTorrent, and T-Chain hybrids.
//
// A Strategy decides, each time its peer has a free upload slot, which
// neighbor should receive the next piece. Strategies observe their
// environment only through the NodeView interface, so the same
// implementations drive both the discrete-event swarm simulator
// (internal/sim) and the live TCP node (internal/node).
package incentive

import (
	"fmt"
	"math/rand"
	"slices"

	"repro/internal/algo"
	"repro/internal/reputation"
)

// PeerID identifies a peer within one swarm. IDs are small dense integers
// assigned by the environment.
type PeerID int

// NoPeer is returned by NextReceiver when no upload is currently possible.
const NoPeer PeerID = -1

// NodeView is the window through which a strategy observes its peer's
// environment. Implementations must be cheap: strategies call these methods
// on every upload decision.
type NodeView interface {
	// Self returns the ID of the peer this strategy controls.
	Self() PeerID
	// Now returns the current time in seconds (virtual or wall-clock).
	Now() float64
	// RNG returns the deterministic random source for this peer.
	RNG() *rand.Rand
	// Neighbors returns the currently connected candidate receivers. The
	// returned slice is valid only until the next call on the view, and the
	// caller may filter it in place — implementations must hand out storage
	// they are not reading concurrently, not an internal slice they rely on.
	Neighbors() []PeerID
	// WantsFromMe reports whether peer needs at least one piece I hold.
	WantsFromMe(peer PeerID) bool
	// INeedFrom reports whether peer holds at least one piece I need.
	INeedFrom(peer PeerID) bool
	// PieceCount returns the number of pieces peer is known to hold.
	PieceCount(peer PeerID) int
	// Reputation returns peer's global reputation score, 0 if unknown.
	Reputation(peer PeerID) float64
}

// Strategy is one peer's incentive mechanism. Strategies are stateful and
// owned by exactly one peer; they are not safe for concurrent use (the
// simulator is single-threaded and the live node serializes decisions).
type Strategy interface {
	// Algorithm identifies the mechanism.
	Algorithm() algo.Algorithm
	// NextReceiver picks the neighbor to upload one piece to, or NoPeer if
	// the mechanism currently forbids uploading (e.g., reciprocity with
	// nothing to reciprocate).
	NextReceiver(view NodeView) PeerID
	// OnSent records that the peer finished uploading bytes to `to`.
	OnSent(view NodeView, to PeerID, bytes float64)
	// OnReceived records that the peer finished downloading bytes from
	// `from`.
	OnReceived(view NodeView, from PeerID, bytes float64)
	// Forget erases all local state about peer, modelling the peer's
	// departure or a whitewashing identity reset.
	Forget(peer PeerID)
}

// Params tunes the mechanisms. Zero values select the paper's experimental
// settings via Normalize.
type Params struct {
	// AlphaBT is BitTorrent's optimistic-unchoke probability (paper: 0.2).
	AlphaBT float64
	// NBT is the number of top contributors BitTorrent reciprocates with
	// (paper: n_BT = 4).
	NBT int
	// RoundSeconds is the tit-for-tat contribution window: "the previous
	// timeslot" in the paper's reciprocity/altruism hybrid description.
	RoundSeconds float64
	// AlphaR is the reputation algorithm's altruistic bootstrap share.
	AlphaR float64
}

// DefaultParams returns the paper's experimental settings.
func DefaultParams() Params {
	return Params{AlphaBT: 0.2, NBT: 4, RoundSeconds: 10, AlphaR: 0.1}
}

// Normalize fills zero fields with defaults and validates ranges.
func (p Params) Normalize() (Params, error) {
	def := DefaultParams()
	if p.AlphaBT == 0 {
		p.AlphaBT = def.AlphaBT
	}
	if p.NBT == 0 {
		p.NBT = def.NBT
	}
	if p.RoundSeconds == 0 {
		p.RoundSeconds = def.RoundSeconds
	}
	if p.AlphaR == 0 {
		p.AlphaR = def.AlphaR
	}
	if p.AlphaBT < 0 || p.AlphaBT > 1 {
		return p, fmt.Errorf("incentive: AlphaBT %g outside [0,1]", p.AlphaBT)
	}
	if p.AlphaR < 0 || p.AlphaR > 1 {
		return p, fmt.Errorf("incentive: AlphaR %g outside [0,1]", p.AlphaR)
	}
	if p.NBT < 1 {
		return p, fmt.Errorf("incentive: NBT %d must be >= 1", p.NBT)
	}
	if p.RoundSeconds <= 0 {
		return p, fmt.Errorf("incentive: RoundSeconds %g must be positive", p.RoundSeconds)
	}
	return p, nil
}

// New constructs the strategy for one compliant peer running the given
// mechanism. The ledger is required by the reputation algorithm and ignored
// by the others (it may be nil for them).
func New(a algo.Algorithm, params Params, ledger *reputation.Ledger) (Strategy, error) {
	p, err := params.Normalize()
	if err != nil {
		return nil, err
	}
	switch a {
	case algo.Reciprocity:
		return newReciprocity(), nil
	case algo.Altruism:
		return newAltruism(), nil
	case algo.BitTorrent:
		return newBitTorrent(p), nil
	case algo.FairTorrent:
		return newFairTorrent(), nil
	case algo.Reputation:
		if ledger == nil {
			return nil, fmt.Errorf("incentive: reputation algorithm requires a ledger")
		}
		return newReputation(p, ledger), nil
	case algo.TChain:
		return newTChain(), nil
	case algo.PropShare:
		return newPropShare(p), nil
	default:
		return nil, fmt.Errorf("incentive: unknown algorithm %v", a)
	}
}

// wantingLister is an optional NodeView capability: views backed by a live
// interest index can produce the want-filtered neighbor list in one pass,
// skipping the per-neighbor WantsFromMe round trips. Implementations must
// return exactly the list the generic filter would build (same contents,
// same order, same in-place-filterable storage contract as Neighbors), or
// decline with ok == false.
type wantingLister interface {
	WantingNeighbors() (list []PeerID, ok bool)
}

// wantingNeighbors returns the neighbors that currently need at least one
// piece the local peer holds — the universal eligibility filter. It filters
// the view's slice in place (the NodeView contract permits this), so the
// per-decision hot path does not allocate; views implementing wantingLister
// short-circuit the filter entirely.
func wantingNeighbors(view NodeView) []PeerID {
	if wl, ok := view.(wantingLister); ok {
		if out, ok := wl.WantingNeighbors(); ok {
			return out
		}
	}
	neighbors := view.Neighbors()
	out := neighbors[:0]
	for _, n := range neighbors {
		if view.WantsFromMe(n) {
			out = append(out, n)
		}
	}
	return out
}

// contribRecord is one peer's rolling contribution state for the round-based
// mechanisms: bytes received from the peer in the current round and in the
// previous one.
type contribRecord struct {
	id        PeerID
	cur, prev float64
}

// contribLedger holds the per-peer contribution windows as an id-sorted
// slice. The round-based mechanisms read it once per candidate per upload
// decision, and a binary search over a few dozen contiguous records beats a
// map lookup there while also making the rotation sweep deterministic.
type contribLedger []contribRecord

// find locates id's record, returning its index and whether it exists; on a
// miss the index is the insertion point. Hand-rolled rather than
// slices.BinarySearchFunc because this sits on the per-candidate decision
// path, where the generic comparator's call overhead dominates the search.
func (l contribLedger) find(id PeerID) (int, bool) {
	lo, hi := 0, len(l)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if l[mid].id < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(l) && l[lo].id == id
}

// contribution blends the previous round's total with the current round's
// running total, so fresh uploads count before the round closes.
func (l contribLedger) contribution(id PeerID) float64 {
	if i, ok := l.find(id); ok {
		return l[i].cur + l[i].prev
	}
	return 0
}

// add records bytes received from id in the current round.
func (l *contribLedger) add(id PeerID, bytes float64) {
	i, ok := l.find(id)
	if ok {
		(*l)[i].cur += bytes
		return
	}
	*l = slices.Insert(*l, i, contribRecord{id: id, cur: bytes})
}

// rotate closes the round: each record's current total becomes its previous
// one, and records with nothing in either round are dropped, bounding the
// ledger the way the old per-round map clear did.
func (l *contribLedger) rotate() {
	out := (*l)[:0]
	for _, r := range *l {
		if r.cur != 0 || r.prev != 0 {
			out = append(out, contribRecord{id: r.id, prev: r.cur})
		}
	}
	*l = out
}

// forget drops id's record, modelling departure or a whitewashing reset.
func (l *contribLedger) forget(id PeerID) {
	if i, ok := l.find(id); ok {
		*l = slices.Delete(*l, i, i+1)
	}
}

// contribEntry pairs a candidate with its cached weight (a contribution
// total or reputation score) so weight-ranked mechanisms evaluate each
// candidate's maps exactly once per decision instead of once per comparison
// or accumulation pass.
type contribEntry struct {
	id     PeerID
	weight float64
}

// compareContribDesc orders entries by weight descending with ID ascending
// as the tiebreak — a strict total order, so any sorting algorithm produces
// the same unique result.
func compareContribDesc(x, y contribEntry) int {
	switch {
	case x.weight > y.weight:
		return -1
	case x.weight < y.weight:
		return 1
	case x.id < y.id:
		return -1
	case x.id > y.id:
		return 1
	}
	return 0
}

// randomPeer picks uniformly from candidates, or NoPeer if empty.
func randomPeer(rng *rand.Rand, candidates []PeerID) PeerID {
	if len(candidates) == 0 {
		return NoPeer
	}
	return candidates[rng.Intn(len(candidates))]
}
