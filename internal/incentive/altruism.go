package incentive

import (
	"repro/internal/algo"
)

// altruism uploads to uniformly random neighbors with no expectation of
// reciprocity (Section III-A). It keeps no state at all.
type altruism struct{}

var _ Strategy = (*altruism)(nil)

func newAltruism() *altruism { return &altruism{} }

func (*altruism) Algorithm() algo.Algorithm { return algo.Altruism }

func (*altruism) NextReceiver(view NodeView) PeerID {
	return randomPeer(view.RNG(), wantingNeighbors(view))
}

func (*altruism) OnSent(NodeView, PeerID, float64)     {}
func (*altruism) OnReceived(NodeView, PeerID, float64) {}
func (*altruism) Forget(PeerID)                        {}
