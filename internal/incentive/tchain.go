package incentive

import (
	"repro/internal/algo"
)

// tChain is the reciprocity/reputation hybrid (Section III-A), modelled on
// T-Chain [8]: every received piece creates an obligation to reciprocate —
// directly back to the sender when the sender needs one of our pieces, or
// indirectly to a third peer otherwise (which is how piece-less newcomers
// bootstrap: they forward the piece they just received). Peers may also
// *initiate* exchanges opportunistically ("opportunistic seeding",
// Lemma 2's proof), because initiated uploads are themselves protected by
// the reciprocation requirement.
//
// The encryption-and-key-release enforcement (upload first, decrypt after
// reciprocating) is environment-level: the simulator and the live node
// implement it via internal/tchain and withhold credit from peers that
// renege. This strategy implements the traffic-shaping side: obligations
// take absolute priority over opportunistic uploads.
type tChain struct {
	obligations []PeerID           // FIFO reciprocation queue
	received    map[PeerID]float64 // local reputation: bytes received per peer
}

var _ Strategy = (*tChain)(nil)

func newTChain() *tChain {
	return &tChain{received: make(map[PeerID]float64)}
}

func (*tChain) Algorithm() algo.Algorithm { return algo.TChain }

func (t *tChain) NextReceiver(view NodeView) PeerID {
	// Serve reciprocation obligations first. Targets that left the swarm or
	// no longer need anything are dropped — their exchange completed
	// through another path.
	for len(t.obligations) > 0 {
		target := t.obligations[0]
		t.obligations = t.obligations[1:]
		if view.WantsFromMe(target) {
			return target
		}
	}
	// Opportunistic seeding: initiate toward a uniformly random interested
	// neighbor. Uniform spreading is what lets T-Chain approach altruism's
	// exchange probability as the swarm grows (Corollary 2) — the
	// fairness comes from the reciprocation obligations, and the
	// reputation component from the environment's distrust of peers that
	// renege on them, not from biasing initiations.
	return randomPeer(view.RNG(), wantingNeighbors(view))
}

func (t *tChain) OnSent(NodeView, PeerID, float64) {}

func (t *tChain) OnReceived(view NodeView, from PeerID, bytes float64) {
	t.received[from] += bytes
	// Create the reciprocation obligation: direct when the sender needs one
	// of our pieces, otherwise indirect toward a random neighbor that does
	// (after this receive we hold at least one piece, so even a newcomer
	// can participate once anyone needs that piece).
	if view.WantsFromMe(from) {
		t.obligations = append(t.obligations, from)
	} else if w := randomPeer(view.RNG(), wantingNeighborsExcept(view, from)); w != NoPeer {
		t.obligations = append(t.obligations, w)
	}
	// Cap the queue: an obligation backlog longer than the neighborhood
	// means we are upload-bound; dropping the oldest keeps memory bounded
	// without changing behaviour (they would be stale by service time).
	if maxQ := 4 * len(view.Neighbors()); maxQ > 0 && len(t.obligations) > maxQ {
		t.obligations = t.obligations[len(t.obligations)-maxQ:]
	}
}

func (t *tChain) Forget(peer PeerID) {
	delete(t.received, peer)
	kept := t.obligations[:0]
	for _, o := range t.obligations {
		if o != peer {
			kept = append(kept, o)
		}
	}
	t.obligations = kept
}

// wantingNeighborsExcept filters wantingNeighbors to exclude one peer.
func wantingNeighborsExcept(view NodeView, except PeerID) []PeerID {
	wanting := wantingNeighbors(view)
	out := wanting[:0]
	for _, p := range wanting {
		if p != except {
			out = append(out, p)
		}
	}
	return out
}
