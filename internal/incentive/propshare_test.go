package incentive

import (
	"testing"
)

func TestPropShareProportionalAllocation(t *testing.T) {
	s := newPropShare(Params{AlphaBT: 0.001, NBT: 4, RoundSeconds: 1000})
	v := newFakeView(1, 2, 3)
	s.OnReceived(v, 1, 900)
	s.OnReceived(v, 2, 100)
	counts := map[PeerID]int{}
	const trials = 20000
	for i := 0; i < trials; i++ {
		counts[s.NextReceiver(v)]++
	}
	frac1 := float64(counts[1]) / trials
	frac2 := float64(counts[2]) / trials
	if frac1 < 0.85 || frac1 > 0.95 {
		t.Errorf("90%% contributor got %.3f of picks, want ~0.9", frac1)
	}
	if frac2 < 0.07 || frac2 > 0.13 {
		t.Errorf("10%% contributor got %.3f of picks, want ~0.1", frac2)
	}
	if counts[3] > trials/100 {
		t.Errorf("zero contributor picked %d times with tiny alpha", counts[3])
	}
}

func TestPropShareIdlesWithoutContributors(t *testing.T) {
	s := newPropShare(Params{AlphaBT: 0.2, NBT: 4, RoundSeconds: 10})
	v := newFakeView(1, 2)
	picked := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if s.NextReceiver(v) != NoPeer {
			picked++
		}
	}
	frac := float64(picked) / trials
	if frac < 0.17 || frac > 0.23 {
		t.Errorf("pick fraction %.3f, want ~alpha 0.2", frac)
	}
}

func TestPropShareRoundRotation(t *testing.T) {
	s := newPropShare(Params{AlphaBT: 0, NBT: 4, RoundSeconds: 10})
	v := newFakeView(1, 2)
	s.OnReceived(v, 1, 100)
	if got := s.NextReceiver(v); got != 1 {
		t.Fatalf("pick = %v, want 1", got)
	}
	v.now = 11
	s.NextReceiver(v) // first rotation
	v.now = 22
	if got := s.NextReceiver(v); got != NoPeer {
		t.Errorf("pick = %v after contribution aged out, want NoPeer", got)
	}
}

func TestPropShareForget(t *testing.T) {
	s := newPropShare(Params{AlphaBT: 0, NBT: 4, RoundSeconds: 1000})
	v := newFakeView(1, 2)
	s.OnReceived(v, 1, 100)
	s.Forget(1)
	if got := s.NextReceiver(v); got != NoPeer {
		t.Errorf("pick = %v after Forget, want NoPeer", got)
	}
}

func TestPropShareEmptyNeighborhood(t *testing.T) {
	s := newPropShare(DefaultParams())
	if got := s.NextReceiver(newFakeView()); got != NoPeer {
		t.Errorf("empty pick = %v", got)
	}
}
