package transport

import (
	"fmt"
	"sync"

	"repro/internal/protocol"
)

// Mem is an in-process Transport: listeners live in a shared registry and
// connections are paired buffered channels. One Mem value is one isolated
// network; nodes must share the same Mem to reach each other.
//
// Messages pass through the pipe by reference — no serialization, no
// copies: the exact Message value (including its payload slices, typically
// a piece store's pooled backing buffers) handed to Send is what Recv
// returns on the other side. Senders must therefore treat payloads as
// frozen once sent, which the node guarantees by never mutating stored
// piece data.
type Mem struct {
	m          *Metrics
	mu         sync.Mutex
	listeners  map[string]*memListener
	nextAddr   int
	nextDialer int
}

var _ Transport = (*Mem)(nil)

// NewMem returns an empty in-memory network.
func NewMem() *Mem {
	return &Mem{listeners: make(map[string]*memListener)}
}

// NewMemInstrumented returns an in-memory network whose connections count
// frames into m. Messages pass by reference, so only frame counts are
// recorded — there is no wire framing to measure bytes or flushes from.
func NewMemInstrumented(m *Metrics) *Mem {
	mem := NewMem()
	mem.m = m
	return mem
}

// Listen binds addr ("" auto-generates a unique address).
func (m *Mem) Listen(addr string) (Listener, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if addr == "" {
		addr = fmt.Sprintf("mem://%d", m.nextAddr)
		m.nextAddr++
	}
	if _, exists := m.listeners[addr]; exists {
		return nil, fmt.Errorf("transport: address %q already bound", addr)
	}
	l := &memListener{
		mem:     m,
		addr:    addr,
		backlog: make(chan *memConn, 64),
		done:    make(chan struct{}),
	}
	m.listeners[addr] = l
	return l, nil
}

// Dial connects to a bound listener. Each dial gets a unique dialer
// address (mem://dialer-N), so the accept side's RemoteAddr distinguishes
// peers in stats and logs instead of collapsing them all to one name.
func (m *Mem) Dial(addr string) (Conn, error) {
	m.mu.Lock()
	l, ok := m.listeners[addr]
	dialerAddr := fmt.Sprintf("mem://dialer-%d", m.nextDialer)
	m.nextDialer++
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no listener at %q", addr)
	}
	const depth = 256
	aToB := make(chan protocol.Message, depth)
	bToA := make(chan protocol.Message, depth)
	dialSide := &memConn{send: aToB, recv: bToA, remote: addr, m: m.m, done: make(chan struct{})}
	acceptSide := &memConn{send: bToA, recv: aToB, remote: dialerAddr, m: m.m, done: make(chan struct{})}
	dialSide.peer, acceptSide.peer = acceptSide, dialSide
	select {
	case l.backlog <- acceptSide:
		return dialSide, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

type memListener struct {
	mem     *Mem
	addr    string
	backlog chan *memConn
	done    chan struct{}
	once    sync.Once
}

var _ Listener = (*memListener)(nil)

func (l *memListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.mem.mu.Lock()
		delete(l.mem.listeners, l.addr)
		l.mem.mu.Unlock()
	})
	return nil
}

func (l *memListener) Addr() string { return l.addr }

type memConn struct {
	send   chan protocol.Message
	recv   chan protocol.Message
	remote string
	m      *Metrics // nil when uninstrumented
	peer   *memConn
	done   chan struct{}
	once   sync.Once
}

var _ Conn = (*memConn)(nil)
var _ BatchSender = (*memConn)(nil)

// SendBatch delivers the run in order, stopping at the first error. There
// is no buffer to flush — each message lands in the peer's channel
// directly — so batching here only saves the caller its fallback loop.
func (c *memConn) SendBatch(ms []protocol.Message) error {
	for _, m := range ms {
		if err := c.Send(m); err != nil {
			return err
		}
	}
	return nil
}

func (c *memConn) Send(m protocol.Message) error {
	// Check closed state first: with a buffered channel the send case may
	// be ready simultaneously, and select would pick at random.
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	select {
	case <-c.done:
		return ErrClosed
	case <-c.peer.done:
		return ErrClosed
	case c.send <- m:
		c.m.noteSentFrames(1)
		return nil
	}
}

func (c *memConn) Recv() (protocol.Message, error) {
	// Drain buffered messages even after close, then report ErrClosed.
	select {
	case m := <-c.recv:
		c.m.noteReceivedFrames(1)
		return m, nil
	default:
	}
	select {
	case m := <-c.recv:
		c.m.noteReceivedFrames(1)
		return m, nil
	case <-c.done:
		return nil, ErrClosed
	case <-c.peer.done:
		// Peer closed: drain anything already buffered.
		select {
		case m := <-c.recv:
			c.m.noteReceivedFrames(1)
			return m, nil
		default:
			return nil, ErrClosed
		}
	}
}

func (c *memConn) Close() error {
	c.once.Do(func() { close(c.done) })
	return nil
}

func (c *memConn) RemoteAddr() string { return c.remote }
