package transport

import (
	"repro/internal/metrics"
)

// Metrics is the transport-layer instrumentation bundle: frame and byte
// volume per direction, flush batch sizes (how many frames each
// SendBatch/Send coalesced into one write), and the fault-injection
// observables (drops, injected delays) the Flaky wrapper records. A nil
// *Metrics is everywhere a valid "don't record" sentinel, so the
// uninstrumented constructors keep their zero-overhead hot path.
//
// Series (transport_ namespace):
//
//	transport_frames_sent_total / transport_frames_received_total
//	transport_bytes_sent_total / transport_bytes_received_total (wire framing; TCP only)
//	transport_flush_frames                 histogram of frames per flush
//	transport_frame_bytes{dir="out"|"in"}  histogram of wire frame sizes (TCP only)
//	transport_dropped_total                frames discarded by fault injection
//	transport_injected_delay_ns            histogram of injected latencies
type Metrics struct {
	framesSent     *metrics.Counter
	framesReceived *metrics.Counter
	bytesSent      *metrics.Counter
	bytesReceived  *metrics.Counter
	flushFrames    *metrics.Histogram
	frameBytesOut  *metrics.Histogram
	frameBytesIn   *metrics.Histogram
	dropped        *metrics.Counter
	delayNs        *metrics.Histogram
}

// NewMetrics registers the transport series in reg and returns the bundle.
func NewMetrics(reg *metrics.Registry) *Metrics {
	return &Metrics{
		framesSent:     reg.Counter("transport_frames_sent_total"),
		framesReceived: reg.Counter("transport_frames_received_total"),
		bytesSent:      reg.Counter("transport_bytes_sent_total"),
		bytesReceived:  reg.Counter("transport_bytes_received_total"),
		flushFrames:    reg.Histogram("transport_flush_frames"),
		frameBytesOut:  reg.Histogram(`transport_frame_bytes{dir="out"}`),
		frameBytesIn:   reg.Histogram(`transport_frame_bytes{dir="in"}`),
		dropped:        reg.Counter("transport_dropped_total"),
		delayNs:        reg.Histogram("transport_injected_delay_ns"),
	}
}

// noteFrameOut records one encoded outbound frame of n wire bytes.
func (m *Metrics) noteFrameOut(n int) {
	if m == nil {
		return
	}
	m.framesSent.Inc()
	m.bytesSent.Add(int64(n))
	m.frameBytesOut.Observe(int64(n))
}

// noteFrameIn records one decoded inbound frame of n wire bytes.
func (m *Metrics) noteFrameIn(n int) {
	if m == nil {
		return
	}
	m.framesReceived.Inc()
	m.bytesReceived.Add(int64(n))
	m.frameBytesIn.Observe(int64(n))
}

// noteFlush records one write flush that coalesced frames frames.
func (m *Metrics) noteFlush(frames int) {
	if m == nil {
		return
	}
	m.flushFrames.Observe(int64(frames))
}

// noteSentFrames records outbound frames with no wire framing (the memory
// transport passes messages by reference, so there is no byte size).
func (m *Metrics) noteSentFrames(n int) {
	if m == nil {
		return
	}
	m.framesSent.Add(int64(n))
}

// noteReceivedFrames records inbound frames with no wire framing.
func (m *Metrics) noteReceivedFrames(n int) {
	if m == nil {
		return
	}
	m.framesReceived.Add(int64(n))
}

// noteDrop records one frame discarded by fault injection.
func (m *Metrics) noteDrop() {
	if m == nil {
		return
	}
	m.dropped.Inc()
}

// noteDelay records one injected transit delay.
func (m *Metrics) noteDelay(ns int64) {
	if m == nil {
		return
	}
	m.delayNs.Observe(ns)
}
