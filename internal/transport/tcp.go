package transport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/protocol"
)

// TCP is the real-network Transport: protocol frames over TCP connections.
type TCP struct{}

var _ Transport = TCP{}

// NewTCP returns the TCP transport.
func NewTCP() TCP { return TCP{} }

// Listen binds a TCP address; use "127.0.0.1:0" to let the kernel pick a
// port and read it back from Listener.Addr.
func (TCP) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	return &tcpListener{inner: l}, nil
}

// Dial connects to a TCP listener.
func (TCP) Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	return newTCPConn(c), nil
}

type tcpListener struct {
	inner net.Listener
	once  sync.Once
}

var _ Listener = (*tcpListener)(nil)

func (l *tcpListener) Accept() (Conn, error) {
	c, err := l.inner.Accept()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("transport: %w", err)
	}
	return newTCPConn(c), nil
}

func (l *tcpListener) Close() error {
	var err error
	l.once.Do(func() { err = l.inner.Close() })
	return err
}

func (l *tcpListener) Addr() string { return l.inner.Addr().String() }

type tcpConn struct {
	inner   net.Conn
	reader  *bufio.Reader
	writeMu sync.Mutex
	once    sync.Once
}

var _ Conn = (*tcpConn)(nil)

func newTCPConn(c net.Conn) *tcpConn {
	return &tcpConn{inner: c, reader: bufio.NewReaderSize(c, 64<<10)}
}

func (c *tcpConn) Send(m protocol.Message) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if err := protocol.Encode(c.inner, m); err != nil {
		if errors.Is(err, net.ErrClosed) {
			return ErrClosed
		}
		return err
	}
	return nil
}

func (c *tcpConn) Recv() (protocol.Message, error) {
	m, err := protocol.Decode(c.reader)
	if err != nil {
		if errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, ErrClosed
		}
		return nil, err
	}
	return m, nil
}

func (c *tcpConn) Close() error {
	var err error
	c.once.Do(func() { err = c.inner.Close() })
	return err
}

func (c *tcpConn) RemoteAddr() string { return c.inner.RemoteAddr().String() }
