package transport

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/protocol"
)

// TCP is the real-network Transport: protocol frames over TCP connections.
type TCP struct {
	m *Metrics
}

var _ Transport = TCP{}

// NewTCP returns the TCP transport.
func NewTCP() TCP { return TCP{} }

// NewTCPInstrumented returns a TCP transport whose connections record wire
// volume, frame sizes, and flush batch sizes into m.
func NewTCPInstrumented(m *Metrics) TCP { return TCP{m: m} }

// Listen binds a TCP address; use "127.0.0.1:0" to let the kernel pick a
// port and read it back from Listener.Addr.
func (t TCP) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	return &tcpListener{inner: l, m: t.m}, nil
}

// Dial connects to a TCP listener.
func (t TCP) Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	return newTCPConn(c, t.m), nil
}

type tcpListener struct {
	inner net.Listener
	m     *Metrics
	once  sync.Once
}

var _ Listener = (*tcpListener)(nil)

func (l *tcpListener) Accept() (Conn, error) {
	c, err := l.inner.Accept()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("transport: %w", err)
	}
	return newTCPConn(c, l.m), nil
}

func (l *tcpListener) Close() error {
	var err error
	l.once.Do(func() { err = l.inner.Close() })
	return err
}

func (l *tcpListener) Addr() string { return l.inner.Addr().String() }

// tcpConn frames protocol messages over one TCP connection. Writes go
// through a bufio.Writer: Send flushes before returning (a lone message
// never sits in the buffer), while SendBatch encodes its whole run and
// flushes once at the end — flush-on-idle coalescing for the node's
// per-peer writer, which drains everything queued and then goes idle.
// Reads go through a protocol.Decoder, whose reusable scratch makes the
// steady-state receive path allocation-free (see the Conn zero-copy
// contract).
type tcpConn struct {
	inner   net.Conn
	dec     *protocol.Decoder
	m       *Metrics // nil when uninstrumented
	writeMu sync.Mutex
	bw      *bufio.Writer
	once    sync.Once
}

var _ Conn = (*tcpConn)(nil)
var _ BatchSender = (*tcpConn)(nil)

func newTCPConn(c net.Conn, m *Metrics) *tcpConn {
	return &tcpConn{
		inner: c,
		dec:   protocol.NewDecoder(bufio.NewReaderSize(c, 64<<10)),
		m:     m,
		bw:    bufio.NewWriterSize(c, 64<<10),
	}
}

// sendErr maps closed-socket errors to the transport contract.
func sendErr(err error) error {
	if errors.Is(err, net.ErrClosed) {
		return ErrClosed
	}
	return err
}

func (c *tcpConn) Send(m protocol.Message) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	n, err := protocol.EncodeToN(c.bw, m)
	if err != nil {
		return sendErr(err)
	}
	c.m.noteFrameOut(n)
	c.m.noteFlush(1)
	return sendErr(c.bw.Flush())
}

// SendBatch encodes every message into the write buffer and flushes once,
// so a drained queue of small frames (haves, receipts, keys) costs one
// syscall instead of one per frame.
func (c *tcpConn) SendBatch(ms []protocol.Message) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	for _, m := range ms {
		n, err := protocol.EncodeToN(c.bw, m)
		if err != nil {
			return sendErr(err)
		}
		c.m.noteFrameOut(n)
	}
	c.m.noteFlush(len(ms))
	return sendErr(c.bw.Flush())
}

func (c *tcpConn) Recv() (protocol.Message, error) {
	m, err := c.dec.Decode()
	if err != nil {
		if errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, ErrClosed
		}
		return nil, err
	}
	c.m.noteFrameIn(c.dec.LastFrameSize())
	return m, nil
}

func (c *tcpConn) Close() error {
	var err error
	c.once.Do(func() { err = c.inner.Close() })
	return err
}

func (c *tcpConn) RemoteAddr() string { return c.inner.RemoteAddr().String() }
