package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/protocol"
)

// Flaky wraps a Transport and degrades it on purpose — dropping a fraction
// of non-handshake messages and/or delaying delivery — for testing protocol
// resilience. Handshake messages (Hello, Bitfield) are never dropped — a
// connection that cannot even open tests nothing; everything after that is
// fair game, which exercises the node's recovery paths (piece re-push after
// the resend cooldown, seal re-issue, trusted key-release fallback).
type Flaky struct {
	inner      Transport
	dropProb   float64
	minLatency time.Duration
	maxLatency time.Duration
	m          *Metrics // nil when uninstrumented

	mu  sync.Mutex
	rng *rand.Rand
}

var _ Transport = (*Flaky)(nil)

// FlakyOption configures a Flaky transport; options that reject their
// argument surface the error through NewFlaky.
type FlakyOption func(*Flaky) error

// WithDropProb drops each eligible (non-handshake) message with probability
// p. p must lie in [0, 1]; p == 1 is the documented total-loss regime —
// every data message vanishes and only the handshake survives, which is
// occasionally exactly the partition a test wants. Values outside the range
// are an error, not a silent clamp.
func WithDropProb(p float64) FlakyOption {
	return func(f *Flaky) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("transport: drop probability %g outside [0, 1]", p)
		}
		f.dropProb = p
		return nil
	}
}

// WithDropSeed fixes the drop- and latency-pattern RNG seed so a flaky run
// replays bit-for-bit.
func WithDropSeed(seed int64) FlakyOption {
	return func(f *Flaky) error {
		f.rng = rand.New(rand.NewSource(seed))
		return nil
	}
}

// WithMetrics records the injected degradations into m: every dropped
// frame increments transport_dropped_total, and every latency draw lands
// in the transport_injected_delay_ns histogram — so a fault-injection run
// can report exactly how much damage it actually did.
func WithMetrics(m *Metrics) FlakyOption {
	return func(f *Flaky) error {
		f.m = m
		return nil
	}
}

// WithLatency delays every sent message by a uniformly random duration in
// [min, max]. Delivery stays in order: each connection owns a FIFO queue
// drained by one dispatcher goroutine, so a message that draws a short delay
// still waits behind earlier long-delay ones. With latency enabled, Send
// returns before delivery and late inner-transport errors are discarded,
// like datagrams lost in flight.
func WithLatency(min, max time.Duration) FlakyOption {
	return func(f *Flaky) error {
		if min < 0 || max < min {
			return fmt.Errorf("transport: latency range [%v, %v] invalid", min, max)
		}
		f.minLatency, f.maxLatency = min, max
		return nil
	}
}

// NewFlaky wraps inner with the given degradations. With no options the
// transport is a transparent pass-through (drop probability 0, no latency,
// seed 1); any option rejecting its argument fails the construction.
func NewFlaky(inner Transport, opts ...FlakyOption) (*Flaky, error) {
	f := &Flaky{inner: inner, rng: rand.New(rand.NewSource(1))}
	for _, opt := range opts {
		if err := opt(f); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Listen wraps the inner listener so accepted connections degrade too.
func (f *Flaky) Listen(addr string) (Listener, error) {
	l, err := f.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &flakyListener{inner: l, f: f}, nil
}

// Dial wraps the dialed connection.
func (f *Flaky) Dial(addr string) (Conn, error) {
	c, err := f.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return f.wrap(c), nil
}

// wrap builds the per-connection state; the delay queue and its dispatcher
// exist only when latency is configured.
func (f *Flaky) wrap(c Conn) *flakyConn {
	fc := &flakyConn{inner: c, f: f}
	if f.maxLatency > 0 {
		fc.sendq = make(chan delayedMsg, 256)
		fc.done = make(chan struct{})
		go fc.dispatch()
	}
	return fc
}

// drop decides one message's fate.
func (f *Flaky) drop(m protocol.Message) bool {
	switch m.(type) {
	case protocol.Hello, protocol.Bitfield:
		return false
	}
	f.mu.Lock()
	dropped := f.rng.Float64() < f.dropProb
	f.mu.Unlock()
	if dropped {
		f.m.noteDrop()
	}
	return dropped
}

// delay draws one message's transit time from the configured range.
func (f *Flaky) delay() time.Duration {
	f.mu.Lock()
	d := f.minLatency
	if span := f.maxLatency - f.minLatency; span > 0 {
		d += time.Duration(f.rng.Int63n(int64(span) + 1))
	}
	f.mu.Unlock()
	f.m.noteDelay(int64(d))
	return d
}

type flakyListener struct {
	inner Listener
	f     *Flaky
}

var _ Listener = (*flakyListener)(nil)

func (l *flakyListener) Accept() (Conn, error) {
	c, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	return l.f.wrap(c), nil
}

func (l *flakyListener) Close() error { return l.inner.Close() }
func (l *flakyListener) Addr() string { return l.inner.Addr() }

// delayedMsg is one in-flight message and its delivery due time.
type delayedMsg struct {
	m   protocol.Message
	due time.Time
}

type flakyConn struct {
	inner Conn
	f     *Flaky

	sendq chan delayedMsg // nil when latency is off
	done  chan struct{}
	once  sync.Once
}

var _ Conn = (*flakyConn)(nil)
var _ BatchSender = (*flakyConn)(nil)

// SendBatch feeds each message through the connection's own Send so every
// one rolls the drop dice and draws its own latency — batching must not
// change the degradation semantics the options promise.
func (c *flakyConn) SendBatch(ms []protocol.Message) error {
	for _, m := range ms {
		if err := c.Send(m); err != nil {
			return err
		}
	}
	return nil
}

// Send drops eligible messages with the configured probability; a dropped
// message reports success, exactly like a datagram lost in flight. Survivors
// go straight through, or onto the delay queue when latency is configured.
func (c *flakyConn) Send(m protocol.Message) error {
	if c.f.drop(m) {
		return nil
	}
	if c.sendq == nil {
		return c.inner.Send(m)
	}
	select {
	case c.sendq <- delayedMsg{m: m, due: time.Now().Add(c.f.delay())}:
		return nil
	case <-c.done:
		return ErrClosed
	}
}

// dispatch delivers queued messages in FIFO order, sleeping out each one's
// remaining transit time. Close aborts the sleep so a delayed backlog cannot
// outlive the connection.
func (c *flakyConn) dispatch() {
	timer := time.NewTimer(0)
	defer timer.Stop()
	for {
		select {
		case d := <-c.sendq:
			if wait := time.Until(d.due); wait > 0 {
				timer.Reset(wait)
				select {
				case <-timer.C:
				case <-c.done:
					return
				}
			}
			_ = c.inner.Send(d.m)
		case <-c.done:
			return
		}
	}
}

func (c *flakyConn) Recv() (protocol.Message, error) { return c.inner.Recv() }

func (c *flakyConn) Close() error {
	if c.done != nil {
		c.once.Do(func() { close(c.done) })
	}
	return c.inner.Close()
}

func (c *flakyConn) RemoteAddr() string { return c.inner.RemoteAddr() }
