package transport

import (
	"math/rand"
	"sync"

	"repro/internal/protocol"
)

// Flaky wraps a Transport and silently drops a fraction of non-handshake
// messages, for testing protocol resilience. Handshake messages (Hello,
// Bitfield) are never dropped — a connection that cannot even open tests
// nothing; everything after that is fair game, which exercises the node's
// recovery paths (piece re-push after the resend cooldown, seal re-issue,
// trusted key-release fallback).
type Flaky struct {
	inner    Transport
	dropProb float64

	mu  sync.Mutex
	rng *rand.Rand
}

var _ Transport = (*Flaky)(nil)

// NewFlaky wraps inner, dropping each eligible message with probability
// dropProb (clamped to [0, 1)). The seed makes drop patterns reproducible.
func NewFlaky(inner Transport, dropProb float64, seed int64) *Flaky {
	if dropProb < 0 {
		dropProb = 0
	}
	if dropProb >= 1 {
		dropProb = 0.99
	}
	return &Flaky{inner: inner, dropProb: dropProb, rng: rand.New(rand.NewSource(seed))}
}

// Listen wraps the inner listener so accepted connections drop too.
func (f *Flaky) Listen(addr string) (Listener, error) {
	l, err := f.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &flakyListener{inner: l, f: f}, nil
}

// Dial wraps the dialed connection.
func (f *Flaky) Dial(addr string) (Conn, error) {
	c, err := f.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &flakyConn{inner: c, f: f}, nil
}

// drop decides one message's fate.
func (f *Flaky) drop(m protocol.Message) bool {
	switch m.(type) {
	case protocol.Hello, protocol.Bitfield:
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Float64() < f.dropProb
}

type flakyListener struct {
	inner Listener
	f     *Flaky
}

var _ Listener = (*flakyListener)(nil)

func (l *flakyListener) Accept() (Conn, error) {
	c, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	return &flakyConn{inner: c, f: l.f}, nil
}

func (l *flakyListener) Close() error { return l.inner.Close() }
func (l *flakyListener) Addr() string { return l.inner.Addr() }

type flakyConn struct {
	inner Conn
	f     *Flaky
}

var _ Conn = (*flakyConn)(nil)

// Send drops eligible messages with the configured probability; a dropped
// message reports success, exactly like a datagram lost in flight.
func (c *flakyConn) Send(m protocol.Message) error {
	if c.f.drop(m) {
		return nil
	}
	return c.inner.Send(m)
}

func (c *flakyConn) Recv() (protocol.Message, error) { return c.inner.Recv() }
func (c *flakyConn) Close() error                    { return c.inner.Close() }
func (c *flakyConn) RemoteAddr() string              { return c.inner.RemoteAddr() }
