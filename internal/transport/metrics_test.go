package transport

import (
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/protocol"
)

// pipe builds one connected (dialer, acceptor) pair on tr.
func pipe(t *testing.T, tr Transport, addr string) (Conn, Conn) {
	t.Helper()
	l, err := tr.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	type res struct {
		c   Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := l.Accept()
		ch <- res{c, err}
	}()
	dialer, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dialer.Close() })
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { r.c.Close() })
	return dialer, r.c
}

// TestTCPInstrumented pins the wire-volume accounting: bytes sent equal
// bytes received, frame-size histograms match the frame counters, and
// SendBatch records its batch size in the flush histogram.
func TestTCPInstrumented(t *testing.T) {
	reg := metrics.NewRegistry()
	m := NewMetrics(reg)
	dialer, acceptor := pipe(t, NewTCPInstrumented(m), "127.0.0.1:0")

	batch := []protocol.Message{
		protocol.Have{Index: 1},
		protocol.Have{Index: 2},
		protocol.Piece{Index: 3, RepaysKeyID: protocol.NoRepay, Data: make([]byte, 2048)},
	}
	if err := dialer.(BatchSender).SendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := dialer.Send(protocol.Bye{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := acceptor.Recv(); err != nil {
			t.Fatal(err)
		}
	}

	snap := reg.Snapshot()
	if got := snap.Counters["transport_frames_sent_total"]; got != 4 {
		t.Errorf("frames sent = %d, want 4", got)
	}
	if got := snap.Counters["transport_frames_received_total"]; got != 4 {
		t.Errorf("frames received = %d, want 4", got)
	}
	sent := snap.Counters["transport_bytes_sent_total"]
	if recv := snap.Counters["transport_bytes_received_total"]; recv != sent || sent == 0 {
		t.Errorf("bytes sent %d != bytes received %d", sent, recv)
	}
	out := snap.Histograms[`transport_frame_bytes{dir="out"}`]
	if out.Count != 4 || out.Sum != sent {
		t.Errorf("out frame histogram %+v, want count 4 sum %d", out, sent)
	}
	in := snap.Histograms[`transport_frame_bytes{dir="in"}`]
	if in.Count != 4 || in.Sum != sent {
		t.Errorf("in frame histogram %+v, want count 4 sum %d", in, sent)
	}
	fl := snap.Histograms["transport_flush_frames"]
	if fl.Count != 2 || fl.Sum != 4 {
		t.Errorf("flush histogram %+v, want 2 flushes totalling 4 frames", fl)
	}
}

// TestMemInstrumented pins the by-reference transport's frame counting.
func TestMemInstrumented(t *testing.T) {
	reg := metrics.NewRegistry()
	m := NewMetrics(reg)
	dialer, acceptor := pipe(t, NewMemInstrumented(m), "")

	for i := int32(0); i < 5; i++ {
		if err := dialer.Send(protocol.Have{Index: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := acceptor.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["transport_frames_sent_total"]; got != 5 {
		t.Errorf("frames sent = %d, want 5", got)
	}
	if got := snap.Counters["transport_frames_received_total"]; got != 5 {
		t.Errorf("frames received = %d, want 5", got)
	}
	if got := snap.Counters["transport_bytes_sent_total"]; got != 0 {
		t.Errorf("mem transport recorded %d wire bytes, want 0 (by-reference)", got)
	}
}

// TestFlakyWithMetrics pins the fault-injection observables: total-loss
// drops count every eligible frame, and configured latency draws land in
// the delay histogram.
func TestFlakyWithMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	m := NewMetrics(reg)
	fl, err := NewFlaky(NewMem(), WithDropProb(1), WithMetrics(m))
	if err != nil {
		t.Fatal(err)
	}
	dialer, _ := pipe(t, fl, "")
	for i := int32(0); i < 7; i++ {
		if err := dialer.Send(protocol.Have{Index: i}); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Snapshot().Counters["transport_dropped_total"]; got != 7 {
		t.Errorf("dropped = %d, want 7", got)
	}

	reg2 := metrics.NewRegistry()
	m2 := NewMetrics(reg2)
	fl2, err := NewFlaky(NewMem(), WithLatency(time.Millisecond, 2*time.Millisecond), WithMetrics(m2))
	if err != nil {
		t.Fatal(err)
	}
	d2, a2 := pipe(t, fl2, "")
	if err := d2.Send(protocol.Have{Index: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := a2.Recv(); err != nil {
		t.Fatal(err)
	}
	h := reg2.Snapshot().Histograms["transport_injected_delay_ns"]
	if h.Count != 1 {
		t.Fatalf("delay histogram count = %d, want 1", h.Count)
	}
	if h.Sum < int64(time.Millisecond) || h.Sum > int64(2*time.Millisecond) {
		t.Errorf("delay %dns outside configured [1ms, 2ms]", h.Sum)
	}
}
