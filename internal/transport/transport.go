// Package transport abstracts the byte pipes the live node runs over: a TCP
// transport for real deployments and an in-memory transport for tests and
// single-process clusters. Both carry internal/protocol frames.
package transport

import (
	"errors"

	"repro/internal/protocol"
)

// ErrClosed is returned by operations on a closed connection or listener.
var ErrClosed = errors.New("transport: closed")

// Conn is a bidirectional, ordered message pipe. Send is safe for
// concurrent use; Recv must be called from a single goroutine.
type Conn interface {
	// Send writes one message. It returns ErrClosed after Close.
	Send(m protocol.Message) error
	// Recv blocks for the next message. It returns ErrClosed (or io.EOF
	// for TCP) once the peer closes.
	//
	// Zero-copy contract: the bulk byte fields of a returned message
	// (Piece.Data, SealedPiece.Ciphertext, Bitfield.Bits) may alias
	// transport-owned buffers that the next Recv on the same connection
	// reuses. Consume or copy them before the next Recv call.
	Recv() (protocol.Message, error)
	// Close tears the connection down; it is idempotent.
	Close() error
	// RemoteAddr describes the peer endpoint (for logging).
	RemoteAddr() string
}

// BatchSender is an optional Conn capability: SendBatch writes a run of
// messages as one unit, letting buffered transports coalesce them into a
// single flush (one syscall for the whole run). The live node's per-peer
// writer drains its queue through this when the connection offers it,
// falling back to per-message Send otherwise. Like Send, SendBatch is safe
// for concurrent use and stops at the first error.
type BatchSender interface {
	SendBatch(ms []protocol.Message) error
}

// Listener accepts inbound connections.
type Listener interface {
	// Accept blocks for the next inbound connection.
	Accept() (Conn, error)
	// Close stops accepting; it is idempotent.
	Close() error
	// Addr returns the bound address, suitable for Dial.
	Addr() string
}

// Transport creates listeners and outbound connections.
type Transport interface {
	// Listen binds addr. For TCP, addr is host:port (port 0 picks one).
	// For the memory transport, addr is any unique string ("" generates).
	Listen(addr string) (Listener, error)
	// Dial connects to a listener's address.
	Dial(addr string) (Conn, error)
}
