package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/protocol"
)

// exerciseTransport runs the shared contract tests against any Transport.
func exerciseTransport(t *testing.T, tr Transport, addr string) {
	t.Helper()

	l, err := tr.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if l.Addr() == "" {
		t.Fatal("empty listener address")
	}

	type acceptResult struct {
		conn Conn
		err  error
	}
	accepted := make(chan acceptResult, 1)
	go func() {
		c, err := l.Accept()
		accepted <- acceptResult{c, err}
	}()

	dialer, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dialer.Close()

	res := <-accepted
	if res.err != nil {
		t.Fatal(res.err)
	}
	acceptor := res.conn
	defer acceptor.Close()

	// Ordered bidirectional delivery.
	for i := int32(0); i < 50; i++ {
		if err := dialer.Send(protocol.Have{Index: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := int32(0); i < 50; i++ {
		m, err := acceptor.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.(protocol.Have).Index != i {
			t.Fatalf("out of order: got %+v want index %d", m, i)
		}
	}
	if err := acceptor.Send(protocol.Piece{Index: 1, RepaysKeyID: protocol.NoRepay, Data: []byte("abc")}); err != nil {
		t.Fatal(err)
	}
	m, err := dialer.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if p := m.(protocol.Piece); string(p.Data) != "abc" {
		t.Fatalf("payload %q", p.Data)
	}

	// Concurrent senders do not corrupt frames.
	var wg sync.WaitGroup
	const senders, perSender = 8, 50
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if err := dialer.Send(protocol.Have{Index: 7}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	recvDone := make(chan error, 1)
	go func() {
		for i := 0; i < senders*perSender; i++ {
			m, err := acceptor.Recv()
			if err != nil {
				recvDone <- err
				return
			}
			if m.(protocol.Have).Index != 7 {
				recvDone <- fmt.Errorf("corrupt frame: %+v", m)
				return
			}
		}
		recvDone <- nil
	}()
	wg.Wait()
	if err := <-recvDone; err != nil {
		t.Fatal(err)
	}

	// Close tears down Recv on the other side.
	if err := dialer.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	errCh := make(chan error, 1)
	go func() {
		_, err := acceptor.Recv()
		errCh <- err
	}()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("Recv succeeded after peer close")
		}
	case <-deadline:
		t.Fatal("Recv did not observe peer close")
	}

	// Send after close errors.
	if err := dialer.Send(protocol.Bye{}); err == nil {
		t.Error("Send succeeded after close")
	}
	// Double close is fine.
	if err := dialer.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}

func TestMemTransportContract(t *testing.T) {
	exerciseTransport(t, NewMem(), "")
}

func TestTCPTransportContract(t *testing.T) {
	exerciseTransport(t, NewTCP(), "127.0.0.1:0")
}

func TestMemDialUnknownAddress(t *testing.T) {
	m := NewMem()
	if _, err := m.Dial("mem://nowhere"); err == nil {
		t.Fatal("dial to unbound address succeeded")
	}
}

func TestMemDuplicateBind(t *testing.T) {
	m := NewMem()
	l, err := m.Listen("mem://x")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := m.Listen("mem://x"); err == nil {
		t.Fatal("duplicate bind succeeded")
	}
}

func TestMemListenerCloseUnblocksAccept(t *testing.T) {
	m := NewMem()
	l, err := m.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	l.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("Accept err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Accept did not unblock")
	}
	// Address is released after close.
	if _, err := m.Listen(l.Addr()); err != nil {
		t.Errorf("rebind after close: %v", err)
	}
	// Dialing the closed (pre-rebind) listener path still works via the
	// registry; dialing a fully removed one fails.
	if _, err := m.Dial("mem://definitely-not-there"); err == nil {
		t.Error("dial to removed listener succeeded")
	}
}

func TestTCPListenerCloseUnblocksAccept(t *testing.T) {
	l, err := NewTCP().Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		done <- err
	}()
	l.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("Accept err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Accept did not unblock")
	}
}

func TestMemRecvDrainsBufferAfterPeerClose(t *testing.T) {
	m := NewMem()
	l, _ := m.Listen("")
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		_ = c.Send(protocol.Have{Index: 1})
		_ = c.Send(protocol.Have{Index: 2})
		c.Close()
	}()
	dialer, err := m.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for {
		m, err := dialer.Recv()
		if err != nil {
			break
		}
		got++
		_ = m
	}
	if got != 2 {
		t.Errorf("drained %d messages, want 2", got)
	}
}

// mustFlaky builds a Flaky transport or fails the test; the constructor only
// errors on invalid option arguments, which these tests do not pass.
func mustFlaky(t *testing.T, inner Transport, opts ...FlakyOption) *Flaky {
	t.Helper()
	f, err := NewFlaky(inner, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// mustFlakyQuiet is mustFlaky for table literals where no *testing.T is in
// scope yet; it panics instead of failing the test.
func mustFlakyQuiet(inner Transport, opts ...FlakyOption) *Flaky {
	f, err := NewFlaky(inner, opts...)
	if err != nil {
		panic(err)
	}
	return f
}

func TestFlakyDropsApproximatelyAtRate(t *testing.T) {
	f := mustFlaky(t, NewMem(), WithDropProb(0.3), WithDropSeed(1))
	l, err := f.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	dialer, err := f.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dialer.Close()
	acceptor := <-accepted
	defer acceptor.Close()

	const sent = 5000
	counted := make(chan int, 1)
	go func() {
		received := 0
		for {
			if _, err := acceptor.Recv(); err != nil {
				break
			}
			received++
		}
		counted <- received
	}()
	for i := 0; i < sent; i++ {
		if err := dialer.Send(protocol.Have{Index: int32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	dialer.Close()
	received := <-counted
	frac := float64(received) / sent
	if frac < 0.65 || frac > 0.75 {
		t.Errorf("delivered fraction %.3f, want ~0.7", frac)
	}
}

func TestFlakyNeverDropsHandshake(t *testing.T) {
	// Total loss: every data message vanishes, yet the handshake survives.
	f := mustFlaky(t, NewMem(), WithDropProb(1), WithDropSeed(2))
	l, _ := f.Listen("")
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	dialer, err := f.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dialer.Close()
	acceptor := <-accepted
	defer acceptor.Close()
	for i := 0; i < 50; i++ {
		if err := dialer.Send(protocol.Hello{PeerID: 1}); err != nil {
			t.Fatal(err)
		}
		if err := dialer.Send(protocol.Bitfield{NumPieces: 1, Bits: []byte{1}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		if _, err := acceptor.Recv(); err != nil {
			t.Fatalf("handshake message %d lost: %v", i, err)
		}
	}
}

// TestFlakyOptionValidation pins the constructor's argument checking: bad
// probabilities and latency ranges are errors, not silent clamps, while the
// boundary values 0 and 1 are legal.
func TestFlakyOptionValidation(t *testing.T) {
	for _, tc := range []struct {
		name    string
		opts    []FlakyOption
		wantErr bool
	}{
		{"defaults", nil, false},
		{"zero prob", []FlakyOption{WithDropProb(0)}, false},
		{"total loss", []FlakyOption{WithDropProb(1)}, false},
		{"negative prob", []FlakyOption{WithDropProb(-0.1)}, true},
		{"prob above one", []FlakyOption{WithDropProb(1.01)}, true},
		{"latency range", []FlakyOption{WithLatency(time.Millisecond, 2*time.Millisecond)}, false},
		{"zero latency", []FlakyOption{WithLatency(0, 0)}, false},
		{"negative latency", []FlakyOption{WithLatency(-time.Millisecond, time.Millisecond)}, true},
		{"inverted latency", []FlakyOption{WithLatency(2*time.Millisecond, time.Millisecond)}, true},
		{"good then bad", []FlakyOption{WithDropSeed(7), WithDropProb(2)}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f, err := NewFlaky(NewMem(), tc.opts...)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("constructed %+v, want error", f)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFlakyLatencyDeliversInOrder checks the delay queue's FIFO guarantee:
// messages arrive complete and in send order despite randomized transit
// times, and only after a delay at least the configured minimum.
func TestFlakyLatencyDeliversInOrder(t *testing.T) {
	const minDelay = 5 * time.Millisecond
	f := mustFlaky(t, NewMem(), WithLatency(minDelay, 15*time.Millisecond), WithDropSeed(3))
	l, err := f.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	dialer, err := f.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dialer.Close()
	acceptor := <-accepted
	defer acceptor.Close()

	const sent = 50
	start := time.Now()
	for i := 0; i < sent; i++ {
		if err := dialer.Send(protocol.Have{Index: int32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < sent; i++ {
		m, err := acceptor.Recv()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if have, ok := m.(protocol.Have); !ok || have.Index != int32(i) {
			t.Fatalf("message %d arrived as %+v, want Have{%d}", i, m, i)
		}
	}
	if elapsed := time.Since(start); elapsed < minDelay {
		t.Errorf("all messages delivered in %v, below the %v minimum latency", elapsed, minDelay)
	}
}

func TestRemoteAddrNonEmpty(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   Transport
		addr string
	}{
		{"mem", NewMem(), ""},
		{"tcp", NewTCP(), "127.0.0.1:0"},
		{"flaky", mustFlakyQuiet(NewMem(), WithDropProb(0.1)), ""},
	} {
		t.Run(tc.name, func(t *testing.T) {
			l, err := tc.tr.Listen(tc.addr)
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			accepted := make(chan Conn, 1)
			go func() {
				c, err := l.Accept()
				if err == nil {
					accepted <- c
				}
			}()
			dialer, err := tc.tr.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer dialer.Close()
			acceptor := <-accepted
			defer acceptor.Close()
			if dialer.RemoteAddr() == "" || acceptor.RemoteAddr() == "" {
				t.Error("empty RemoteAddr")
			}
		})
	}
}

func TestTCPDialRefused(t *testing.T) {
	// A port nobody listens on: dial must fail, not hang.
	if _, err := NewTCP().Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestFlakyListenError(t *testing.T) {
	mem := NewMem()
	if _, err := mem.Listen("mem://dup"); err != nil {
		t.Fatal(err)
	}
	f := mustFlaky(t, mem, WithDropProb(0.1))
	if _, err := f.Listen("mem://dup"); err == nil {
		t.Fatal("duplicate bind through flaky succeeded")
	}
	if _, err := f.Dial("mem://nowhere"); err == nil {
		t.Fatal("flaky dial to unbound address succeeded")
	}
}

// TestMemDialerAddressesUnique pins the accept-side identity fix: every
// dialed connection must present a distinct RemoteAddr to the acceptor,
// rather than all dialers collapsing to one shared name.
func TestMemDialerAddressesUnique(t *testing.T) {
	m := NewMem()
	l, err := m.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const dials = 5
	accepted := make(chan Conn, dials)
	go func() {
		for i := 0; i < dials; i++ {
			c, err := l.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()
	seen := make(map[string]bool)
	for i := 0; i < dials; i++ {
		d, err := m.Dial(l.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		a := <-accepted
		defer a.Close()
		addr := a.RemoteAddr()
		if addr == "" {
			t.Fatal("empty accept-side RemoteAddr")
		}
		if seen[addr] {
			t.Fatalf("dialer address %q repeated across connections", addr)
		}
		seen[addr] = true
	}
}

// TestBatchSenderDelivery checks every transport's SendBatch capability:
// a batch arrives complete, in order, and frame-accurate on the far side.
func TestBatchSenderDelivery(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   Transport
		addr string
	}{
		{"mem", NewMem(), ""},
		{"tcp", NewTCP(), "127.0.0.1:0"},
		{"flaky", mustFlakyQuiet(NewMem(), WithLatency(0, time.Millisecond)), ""},
	} {
		t.Run(tc.name, func(t *testing.T) {
			l, err := tc.tr.Listen(tc.addr)
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			accepted := make(chan Conn, 1)
			go func() {
				c, err := l.Accept()
				if err == nil {
					accepted <- c
				}
			}()
			dialer, err := tc.tr.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer dialer.Close()
			acceptor := <-accepted
			defer acceptor.Close()

			batcher, ok := dialer.(BatchSender)
			if !ok {
				t.Fatalf("%T does not implement BatchSender", dialer)
			}
			batch := []protocol.Message{
				protocol.Have{Index: 1},
				protocol.Piece{Index: 2, RepaysKeyID: protocol.NoRepay, Data: []byte("xyz")},
				protocol.Have{Index: 3},
			}
			if err := batcher.SendBatch(batch); err != nil {
				t.Fatal(err)
			}
			for i, want := range batch {
				got, err := acceptor.Recv()
				if err != nil {
					t.Fatalf("message %d: %v", i, err)
				}
				if got.MsgType() != want.MsgType() {
					t.Fatalf("message %d type %v, want %v", i, got.MsgType(), want.MsgType())
				}
				if p, ok := got.(protocol.Piece); ok && string(p.Data) != "xyz" {
					t.Fatalf("piece payload %q", p.Data)
				}
			}
		})
	}
}
