package eventsim

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"
)

// testRec is the synthetic model's record type: enough structure to detect
// any reordering between lanes, windows, and the control queue.
type testRec struct {
	Kind string
	Lane int
	Tick int
	Time float64
}

// runLattice drives a synthetic multi-lane workload under the given shard
// count and returns the replayed record log plus the engine. Each lane
// self-schedules a tick chain (intra-window events), every third tick sends
// a cross-lane message one lookahead ahead, and a control chain samples the
// run; all output funnels through the deterministic barrier.
func runLattice(t *testing.T, shards, lanes int, horizon float64) ([]testRec, *Sharded[testRec]) {
	t.Helper()
	const window = 1.0
	var log []testRec
	e := NewSharded(shards, lanes, window, func(now float64, r testRec) {
		log = append(log, r)
	})
	var tick func(lane, n int) Handler
	tick = func(lane, n int) Handler {
		return func(now float64) {
			e.Stage(lane, testRec{Kind: "tick", Lane: lane, Tick: n, Time: now})
			if n%3 == 2 {
				dst := (lane + 1) % lanes
				from, hop := lane, n
				e.Send(lane, dst, now+window+0.3, func(at float64) {
					e.Stage(dst, testRec{Kind: "recv", Lane: from, Tick: hop, Time: at})
				})
			}
			e.LaneSchedule(lane, now+0.7, tick(lane, n+1))
		}
	}
	for l := 0; l < lanes; l++ {
		e.BarrierSchedule(l, 0.1*float64(l), tick(l, 0))
	}
	var sample func(now float64)
	sample = func(now float64) {
		log = append(log, testRec{Kind: "ctl", Time: now})
		e.ControlAfter(2.0, sample)
	}
	e.ScheduleControl(1.5, sample)
	if err := e.Run(horizon); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return log, e
}

func TestShardedDeterministicAcrossShardCounts(t *testing.T) {
	const lanes, horizon = 9, 25.0
	base, be := runLattice(t, 1, lanes, horizon)
	if len(base) == 0 {
		t.Fatal("baseline produced no records")
	}
	for _, p := range []int{2, 4, 7, lanes} {
		log, e := runLattice(t, p, lanes, horizon)
		if !reflect.DeepEqual(base, log) {
			t.Fatalf("shards=%d record log diverged from shards=1 (%d vs %d records)", p, len(log), len(base))
		}
		if e.Processed() != be.Processed() {
			t.Fatalf("shards=%d processed %d events, shards=1 processed %d", p, e.Processed(), be.Processed())
		}
		if e.Now() != be.Now() {
			t.Fatalf("shards=%d final time %g, shards=1 %g", p, e.Now(), be.Now())
		}
	}
}

func TestShardedHorizonSemantics(t *testing.T) {
	log, e := runLattice(t, 3, 6, 10.0)
	if e.Now() != 10.0 {
		t.Fatalf("Now() = %g, want horizon 10", e.Now())
	}
	for _, r := range log {
		if r.Time > 10.0 {
			t.Fatalf("event beyond horizon executed: %+v", r)
		}
	}
}

func TestShardedStopHaltsAtWindowBoundary(t *testing.T) {
	const window = 1.0
	for _, p := range []int{1, 4} {
		var log []testRec
		e := NewSharded(p, 8, window, func(now float64, r testRec) {
			log = append(log, r)
		})
		var chain func(lane, n int) Handler
		chain = func(lane, n int) Handler {
			return func(now float64) {
				e.Stage(lane, testRec{Kind: "tick", Lane: lane, Tick: n, Time: now})
				e.LaneSchedule(lane, now+0.5, chain(lane, n+1))
			}
		}
		for l := 0; l < 8; l++ {
			e.BarrierSchedule(l, 0, chain(l, 0))
		}
		e.ScheduleControl(5.25, func(now float64) { e.Stop() })
		err := e.Run(100)
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("shards=%d Run = %v, want ErrStopped", p, err)
		}
		// The stop lands in window [5,6): every shard quiesced at the
		// boundary, which is the consistent virtual stop time.
		if e.Now() != 6.0 {
			t.Fatalf("shards=%d stopped at %g, want window boundary 6", p, e.Now())
		}
		for _, r := range log {
			if r.Time >= 6.0 {
				t.Fatalf("shards=%d executed event at %g after stop boundary", p, r.Time)
			}
		}
	}
}

func TestShardedStopDeterministicAcrossShardCounts(t *testing.T) {
	run := func(p int) []testRec {
		var log []testRec
		var e *Sharded[testRec]
		count := 0
		e = NewSharded(p, 5, 1.0, func(now float64, r testRec) {
			log = append(log, r)
			count++
			if count == 37 {
				e.Stop()
			}
		})
		var chain func(lane, n int) Handler
		chain = func(lane, n int) Handler {
			return func(now float64) {
				e.Stage(lane, testRec{Kind: "tick", Lane: lane, Tick: n, Time: now})
				e.LaneSchedule(lane, now+0.4, chain(lane, n+1))
			}
		}
		for l := 0; l < 5; l++ {
			e.BarrierSchedule(l, 0, chain(l, 0))
		}
		if err := e.Run(50); !errors.Is(err, ErrStopped) {
			t.Fatalf("Run = %v, want ErrStopped", err)
		}
		return log
	}
	base := run(1)
	for _, p := range []int{2, 5} {
		if got := run(p); !reflect.DeepEqual(base, got) {
			t.Fatalf("shards=%d stop-truncated log diverged (%d vs %d records)", p, len(got), len(base))
		}
	}
}

func TestShardedCrossLaneLookaheadViolationPanics(t *testing.T) {
	e := NewSharded(2, 4, 1.0, func(float64, testRec) {})
	e.BarrierSchedule(0, 0.2, func(now float64) {
		defer func() {
			if recover() == nil {
				panic("expected lookahead panic")
			}
		}()
		// A cross-lane message inside the current window would race the
		// destination shard; the engine must reject it loudly.
		e.Send(0, 1, now+0.1, func(float64) {})
	})
	if err := e.Run(5); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestShardedBarrierScheduleClampsIntoNextWindow(t *testing.T) {
	var at float64 = -1
	e := NewSharded(2, 4, 1.0, func(float64, testRec) {})
	e.ScheduleControl(3.6, func(now float64) {
		// 3.6 sits in window [3,4); a lane event "at 3.7" would be in a
		// window the lanes may already have finished, so it must clamp to
		// the boundary.
		e.BarrierSchedule(2, 3.7, func(fired float64) { at = fired })
	})
	if err := e.Run(10); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 4.0 {
		t.Fatalf("barrier-scheduled lane event fired at %g, want clamp to 4", at)
	}
}

func TestShardedTimerCancel(t *testing.T) {
	fired := false
	e := NewSharded(2, 4, 1.0, func(float64, testRec) {})
	var tm Timer
	e.BarrierSchedule(1, 0.1, func(now float64) {
		tm = e.LaneSchedule(1, now+0.2, func(float64) { fired = true })
		e.LaneSchedule(1, now+0.1, func(float64) { tm.Cancel() })
	})
	if err := e.Run(5); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Fatal("canceled lane timer fired")
	}
}

func TestShardedDrainRestsOnLastEventTime(t *testing.T) {
	e := NewSharded(2, 4, 1.0, func(float64, testRec) {})
	e.BarrierSchedule(0, 2.3, func(now float64) {})
	if err := e.Run(0); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if e.Now() != 2.3 {
		t.Fatalf("drained Now() = %g, want last event time 2.3", e.Now())
	}
}

func TestShardedStatsAccount(t *testing.T) {
	log, e := runLattice(t, 4, 8, 20.0)
	stats := e.Stats()
	if len(stats) != 4 {
		t.Fatalf("Stats returned %d shards, want 4", len(stats))
	}
	var proc, sent, recv, staged uint64
	for _, st := range stats {
		proc += st.Processed
		sent += st.CrossSent
		recv += st.CrossRecv
		staged += st.Staged
	}
	if proc+e.ControlProcessed() != e.Processed() {
		t.Fatalf("per-shard processed %d + control %d != total %d", proc, e.ControlProcessed(), e.Processed())
	}
	if sent == 0 || sent != recv {
		t.Fatalf("cross counters inconsistent: sent %d recv %d", sent, recv)
	}
	replayed := 0
	for _, r := range log {
		if r.Kind != "ctl" {
			replayed++
		}
	}
	if staged != uint64(replayed) {
		t.Fatalf("staged %d records, replayed %d", staged, replayed)
	}
	if math.IsInf(e.Now(), 0) {
		t.Fatal("Now is infinite")
	}
	_ = fmt.Sprintf("%+v", stats[0])
}
