package eventsim

import (
	"errors"
	"math"
	"testing"
)

func TestRunInTimeOrder(t *testing.T) {
	e := New()
	var order []int
	e.Schedule(3, func(float64) { order = append(order, 3) })
	e.Schedule(1, func(float64) { order = append(order, 1) })
	e.Schedule(2, func(float64) { order = append(order, 2) })
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3 {
		t.Errorf("Now = %g, want 3", e.Now())
	}
	if e.Processed() != 3 {
		t.Errorf("Processed = %d, want 3", e.Processed())
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func(float64) { order = append(order, i) })
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("tie-break order = %v", order)
		}
	}
}

func TestSchedulingFromHandler(t *testing.T) {
	e := New()
	count := 0
	var tick Handler
	tick = func(now float64) {
		count++
		if count < 5 {
			e.After(1, tick)
		}
	}
	e.Schedule(0, tick)
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if e.Now() != 4 {
		t.Errorf("Now = %g, want 4", e.Now())
	}
}

func TestHorizonPausesAndResumes(t *testing.T) {
	e := New()
	var fired []float64
	for _, at := range []float64{1, 5, 9} {
		at := at
		e.Schedule(at, func(now float64) { fired = append(fired, now) })
	}
	if err := e.Run(6); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %v before horizon 6", fired)
	}
	if e.Now() != 6 {
		t.Errorf("clock at %g, want horizon 6", e.Now())
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 || fired[2] != 9 {
		t.Errorf("resume fired = %v", fired)
	}
}

func TestStop(t *testing.T) {
	e := New()
	count := 0
	e.Schedule(1, func(float64) { count++; e.Stop() })
	e.Schedule(2, func(float64) { count++ })
	err := e.Run(0)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if count != 1 {
		t.Errorf("count = %d, want 1", count)
	}
	// Remaining event still runs on resume.
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("after resume count = %d, want 2", count)
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	timer := e.Schedule(1, func(float64) { fired = true })
	timer.Cancel()
	if !timer.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("canceled event fired")
	}
	// Canceling the zero Timer and double-cancel are no-ops.
	var zero Timer
	zero.Cancel()
	timer.Cancel()
}

func TestCancelReleasesHandler(t *testing.T) {
	// The lazy-cancel leak fix: Cancel must drop the handler closure
	// immediately, not when the entry surfaces from the queue.
	e := New()
	timer := e.Schedule(1, func(float64) { t.Error("canceled fired") })
	if timer.ev.handler == nil {
		t.Fatal("handler missing before cancel")
	}
	timer.Cancel()
	if timer.ev.handler != nil {
		t.Error("Cancel left the handler closure reachable")
	}
	if timer.Pending() {
		t.Error("Pending() = true after Cancel")
	}
}

func TestRunDropsCanceledEntries(t *testing.T) {
	// Canceled entries are dropped (and recycled) as they surface; the
	// queue fully drains without firing them.
	e := New()
	timers := make([]Timer, 0, 10)
	for i := 0; i < 10; i++ {
		timers = append(timers, e.Schedule(float64(i+1), func(float64) { t.Error("canceled fired") }))
	}
	for _, timer := range timers {
		timer.Cancel()
	}
	if e.Pending() != 10 {
		t.Fatalf("Pending = %d before run, want 10", e.Pending())
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if e.Pending() != 0 {
		t.Errorf("Pending = %d after run, want 0", e.Pending())
	}
	if e.Processed() != 0 {
		t.Errorf("Processed = %d, want 0 (all events canceled)", e.Processed())
	}
	if len(e.free) != 10 {
		t.Errorf("free list holds %d records, want 10", len(e.free))
	}
}

func TestStaleTimerCannotCancelRecycledEvent(t *testing.T) {
	// A Timer held across its event's firing must not cancel the record's
	// next occupant after free-list reuse.
	e := New()
	stale := e.Schedule(1, func(float64) {})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	fired := false
	fresh := e.Schedule(2, func(float64) { fired = true })
	if fresh.ev != stale.ev {
		t.Fatal("expected the event record to be recycled")
	}
	stale.Cancel()
	if stale.Canceled() {
		t.Error("stale handle reports Canceled")
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("stale Cancel killed the recycled event")
	}
}

func TestSteadyStateSchedulingDoesNotAllocate(t *testing.T) {
	// Once the free list is primed, a schedule/fire cycle reuses its event
	// record and the value Timer never escapes.
	e := New()
	e.Schedule(0, func(float64) {})
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	h := Handler(func(float64) {})
	allocs := testing.AllocsPerRun(1000, func() {
		e.Schedule(e.Now(), h)
		e.Step()
	})
	if allocs > 0 {
		t.Errorf("steady-state schedule/fire allocates %.1f objects/op, want 0", allocs)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.Schedule(5, func(float64) {})
	e.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(1, func(float64) {})
}

func TestScheduleNaNPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Fatal("NaN schedule did not panic")
		}
	}()
	e.Schedule(math.NaN(), func(float64) {})
}

func TestAfterNegativePanics(t *testing.T) {
	e := New()
	e.Schedule(5, func(float64) {})
	e.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	e.After(-1, func(float64) {})
}

func TestStep(t *testing.T) {
	e := New()
	count := 0
	e.Schedule(1, func(float64) { count++ })
	e.Schedule(2, func(float64) { count++ })
	if !e.Step() {
		t.Fatal("Step returned false with pending events")
	}
	if count != 1 || e.Now() != 1 {
		t.Errorf("after one step: count=%d now=%g", count, e.Now())
	}
	if !e.Step() || e.Step() {
		t.Error("Step availability wrong")
	}
}

func TestStepSkipsCanceled(t *testing.T) {
	e := New()
	timer := e.Schedule(1, func(float64) { t.Error("canceled fired") })
	timer.Cancel()
	fired := false
	e.Schedule(2, func(float64) { fired = true })
	if !e.Step() {
		t.Fatal("Step false")
	}
	if !fired {
		t.Error("Step did not skip canceled event")
	}
}

func TestPending(t *testing.T) {
	e := New()
	e.Schedule(1, func(float64) {})
	e.Schedule(2, func(float64) {})
	if e.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", e.Pending())
	}
}

func TestManyEventsStress(t *testing.T) {
	e := New()
	const n = 100000
	count := 0
	for i := 0; i < n; i++ {
		e.Schedule(float64(n-i), func(float64) { count++ })
	}
	if err := e.Run(0); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Errorf("count = %d, want %d", count, n)
	}
}
