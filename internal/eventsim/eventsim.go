// Package eventsim implements a deterministic discrete-event simulation
// engine: a virtual clock and a priority queue of scheduled callbacks.
//
// The engine is single-threaded by design — discrete-event simulation derives
// its reproducibility from a total order over events, so all model code runs
// on the goroutine that calls Run. Events scheduled for the same instant are
// ordered by scheduling sequence number, which makes runs bit-for-bit
// repeatable for a fixed seed. (Many engines may run concurrently — one per
// goroutine — as long as each engine stays confined to its goroutine; the
// parallel replication runner in internal/runner relies on exactly that.)
//
// Event records are recycled through a per-engine free list: in steady state
// a Schedule/fire cycle performs no heap allocation, which matters because
// the swarm simulator schedules millions of events per run. Timer handles
// carry a generation number so a stale handle held across a recycle can
// never cancel the record's next occupant.
//
// The priority queue is a hand-rolled 4-ary heap over small value entries
// (time, seq, record pointer) rather than container/heap over record
// pointers: sift comparisons then touch only the contiguous entry array —
// no interface dispatch, no pointer chasing into recycled records — and the
// shallower tree halves the sift depth. Because (time, seq) is a strict
// total order, every heap shape pops events in exactly the same sequence,
// so this is invisible to simulation results.
package eventsim

import (
	"errors"
	"fmt"
	"math"
)

// ErrStopped is returned by Run when the simulation was halted explicitly
// via Stop rather than by draining the event queue or reaching the horizon.
var ErrStopped = errors.New("eventsim: stopped")

// Handler is a scheduled callback. It runs at its scheduled virtual time and
// may schedule further events.
type Handler func(now float64)

// event is one schedulable record. Ordering state lives in the heap entry,
// not here; gen counts free-list recycles so stale Timer handles become
// inert.
type event struct {
	gen      uint64
	handler  Handler
	canceled bool
}

// Timer is a handle to a scheduled event that can be canceled. The zero
// Timer is valid and inert: Cancel is a no-op and Canceled reports false.
// Timers are small values; copy them freely.
type Timer struct {
	ev  *event
	gen uint64
}

// Cancel prevents the event from firing. Canceling an already-fired,
// already-canceled, or zero timer is a no-op. Cancel is O(1); the queue
// drops canceled entries lazily when they surface, but the handler closure
// (and everything it captures) is released immediately so a canceled timer
// never retains model state until pop time.
func (t Timer) Cancel() {
	if t.ev != nil && t.ev.gen == t.gen && !t.ev.canceled {
		t.ev.canceled = true
		t.ev.handler = nil
	}
}

// Canceled reports whether Cancel was called before the event fired.
func (t Timer) Canceled() bool { return t.ev != nil && t.ev.gen == t.gen && t.ev.canceled }

// Pending reports whether the event is still scheduled: not canceled, not
// yet fired, and not a zero handle.
func (t Timer) Pending() bool { return t.ev != nil && t.ev.gen == t.gen && !t.ev.canceled }

// heapEntry is one priority-queue slot: the ordering key plus the record it
// schedules. Entries are plain values so sifting stays within one cache-hot
// array.
type heapEntry struct {
	time float64
	seq  uint64
	ev   *event
}

// entryLess orders entries by (time, seq) — a strict total order, since seq
// is unique per engine.
func entryLess(a, b heapEntry) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// Engine is the simulation core. The zero value is not usable; construct
// with New.
type Engine struct {
	now       float64
	seq       uint64
	queue     []heapEntry
	free      []*event // recycled event records
	stopped   bool
	processed uint64
}

// New returns an engine with the clock at zero.
func New() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of queued (possibly canceled) events.
func (e *Engine) Pending() int { return len(e.queue) }

// heapPush inserts an entry, sifting up through 4-ary parents with the
// hole-move technique (one store per level instead of a swap).
func (e *Engine) heapPush(en heapEntry) {
	q := append(e.queue, en)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !entryLess(en, q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = en
	e.queue = q
}

// heapPop removes and returns the minimum entry.
func (e *Engine) heapPop() heapEntry {
	q := e.queue
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = heapEntry{}
	q = q[:n]
	e.queue = q
	if n > 0 {
		i := 0
		for {
			c := 4*i + 1
			if c >= n {
				break
			}
			m := c
			end := min(c+4, n)
			for j := c + 1; j < end; j++ {
				if entryLess(q[j], q[m]) {
					m = j
				}
			}
			if !entryLess(q[m], last) {
				break
			}
			q[i] = q[m]
			i = m
		}
		q[i] = last
	}
	return top
}

// acquire returns a recycled event record, or a fresh one when the free
// list is empty.
func (e *Engine) acquire() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

// release returns a popped event to the free list, bumping its generation
// so outstanding Timer handles go stale and dropping the handler reference.
func (e *Engine) release(ev *event) {
	ev.gen++
	ev.handler = nil
	ev.canceled = false
	e.free = append(e.free, ev)
}

// Schedule runs h at absolute virtual time t. Scheduling in the past (t less
// than Now) panics: it indicates a causality bug in the model, and silently
// clamping would corrupt results. Scheduling exactly at Now is allowed and
// runs after currently pending events at this instant.
func (e *Engine) Schedule(t float64, h Handler) Timer {
	if t < e.now {
		panic(fmt.Sprintf("eventsim: schedule at %g before now %g", t, e.now))
	}
	if math.IsNaN(t) {
		panic("eventsim: schedule at NaN")
	}
	ev := e.acquire()
	ev.handler = h
	e.heapPush(heapEntry{time: t, seq: e.seq, ev: ev})
	e.seq++
	return Timer{ev: ev, gen: ev.gen}
}

// After runs h after delay d (relative scheduling). Negative delays panic.
func (e *Engine) After(d float64, h Handler) Timer {
	return e.Schedule(e.now+d, h)
}

// Stop halts the run loop after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in time order until the queue drains, the virtual
// clock passes horizon, or Stop is called. A non-positive horizon means no
// horizon. It returns ErrStopped if halted by Stop, nil otherwise.
func (e *Engine) Run(horizon float64) error {
	e.stopped = false
	for len(e.queue) > 0 {
		if e.stopped {
			return ErrStopped
		}
		if top := e.queue[0]; top.ev.canceled {
			e.release(e.heapPop().ev)
			continue
		} else if horizon > 0 && top.time > horizon {
			// Leave it queued so a subsequent Run with a later horizon
			// continues.
			e.now = horizon
			return nil
		}
		en := e.heapPop()
		// Recycle before dispatch so the handler's own scheduling reuses
		// this record; the handler and time are copied out first.
		h := en.ev.handler
		e.release(en.ev)
		e.now = en.time
		e.processed++
		h(e.now)
	}
	return nil
}

// Step executes exactly one event and reports whether one was available.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		en := e.heapPop()
		if en.ev.canceled {
			e.release(en.ev)
			continue
		}
		h := en.ev.handler
		e.release(en.ev)
		e.now = en.time
		e.processed++
		h(e.now)
		return true
	}
	return false
}
