package eventsim

import (
	"testing"
)

func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New()
		for j := 0; j < 1000; j++ {
			e.Schedule(float64(j), func(float64) {})
		}
		if err := e.Run(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelfScheduling(b *testing.B) {
	// The simulator's dominant pattern: handlers that schedule their
	// successors.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New()
		count := 0
		var tick Handler
		tick = func(float64) {
			count++
			if count < 1000 {
				e.After(1, tick)
			}
		}
		e.Schedule(0, tick)
		if err := e.Run(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSteadyStateReuse(b *testing.B) {
	// One long-lived engine draining schedule/fire cycles: the free list
	// keeps this at zero allocations per event in steady state.
	b.ReportAllocs()
	e := New()
	tick := Handler(func(float64) {})
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now(), tick)
		e.Step()
	}
}

func BenchmarkCancelHeavy(b *testing.B) {
	// Retry timers are frequently canceled before firing.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New()
		timers := make([]Timer, 0, 1000)
		for j := 0; j < 1000; j++ {
			timers = append(timers, e.Schedule(float64(j), func(float64) {}))
		}
		for _, timer := range timers[:500] {
			timer.Cancel()
		}
		if err := e.Run(0); err != nil {
			b.Fatal(err)
		}
	}
}
