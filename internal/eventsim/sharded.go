package eventsim

import (
	"fmt"
	"math"
)

// This file implements the conservative-lookahead parallel variant of the
// engine. The model's schedulable units are *lanes* (the swarm simulator
// uses one lane per peer plus one for the seeder); lanes are packed onto P
// shards by lane % P, and each shard owns an event heap, a free list, and
// the sequence counters of its lanes, so shards share no mutable state
// while a window executes.
//
// Time advances in windows of fixed width W (the lookahead): all shards
// concurrently execute their lanes' events with time in [T, T+W), then meet
// at a barrier. The model guarantees W is a lower bound on every cross-lane
// interaction latency, so an event executing inside a window can only
// schedule onto *other* lanes at or after the next window start — those
// sends travel through per-shard outboxes and are merged into the
// destination heaps at the barrier, before any of them is due.
//
// Determinism is by construction, independent of P:
//
//   - Every event carries the key (time, source lane, per-lane sequence
//     number). The pair (lane, seq) is unique, so the key is a strict total
//     order; per-shard heaps pop in key order, and because lanes never
//     interact inside a window, the union of all shards' pop sequences is
//     the same multiset in the same per-lane order for any P.
//   - In-window handlers must not mutate state shared across lanes.
//     Instead they stage *records* (facts about what happened, in the
//     model's own record type R); the barrier replays all records of the
//     window in merged key order on a single goroutine, interleaved with
//     the control queue below. The merged order is again P-independent.
//   - Control events (model-global work: joins, samplers, failure and
//     attack injection) live on a dedicated control queue processed only at
//     barriers, ordered by the same key with the control lane numbered
//     after every worker lane.
//
// The upshot: shards=1 and shards=N execute the identical event sequence
// per lane and the identical barrier sequence globally, so simulation
// output is byte-identical across shard counts.
type Sharded[R any] struct {
	p      int     // shard count
	lanes  int     // worker lanes; the control lane is lane `lanes`
	window float64 // lookahead W: minimum cross-lane latency
	replay func(now float64, rec R)

	shards  []*laneShard[R]
	laneSeq []uint64 // per-lane scheduling counters; last entry = control

	control   []shardEntry // control-queue 4-ary heap (lane = e.lanes)
	ctlFree   []*event
	ctlNow    float64
	ctlEvents uint64

	now          float64 // committed time: last barrier, horizon, or stop
	barrierFloor float64 // earliest admissible lane time for barrier scheduling
	lastEvent    float64 // latest executed event time (drain semantics)
	stopped      bool
	running      bool

	heads []int // per-shard record cursors, reused across barriers
}

// ShardStats is one shard's lifetime counters, exported for metrics.
type ShardStats struct {
	Lane      int     // shard index
	Processed uint64  // lane events executed
	Stalls    uint64  // windows in which this shard had no due event
	CrossSent uint64  // cross-lane messages sent from this shard
	CrossRecv uint64  // cross-lane messages delivered into this shard
	Staged    uint64  // records staged by this shard's lanes
	MaxTime   float64 // latest event time executed on this shard
}

// shardEntry is one heap slot: the deterministic key plus the record.
type shardEntry struct {
	time float64
	lane int32
	seq  uint64
	ev   *event
}

// keyLess orders entries by (time, lane, seq) — strict and P-independent.
func keyLess(a, b shardEntry) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	if a.lane != b.lane {
		return a.lane < b.lane
	}
	return a.seq < b.seq
}

// stagedRec is a model record tagged with its staging event's key; idx
// disambiguates multiple records from one event.
type stagedRec[R any] struct {
	time float64
	lane int32
	seq  uint64
	idx  int32
	rec  R
}

// outMsg is a cross-lane event in transit through an outbox.
type outMsg struct {
	time float64
	lane int32 // source lane (the key lane)
	seq  uint64
	h    Handler
}

// laneShard owns the heap, free list, outboxes, and staged records of the
// lanes assigned to it. Only its worker goroutine touches it during a
// window; only the coordinator touches it during a barrier.
type laneShard[R any] struct {
	id     int
	heap   []shardEntry
	free   []*event
	outbox [][]outMsg // indexed by destination shard
	recs   []stagedRec[R]

	// current-dispatch key, for Stage
	curTime   float64
	curLane   int32
	curSeq    uint64
	recIdx    int32
	winEnd    float64 // current window end, for cross-lane validation
	now       float64 // current event time while dispatching
	processed uint64
	stalls    uint64
	crossSent uint64
	crossRecv uint64
	maxTime   float64
	// stagedTotal accumulates record counts across cleared windows so
	// Stats reports lifetime staging volume.
	stagedTotal uint64

	work chan windowJob
	done chan struct{}
}

type windowJob struct {
	winEnd  float64
	horizon float64
}

// NewSharded returns a windowed parallel engine with the given shard count,
// worker-lane count, and lookahead window. replay is invoked on the barrier
// goroutine for every staged record, in deterministic merged order. Shard
// counts above the lane count are clamped (excess shards would only stall).
func NewSharded[R any](shards, lanes int, window float64, replay func(now float64, rec R)) *Sharded[R] {
	if shards < 1 || lanes < 1 {
		panic(fmt.Sprintf("eventsim: NewSharded(%d, %d)", shards, lanes))
	}
	if window <= 0 || math.IsNaN(window) || math.IsInf(window, 0) {
		panic(fmt.Sprintf("eventsim: NewSharded window %g", window))
	}
	if shards > lanes {
		shards = lanes
	}
	e := &Sharded[R]{
		p:       shards,
		lanes:   lanes,
		window:  window,
		replay:  replay,
		laneSeq: make([]uint64, lanes+1),
		heads:   make([]int, shards),
	}
	e.shards = make([]*laneShard[R], shards)
	for i := range e.shards {
		e.shards[i] = &laneShard[R]{
			id:     i,
			outbox: make([][]outMsg, shards),
			work:   make(chan windowJob, 1),
			done:   make(chan struct{}, 1),
		}
	}
	return e
}

// Now returns the committed virtual time: the last window boundary, the
// horizon, or (after a drain) the final event time.
func (e *Sharded[R]) Now() float64 { return e.now }

// Window returns the lookahead width W.
func (e *Sharded[R]) Window() float64 { return e.window }

// Shards returns the effective shard count.
func (e *Sharded[R]) Shards() int { return e.p }

// Processed returns the total events executed (lane events plus control
// events; staged records are not events).
func (e *Sharded[R]) Processed() uint64 {
	total := e.ctlEvents
	for _, sh := range e.shards {
		total += sh.processed
	}
	return total
}

// Stats returns a snapshot of the per-shard counters. Call between windows
// or after Run (the counters are owned by worker goroutines mid-window).
func (e *Sharded[R]) Stats() []ShardStats {
	out := make([]ShardStats, e.p)
	for i, sh := range e.shards {
		out[i] = ShardStats{
			Lane:      i,
			Processed: sh.processed,
			Stalls:    sh.stalls,
			CrossSent: sh.crossSent,
			CrossRecv: sh.crossRecv,
			Staged:    uint64(len(sh.recs)) + sh.stagedTotal,
			MaxTime:   sh.maxTime,
		}
	}
	return out
}

// ControlProcessed returns the number of control events executed.
func (e *Sharded[R]) ControlProcessed() uint64 { return e.ctlEvents }

func (sh *laneShard[R]) push(en shardEntry) {
	q := append(sh.heap, en)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !keyLess(en, q[p]) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = en
	sh.heap = q
}

// heapPop4 removes and returns the minimum entry from a
// (time, lane, seq)-keyed 4-ary heap, returning the shrunk slice alongside
// it. A plain function over the entry slice so the shard heaps and the
// control heap share one implementation.
func heapPop4(q []shardEntry) ([]shardEntry, shardEntry) {
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = shardEntry{}
	q = q[:n]
	if n > 0 {
		i := 0
		for {
			c := 4*i + 1
			if c >= n {
				break
			}
			m := c
			end := min(c+4, n)
			for j := c + 1; j < end; j++ {
				if keyLess(q[j], q[m]) {
					m = j
				}
			}
			if !keyLess(q[m], last) {
				break
			}
			q[i] = q[m]
			i = m
		}
		q[i] = last
	}
	return q, top
}

func (sh *laneShard[R]) acquire() *event {
	if n := len(sh.free); n > 0 {
		ev := sh.free[n-1]
		sh.free[n-1] = nil
		sh.free = sh.free[:n-1]
		return ev
	}
	return &event{}
}

func (sh *laneShard[R]) release(ev *event) {
	ev.gen++
	ev.handler = nil
	ev.canceled = false
	sh.free = append(sh.free, ev)
}

func (e *Sharded[R]) shardOf(lane int) *laneShard[R] {
	return e.shards[lane%e.p]
}

func checkTime(t float64) {
	if math.IsNaN(t) {
		panic("eventsim: schedule at NaN")
	}
}

// LaneSchedule schedules h on lane at absolute time t. It must be called
// either from a handler already executing on that lane's shard (same-lane
// self-scheduling: retries, transfer completions on the sender side) or
// before Run. Scheduling before the shard's current event time panics.
func (e *Sharded[R]) LaneSchedule(lane int, t float64, h Handler) Timer {
	checkTime(t)
	sh := e.shardOf(lane)
	if t < sh.now {
		panic(fmt.Sprintf("eventsim: lane %d schedule at %g before now %g", lane, t, sh.now))
	}
	seq := e.laneSeq[lane]
	e.laneSeq[lane] = seq + 1
	ev := sh.acquire()
	ev.handler = h
	sh.push(shardEntry{time: t, lane: int32(lane), seq: seq, ev: ev})
	return Timer{ev: ev, gen: ev.gen}
}

// Send schedules h on dstLane from a handler currently executing on
// srcLane's shard. The event is keyed by the *source* lane (whose sequence
// counter the executing shard owns) and travels through the source shard's
// outbox, landing in the destination heap at the next barrier. t must be at
// or after the next window boundary — that is the lookahead contract — and
// violating it panics rather than silently reordering events.
func (e *Sharded[R]) Send(srcLane, dstLane int, t float64, h Handler) {
	checkTime(t)
	src := e.shardOf(srcLane)
	if e.running && t < src.winEnd {
		panic(fmt.Sprintf("eventsim: cross-lane send %d->%d at %g violates lookahead window ending %g",
			srcLane, dstLane, t, src.winEnd))
	}
	seq := e.laneSeq[srcLane]
	e.laneSeq[srcLane] = seq + 1
	d := dstLane % e.p
	src.outbox[d] = append(src.outbox[d], outMsg{time: t, lane: int32(srcLane), seq: seq, h: h})
	src.crossSent++
}

// BarrierSchedule schedules h on lane from barrier context (a replayed
// record, a control handler, or initialization). Times inside the window
// that just executed are clamped forward to the next window boundary: the
// lane has already run past them, and the clamp keeps the adjustment
// identical for every shard count.
func (e *Sharded[R]) BarrierSchedule(lane int, t float64, h Handler) Timer {
	checkTime(t)
	if t < e.barrierFloor {
		t = e.barrierFloor
	}
	sh := e.shardOf(lane)
	seq := e.laneSeq[lane]
	e.laneSeq[lane] = seq + 1
	ev := sh.acquire()
	ev.handler = h
	sh.push(shardEntry{time: t, lane: int32(lane), seq: seq, ev: ev})
	return Timer{ev: ev, gen: ev.gen}
}

// ScheduleControl schedules h on the control queue at absolute time t.
// Control handlers run single-threaded at window barriers, merged with
// staged records in (time, lane, seq) order; the control lane orders after
// every worker lane at equal times.
func (e *Sharded[R]) ScheduleControl(t float64, h Handler) Timer {
	checkTime(t)
	if t < e.ctlNow {
		panic(fmt.Sprintf("eventsim: control schedule at %g before now %g", t, e.ctlNow))
	}
	seq := e.laneSeq[e.lanes]
	e.laneSeq[e.lanes] = seq + 1
	var ev *event
	if n := len(e.ctlFree); n > 0 {
		ev = e.ctlFree[n-1]
		e.ctlFree[n-1] = nil
		e.ctlFree = e.ctlFree[:n-1]
	} else {
		ev = &event{}
	}
	ev.handler = h
	e.control = append(e.control, shardEntry{time: t, lane: int32(e.lanes), seq: seq, ev: ev})
	i := len(e.control) - 1
	en := e.control[i]
	for i > 0 {
		p := (i - 1) / 4
		if !keyLess(en, e.control[p]) {
			break
		}
		e.control[i] = e.control[p]
		i = p
	}
	e.control[i] = en
	return Timer{ev: ev, gen: ev.gen}
}

// ControlAfter schedules a control handler relative to the current control
// time (the executing control event's time, or 0 before Run).
func (e *Sharded[R]) ControlAfter(d float64, h Handler) Timer {
	return e.ScheduleControl(e.ctlNow+d, h)
}

// Stage records a model fact from a handler executing on lane's shard. The
// record is keyed by the staging event's own key plus a per-event index and
// replayed at this window's barrier in merged deterministic order.
func (e *Sharded[R]) Stage(lane int, rec R) {
	sh := e.shardOf(lane)
	sh.recs = append(sh.recs, stagedRec[R]{
		time: sh.curTime, lane: sh.curLane, seq: sh.curSeq, idx: sh.recIdx, rec: rec,
	})
	sh.recIdx++
}

// Stop halts the run at the current barrier: the in-flight merge step
// finishes and Run returns ErrStopped with Now at the window boundary, a
// virtual time every shard has consistently reached. Call it from barrier
// context (a replayed record or control handler) so the stop decision is
// shard-count-independent.
func (e *Sharded[R]) Stop() { e.stopped = true }

// runWindow executes this shard's due events: those strictly before winEnd
// and, when a horizon is set, at or before it. Runs on the shard's worker
// goroutine (shard 0 runs on the coordinator).
func (sh *laneShard[R]) runWindow(winEnd, horizon float64) {
	sh.winEnd = winEnd
	n := 0
	for len(sh.heap) > 0 {
		top := sh.heap[0]
		if top.ev.canceled {
			var dead shardEntry
			sh.heap, dead = heapPop4(sh.heap)
			sh.release(dead.ev)
			continue
		}
		if top.time >= winEnd || (horizon > 0 && top.time > horizon) {
			break
		}
		var en shardEntry
		sh.heap, en = heapPop4(sh.heap)
		h := en.ev.handler
		sh.release(en.ev)
		sh.now = en.time
		sh.curTime, sh.curLane, sh.curSeq, sh.recIdx = en.time, en.lane, en.seq, 0
		sh.processed++
		if en.time > sh.maxTime {
			sh.maxTime = en.time
		}
		n++
		h(en.time)
	}
	if n == 0 {
		sh.stalls++
	}
}

// nextEventTime returns the earliest queued time across all shards and the
// control queue (+Inf when everything has drained). Canceled entries are
// included: their times are identical for every shard count, so letting
// them pick a window keeps the window sequence P-independent (the window
// then simply discards them).
func (e *Sharded[R]) nextEventTime() float64 {
	t := math.Inf(1)
	for _, sh := range e.shards {
		if len(sh.heap) > 0 && sh.heap[0].time < t {
			t = sh.heap[0].time
		}
	}
	if len(e.control) > 0 && e.control[0].time < t {
		t = e.control[0].time
	}
	return t
}

// Run executes windows until every queue drains, the horizon passes, or
// Stop is called, spawning one worker goroutine per extra shard for the
// duration (shard 0 runs on the calling goroutine). A non-positive horizon
// means no horizon. Like Engine.Run it returns ErrStopped only for Stop.
func (e *Sharded[R]) Run(horizon float64) error {
	e.stopped = false
	e.running = true
	defer func() { e.running = false }()

	for _, sh := range e.shards[1:] {
		go func(sh *laneShard[R]) {
			for job := range sh.work {
				sh.runWindow(job.winEnd, job.horizon)
				sh.done <- struct{}{}
			}
		}(sh)
	}
	defer func() {
		for _, sh := range e.shards[1:] {
			close(sh.work)
		}
	}()

	for {
		t := e.nextEventTime()
		if math.IsInf(t, 1) {
			// Drained: match the serial engine, whose clock rests on the
			// final executed event rather than a window boundary or the
			// horizon.
			e.now = e.lastEvent
			return nil
		}
		if horizon > 0 && t > horizon {
			e.now = horizon
			return nil
		}
		// Fast-forward to the window containing the next event.
		k := math.Floor(t / e.window)
		winEnd := (k + 1) * e.window

		for _, sh := range e.shards[1:] {
			sh.work <- windowJob{winEnd: winEnd, horizon: horizon}
		}
		e.shards[0].runWindow(winEnd, horizon)
		for _, sh := range e.shards[1:] {
			<-sh.done
		}

		e.deliverOutboxes(winEnd)
		e.barrierFloor = winEnd
		stopped := e.runBarrier(winEnd, horizon)

		for _, sh := range e.shards {
			if sh.maxTime > e.lastEvent {
				e.lastEvent = sh.maxTime
			}
			sh.stagedTotal += uint64(len(sh.recs))
			sh.recs = sh.recs[:0]
		}
		if e.ctlNow > e.lastEvent {
			e.lastEvent = e.ctlNow
		}
		e.now = winEnd
		if horizon > 0 && e.now > horizon {
			e.now = horizon
		}
		if stopped {
			return ErrStopped
		}
	}
}

// deliverOutboxes merges every shard's pending cross-lane messages into the
// destination heaps. Single-threaded; heap insertion order is irrelevant
// because pops follow the strict key order.
func (e *Sharded[R]) deliverOutboxes(winEnd float64) {
	for _, src := range e.shards {
		for d := range src.outbox {
			msgs := src.outbox[d]
			if len(msgs) == 0 {
				continue
			}
			dst := e.shards[d]
			for _, m := range msgs {
				ev := dst.acquire()
				ev.handler = m.h
				dst.push(shardEntry{time: m.time, lane: m.lane, seq: m.seq, ev: ev})
				dst.crossRecv++
			}
			src.outbox[d] = msgs[:0]
		}
	}
}

// runBarrier replays the window's staged records merged with due control
// events in (time, lane, seq, idx) order, on the coordinator goroutine. It
// reports whether Stop was called; once it is, the merge halts immediately
// (the deterministic analogue of the serial engine stopping after the
// current event).
func (e *Sharded[R]) runBarrier(winEnd, horizon float64) bool {
	heads := e.heads
	for i := range heads {
		heads[i] = 0
	}
	for {
		// Earliest unconsumed record across shards.
		best := -1
		var bt float64
		var bl int32
		var bs uint64
		var bi int32
		for i, sh := range e.shards {
			h := heads[i]
			if h >= len(sh.recs) {
				continue
			}
			r := &sh.recs[h]
			if best < 0 || recLess(r.time, r.lane, r.seq, r.idx, bt, bl, bs, bi) {
				best, bt, bl, bs, bi = i, r.time, r.lane, r.seq, r.idx
			}
		}
		// Earliest due, live control event.
		haveCtl := false
		for len(e.control) > 0 {
			top := e.control[0]
			if top.ev.canceled {
				var dead shardEntry
				e.control, dead = heapPop4(e.control)
				e.releaseControl(dead.ev)
				continue
			}
			if top.time >= winEnd || (horizon > 0 && top.time > horizon) {
				break
			}
			haveCtl = true
			break
		}
		switch {
		case best < 0 && !haveCtl:
			return e.stopped
		case haveCtl && (best < 0 || keyLess(e.control[0], shardEntry{time: bt, lane: bl, seq: bs})):
			var en shardEntry
			e.control, en = heapPop4(e.control)
			h := en.ev.handler
			e.releaseControl(en.ev)
			e.ctlNow = en.time
			e.ctlEvents++
			h(en.time)
		default:
			sh := e.shards[best]
			r := &sh.recs[heads[best]]
			heads[best]++
			e.replay(r.time, r.rec)
		}
		if e.stopped {
			return true
		}
	}
}

func (e *Sharded[R]) releaseControl(ev *event) {
	ev.gen++
	ev.handler = nil
	ev.canceled = false
	e.ctlFree = append(e.ctlFree, ev)
}

// recLess orders record keys (time, lane, seq, idx).
func recLess(at float64, al int32, as uint64, ai int32, bt float64, bl int32, bs uint64, bi int32) bool {
	if at != bt {
		return at < bt
	}
	if al != bl {
		return al < bl
	}
	if as != bs {
		return as < bs
	}
	return ai < bi
}
