// Package reputation implements the global reputation substrate the paper's
// reputation-based algorithm relies on (Section III-A): every user is
// assumed to know the total amount of data each other user has uploaded,
// and upload preference is proportional to that score.
//
// The ledger API is proof-first: every credit is an attest.Attestation and
// the ledger consults its verification policy before mutating anything.
// The paper's trust-the-report world — the design weakness its collusion
// and false-praise attacks (Table III) exploit — is still expressible, but
// only explicitly, by constructing the ledger with attest.AcceptAll; a
// ledger built over an attest.Verifier credits nothing it cannot prove.
package reputation

import (
	"errors"
	"sync"

	"repro/internal/attest"
)

// ErrNonPositive rejects attestations claiming zero or negative bytes.
var ErrNonPositive = errors.New("reputation: non-positive byte count")

// Standing is one peer's ledger entry: its cumulative verified score plus
// how many proofs naming it as the contributor were accepted and rejected.
// A forger shows up as a peer with a large Invalid count and no Score.
type Standing struct {
	Score   float64
	Valid   uint64
	Invalid uint64
}

// Ledger tracks cumulative upload contributions per peer, credited only
// through attestations its policy admits. Safe for concurrent use: the
// simulator mutates it from one goroutine (or one per shard lane), the
// live network node from many.
type Ledger struct {
	policy attest.Policy

	mu      sync.RWMutex
	scores  map[int]float64
	valid   map[int]uint64
	invalid map[int]uint64
}

// NewLedger returns an empty ledger enforcing policy. The policy is
// required: pass an attest.Verifier to credit only cryptographic proofs,
// or attest.AcceptAll for the paper's unverified baseline.
func NewLedger(policy attest.Policy) *Ledger {
	if policy == nil {
		panic("reputation: NewLedger requires a policy (attest.AcceptAll for the unverified baseline)")
	}
	return &Ledger{
		policy:  policy,
		scores:  make(map[int]float64),
		valid:   make(map[int]uint64),
		invalid: make(map[int]uint64),
	}
}

// Credit records that att.Sender uploaded att.Bytes of data, if and only
// if the attestation passes the ledger's policy. On rejection the claimed
// beneficiary's invalid-proof count rises and the policy's error is
// returned; scores never move on unproven claims.
func (l *Ledger) Credit(att attest.Attestation) error {
	if att.Bytes <= 0 {
		return ErrNonPositive
	}
	if err := l.policy.Verify(att); err != nil {
		l.mu.Lock()
		l.invalid[int(att.Sender)]++
		l.mu.Unlock()
		return err
	}
	l.mu.Lock()
	l.scores[int(att.Sender)] += float64(att.Bytes)
	l.valid[int(att.Sender)]++
	l.mu.Unlock()
	return nil
}

// Score returns peer's cumulative reputation (0 for unknown peers).
func (l *Ledger) Score(peer int) float64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.scores[peer]
}

// Reset erases peer's standing, modelling a whitewashing identity reset.
func (l *Ledger) Reset(peer int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.scores, peer)
	delete(l.valid, peer)
	delete(l.invalid, peer)
}

// Total returns the sum of all scores.
func (l *Ledger) Total() float64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var sum float64
	for _, s := range l.scores {
		sum += s
	}
	return sum
}

// Snapshot returns every peer's standing — including peers that only ever
// produced rejected proofs — for metrics, the /verify endpoint, and
// debugging.
func (l *Ledger) Snapshot() map[int]Standing {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make(map[int]Standing, len(l.scores))
	for k, v := range l.scores {
		out[k] = Standing{Score: v, Valid: l.valid[k]}
	}
	for k, n := range l.valid {
		if _, ok := out[k]; !ok {
			out[k] = Standing{Valid: n}
		}
	}
	for k, n := range l.invalid {
		s := out[k]
		s.Invalid = n
		out[k] = s
	}
	return out
}
