// Package reputation implements the global reputation substrate the paper's
// reputation-based algorithm relies on (Section III-A): every user is
// assumed to know the total amount of data each other user has uploaded,
// and upload preference is proportional to that score.
//
// The ledger deliberately accepts unverified self-reports — that is the
// design weakness the paper's collusion attack (Table III, collusion
// probability 1) exploits, and the attack package drives it through
// ReportCredit.
package reputation

import (
	"sync"
)

// Ledger tracks cumulative upload contributions per peer. Safe for
// concurrent use: the simulator mutates it from one goroutine, but the live
// network node updates it from many.
type Ledger struct {
	mu     sync.RWMutex
	scores map[int]float64
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{scores: make(map[int]float64)}
}

// Credit records that peer uploaded bytes of verified data. Non-positive
// amounts are ignored.
func (l *Ledger) Credit(peer int, bytes float64) {
	if bytes <= 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.scores[peer] += bytes
}

// ReportCredit records an *unverified* contribution claim on behalf of
// peer. It is functionally identical to Credit — which is precisely the
// vulnerability: the basic reputation algorithm cannot distinguish false
// praise from real uploads. Kept as a separate entry point so call sites
// document whether a credit was observed or merely claimed.
func (l *Ledger) ReportCredit(peer int, bytes float64) {
	l.Credit(peer, bytes)
}

// Score returns peer's cumulative reputation (0 for unknown peers).
func (l *Ledger) Score(peer int) float64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.scores[peer]
}

// Reset erases peer's reputation, modelling a whitewashing identity reset.
func (l *Ledger) Reset(peer int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.scores, peer)
}

// Total returns the sum of all scores.
func (l *Ledger) Total() float64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var sum float64
	for _, s := range l.scores {
		sum += s
	}
	return sum
}

// Snapshot returns a copy of all scores, for metrics and debugging.
func (l *Ledger) Snapshot() map[int]float64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make(map[int]float64, len(l.scores))
	for k, v := range l.scores {
		out[k] = v
	}
	return out
}
