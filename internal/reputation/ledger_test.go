package reputation

import (
	"sync"
	"testing"
)

func TestCreditAndScore(t *testing.T) {
	l := NewLedger()
	if l.Score(1) != 0 {
		t.Error("unknown peer has nonzero score")
	}
	l.Credit(1, 100)
	l.Credit(1, 50)
	l.Credit(2, 25)
	if got := l.Score(1); got != 150 {
		t.Errorf("Score(1) = %g", got)
	}
	if got := l.Total(); got != 175 {
		t.Errorf("Total = %g", got)
	}
}

func TestCreditIgnoresNonPositive(t *testing.T) {
	l := NewLedger()
	l.Credit(1, 0)
	l.Credit(1, -10)
	if l.Score(1) != 0 {
		t.Error("non-positive credit recorded")
	}
}

func TestReportCreditIsUnverified(t *testing.T) {
	// The collusion vulnerability: claimed credit is indistinguishable
	// from observed credit.
	l := NewLedger()
	l.ReportCredit(7, 1000)
	if l.Score(7) != 1000 {
		t.Error("false praise not recorded — the modelled vulnerability is gone")
	}
}

func TestResetModelsWhitewashing(t *testing.T) {
	l := NewLedger()
	l.Credit(3, 500)
	l.Reset(3)
	if l.Score(3) != 0 {
		t.Error("Reset did not clear the score")
	}
	l.Reset(99) // unknown peer: no-op
}

func TestSnapshotIsCopy(t *testing.T) {
	l := NewLedger()
	l.Credit(1, 10)
	snap := l.Snapshot()
	snap[1] = 999
	if l.Score(1) != 10 {
		t.Error("Snapshot aliases internal state")
	}
	if len(snap) != 1 {
		t.Errorf("snapshot size %d", len(snap))
	}
}

func TestLedgerConcurrent(t *testing.T) {
	l := NewLedger()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Credit(id, 1)
				l.Score(id)
				l.Total()
			}
		}(i)
	}
	wg.Wait()
	if got := l.Total(); got != 1600 {
		t.Errorf("Total = %g, want 1600", got)
	}
}
