package reputation

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/attest"
)

// acceptAll is shorthand for the unverified-baseline ledger.
func acceptAll() *Ledger { return NewLedger(attest.AcceptAll{}) }

func mustCredit(t *testing.T, l *Ledger, att attest.Attestation) {
	t.Helper()
	if err := l.Credit(att); err != nil {
		t.Fatalf("Credit: %v", err)
	}
}

func TestCreditAndScore(t *testing.T) {
	l := acceptAll()
	if l.Score(1) != 0 {
		t.Error("unknown peer has nonzero score")
	}
	mustCredit(t, l, attest.Claim(1, 9, 0, 100))
	mustCredit(t, l, attest.Claim(1, 9, 1, 50))
	mustCredit(t, l, attest.Claim(2, 9, 0, 25))
	if got := l.Score(1); got != 150 {
		t.Errorf("Score(1) = %g", got)
	}
	if got := l.Total(); got != 175 {
		t.Errorf("Total = %g", got)
	}
}

func TestCreditRejectsNonPositive(t *testing.T) {
	l := acceptAll()
	if err := l.Credit(attest.Claim(1, 9, 0, 0)); !errors.Is(err, ErrNonPositive) {
		t.Errorf("zero bytes: got %v", err)
	}
	if err := l.Credit(attest.Claim(1, 9, 0, -10)); !errors.Is(err, ErrNonPositive) {
		t.Errorf("negative bytes: got %v", err)
	}
	if l.Score(1) != 0 {
		t.Error("non-positive credit recorded")
	}
}

func TestAcceptAllCreditsUnsignedClaims(t *testing.T) {
	// The paper's modelled vulnerability: under the unverified baseline a
	// bare claim is indistinguishable from an observed upload.
	l := acceptAll()
	mustCredit(t, l, attest.Claim(7, 3, 0, 1000))
	if l.Score(7) != 1000 {
		t.Error("false praise not recorded — the modelled vulnerability is gone from the baseline")
	}
}

func TestVerifiedLedgerCreditsOnlyProofs(t *testing.T) {
	dir := attest.NewDirectory()
	alice := attest.NewKeyFromSeed(1, 7)
	bob := attest.NewKeyFromSeed(2, 7)
	dir.Register(1, alice.Identity())
	dir.Register(2, bob.Identity())
	l := NewLedger(attest.NewVerifier(dir))

	// A genuine receipt signed by bob credits alice.
	genuine := bob.Attest(attest.SchemeEd25519, 1, 0, [32]byte{}, 500)
	mustCredit(t, l, genuine)
	if l.Score(1) != 500 {
		t.Fatalf("Score(1) = %g, want 500", l.Score(1))
	}

	// A bare claim is rejected and leaves no score.
	if err := l.Credit(attest.Claim(3, 2, 0, 900)); !errors.Is(err, attest.ErrUnsigned) {
		t.Fatalf("claim: got %v", err)
	}
	// A replay is rejected.
	if err := l.Credit(genuine); !errors.Is(err, attest.ErrReplayed) {
		t.Fatalf("replay: got %v", err)
	}
	if l.Score(1) != 500 {
		t.Fatalf("replay moved the score: %g", l.Score(1))
	}

	snap := l.Snapshot()
	if s := snap[1]; s.Score != 500 || s.Valid != 1 || s.Invalid != 1 {
		t.Errorf("standing[1] = %+v, want {500 1 1}", s)
	}
	if s := snap[3]; s.Score != 0 || s.Invalid != 1 {
		t.Errorf("standing[3] = %+v, want zero score, one invalid", s)
	}
}

func TestResetModelsWhitewashing(t *testing.T) {
	l := acceptAll()
	mustCredit(t, l, attest.Claim(3, 9, 0, 500))
	l.Reset(3)
	if l.Score(3) != 0 {
		t.Error("Reset did not clear the score")
	}
	if len(l.Snapshot()) != 0 {
		t.Error("Reset left standings behind")
	}
	l.Reset(99) // unknown peer: no-op
}

func TestSnapshotIsCopy(t *testing.T) {
	l := acceptAll()
	mustCredit(t, l, attest.Claim(1, 9, 0, 10))
	snap := l.Snapshot()
	snap[1] = Standing{Score: 999}
	if l.Score(1) != 10 {
		t.Error("Snapshot aliases internal state")
	}
	if len(snap) != 1 {
		t.Errorf("snapshot size %d", len(snap))
	}
}

func TestLedgerConcurrent(t *testing.T) {
	l := acceptAll()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if err := l.Credit(attest.Claim(int32(id), -1, int32(j), 1)); err != nil {
					t.Errorf("Credit: %v", err)
					return
				}
				l.Score(id)
				l.Total()
			}
		}(i)
	}
	wg.Wait()
	if got := l.Total(); got != 1600 {
		t.Errorf("Total = %g, want 1600", got)
	}
}
