package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/cli"
	"repro/internal/metrics"
)

func TestSeedFlags(t *testing.T) {
	if _, err := seedFlags([]string{}); err == nil {
		t.Error("missing -file accepted")
	}
	opts, err := seedFlags([]string{"-file", "x.bin"})
	if err != nil {
		t.Fatal(err)
	}
	if opts.manifestPath != "x.bin.manifest" {
		t.Errorf("default manifest path = %q", opts.manifestPath)
	}
}

func TestGetFlags(t *testing.T) {
	cases := [][]string{
		{},
		{"-manifest", "m.json"},
		{"-manifest", "m.json", "-out", "f.bin"},
	}
	for i, args := range cases {
		if _, err := getFlags(args); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	opts, err := getFlags([]string{"-manifest", "m.json", "-out", "f.bin", "-peer", "a:1", "-peer", "b:2", "-json"})
	if err != nil {
		t.Fatal(err)
	}
	if len(opts.peers) != 2 {
		t.Errorf("peers = %v", opts.peers)
	}
	if !opts.output.JSON {
		t.Error("-json not parsed")
	}
}

// TestSeedAndGetEndToEnd seeds a real file over TCP and downloads it with
// a second node, exercising the full CLI path minus flag parsing.
func TestSeedAndGetEndToEnd(t *testing.T) {
	dir := t.TempDir()
	srcPath := filepath.Join(dir, "payload.bin")
	content := make([]byte, 96<<10)
	for i := range content {
		content[i] = byte(i*7 + i/1024)
	}
	if err := os.WriteFile(srcPath, content, 0o644); err != nil {
		t.Fatal(err)
	}

	var seedOut strings.Builder
	seed, seedTel, err := startSeed(seedOptions{
		filePath:     srcPath,
		manifestPath: filepath.Join(dir, "payload.manifest"),
		listen:       "127.0.0.1:0",
		algoName:     "tchain",
		pieceSize:    8 << 10,
		id:           0,
		telemetry:    cli.TelemetryFlags{MetricsAddr: "127.0.0.1:0"},
	}, &seedOut)
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Stop()
	defer seedTel.stop(nil)
	if !strings.Contains(seedOut.String(), "seeding") {
		t.Errorf("seed output = %q", seedOut.String())
	}
	if seedTel.addr == "" {
		t.Fatal("seed telemetry bound no address")
	}
	if !strings.Contains(seedOut.String(), seedTel.addr) {
		t.Errorf("seed output %q does not report telemetry address %s", seedOut.String(), seedTel.addr)
	}

	outPath := filepath.Join(dir, "copy.bin")
	var getOut strings.Builder
	err = runGet(getOptions{
		manifestPath: filepath.Join(dir, "payload.manifest"),
		outPath:      outPath,
		peers:        cli.StringList{seed.Addr()},
		listen:       "127.0.0.1:0",
		algoName:     "tchain",
		id:           1,
		timeout:      60 * time.Second,
	}, &getOut)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("downloaded file differs from the original")
	}

	// A second download with -json emits the run summary with sane rates
	// and frame counters.
	var jsonOut strings.Builder
	err = runGet(getOptions{
		manifestPath: filepath.Join(dir, "payload.manifest"),
		outPath:      filepath.Join(dir, "copy2.bin"),
		peers:        cli.StringList{seed.Addr()},
		listen:       "127.0.0.1:0",
		algoName:     "tchain",
		id:           2,
		timeout:      60 * time.Second,
		output:       cli.OutputFlags{JSON: true},
	}, &jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	var summary struct {
		cli.RunSummary
		Out       string `json:"out"`
		Algorithm string `json:"algorithm"`
	}
	if err := json.Unmarshal([]byte(jsonOut.String()), &summary); err != nil {
		t.Fatalf("bad JSON output %q: %v", jsonOut.String(), err)
	}
	if summary.Bytes != len(content) {
		t.Errorf("summary bytes = %d, want %d", summary.Bytes, len(content))
	}
	if summary.PiecesPerSec <= 0 || summary.BytesPerSec <= 0 {
		t.Errorf("rates not positive: %+v", summary.RunSummary)
	}
	if summary.FramesSent <= 0 || summary.FramesReceived <= 0 {
		t.Errorf("frame counters not positive: %+v", summary.RunSummary)
	}
	if summary.Algorithm != "T-Chain" {
		t.Errorf("algorithm = %q", summary.Algorithm)
	}

	// The seed's live HTTP surface serves both exposition formats while it
	// runs, and its upload counters account for the copies it pushed out.
	res, err := http.Get("http://" + seedTel.addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	promText, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(promText), "# TYPE node_uploaded_bytes_total counter") {
		t.Errorf("seed /metrics missing upload counter family:\n%.400s", promText)
	}
	res, err = http.Get("http://" + seedTel.addr + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	var seedSnap metrics.Snapshot
	err = json.NewDecoder(res.Body).Decode(&seedSnap)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := seedSnap.Counters["node_uploaded_bytes_total"]; got < int64(2*len(content)) {
		t.Errorf("seed uploaded %d bytes, want >= two full copies (%d)", got, 2*len(content))
	}

	// A third download with -metrics-out dumps a snapshot whose per-peer
	// download counters sum to the run summary's byte total (the acceptance
	// contract), plus the summary itself.
	dumpPath := filepath.Join(dir, "telemetry.json")
	var out3 strings.Builder
	err = runGet(getOptions{
		manifestPath: filepath.Join(dir, "payload.manifest"),
		outPath:      filepath.Join(dir, "copy3.bin"),
		peers:        cli.StringList{seed.Addr()},
		listen:       "127.0.0.1:0",
		algoName:     "tchain",
		id:           3,
		timeout:      60 * time.Second,
		output:       cli.OutputFlags{JSON: true},
		telemetry:    cli.TelemetryFlags{MetricsAddr: "127.0.0.1:0", MetricsOut: dumpPath},
	}, &out3)
	if err != nil {
		t.Fatal(err)
	}
	var report3 getReport
	if err := json.Unmarshal([]byte(out3.String()), &report3); err != nil {
		t.Fatalf("bad JSON output %q: %v", out3.String(), err)
	}
	if report3.MetricsAddr == "" {
		t.Error("get -json did not report the bound metrics address")
	}
	raw, err := os.ReadFile(dumpPath)
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Snapshot metrics.Snapshot `json:"snapshot"`
		Summary  getReport        `json:"summary"`
	}
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatal(err)
	}
	var perPeer int64
	for name, v := range dump.Snapshot.Counters {
		if strings.HasPrefix(name, "node_peer_download_bytes_total{") {
			perPeer += v
		}
	}
	if perPeer != int64(report3.Bytes) || report3.Bytes != len(content) {
		t.Errorf("dump per-peer download sum = %d, summary bytes = %d, want %d", perPeer, report3.Bytes, len(content))
	}
	if dump.Summary.Bytes != report3.Bytes {
		t.Errorf("embedded summary bytes = %d, want %d", dump.Summary.Bytes, report3.Bytes)
	}
}

// TestSeedAndGetSigned repeats the download with -sign on both ends: each
// process mints a fresh Ed25519 keypair, pins the counterparty's key
// trust-on-first-use from the handshake, and every stored piece produces a
// signed receipt instead of a bare claim.
func TestSeedAndGetSigned(t *testing.T) {
	dir := t.TempDir()
	srcPath := filepath.Join(dir, "payload.bin")
	content := make([]byte, 32<<10)
	for i := range content {
		content[i] = byte(i*11 + i/256)
	}
	if err := os.WriteFile(srcPath, content, 0o644); err != nil {
		t.Fatal(err)
	}

	var seedOut strings.Builder
	seed, seedTel, err := startSeed(seedOptions{
		filePath:     srcPath,
		manifestPath: filepath.Join(dir, "payload.manifest"),
		listen:       "127.0.0.1:0",
		algoName:     "tchain",
		pieceSize:    8 << 10,
		id:           0,
		sign:         true,
	}, &seedOut)
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Stop()
	defer seedTel.stop(nil)

	outPath := filepath.Join(dir, "copy.bin")
	var getOut strings.Builder
	err = runGet(getOptions{
		manifestPath: filepath.Join(dir, "payload.manifest"),
		outPath:      outPath,
		peers:        cli.StringList{seed.Addr()},
		listen:       "127.0.0.1:0",
		algoName:     "tchain",
		id:           1,
		sign:         true,
		timeout:      60 * time.Second,
	}, &getOut)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("signed download differs from the original")
	}
	info := seed.VerifyInfoSnapshot()
	if !info.Enabled {
		t.Error("seed did not enable attestation under -sign")
	}
	// The seed holds proof of its own uploads: the getter signed a receipt
	// for every piece and sent the seed its copy. Receipt copies ride
	// normal traffic (the last ones flush when the getter disconnects), so
	// poll briefly.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if seed.Metrics().Snapshot().Counters[`node_attest_acks_total{result="ok"}`] > 0 {
			break
		}
		if time.Now().After(deadline) {
			for k, v := range seed.Metrics().Snapshot().Counters {
				if strings.Contains(k, "attest") {
					t.Logf("seed %s = %d", k, v)
				}
			}
			t.Error("seed verified no receipt copies of its uploads")
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSeedAndGetDHT repeats the download with -dht on both ends: the
// getter bootstraps off the seed's address and the pair runs the
// discovery membership layer (routing tables, gossip, pings) over real
// TCP instead of pinning a static mesh.
func TestSeedAndGetDHT(t *testing.T) {
	dir := t.TempDir()
	srcPath := filepath.Join(dir, "payload.bin")
	content := make([]byte, 32<<10)
	for i := range content {
		content[i] = byte(i*13 + i/512)
	}
	if err := os.WriteFile(srcPath, content, 0o644); err != nil {
		t.Fatal(err)
	}
	seed, seedTel, err := startSeed(seedOptions{
		filePath:     srcPath,
		manifestPath: filepath.Join(dir, "payload.manifest"),
		listen:       "127.0.0.1:0",
		algoName:     "altruism",
		pieceSize:    4 << 10,
		id:           0,
		dht:          true,
		degree:       4,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	defer seed.Stop()
	defer seedTel.stop(nil)
	if seed.RoutingTable() == nil {
		t.Fatal("-dht seed runs without a routing table")
	}
	outPath := filepath.Join(dir, "copy.bin")
	err = runGet(getOptions{
		manifestPath: filepath.Join(dir, "payload.manifest"),
		outPath:      outPath,
		peers:        cli.StringList{seed.Addr()},
		listen:       "127.0.0.1:0",
		algoName:     "altruism",
		id:           1,
		dht:          true,
		degree:       4,
		timeout:      60 * time.Second,
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("downloaded file differs from the original")
	}
}

func TestRunGetBadManifest(t *testing.T) {
	err := runGet(getOptions{
		manifestPath: filepath.Join(t.TempDir(), "missing.json"),
		outPath:      "out.bin",
		peers:        cli.StringList{"127.0.0.1:1"},
		algoName:     "tchain",
		timeout:      time.Second,
	}, &strings.Builder{})
	if err == nil {
		t.Fatal("missing manifest accepted")
	}
}

func TestStartSeedBadAlgorithm(t *testing.T) {
	_, _, err := startSeed(seedOptions{
		filePath: "whatever.bin",
		algoName: "nonsense",
	}, &strings.Builder{})
	if err == nil {
		t.Fatal("bad algorithm accepted")
	}
}
